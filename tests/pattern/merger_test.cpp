#include "ptest/pattern/merger.hpp"

#include <gtest/gtest.h>

namespace ptest::pattern {
namespace {

TestPattern make(std::initializer_list<pfa::SymbolId> symbols) {
  TestPattern pattern;
  pattern.symbols = symbols;
  return pattern;
}

std::vector<TestPattern> two_patterns() {
  return {make({0, 1, 2}), make({10, 11})};
}

TEST(MergerTest, SequentialConcatenates) {
  PatternMerger merger({.op = MergeOp::kSequential}, support::Rng(1));
  const MergedPattern merged = merger.merge(two_patterns());
  ASSERT_EQ(merged.size(), 5u);
  EXPECT_EQ(merged.elements[0], (MergedElement{0, 0}));
  EXPECT_EQ(merged.elements[2], (MergedElement{0, 2}));
  EXPECT_EQ(merged.elements[3], (MergedElement{1, 10}));
}

TEST(MergerTest, RoundRobinAlternates) {
  PatternMerger merger({.op = MergeOp::kRoundRobin}, support::Rng(1));
  const MergedPattern merged = merger.merge(two_patterns());
  const std::vector<MergedElement> expected{
      {0, 0}, {1, 10}, {0, 1}, {1, 11}, {0, 2}};
  EXPECT_EQ(merged.elements, expected);
}

TEST(MergerTest, AllOpsPreservePerSlotOrderAndMultiset) {
  const auto patterns = two_patterns();
  for (const MergeOp op :
       {MergeOp::kSequential, MergeOp::kRoundRobin, MergeOp::kRandom,
        MergeOp::kCyclic, MergeOp::kShuffle}) {
    PatternMerger merger({.op = op}, support::Rng(7));
    const MergedPattern merged = merger.merge(patterns);
    ASSERT_EQ(merged.size(), 5u) << to_string(op);
    EXPECT_EQ(merged.project(0), patterns[0].symbols) << to_string(op);
    EXPECT_EQ(merged.project(1), patterns[1].symbols) << to_string(op);
  }
}

TEST(MergerTest, CyclicBreaksAfterBreakSymbol) {
  // Patterns: slot0 = A TS B, slot1 = C TS D (TS = symbol 99).
  const std::vector<TestPattern> patterns{make({1, 99, 2}),
                                          make({3, 99, 4})};
  MergerOptions options;
  options.op = MergeOp::kCyclic;
  options.cyclic_break_symbols = {99};
  PatternMerger merger(options, support::Rng(1));
  const MergedPattern merged = merger.merge(patterns);
  // Round 1: slot0 runs to TS inclusive, slot1 runs to TS inclusive;
  // round 2: remainders.
  const std::vector<MergedElement> expected{
      {0, 1}, {0, 99}, {1, 3}, {1, 99}, {0, 2}, {1, 4}};
  EXPECT_EQ(merged.elements, expected);
}

TEST(MergerTest, CyclicWithoutBreakSymbolUsesMaxChunk) {
  MergerOptions options;
  options.op = MergeOp::kCyclic;
  options.max_chunk = 2;
  PatternMerger merger(options, support::Rng(1));
  const MergedPattern merged = merger.merge(two_patterns());
  // slot0 takes 2, slot1 takes 2, slot0 takes 1.
  const std::vector<MergedElement> expected{
      {0, 0}, {0, 1}, {1, 10}, {1, 11}, {0, 2}};
  EXPECT_EQ(merged.elements, expected);
}

TEST(MergerTest, CyclicMaxChunkZeroMeansUnbounded) {
  // max_chunk == 0 is documented as "unbounded chunk"; the pre-fix code
  // took it literally and emitted nothing, silently dropping every
  // symbol.  Without break symbols an unbounded chunk drains each slot
  // in one turn, i.e. the sequential concatenation.
  MergerOptions options;
  options.op = MergeOp::kCyclic;
  options.max_chunk = 0;
  PatternMerger merger(options, support::Rng(1));
  const MergedPattern merged = merger.merge(two_patterns());
  const std::vector<MergedElement> expected{
      {0, 0}, {0, 1}, {0, 2}, {1, 10}, {1, 11}};
  EXPECT_EQ(merged.elements, expected);
}

TEST(MergerTest, CyclicMaxChunkZeroStillBreaksAtBreakSymbols) {
  // Unbounded chunks still end right after a break symbol, so the
  // rotation semantics survive: slot0 runs to TS (=99), slot1 runs to
  // TS, then the remainders drain in ring order.
  const std::vector<TestPattern> patterns{make({1, 99, 2}),
                                          make({3, 99, 4})};
  MergerOptions options;
  options.op = MergeOp::kCyclic;
  options.max_chunk = 0;
  options.cyclic_break_symbols = {99};
  PatternMerger merger(options, support::Rng(1));
  const MergedPattern merged = merger.merge(patterns);
  const std::vector<MergedElement> expected{
      {0, 1}, {0, 99}, {1, 3}, {1, 99}, {0, 2}, {1, 4}};
  EXPECT_EQ(merged.elements, expected);
}

TEST(MergerTest, ShuffleIsDeterministicPerSeed) {
  PatternMerger a({.op = MergeOp::kShuffle}, support::Rng(42));
  PatternMerger b({.op = MergeOp::kShuffle}, support::Rng(42));
  EXPECT_EQ(a.merge(two_patterns()).elements,
            b.merge(two_patterns()).elements);
}

TEST(MergerTest, EmptyInputsYieldEmptyMerge) {
  PatternMerger merger({.op = MergeOp::kRoundRobin}, support::Rng(1));
  EXPECT_TRUE(merger.merge({}).empty());
  EXPECT_TRUE(merger.merge({make({}), make({})}).empty());
}

TEST(MergerTest, OpNamesRoundTrip) {
  for (const MergeOp op :
       {MergeOp::kSequential, MergeOp::kRoundRobin, MergeOp::kRandom,
        MergeOp::kCyclic, MergeOp::kShuffle}) {
    const auto parsed = merge_op_from_string(to_string(op));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, op);
  }
  EXPECT_FALSE(merge_op_from_string("bogus").has_value());
}

TEST(MergerTest, EnumerateInterleavingsCountsMultinomial) {
  // |interleavings of lengths 2 and 2| = C(4,2) = 6.
  const std::vector<TestPattern> patterns{make({0, 1}), make({2, 3})};
  const auto all = PatternMerger::enumerate_interleavings(patterns, 100);
  EXPECT_EQ(all.size(), 6u);
  // All distinct and all valid linear extensions.
  for (const auto& merged : all) {
    EXPECT_EQ(merged.project(0), patterns[0].symbols);
    EXPECT_EQ(merged.project(1), patterns[1].symbols);
  }
}

TEST(MergerTest, EnumerateInterleavingsHonorsLimit) {
  const std::vector<TestPattern> patterns{make({0, 1, 2}), make({3, 4, 5})};
  const auto some = PatternMerger::enumerate_interleavings(patterns, 5);
  EXPECT_EQ(some.size(), 5u);
}

// Property: random merges preserve order for arbitrary slot counts.
class MergerSweep : public ::testing::TestWithParam<int> {};

TEST_P(MergerSweep, RandomAndShufflePreserveOrders) {
  support::Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<TestPattern> patterns;
  for (int slot = 0; slot < GetParam(); ++slot) {
    TestPattern pattern;
    const std::size_t len = 1 + rng.below(6);
    for (std::size_t i = 0; i < len; ++i) {
      pattern.symbols.push_back(
          static_cast<pfa::SymbolId>(slot * 100 + static_cast<int>(i)));
    }
    patterns.push_back(std::move(pattern));
  }
  for (const MergeOp op : {MergeOp::kRandom, MergeOp::kShuffle}) {
    PatternMerger merger({.op = op}, rng.fork());
    const MergedPattern merged = merger.merge(patterns);
    std::size_t total = 0;
    for (SlotIndex slot = 0; slot < patterns.size(); ++slot) {
      EXPECT_EQ(merged.project(slot), patterns[slot].symbols);
      total += patterns[slot].symbols.size();
    }
    EXPECT_EQ(merged.size(), total);
  }
}

INSTANTIATE_TEST_SUITE_P(SlotCounts, MergerSweep, ::testing::Range(1, 9));

}  // namespace
}  // namespace ptest::pattern
