#include <gtest/gtest.h>

#include "ptest/pattern/coverage.hpp"
#include "ptest/pattern/dedup.hpp"
#include "ptest/pattern/generator.hpp"

namespace ptest::pattern {
namespace {

struct PcorePfaFixture {
  pfa::Alphabet alphabet;
  pfa::Pfa pfa;

  PcorePfaFixture() : pfa(build()) {}

  pfa::Pfa build() {
    const pfa::Regex re = pfa::Regex::parse(
        "TC((TCH)* | TS TR (TCH)*)* (TD$ | TY$)", alphabet);
    return pfa::Pfa::from_regex(re, pfa::DistributionSpec{}, alphabet);
  }
};

TEST(GeneratorTest, ProducesLegalPatternsOfRequestedShape) {
  PcorePfaFixture f;
  PatternGenerator generator(f.pfa, {.size = 10}, support::Rng(3));
  const auto patterns = generator.generate(50);
  ASSERT_EQ(patterns.size(), 50u);
  for (const TestPattern& pattern : patterns) {
    EXPECT_TRUE(f.pfa.accepts(pattern.symbols));
    EXPECT_GT(pattern.probability, 0.0);
    EXPECT_GE(pattern.states.size(), pattern.symbols.size());
  }
}

TEST(GeneratorTest, DeterministicPerSeed) {
  PcorePfaFixture f;
  PatternGenerator a(f.pfa, {.size = 10}, support::Rng(9));
  PatternGenerator b(f.pfa, {.size = 10}, support::Rng(9));
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.generate().symbols, b.generate().symbols);
  }
}

TEST(DedupTest, DetectsReplicas) {
  PatternDeduper deduper;
  TestPattern p1;
  p1.symbols = {1, 2, 3};
  TestPattern p2;
  p2.symbols = {1, 2, 3};
  TestPattern p3;
  p3.symbols = {1, 2, 4};
  EXPECT_TRUE(deduper.insert(p1));
  EXPECT_FALSE(deduper.insert(p2));
  EXPECT_TRUE(deduper.insert(p3));
  EXPECT_EQ(deduper.unique_count(), 2u);
  EXPECT_EQ(deduper.rejected_count(), 1u);
}

TEST(DedupTest, FilterKeepsFirstOccurrences) {
  PatternDeduper deduper;
  TestPattern a;
  a.symbols = {1};
  TestPattern b;
  b.symbols = {2};
  const auto unique = deduper.filter({a, b, a, b, a});
  EXPECT_EQ(unique.size(), 2u);
}

TEST(DedupTest, HashCollisionNeverRejectsDistinctPatterns) {
  // Force every sequence into one bucket: with a constant hash the
  // deduper must still distinguish patterns by exact symbol comparison.
  // (The default 64-bit FNV-1a makes real collisions astronomically
  // rare, which is exactly why the pre-fix hash-only deduper silently
  // dropped distinct patterns when one did occur.)
  PatternDeduper deduper(
      +[](const std::vector<pfa::SymbolId>&) -> std::uint64_t {
        return 42;
      });
  TestPattern first;
  first.symbols = {1, 2, 3};
  TestPattern second;  // distinct content, same (forced) hash
  second.symbols = {4, 5, 6};
  EXPECT_TRUE(deduper.insert(first));
  EXPECT_TRUE(deduper.insert(second));  // collision must not reject it
  EXPECT_EQ(deduper.unique_count(), 2u);
  EXPECT_EQ(deduper.rejected_count(), 0u);
  // True replicas are still caught inside the shared bucket.
  EXPECT_FALSE(deduper.insert(first));
  EXPECT_FALSE(deduper.insert(second));
  EXPECT_EQ(deduper.rejected_count(), 2u);
  EXPECT_TRUE(deduper.seen(first));
  EXPECT_TRUE(deduper.seen(second));
  TestPattern unseen;
  unseen.symbols = {7};
  EXPECT_FALSE(deduper.seen(unseen));
}

TEST(DedupTest, ClearResetsCollisionBuckets) {
  PatternDeduper deduper(
      +[](const std::vector<pfa::SymbolId>&) -> std::uint64_t {
        return 7;
      });
  TestPattern pattern;
  pattern.symbols = {9, 9};
  EXPECT_TRUE(deduper.insert(pattern));
  deduper.clear();
  EXPECT_EQ(deduper.unique_count(), 0u);
  EXPECT_FALSE(deduper.seen(pattern));
  EXPECT_TRUE(deduper.insert(pattern));
}

TEST(DedupTest, HashDiffersForPermutations) {
  EXPECT_NE(pattern_hash({1, 2, 3}), pattern_hash({3, 2, 1}));
  EXPECT_NE(pattern_hash({1}), pattern_hash({1, 1}));
  EXPECT_EQ(pattern_hash({}), pattern_hash({}));
}

TEST(DedupTest, RealisticDuplicateRateOnSmallLanguage) {
  // Short patterns over the lifecycle automaton repeat quickly; the
  // deduper must catch them (this is the waste the paper's future work
  // points at).
  PcorePfaFixture f;
  PatternGenerator generator(f.pfa, {.size = 2}, support::Rng(11));
  PatternDeduper deduper;
  const auto unique = deduper.filter(generator.generate(200));
  EXPECT_LT(unique.size(), 50u);
  EXPECT_GT(deduper.rejected_count(), 150u);
}

TEST(CoverageTest, FullCoverageAfterManyPatterns) {
  PcorePfaFixture f;
  PatternGenerator generator(f.pfa, {.size = 12}, support::Rng(5));
  CoverageTracker tracker(f.pfa);
  for (int i = 0; i < 500; ++i) tracker.observe(generator.generate());
  const CoverageReport report = tracker.report();
  EXPECT_EQ(report.states_covered, report.states_total);
  EXPECT_EQ(report.transitions_covered, report.transitions_total);
  EXPECT_DOUBLE_EQ(report.state_coverage, 1.0);
  EXPECT_TRUE(tracker.uncovered_transitions().empty());
  EXPECT_GT(report.ngrams_observed, 5u);
}

TEST(CoverageTest, PartialCoverageReported) {
  PcorePfaFixture f;
  CoverageTracker tracker(f.pfa);
  TestPattern minimal;
  minimal.symbols = {f.alphabet.at("TC"), f.alphabet.at("TD")};
  tracker.observe(minimal);
  const CoverageReport report = tracker.report();
  EXPECT_LT(report.transition_coverage, 1.0);
  EXPECT_GT(report.transition_coverage, 0.0);
  EXPECT_FALSE(tracker.uncovered_transitions().empty());
}

TEST(CoverageTest, ReportRendersCounts) {
  PcorePfaFixture f;
  CoverageTracker tracker(f.pfa);
  const std::string text = tracker.report().to_string();
  EXPECT_NE(text.find("states"), std::string::npos);
  EXPECT_NE(text.find("transitions"), std::string::npos);
}

TEST(MergedPatternTest, RenderShowsSlotsAndSymbols) {
  pfa::Alphabet alphabet;
  const auto tc = alphabet.intern("TC");
  const auto td = alphabet.intern("TD");
  MergedPattern merged;
  merged.elements = {{0, tc}, {1, tc}, {0, td}};
  EXPECT_EQ(merged.render(alphabet), "0:TC 1:TC 0:TD");
}

}  // namespace
}  // namespace ptest::pattern
