#include "ptest/pfa/distribution.hpp"

#include <gtest/gtest.h>

namespace ptest::pfa {
namespace {

TEST(DistributionTest, UniformDefault) {
  DistributionSpec spec;
  EXPECT_TRUE(spec.empty());
  EXPECT_DOUBLE_EQ(spec.weight(0, std::nullopt, 3), 1.0);
}

TEST(DistributionTest, SymbolWeightApplies) {
  DistributionSpec spec;
  spec.set_symbol_weight(2, 5.0);
  EXPECT_DOUBLE_EQ(spec.weight(0, std::nullopt, 2), 5.0);
  EXPECT_DOUBLE_EQ(spec.weight(0, std::nullopt, 1), 1.0);
}

TEST(DistributionTest, BigramOverridesSymbol) {
  DistributionSpec spec;
  spec.set_symbol_weight(2, 5.0);
  spec.set_bigram_weight(7, 2, 0.25);
  EXPECT_DOUBLE_EQ(spec.weight(0, 7, 2), 0.25);
  EXPECT_DOUBLE_EQ(spec.weight(0, 8, 2), 5.0);   // other context
  EXPECT_DOUBLE_EQ(spec.weight(0, std::nullopt, 2), 5.0);  // no context
}

TEST(DistributionTest, StateOverridesEverything) {
  DistributionSpec spec;
  spec.set_symbol_weight(2, 5.0);
  spec.set_bigram_weight(7, 2, 0.25);
  spec.set_state_weight(3, 2, 9.0);
  EXPECT_DOUBLE_EQ(spec.weight(3, 7, 2), 9.0);
  EXPECT_DOUBLE_EQ(spec.weight(4, 7, 2), 0.25);
}

TEST(DistributionTest, StartContextIsDistinct) {
  DistributionSpec spec;
  spec.set_bigram_weight(DistributionSpec::kStartContext, 0, 0.9);
  EXPECT_DOUBLE_EQ(spec.weight(0, DistributionSpec::kStartContext, 0), 0.9);
  EXPECT_DOUBLE_EQ(spec.weight(0, 5, 0), 1.0);
}

TEST(DistributionTest, RejectsNonPositiveWeights) {
  DistributionSpec spec;
  EXPECT_THROW(spec.set_symbol_weight(0, 0.0), std::invalid_argument);
  EXPECT_THROW(spec.set_symbol_weight(0, -1.0), std::invalid_argument);
  EXPECT_THROW(spec.set_bigram_weight(0, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(spec.set_state_weight(0, 1, -2.0), std::invalid_argument);
}

TEST(DistributionTest, ParseGlobalWeights) {
  Alphabet alphabet;
  const auto spec = DistributionSpec::parse("TC = 0.5\nTD = 0.1", alphabet);
  EXPECT_DOUBLE_EQ(spec.weight(0, std::nullopt, alphabet.at("TC")), 0.5);
  EXPECT_DOUBLE_EQ(spec.weight(0, std::nullopt, alphabet.at("TD")), 0.1);
}

TEST(DistributionTest, ParseBigrams) {
  Alphabet alphabet;
  const auto spec = DistributionSpec::parse(
      "TC -> TCH = 0.6; ^ -> TC = 1.0; # comment\nTCH -> TD = 0.1", alphabet);
  const auto tc = alphabet.at("TC");
  const auto tch = alphabet.at("TCH");
  EXPECT_DOUBLE_EQ(spec.weight(0, tc, tch), 0.6);
  EXPECT_DOUBLE_EQ(spec.weight(0, DistributionSpec::kStartContext, tc), 1.0);
  EXPECT_DOUBLE_EQ(spec.weight(0, tch, alphabet.at("TD")), 0.1);
}

TEST(DistributionTest, ParseRejectsGarbage) {
  Alphabet alphabet;
  EXPECT_THROW((void)DistributionSpec::parse("TC 0.5", alphabet),
               std::invalid_argument);
  EXPECT_THROW((void)DistributionSpec::parse("TC = zebra", alphabet),
               std::invalid_argument);
}

}  // namespace
}  // namespace ptest::pfa
