// The precomputed sampling tables behind Pfa::sample_into: the SoA
// flattening, the distance-filtered (closer-edge) pick table that
// replaced the per-step weight masking of complete_to_accept, and the
// WalkScratch reuse accounting.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ptest/pfa/pfa.hpp"
#include "ptest/support/rng.hpp"

namespace ptest::pfa {
namespace {

/// Three accepting states at different accept-distances: the `(b a)*`
/// loop re-enters an accepting state with outgoing edges, and the
/// `(e | f) g` tail forces the completion phase to choose among two
/// closer-to-accept edges with unequal weights.
struct MultiAccept {
  Alphabet alphabet;
  Pfa pfa;

  MultiAccept() : pfa(build()) {}

  Pfa build() {
    const Regex re =
        Regex::parse("(a (b a)*) | (c d (e | f) g)", alphabet);
    DistributionSpec spec;
    spec.set_symbol_weight(alphabet.at("e"), 0.25);
    spec.set_symbol_weight(alphabet.at("f"), 0.75);
    return Pfa::from_regex(re, spec, alphabet);
  }

  std::string render(const Walk& walk) const {
    std::string out;
    for (const SymbolId symbol : walk.symbols) {
      if (!out.empty()) out += ' ';
      out += alphabet.name(symbol);
    }
    return out;
  }
};

TEST(SamplingTables, SoAViewMirrorsTheTransitionLists) {
  MultiAccept f;
  const auto& states = f.pfa.states();
  const auto& offsets = f.pfa.offsets();
  ASSERT_EQ(offsets.size(), states.size() + 1);
  EXPECT_EQ(offsets.front(), 0u);
  for (StateId s = 0; s < states.size(); ++s) {
    const auto& transitions = states[s].transitions;
    ASSERT_EQ(offsets[s + 1] - offsets[s], transitions.size());
    for (std::size_t i = 0; i < transitions.size(); ++i) {
      const std::uint32_t j = offsets[s] + static_cast<std::uint32_t>(i);
      EXPECT_EQ(f.pfa.flat_symbols()[j], transitions[i].symbol);
      EXPECT_EQ(f.pfa.flat_targets()[j], transitions[i].target);
      EXPECT_EQ(f.pfa.flat_probabilities()[j], transitions[i].probability);
    }
  }
  EXPECT_EQ(offsets.back(), f.pfa.flat_symbols().size());
}

TEST(SamplingTables, MultiAcceptHasSeveralAcceptingStates) {
  MultiAccept f;
  std::size_t accepting = 0;
  for (const PfaState& state : f.pfa.states()) {
    accepting += state.accepting ? 1 : 0;
  }
  EXPECT_EQ(accepting, 3u);  // the fixture's point: not a single sink
}

// Regression pin for the distance-filtered CDF: these exact walks were
// emitted by the legacy per-step masking implementation; the
// precomputed closer-edge table must keep emitting them byte for byte.
TEST(SamplingTables, MultiAcceptCompletionWalkIsPinned) {
  MultiAccept f;
  WalkOptions options;
  options.size = 3;

  support::Rng rng_loop(11);
  const Walk loop_walk = f.pfa.sample(rng_loop, options);
  EXPECT_EQ(f.render(loop_walk), "a b a");
  EXPECT_TRUE(loop_walk.accepted);
  EXPECT_EQ(loop_walk.probability, 0.5);

  // This seed routes through c d, then the completion phase picks among
  // the two closer edges (e: 0.25, f: 0.75) and finishes through g.
  support::Rng rng_steer(14);
  const Walk steer_walk = f.pfa.sample(rng_steer, options);
  EXPECT_EQ(f.render(steer_walk), "c d f g");
  EXPECT_TRUE(steer_walk.accepted);
  EXPECT_EQ(steer_walk.probability, 0.375);
}

TEST(SamplingTables, ScratchReuseCountersFollowTheHighWaterRule) {
  MultiAccept f;
  WalkOptions options;
  options.size = 3;
  WalkScratch scratch;

  // Fresh session: the first sample can never be a hit (high-water 0).
  support::Rng rng_a(11);
  (void)f.pfa.sample_into(scratch, rng_a, options);
  EXPECT_EQ(scratch.reuse_hits(), 0u);
  EXPECT_EQ(scratch.alloc_bytes_saved(), 0u);

  // Replaying the identical walk fits the high-water mark exactly: a
  // hit, and the bytes saved are the walk's two buffers.
  support::Rng rng_b(11);
  const Walk& walk = f.pfa.sample_into(scratch, rng_b, options);
  EXPECT_EQ(scratch.reuse_hits(), 1u);
  EXPECT_EQ(scratch.alloc_bytes_saved(),
            walk.symbols.size() * sizeof(SymbolId) +
                walk.states.size() * sizeof(StateId));

  // begin_session resets the high-water mark but not the lifetime
  // totals: the next sample is a miss again, counters unchanged.
  const std::uint64_t bytes_after_hit = scratch.alloc_bytes_saved();
  scratch.begin_session();
  support::Rng rng_c(11);
  (void)f.pfa.sample_into(scratch, rng_c, options);
  EXPECT_EQ(scratch.reuse_hits(), 1u);
  EXPECT_EQ(scratch.alloc_bytes_saved(), bytes_after_hit);
}

TEST(SamplingTables, SampleMatchesSampleIntoDrawForDraw) {
  MultiAccept f;
  WalkOptions options;
  options.size = 6;
  options.restart_at_accept = true;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    support::Rng rng_wrap(seed);
    support::Rng rng_into(seed);
    const Walk wrapped = f.pfa.sample(rng_wrap, options);
    WalkScratch scratch;
    const Walk& direct = f.pfa.sample_into(scratch, rng_into, options);
    EXPECT_EQ(wrapped.symbols, direct.symbols) << "seed " << seed;
    EXPECT_EQ(wrapped.states, direct.states) << "seed " << seed;
    EXPECT_EQ(wrapped.probability, direct.probability) << "seed " << seed;
    EXPECT_EQ(rng_wrap.next(), rng_into.next()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace ptest::pfa
