#include "ptest/pfa/dfa.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <set>

#include "ptest/support/rng.hpp"

namespace ptest::pfa {
namespace {

struct Fixture {
  Alphabet alphabet;

  Dfa build(std::string_view pattern) {
    return Dfa::from_nfa(Nfa::from_regex(Regex::parse(pattern, alphabet)));
  }

  std::vector<SymbolId> word(std::initializer_list<const char*> names) {
    std::vector<SymbolId> out;
    for (const char* n : names) out.push_back(alphabet.at(n));
    return out;
  }
};

TEST(DfaTest, Fig3SubsetConstructionKeepsContextsSeparate) {
  // Subset construction keeps "after a" and "after c" distinct (different
  // bigram contexts) and merges the two accepting dead-ends: 4 states.
  Fixture f;
  const Dfa dfa = f.build("(a c* d) | b");
  EXPECT_EQ(dfa.size(), 4u);
}

TEST(DfaTest, Fig3MinimizedHasExactlyThreeStates) {
  // The paper's Fig. 3 drawing merges the language-equivalent "after a"
  // and "after c" states: full minimization reproduces its 3 states.
  Fixture f;
  const Dfa dfa = f.build("(a c* d) | b").minimized();
  EXPECT_EQ(dfa.size(), 3u);
}

TEST(DfaTest, MinimizedPreservesLanguage) {
  Fixture f;
  const Dfa dfa = f.build("TC((TCH)* | TS TR (TCH)*)* (TD$ | TY$)");
  const Dfa min = dfa.minimized();
  EXPECT_LT(min.size(), dfa.size());
  EXPECT_TRUE(min.accepts(f.word({"TC", "TD"})));
  EXPECT_TRUE(min.accepts(f.word({"TC", "TS", "TR", "TCH", "TY"})));
  EXPECT_FALSE(min.accepts(f.word({"TC", "TR", "TD"})));
  EXPECT_FALSE(min.accepts(f.word({"TC"})));
}

TEST(DfaTest, NonStartStatesHaveUniqueIncomingSymbol) {
  // Property of the Thompson-subset skeleton that makes bigram
  // distributions well-defined (see dfa.hpp).
  Fixture f;
  const Dfa dfa = f.build("TC((TCH)* | TS TR (TCH)*)* (TD$ | TY$)");
  std::vector<std::set<SymbolId>> incoming(dfa.size());
  for (StateId i = 0; i < dfa.size(); ++i) {
    for (const auto& [symbol, target] : dfa.states()[i].transitions) {
      incoming[target].insert(symbol);
    }
  }
  for (StateId i = 0; i < dfa.size(); ++i) {
    if (i == dfa.start()) continue;
    // Accepting dead-ends are merged and may take several symbols in.
    if (dfa.states()[i].transitions.empty()) continue;
    EXPECT_LE(incoming[i].size(), 1u) << "state " << i;
  }
}

TEST(DfaTest, Fig3AcceptsSameLanguageAsNfa) {
  Fixture f;
  const Regex re = Regex::parse("(a c* d) | b", f.alphabet);
  const Nfa nfa = Nfa::from_regex(re);
  const Dfa dfa = Dfa::from_nfa(nfa);
  // Exhaustive agreement over all words up to length 4.
  const std::size_t sigma = f.alphabet.size();
  std::vector<SymbolId> word;
  const std::function<void(std::size_t)> check = [&](std::size_t depth) {
    EXPECT_EQ(dfa.accepts(word), nfa.accepts(word))
        << "word: " << f.alphabet.render(word);
    if (depth == 4) return;
    for (SymbolId s = 0; s < sigma; ++s) {
      word.push_back(s);
      check(depth + 1);
      word.pop_back();
    }
  };
  check(0);
}

TEST(DfaTest, Eq2LifecycleAutomatonShape) {
  Fixture f;
  const Dfa dfa = f.build("TC((TCH)* | TS TR (TCH)*)* (TD$ | TY$)");
  // States: start, after-TC/TCH/TR (merged by behavior), after-TS, accept.
  // The automaton must be deterministic and every state must reach accept.
  const auto dist = dfa.distance_to_accept();
  for (const auto d : dist) {
    EXPECT_NE(d, std::numeric_limits<std::uint32_t>::max());
  }
  // Spot-check the language.
  EXPECT_TRUE(dfa.accepts(f.word({"TC", "TD"})));
  EXPECT_TRUE(dfa.accepts(f.word({"TC", "TS", "TR", "TCH", "TY"})));
  EXPECT_FALSE(dfa.accepts(f.word({"TC", "TS", "TS", "TD"})));
}

TEST(DfaTest, RunReportsIntermediateState) {
  Fixture f;
  const Dfa dfa = f.build("a b");
  const auto mid = dfa.run(f.word({"a"}));
  ASSERT_TRUE(mid.has_value());
  EXPECT_FALSE(dfa.states()[*mid].accepting);
  EXPECT_FALSE(dfa.run(f.word({"b"})).has_value());
}

TEST(DfaTest, DistanceToAcceptIsShortestPath) {
  Fixture f;
  const Dfa dfa = f.build("a b c");
  const auto dist = dfa.distance_to_accept();
  EXPECT_EQ(dist[dfa.start()], 3u);
}

TEST(DfaTest, EmptyRegexAcceptsOnlyEmptyWord) {
  Fixture f;
  const Dfa dfa = f.build("");
  EXPECT_TRUE(dfa.accepts({}));
  EXPECT_EQ(dfa.size(), 1u);
  EXPECT_TRUE(dfa.states()[dfa.start()].accepting);
}

TEST(DfaTest, ToDotMentionsAllStates) {
  Fixture f;
  const Dfa dfa = f.build("(a c* d) | b");
  const std::string dot = dfa.to_dot(f.alphabet);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
  EXPECT_NE(dot.find("label=\"a\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"d\""), std::string::npos);
}

// Property: DFA and NFA agree on random expressions over random words.
class DfaNfaAgreement : public ::testing::TestWithParam<int> {};

namespace {
// Generates a random regex string over a tiny alphabet.
std::string random_regex(support::Rng& rng, int depth) {
  static const char* kSymbols[] = {"a", "b", "c"};
  if (depth <= 0 || rng.chance(0.4)) {
    return kSymbols[rng.below(3)];
  }
  switch (rng.below(4)) {
    case 0:
      return random_regex(rng, depth - 1) + " " + random_regex(rng, depth - 1);
    case 1:
      return "(" + random_regex(rng, depth - 1) + " | " +
             random_regex(rng, depth - 1) + ")";
    case 2:
      return "(" + random_regex(rng, depth - 1) + ")*";
    default:
      return "(" + random_regex(rng, depth - 1) + ")?";
  }
}
}  // namespace

TEST_P(DfaNfaAgreement, RandomExpressions) {
  support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
  for (int trial = 0; trial < 20; ++trial) {
    Alphabet alphabet;
    const std::string pattern = random_regex(rng, 3);
    const Regex re = Regex::parse(pattern, alphabet);
    const Nfa nfa = Nfa::from_regex(re);
    const Dfa dfa = Dfa::from_nfa(nfa);
    for (int w = 0; w < 50; ++w) {
      std::vector<SymbolId> word;
      const std::size_t len = rng.below(6);
      for (std::size_t i = 0; i < len; ++i) {
        word.push_back(static_cast<SymbolId>(rng.below(alphabet.size())));
      }
      ASSERT_EQ(dfa.accepts(word), nfa.accepts(word))
          << "regex: " << pattern << " word: " << alphabet.render(word);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DfaNfaAgreement, ::testing::Range(0, 8));

}  // namespace
}  // namespace ptest::pfa
