// Allocation probe for the sampling hot path: a global operator-new
// hook counts heap allocations, and the suite asserts Pfa::sample_into
// performs ZERO of them once its WalkScratch is warm.  This is the
// enforceable form of the scratch-reuse API's contract — a regression
// that sneaks a per-walk allocation back in (a temporary vector, an
// accidental copy) fails here even though it would be invisible to the
// equivalence and golden suites.
//
// The hook is process-global, so this suite lives in its own test
// binary: mixing it into another suite would tax every test with the
// counter and make the numbers meaningless.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "ptest/pfa/pfa.hpp"
#include "ptest/support/rng.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ptest::pfa {
namespace {

Pfa build_pcore_like(Alphabet& alphabet) {
  // The pCore service-lifecycle shape: a looping body plus distinct
  // terminal branches, so walks vary in length and exercise both the
  // batched emission loop and the completion steering.
  const Regex re = Regex::parse("(a (b | c) d)* (e | f g)", alphabet);
  return Pfa::from_regex(re, DistributionSpec{}, alphabet);
}

TEST(SampleAllocProbe, SampleIntoIsAllocationFreeOnceWarm) {
  Alphabet alphabet;
  const Pfa pfa = build_pcore_like(alphabet);

  WalkOptions options;
  options.size = 48;
  options.restart_at_accept = true;
  WalkScratch scratch;
  scratch.reserve(options);

  support::Rng rng(0xfeedULL);
  // Warm-up: first samples may still size the uniform buffer lazily.
  for (int i = 0; i < 4; ++i) (void)pfa.sample_into(scratch, rng, options);

  const std::uint64_t before =
      g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 256; ++i) (void)pfa.sample_into(scratch, rng, options);
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "sample_into allocated on the steady-state path";
}

TEST(SampleAllocProbe, SampleWrapperAllocatesSampleIntoDoesNot) {
  Alphabet alphabet;
  const Pfa pfa = build_pcore_like(alphabet);
  WalkOptions options;
  options.size = 32;

  // The thin wrapper allocates a fresh Walk per call by design...
  support::Rng rng_wrap(7);
  (void)pfa.sample(rng_wrap, options);  // warm any lazy runtime state
  const std::uint64_t wrap_before =
      g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 64; ++i) (void)pfa.sample(rng_wrap, options);
  const std::uint64_t wrap_allocs =
      g_allocations.load(std::memory_order_relaxed) - wrap_before;
  EXPECT_GT(wrap_allocs, 0u);

  // ...which is exactly the traffic the scratch path eliminates.
  support::Rng rng_into(7);
  WalkScratch scratch;
  scratch.reserve(options);
  for (int i = 0; i < 4; ++i) (void)pfa.sample_into(scratch, rng_into, options);
  const std::uint64_t into_before =
      g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 64; ++i) (void)pfa.sample_into(scratch, rng_into, options);
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed) - into_before, 0u);
}

}  // namespace
}  // namespace ptest::pfa
