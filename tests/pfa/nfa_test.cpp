#include "ptest/pfa/nfa.hpp"

#include <gtest/gtest.h>

namespace ptest::pfa {
namespace {

struct Fixture {
  Alphabet alphabet;

  Nfa build(std::string_view pattern) {
    return Nfa::from_regex(Regex::parse(pattern, alphabet));
  }

  std::vector<SymbolId> word(std::initializer_list<const char*> names) {
    std::vector<SymbolId> out;
    for (const char* n : names) out.push_back(alphabet.at(n));
    return out;
  }
};

TEST(NfaTest, SingleSymbol) {
  Fixture f;
  const Nfa nfa = f.build("a");
  EXPECT_TRUE(nfa.accepts(f.word({"a"})));
  EXPECT_FALSE(nfa.accepts({}));
  EXPECT_FALSE(nfa.accepts(f.word({"a", "a"})));
}

TEST(NfaTest, Concatenation) {
  Fixture f;
  const Nfa nfa = f.build("a b c");
  EXPECT_TRUE(nfa.accepts(f.word({"a", "b", "c"})));
  EXPECT_FALSE(nfa.accepts(f.word({"a", "b"})));
  EXPECT_FALSE(nfa.accepts(f.word({"a", "c", "b"})));
}

TEST(NfaTest, Alternation) {
  Fixture f;
  const Nfa nfa = f.build("a | b");
  EXPECT_TRUE(nfa.accepts(f.word({"a"})));
  EXPECT_TRUE(nfa.accepts(f.word({"b"})));
  EXPECT_FALSE(nfa.accepts(f.word({"a", "b"})));
}

TEST(NfaTest, StarAcceptsZeroOrMore) {
  Fixture f;
  const Nfa nfa = f.build("a*");
  EXPECT_TRUE(nfa.accepts({}));
  EXPECT_TRUE(nfa.accepts(f.word({"a"})));
  EXPECT_TRUE(nfa.accepts(f.word({"a", "a", "a", "a"})));
}

TEST(NfaTest, PlusRequiresOne) {
  Fixture f;
  const Nfa nfa = f.build("a+");
  EXPECT_FALSE(nfa.accepts({}));
  EXPECT_TRUE(nfa.accepts(f.word({"a"})));
  EXPECT_TRUE(nfa.accepts(f.word({"a", "a"})));
}

TEST(NfaTest, OptionalZeroOrOne) {
  Fixture f;
  const Nfa nfa = f.build("a? b");
  EXPECT_TRUE(nfa.accepts(f.word({"b"})));
  EXPECT_TRUE(nfa.accepts(f.word({"a", "b"})));
  EXPECT_FALSE(nfa.accepts(f.word({"a", "a", "b"})));
}

TEST(NfaTest, PaperFig3Language) {
  Fixture f;
  const Nfa nfa = f.build("(a c* d) | b");
  EXPECT_TRUE(nfa.accepts(f.word({"b"})));
  EXPECT_TRUE(nfa.accepts(f.word({"a", "d"})));
  EXPECT_TRUE(nfa.accepts(f.word({"a", "c", "d"})));
  EXPECT_TRUE(nfa.accepts(f.word({"a", "c", "c", "c", "d"})));
  EXPECT_FALSE(nfa.accepts(f.word({"a"})));
  EXPECT_FALSE(nfa.accepts(f.word({"a", "c"})));
  EXPECT_FALSE(nfa.accepts(f.word({"b", "b"})));
  EXPECT_FALSE(nfa.accepts(f.word({"c", "d"})));
}

TEST(NfaTest, PaperEq2TaskLifecycle) {
  Fixture f;
  const Nfa nfa = f.build("TC((TCH)* | TS TR (TCH)*)* (TD$ | TY$)");
  // Legal lifecycles.
  EXPECT_TRUE(nfa.accepts(f.word({"TC", "TD"})));
  EXPECT_TRUE(nfa.accepts(f.word({"TC", "TY"})));
  EXPECT_TRUE(nfa.accepts(f.word({"TC", "TCH", "TD"})));
  EXPECT_TRUE(nfa.accepts(f.word({"TC", "TS", "TR", "TY"})));
  EXPECT_TRUE(nfa.accepts(
      f.word({"TC", "TCH", "TS", "TR", "TCH", "TCH", "TS", "TR", "TD"})));
  // Illegal: resume without suspend, suspend w/o resume before delete,
  // missing create, operations after delete.
  EXPECT_FALSE(nfa.accepts(f.word({"TC", "TR", "TD"})));
  EXPECT_FALSE(nfa.accepts(f.word({"TC", "TS", "TD"})));
  EXPECT_FALSE(nfa.accepts(f.word({"TCH", "TD"})));
  EXPECT_FALSE(nfa.accepts(f.word({"TC", "TD", "TCH"})));
  EXPECT_FALSE(nfa.accepts(f.word({"TC"})));
}

TEST(NfaTest, EpsilonClosureContainsSeed) {
  Fixture f;
  const Nfa nfa = f.build("a*");
  const auto closure = nfa.epsilon_closure({nfa.start()});
  EXPECT_FALSE(closure.empty());
  EXPECT_TRUE(std::binary_search(closure.begin(), closure.end(), nfa.start()));
  // a* start closure must include the accept state (empty word accepted).
  EXPECT_TRUE(
      std::binary_search(closure.begin(), closure.end(), nfa.accept()));
}

TEST(NfaTest, EndAnchorActsAsEpsilon) {
  Fixture f;
  const Nfa anchored = f.build("a$");
  EXPECT_TRUE(anchored.accepts(f.word({"a"})));
  EXPECT_FALSE(anchored.accepts({}));
}

}  // namespace
}  // namespace ptest::pfa
