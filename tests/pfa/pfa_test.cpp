#include "ptest/pfa/pfa.hpp"

#include <gtest/gtest.h>

#include <map>

namespace ptest::pfa {
namespace {

// --- Fig. 3 of the paper --------------------------------------------------
//
// PFA over (ac*d)|b with P(q0,a,q1)=0.6, P(q0,b,q2)=0.4, P(q1,c,q1)=0.3,
// P(q1,d,q2)=0.7.
struct Fig3 {
  Alphabet alphabet;
  SymbolId a, b, c, d;
  Pfa pfa;

  Fig3() : pfa(build()) {}

  Pfa build() {
    const Regex re = Regex::parse("(a c* d) | b", alphabet);
    a = alphabet.at("a");
    b = alphabet.at("b");
    c = alphabet.at("c");
    d = alphabet.at("d");
    DistributionSpec spec;
    spec.set_bigram_weight(DistributionSpec::kStartContext, a, 0.6);
    spec.set_bigram_weight(DistributionSpec::kStartContext, b, 0.4);
    spec.set_bigram_weight(a, c, 0.3);
    spec.set_bigram_weight(a, d, 0.7);
    spec.set_bigram_weight(c, c, 0.3);
    spec.set_bigram_weight(c, d, 0.7);
    // minimize=true reproduces the paper's 3-state drawing; the merged
    // "after a / after c" state resolves its weights from either context
    // (they agree here).
    return Pfa::from_regex(re, spec, alphabet, {.minimize = true});
  }
};

TEST(PfaFig3Test, HasThreeStatesAndValidates) {
  Fig3 f;
  EXPECT_EQ(f.pfa.states().size(), 3u);
  EXPECT_NO_THROW(f.pfa.validate());
}

TEST(PfaFig3Test, WordProbabilitiesMatchClosedForm) {
  Fig3 f;
  // P(b) = 0.4 ; P(a d) = 0.6*0.7 ; P(a c d) = 0.6*0.3*0.7 ; etc.
  EXPECT_NEAR(f.pfa.word_probability({f.b}), 0.4, 1e-12);
  EXPECT_NEAR(f.pfa.word_probability({f.a, f.d}), 0.42, 1e-12);
  EXPECT_NEAR(f.pfa.word_probability({f.a, f.c, f.d}), 0.126, 1e-12);
  EXPECT_NEAR(f.pfa.word_probability({f.a, f.c, f.c, f.d}), 0.0378, 1e-12);
  // Words outside the language have probability zero.
  EXPECT_DOUBLE_EQ(f.pfa.word_probability({f.a}), 0.0);
  EXPECT_DOUBLE_EQ(f.pfa.word_probability({f.b, f.b}), 0.0);
  EXPECT_DOUBLE_EQ(f.pfa.word_probability({f.c}), 0.0);
}

TEST(PfaFig3Test, LanguageTotalProbabilityIsOne) {
  Fig3 f;
  // Sum over the whole language: P(b) + sum_k P(a c^k d)
  //   = 0.4 + 0.6*0.7/(1-0.3) = 0.4 + 0.6 = 1.
  double total = f.pfa.word_probability({f.b});
  std::vector<SymbolId> word{f.a, f.d};
  for (int k = 0; k < 64; ++k) {
    total += f.pfa.word_probability(word);
    word.insert(word.begin() + 1, f.c);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(PfaFig3Test, SampledFrequenciesConvergeToProbabilities) {
  Fig3 f;
  support::Rng rng(123);
  WalkOptions options;
  options.size = 64;  // large enough that every word ends naturally at accept
  std::map<std::string, int> counts;
  constexpr int kTrials = 200000;
  for (int i = 0; i < kTrials; ++i) {
    const Walk walk = f.pfa.sample(rng, options);
    ASSERT_TRUE(walk.accepted);
    counts[f.alphabet.render(walk.symbols)]++;
  }
  EXPECT_NEAR(counts["b"] / double(kTrials), 0.4, 0.01);
  EXPECT_NEAR(counts["a d"] / double(kTrials), 0.42, 0.01);
  EXPECT_NEAR(counts["a c d"] / double(kTrials), 0.126, 0.01);
}

TEST(PfaFig3Test, SampleProbabilityFieldMatchesWordProbability) {
  Fig3 f;
  support::Rng rng(5);
  WalkOptions options;
  options.size = 2;
  for (int i = 0; i < 100; ++i) {
    const Walk walk = f.pfa.sample(rng, options);
    ASSERT_TRUE(walk.accepted);
    EXPECT_NEAR(walk.probability, f.pfa.word_probability(walk.symbols), 1e-12);
    ASSERT_EQ(walk.states.size(), walk.symbols.size() + 1);
  }
}

// --- pCore automaton, Eq. (2) + Fig. 5 -------------------------------------
struct PcorePfa {
  Alphabet alphabet;
  Pfa pfa;

  PcorePfa() : pfa(build()) {}

  Pfa build() {
    const Regex re =
        Regex::parse("TC((TCH)* | TS TR (TCH)*)* (TD$ | TY$)", alphabet);
    DistributionSpec spec;
    const auto TC = alphabet.at("TC"), TCH = alphabet.at("TCH"),
               TS = alphabet.at("TS"), TR = alphabet.at("TR"),
               TD = alphabet.at("TD"), TY = alphabet.at("TY");
    // Fig. 5 labels (see EXPERIMENTS.md for the label->edge assignment):
    spec.set_bigram_weight(TC, TCH, 0.6);
    spec.set_bigram_weight(TC, TS, 0.2);
    spec.set_bigram_weight(TC, TD, 0.1);
    spec.set_bigram_weight(TC, TY, 0.1);
    spec.set_bigram_weight(TCH, TCH, 0.6);
    spec.set_bigram_weight(TCH, TS, 0.2);
    spec.set_bigram_weight(TCH, TD, 0.1);
    spec.set_bigram_weight(TCH, TY, 0.1);
    spec.set_bigram_weight(TS, TR, 1.0);
    spec.set_bigram_weight(TR, TCH, 0.4);
    spec.set_bigram_weight(TR, TS, 0.3);
    spec.set_bigram_weight(TR, TY, 0.2);
    spec.set_bigram_weight(TR, TD, 0.1);
    return Pfa::from_regex(re, spec, alphabet);
  }
};

TEST(PfaPcoreTest, ValidatesEq1) {
  PcorePfa f;
  EXPECT_NO_THROW(f.pfa.validate());
}

TEST(PfaPcoreTest, EveryGeneratedPatternIsLegal) {
  PcorePfa f;
  support::Rng rng(99);
  WalkOptions options;
  options.size = 12;
  for (int i = 0; i < 5000; ++i) {
    const Walk walk = f.pfa.sample(rng, options);
    ASSERT_TRUE(walk.accepted);
    ASSERT_TRUE(f.pfa.accepts(walk.symbols))
        << f.alphabet.render(walk.symbols);
    // Every lifecycle starts with TC and ends with TD or TY.
    ASSERT_EQ(walk.symbols.front(), f.alphabet.at("TC"));
    const SymbolId last = walk.symbols.back();
    ASSERT_TRUE(last == f.alphabet.at("TD") || last == f.alphabet.at("TY"));
  }
}

TEST(PfaPcoreTest, SuspendAlwaysFollowedByResume) {
  PcorePfa f;
  support::Rng rng(7);
  WalkOptions options;
  options.size = 16;
  const SymbolId TS = f.alphabet.at("TS");
  const SymbolId TR = f.alphabet.at("TR");
  for (int i = 0; i < 2000; ++i) {
    const Walk walk = f.pfa.sample(rng, options);
    for (std::size_t j = 0; j < walk.symbols.size(); ++j) {
      if (walk.symbols[j] == TS) {
        ASSERT_LT(j + 1, walk.symbols.size());
        ASSERT_EQ(walk.symbols[j + 1], TR);
      }
    }
  }
}

TEST(PfaPcoreTest, EmpiricalTransitionFrequenciesMatchFig5) {
  PcorePfa f;
  support::Rng rng(2024);
  WalkOptions options;
  options.size = 12;
  const SymbolId TC = f.alphabet.at("TC"), TCH = f.alphabet.at("TCH"),
                 TS = f.alphabet.at("TS");
  std::map<std::pair<SymbolId, SymbolId>, double> counts;
  std::map<SymbolId, double> totals;
  for (int i = 0; i < 40000; ++i) {
    const Walk walk = f.pfa.sample(rng, options);
    for (std::size_t j = 0; j + 1 < walk.symbols.size(); ++j) {
      counts[{walk.symbols[j], walk.symbols[j + 1]}] += 1.0;
      totals[walk.symbols[j]] += 1.0;
    }
  }
  EXPECT_NEAR((counts[{TC, TCH}] / totals[TC]), 0.6, 0.02);
  EXPECT_NEAR((counts[{TC, TS}] / totals[TC]), 0.2, 0.02);
  EXPECT_NEAR((counts[{TCH, TCH}] / totals[TCH]), 0.6, 0.02);
  EXPECT_NEAR((counts[{TS, f.alphabet.at("TR")}] / totals[TS]), 1.0, 1e-12);
}

TEST(PfaPcoreTest, WalkEndsAtAbsorbingAcceptWithoutRestart) {
  PcorePfa f;
  support::Rng rng(31);
  WalkOptions options;
  options.size = 20;
  options.complete_to_accept = true;
  for (int i = 0; i < 500; ++i) {
    const Walk walk = f.pfa.sample(rng, options);
    ASSERT_TRUE(walk.accepted);
    // A lifecycle may terminate early (TD/TY is absorbing); completion may
    // add at most the distance-to-accept (<= 3: ... TS -> TR -> TD).
    ASSERT_GE(walk.symbols.size(), 2u);  // at least TC + terminal
    ASSERT_LE(walk.symbols.size(), options.size + 3);
  }
}

TEST(PfaPcoreTest, RestartAtAcceptReachesRequestedSize) {
  PcorePfa f;
  support::Rng rng(33);
  WalkOptions options;
  options.size = 40;
  options.restart_at_accept = true;
  const SymbolId TC = f.alphabet.at("TC");
  const SymbolId TD = f.alphabet.at("TD");
  const SymbolId TY = f.alphabet.at("TY");
  for (int i = 0; i < 200; ++i) {
    const Walk walk = f.pfa.sample(rng, options);
    ASSERT_GE(walk.symbols.size(), options.size);
    ASSERT_TRUE(walk.accepted);
    // The pattern decomposes into complete lifecycles: every TD/TY is
    // followed by a TC (a new task), and each lifecycle is legal.
    std::vector<SymbolId> lifecycle;
    for (const SymbolId s : walk.symbols) {
      lifecycle.push_back(s);
      if (s == TD || s == TY) {
        ASSERT_TRUE(f.pfa.accepts(lifecycle))
            << f.alphabet.render(lifecycle);
        lifecycle.clear();
      } else {
        if (lifecycle.size() == 1) ASSERT_EQ(lifecycle.front(), TC);
      }
    }
    ASSERT_TRUE(lifecycle.empty());  // completion closed the last lifecycle
  }
}

TEST(PfaPcoreTest, TruncatedWalkWithoutCompletionMayBeIllegal) {
  PcorePfa f;
  support::Rng rng(77);
  WalkOptions options;
  options.size = 3;
  options.complete_to_accept = false;
  bool saw_unaccepted = false;
  for (int i = 0; i < 200 && !saw_unaccepted; ++i) {
    saw_unaccepted = !f.pfa.sample(rng, options).accepted;
  }
  EXPECT_TRUE(saw_unaccepted);
}

// --- degenerate languages ---------------------------------------------------

TEST(PfaTest, RestartAtAcceptTerminatesOnEpsilonOnlyLanguage) {
  // The empty regex denotes the ε-only language: its automaton is a
  // single dead-end accepting start state.  With restart_at_accept a
  // restart lands right back in that dead end, so the sampler must
  // detect that no progress is possible and stop instead of spinning
  // forever while walk.states grows unboundedly.
  Alphabet alphabet;
  const Regex re = Regex::parse("", alphabet);
  const Pfa pfa = Pfa::from_regex(re, DistributionSpec{}, alphabet);
  ASSERT_TRUE(pfa.states()[pfa.start()].transitions.empty());
  ASSERT_TRUE(pfa.states()[pfa.start()].accepting);

  support::Rng rng(1);
  WalkOptions options;
  options.size = 8;
  options.restart_at_accept = true;
  const Walk walk = pfa.sample(rng, options);
  EXPECT_TRUE(walk.symbols.empty());
  EXPECT_TRUE(walk.accepted);
  // No unbounded state growth: at most the start state plus one restart.
  EXPECT_LE(walk.states.size(), 2u);
}

TEST(PfaTest, RestartAtAcceptStillWorksOnProductiveLanguages) {
  // Sanity check that the dead-start guard does not disturb the normal
  // churn mode: a productive start state keeps restarting as before.
  PcorePfa f;
  support::Rng rng(17);
  WalkOptions options;
  options.size = 24;
  options.restart_at_accept = true;
  const Walk walk = f.pfa.sample(rng, options);
  EXPECT_GE(walk.symbols.size(), options.size);
}

// --- construction errors ----------------------------------------------------

TEST(PfaTest, UniformDefaultWhenSpecEmpty) {
  Alphabet alphabet;
  const Regex re = Regex::parse("a | b | c", alphabet);
  const Pfa pfa = Pfa::from_regex(re, DistributionSpec{}, alphabet);
  const auto& start = pfa.states()[pfa.start()];
  ASSERT_EQ(start.transitions.size(), 3u);
  for (const auto& t : start.transitions) {
    EXPECT_NEAR(t.probability, 1.0 / 3.0, 1e-12);
  }
}

TEST(PfaTest, ToDotIncludesProbabilities) {
  Fig3 f;
  const std::string dot = f.pfa.to_dot(f.alphabet);
  EXPECT_NE(dot.find("0.6"), std::string::npos);
  EXPECT_NE(dot.find("0.4"), std::string::npos);
}

TEST(PfaTest, PrefixProbabilityIgnoresAcceptance) {
  Fig3 f;
  EXPECT_NEAR(f.pfa.prefix_probability({f.a}), 0.6, 1e-12);
  EXPECT_NEAR(f.pfa.prefix_probability({f.a, f.c}), 0.18, 1e-12);
  EXPECT_DOUBLE_EQ(f.pfa.prefix_probability({f.d}), 0.0);
}

// Property sweep: for several seeds the sampler remains within the language.
class PfaSampleSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PfaSampleSweep, AllSamplesAccepted) {
  PcorePfa f;
  support::Rng rng(GetParam());
  WalkOptions options;
  options.size = 1 + GetParam() % 30;
  for (int i = 0; i < 500; ++i) {
    const Walk walk = f.pfa.sample(rng, options);
    ASSERT_TRUE(walk.accepted);
    ASSERT_TRUE(f.pfa.accepts(walk.symbols));
    ASSERT_GT(walk.probability, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PfaSampleSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace ptest::pfa
