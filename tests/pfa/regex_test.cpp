#include "ptest/pfa/regex.hpp"

#include <gtest/gtest.h>

namespace ptest::pfa {
namespace {

TEST(RegexTest, ParsesSingleSymbol) {
  Alphabet alphabet;
  const Regex re = Regex::parse("TC", alphabet);
  ASSERT_EQ(alphabet.size(), 1u);
  EXPECT_EQ(alphabet.name(0), "TC");
  const auto& nodes = re.nodes();
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(nodes[0].kind, RegexNodeKind::kSymbol);
}

TEST(RegexTest, MultiCharacterSymbolsNeedNoDelimiters) {
  Alphabet alphabet;
  (void)Regex::parse("TC TCH TS", alphabet);
  EXPECT_EQ(alphabet.size(), 3u);
  EXPECT_TRUE(alphabet.find("TCH").has_value());
}

TEST(RegexTest, ParsesPaperFig3Expression) {
  Alphabet alphabet;
  const Regex re = Regex::parse("(a c* d) | b", alphabet);
  EXPECT_EQ(alphabet.size(), 4u);
  EXPECT_EQ(re.to_string(alphabet), "(a (c)* d | b)");
}

TEST(RegexTest, ParsesPaperEq2Expression) {
  Alphabet alphabet;
  // Eq. (2): RE = TC((TCH)* | TS TR (TCH)*)* (TD$ | TY$)
  const Regex re =
      Regex::parse("TC((TCH)* | TS TR (TCH)*)* (TD$ | TY$)", alphabet);
  EXPECT_EQ(alphabet.size(), 6u);
  EXPECT_FALSE(re.to_string(alphabet).empty());
}

TEST(RegexTest, OperatorsStarPlusOptional) {
  Alphabet alphabet;
  const Regex re = Regex::parse("a+ b? c*", alphabet);
  // Rendered with explicit parentheses.
  EXPECT_EQ(re.to_string(alphabet), "(a)+ (b)? (c)*");
}

TEST(RegexTest, NestedGroups) {
  Alphabet alphabet;
  const Regex re = Regex::parse("((a b) | (c d))*", alphabet);
  EXPECT_EQ(re.to_string(alphabet), "((a b | c d))*");
}

TEST(RegexTest, EmptyInputIsEpsilon) {
  Alphabet alphabet;
  const Regex re = Regex::parse("", alphabet);
  ASSERT_EQ(re.nodes().size(), 1u);
  EXPECT_EQ(re.nodes()[0].kind, RegexNodeKind::kEpsilon);
}

TEST(RegexTest, UnderscoreAndDigitsInSymbols) {
  Alphabet alphabet;
  (void)Regex::parse("task_create task2", alphabet);
  EXPECT_TRUE(alphabet.find("task_create").has_value());
  EXPECT_TRUE(alphabet.find("task2").has_value());
}

TEST(RegexTest, RejectsUnbalancedParens) {
  Alphabet alphabet;
  EXPECT_THROW((void)Regex::parse("(a b", alphabet), RegexParseError);
  EXPECT_THROW((void)Regex::parse("a b)", alphabet), RegexParseError);
}

TEST(RegexTest, RejectsDanglingOperator) {
  Alphabet alphabet;
  EXPECT_THROW((void)Regex::parse("* a", alphabet), RegexParseError);
}

TEST(RegexTest, RejectsStrayCharacter) {
  Alphabet alphabet;
  try {
    (void)Regex::parse("a @ b", alphabet);
    FAIL() << "expected RegexParseError";
  } catch (const RegexParseError& e) {
    EXPECT_EQ(e.position(), 2u);
  }
}

TEST(RegexTest, SharedAlphabetAcrossExpressions) {
  Alphabet alphabet;
  (void)Regex::parse("a b", alphabet);
  (void)Regex::parse("b c", alphabet);
  EXPECT_EQ(alphabet.size(), 3u);
  EXPECT_EQ(alphabet.at("b"), 1u);
}

TEST(AlphabetTest, InternIsIdempotent) {
  Alphabet alphabet;
  const SymbolId a1 = alphabet.intern("TC");
  const SymbolId a2 = alphabet.intern("TC");
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(alphabet.size(), 1u);
}

TEST(AlphabetTest, RejectsEmptyName) {
  Alphabet alphabet;
  EXPECT_THROW((void)alphabet.intern(""), std::invalid_argument);
}

TEST(AlphabetTest, AtThrowsOnUnknown) {
  Alphabet alphabet;
  EXPECT_THROW((void)alphabet.at("nope"), std::out_of_range);
}

TEST(AlphabetTest, RenderJoinsNames) {
  Alphabet alphabet;
  const SymbolId a = alphabet.intern("TC");
  const SymbolId b = alphabet.intern("TD");
  EXPECT_EQ(alphabet.render({a, b, a}), "TC TD TC");
  EXPECT_EQ(alphabet.render({}), "");
}

}  // namespace
}  // namespace ptest::pfa
