#include "ptest/pfa/estimator.hpp"

#include <gtest/gtest.h>

#include "ptest/pfa/pfa.hpp"
#include "ptest/support/rng.hpp"

namespace ptest::pfa {
namespace {

TEST(EstimatorTest, RecoverKnownBigramFrequencies) {
  // Feed traces where after 'a' the next symbol is 'b' 75% / 'c' 25%.
  Alphabet alphabet;
  const SymbolId a = alphabet.intern("a");
  const SymbolId b = alphabet.intern("b");
  const SymbolId c = alphabet.intern("c");
  TraceEstimator estimator(/*smoothing=*/0.0);
  for (int i = 0; i < 300; ++i) estimator.observe({a, b});
  for (int i = 0; i < 100; ++i) estimator.observe({a, c});
  const DistributionSpec spec = estimator.estimate(alphabet.size());
  const double wb = spec.weight(0, a, b);
  const double wc = spec.weight(0, a, c);
  EXPECT_NEAR(wb / (wb + wc), 0.75, 1e-9);
}

TEST(EstimatorTest, SmoothingKeepsUnseenTransitionsSmallButPositive) {
  Alphabet alphabet;
  const SymbolId a = alphabet.intern("a");
  const SymbolId b = alphabet.intern("b");
  (void)alphabet.intern("c");
  TraceEstimator estimator(/*smoothing=*/1.0);
  for (int i = 0; i < 100; ++i) estimator.observe({a, b});
  const DistributionSpec spec = estimator.estimate(alphabet.size());
  const double seen = spec.weight(0, a, b);
  const double unseen = spec.weight(0, a, alphabet.at("c"));
  EXPECT_GT(seen, unseen);
  EXPECT_GT(unseen, 0.0);
  EXPECT_GT(seen / unseen, 10.0);
}

TEST(EstimatorTest, UnseenContextPinsUniformProbabilities) {
  // Regression: a symbol never seen as *context* must resolve to equal
  // weights for every successor — the estimator emits nothing for it, so
  // the DistributionSpec uniform fallback (1.0) applies.  The old code's
  // global symbol floor skewed exactly this case: it scaled every
  // successor by a floor derived from the busiest context's total.
  Alphabet alphabet;
  const SymbolId a = alphabet.intern("a");
  const SymbolId b = alphabet.intern("b");
  const SymbolId c = alphabet.intern("c");
  TraceEstimator estimator(/*smoothing=*/1.0);
  for (int i = 0; i < 50; ++i) estimator.observe({a, b});
  const DistributionSpec spec = estimator.estimate(alphabet.size());
  // 'b' and 'c' never appear as context: all their successors are the
  // uniform fallback weight, exactly 1.0 each.
  for (const SymbolId context : {b, c}) {
    for (const SymbolId next : {a, b, c}) {
      EXPECT_FALSE(spec.explicit_bigram_weight(context, next).has_value());
      EXPECT_DOUBLE_EQ(spec.weight(0, context, next), 1.0);
    }
  }
  // The seen context 'a' now carries the full Laplace law over its own
  // total: (count + 1) / (50 + 1 * 3) for every successor.
  EXPECT_DOUBLE_EQ(spec.weight(0, a, b), 51.0 / 53.0);
  EXPECT_DOUBLE_EQ(spec.weight(0, a, a), 1.0 / 53.0);
  EXPECT_DOUBLE_EQ(spec.weight(0, a, c), 1.0 / 53.0);
}

TEST(EstimatorTest, UnevenContextTotalsSmoothAgainstTheirOwnTotal) {
  // Regression for the old max-total floor: an unseen successor in a
  // lightly observed context must weigh k / (total_ctx + k|Σ|), not
  // k / (max_total + k|Σ|).
  Alphabet alphabet;
  const SymbolId a = alphabet.intern("a");
  const SymbolId b = alphabet.intern("b");
  const SymbolId c = alphabet.intern("c");
  TraceEstimator estimator(/*smoothing=*/1.0);
  for (int i = 0; i < 997; ++i) estimator.observe({a, b});  // busy context a
  estimator.observe({b, a});                                // light context b
  const DistributionSpec spec = estimator.estimate(alphabet.size());
  // context b saw 1 transition: unseen successor c = (0+1)/(1+3).
  EXPECT_DOUBLE_EQ(spec.weight(0, b, c), 1.0 / 4.0);
  EXPECT_DOUBLE_EQ(spec.weight(0, b, a), 2.0 / 4.0);
}

TEST(EstimatorTest, ZeroSmoothingPinsMlWeightsAndUniformFallback) {
  // smoothing = 0 is the pure ML estimate: observed pairs carry
  // count / total exactly; unseen pairs emit nothing (zero weights are
  // not representable) and resolve to the uniform fallback 1.0.
  Alphabet alphabet;
  const SymbolId a = alphabet.intern("a");
  const SymbolId b = alphabet.intern("b");
  const SymbolId c = alphabet.intern("c");
  TraceEstimator estimator(/*smoothing=*/0.0);
  for (int i = 0; i < 3; ++i) estimator.observe({a, b});
  estimator.observe({a, c});
  const DistributionSpec spec = estimator.estimate(alphabet.size());
  EXPECT_DOUBLE_EQ(spec.weight(0, a, b), 0.75);
  EXPECT_DOUBLE_EQ(spec.weight(0, a, c), 0.25);
  EXPECT_FALSE(spec.explicit_bigram_weight(a, a).has_value());
  EXPECT_DOUBLE_EQ(spec.weight(0, a, a), 1.0);
  EXPECT_DOUBLE_EQ(spec.fallback_weight(a), 1.0);  // no global floor emitted
}

TEST(EstimatorTest, EmptyEstimatorYieldsEmptySpec) {
  // No traces at all: the spec must be pure uniform for any smoothing,
  // not a sea of floors.
  for (const double smoothing : {0.0, 1.0}) {
    TraceEstimator estimator(smoothing);
    EXPECT_TRUE(estimator.estimate(4).empty());
  }
}

TEST(EstimatorTest, RejectsNegativeSmoothing) {
  EXPECT_THROW(TraceEstimator(-0.5), std::invalid_argument);
}

TEST(EstimatorTest, TraceCountTracksObservations) {
  TraceEstimator estimator;
  EXPECT_EQ(estimator.trace_count(), 0u);
  estimator.observe({0, 1});
  estimator.observe({1, 0});
  EXPECT_EQ(estimator.trace_count(), 2u);
}

TEST(EstimatorTest, ClosesTheProfilingLoop) {
  // Sample traces from a known PFA, estimate a spec from them, rebuild a
  // PFA with the estimated spec, and verify the transition probabilities
  // are recovered within sampling error.  This is the paper's "learned
  // through system profiling" workflow end to end.
  Alphabet alphabet;
  const Regex re = Regex::parse("(a c* d) | b", alphabet);
  const SymbolId a = alphabet.at("a"), b = alphabet.at("b"),
                 c = alphabet.at("c"), d = alphabet.at("d");
  DistributionSpec truth;
  truth.set_bigram_weight(DistributionSpec::kStartContext, a, 0.6);
  truth.set_bigram_weight(DistributionSpec::kStartContext, b, 0.4);
  truth.set_bigram_weight(a, c, 0.3);
  truth.set_bigram_weight(a, d, 0.7);
  truth.set_bigram_weight(c, c, 0.3);
  truth.set_bigram_weight(c, d, 0.7);
  const Pfa source = Pfa::from_regex(re, truth, alphabet);

  support::Rng rng(55);
  TraceEstimator estimator(/*smoothing=*/0.0);
  WalkOptions options;
  options.size = 64;  // walks end naturally at the absorbing accept state
  for (int i = 0; i < 50000; ++i) {
    estimator.observe(source.sample(rng, options).symbols);
  }
  const Pfa learned = Pfa::from_regex(
      re, estimator.estimate(alphabet.size()), alphabet);
  EXPECT_NEAR(learned.word_probability({b}), 0.4, 0.01);
  EXPECT_NEAR(learned.word_probability({a, d}), 0.42, 0.01);
  EXPECT_NEAR(learned.word_probability({a, c, d}), 0.126, 0.01);
}

}  // namespace
}  // namespace ptest::pfa
