// End-to-end oracle regression: every registered scenario runs its own
// campaign under the paper's PFA configuration and the bug oracle must be
// satisfied — the seeded bug found (with the expected kind and marker),
// or, for clean scenarios, nothing found at all.  Where a benign
// counterpart exists the oracle must stay silent on it, which keeps the
// oracles honest: an oracle that fires on the corrected workload (or the
// non-interleaving plan) would be matching noise, not the seeded bug.
#include <gtest/gtest.h>

#include "ptest/core/campaign.hpp"
#include "ptest/core/replay.hpp"
#include "ptest/scenario/registry.hpp"

namespace ptest::scenario {
namespace {

core::CampaignResult run_default(const Scenario& scenario,
                                 bool benign = false) {
  core::CampaignOptions options;
  options.budget = 0;  // the scenario's default budget
  const auto result =
      core::Campaign::run_scenario(scenario.name, options, benign);
  EXPECT_TRUE(result.ok()) << (result.ok() ? "" : result.error());
  return result.value();
}

TEST(ScenarioOracleTest, EveryScenarioSatisfiesItsOracleUnderThePfaPlan) {
  for (const Scenario& scenario : ScenarioRegistry::builtin().all()) {
    SCOPED_TRACE(scenario.name);
    const core::CampaignResult result = run_default(scenario);
    EXPECT_TRUE(scenario.oracle.satisfied(result))
        << "detections=" << result.total_detections
        << " distinct=" << result.distinct_failures.size();
    if (scenario.expects_bug()) {
      EXPECT_GT(result.total_detections, 0u);
      // At least one retained failure is the seeded bug itself.
      bool matched = false;
      for (const auto& [signature, report] : result.distinct_failures) {
        matched |= scenario.oracle.matches(report);
      }
      EXPECT_TRUE(matched);
    } else {
      EXPECT_EQ(result.total_detections, 0u);
      EXPECT_TRUE(result.distinct_failures.empty());
    }
  }
}

TEST(ScenarioOracleTest, OracleStaysSilentOnEveryBenignVariant) {
  for (const Scenario& scenario : ScenarioRegistry::builtin().all()) {
    if (!scenario.has_benign()) continue;
    SCOPED_TRACE(scenario.name);
    const core::CampaignResult result = run_default(scenario, true);
    EXPECT_FALSE(scenario.oracle.fired(result))
        << "oracle fired on the benign variant";
  }
}

TEST(ScenarioOracleTest, RetainedFailuresReplayToTheSameSignature) {
  // "Helps users reproduce the bugs": the reports a scenario campaign
  // retains must replay deterministically — same kind, culprits, and
  // panic reason — through the scenario's own plan and workload.
  for (const Scenario& scenario : ScenarioRegistry::builtin().all()) {
    if (!scenario.expects_bug()) continue;
    SCOPED_TRACE(scenario.name);
    const core::CampaignResult result = run_default(scenario);
    ASSERT_FALSE(result.distinct_failures.empty());
    const core::CompiledTestPlanPtr plan = core::compile(scenario.config);
    const auto& [signature, report] = *result.distinct_failures.begin();
    const core::SessionResult replayed =
        core::replay(report, *plan, scenario.setup);
    EXPECT_TRUE(core::verify_reproduces(report, replayed)) << signature;
  }
}

TEST(ScenarioOracleTest, ScenarioCampaignsAreJobsInvariant) {
  // The registry rides on the parallel campaign runner; scenario results
  // must inherit its determinism contract (jobs cannot change anything).
  for (const char* name : {"queue-order", "philosophers-deadlock"}) {
    SCOPED_TRACE(name);
    core::CampaignOptions serial;
    serial.budget = 0;
    serial.jobs = 1;
    core::CampaignOptions parallel = serial;
    parallel.jobs = 4;
    const auto a = core::Campaign::run_scenario(name, serial);
    const auto b = core::Campaign::run_scenario(name, parallel);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value().total_detections, b.value().total_detections);
    ASSERT_EQ(a.value().distinct_failures.size(),
              b.value().distinct_failures.size());
    auto it = b.value().distinct_failures.begin();
    for (const auto& [signature, report] : a.value().distinct_failures) {
      EXPECT_EQ(signature, it->first);
      ++it;
    }
  }
}

TEST(ScenarioOracleTest, OracleMarkerRejectsOtherFailures) {
  // A crash oracle with a marker must not match a crash with a different
  // assertion code, and kind mismatches never match.
  const Scenario* queue = ScenarioRegistry::builtin().find("queue-order");
  ASSERT_NE(queue, nullptr);
  core::BugReport report;
  report.kind = core::BugKind::kSlaveCrash;
  report.kernel.panic_reason = "task 1 failed assertion (exit code 99)";
  EXPECT_FALSE(queue->oracle.matches(report));
  report.kernel.panic_reason = "task 1 failed assertion (exit code 25)";
  EXPECT_TRUE(queue->oracle.matches(report));
  report.kind = core::BugKind::kDeadlock;
  EXPECT_FALSE(queue->oracle.matches(report));
}

}  // namespace
}  // namespace ptest::scenario
