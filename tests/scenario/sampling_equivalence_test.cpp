// Sampling-equivalence suite: the SoA threshold-table sampler behind
// Pfa::sample_into must be indistinguishable from the legacy
// linear-scan sampler — same walks, same RNG draw count — for every
// plan in the built-in scenario catalog and for adversarial weight
// sets chosen to sit on rounding boundaries.
//
// The reference implementation below is the pre-SoA sampler verbatim
// (per-step weight vector + Rng::weighted_index subtraction scan,
// including the per-step closer-edge masking of complete_to_accept),
// rebuilt from the public Pfa surface.  Any divergence — a different
// pick, a different number of uniforms consumed, a different
// restart/termination decision — fails loudly here long before it
// would surface as a golden-fingerprint mismatch.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ptest/core/test_plan.hpp"
#include "ptest/pfa/pfa.hpp"
#include "ptest/scenario/registry.hpp"
#include "ptest/support/rng.hpp"

namespace ptest {
namespace {

/// The legacy Pfa::sample, reimplemented against the public API.
pfa::Walk reference_sample(const pfa::Pfa& pfa, support::Rng& rng,
                           const pfa::WalkOptions& options) {
  const auto& states = pfa.states();
  const std::vector<std::uint32_t> accept_distance =
      pfa.dfa().distance_to_accept();

  pfa::Walk walk;
  pfa::StateId current = pfa.start();
  walk.states.push_back(current);

  std::vector<double> weights;
  const auto step_random = [&](const pfa::PfaState& state) {
    weights.clear();
    for (const pfa::PfaTransition& t : state.transitions) {
      weights.push_back(t.probability);
    }
    const std::size_t pick = rng.weighted_index(weights);
    const pfa::PfaTransition& t = state.transitions[pick];
    walk.symbols.push_back(t.symbol);
    walk.states.push_back(t.target);
    walk.probability *= t.probability;
    current = t.target;
  };

  while (walk.symbols.size() < options.size) {
    const pfa::PfaState& state = states[current];
    if (state.transitions.empty()) {  // dead-end accepting state
      if (!options.restart_at_accept) break;
      if (states[pfa.start()].transitions.empty()) break;
      current = pfa.start();
      walk.states.push_back(current);
      continue;
    }
    step_random(state);
  }

  if (options.complete_to_accept) {
    while (!states[current].accepting &&
           walk.symbols.size() < options.max_size) {
      const pfa::PfaState& state = states[current];
      weights.clear();
      double mass = 0.0;
      for (const pfa::PfaTransition& t : state.transitions) {
        const bool closer =
            accept_distance[t.target] + 1 == accept_distance[current];
        weights.push_back(closer ? t.probability : 0.0);
        mass += weights.back();
      }
      if (!(mass > 0.0)) break;
      const std::size_t pick = rng.weighted_index(weights);
      const pfa::PfaTransition& t = state.transitions[pick];
      walk.symbols.push_back(t.symbol);
      walk.states.push_back(t.target);
      walk.probability *= t.probability;
      current = t.target;
    }
  }
  walk.accepted = states[current].accepting;
  return walk;
}

/// Asserts reference, sample(), and sample_into() agree on the walk AND
/// on the number of raw RNG values consumed (the stream-position check:
/// the next raw draw after sampling must match across all three).
void expect_equivalent(const pfa::Pfa& pfa, std::uint64_t seed,
                       const pfa::WalkOptions& options,
                       const std::string& label) {
  support::Rng ref_rng(seed);
  support::Rng cdf_rng(seed);
  support::Rng into_rng(seed);

  const pfa::Walk reference = reference_sample(pfa, ref_rng, options);
  const pfa::Walk via_sample = pfa.sample(cdf_rng, options);
  pfa::WalkScratch scratch;
  const pfa::Walk& via_into = pfa.sample_into(scratch, into_rng, options);

  EXPECT_EQ(via_sample.symbols, reference.symbols) << label;
  EXPECT_EQ(via_sample.states, reference.states) << label;
  EXPECT_EQ(via_sample.accepted, reference.accepted) << label;
  // Both multiply the identical picks in the identical order, so the
  // probability product must be bit-equal, not just close.
  EXPECT_EQ(via_sample.probability, reference.probability) << label;

  EXPECT_EQ(via_into.symbols, via_sample.symbols) << label;
  EXPECT_EQ(via_into.states, via_sample.states) << label;
  EXPECT_EQ(via_into.accepted, via_sample.accepted) << label;
  EXPECT_EQ(via_into.probability, via_sample.probability) << label;

  const std::uint64_t ref_next = ref_rng.next();
  EXPECT_EQ(cdf_rng.next(), ref_next) << label << ": draw count diverged";
  EXPECT_EQ(into_rng.next(), ref_next) << label << ": draw count diverged";
}

TEST(SamplingEquivalence, EveryCatalogPlanOverSeedSweep) {
  const scenario::ScenarioRegistry& registry =
      scenario::ScenarioRegistry::builtin();
  ASSERT_FALSE(registry.empty());
  for (const scenario::Scenario& entry : registry.all()) {
    const core::CompiledTestPlanPtr plan = core::compile(entry.config);
    pfa::WalkOptions options;
    options.size = plan->generator_options.size;
    options.complete_to_accept = plan->generator_options.complete_to_accept;
    options.restart_at_accept = plan->generator_options.restart_at_accept;
    options.max_size = plan->generator_options.max_size;
    for (std::uint64_t k = 0; k < 8; ++k) {
      const std::uint64_t seed = support::derive_seed(entry.config.seed, k);
      expect_equivalent(plan->pfa, seed, options,
                        entry.name + " seed#" + std::to_string(k));
    }
  }
}

TEST(SamplingEquivalence, CatalogPlansUnderFlippedWalkModes) {
  // The catalog mostly runs complete_to_accept; flip both mode bits so
  // the masked table, the restart path, and the batched phase-1 loop all
  // see every plan.
  const scenario::ScenarioRegistry& registry =
      scenario::ScenarioRegistry::builtin();
  for (const scenario::Scenario& entry : registry.all()) {
    const core::CompiledTestPlanPtr plan = core::compile(entry.config);
    for (const bool complete : {false, true}) {
      for (const bool restart : {false, true}) {
        pfa::WalkOptions options;
        options.size = plan->generator_options.size;
        options.complete_to_accept = complete;
        options.restart_at_accept = restart;
        options.max_size = plan->generator_options.max_size;
        expect_equivalent(
            plan->pfa, entry.config.seed, options,
            entry.name + (complete ? "+complete" : "-complete") +
                (restart ? "+restart" : "-restart"));
      }
    }
  }
}

TEST(SamplingEquivalence, AdversarialWeightsStressThePickBoundaries) {
  // Weights spanning 17 orders of magnitude: after normalization the
  // subtraction scan's partial sums round at nearly every step, so a
  // naive prefix-sum CDF would disagree on boundary draws.  The
  // threshold table must reproduce the scan on all of them.
  pfa::Alphabet alphabet;
  const pfa::Regex re =
      pfa::Regex::parse("(a | b | c | d | e)* f", alphabet);
  pfa::DistributionSpec spec;
  spec.set_symbol_weight(alphabet.at("a"), 0.1);
  spec.set_symbol_weight(alphabet.at("b"), 1e-17);
  spec.set_symbol_weight(alphabet.at("c"), 0.3 - 0.1 - 0.1);  // 0.09999...
  spec.set_symbol_weight(alphabet.at("d"), 7e16);
  spec.set_symbol_weight(alphabet.at("e"), 0.1 + 1e-16);
  spec.set_symbol_weight(alphabet.at("f"), 1e-3);
  const pfa::Pfa pfa = pfa::Pfa::from_regex(re, spec, alphabet);

  pfa::WalkOptions options;
  options.size = 24;
  for (std::uint64_t seed = 0; seed < 512; ++seed) {
    expect_equivalent(pfa, seed, options,
                      "adversarial seed#" + std::to_string(seed));
  }
}

TEST(SamplingEquivalence, SampleIntoReusesTheScratchBuffers) {
  pfa::Alphabet alphabet;
  const pfa::Regex re = pfa::Regex::parse("(a b)* c", alphabet);
  const pfa::Pfa pfa =
      pfa::Pfa::from_regex(re, pfa::DistributionSpec{}, alphabet);

  pfa::WalkOptions options;
  options.size = 16;
  pfa::WalkScratch scratch;
  scratch.reserve(options);  // pre-size so even the first walk fits
  support::Rng rng(7);
  const pfa::Walk& first = pfa.sample_into(scratch, rng, options);
  EXPECT_EQ(&first, &scratch.walk);  // the result aliases the scratch
  const std::size_t symbol_capacity = scratch.walk.symbols.capacity();
  const std::size_t state_capacity = scratch.walk.states.capacity();
  for (int i = 0; i < 32; ++i) {
    (void)pfa.sample_into(scratch, rng, options);
    // reserve() sized the buffers for max_size walks, so no sample may
    // ever reallocate them — reuse, not regrowth.
    EXPECT_EQ(scratch.walk.symbols.capacity(), symbol_capacity);
    EXPECT_EQ(scratch.walk.states.capacity(), state_capacity);
  }
}

}  // namespace
}  // namespace ptest
