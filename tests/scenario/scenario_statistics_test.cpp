// Statistical PFA validation, per scenario: chi-square goodness of fit of
// Pfa::sample's transition frequencies against each scenario's
// DistributionSpec.  Seeds are fixed, so every statistic is an exact
// number compared against a fixed critical value — no flaky tolerance
// bands.  A cross-fit negative control proves the statistic has the power
// to reject a genuinely different distribution.
#include "ptest/scenario/statistics.hpp"

#include <gtest/gtest.h>

#include "ptest/scenario/registry.hpp"

namespace ptest::scenario {
namespace {

constexpr std::uint64_t kSamplingSeed = 0x57a7a11dULL;
constexpr std::size_t kWalks = 2000;
/// Right-tail 0.1%: with 12 scenario fits per run, a correct sampler
/// produces a false alarm once per ~80 full-suite runs *if seeds varied*;
/// they are fixed, so a pass today is a pass forever.
constexpr double kAlpha = 0.001;

TEST(ScenarioStatisticsTest, SampleFrequenciesMatchEveryScenarioSpec) {
  for (const Scenario& scenario : ScenarioRegistry::builtin().all()) {
    SCOPED_TRACE(scenario.name);
    const core::CompiledTestPlanPtr plan = core::compile(scenario.config);
    const ChiSquareFit fit = chi_square_fit(*plan, kSamplingSeed, kWalks);
    EXPECT_EQ(fit.walks, kWalks);
    EXPECT_GT(fit.transitions, 0u);
    if (fit.degrees_of_freedom == 0) {
      // Fully forced automaton (e.g. the create-only starvation plan):
      // nothing to fit, and the statistic must reflect that.
      EXPECT_EQ(fit.statistic, 0.0);
      continue;
    }
    const double critical =
        chi_square_critical(fit.degrees_of_freedom, kAlpha);
    EXPECT_LT(fit.statistic, critical)
        << "df=" << fit.degrees_of_freedom << " stat=" << fit.statistic;
  }
}

TEST(ScenarioStatisticsTest, FitIsDeterministicForAFixedSeed) {
  const Scenario* scenario =
      ScenarioRegistry::builtin().find("philosophers-deadlock");
  ASSERT_NE(scenario, nullptr);
  const core::CompiledTestPlanPtr plan = core::compile(scenario->config);
  const ChiSquareFit a = chi_square_fit(*plan, kSamplingSeed, kWalks);
  const ChiSquareFit b = chi_square_fit(*plan, kSamplingSeed, kWalks);
  EXPECT_EQ(a.statistic, b.statistic);  // bitwise: same draws, same sums
  EXPECT_EQ(a.degrees_of_freedom, b.degrees_of_freedom);
  EXPECT_EQ(a.transitions, b.transitions);
}

TEST(ScenarioStatisticsTest, CrossFitRejectsAMismatchedDistribution) {
  // Negative control: sample from the uniform-PD plan, fit against the
  // suspend-heavy expectations of the same automaton.  The statistic must
  // blow far past the critical value, or the per-scenario assertions
  // above would be vacuous.
  const Scenario* scenario =
      ScenarioRegistry::builtin().find("philosophers-deadlock");
  ASSERT_NE(scenario, nullptr);
  core::PtestConfig uniform = scenario->config;
  uniform.distributions.clear();
  const core::CompiledTestPlanPtr sampler = core::compile(uniform);
  const core::CompiledTestPlanPtr reference =
      core::compile(scenario->config);
  const ChiSquareFit fit =
      chi_square_cross_fit(*sampler, *reference, kSamplingSeed, kWalks);
  ASSERT_GT(fit.degrees_of_freedom, 0u);
  EXPECT_GT(fit.statistic,
            10.0 * chi_square_critical(fit.degrees_of_freedom, kAlpha));
}

TEST(ScenarioStatisticsTest, RestartAtAcceptWalksStayAligned) {
  // Churn plans (restart_at_accept, case study 1) insert an extra state
  // into the walk trace at every lifecycle restart; the tally must pair
  // each symbol with the state it was actually drawn from, and the
  // correctly-aligned frequencies must still fit the spec.
  const Scenario* scenario = ScenarioRegistry::builtin().find("lost-update");
  ASSERT_NE(scenario, nullptr);
  core::PtestConfig churn = scenario->config;
  churn.restart_at_accept = true;
  churn.s = 12;  // several lifecycles per walk
  const core::CompiledTestPlanPtr plan = core::compile(churn);
  const ChiSquareFit fit = chi_square_fit(*plan, kSamplingSeed, kWalks);
  EXPECT_GT(fit.transitions, 0u);
  ASSERT_GT(fit.degrees_of_freedom, 0u);
  EXPECT_LT(fit.statistic,
            chi_square_critical(fit.degrees_of_freedom, kAlpha))
      << "df=" << fit.degrees_of_freedom << " stat=" << fit.statistic;
}

TEST(ScenarioStatisticsTest, CrossFitRejectsMismatchedSkeletons) {
  const Scenario* philosophers =
      ScenarioRegistry::builtin().find("philosophers-deadlock");
  const Scenario* starvation =
      ScenarioRegistry::builtin().find("writer-starvation");
  ASSERT_NE(philosophers, nullptr);
  ASSERT_NE(starvation, nullptr);
  const auto a = core::compile(philosophers->config);
  const auto b = core::compile(starvation->config);
  EXPECT_THROW((void)chi_square_cross_fit(*a, *b, 1, 10),
               std::invalid_argument);
}

TEST(ScenarioStatisticsTest, CriticalValuesMatchKnownQuantiles) {
  // Classic table values (two decimals) the Wilson–Hilferty approximation
  // must reproduce closely.  df=1 is the approximation's known weak spot
  // (~2.5% low); the scenario fits all carry df >= 3, where the error is
  // well under 1%.
  EXPECT_NEAR(chi_square_critical(1, 0.05), 3.84, 0.15);
  EXPECT_NEAR(chi_square_critical(10, 0.05), 18.31, 0.10);
  EXPECT_NEAR(chi_square_critical(12, 0.001), 32.91, 0.25);
  EXPECT_EQ(chi_square_critical(0, 0.05), 0.0);
  EXPECT_THROW((void)chi_square_critical(3, 0.0), std::invalid_argument);
  EXPECT_THROW((void)chi_square_critical(3, 1.0), std::invalid_argument);
  // Monotonic in df for a fixed alpha.
  EXPECT_LT(chi_square_critical(3, 0.01), chi_square_critical(6, 0.01));
}

}  // namespace
}  // namespace ptest::scenario
