// Registry mechanics and the negative paths of the scenario plumbing:
// malformed names come back as clean errors (never a throw-to-abort),
// benign requests on benign-less scenarios are rejected, and the catalog
// invariants every consumer relies on (unique names, resolvable program
// ids, sane metadata) hold for all built-in entries.
#include "ptest/scenario/registry.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "ptest/core/campaign.hpp"

namespace ptest::scenario {
namespace {

TEST(ScenarioRegistryTest, BuiltinHasAtLeastTenScenarios) {
  const ScenarioRegistry& registry = ScenarioRegistry::builtin();
  EXPECT_GE(registry.size(), 10u);
  EXPECT_EQ(registry.names().size(), registry.size());
}

TEST(ScenarioRegistryTest, NamesAreUniqueAndFindable) {
  const ScenarioRegistry& registry = ScenarioRegistry::builtin();
  std::set<std::string> seen;
  for (const Scenario& scenario : registry.all()) {
    EXPECT_TRUE(seen.insert(scenario.name).second)
        << "duplicate name " << scenario.name;
    const Scenario* found = registry.find(scenario.name);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->name, scenario.name);
  }
}

TEST(ScenarioRegistryTest, FindUnknownReturnsNull) {
  EXPECT_EQ(ScenarioRegistry::builtin().find("no-such-scenario"), nullptr);
  EXPECT_EQ(ScenarioRegistry::builtin().find(""), nullptr);
}

TEST(ScenarioRegistryTest, AddRejectsDuplicatesAndEmptyNames) {
  ScenarioRegistry registry;
  Scenario scenario;
  scenario.name = "x";
  registry.add(scenario);
  EXPECT_THROW(registry.add(scenario), std::invalid_argument);
  Scenario unnamed;
  EXPECT_THROW(registry.add(unnamed), std::invalid_argument);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(ScenarioRegistryTest, CatalogMetadataIsComplete) {
  for (const Scenario& scenario : ScenarioRegistry::builtin().all()) {
    SCOPED_TRACE(scenario.name);
    EXPECT_FALSE(scenario.summary.empty());
    EXPECT_FALSE(scenario.oracle.description.empty());
    EXPECT_TRUE(scenario.setup != nullptr);
    EXPECT_GT(scenario.default_budget, 0u);
    // Clean scenarios have no expected kind; bug scenarios do, and every
    // bug scenario ships a benign control.
    if (scenario.category == Category::kClean) {
      EXPECT_FALSE(scenario.expects_bug());
    } else {
      EXPECT_TRUE(scenario.expects_bug());
      EXPECT_TRUE(scenario.has_benign());
    }
  }
}

TEST(ScenarioRegistryTest, SetupRegistersThePlansProgram) {
  // The plan's program_id must resolve after setup — otherwise every TC
  // command would fail with kErrBadProgram and the campaign would be
  // vacuously green.
  for (const Scenario& scenario : ScenarioRegistry::builtin().all()) {
    SCOPED_TRACE(scenario.name);
    pcore::PcoreKernel kernel(scenario.config.kernel);
    scenario.setup(kernel);
    EXPECT_TRUE(kernel.has_program(scenario.config.program_id));
    if (scenario.has_benign()) {
      pcore::PcoreKernel benign_kernel(scenario.benign_plan().kernel);
      scenario.benign_workload()(benign_kernel);
      EXPECT_TRUE(
          benign_kernel.has_program(scenario.benign_plan().program_id));
    }
  }
}

TEST(ScenarioRegistryTest, BenignAccessorsThrowWithoutVariant) {
  Scenario scenario;
  scenario.name = "bare";
  EXPECT_FALSE(scenario.has_benign());
  EXPECT_THROW((void)scenario.benign_plan(), std::logic_error);
  EXPECT_THROW((void)scenario.benign_workload(), std::logic_error);
}

TEST(RunScenarioTest, UnknownNameIsACleanError) {
  const auto result = core::Campaign::run_scenario("no-such-scenario");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().find("unknown scenario"), std::string::npos);
  EXPECT_NE(result.error().find("no-such-scenario"), std::string::npos);
}

TEST(RunScenarioTest, BenignWithoutVariantIsACleanError) {
  // quicksort-clean is the control scenario and has no benign variant.
  const auto result =
      core::Campaign::run_scenario("quicksort-clean", {}, /*benign=*/true);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().find("no benign variant"), std::string::npos);
}

TEST(RunScenarioTest, ZeroBudgetMeansScenarioDefault) {
  const Scenario* scenario =
      ScenarioRegistry::builtin().find("quicksort-clean");
  ASSERT_NE(scenario, nullptr);
  core::CampaignOptions options;
  options.budget = 0;
  const auto result = core::Campaign::run_scenario("quicksort-clean", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().total_runs, scenario->default_budget);
}

TEST(RunScenarioTest, ExplicitBudgetAndSeedOverrideApply) {
  core::CampaignOptions options;
  options.budget = 3;
  const auto result =
      core::Campaign::run_scenario("quicksort-clean", options,
                                   /*benign=*/false, /*seed=*/1234u);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().total_runs, 3u);
}

}  // namespace
}  // namespace ptest::scenario
