// Golden-replay regression suite.
//
// For every registered scenario a canonical (seed, plan) fixture lives in
// tests/scenario/golden/<name>.golden, recording the trace fingerprint of
// the scenario's first campaign session and — for bug scenarios — the
// signature and replay fingerprint of the first retained failure.  The
// suite asserts the current tree reproduces those hashes bit for bit:
//
//   * the single-session fingerprint, from a compiled plan and from a
//     freshly compiled one (plan reuse must be invisible);
//   * the campaign's distinct failures across jobs=1/jobs=4 and
//     precompile on/off (all four combinations must retain identical
//     reports);
//   * the replay of the recorded failure (replay_traced), whose
//     fingerprint must match the committed one and reproduce the
//     original signature.
//
// Regenerate after an intentional behaviour change with
//   PTEST_GOLDEN_UPDATE=1 ctest -R scenario_golden
// (the binary rewrites the fixtures in the source tree, via the
// PTEST_SCENARIO_GOLDEN_DIR compile definition).
#include "ptest/scenario/golden.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "ptest/core/campaign.hpp"
#include "ptest/core/replay.hpp"
#include "ptest/scenario/registry.hpp"
#include "ptest/support/rng.hpp"

namespace ptest::scenario {
namespace {

std::string fixture_path(const std::string& name) {
  return std::string(PTEST_SCENARIO_GOLDEN_DIR) + "/" + name + ".golden";
}

bool update_mode() {
  const char* env = std::getenv("PTEST_GOLDEN_UPDATE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

std::string hex64(std::uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

/// "key rest-of-line" pairs; '#' lines are comments.
std::map<std::string, std::string> read_fixture(const std::string& path) {
  std::map<std::string, std::string> fields;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto space = line.find(' ');
    if (space == std::string::npos) continue;
    fields[line.substr(0, space)] = line.substr(space + 1);
  }
  return fields;
}

struct GoldenRecord {
  std::uint64_t seed = 0;
  std::string outcome;
  std::string trace_hash;
  std::string failure_signature = "-";
  std::string replay_hash = "-";
};

/// Computes the current tree's golden record for `scenario` and runs the
/// cross-configuration identity checks along the way.
GoldenRecord compute_record(const Scenario& scenario) {
  GoldenRecord record;
  record.seed = support::derive_seed(scenario.config.seed, 0);

  const core::CompiledTestPlanPtr plan = core::compile(scenario.config);
  const TracedRun session = run_traced(*plan, record.seed, scenario.setup);
  record.outcome = core::to_string(session.result.session.outcome);
  record.trace_hash = hex64(session.trace_hash);

  // Plan reuse must be invisible: a freshly compiled plan replays to the
  // identical fingerprint.
  const TracedRun fresh =
      run_traced(*core::compile(scenario.config), record.seed,
                 scenario.setup);
  EXPECT_EQ(fresh.trace_hash, session.trace_hash);

  // The scenario campaign retains identical failures for every
  // (jobs, precompile) combination; the first one replays to a stable
  // fingerprint.
  std::optional<core::BugReport> first_failure;
  std::string first_signature;
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    for (const bool precompile : {true, false}) {
      SCOPED_TRACE("jobs=" + std::to_string(jobs) +
                   " precompile=" + (precompile ? "on" : "off"));
      core::CampaignOptions options;
      options.budget = 0;
      options.jobs = jobs;
      options.precompile = precompile;
      const auto result = core::Campaign::run_scenario(scenario.name, options);
      if (!result.ok()) {
        ADD_FAILURE() << result.error();
        continue;
      }
      const core::CampaignResult& campaign = result.value();
      if (campaign.distinct_failures.empty()) {
        EXPECT_FALSE(first_failure.has_value());
        continue;
      }
      const auto& [signature, report] = *campaign.distinct_failures.begin();
      if (!first_failure) {
        first_failure = report;
        first_signature = signature;
        continue;
      }
      // Later combinations must retain the same first failure.
      EXPECT_EQ(signature, first_signature);
      EXPECT_EQ(report.seed, first_failure->seed);
      EXPECT_EQ(report.merged.elements, first_failure->merged.elements);
      const TracedRun a =
          replay_traced(*first_failure, *plan, scenario.setup);
      const TracedRun b = replay_traced(report, *plan, scenario.setup);
      EXPECT_EQ(a.trace_hash, b.trace_hash);
    }
  }
  if (first_failure) {
    record.failure_signature = first_signature;
    const TracedRun replay =
        replay_traced(*first_failure, *plan, scenario.setup);
    record.replay_hash = hex64(replay.trace_hash);
    // The replayed session reproduces the recorded failure.
    EXPECT_TRUE(core::verify_reproduces(*first_failure,
                                        replay.result.session));
  }
  return record;
}

void write_fixture(const Scenario& scenario, const GoldenRecord& record) {
  std::ofstream out(fixture_path(scenario.name));
  ASSERT_TRUE(out.good()) << fixture_path(scenario.name);
  out << "# golden replay fixture for scenario '" << scenario.name
      << "'\n";
  out << "# regenerate: PTEST_GOLDEN_UPDATE=1 ctest -R scenario_golden\n";
  out << "seed " << record.seed << "\n";
  out << "outcome " << record.outcome << "\n";
  out << "trace_hash " << record.trace_hash << "\n";
  out << "failure_signature " << record.failure_signature << "\n";
  out << "replay_hash " << record.replay_hash << "\n";
}

TEST(ScenarioGoldenTest, EveryScenarioMatchesItsCommittedFixture) {
  for (const Scenario& scenario : ScenarioRegistry::builtin().all()) {
    SCOPED_TRACE(scenario.name);
    const GoldenRecord record = compute_record(scenario);
    if (update_mode()) {
      write_fixture(scenario, record);
      continue;
    }
    const auto fields = read_fixture(fixture_path(scenario.name));
    ASSERT_FALSE(fields.empty())
        << "missing fixture " << fixture_path(scenario.name)
        << " — regenerate with PTEST_GOLDEN_UPDATE=1";
    // Checked lookup: a truncated fixture fails this scenario cleanly
    // instead of aborting the loop with std::out_of_range.
    const auto field = [&](const char* key) -> std::string {
      const auto it = fields.find(key);
      if (it != fields.end()) return it->second;
      ADD_FAILURE() << "fixture " << fixture_path(scenario.name)
                    << " is missing '" << key
                    << "' — regenerate with PTEST_GOLDEN_UPDATE=1";
      return "<missing>";
    };
    EXPECT_EQ(field("seed"), std::to_string(record.seed));
    EXPECT_EQ(field("outcome"), record.outcome);
    EXPECT_EQ(field("trace_hash"), record.trace_hash);
    EXPECT_EQ(field("failure_signature"), record.failure_signature);
    EXPECT_EQ(field("replay_hash"), record.replay_hash);
  }
}

TEST(ScenarioGoldenTest, FingerprintIsSensitiveToTheSeed) {
  // The hash must actually discriminate executions, or the fixtures prove
  // nothing: a different session seed must move it.
  const Scenario* scenario =
      ScenarioRegistry::builtin().find("philosophers-deadlock");
  ASSERT_NE(scenario, nullptr);
  const core::CompiledTestPlanPtr plan = core::compile(scenario->config);
  const TracedRun a = run_traced(*plan, 1, scenario->setup);
  const TracedRun b = run_traced(*plan, 2, scenario->setup);
  EXPECT_NE(a.trace_hash, b.trace_hash);
  const TracedRun again = run_traced(*plan, 1, scenario->setup);
  EXPECT_EQ(a.trace_hash, again.trace_hash);
}

TEST(ScenarioGoldenTest, Fnv1aSeparatesConcatenationBoundaries) {
  std::uint64_t ab_c = fnv1a(fnv1a(kFnvOffset, "ab"), "c");
  std::uint64_t a_bc = fnv1a(fnv1a(kFnvOffset, "a"), "bc");
  EXPECT_NE(ab_c, a_bc);
  EXPECT_NE(fnv1a(kFnvOffset, std::uint64_t{1}),
            fnv1a(kFnvOffset, std::uint64_t{2}));
}

}  // namespace
}  // namespace ptest::scenario
