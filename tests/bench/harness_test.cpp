// bench/harness — stats math, CLI parsing, registry filtering, smoke
// determinism, and the BENCH_results.json shape (validated against the
// acceptance criterion: every benchmark entry carries median/p95).
#include "harness.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

namespace ptest::bench {
namespace {

TEST(ComputeStats, EmptyInputIsAllZeros) {
  const Stats stats = compute_stats({});
  EXPECT_DOUBLE_EQ(stats.min, 0.0);
  EXPECT_DOUBLE_EQ(stats.median, 0.0);
  EXPECT_DOUBLE_EQ(stats.p95, 0.0);
}

TEST(ComputeStats, SingleSample) {
  const Stats stats = compute_stats({3.5});
  EXPECT_DOUBLE_EQ(stats.min, 3.5);
  EXPECT_DOUBLE_EQ(stats.max, 3.5);
  EXPECT_DOUBLE_EQ(stats.mean, 3.5);
  EXPECT_DOUBLE_EQ(stats.median, 3.5);
  EXPECT_DOUBLE_EQ(stats.p95, 3.5);
  EXPECT_DOUBLE_EQ(stats.stddev, 0.0);
}

TEST(ComputeStats, OddCountMedianIsMiddle) {
  // Unsorted on purpose: compute_stats must sort.
  const Stats stats = compute_stats({5.0, 1.0, 3.0});
  EXPECT_DOUBLE_EQ(stats.median, 3.0);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, 5.0);
  EXPECT_DOUBLE_EQ(stats.mean, 3.0);
}

TEST(ComputeStats, EvenCountMedianIsMidpoint) {
  const Stats stats = compute_stats({4.0, 1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(stats.median, 2.5);
}

TEST(ComputeStats, P95IsNearestRank) {
  // 20 samples 1..20: ceil(0.95 * 20) = 19 -> 19th smallest = 19.
  std::vector<double> samples;
  for (int i = 20; i >= 1; --i) samples.push_back(i);
  const Stats stats = compute_stats(samples);
  EXPECT_DOUBLE_EQ(stats.p95, 19.0);

  // 10 samples 1..10: ceil(9.5) = 10 -> max.
  samples.clear();
  for (int i = 1; i <= 10; ++i) samples.push_back(i);
  EXPECT_DOUBLE_EQ(compute_stats(samples).p95, 10.0);

  // 3 samples: ceil(2.85) = 3 -> max.
  EXPECT_DOUBLE_EQ(compute_stats({1.0, 2.0, 3.0}).p95, 3.0);
}

TEST(ComputeStats, StddevOnKnownInput) {
  // Population stddev of {2,4,4,4,5,5,7,9} is exactly 2.
  const Stats stats =
      compute_stats({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(stats.stddev, 2.0);
  EXPECT_DOUBLE_EQ(stats.mean, 5.0);
}

TEST(ParseArgs, ParsesUniformCli) {
  const char* argv[] = {"bench", "--filter", "pfa", "--repetitions", "7",
                        "--warmup", "3", "--json", "out.json", "--smoke"};
  Options options;
  std::string error;
  ASSERT_TRUE(parse_args(10, argv, options, error)) << error;
  EXPECT_EQ(options.filter, "pfa");
  EXPECT_EQ(options.repetitions, 7);
  EXPECT_EQ(options.warmup, 3);
  EXPECT_EQ(options.json_path, "out.json");
  EXPECT_TRUE(options.smoke);
  // Smoke overrides repetition/warmup and disables the report tables.
  EXPECT_EQ(options.effective_repetitions(), 3);
  EXPECT_EQ(options.effective_warmup(), 1);
  EXPECT_FALSE(options.reports_enabled());
}

TEST(ParseArgs, RejectsUnknownAndMalformedFlags) {
  Options options;
  std::string error;
  {
    const char* argv[] = {"bench", "--what"};
    EXPECT_FALSE(parse_args(2, argv, options, error));
    EXPECT_NE(error.find("--what"), std::string::npos);
  }
  {
    const char* argv[] = {"bench", "--repetitions"};
    EXPECT_FALSE(parse_args(2, argv, options, error));
  }
  {
    const char* argv[] = {"bench", "--repetitions", "0"};
    EXPECT_FALSE(parse_args(3, argv, options, error));
  }
}

Options smoke_options() {
  Options options;
  options.smoke = true;
  return options;
}

TEST(Harness, SmokeCallCountsAreDeterministic) {
  Registry registry;
  std::atomic<int> calls{0};
  registry.add("suite/counted", [&calls](Context& ctx) {
    ctx.measure([&] { calls.fetch_add(1); });
  });

  const RunSummary summary = run_benchmarks(registry, smoke_options());
  // Smoke: 1 warmup + 3 repetitions, no inner batching.
  EXPECT_EQ(calls.load(), 4);
  ASSERT_EQ(summary.results.size(), 1u);
  EXPECT_EQ(summary.results[0].repetitions, 3);
  EXPECT_EQ(summary.results[0].inner_iterations, 1u);

  calls = 0;
  const RunSummary again = run_benchmarks(registry, smoke_options());
  EXPECT_EQ(calls.load(), 4);  // identical call count on a second run
  EXPECT_EQ(again.results[0].name, summary.results[0].name);
  EXPECT_EQ(again.results[0].repetitions, summary.results[0].repetitions);
}

TEST(Harness, WarmupZeroMakesNoUntimedCalls) {
  Registry registry;
  std::atomic<int> calls{0};
  registry.add("suite/cold", [&calls](Context& ctx) {
    ctx.measure([&] { calls.fetch_add(1); });
  });
  Options options;
  options.warmup = 0;
  options.repetitions = 5;
  const RunSummary summary = run_benchmarks(registry, options);
  // No warmup and no batching estimate: exactly the 5 timed samples.
  EXPECT_EQ(calls.load(), 5);
  ASSERT_EQ(summary.results.size(), 1u);
  EXPECT_EQ(summary.results[0].inner_iterations, 1u);
}

TEST(Harness, SmokeSkipsReportsAndFlagsContext) {
  Registry registry;
  bool report_ran = false;
  bool smoke_seen = false;
  registry.add_report("suite", [&report_ran] { report_ran = true; });
  registry.add("suite/bench", [&smoke_seen](Context& ctx) {
    smoke_seen = ctx.smoke();
    EXPECT_EQ(ctx.scaled(64, 8), 8);
    ctx.measure([] {});
  });
  (void)run_benchmarks(registry, smoke_options());
  EXPECT_FALSE(report_ran);
  EXPECT_TRUE(smoke_seen);
}

TEST(Harness, FilterSelectsBySubstring) {
  Registry registry;
  registry.add("alpha/one", [](Context& ctx) { ctx.measure([] {}); });
  registry.add("beta/two", [](Context& ctx) { ctx.measure([] {}); });
  registry.add("beta/three", [](Context& ctx) { ctx.measure([] {}); });

  Options options = smoke_options();
  options.filter = "beta";
  const RunSummary summary = run_benchmarks(registry, options);
  ASSERT_EQ(summary.results.size(), 2u);
  EXPECT_EQ(summary.results[0].name, "beta/two");
  EXPECT_EQ(summary.results[1].name, "beta/three");
}

TEST(Harness, ThroughputAndCountersReachResults) {
  Registry registry;
  registry.add("suite/throughput", [](Context& ctx) {
    ctx.measure([] {
      // Something the optimizer can't erase but that takes real time.
      volatile int sink = 0;
      for (int i = 0; i < 1000; ++i) sink = sink + i;
    });
    ctx.set_items_per_call(1000.0);
    ctx.set_counter("custom", 7.5);
  });
  const RunSummary summary = run_benchmarks(registry, smoke_options());
  ASSERT_EQ(summary.results.size(), 1u);
  EXPECT_GT(summary.results[0].items_per_second, 0.0);
  ASSERT_EQ(summary.results[0].counters.size(), 1u);
  EXPECT_EQ(summary.results[0].counters[0].first, "custom");
  EXPECT_DOUBLE_EQ(summary.results[0].counters[0].second, 7.5);
}

TEST(Harness, JsonOutputHasMedianAndP95PerBenchmark) {
  Registry registry;
  registry.add("suite/a", [](Context& ctx) { ctx.measure([] {}); });
  registry.add("suite/b", [](Context& ctx) { ctx.measure([] {}); });
  const RunSummary summary = run_benchmarks(registry, smoke_options());

  std::ostringstream out;
  write_json(summary, out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"git_sha\""), std::string::npos);
  EXPECT_NE(json.find("\"build_flags\""), std::string::npos);
  EXPECT_NE(json.find("\"smoke\": true"), std::string::npos);
  EXPECT_NE(json.find("\"suite/a\""), std::string::npos);
  EXPECT_NE(json.find("\"suite/b\""), std::string::npos);
  // One median/p95 pair per benchmark entry.
  std::size_t medians = 0, pos = 0;
  while ((pos = json.find("\"median\"", pos)) != std::string::npos) {
    ++medians;
    pos += 1;
  }
  EXPECT_EQ(medians, 2u);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
}

TEST(Harness, MeasureTwiceIsAnError) {
  Registry registry;
  registry.add("suite/twice", [](Context& ctx) {
    ctx.measure([] {});
    ctx.measure([] {});
  });
  EXPECT_THROW((void)run_benchmarks(registry, smoke_options()),
               std::logic_error);
}

TEST(Harness, GlobalRegistryCarriesTheMigratedSuites) {
  // bench binaries register at static init; this test links only the
  // harness, so global() is empty here — but it must exist and accept
  // registrations through the public hooks.
  const std::size_t before = Registry::global().benchmarks().size();
  register_benchmark("harness_test/probe", [](Context& ctx) {
    ctx.measure([] {});
  });
  EXPECT_EQ(Registry::global().benchmarks().size(), before + 1);
}

}  // namespace
}  // namespace ptest::bench
