#include <gtest/gtest.h>

#include "ptest/baseline/noise.hpp"
#include "ptest/baseline/random_walk.hpp"
#include "ptest/baseline/systematic.hpp"
#include "ptest/workload/philosophers.hpp"
#include "ptest/workload/quicksort.hpp"

namespace ptest::baseline {
namespace {

core::PtestConfig quicksort_config() {
  core::PtestConfig config;
  config.n = 4;
  config.s = 6;
  config.program_id = workload::kQuicksortProgramId;
  return config;
}

TEST(NoiseTest, ArmsKernelAndCommitterNoise) {
  const auto config = with_contest_noise(quicksort_config(), {0.3, 5});
  EXPECT_DOUBLE_EQ(config.kernel.schedule_noise, 0.3);
  EXPECT_EQ(config.noise_max_delay, 5u);
  EXPECT_EQ(config.op, pattern::MergeOp::kRoundRobin);
}

TEST(NoiseTest, NoisySessionStillPassesCleanWorkload) {
  const auto config = with_contest_noise(quicksort_config(), {0.25, 4});
  pfa::Alphabet alphabet;
  const auto result =
      core::adaptive_test(config, alphabet, workload::register_quicksort);
  EXPECT_EQ(result.session.outcome, core::Outcome::kPassed);
}

TEST(RandomWalkTest, PatternIsUniformOverServicesAndSlots) {
  pfa::Alphabet alphabet;
  bridge::intern_service_alphabet(alphabet);
  support::Rng rng(5);
  const auto merged = random_command_pattern(alphabet, 4, 6000, rng);
  ASSERT_EQ(merged.size(), 6000u);
  std::map<pfa::SymbolId, int> symbol_counts;
  std::map<pattern::SlotIndex, int> slot_counts;
  for (const auto& e : merged.elements) {
    ++symbol_counts[e.symbol];
    ++slot_counts[e.slot];
  }
  EXPECT_EQ(symbol_counts.size(), 6u);
  EXPECT_EQ(slot_counts.size(), 4u);
  for (const auto& [symbol, count] : symbol_counts) {
    EXPECT_NEAR(count, 1000, 150);
  }
}

TEST(RandomWalkTest, MostRandomCommandsAreWastedOnIllegalSequences) {
  // The paper's motivation for model-driven patterns: naive random
  // command sequences are mostly illegal — the committer cannot even
  // issue services for slots with no live task, and issued ones bounce
  // off the kernel's state checks.
  core::PtestConfig config = quicksort_config();
  config.s = 25;  // 100 random commands
  config.seed = 1;
  config.detector.termination_horizon = 100000;  // tolerate leftovers
  config.max_ticks = 300000;
  pfa::Alphabet alphabet;
  const auto result =
      random_baseline_test(config, alphabet, workload::register_quicksort);
  const std::size_t total = result.merged.size();
  ASSERT_EQ(total, 100u);
  // Most elements were not even issuable (unbound slots)...
  EXPECT_LT(result.session.stats.commands_issued, total / 2);
  // ...and of those issued, some still failed kernel state checks.
  EXPECT_GT(result.session.stats.commands_failed, 0u);
}

TEST(SystematicTest, ExhaustsTinyStateSpace) {
  core::PtestConfig config = quicksort_config();
  config.n = 2;
  config.s = 2;
  pfa::Alphabet alphabet;
  const auto result = systematic_explore(config, alphabet,
                                         workload::register_quicksort);
  EXPECT_FALSE(result.found);  // clean workload
  EXPECT_GT(result.runs_executed, 0u);
  EXPECT_GT(result.interleavings_total, 1u);
}

TEST(SystematicTest, FindsPhilosopherDeadlockExhaustively) {
  core::PtestConfig config;
  config.n = 3;
  config.s = 4;
  config.program_id = workload::kPhilosopherProgramId;
  config.max_ticks = 50000;
  pfa::Alphabet alphabet;
  SystematicOptions options;
  options.max_interleavings = 4096;
  options.max_runs = 4096;
  const auto result = systematic_explore(
      config, alphabet,
      [](pcore::PcoreKernel& kernel) {
        (void)workload::register_philosophers(kernel, /*buggy=*/true,
                                              /*meals=*/3);
      },
      options);
  // Systematic exploration provides certainty on this tiny space — it
  // either finds the deadlock or proves none is reachable from these
  // patterns.  Either way it must terminate within budget.
  EXPECT_LE(result.runs_executed, options.max_runs);
  if (result.found) {
    EXPECT_EQ(result.report->kind, core::BugKind::kDeadlock);
  }
}

TEST(SystematicTest, BudgetCapsEnumeration) {
  core::PtestConfig config = quicksort_config();
  config.n = 4;
  config.s = 6;
  pfa::Alphabet alphabet;
  SystematicOptions options;
  options.max_interleavings = 10;
  options.max_runs = 3;
  const auto result = systematic_explore(config, alphabet,
                                         workload::register_quicksort,
                                         options);
  EXPECT_TRUE(result.exhausted_budget);
  EXPECT_LE(result.runs_executed, 3u);
}

}  // namespace
}  // namespace ptest::baseline
