// CoThread runtime tests: primitive awaiter desugaring, the kDone repeat
// contract, and the remote_cmd awaiter — posting over the bridge, polling
// for the Response *without resuming the frame*, and resuming the body
// with the Response once the slave answers.
#include "ptest/master/co_thread.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "ptest/bridge/committee.hpp"
#include "ptest/master/scheduler.hpp"
#include "ptest/pcore/kernel.hpp"
#include "ptest/pcore/programs.hpp"

namespace ptest::master {
namespace {

CoThread primitive_body() {
  co_await proceed();
  co_await wait();
}

TEST(CoThreadTest, PrimitiveAwaitsDesugarToThreadSteps) {
  sim::Soc soc;
  bridge::Channel channel(soc);
  MasterContext ctx(soc, channel);
  CoThread thread = primitive_body();
  ASSERT_TRUE(thread.valid());
  EXPECT_EQ(thread.step(ctx), ThreadStep::kContinue);
  EXPECT_EQ(thread.step(ctx), ThreadStep::kWaiting);
  EXPECT_EQ(thread.step(ctx), ThreadStep::kDone);
  EXPECT_TRUE(thread.done());
  // A scheduler that steps a finished thread again just sees kDone.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(thread.step(ctx), ThreadStep::kDone);
  }
}

CoThread env_body(sim::Tick* seen) {
  MasterEnv master = co_await env();
  *seen = master.now();
  co_await proceed();
  *seen = master.now();  // same handle, fresh per-step context
}

TEST(CoThreadTest, EnvIndirectsThroughPerStepContext) {
  sim::Soc soc;
  bridge::Channel channel(soc);
  MasterContext ctx(soc, channel);
  sim::Tick seen = 999;
  CoThread thread = env_body(&seen);
  (void)thread.step(ctx);
  EXPECT_EQ(seen, soc.now());
  (void)soc.step();  // advance simulated time between steps
  (void)soc.step();
  (void)thread.step(ctx);
  EXPECT_EQ(seen, soc.now());
  EXPECT_TRUE(thread.done());
}

CoThread throwing_body() {
  co_await proceed();
  throw std::runtime_error("boom");
}

TEST(CoThreadTest, ExceptionPropagatesThenThreadIsDone) {
  sim::Soc soc;
  bridge::Channel channel(soc);
  MasterContext ctx(soc, channel);
  CoThread thread = throwing_body();
  EXPECT_EQ(thread.step(ctx), ThreadStep::kContinue);
  EXPECT_THROW((void)thread.step(ctx), std::runtime_error);
  EXPECT_TRUE(thread.done());
  EXPECT_EQ(thread.step(ctx), ThreadStep::kDone);
}

CoThread suspend_task_body(bridge::Command command, bridge::Response* out,
                           bool* resumed) {
  const bridge::Response response = co_await remote_cmd(command);
  *resumed = true;
  *out = response;
}

TEST(CoThreadTest, RemoteCmdPollsWithoutResumingUntilResponse) {
  sim::Soc soc;
  bridge::Channel channel(soc);
  pcore::PcoreKernel kernel;
  bridge::Committee committee(channel, kernel);
  soc.attach(committee);
  soc.attach(kernel);
  kernel.register_program(1, [](std::uint32_t) {
    return std::make_unique<pcore::IdleProgram>();
  });
  pcore::TaskId task = pcore::kInvalidTask;
  ASSERT_EQ(kernel.task_create(1, 0, /*priority=*/5, task),
            pcore::Status::kOk);

  bridge::Command command;
  command.seq = 77;
  command.service = bridge::Service::kTaskSuspend;
  command.task = task;

  bridge::Response response;
  bool resumed = false;
  MasterContext ctx(soc, channel);
  CoThread thread = suspend_task_body(command, &response, &resumed);

  // The posting step itself reports kContinue (the post landed).
  EXPECT_EQ(thread.step(ctx), ThreadStep::kContinue);
  // The committee has not run yet: the adapter polls, reports kWaiting,
  // and must NOT resume the body.
  EXPECT_EQ(thread.step(ctx), ThreadStep::kWaiting);
  EXPECT_EQ(thread.step(ctx), ThreadStep::kWaiting);
  EXPECT_FALSE(resumed);

  // Let the slave consume the command and post its Response.
  ThreadStep step = ThreadStep::kWaiting;
  for (int i = 0; i < 20 && step != ThreadStep::kDone; ++i) {
    (void)soc.step();
    step = thread.step(ctx);
  }
  EXPECT_EQ(step, ThreadStep::kDone);
  ASSERT_TRUE(resumed);
  EXPECT_EQ(response.seq, 77u);
  EXPECT_EQ(response.status, bridge::ResponseStatus::kOk);
  EXPECT_EQ(kernel.tcb(task).state, pcore::TaskState::kSuspended);
}

TEST(CoThreadTest, CoMasterThreadRunsUnderScheduler) {
  sim::Soc soc;
  bridge::Channel channel(soc);
  pcore::PcoreKernel kernel;
  bridge::Committee committee(channel, kernel);
  MasterScheduler scheduler(channel);
  kernel.register_program(1, [](std::uint32_t) {
    return std::make_unique<pcore::IdleProgram>();
  });
  pcore::TaskId task = pcore::kInvalidTask;
  ASSERT_EQ(kernel.task_create(1, 0, /*priority=*/5, task),
            pcore::Status::kOk);

  bridge::Command command;
  command.seq = 5;
  command.service = bridge::Service::kTaskSuspend;
  command.task = task;
  bridge::Response response;
  bool resumed = false;
  scheduler.add(make_co_thread("co-suspend",
                               suspend_task_body(command, &response,
                                                 &resumed)));
  soc.attach(scheduler);
  soc.attach(committee);
  soc.attach(kernel);
  for (sim::Tick t = 0; t < 1000 && !scheduler.all_done(); ++t) {
    (void)soc.step();
  }
  EXPECT_TRUE(scheduler.all_done());
  EXPECT_TRUE(resumed);
  EXPECT_EQ(response.status, bridge::ResponseStatus::kOk);
  EXPECT_EQ(kernel.tcb(task).state, pcore::TaskState::kSuspended);
}

}  // namespace
}  // namespace ptest::master
