#include "ptest/master/committer.hpp"

#include <gtest/gtest.h>

#include "ptest/bridge/committee.hpp"
#include "ptest/master/scheduler.hpp"
#include "ptest/pcore/programs.hpp"

namespace ptest::master {
namespace {

class RecordingObserver final : public CommitterObserver {
 public:
  void on_issue(const IssueRecord& record) override {
    issues.push_back(record);
  }
  void on_ack(const AckRecord& record) override { acks.push_back(record); }
  void on_pattern_complete(sim::Tick tick) override { completed_at = tick; }

  std::vector<IssueRecord> issues;
  std::vector<AckRecord> acks;
  std::optional<sim::Tick> completed_at;
};

class CommitterFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    bridge::intern_service_alphabet(alphabet_);
    kernel_.register_program(0, [](std::uint32_t) {
      return std::make_unique<pcore::IdleProgram>();
    });
  }

  pattern::MergedPattern pattern_of(
      std::initializer_list<std::pair<int, const char*>> elements) {
    pattern::MergedPattern merged;
    for (const auto& [slot, name] : elements) {
      merged.elements.push_back(
          {static_cast<pattern::SlotIndex>(slot), alphabet_.at(name)});
    }
    return merged;
  }

  /// Runs the full stack until the committer finishes (or budget).
  void run(pattern::MergedPattern merged, sim::Tick budget = 10000) {
    soc_ = std::make_unique<sim::Soc>();
    channel_ = std::make_unique<bridge::Channel>(*soc_);
    committee_ =
        std::make_unique<bridge::Committee>(*channel_, kernel_);
    scheduler_ = std::make_unique<MasterScheduler>(*channel_);
    auto committer = std::make_unique<Committer>(
        std::move(merged), alphabet_, CommitterOptions{}, &observer_);
    committer_ = committer.get();
    scheduler_->add(std::move(committer));
    soc_->attach(*scheduler_);
    soc_->attach(*committee_);
    soc_->attach(kernel_);
    for (sim::Tick t = 0; t < budget && !scheduler_->all_done(); ++t) {
      (void)soc_->step();
    }
  }

  pfa::Alphabet alphabet_;
  pcore::PcoreKernel kernel_;
  RecordingObserver observer_;
  std::unique_ptr<sim::Soc> soc_;
  std::unique_ptr<bridge::Channel> channel_;
  std::unique_ptr<bridge::Committee> committee_;
  std::unique_ptr<MasterScheduler> scheduler_;
  Committer* committer_ = nullptr;
};

TEST_F(CommitterFixture, DrivesFullLifecyclePattern) {
  run(pattern_of({{0, "TC"}, {0, "TS"}, {0, "TR"}, {0, "TCH"}, {0, "TD"}}));
  EXPECT_TRUE(committer_->finished());
  EXPECT_EQ(committer_->issued(), 5u);
  EXPECT_EQ(committer_->acked(), 5u);
  EXPECT_EQ(committer_->failed(), 0u);
  EXPECT_EQ(kernel_.live_task_count(), 0u);
  EXPECT_TRUE(observer_.completed_at.has_value());
}

TEST_F(CommitterFixture, BindsSlotsToDistinctTasks) {
  run(pattern_of({{0, "TC"}, {1, "TC"}, {2, "TC"}}));
  EXPECT_TRUE(committer_->finished());
  const auto t0 = committer_->task_for_slot(0);
  const auto t1 = committer_->task_for_slot(1);
  const auto t2 = committer_->task_for_slot(2);
  ASSERT_TRUE(t0 && t1 && t2);
  EXPECT_NE(*t0, *t1);
  EXPECT_NE(*t1, *t2);
  EXPECT_EQ(kernel_.live_task_count(), 3u);
  // Unique priorities per slot (paper §IV-A).
  EXPECT_NE(kernel_.tcb(*t0).priority, kernel_.tcb(*t1).priority);
}

TEST_F(CommitterFixture, PerSlotOrderingPreserved) {
  run(pattern_of({{0, "TC"}, {1, "TC"}, {0, "TS"}, {1, "TS"}, {0, "TR"},
                  {1, "TR"}, {0, "TD"}, {1, "TD"}}));
  EXPECT_TRUE(committer_->finished());
  // Acks for a slot must follow pattern order.
  std::map<pattern::SlotIndex, std::vector<bridge::Service>> order;
  for (const auto& ack : observer_.acks) {
    order[ack.issue.slot].push_back(ack.issue.service);
  }
  const std::vector<bridge::Service> expected{
      bridge::Service::kTaskCreate, bridge::Service::kTaskSuspend,
      bridge::Service::kTaskResume, bridge::Service::kTaskDelete};
  EXPECT_EQ(order[0], expected);
  EXPECT_EQ(order[1], expected);
}

TEST_F(CommitterFixture, TaskSlotUnbindsAfterDelete) {
  run(pattern_of({{0, "TC"}, {0, "TD"}}));
  EXPECT_FALSE(committer_->task_for_slot(0).has_value());
}

TEST_F(CommitterFixture, ChanprioUsesCyclingPriorities) {
  run(pattern_of({{0, "TC"}, {0, "TCH"}, {0, "TCH"}, {0, "TD"}}));
  EXPECT_TRUE(committer_->finished());
  EXPECT_EQ(committer_->failed(), 0u);
}

TEST_F(CommitterFixture, FailedCommandCountedNotFatal) {
  // TS on a slot whose task was already deleted by TD — committer skips
  // (no bound task), so craft a failure differently: create twice in one
  // slot; the second TC binds a new task and the first is orphaned (still
  // legal).  Use resume-without-suspend instead: TR on a ready task.
  run(pattern_of({{0, "TC"}, {0, "TR"}, {0, "TD"}}));
  EXPECT_TRUE(committer_->finished());
  EXPECT_EQ(committer_->failed(), 1u);  // TR rejected: kErrBadState
  EXPECT_EQ(kernel_.live_task_count(), 0u);
}

TEST_F(CommitterFixture, SkipsServicesForUnboundSlots) {
  run(pattern_of({{0, "TS"}, {0, "TR"}}));
  EXPECT_TRUE(committer_->finished());
  EXPECT_EQ(committer_->issued(), 0u);
}

TEST(MasterSchedulerTest, RoundRobinSharesTime) {
  class Spinner final : public MasterThread {
   public:
    explicit Spinner(int limit) : limit_(limit) {}
    std::string name() const override { return "spinner"; }
    ThreadStep step(MasterContext&) override {
      return ++steps_ >= limit_ ? ThreadStep::kDone : ThreadStep::kContinue;
    }
    int steps_ = 0;
    int limit_;
  };

  sim::Soc soc;
  bridge::Channel channel(soc);
  MasterScheduler scheduler(channel, /*quantum=*/4);
  auto a = std::make_unique<Spinner>(10);
  auto b = std::make_unique<Spinner>(10);
  Spinner* pa = a.get();
  Spinner* pb = b.get();
  scheduler.add(std::move(a));
  scheduler.add(std::move(b));
  soc.attach(scheduler);
  (void)soc.run(50);
  EXPECT_TRUE(scheduler.all_done());
  EXPECT_EQ(pa->steps_, 10);
  EXPECT_EQ(pb->steps_, 10);
}

}  // namespace
}  // namespace ptest::master
