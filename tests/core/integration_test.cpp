// End-to-end pTest runs on the simulated OMAP: Algorithm 1 against the
// paper's two case studies, plus the detector/replay contracts.
#include <gtest/gtest.h>

#include "ptest/core/adaptive_test.hpp"
#include "ptest/core/bug_detector.hpp"
#include "ptest/core/replay.hpp"
#include "ptest/pcore/programs.hpp"
#include "ptest/workload/philosophers.hpp"
#include "ptest/workload/quicksort.hpp"

namespace ptest::core {
namespace {

const char* kFig5Distributions =
    "TC -> TCH = 0.6; TC -> TS = 0.2; TC -> TD = 0.1; TC -> TY = 0.1;"
    "TCH -> TCH = 0.6; TCH -> TS = 0.2; TCH -> TD = 0.1; TCH -> TY = 0.1;"
    "TS -> TR = 1.0;"
    "TR -> TCH = 0.4; TR -> TS = 0.3; TR -> TY = 0.2; TR -> TD = 0.1";

PtestConfig base_config() {
  PtestConfig config;
  config.distributions = kFig5Distributions;
  return config;
}

TEST(IntegrationTest, CleanWorkloadPassesUnderStress) {
  PtestConfig config = base_config();
  config.n = 4;
  config.s = 8;
  config.program_id = workload::kQuicksortProgramId;
  pfa::Alphabet alphabet;
  const auto result =
      adaptive_test(config, alphabet, workload::register_quicksort);
  EXPECT_EQ(result.session.outcome, Outcome::kPassed)
      << (result.session.report
              ? result.session.report->render(alphabet)
              : "no report");
  EXPECT_GT(result.session.stats.commands_issued, 0u);
  EXPECT_EQ(result.session.stats.commands_issued,
            result.session.stats.commands_acked);
}

TEST(IntegrationTest, CaseStudy1StressFindsGcCrash) {
  // 16 concurrent quicksort tasks with create/delete churn against the
  // latent GC bug — pTest must surface a slave crash.
  PtestConfig config = base_config();
  config.n = 16;
  config.s = 24;
  config.restart_at_accept = true;  // keep churning lifecycles
  config.program_id = workload::kQuicksortProgramId;
  config.kernel.fault_plan.gc_corruption = true;
  config.kernel.fault_plan.churn_threshold = 24;
  config.kernel.fault_plan.live_block_threshold = 20;
  config.max_ticks = 500000;

  pfa::Alphabet alphabet;
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 8 && !found; ++seed) {
    config.seed = seed;
    const auto result =
        adaptive_test(config, alphabet, workload::register_quicksort);
    if (result.session.outcome == Outcome::kBug) {
      ASSERT_TRUE(result.session.report.has_value());
      EXPECT_EQ(result.session.report->kind, BugKind::kSlaveCrash);
      EXPECT_NE(result.session.report->kernel.panic_reason.find("corrupted"),
                std::string::npos);
      found = true;
    }
  }
  EXPECT_TRUE(found) << "GC crash not found in 8 stress runs";
}

TEST(IntegrationTest, CaseStudy1NoFalsePositiveWithoutFault) {
  PtestConfig config = base_config();
  config.n = 16;
  config.s = 12;
  config.program_id = workload::kQuicksortProgramId;
  config.max_ticks = 500000;
  pfa::Alphabet alphabet;
  const auto result =
      adaptive_test(config, alphabet, workload::register_quicksort);
  EXPECT_EQ(result.session.outcome, Outcome::kPassed);
}

TEST(IntegrationTest, CaseStudy2CyclicMergeFindsPhilosopherDeadlock) {
  PtestConfig config = base_config();
  config.n = 3;
  config.s = 10;
  config.op = pattern::MergeOp::kCyclic;
  config.program_id = workload::kPhilosopherProgramId;
  config.max_ticks = 100000;
  config.command_spacing = 12;

  pfa::Alphabet alphabet;
  const WorkloadSetup setup = [](pcore::PcoreKernel& kernel) {
    (void)workload::register_philosophers(kernel, /*buggy=*/true,
                                          /*meals=*/500);
  };

  bool found = false;
  BugReport report;
  PtestConfig found_config;
  for (std::uint64_t seed = 1; seed <= 32 && !found; ++seed) {
    config.seed = seed;
    const auto result = adaptive_test(config, alphabet, setup);
    if (result.session.outcome == Outcome::kBug &&
        result.session.report->kind == BugKind::kDeadlock) {
      found = true;
      report = *result.session.report;
      found_config = config;
    }
  }
  ASSERT_TRUE(found) << "deadlock not found in 32 cyclic runs";
  EXPECT_EQ(report.culprits.size(), 3u);  // the full philosopher cycle

  // Replay reproduces the identical deadlock (paper: "helps users
  // reproduce the bugs").
  const auto replayed = replay(report, found_config, alphabet, setup);
  EXPECT_TRUE(verify_reproduces(report, replayed))
      << "replayed outcome: " << to_string(replayed.outcome);
}

TEST(IntegrationTest, FixedPhilosophersNeverDeadlock) {
  PtestConfig config = base_config();
  config.n = 3;
  config.s = 10;
  config.op = pattern::MergeOp::kCyclic;
  config.program_id = workload::kPhilosopherProgramId;
  config.max_ticks = 100000;
  config.command_spacing = 12;
  pfa::Alphabet alphabet;
  const WorkloadSetup setup = [](pcore::PcoreKernel& kernel) {
    (void)workload::register_philosophers(kernel, /*buggy=*/false,
                                          /*meals=*/500);
  };
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    config.seed = seed;
    const auto result = adaptive_test(config, alphabet, setup);
    if (result.session.outcome == Outcome::kBug) {
      FAIL() << "ordered-acquisition control deadlocked: "
             << result.session.report->render(alphabet);
    }
  }
}

TEST(IntegrationTest, DeterministicAcrossRuns) {
  PtestConfig config = base_config();
  config.n = 4;
  config.s = 8;
  config.program_id = workload::kQuicksortProgramId;
  pfa::Alphabet alphabet;
  const auto first =
      adaptive_test(config, alphabet, workload::register_quicksort);
  const auto second =
      adaptive_test(config, alphabet, workload::register_quicksort);
  EXPECT_EQ(first.merged.elements, second.merged.elements);
  EXPECT_EQ(first.session.outcome, second.session.outcome);
  EXPECT_EQ(first.session.stats.ticks, second.session.stats.ticks);
  EXPECT_EQ(first.session.stats.commands_issued,
            second.session.stats.commands_issued);
}

TEST(IntegrationTest, NoTerminationDetectedForImmortalTasks) {
  // Tasks that never exit and are never deleted: the detector must flag
  // no-termination after the committer finishes (Fig. 1-style livelock
  // signature).
  PtestConfig config = base_config();
  config.regex = "TC$";  // create only
  config.distributions.clear();
  config.n = 2;
  config.s = 1;
  config.program_id = 50;
  config.detector.termination_horizon = 512;
  config.max_ticks = 100000;
  config.command_spacing = 12;
  pfa::Alphabet alphabet;
  const auto result = adaptive_test(config, alphabet,
                                    [](pcore::PcoreKernel& kernel) {
    kernel.register_program(50, [](std::uint32_t) {
      return std::make_unique<pcore::IdleProgram>();
    });
  });
  ASSERT_EQ(result.session.outcome, Outcome::kBug);
  EXPECT_EQ(result.session.report->kind, BugKind::kNoTermination);
  EXPECT_EQ(result.session.report->culprits.size(), 2u);
}

TEST(IntegrationTest, DedupReducesReplicasInShortPatterns) {
  PtestConfig config = base_config();
  config.n = 8;
  config.s = 2;
  config.dedup_patterns = true;
  pfa::Alphabet alphabet;
  const auto result = generate_and_merge(config, alphabet);
  EXPECT_EQ(result.patterns.size(), 8u);
  EXPECT_GT(result.duplicates_rejected, 0u);
}

TEST(BugDetectorUnitTest, FindsThreeTaskCycleBuiltByHand) {
  // Deterministically build the philosopher deadlock at the kernel level
  // by suspending each task right after it acquires its first fork.
  pcore::PcoreKernel kernel;
  sim::Soc soc;
  soc.attach(kernel);
  const auto table = workload::register_philosophers(kernel, /*buggy=*/true);

  std::array<pcore::TaskId, 3> tasks{};
  for (std::uint32_t i = 0; i < 3; ++i) {
    ASSERT_EQ(kernel.task_create(workload::kPhilosopherProgramId, i,
                                 static_cast<pcore::Priority>(5 + i),
                                 tasks[i]),
              pcore::Status::kOk);
    // Run until this philosopher holds its first fork, then suspend it.
    for (int step = 0; step < 100; ++step) {
      if (kernel.mutex(table.forks[i]).owner == tasks[i]) break;
      (void)soc.step();
    }
    ASSERT_EQ(kernel.mutex(table.forks[i]).owner, tasks[i]);
    ASSERT_EQ(kernel.task_suspend(tasks[i]), pcore::Status::kOk);
  }
  // Resume all: each now blocks on its second fork -> cycle.  (Each task
  // finishes its hold-and-wait window — up to ~20 steps — before its
  // second lock, and they run one at a time.)
  for (const auto t : tasks) ASSERT_EQ(kernel.task_resume(t), pcore::Status::kOk);
  (void)soc.run(300);

  const auto cycle = BugDetector::find_deadlock_cycle(kernel);
  EXPECT_EQ(cycle.size(), 3u);
}

TEST(BugDetectorUnitTest, NoCycleWithoutDeadlock) {
  pcore::PcoreKernel kernel;
  EXPECT_TRUE(BugDetector::find_deadlock_cycle(kernel).empty());
}

// Property sweep: merge op × seed — sessions always terminate decisively.
struct SweepParam {
  pattern::MergeOp op;
  std::uint64_t seed;
};

class SessionSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SessionSweep, EveryConfigurationTerminatesDecisively) {
  PtestConfig config = base_config();
  config.n = 4;
  config.s = 6;
  config.op = GetParam().op;
  config.seed = GetParam().seed;
  config.program_id = workload::kQuicksortProgramId;
  pfa::Alphabet alphabet;
  const auto result =
      adaptive_test(config, alphabet, workload::register_quicksort);
  EXPECT_NE(result.session.outcome, Outcome::kTickLimit);
}

INSTANTIATE_TEST_SUITE_P(
    OpsAndSeeds, SessionSweep,
    ::testing::Values(SweepParam{pattern::MergeOp::kSequential, 1},
                      SweepParam{pattern::MergeOp::kRoundRobin, 2},
                      SweepParam{pattern::MergeOp::kRandom, 3},
                      SweepParam{pattern::MergeOp::kCyclic, 4},
                      SweepParam{pattern::MergeOp::kShuffle, 5},
                      SweepParam{pattern::MergeOp::kRoundRobin, 6},
                      SweepParam{pattern::MergeOp::kCyclic, 7},
                      SweepParam{pattern::MergeOp::kShuffle, 8}));

}  // namespace
}  // namespace ptest::core
