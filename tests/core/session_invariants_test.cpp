// Cross-configuration session invariants: whatever the op / seed /
// workload, an adaptive-test session must satisfy the protocol and
// resource accounting contracts.
#include <gtest/gtest.h>

#include "ptest/core/adaptive_test.hpp"
#include "ptest/workload/philosophers.hpp"
#include "ptest/workload/quicksort.hpp"

namespace ptest::core {
namespace {

struct InvariantParam {
  const char* workload;
  pattern::MergeOp op;
  std::uint64_t seed;
  sim::Tick spacing;
};

class SessionInvariants : public ::testing::TestWithParam<InvariantParam> {};

TEST_P(SessionInvariants, ProtocolAndAccountingHold) {
  const InvariantParam& param = GetParam();
  PtestConfig config;
  config.n = 3;
  config.s = 8;
  config.op = param.op;
  config.seed = param.seed;
  config.command_spacing = param.spacing;
  config.max_ticks = 200000;
  config.detector.termination_horizon = 30000;

  WorkloadSetup setup;
  if (std::string_view(param.workload) == "quicksort") {
    config.program_id = workload::kQuicksortProgramId;
    setup = workload::register_quicksort;
  } else {
    config.program_id = workload::kPhilosopherProgramId;
    setup = [](pcore::PcoreKernel& kernel) {
      (void)workload::register_philosophers(kernel, /*buggy=*/true,
                                            /*meals=*/500);
    };
  }

  pfa::Alphabet alphabet;
  const auto result = adaptive_test(config, alphabet, setup);

  // 1. Patterns: n of them, all legal words (complete_to_accept default).
  ASSERT_EQ(result.patterns.size(), config.n);
  // 2. Merged pattern preserves each slot's sequence.
  for (pattern::SlotIndex slot = 0; slot < config.n; ++slot) {
    EXPECT_EQ(result.merged.project(slot), result.patterns[slot].symbols);
  }
  // 3. Protocol accounting: acks never exceed issues; every issued command
  //    is eventually acked unless the run stopped on a bug/limit.
  const auto& stats = result.session.stats;
  EXPECT_LE(stats.commands_acked, stats.commands_issued);
  EXPECT_LE(stats.commands_failed, stats.commands_acked);
  if (result.session.outcome == Outcome::kPassed) {
    EXPECT_EQ(stats.commands_acked, stats.commands_issued);
  }
  // 4. A decisive outcome (the detector stops the run; the tick budget is
  //    generous enough for every configuration here).
  EXPECT_NE(result.session.outcome, Outcome::kTickLimit);
  // 5. Bug reports are well-formed when present.
  if (result.session.outcome == Outcome::kBug) {
    ASSERT_TRUE(result.session.report.has_value());
    EXPECT_FALSE(result.session.report->description.empty());
    EXPECT_EQ(result.session.report->seed, config.seed);
    EXPECT_FALSE(result.session.report->merged.empty());
    EXPECT_FALSE(result.session.report->signature().empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SessionInvariants,
    ::testing::Values(
        InvariantParam{"quicksort", pattern::MergeOp::kSequential, 1, 0},
        InvariantParam{"quicksort", pattern::MergeOp::kRoundRobin, 2, 0},
        InvariantParam{"quicksort", pattern::MergeOp::kRandom, 3, 6},
        InvariantParam{"quicksort", pattern::MergeOp::kCyclic, 4, 12},
        InvariantParam{"quicksort", pattern::MergeOp::kShuffle, 5, 0},
        InvariantParam{"philosophers", pattern::MergeOp::kSequential, 6, 12},
        InvariantParam{"philosophers", pattern::MergeOp::kRoundRobin, 7, 12},
        InvariantParam{"philosophers", pattern::MergeOp::kRandom, 8, 12},
        InvariantParam{"philosophers", pattern::MergeOp::kCyclic, 9, 12},
        InvariantParam{"philosophers", pattern::MergeOp::kShuffle, 10, 6},
        InvariantParam{"philosophers", pattern::MergeOp::kCyclic, 11, 0},
        InvariantParam{"quicksort", pattern::MergeOp::kRoundRobin, 12, 24}));

}  // namespace
}  // namespace ptest::core
