#include "ptest/core/campaign.hpp"

#include <gtest/gtest.h>

#include "ptest/workload/philosophers.hpp"
#include "ptest/workload/quicksort.hpp"

namespace ptest::core {
namespace {

const char* kSuspendHeavy =
    "TC -> TS = 0.8; TC -> TCH = 0.1; TC -> TD = 0.05; TC -> TY = 0.05;"
    "TCH -> TS = 0.8; TCH -> TCH = 0.1; TCH -> TD = 0.05; TCH -> TY = 0.05;"
    "TS -> TR = 1.0;"
    "TR -> TS = 0.8; TR -> TCH = 0.1; TR -> TD = 0.05; TR -> TY = 0.05";

PtestConfig philosopher_config() {
  PtestConfig config;
  config.n = 3;
  config.s = 10;
  config.program_id = workload::kPhilosopherProgramId;
  config.max_ticks = 100000;
  config.command_spacing = 12;
  return config;
}

WorkloadSetup buggy_setup() {
  return [](pcore::PcoreKernel& kernel) {
    (void)workload::register_philosophers(kernel, /*buggy=*/true,
                                          /*meals=*/500);
  };
}

TEST(CampaignTest, RejectsEmptyArmList) {
  EXPECT_THROW(Campaign(PtestConfig{}, {}, nullptr), std::invalid_argument);
}

TEST(CampaignTest, WarmupCoversEveryArm) {
  std::vector<CampaignArm> arms{
      {"sequential", pattern::MergeOp::kSequential, ""},
      {"round-robin", pattern::MergeOp::kRoundRobin, ""},
      {"cyclic", pattern::MergeOp::kCyclic, ""},
  };
  CampaignOptions options;
  options.budget = 9;
  options.warmup_per_arm = 3;
  Campaign campaign(philosopher_config(), arms, buggy_setup(), options);
  const CampaignResult result = campaign.run();
  EXPECT_EQ(result.total_runs, 9u);
  for (const ArmStats& stats : result.arm_stats) {
    EXPECT_EQ(stats.runs, 3u);
  }
}

TEST(CampaignTest, AllocatesBudgetTowardDetectingArm) {
  // Arm 0 can never detect (sequential, terminate-heavy would be even
  // stronger); arm 1 detects with good probability (round-robin,
  // suspend-heavy).  After warm-up the policy must favour arm 1.
  std::vector<CampaignArm> arms{
      {"cold", pattern::MergeOp::kSequential, ""},
      {"hot", pattern::MergeOp::kRoundRobin, kSuspendHeavy},
  };
  CampaignOptions options;
  options.budget = 40;
  options.warmup_per_arm = 4;
  options.epsilon = 0.1;
  options.target = BugKind::kDeadlock;
  Campaign campaign(philosopher_config(), arms, buggy_setup(), options);
  const CampaignResult result = campaign.run();
  EXPECT_EQ(result.total_runs, 40u);
  EXPECT_GT(result.total_detections, 0u);
  EXPECT_EQ(result.best_arm, 1u);
  EXPECT_GT(result.arm_stats[1].runs, result.arm_stats[0].runs * 2);
  EXPECT_EQ(result.arm_stats[0].detections, 0u);
  // Reports for distinct signatures are retained and replayable.
  EXPECT_FALSE(result.distinct_failures.empty());
  for (const auto& [signature, report] : result.distinct_failures) {
    EXPECT_EQ(report.kind, BugKind::kDeadlock);
    EXPECT_FALSE(report.merged.empty());
  }
}

TEST(CampaignTest, DeterministicAcrossRuns) {
  std::vector<CampaignArm> arms{
      {"a", pattern::MergeOp::kRoundRobin, ""},
      {"b", pattern::MergeOp::kCyclic, ""},
  };
  CampaignOptions options;
  options.budget = 12;
  Campaign first(philosopher_config(), arms, buggy_setup(), options);
  Campaign second(philosopher_config(), arms, buggy_setup(), options);
  const CampaignResult r1 = first.run();
  const CampaignResult r2 = second.run();
  EXPECT_EQ(r1.total_detections, r2.total_detections);
  for (std::size_t i = 0; i < arms.size(); ++i) {
    EXPECT_EQ(r1.arm_stats[i].runs, r2.arm_stats[i].runs);
    EXPECT_EQ(r1.arm_stats[i].detections, r2.arm_stats[i].detections);
  }
}

TEST(CampaignTest, CleanWorkloadYieldsNoDetections) {
  PtestConfig config;
  config.n = 4;
  config.s = 6;
  config.program_id = workload::kQuicksortProgramId;
  std::vector<CampaignArm> arms{
      {"rr", pattern::MergeOp::kRoundRobin, ""},
      {"cyc", pattern::MergeOp::kCyclic, ""},
  };
  CampaignOptions options;
  options.budget = 8;
  Campaign campaign(config, arms, workload::register_quicksort, options);
  const CampaignResult result = campaign.run();
  EXPECT_EQ(result.total_detections, 0u);
  EXPECT_TRUE(result.distinct_failures.empty());
}

}  // namespace
}  // namespace ptest::core
