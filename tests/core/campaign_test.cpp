#include "ptest/core/campaign.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "ptest/support/worker_pool.hpp"
#include "ptest/workload/philosophers.hpp"
#include "ptest/workload/quicksort.hpp"

namespace ptest::core {
namespace {

const char* kSuspendHeavy =
    "TC -> TS = 0.8; TC -> TCH = 0.1; TC -> TD = 0.05; TC -> TY = 0.05;"
    "TCH -> TS = 0.8; TCH -> TCH = 0.1; TCH -> TD = 0.05; TCH -> TY = 0.05;"
    "TS -> TR = 1.0;"
    "TR -> TS = 0.8; TR -> TCH = 0.1; TR -> TD = 0.05; TR -> TY = 0.05";

PtestConfig philosopher_config() {
  PtestConfig config;
  config.n = 3;
  config.s = 10;
  config.program_id = workload::kPhilosopherProgramId;
  config.max_ticks = 100000;
  config.command_spacing = 12;
  return config;
}

WorkloadSetup buggy_setup() {
  return [](pcore::PcoreKernel& kernel) {
    (void)workload::register_philosophers(kernel, /*buggy=*/true,
                                          /*meals=*/500);
  };
}

TEST(CampaignTest, RejectsEmptyArmList) {
  EXPECT_THROW(Campaign(PtestConfig{}, {}, nullptr), std::invalid_argument);
}

TEST(CampaignTest, WarmupCoversEveryArm) {
  std::vector<CampaignArm> arms{
      {"sequential", pattern::MergeOp::kSequential, ""},
      {"round-robin", pattern::MergeOp::kRoundRobin, ""},
      {"cyclic", pattern::MergeOp::kCyclic, ""},
  };
  CampaignOptions options;
  options.budget = 9;
  options.warmup_per_arm = 3;
  Campaign campaign(philosopher_config(), arms, buggy_setup(), options);
  const CampaignResult result = campaign.run();
  EXPECT_EQ(result.total_runs, 9u);
  for (const ArmStats& stats : result.arm_stats) {
    EXPECT_EQ(stats.runs, 3u);
  }
}

TEST(CampaignTest, AllocatesBudgetTowardDetectingArm) {
  // Arm 0 can never detect (sequential, terminate-heavy would be even
  // stronger); arm 1 detects with good probability (round-robin,
  // suspend-heavy).  After warm-up the policy must favour arm 1.
  std::vector<CampaignArm> arms{
      {"cold", pattern::MergeOp::kSequential, ""},
      {"hot", pattern::MergeOp::kRoundRobin, kSuspendHeavy},
  };
  CampaignOptions options;
  options.budget = 40;
  options.warmup_per_arm = 4;
  options.epsilon = 0.1;
  options.target = BugKind::kDeadlock;
  Campaign campaign(philosopher_config(), arms, buggy_setup(), options);
  const CampaignResult result = campaign.run();
  EXPECT_EQ(result.total_runs, 40u);
  EXPECT_GT(result.total_detections, 0u);
  EXPECT_EQ(result.best_arm, 1u);
  EXPECT_GT(result.arm_stats[1].runs, result.arm_stats[0].runs * 2);
  EXPECT_EQ(result.arm_stats[0].detections, 0u);
  // Reports for distinct signatures are retained and replayable.
  EXPECT_FALSE(result.distinct_failures.empty());
  for (const auto& [signature, report] : result.distinct_failures) {
    EXPECT_EQ(report.kind, BugKind::kDeadlock);
    EXPECT_FALSE(report.merged.empty());
  }
}

TEST(CampaignTest, DeterministicAcrossRuns) {
  std::vector<CampaignArm> arms{
      {"a", pattern::MergeOp::kRoundRobin, ""},
      {"b", pattern::MergeOp::kCyclic, ""},
  };
  CampaignOptions options;
  options.budget = 12;
  Campaign first(philosopher_config(), arms, buggy_setup(), options);
  Campaign second(philosopher_config(), arms, buggy_setup(), options);
  const CampaignResult r1 = first.run();
  const CampaignResult r2 = second.run();
  EXPECT_EQ(r1.total_detections, r2.total_detections);
  for (std::size_t i = 0; i < arms.size(); ++i) {
    EXPECT_EQ(r1.arm_stats[i].runs, r2.arm_stats[i].runs);
    EXPECT_EQ(r1.arm_stats[i].detections, r2.arm_stats[i].detections);
  }
}

void expect_identical(const CampaignResult& a, const CampaignResult& b) {
  EXPECT_EQ(a.total_runs, b.total_runs);
  EXPECT_EQ(a.total_detections, b.total_detections);
  EXPECT_EQ(a.best_arm, b.best_arm);
  ASSERT_EQ(a.arm_stats.size(), b.arm_stats.size());
  for (std::size_t i = 0; i < a.arm_stats.size(); ++i) {
    EXPECT_EQ(a.arm_stats[i].runs, b.arm_stats[i].runs) << "arm " << i;
    EXPECT_EQ(a.arm_stats[i].detections, b.arm_stats[i].detections)
        << "arm " << i;
  }
  ASSERT_EQ(a.distinct_failures.size(), b.distinct_failures.size());
  auto it = b.distinct_failures.begin();
  for (const auto& [signature, report] : a.distinct_failures) {
    EXPECT_EQ(signature, it->first);
    EXPECT_EQ(report.kind, it->second.kind);
    EXPECT_EQ(report.signature(), it->second.signature());
    ++it;
  }
  // The deterministic work counters are part of the identity too.
  EXPECT_EQ(a.metrics.sessions, b.metrics.sessions);
  EXPECT_EQ(a.metrics.patterns_generated, b.metrics.patterns_generated);
  EXPECT_EQ(a.metrics.dedup_accepted, b.metrics.dedup_accepted);
  EXPECT_EQ(a.metrics.dedup_rejected, b.metrics.dedup_rejected);
  EXPECT_EQ(a.metrics.ticks, b.metrics.ticks);
  // Coverage is only comparable when both runs tracked it (the
  // compile-per-run legacy path reports none), and only then do the
  // pfa_* counters and plan-cache counters line up by construction.
  if (!a.arm_coverage_state.empty() && !b.arm_coverage_state.empty()) {
    ASSERT_EQ(a.arm_coverage_state.size(), b.arm_coverage_state.size());
    for (std::size_t i = 0; i < a.arm_coverage_state.size(); ++i) {
      EXPECT_EQ(a.arm_coverage_state[i], b.arm_coverage_state[i])
          << "arm " << i;
    }
    EXPECT_EQ(a.metrics.pfa_states_covered, b.metrics.pfa_states_covered);
    EXPECT_EQ(a.metrics.pfa_transitions_covered,
              b.metrics.pfa_transitions_covered);
    EXPECT_EQ(a.metrics.pfa_ngrams, b.metrics.pfa_ngrams);
  }
}

// The core contract of the parallel runner: same seed => bit-identical
// CampaignResult (arm stats and distinct-failure signatures) no matter
// how many worker threads execute the sessions.
TEST(CampaignTest, SerialAndParallelRunsAreBitIdentical) {
  std::vector<CampaignArm> arms{
      {"cold", pattern::MergeOp::kSequential, ""},
      {"hot", pattern::MergeOp::kRoundRobin, kSuspendHeavy},
  };
  CampaignOptions serial_options;
  serial_options.budget = 24;
  serial_options.warmup_per_arm = 2;
  serial_options.target = BugKind::kDeadlock;
  serial_options.jobs = 1;
  CampaignOptions parallel_options = serial_options;
  parallel_options.jobs = 4;

  Campaign serial(philosopher_config(), arms, buggy_setup(), serial_options);
  Campaign parallel(philosopher_config(), arms, buggy_setup(),
                    parallel_options);
  const CampaignResult serial_result = serial.run();
  const CampaignResult parallel_result = parallel.run();
  EXPECT_EQ(serial_result.total_runs, 24u);
  expect_identical(serial_result, parallel_result);
}

// The plan cache must be invisible in the results: for the same seed,
// every (jobs, precompile) combination — serial or 4 workers, compile
// the arm plans once up front or rebuild the pipeline per session —
// yields a byte-identical CampaignResult.
TEST(CampaignTest, PlanCacheAndJobsCombinationsAreBitIdentical) {
  std::vector<CampaignArm> arms{
      {"cold", pattern::MergeOp::kSequential, ""},
      {"hot", pattern::MergeOp::kRoundRobin, kSuspendHeavy},
  };
  CampaignOptions reference_options;
  reference_options.budget = 24;
  reference_options.warmup_per_arm = 2;
  reference_options.target = BugKind::kDeadlock;
  reference_options.jobs = 1;
  reference_options.precompile = false;  // legacy compile-per-run, serial
  Campaign reference(philosopher_config(), arms, buggy_setup(),
                     reference_options);
  const CampaignResult reference_result = reference.run();
  EXPECT_EQ(reference_result.total_runs, 24u);
  // The scenario must actually detect something, or the comparison is
  // vacuous.
  EXPECT_GT(reference_result.total_detections, 0u);

  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    for (const bool precompile : {false, true}) {
      CampaignOptions options = reference_options;
      options.jobs = jobs;
      options.precompile = precompile;
      Campaign campaign(philosopher_config(), arms, buggy_setup(), options);
      const CampaignResult result = campaign.run();
      SCOPED_TRACE("jobs=" + std::to_string(jobs) +
                   " precompile=" + (precompile ? "on" : "off"));
      expect_identical(reference_result, result);
    }
  }
}

// compile() + execute() must reproduce the one-shot adaptive_test()
// exactly — same patterns, same merged schedule, same session outcome —
// and a plan compiled once must give the same answer for every seed a
// fresh compile would.
TEST(CampaignTest, CompiledPlanExecuteMatchesOneShotAdaptiveTest) {
  PtestConfig config = philosopher_config();
  config.distributions = kSuspendHeavy;
  const CompiledTestPlanPtr plan = compile(config);
  for (std::uint64_t seed : {1ULL, 99ULL, 0xfeedULL}) {
    config.seed = seed;
    pfa::Alphabet alphabet;
    const AdaptiveTestResult one_shot =
        adaptive_test(config, alphabet, buggy_setup());
    const AdaptiveTestResult planned = execute(*plan, seed, buggy_setup());
    ASSERT_EQ(one_shot.patterns.size(), planned.patterns.size());
    for (std::size_t i = 0; i < one_shot.patterns.size(); ++i) {
      EXPECT_EQ(one_shot.patterns[i].symbols, planned.patterns[i].symbols);
    }
    EXPECT_EQ(one_shot.merged.elements, planned.merged.elements);
    EXPECT_EQ(one_shot.session.outcome, planned.session.outcome);
    EXPECT_EQ(one_shot.session.stats.ticks, planned.session.stats.ticks);
    EXPECT_EQ(one_shot.session.stats.commands_issued,
              planned.session.stats.commands_issued);
    ASSERT_EQ(one_shot.session.report.has_value(),
              planned.session.report.has_value());
    if (one_shot.session.report) {
      EXPECT_EQ(one_shot.session.report->signature(),
                planned.session.report->signature());
    }
  }
}

TEST(CampaignTest, JobsZeroResolvesToHardwareConcurrency) {
  std::vector<CampaignArm> arms{{"rr", pattern::MergeOp::kRoundRobin, ""}};
  CampaignOptions serial_options;
  serial_options.budget = 6;
  serial_options.jobs = 1;
  CampaignOptions auto_options = serial_options;
  auto_options.jobs = 0;  // hardware concurrency, whatever it is
  Campaign serial(philosopher_config(), arms, buggy_setup(), serial_options);
  Campaign autos(philosopher_config(), arms, buggy_setup(), auto_options);
  const CampaignResult serial_result = serial.run();
  const CampaignResult auto_result = autos.run();
  expect_identical(serial_result, auto_result);
}

TEST(CampaignTest, SyncIntervalIsPartOfTheScheduleIdentity) {
  // Unlike jobs, sync_interval legitimately changes which arm each run
  // draws — but for a fixed interval the run counts must still be
  // reproducible.
  std::vector<CampaignArm> arms{
      {"a", pattern::MergeOp::kRoundRobin, ""},
      {"b", pattern::MergeOp::kCyclic, ""},
  };
  CampaignOptions options;
  options.budget = 12;
  options.sync_interval = 3;
  Campaign first(philosopher_config(), arms, buggy_setup(), options);
  Campaign second(philosopher_config(), arms, buggy_setup(), options);
  expect_identical(first.run(), second.run());
}

TEST(WorkerPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  support::WorkerPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
  std::vector<std::atomic<int>> hits(101);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(WorkerPoolTest, ParallelForHandlesEmptyAndTiny) {
  support::WorkerPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  pool.parallel_for(1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 1);
}

TEST(WorkerPoolTest, ParallelForPropagatesExceptions) {
  support::WorkerPool pool(2);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_for(32,
                        [&](std::size_t i) {
                          if (i == 7) throw std::runtime_error("boom");
                          ++completed;
                        }),
      std::runtime_error);
  // The index space still drains: everything but the thrower completed.
  EXPECT_EQ(completed.load(), 31);
}

TEST(WorkerPoolTest, SubmitAndWaitIdleDrainTheQueue) {
  support::WorkerPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 16; ++i) pool.submit([&] { ++done; });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 16);
}

TEST(CampaignTest, CleanWorkloadYieldsNoDetections) {
  PtestConfig config;
  config.n = 4;
  config.s = 6;
  config.program_id = workload::kQuicksortProgramId;
  std::vector<CampaignArm> arms{
      {"rr", pattern::MergeOp::kRoundRobin, ""},
      {"cyc", pattern::MergeOp::kCyclic, ""},
  };
  CampaignOptions options;
  options.budget = 8;
  Campaign campaign(config, arms, workload::register_quicksort, options);
  const CampaignResult result = campaign.run();
  EXPECT_EQ(result.total_detections, 0u);
  EXPECT_TRUE(result.distinct_failures.empty());
}

TEST(CampaignTest, MetricsCountSessionsAndPlanCache) {
  PtestConfig config;
  config.n = 2;
  config.s = 4;
  config.program_id = workload::kQuicksortProgramId;
  std::vector<CampaignArm> arms{
      {"rr", pattern::MergeOp::kRoundRobin, ""},
      {"cyc", pattern::MergeOp::kCyclic, ""},
  };
  CampaignOptions options;
  options.budget = 8;

  Campaign cached(config, arms, workload::register_quicksort, options);
  const CampaignResult with_cache = cached.run();
  EXPECT_EQ(with_cache.metrics.sessions, 8u);
  EXPECT_EQ(with_cache.metrics.plan_cache_hits, 8u);
  EXPECT_EQ(with_cache.metrics.plan_compiles, arms.size());
  // Every session samples n patterns.
  EXPECT_EQ(with_cache.metrics.patterns_generated, 8u * config.n);
  // Dedup is off in this config, so its counters stay zero.
  EXPECT_EQ(with_cache.metrics.dedup_accepted, 0u);
  EXPECT_EQ(with_cache.metrics.dedup_rejected, 0u);
  EXPECT_GT(with_cache.metrics.wall_ns, 0u);
  EXPECT_EQ(with_cache.metrics.worker_threads, 1u);

  // Compile-per-run path: no cache hits, one compile per session.
  options.precompile = false;
  Campaign uncached(config, arms, workload::register_quicksort, options);
  const CampaignResult without_cache = uncached.run();
  EXPECT_EQ(without_cache.metrics.plan_cache_hits, 0u);
  EXPECT_EQ(without_cache.metrics.plan_compiles, 8u);
}

TEST(CampaignTest, MetricsWorkCountersIdenticalAcrossJobs) {
  PtestConfig config;
  config.n = 2;
  config.s = 4;
  config.dedup_patterns = true;
  config.program_id = workload::kQuicksortProgramId;
  std::vector<CampaignArm> arms{
      {"rr", pattern::MergeOp::kRoundRobin, ""},
  };
  CampaignOptions options;
  options.budget = 16;

  options.jobs = 1;
  const CampaignResult serial =
      Campaign(config, arms, workload::register_quicksort, options).run();
  options.jobs = 4;
  const CampaignResult parallel =
      Campaign(config, arms, workload::register_quicksort, options).run();

  // Work counters are pure functions of (seed, config); only the
  // timing counters may differ between jobs values.
  EXPECT_EQ(serial.metrics.sessions, parallel.metrics.sessions);
  EXPECT_EQ(serial.metrics.plan_cache_hits, parallel.metrics.plan_cache_hits);
  EXPECT_EQ(serial.metrics.plan_compiles, parallel.metrics.plan_compiles);
  EXPECT_EQ(serial.metrics.patterns_generated,
            parallel.metrics.patterns_generated);
  EXPECT_EQ(serial.metrics.dedup_accepted, parallel.metrics.dedup_accepted);
  EXPECT_EQ(serial.metrics.dedup_rejected, parallel.metrics.dedup_rejected);
  EXPECT_EQ(serial.metrics.dedup_accepted, 16u * config.n);
  EXPECT_EQ(serial.metrics.worker_threads, 1u);
  EXPECT_GT(parallel.metrics.worker_threads, 1u);
}

}  // namespace
}  // namespace ptest::core
