#include "ptest/core/state_record.hpp"

#include <gtest/gtest.h>

namespace ptest::core {
namespace {

struct Fixture {
  pfa::Alphabet alphabet;
  pfa::SymbolId tc, ts, tr, td;

  Fixture() {
    tc = alphabet.intern("TC");
    ts = alphabet.intern("TS");
    tr = alphabet.intern("TR");
    td = alphabet.intern("TD");
  }

  master::IssueRecord issue(pattern::SlotIndex slot, pfa::SymbolId symbol,
                            bridge::Service service, std::uint32_t seq) {
    return {seq, slot, symbol, service, 0};
  }

  master::AckRecord ack(const master::IssueRecord& record,
                        bridge::ResponseStatus status =
                            bridge::ResponseStatus::kOk) {
    master::AckRecord out;
    out.issue = record;
    out.status = status;
    return out;
  }
};

TEST(StateRecordTest, DeltaIsRemainingSubsequence) {
  CpRecord record;
  record.tp = {1, 2, 3};
  record.sn = 1;
  EXPECT_EQ(record.delta(), (std::vector<pfa::SymbolId>{2, 3}));
  record.sn = 3;
  EXPECT_TRUE(record.delta().empty());
}

TEST(StateRecordTest, RenderMatchesFig4Shape) {
  Fixture f;
  CpRecord record;
  record.qm = MasterState::kAcked;
  record.qs = SlaveState::kReady;
  record.tp = {f.tc, f.ts, f.tr};
  record.sn = 2;
  EXPECT_EQ(record.render(f.alphabet), "(acked, ready, TC->TS->TR, 2, TR)");
}

TEST(StateRecordTest, RenderEmptyDeltaAsDash) {
  Fixture f;
  CpRecord record;
  record.tp = {f.tc};
  record.sn = 1;
  record.qm = MasterState::kDone;
  record.qs = SlaveState::kTerminated;
  EXPECT_EQ(record.render(f.alphabet), "(done, terminated, TC, 1, -)");
}

TEST(StateRecordTest, RecorderFollowsLifecycle) {
  Fixture f;
  StateRecorder recorder(f.alphabet);
  recorder.assign(0, {f.tc, f.ts, f.tr, f.td});

  EXPECT_EQ(recorder.record(0).qm, MasterState::kIdle);
  EXPECT_EQ(recorder.record(0).qs, SlaveState::kNone);

  const auto tc_issue = f.issue(0, f.tc, bridge::Service::kTaskCreate, 1);
  recorder.on_issue(tc_issue);
  EXPECT_EQ(recorder.record(0).qm, MasterState::kIssuing);
  EXPECT_EQ(recorder.record(0).sn, 1u);

  recorder.on_ack(f.ack(tc_issue));
  EXPECT_EQ(recorder.record(0).qm, MasterState::kAcked);
  EXPECT_EQ(recorder.record(0).qs, SlaveState::kReady);

  const auto ts_issue = f.issue(0, f.ts, bridge::Service::kTaskSuspend, 2);
  recorder.on_issue(ts_issue);
  recorder.on_ack(f.ack(ts_issue));
  EXPECT_EQ(recorder.record(0).qs, SlaveState::kSuspended);
  EXPECT_EQ(recorder.record(0).sn, 2u);
  EXPECT_EQ(recorder.record(0).delta(),
            (std::vector<pfa::SymbolId>{f.tr, f.td}));

  const auto tr_issue = f.issue(0, f.tr, bridge::Service::kTaskResume, 3);
  recorder.on_issue(tr_issue);
  recorder.on_ack(f.ack(tr_issue));
  EXPECT_EQ(recorder.record(0).qs, SlaveState::kReady);

  const auto td_issue = f.issue(0, f.td, bridge::Service::kTaskDelete, 4);
  recorder.on_issue(td_issue);
  recorder.on_ack(f.ack(td_issue));
  EXPECT_EQ(recorder.record(0).qs, SlaveState::kTerminated);
  EXPECT_EQ(recorder.record(0).qm, MasterState::kDone);
}

TEST(StateRecordTest, FailedAckMarksMaster) {
  Fixture f;
  StateRecorder recorder(f.alphabet);
  recorder.assign(0, {f.tc});
  const auto tc_issue = f.issue(0, f.tc, bridge::Service::kTaskCreate, 1);
  recorder.on_issue(tc_issue);
  recorder.on_ack(f.ack(tc_issue, bridge::ResponseStatus::kError));
  EXPECT_EQ(recorder.record(0).qm, MasterState::kFailed);
}

TEST(StateRecordTest, RenderAllRecords) {
  Fixture f;
  StateRecorder recorder(f.alphabet);
  recorder.assign(0, {f.tc});
  recorder.assign(1, {f.tc, f.td});
  const std::string text = recorder.render();
  EXPECT_NE(text.find("CP0= "), std::string::npos);
  EXPECT_NE(text.find("CP1= "), std::string::npos);
}

}  // namespace
}  // namespace ptest::core
