// Property fuzzing of the kernel heap against a reference model: random
// alloc / free / defer_free / collect sequences must keep the heap
// panic-free, never double-book bytes, and always reuse reclaimed space.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "ptest/pcore/heap.hpp"
#include "ptest/support/rng.hpp"

namespace ptest::pcore {
namespace {

class HeapFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeapFuzz, RandomOperationSequencesKeepInvariants) {
  support::Rng rng(GetParam());
  KernelHeap heap(32 * 1024);
  // Reference model: offset -> (size, deferred?)
  std::map<std::uint32_t, std::pair<std::size_t, bool>> live;

  for (int step = 0; step < 4000; ++step) {
    const auto action = rng.below(100);
    if (action < 45) {  // alloc
      const std::size_t size = 8 + rng.below(700);
      const auto block = heap.alloc(size);
      ASSERT_FALSE(heap.panicked()) << heap.panic_reason();
      if (block) {
        if (const auto hit = live.find(*block); hit != live.end()) {
          // alloc() collects internally when the first pass fails, which
          // reclaims deferred blocks; reusing a *deferred* offset is
          // therefore legal (and means every deferred entry was swept).
          ASSERT_TRUE(hit->second.second)
              << "step " << step << ": reused a non-deferred live block";
          for (auto it = live.begin(); it != live.end();) {
            it = it->second.second ? live.erase(it) : std::next(it);
          }
        }
        live.emplace(*block, std::make_pair(size, false));
      } else {
        // Allocation may fail only when substantial non-reclaimable
        // memory is booked (deferred blocks don't count: collect freed
        // them during the retry pass).
        std::size_t booked = 0;
        for (const auto& [off, info] : live) {
          if (!info.second) booked += info.first;
        }
        ASSERT_GT(booked + size, 12 * 1024u) << "spurious OOM at " << step;
      }
    } else if (action < 70 && !live.empty()) {  // free
      auto it = live.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(rng.below(live.size())));
      if (!it->second.second) {
        heap.free(it->first);
        live.erase(it);
      }
    } else if (action < 90 && !live.empty()) {  // defer_free
      auto it = live.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(rng.below(live.size())));
      if (!it->second.second) {
        heap.defer_free(it->first);
        it->second.second = true;
      }
    } else {  // collect
      heap.collect();
      for (auto it = live.begin(); it != live.end();) {
        it = it->second.second ? live.erase(it) : std::next(it);
      }
    }
    ASSERT_FALSE(heap.panicked()) << "step " << step << ": "
                                  << heap.panic_reason();
    ASSERT_TRUE(heap.check_integrity());
  }
  // Drain everything; the full arena must be allocatable again.
  for (const auto& [offset, info] : live) {
    if (!info.second) heap.free(offset);
  }
  heap.collect();
  EXPECT_TRUE(heap.alloc(30 * 1024).has_value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeapFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55));

}  // namespace
}  // namespace ptest::pcore
