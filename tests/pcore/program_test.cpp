#include "ptest/pcore/programs.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace ptest::pcore {
namespace {

/// Minimal context for stepping programs outside a kernel.
class FakeContext final : public TaskContext {
 public:
  [[nodiscard]] std::uint8_t task_id() const override { return 0; }
  [[nodiscard]] sim::Tick now() const override { return 0; }
  [[nodiscard]] bool holds(std::uint32_t mutex) const override {
    return held.count(mutex) > 0;
  }
  [[nodiscard]] std::int32_t shared(std::size_t index) const override {
    return words.at(index);
  }
  void set_shared(std::size_t index, std::int32_t value) override {
    words[index] = value;
  }

  std::set<std::uint32_t> held;
  std::map<std::size_t, std::int32_t> words{{0, 0}, {1, 0}};
};

TEST(ProgramTest, IdleNeverExits) {
  IdleProgram program;
  FakeContext ctx;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(program.step(ctx).kind, StepKind::kCompute);
  }
}

TEST(ProgramTest, FiniteComputeExitsAfterUnits) {
  FiniteComputeProgram program(3);
  FakeContext ctx;
  EXPECT_EQ(program.step(ctx).kind, StepKind::kCompute);
  EXPECT_EQ(program.step(ctx).kind, StepKind::kCompute);
  EXPECT_EQ(program.step(ctx).kind, StepKind::kCompute);
  const auto result = program.step(ctx);
  EXPECT_EQ(result.kind, StepKind::kExit);
  EXPECT_EQ(result.arg, 0u);
}

TEST(ProgramTest, ScriptReplaysAndExits) {
  ScriptProgram program({StepResult::compute(2), StepResult::yield(),
                         StepResult::lock(3)});
  FakeContext ctx;
  EXPECT_EQ(program.step(ctx).kind, StepKind::kCompute);
  EXPECT_EQ(program.step(ctx).kind, StepKind::kYield);
  EXPECT_EQ(program.step(ctx).arg, 3u);
  EXPECT_EQ(program.step(ctx).kind, StepKind::kExit);
}

TEST(ProgramTest, ScriptLoopsWhenAsked) {
  ScriptProgram program({StepResult::compute()}, /*loop=*/true);
  FakeContext ctx;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(program.step(ctx).kind, StepKind::kCompute);
  }
}

TEST(ProgramTest, LockHoldSequence) {
  LockHoldProgram program(/*mutex=*/1, /*hold_steps=*/2);
  FakeContext ctx;
  EXPECT_EQ(program.step(ctx).kind, StepKind::kLock);
  ctx.held.insert(1);  // kernel grants the lock
  EXPECT_EQ(program.step(ctx).kind, StepKind::kCompute);
  EXPECT_EQ(program.step(ctx).kind, StepKind::kCompute);
  EXPECT_EQ(program.step(ctx).kind, StepKind::kUnlock);
  EXPECT_EQ(program.step(ctx).kind, StepKind::kExit);
}

TEST(ProgramTest, StepResultFactories) {
  EXPECT_EQ(StepResult::compute(5).arg, 5u);
  EXPECT_EQ(StepResult::lock(2).kind, StepKind::kLock);
  EXPECT_EQ(StepResult::unlock(2).kind, StepKind::kUnlock);
  EXPECT_EQ(StepResult::exit(1).arg, 1u);
  EXPECT_EQ(StepResult::yield().kind, StepKind::kYield);
}

}  // namespace
}  // namespace ptest::pcore
