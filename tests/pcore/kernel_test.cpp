#include "ptest/pcore/kernel.hpp"

#include <gtest/gtest.h>

#include "ptest/pcore/programs.hpp"

namespace ptest::pcore {
namespace {

constexpr std::uint32_t kIdleId = 100;
constexpr std::uint32_t kComputeId = 101;

class KernelFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    kernel_ = std::make_unique<PcoreKernel>(config_);
    kernel_->register_program(kIdleId, [](std::uint32_t) {
      return std::make_unique<IdleProgram>();
    });
    kernel_->register_program(kComputeId, [](std::uint32_t units) {
      return std::make_unique<FiniteComputeProgram>(units);
    });
    soc_.attach(*kernel_);
  }

  TaskId create(Priority priority, std::uint32_t program = kIdleId,
                std::uint32_t arg = 0) {
    TaskId task = kInvalidTask;
    EXPECT_EQ(kernel_->task_create(program, arg, priority, task), Status::kOk);
    return task;
  }

  KernelConfig config_{};
  sim::Soc soc_;
  std::unique_ptr<PcoreKernel> kernel_;
};

TEST_F(KernelFixture, CreateAssignsSlotsUpTo16) {
  for (int i = 0; i < 16; ++i) {
    (void)create(static_cast<Priority>(i + 1));
  }
  EXPECT_EQ(kernel_->live_task_count(), 16u);
  TaskId overflow = kInvalidTask;
  EXPECT_EQ(kernel_->task_create(kIdleId, 0, 1, overflow), Status::kErrNoSlot);
}

TEST_F(KernelFixture, CreateUnknownProgramFails) {
  TaskId task = kInvalidTask;
  EXPECT_EQ(kernel_->task_create(999, 0, 1, task), Status::kErrBadProgram);
}

TEST_F(KernelFixture, DeleteFreesSlotForReuse) {
  const TaskId a = create(5);
  EXPECT_EQ(kernel_->task_delete(a), Status::kOk);
  EXPECT_EQ(kernel_->live_task_count(), 0u);
  const TaskId b = create(5);
  EXPECT_EQ(a, b);  // slot reused
  EXPECT_GT(kernel_->tcb(b).generation, 1u);
}

TEST_F(KernelFixture, ServicesRejectDeadOrInvalidTasks) {
  EXPECT_EQ(kernel_->task_suspend(3), Status::kErrBadTask);
  EXPECT_EQ(kernel_->task_resume(99), Status::kErrBadTask);
  const TaskId a = create(5);
  EXPECT_EQ(kernel_->task_delete(a), Status::kOk);
  EXPECT_EQ(kernel_->task_delete(a), Status::kErrBadTask);
  EXPECT_EQ(kernel_->task_chanprio(a, 7), Status::kErrBadTask);
}

TEST_F(KernelFixture, SuspendResumeLifecycle) {
  const TaskId a = create(5);
  EXPECT_EQ(kernel_->task_suspend(a), Status::kOk);
  EXPECT_EQ(kernel_->tcb(a).state, TaskState::kSuspended);
  // Double suspend is illegal (TS only from ready/running).
  EXPECT_EQ(kernel_->task_suspend(a), Status::kErrBadState);
  EXPECT_EQ(kernel_->task_resume(a), Status::kOk);
  EXPECT_EQ(kernel_->tcb(a).state, TaskState::kReady);
  // Resume of a non-suspended task is illegal (matches Eq. (2): TR only
  // after TS).
  EXPECT_EQ(kernel_->task_resume(a), Status::kErrBadState);
}

TEST_F(KernelFixture, SuspendedTaskDoesNotRun) {
  const TaskId a = create(5);
  (void)kernel_->task_suspend(a);
  (void)soc_.run(50);
  EXPECT_EQ(kernel_->tcb(a).steps, 0u);
  (void)kernel_->task_resume(a);
  (void)soc_.run(50);
  EXPECT_GT(kernel_->tcb(a).steps, 0u);
}

TEST_F(KernelFixture, HighestPriorityRuns) {
  const TaskId low = create(3);
  const TaskId high = create(9);
  (void)soc_.run(20);
  EXPECT_EQ(kernel_->tcb(low).steps, 0u);
  EXPECT_GT(kernel_->tcb(high).steps, 0u);
}

TEST_F(KernelFixture, ChanprioCausesPreemption) {
  const TaskId a = create(5);
  const TaskId b = create(3);
  (void)soc_.run(10);
  EXPECT_EQ(kernel_->tcb(b).steps, 0u);
  EXPECT_EQ(kernel_->task_chanprio(b, 8), Status::kOk);
  (void)soc_.run(10);
  EXPECT_GT(kernel_->tcb(b).steps, 0u);
  EXPECT_EQ(kernel_->tcb(a).state, TaskState::kReady);  // preempted
}

TEST_F(KernelFixture, FiniteProgramExitsAndFreesSlot) {
  const TaskId a = create(5, kComputeId, /*units=*/10);
  (void)soc_.run(20);
  EXPECT_EQ(kernel_->tcb(a).state, TaskState::kFree);
  EXPECT_EQ(kernel_->live_task_count(), 0u);
}

TEST_F(KernelFixture, YieldServiceTerminatesTask) {
  const TaskId a = create(5);
  (void)soc_.run(5);
  EXPECT_EQ(kernel_->task_yield(a), Status::kOk);
  EXPECT_EQ(kernel_->live_task_count(), 0u);
}

TEST_F(KernelFixture, TaskMemoryReclaimedAfterDeleteAndGc) {
  const auto before = kernel_->heap().stats().live_blocks;
  const TaskId a = create(5);
  EXPECT_EQ(kernel_->heap().stats().live_blocks, before + 2);  // TCB + stack
  (void)kernel_->task_delete(a);
  kernel_->heap().collect();
  EXPECT_EQ(kernel_->heap().stats().live_blocks, before);
}

TEST_F(KernelFixture, MutexBlockingAndOwnershipTransfer) {
  const MutexId m = kernel_->mutex_create();
  kernel_->register_program(200, [m](std::uint32_t hold) {
    return std::make_unique<LockHoldProgram>(m, hold);
  });
  const TaskId high = create(9, 200, /*hold=*/5);
  const TaskId low = create(3, 200, /*hold=*/5);
  (void)soc_.run(3);
  // High-priority task holds the mutex and computes.
  EXPECT_EQ(kernel_->mutex(m).owner, high);
  (void)soc_.run(200);
  // Both finished: mutex released, both slots free.
  EXPECT_FALSE(kernel_->mutex(m).owner.has_value());
  EXPECT_EQ(kernel_->live_task_count(), 0u);
  EXPECT_EQ(kernel_->mutex(m).acquisitions, 2u);
  (void)low;
}

TEST_F(KernelFixture, BlockedTaskCannotYieldButCanBeDeleted) {
  const MutexId m = kernel_->mutex_create();
  kernel_->register_program(200, [m](std::uint32_t) {
    return std::make_unique<LockHoldProgram>(m, 1000000);
  });
  // Low-priority holder acquires first; high-priority waiter then
  // preempts, attempts the lock and blocks.
  const TaskId holder = create(3, 200);
  (void)soc_.run(3);
  const TaskId waiter = create(9, 200);
  (void)soc_.run(10);
  EXPECT_EQ(kernel_->tcb(waiter).state, TaskState::kBlocked);
  EXPECT_EQ(kernel_->task_yield(waiter), Status::kErrBadState);
  EXPECT_EQ(kernel_->task_delete(waiter), Status::kOk);
  EXPECT_TRUE(kernel_->mutex(m).waiters.empty());
  (void)holder;
}

TEST_F(KernelFixture, DeletingMutexHolderHandsLockToWaiter) {
  const MutexId m = kernel_->mutex_create();
  kernel_->register_program(200, [m](std::uint32_t) {
    return std::make_unique<LockHoldProgram>(m, 1000000);
  });
  const TaskId holder = create(3, 200);
  (void)soc_.run(3);
  const TaskId waiter = create(9, 200);
  (void)soc_.run(10);
  ASSERT_EQ(kernel_->mutex(m).owner, holder);
  EXPECT_EQ(kernel_->task_delete(holder), Status::kOk);
  EXPECT_EQ(kernel_->mutex(m).owner, waiter);
  EXPECT_EQ(kernel_->tcb(waiter).state, TaskState::kReady);
}

TEST_F(KernelFixture, PanickedKernelRejectsServices) {
  kernel_->force_panic("test");
  TaskId task = kInvalidTask;
  EXPECT_EQ(kernel_->task_create(kIdleId, 0, 1, task), Status::kErrPanicked);
  EXPECT_EQ(kernel_->task_suspend(0), Status::kErrPanicked);
}

TEST_F(KernelFixture, SnapshotReflectsState) {
  const MutexId m = kernel_->mutex_create();
  kernel_->register_program(200, [m](std::uint32_t) {
    return std::make_unique<LockHoldProgram>(m, 1000000);
  });
  (void)create(3, 200);
  (void)soc_.run(3);
  (void)create(9, 200);
  (void)soc_.run(10);
  const KernelSnapshot snap = kernel_->snapshot();
  EXPECT_EQ(snap.live_tasks, 2u);
  EXPECT_FALSE(snap.panicked);
  bool saw_holder = false, saw_waiter = false;
  for (const auto& task : snap.tasks) {
    if (!task.holds.empty()) saw_holder = true;
    if (task.waiting_on) saw_waiter = true;
  }
  EXPECT_TRUE(saw_holder);
  EXPECT_TRUE(saw_waiter);
}

TEST_F(KernelFixture, SharedWordsBoundsChecked) {
  kernel_->set_shared_word(0, 42);
  EXPECT_EQ(kernel_->shared_word(0), 42);
  EXPECT_THROW((void)kernel_->shared_word(999), std::out_of_range);
}

TEST_F(KernelFixture, NonzeroExitPanicsWhenArmed) {
  config_.panic_on_nonzero_exit = true;
  kernel_ = std::make_unique<PcoreKernel>(config_);
  kernel_->register_program(201, [](std::uint32_t) {
    return std::make_unique<ScriptProgram>(
        std::vector<StepResult>{StepResult::exit(2)});
  });
  sim::Soc soc;
  soc.attach(*kernel_);
  TaskId task = kInvalidTask;
  ASSERT_EQ(kernel_->task_create(201, 0, 5, task), Status::kOk);
  (void)soc.run(5);
  EXPECT_TRUE(kernel_->panicked());
  EXPECT_NE(kernel_->panic_reason().find("assertion"), std::string::npos);
}

TEST_F(KernelFixture, UnlockingUnownedMutexPanics) {
  (void)kernel_->mutex_create();
  kernel_->register_program(202, [](std::uint32_t) {
    return std::make_unique<ScriptProgram>(
        std::vector<StepResult>{StepResult::unlock(0)});
  });
  TaskId task = kInvalidTask;
  ASSERT_EQ(kernel_->task_create(202, 0, 5, task), Status::kOk);
  (void)soc_.run(5);
  EXPECT_TRUE(kernel_->panicked());
}

TEST_F(KernelFixture, ScheduleNoiseStillRunsOnlyRunnableTasks) {
  config_.schedule_noise = 0.5;
  kernel_ = std::make_unique<PcoreKernel>(config_);
  kernel_->register_program(kIdleId, [](std::uint32_t) {
    return std::make_unique<IdleProgram>();
  });
  sim::Soc soc;
  soc.attach(*kernel_);
  TaskId low = kInvalidTask, high = kInvalidTask;
  ASSERT_EQ(kernel_->task_create(kIdleId, 0, 2, low), Status::kOk);
  ASSERT_EQ(kernel_->task_create(kIdleId, 0, 9, high), Status::kOk);
  (void)kernel_->task_suspend(low);
  (void)soc.run(100);
  // Noise must never schedule the suspended task.
  EXPECT_EQ(kernel_->tcb(low).steps, 0u);
  EXPECT_GT(kernel_->tcb(high).steps, 0u);
}

// Property sweep: create/delete churn at every count never leaks slots.
class KernelChurnSweep : public ::testing::TestWithParam<int> {};

TEST_P(KernelChurnSweep, ChurnLeavesKernelClean) {
  PcoreKernel kernel;
  kernel.register_program(1, [](std::uint32_t) {
    return std::make_unique<IdleProgram>();
  });
  sim::Soc soc;
  soc.attach(kernel);
  const int rounds = GetParam();
  for (int r = 0; r < rounds; ++r) {
    std::vector<TaskId> tasks;
    for (int i = 0; i < 16; ++i) {
      TaskId t = kInvalidTask;
      ASSERT_EQ(kernel.task_create(1, 0, static_cast<Priority>(i), t),
                Status::kOk);
      tasks.push_back(t);
    }
    (void)soc.run(5);
    for (const TaskId t : tasks) {
      ASSERT_EQ(kernel.task_delete(t), Status::kOk);
    }
  }
  kernel.heap().collect();
  EXPECT_EQ(kernel.live_task_count(), 0u);
  EXPECT_FALSE(kernel.panicked());
  EXPECT_EQ(kernel.heap().stats().live_blocks, 0u);
}

INSTANTIATE_TEST_SUITE_P(Rounds, KernelChurnSweep,
                         ::testing::Values(1, 4, 16, 64));

}  // namespace
}  // namespace ptest::pcore
