#include "ptest/pcore/heap.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ptest::pcore {
namespace {

TEST(HeapTest, AllocatesDisjointBlocks) {
  KernelHeap heap(4096);
  const auto a = heap.alloc(64);
  const auto b = heap.alloc(64);
  ASSERT_TRUE(a && b);
  EXPECT_NE(*a, *b);
}

TEST(HeapTest, FreeMakesMemoryReusable) {
  KernelHeap heap(1024);
  std::set<std::uint32_t> offsets;
  for (int i = 0; i < 100; ++i) {
    const auto block = heap.alloc(200);
    ASSERT_TRUE(block) << "iteration " << i;
    offsets.insert(*block);
    heap.free(*block);
  }
  // With immediate free + coalescing the same region is reused.
  EXPECT_LE(offsets.size(), 4u);
}

TEST(HeapTest, ExhaustionReturnsNulloptNotPanic) {
  KernelHeap heap(1024);
  std::vector<std::uint32_t> blocks;
  while (const auto b = heap.alloc(100)) blocks.push_back(*b);
  EXPECT_FALSE(heap.panicked());
  EXPECT_FALSE(heap.alloc(100).has_value());
  // Freeing restores service.
  heap.free(blocks.back());
  EXPECT_TRUE(heap.alloc(64).has_value());
}

TEST(HeapTest, DeferFreeReclaimedOnlyByCollect) {
  KernelHeap heap(2048);
  const auto a = heap.alloc(1500);
  ASSERT_TRUE(a);
  heap.defer_free(*a);
  EXPECT_EQ(heap.stats().graveyard_blocks, 1u);
  // Graveyard blocks are not allocatable; alloc() triggers collect().
  const auto b = heap.alloc(1500);
  ASSERT_TRUE(b);
  EXPECT_EQ(heap.stats().graveyard_blocks, 0u);
}

TEST(HeapTest, DoubleFreePanics) {
  KernelHeap heap(1024);
  const auto a = heap.alloc(64);
  heap.free(*a);
  heap.free(*a);
  EXPECT_TRUE(heap.panicked());
  EXPECT_NE(heap.panic_reason().find("double free"), std::string::npos);
}

TEST(HeapTest, DoubleDeferFreePanics) {
  KernelHeap heap(1024);
  const auto a = heap.alloc(64);
  heap.defer_free(*a);
  heap.defer_free(*a);
  EXPECT_TRUE(heap.panicked());
}

TEST(HeapTest, UnknownOffsetThrows) {
  KernelHeap heap(1024);
  EXPECT_THROW(heap.free(12345), std::invalid_argument);
}

TEST(HeapTest, CoalescingKeepsLargeAllocationsPossible) {
  KernelHeap heap(4096);
  std::vector<std::uint32_t> blocks;
  for (int i = 0; i < 8; ++i) {
    const auto b = heap.alloc(256);
    ASSERT_TRUE(b);
    blocks.push_back(*b);
  }
  for (const auto b : blocks) heap.free(b);
  heap.collect();
  // After coalescing a near-full-capacity block must fit again.
  EXPECT_TRUE(heap.alloc(3500).has_value());
  EXPECT_GT(heap.stats().coalesced, 0u);
}

TEST(HeapTest, StatsTrackLiveBytes) {
  KernelHeap heap(4096);
  const auto a = heap.alloc(100);
  ASSERT_TRUE(a);
  const auto stats = heap.stats();
  EXPECT_EQ(stats.live_blocks, 1u);
  EXPECT_GE(stats.live_bytes, 100u);
  EXPECT_EQ(stats.total_allocs, 1u);
}

TEST(HeapTest, IntegrityCheckPassesOnHealthyHeap) {
  KernelHeap heap(4096);
  (void)heap.alloc(64);
  EXPECT_TRUE(heap.check_integrity());
}

// --- the injected GC fault (case study 1 ground truth) ----------------------

TEST(HeapFaultTest, GcCorruptionFiresUnderChurnAtPressure) {
  HeapFaultPlan plan;
  plan.gc_corruption = true;
  plan.churn_threshold = 16;
  plan.live_block_threshold = 8;
  KernelHeap heap(64 * 1024, plan);

  // Hold 12 blocks live (pressure), then churn defer_free/alloc cycles.
  std::vector<std::uint32_t> pinned;
  for (int i = 0; i < 12; ++i) {
    const auto b = heap.alloc(512);
    ASSERT_TRUE(b);
    pinned.push_back(*b);
  }
  bool panicked = false;
  for (int i = 0; i < 200 && !panicked; ++i) {
    const auto b = heap.alloc(512);
    if (!b) break;
    heap.defer_free(*b);
    heap.collect();
    panicked = heap.panicked() || !heap.check_integrity();
  }
  EXPECT_TRUE(panicked);
  EXPECT_NE(heap.panic_reason().find("corrupted"), std::string::npos);
}

TEST(HeapFaultTest, NoCorruptionWithoutPressure) {
  HeapFaultPlan plan;
  plan.gc_corruption = true;
  plan.churn_threshold = 16;
  plan.live_block_threshold = 8;
  KernelHeap heap(64 * 1024, plan);
  // Churn hard but with < 8 live blocks: the fault must never fire —
  // this is why only the 16-task stress of case study 1 exposes it.
  for (int i = 0; i < 500; ++i) {
    const auto b = heap.alloc(512);
    ASSERT_TRUE(b);
    heap.defer_free(*b);
    heap.collect();
    ASSERT_TRUE(heap.check_integrity()) << "iteration " << i;
  }
  EXPECT_FALSE(heap.panicked());
}

TEST(HeapFaultTest, DisabledPlanNeverCorrupts) {
  KernelHeap heap(64 * 1024, HeapFaultPlan{});
  std::vector<std::uint32_t> pinned;
  for (int i = 0; i < 12; ++i) pinned.push_back(*heap.alloc(512));
  for (int i = 0; i < 500; ++i) {
    const auto b = heap.alloc(512);
    ASSERT_TRUE(b);
    heap.defer_free(*b);
    heap.collect();
  }
  EXPECT_TRUE(heap.check_integrity());
  EXPECT_FALSE(heap.panicked());
}

}  // namespace
}  // namespace ptest::pcore
