// CoTask runtime tests: the co_await -> StepResult desugaring contract,
// per-step context indirection, and — the part a state machine never had
// to prove — coroutine frame lifetime: locals in a suspended frame must be
// destroyed when the task is deleted, the kernel panics, or the kernel is
// torn down mid-campaign.
#include "ptest/pcore/co_task.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <vector>

#include "ptest/pcore/kernel.hpp"

namespace ptest::pcore {
namespace {

/// Minimal context for stepping coroutines outside a kernel.
class FakeContext final : public TaskContext {
 public:
  [[nodiscard]] std::uint8_t task_id() const override { return 7; }
  [[nodiscard]] sim::Tick now() const override { return 0; }
  [[nodiscard]] bool holds(std::uint32_t mutex) const override {
    return held.count(mutex) > 0;
  }
  [[nodiscard]] std::int32_t shared(std::size_t index) const override {
    auto it = words.find(index);
    return it == words.end() ? 0 : it->second;
  }
  void set_shared(std::size_t index, std::int32_t value) override {
    words[index] = value;
  }

  std::set<std::uint32_t> held;
  std::map<std::size_t, std::int32_t> words;
};

/// RAII witness for frame-local destruction.  Constructed when the body
/// first resumes (code before the first co_await runs on step 1), so
/// `*alive` counts frames whose locals have been created but not yet
/// destroyed.
struct FrameProbe {
  explicit FrameProbe(int* counter) : alive(counter) { ++*alive; }
  FrameProbe(const FrameProbe&) = delete;
  FrameProbe& operator=(const FrameProbe&) = delete;
  ~FrameProbe() { --*alive; }
  int* alive;
};

CoTask all_ops_body() {
  co_await compute(3);
  co_await yield();
  co_await lock(4);
  co_await unlock(4);
  co_return 7;
}

TEST(CoTaskTest, AwaitsDesugarToStepResults) {
  CoTask task = all_ops_body();
  FakeContext ctx;
  ASSERT_TRUE(task.valid());

  StepResult step = task.step(ctx);
  EXPECT_EQ(step.kind, StepKind::kCompute);
  EXPECT_EQ(step.arg, 3u);
  EXPECT_EQ(task.step(ctx).kind, StepKind::kYield);
  step = task.step(ctx);
  EXPECT_EQ(step.kind, StepKind::kLock);
  EXPECT_EQ(step.arg, 4u);
  step = task.step(ctx);
  EXPECT_EQ(step.kind, StepKind::kUnlock);
  EXPECT_EQ(step.arg, 4u);

  step = task.step(ctx);
  EXPECT_EQ(step.kind, StepKind::kExit);
  EXPECT_EQ(step.arg, 7u);
  EXPECT_TRUE(task.done());
  // Terminal behaviour: the exit step repeats without resuming the frame
  // (the old machines' terminal phases did the same).
  for (int i = 0; i < 5; ++i) {
    step = task.step(ctx);
    EXPECT_EQ(step.kind, StepKind::kExit);
    EXPECT_EQ(step.arg, 7u);
  }
}

TEST(CoTaskTest, StateMirrorsStepKinds) {
  CoTask task = all_ops_body();
  FakeContext ctx;
  EXPECT_EQ(task.state(), TaskState::kReady);  // before first resume
  (void)task.step(ctx);                        // compute
  EXPECT_EQ(task.state(), TaskState::kRunning);
  (void)task.step(ctx);  // yield
  EXPECT_EQ(task.state(), TaskState::kReady);
  (void)task.step(ctx);  // lock
  EXPECT_EQ(task.state(), TaskState::kBlocked);
  (void)task.step(ctx);  // unlock
  EXPECT_EQ(task.state(), TaskState::kRunning);
  (void)task.step(ctx);  // exit
  EXPECT_EQ(task.state(), TaskState::kTerminated);
}

CoTask env_body() {
  TaskEnv task = co_await env();
  task.set_shared(0, 1);
  co_await compute();
  task.set_shared(0, 2);
  co_await compute();
  co_return task.task_id();
}

TEST(CoTaskTest, EnvIndirectsThroughPerStepContext) {
  // The TaskEnv handle obtained before the first suspension must keep
  // working across co_awaits even when every step carries a *different*
  // context object — exactly what the kernel's stack-allocated per-step
  // ContextImpl does.
  CoTask task = env_body();
  FakeContext first;
  FakeContext second;
  (void)task.step(first);   // writes 1 via the env handle
  (void)task.step(second);  // same handle, new context: writes 2
  EXPECT_EQ(first.words.at(0), 1);
  EXPECT_EQ(second.words.at(0), 2);
  FakeContext third;
  const StepResult step = task.step(third);
  EXPECT_EQ(step.kind, StepKind::kExit);
  EXPECT_EQ(step.arg, 7u);  // FakeContext::task_id()
}

CoTask throwing_body() {
  co_await compute();
  throw std::runtime_error("boom");
  co_return 0;  // unreachable; keeps control from flowing off the end
}

TEST(CoTaskTest, ExceptionPropagatesThenTaskIsTerminal) {
  CoTask task = throwing_body();
  FakeContext ctx;
  EXPECT_EQ(task.step(ctx).kind, StepKind::kCompute);
  EXPECT_THROW((void)task.step(ctx), std::runtime_error);
  // The error is consumed; the frame is done and reports a failing exit.
  EXPECT_TRUE(task.done());
  const StepResult step = task.step(ctx);
  EXPECT_EQ(step.kind, StepKind::kExit);
  EXPECT_EQ(step.arg, 1u);
}

CoTask probe_body(int* alive) {
  FrameProbe probe(alive);
  std::vector<int> scratch(64, 42);  // heap-owning local in the frame
  for (;;) {
    co_await compute(static_cast<std::uint32_t>(scratch.size()));
  }
}

TEST(CoTaskTest, DestroyingSuspendedFrameRunsLocalDestructors) {
  int alive = 0;
  {
    CoTask task = probe_body(&alive);
    EXPECT_EQ(alive, 0);  // body has not started yet (initial suspend)
    FakeContext ctx;
    (void)task.step(ctx);
    (void)task.step(ctx);
    EXPECT_EQ(alive, 1);
  }  // CoTask destroyed while suspended mid-loop
  EXPECT_EQ(alive, 0);
}

TEST(CoTaskTest, MoveTransfersFrameOwnership) {
  int alive = 0;
  FakeContext ctx;
  CoTask task = probe_body(&alive);
  (void)task.step(ctx);
  CoTask stolen = std::move(task);
  EXPECT_FALSE(task.valid());  // NOLINT(bugprone-use-after-move): tested
  EXPECT_TRUE(stolen.valid());
  EXPECT_EQ(alive, 1);
  stolen = CoTask();  // move-assign over it: old frame destroyed
  EXPECT_EQ(alive, 0);
}

CoTask trivial_body(int id) {
  co_await compute(static_cast<std::uint32_t>(id));
  co_return 0;
}

TEST(CoTaskQueueTest, FifoOrderWithIntrusiveHooks) {
  CoTask a = trivial_body(1);
  CoTask b = trivial_body(2);
  CoTask c = trivial_body(3);
  CoTaskQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.pop(), nullptr);

  queue.push(*a.promise());
  queue.push(*b.promise());
  queue.push(*c.promise());
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.pop(), a.promise());
  EXPECT_EQ(queue.pop(), b.promise());
  // Re-enqueue after pop is legal (the hook was cleared).
  queue.push(*a.promise());
  EXPECT_EQ(queue.pop(), c.promise());
  EXPECT_EQ(queue.pop(), a.promise());
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.pop(), nullptr);
}

// --- frame lifetime under the kernel ---------------------------------------

CoTask blocking_probe_body(int* alive, std::uint32_t mutex) {
  FrameProbe probe(alive);
  co_await lock(mutex);
  for (;;) co_await compute();
}

CoTask hold_forever_body(std::uint32_t mutex) {
  co_await lock(mutex);
  for (;;) co_await compute();
}

TEST(CoTaskKernelTest, TaskDeleteDestroysBlockedFrame) {
  int alive = 0;
  PcoreKernel kernel;
  sim::Soc soc;
  soc.attach(kernel);
  const MutexId mutex = kernel.mutex_create();
  kernel.register_program(1, [mutex](std::uint32_t) {
    return make_co_program("holder", hold_forever_body(mutex));
  });
  kernel.register_program(2, [&alive, mutex](std::uint32_t) {
    return make_co_program("victim", blocking_probe_body(&alive, mutex));
  });

  TaskId holder = kInvalidTask;
  ASSERT_EQ(kernel.task_create(1, 0, /*priority=*/5, holder), Status::kOk);
  for (int i = 0; i < 4; ++i) (void)soc.step();
  ASSERT_EQ(kernel.mutex(mutex).owner, holder);
  // Park the holder so the victim gets scheduled and blocks on the mutex.
  ASSERT_EQ(kernel.task_suspend(holder), Status::kOk);

  TaskId victim = kInvalidTask;
  ASSERT_EQ(kernel.task_create(2, 0, /*priority=*/4, victim), Status::kOk);
  for (int i = 0; i < 4; ++i) (void)soc.step();
  ASSERT_EQ(kernel.tcb(victim).state, TaskState::kBlocked);
  ASSERT_EQ(alive, 1);

  // Deleting the blocked task reclaims its TCB and must destroy the
  // suspended coroutine frame — running the destructors of its locals.
  ASSERT_EQ(kernel.task_delete(victim), Status::kOk);
  EXPECT_EQ(alive, 0);
  EXPECT_FALSE(kernel.panicked());
}

CoTask failing_body() {
  co_await compute();
  co_return 42;  // assertion failure under panic_on_nonzero_exit
}

TEST(CoTaskKernelTest, PanicKeepsSuspendedFramesThenTeardownFrees) {
  // When another task panics the kernel, a bystander suspended mid-body
  // stays alive for the bug detector's post-mortem snapshot; destroying
  // the kernel (session teardown after the report) frees its frame.
  int alive = 0;
  {
    KernelConfig config;
    config.panic_on_nonzero_exit = true;
    PcoreKernel kernel(config);
    sim::Soc soc;
    soc.attach(kernel);
    kernel.register_program(1, [&alive](std::uint32_t) {
      return make_co_program("bystander", probe_body(&alive));
    });
    kernel.register_program(2, [](std::uint32_t) {
      return make_co_program("failer", failing_body());
    });
    TaskId bystander = kInvalidTask;
    ASSERT_EQ(kernel.task_create(1, 0, /*priority=*/5, bystander),
              Status::kOk);
    for (int i = 0; i < 3; ++i) (void)soc.step();
    ASSERT_EQ(alive, 1);  // bystander suspended mid-loop

    // Higher priority: the failer preempts, exits nonzero, kernel panics.
    TaskId failer = kInvalidTask;
    ASSERT_EQ(kernel.task_create(2, 0, /*priority=*/9, failer), Status::kOk);
    for (int i = 0; i < 8 && !kernel.panicked(); ++i) (void)soc.step();
    ASSERT_TRUE(kernel.panicked());
    EXPECT_EQ(alive, 1);
  }  // kernel destroyed — the campaign-abort / session-teardown path
  EXPECT_EQ(alive, 0);
}

TEST(CoTaskKernelTest, KernelTeardownDestroysRunningFrames) {
  // Campaign abort: a session can be dropped while tasks are mid-body.
  int alive = 0;
  {
    PcoreKernel kernel;
    sim::Soc soc;
    soc.attach(kernel);
    kernel.register_program(1, [&alive](std::uint32_t) {
      return make_co_program("spinner", probe_body(&alive));
    });
    TaskId task = kInvalidTask;
    ASSERT_EQ(kernel.task_create(1, 0, /*priority=*/5, task), Status::kOk);
    for (int i = 0; i < 5; ++i) (void)soc.step();
    EXPECT_EQ(alive, 1);
  }
  EXPECT_EQ(alive, 0);
}

}  // namespace
}  // namespace ptest::pcore
