#include "ptest/pcore/scheduler.hpp"

#include <gtest/gtest.h>

namespace ptest::pcore {
namespace {

std::array<Tcb, kMaxTasks> make_table() { return {}; }

TEST(SchedulerTest, EmptyTableYieldsInvalid) {
  PriorityScheduler scheduler;
  const auto tcbs = make_table();
  EXPECT_EQ(scheduler.pick(tcbs, kInvalidTask), kInvalidTask);
}

TEST(SchedulerTest, PicksHighestPriorityReady) {
  PriorityScheduler scheduler;
  auto tcbs = make_table();
  tcbs[2].state = TaskState::kReady;
  tcbs[2].priority = 5;
  tcbs[7].state = TaskState::kReady;
  tcbs[7].priority = 9;
  tcbs[4].state = TaskState::kSuspended;
  tcbs[4].priority = 15;  // not runnable, must be ignored
  EXPECT_EQ(scheduler.pick(tcbs, kInvalidTask), 7);
}

TEST(SchedulerTest, TieBreaksTowardIncumbent) {
  PriorityScheduler scheduler;
  auto tcbs = make_table();
  tcbs[1].state = TaskState::kReady;
  tcbs[1].priority = 5;
  tcbs[3].state = TaskState::kRunning;
  tcbs[3].priority = 5;
  EXPECT_EQ(scheduler.pick(tcbs, 3), 3);
}

TEST(SchedulerTest, TieWithoutIncumbentPicksLowestSlot) {
  PriorityScheduler scheduler;
  auto tcbs = make_table();
  tcbs[6].state = TaskState::kReady;
  tcbs[6].priority = 5;
  tcbs[2].state = TaskState::kReady;
  tcbs[2].priority = 5;
  EXPECT_EQ(scheduler.pick(tcbs, kInvalidTask), 2);
}

TEST(SchedulerTest, BlockedAndTerminatedIgnored) {
  PriorityScheduler scheduler;
  auto tcbs = make_table();
  tcbs[0].state = TaskState::kBlocked;
  tcbs[0].priority = 9;
  tcbs[1].state = TaskState::kTerminated;
  tcbs[1].priority = 9;
  tcbs[2].state = TaskState::kReady;
  tcbs[2].priority = 1;
  EXPECT_EQ(scheduler.pick(tcbs, kInvalidTask), 2);
}

TEST(SchedulerTest, DispatchCountersTrackSwitchesAndPreemptions) {
  PriorityScheduler scheduler;
  scheduler.note_dispatch(kInvalidTask, 1, false);  // first dispatch
  scheduler.note_dispatch(1, 1, true);              // same task: no switch
  scheduler.note_dispatch(1, 2, true);              // preemption
  scheduler.note_dispatch(2, 3, false);             // 2 blocked: plain switch
  EXPECT_EQ(scheduler.context_switches(), 3u);
  EXPECT_EQ(scheduler.preemptions(), 1u);
}

}  // namespace
}  // namespace ptest::pcore
