// obs::Histogram — bucket layout, percentile estimates, and above all
// the merge algebra the fleet relies on: merge is commutative and
// associative with the empty histogram as identity, and a histogram
// split across shards merges back bit-identical to the whole.  The
// split-equals-whole property is then checked end to end on the real
// runners: jobs=1 vs jobs=4 and shards=1 vs shards=2 must produce the
// same ticks histogram for the same budget and seed.
#include "ptest/obs/histogram.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "ptest/core/campaign.hpp"
#include "ptest/fleet/coordinator.hpp"

namespace ptest::obs {
namespace {

TEST(HistogramTest, BucketLayoutIsPowerOfTwo) {
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 1u);
  EXPECT_EQ(Histogram::bucket_index(2), 2u);
  EXPECT_EQ(Histogram::bucket_index(3), 2u);
  EXPECT_EQ(Histogram::bucket_index(4), 3u);
  EXPECT_EQ(Histogram::bucket_index(1023), 10u);
  EXPECT_EQ(Histogram::bucket_index(1024), 11u);
  EXPECT_EQ(Histogram::bucket_index(std::uint64_t{1} << 62),
            Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::bucket_index(~std::uint64_t{0}),
            Histogram::kBuckets - 1);
  // Every value lands in the bucket whose [lower, upper] range holds it.
  for (const std::uint64_t value : {0ull, 1ull, 2ull, 7ull, 100ull, 4097ull}) {
    const std::size_t index = Histogram::bucket_index(value);
    EXPECT_GE(value, Histogram::bucket_lower_bound(index));
    EXPECT_LE(value, Histogram::bucket_upper_bound(index));
  }
}

TEST(HistogramTest, RecordAndCount) {
  Histogram hist;
  EXPECT_TRUE(hist.empty());
  hist.record(0);
  hist.record(5);
  hist.record(5);
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_EQ(hist.bucket(0), 1u);
  EXPECT_EQ(hist.bucket(Histogram::bucket_index(5)), 2u);
  hist.reset();
  EXPECT_TRUE(hist.empty());
  EXPECT_EQ(hist, Histogram{});
}

TEST(HistogramTest, PercentileReportsBucketUpperBound) {
  Histogram hist;
  for (int i = 0; i < 99; ++i) hist.record(10);  // bucket [8, 15]
  hist.record(1000);                             // bucket [512, 1023]
  EXPECT_EQ(hist.p50(), 15u);
  EXPECT_EQ(hist.p95(), 15u);
  EXPECT_EQ(hist.percentile(1.0), 1023u);
  // Out-of-range quantiles clamp instead of reading out of bounds.
  EXPECT_EQ(hist.percentile(-1.0), 15u);
  EXPECT_EQ(hist.percentile(2.0), 1023u);
  EXPECT_EQ(Histogram{}.p99(), 0u);
}

TEST(HistogramTest, MergeIsCommutativeAssociativeWithIdentity) {
  Histogram a, b, c;
  for (const std::uint64_t v : {1ull, 3ull, 900ull}) a.record(v);
  for (const std::uint64_t v : {0ull, 3ull, 1ull << 40}) b.record(v);
  for (const std::uint64_t v : {7ull, 7ull, 7ull, 8ull}) c.record(v);

  Histogram ab = a;
  ab.merge(b);
  Histogram ba = b;
  ba.merge(a);
  EXPECT_EQ(ab, ba);  // commutative

  Histogram ab_c = ab;
  ab_c.merge(c);
  Histogram bc = b;
  bc.merge(c);
  Histogram a_bc = a;
  a_bc.merge(bc);
  EXPECT_EQ(ab_c, a_bc);  // associative

  Histogram with_identity = a;
  with_identity.merge(Histogram{});
  EXPECT_EQ(with_identity, a);  // identity
}

TEST(HistogramTest, SplitMergesBackToWhole) {
  const std::vector<std::uint64_t> samples = {0,  1,  1,  2,   5,   9,
                                              16, 31, 99, 512, 8000, 1u << 20};
  Histogram whole;
  for (const std::uint64_t v : samples) whole.record(v);
  // Any partition of the sample stream merges back to the whole.
  for (std::size_t split = 0; split <= samples.size(); ++split) {
    Histogram left, right;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      (i < split ? left : right).record(samples[i]);
    }
    left.merge(right);
    EXPECT_EQ(left, whole) << "split at " << split;
  }
}

TEST(HistogramTest, AddBucketReconstructsWireHistogram) {
  Histogram original;
  for (const std::uint64_t v : {3ull, 3ull, 70ull, 1ull << 50}) {
    original.record(v);
  }
  // The wire ships sparse [index, count] pairs; add_bucket rebuilds.
  Histogram rebuilt;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    if (original.bucket(i) != 0) rebuilt.add_bucket(i, original.bucket(i));
  }
  EXPECT_EQ(rebuilt, original);
  // An out-of-range index clamps into the open-ended top bucket.
  Histogram clamped;
  clamped.add_bucket(Histogram::kBuckets + 5, 2);
  EXPECT_EQ(clamped.bucket(Histogram::kBuckets - 1), 2u);
}

// The ticks histogram is work-class: per-session kernel ticks are
// deterministic for a fixed seed, so the distribution must not depend
// on worker parallelism.
TEST(HistogramTest, TicksHistogramIdenticalAcrossJobs) {
  core::CampaignOptions serial_options;
  serial_options.budget = 16;
  serial_options.jobs = 1;
  auto serial =
      core::Campaign::run_scenario("philosophers-deadlock", serial_options);
  ASSERT_TRUE(serial.ok()) << serial.error();

  core::CampaignOptions parallel_options;
  parallel_options.budget = 16;
  parallel_options.jobs = 4;
  auto parallel =
      core::Campaign::run_scenario("philosophers-deadlock", parallel_options);
  ASSERT_TRUE(parallel.ok()) << parallel.error();

  EXPECT_EQ(serial.value().metrics.ticks_hist.count(), 16u);
  EXPECT_EQ(serial.value().metrics.ticks_hist,
            parallel.value().metrics.ticks_hist);
}

// ... and not on the shard count either: the shard histograms ride the
// wire and fold back to the serial distribution.
TEST(HistogramTest, TicksHistogramIdenticalAcrossShards) {
  core::CampaignOptions serial_options;
  serial_options.budget = 16;
  auto serial =
      core::Campaign::run_scenario("philosophers-deadlock", serial_options);
  ASSERT_TRUE(serial.ok()) << serial.error();

  fleet::CoordinatorOptions fleet_options;
  fleet_options.budget = 16;
  fleet_options.shards = 2;
  auto fleet_result =
      fleet::run_local_fleet("philosophers-deadlock", fleet_options);
  ASSERT_TRUE(fleet_result.ok()) << fleet_result.error();

  EXPECT_EQ(fleet_result.value().result.metrics.ticks_hist,
            serial.value().metrics.ticks_hist);
}

}  // namespace
}  // namespace ptest::obs
