// obs::TraceRecorder — ring-wrap accounting, drain semantics, the
// shipped-fragment JSON schema, and the stitched Chrome trace document
// (validated by re-parsing with the same strict parser the fleet wire
// uses).  The recorder is a process-global singleton, so every test
// enables its own fresh generation and disables on the way out.
#include "ptest/obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "ptest/support/json.hpp"

namespace ptest::obs {
namespace {

class TraceRecorderTest : public ::testing::Test {
 protected:
  void TearDown() override {
    TraceRecorder::instance().disable();
    (void)TraceRecorder::instance().drain();  // leave no events behind
  }
};

TEST_F(TraceRecorderTest, DisabledRecorderRecordsNothing) {
  TraceRecorder& recorder = TraceRecorder::instance();
  recorder.disable();
  (void)recorder.drain();
  recorder.record_instant("ignored");
  recorder.record_span("ignored", 1, 2);
  { TraceSpan span("ignored"); }
  const TraceDump dump = recorder.drain();
  EXPECT_TRUE(dump.events.empty());
  EXPECT_EQ(dump.dropped, 0u);
}

TEST_F(TraceRecorderTest, RecordsSpansAndInstants) {
  TraceRecorder& recorder = TraceRecorder::instance();
  recorder.enable();
  recorder.record_span("alpha", 100, 50);
  recorder.record_instant("beta");
  { TraceSpan span("gamma"); }
  const TraceDump dump = recorder.drain();
  ASSERT_EQ(dump.events.size(), 3u);
  EXPECT_EQ(dump.dropped, 0u);
  bool saw_span = false, saw_instant = false, saw_raii = false;
  for (const TraceEvent& event : dump.events) {
    const std::string name = event.name;
    if (name == "alpha") {
      saw_span = true;
      EXPECT_FALSE(event.instant);
      EXPECT_EQ(event.ts_ns, 100u);
      EXPECT_EQ(event.dur_ns, 50u);
    } else if (name == "beta") {
      saw_instant = true;
      EXPECT_TRUE(event.instant);
      EXPECT_EQ(event.dur_ns, 0u);
    } else if (name == "gamma") {
      saw_raii = true;
      EXPECT_FALSE(event.instant);
    }
    EXPECT_NE(event.tid, 0u);  // lanes are 1-based
  }
  EXPECT_TRUE(saw_span && saw_instant && saw_raii);
}

TEST_F(TraceRecorderTest, RingWrapKeepsTailAndCountsDrops) {
  TraceRecorder& recorder = TraceRecorder::instance();
  recorder.enable(/*ring_capacity=*/4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    recorder.record_span("event", /*start_ns=*/i, /*dur_ns=*/1);
  }
  const TraceDump dump = recorder.drain();
  ASSERT_EQ(dump.events.size(), 4u);
  EXPECT_EQ(dump.dropped, 6u);
  // The tail survives (timestamps 6..9), oldest first after the sort.
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(dump.events[i].ts_ns, 6 + i);
  }
  // Drain cleared the ring: the next drain reports nothing.
  const TraceDump empty = recorder.drain();
  EXPECT_TRUE(empty.events.empty());
  EXPECT_EQ(empty.dropped, 0u);
}

TEST_F(TraceRecorderTest, DrainSortsByStartTimestamp) {
  TraceRecorder& recorder = TraceRecorder::instance();
  recorder.enable();
  recorder.record_span("late", 300, 1);
  recorder.record_span("early", 100, 1);
  recorder.record_span("middle", 200, 1);
  const TraceDump dump = recorder.drain();
  ASSERT_EQ(dump.events.size(), 3u);
  EXPECT_STREQ(dump.events[0].name, "early");
  EXPECT_STREQ(dump.events[1].name, "middle");
  EXPECT_STREQ(dump.events[2].name, "late");
}

TEST(TraceFragmentTest, FragmentSchemaAndRebasing) {
  TraceDump dump;
  dump.events.push_back({"span", 5000, 40, 1, false});
  dump.events.push_back({"mark", 6000, 0, 2, true});
  dump.events.push_back({"pre-base", 100, 0, 1, true});  // clamps to 0
  dump.dropped = 3;

  const std::string fragment = trace_fragment_json(dump, /*base_ns=*/1000);
  auto parsed = support::parse_json(fragment);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  const support::JsonValue& doc = parsed.value();

  const support::JsonValue* dropped = doc.find("dropped");
  ASSERT_NE(dropped, nullptr);
  EXPECT_EQ(dropped->number, 3.0);

  const support::JsonValue* events = doc.find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array.size(), 3u);
  const support::JsonValue& span = events->array[0];
  EXPECT_EQ(span.find("name")->string, "span");
  EXPECT_EQ(span.find("ph")->string, "X");
  EXPECT_EQ(span.find("ts")->number, 4000.0);  // 5000 rebased by 1000
  EXPECT_EQ(span.find("dur")->number, 40.0);
  EXPECT_EQ(span.find("tid")->number, 1.0);
  EXPECT_EQ(events->array[1].find("ph")->string, "i");
  EXPECT_EQ(events->array[2].find("ts")->number, 0.0);  // clamped, not huge
}

TEST(StitchTest, BuildsOneDocumentWithPerNodeLanes) {
  TraceDump local;
  local.events.push_back({"fleet:issue", 1000, 0, 1, true});
  local.events.push_back({"corpus-merge", 3000, 500, 1, false});
  local.dropped = 1;

  // Worker fragment: one span at slice-relative t=0 plus 2 drops.
  TraceDump worker;
  worker.events.push_back({"session", 0, 700, 1, false});
  worker.dropped = 2;
  const std::string fragment = trace_fragment_json(worker, 0);

  const std::vector<NodeTrace> nodes = {
      {"daemon-1", fragment, /*offset_ns=*/1500},
      {"daemon-1", fragment, /*offset_ns=*/2500},  // same lane, 2nd shard
      {"daemon-2", "this is not json", /*offset_ns=*/2000},
  };
  const std::string document =
      stitch_chrome_trace("coordinator", local, nodes);

  auto parsed = support::parse_json(document);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  const support::JsonValue& doc = parsed.value();
  EXPECT_EQ(doc.find("displayTimeUnit")->string, "ms");

  // Drops aggregate across local + every parsed fragment; the garbage
  // fragment is counted, not fatal.
  const support::JsonValue* other = doc.find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->find("dropped_events")->number, 5.0);   // 1 + 2 + 2
  EXPECT_EQ(other->find("malformed_fragments")->number, 1.0);

  const support::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  std::size_t process_names = 0;
  std::size_t worker_spans = 0;
  double issue_ts = -1.0;
  for (const support::JsonValue& event : events->array) {
    const std::string& name = event.find("name")->string;
    if (event.find("ph")->string == "M") {
      ++process_names;
      continue;
    }
    if (name == "session") {
      ++worker_spans;
      EXPECT_EQ(event.find("pid")->number, 1.0);  // first node lane
    }
    if (name == "fleet:issue") issue_ts = event.find("ts")->number;
  }
  // Lanes: coordinator + daemon-1 + daemon-2 (metadata emitted even for
  // the malformed fragment's node).
  EXPECT_EQ(process_names, 3u);
  // daemon-1 shipped two fragments into one lane.
  EXPECT_EQ(worker_spans, 2u);
  // The earliest local event is the document origin.
  EXPECT_EQ(issue_ts, 0.0);
}

TEST(StitchTest, EmptyInputsProduceAValidDocument) {
  const std::string document = stitch_chrome_trace("ptest", TraceDump{}, {});
  auto parsed = support::parse_json(document);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  const support::JsonValue* events = parsed.value().find("traceEvents");
  ASSERT_NE(events, nullptr);
  // Just the local process_name metadata record.
  EXPECT_EQ(events->array.size(), 1u);
  EXPECT_EQ(parsed.value().find("otherData")->find("dropped_events")->number,
            0.0);
}

}  // namespace
}  // namespace ptest::obs
