#include "ptest/sim/shared_memory.hpp"

#include <gtest/gtest.h>

namespace ptest::sim {
namespace {

TEST(SharedSramTest, ReadBackWrittenValues) {
  SharedSram sram(1024);
  sram.write<std::uint32_t>(0, 0xdeadbeef);
  sram.write<std::uint16_t>(8, 0x1234);
  EXPECT_EQ(sram.read<std::uint32_t>(0), 0xdeadbeefu);
  EXPECT_EQ(sram.read<std::uint16_t>(8), 0x1234u);
}

TEST(SharedSramTest, DefaultSizeMatchesOmap) {
  SharedSram sram;
  EXPECT_EQ(sram.size(), 250u * 1024u);
}

TEST(SharedSramTest, BoundsChecked) {
  SharedSram sram(16);
  EXPECT_THROW(sram.write<std::uint32_t>(13, 1), std::out_of_range);
  EXPECT_THROW((void)sram.read<std::uint64_t>(9), std::out_of_range);
  EXPECT_NO_THROW(sram.write<std::uint32_t>(12, 1));
}

TEST(SharedSramTest, ReserveReturnsAlignedDisjointRegions) {
  SharedSram sram(256);
  const auto a = sram.reserve(10, 8);
  const auto b = sram.reserve(20, 8);
  EXPECT_EQ(a % 8, 0u);
  EXPECT_EQ(b % 8, 0u);
  EXPECT_GE(b, a + 10);
}

TEST(SharedSramTest, ReserveExhaustionThrows) {
  SharedSram sram(64);
  (void)sram.reserve(60);
  EXPECT_THROW((void)sram.reserve(8), std::length_error);
}

TEST(SharedSramTest, ReserveRejectsBadAlignment) {
  SharedSram sram(64);
  EXPECT_THROW((void)sram.reserve(8, 3), std::invalid_argument);
  EXPECT_THROW((void)sram.reserve(8, 0), std::invalid_argument);
}

TEST(SharedSramTest, StructRoundTrip) {
  struct Pod {
    std::uint32_t a;
    std::uint16_t b;
    std::uint8_t c[2];
  };
  SharedSram sram(64);
  const Pod in{42, 7, {1, 2}};
  sram.write(16, in);
  const Pod out = sram.read<Pod>(16);
  EXPECT_EQ(out.a, 42u);
  EXPECT_EQ(out.b, 7u);
  EXPECT_EQ(out.c[1], 2u);
}

}  // namespace
}  // namespace ptest::sim
