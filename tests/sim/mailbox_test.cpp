#include "ptest/sim/mailbox.hpp"

#include <gtest/gtest.h>

namespace ptest::sim {
namespace {

TEST(MailboxTest, DeliversAfterLatency) {
  Mailbox box(CoreId::kArm, CoreId::kDsp, 4, /*latency=*/2);
  ASSERT_TRUE(box.post(/*now=*/10, 0xabcd));
  EXPECT_FALSE(box.pending(10));
  EXPECT_FALSE(box.pending(11));
  EXPECT_TRUE(box.pending(12));
  const auto word = box.take(12);
  ASSERT_TRUE(word.has_value());
  EXPECT_EQ(*word, 0xabcdu);
  EXPECT_FALSE(box.pending(12));
}

TEST(MailboxTest, TakeBeforeLatencyReturnsNothing) {
  Mailbox box(CoreId::kArm, CoreId::kDsp, 4, 3);
  ASSERT_TRUE(box.post(0, 1));
  EXPECT_FALSE(box.take(1).has_value());
  EXPECT_TRUE(box.take(3).has_value());
}

TEST(MailboxTest, FifoOrderPreserved) {
  Mailbox box(CoreId::kArm, CoreId::kDsp, 4, 0);
  ASSERT_TRUE(box.post(0, 1));
  ASSERT_TRUE(box.post(0, 2));
  ASSERT_TRUE(box.post(0, 3));
  EXPECT_EQ(box.take(0).value(), 1u);
  EXPECT_EQ(box.take(0).value(), 2u);
  EXPECT_EQ(box.take(0).value(), 3u);
}

TEST(MailboxTest, RejectsWhenFull) {
  Mailbox box(CoreId::kArm, CoreId::kDsp, /*depth=*/2, 0);
  EXPECT_TRUE(box.post(0, 1));
  EXPECT_TRUE(box.post(0, 2));
  EXPECT_TRUE(box.full());
  EXPECT_FALSE(box.post(0, 3));
  (void)box.take(0);
  EXPECT_TRUE(box.post(0, 3));
}

TEST(MailboxTest, CountsPostedAndDelivered) {
  Mailbox box(CoreId::kArm, CoreId::kDsp, 4, 0);
  (void)box.post(0, 1);
  (void)box.post(0, 2);
  (void)box.take(0);
  EXPECT_EQ(box.posted_count(), 2u);
  EXPECT_EQ(box.delivered_count(), 1u);
}

TEST(MailboxBankTest, HasFourBoxesWithOmapDirections) {
  MailboxBank bank(1);
  EXPECT_EQ(bank.box(0).sender(), CoreId::kArm);
  EXPECT_EQ(bank.box(0).receiver(), CoreId::kDsp);
  EXPECT_EQ(bank.box(1).receiver(), CoreId::kDsp);
  EXPECT_EQ(bank.box(2).sender(), CoreId::kDsp);
  EXPECT_EQ(bank.box(2).receiver(), CoreId::kArm);
  EXPECT_EQ(bank.box(3).receiver(), CoreId::kArm);
  EXPECT_THROW((void)bank.box(4), std::out_of_range);
}

TEST(MailboxBankTest, InterruptPendingPerCore) {
  MailboxBank bank(1);
  EXPECT_FALSE(bank.interrupt_pending(CoreId::kDsp, 0));
  (void)bank.box(0).post(0, 7);
  EXPECT_FALSE(bank.interrupt_pending(CoreId::kDsp, 0));  // latency
  EXPECT_TRUE(bank.interrupt_pending(CoreId::kDsp, 1));
  EXPECT_FALSE(bank.interrupt_pending(CoreId::kArm, 1));
}

}  // namespace
}  // namespace ptest::sim
