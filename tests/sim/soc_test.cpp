#include "ptest/sim/soc.hpp"

#include <gtest/gtest.h>

namespace ptest::sim {
namespace {

class CountingDevice final : public Device {
 public:
  explicit CountingDevice(int stop_after = -1) : stop_after_(stop_after) {}
  bool tick(Soc& soc) override {
    ++ticks_;
    last_seen_ = soc.now();
    return stop_after_ < 0 || ticks_ < stop_after_;
  }
  int ticks_ = 0;
  Tick last_seen_ = 0;
  int stop_after_;
};

TEST(SocTest, RunsRequestedTicks) {
  Soc soc;
  CountingDevice device;
  soc.attach(device);
  EXPECT_EQ(soc.run(10), 10u);
  EXPECT_EQ(device.ticks_, 10);
  EXPECT_EQ(soc.now(), 10u);
}

TEST(SocTest, DeviceCanStopSimulation) {
  Soc soc;
  CountingDevice device(/*stop_after=*/3);
  soc.attach(device);
  EXPECT_EQ(soc.run(100), 3u);
  EXPECT_EQ(device.ticks_, 3);
}

TEST(SocTest, DevicesSteppedInAttachOrderSameTick) {
  Soc soc;
  CountingDevice first;
  CountingDevice second;
  soc.attach(first);
  soc.attach(second);
  (void)soc.run(5);
  EXPECT_EQ(first.ticks_, second.ticks_);
  EXPECT_EQ(first.last_seen_, second.last_seen_);
}

TEST(SocTest, RecordGoesToTraceWithCurrentTick) {
  Soc soc;
  CountingDevice device;
  soc.attach(device);
  (void)soc.run(3);
  soc.record(TraceCategory::kMaster, "hello");
  const auto tail = soc.trace().tail(1);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].tick, 3u);
  EXPECT_EQ(tail[0].message, "hello");
}

TEST(SocTest, ConfigControlsSramSize) {
  SocConfig config;
  config.sram_size = 1024;
  Soc soc(config);
  EXPECT_EQ(soc.sram().size(), 1024u);
}

}  // namespace
}  // namespace ptest::sim
