#include "ptest/sim/trace.hpp"

#include <gtest/gtest.h>

namespace ptest::sim {
namespace {

TEST(TraceLogTest, RecordsAndTails) {
  TraceLog log(8);
  log.record(1, TraceCategory::kKernel, "one");
  log.record(2, TraceCategory::kBridge, "two");
  const auto tail = log.tail(10);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].message, "one");
  EXPECT_EQ(tail[1].message, "two");
  EXPECT_EQ(tail[1].tick, 2u);
}

TEST(TraceLogTest, EvictsOldestAtCapacity) {
  TraceLog log(3);
  for (int i = 0; i < 5; ++i) {
    log.record(static_cast<Tick>(i), TraceCategory::kKernel,
               std::to_string(i));
  }
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.total_recorded(), 5u);
  const auto tail = log.tail(3);
  EXPECT_EQ(tail[0].message, "2");
  EXPECT_EQ(tail[2].message, "4");
}

TEST(TraceLogTest, TailSmallerThanSize) {
  TraceLog log(8);
  for (int i = 0; i < 5; ++i) {
    log.record(0, TraceCategory::kMaster, std::to_string(i));
  }
  const auto tail = log.tail(2);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].message, "3");
}

TEST(TraceLogTest, RenderFormatsLines) {
  TraceLog log(8);
  log.record(42, TraceCategory::kFault, "boom");
  EXPECT_EQ(log.render(8), "42 [fault] boom\n");
}

TEST(TraceLogTest, ZeroCapacityDropsEverything) {
  TraceLog log(0);
  log.record(0, TraceCategory::kKernel, "x");
  EXPECT_EQ(log.size(), 0u);
}

TEST(TraceLogTest, ClearResets) {
  TraceLog log(8);
  log.record(0, TraceCategory::kKernel, "x");
  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.total_recorded(), 0u);
}

TEST(TraceCategoryTest, Names) {
  EXPECT_STREQ(to_string(TraceCategory::kKernel), "kernel");
  EXPECT_STREQ(to_string(TraceCategory::kDetector), "detector");
}

}  // namespace
}  // namespace ptest::sim
