// Fleet suite: the extracted issue/ack/retry ledger, the JSON wire
// frames, both transports, and the keystone invariant of the whole
// module — a 2-shard fleet at total budget B is bit-identical (arm
// stats, failure signatures, work counters, coverage, merged corpus) to
// a single-process run at budget B under the same seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <fstream>
#include <memory>

#include "ptest/core/campaign.hpp"
#include "ptest/fleet/coordinator.hpp"
#include "ptest/fleet/ledger.hpp"
#include "ptest/fleet/socket_transport.hpp"
#include "ptest/fleet/transport.hpp"
#include "ptest/fleet/wire.hpp"
#include "ptest/fleet/worker.hpp"
#include "ptest/support/metrics.hpp"

namespace ptest::fleet {
namespace {

// ---------------------------------------------------------------------------
// ledger.hpp

TEST(OutstandingTable, SeqsAreOnlyBurnedByRecordedIssues) {
  OutstandingTable<int> table;
  EXPECT_EQ(table.next_seq(), 1u);
  EXPECT_EQ(table.next_seq(), 1u);  // peeking does not advance
  EXPECT_EQ(table.record_issue(10), 1u);
  EXPECT_EQ(table.next_seq(), 2u);
  EXPECT_EQ(table.record_issue(20), 2u);
  EXPECT_EQ(table.outstanding().size(), 2u);
}

TEST(OutstandingTable, AcknowledgeReturnsThePayloadOnce) {
  OutstandingTable<int> table;
  const std::uint32_t seq = table.record_issue(42);
  const auto first = table.acknowledge(seq);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, 42);
  // Duplicate and never-issued acks resolve to nullopt, not damage.
  EXPECT_FALSE(table.acknowledge(seq).has_value());
  EXPECT_FALSE(table.acknowledge(999).has_value());
  EXPECT_TRUE(table.empty());
}

TEST(RetryQueue, ChargesAttemptsPerKeyAndGivesUpPastBudget) {
  RetryQueue<int, int> retries({.max_attempts = 2, .delay = 5});
  EXPECT_TRUE(retries.schedule(7, 100, 0));
  EXPECT_TRUE(retries.schedule(7, 100, 0));
  EXPECT_FALSE(retries.schedule(7, 100, 0));  // third strike
  // A different key has its own budget.
  EXPECT_TRUE(retries.schedule(8, 200, 0));
}

TEST(RetryQueue, NotBeforeHonorsTheDelayAndRequeueKeepsAttempts) {
  RetryQueue<int, int> retries({.max_attempts = 16, .delay = 10});
  ASSERT_TRUE(retries.schedule(1, 42, 100));
  const auto* front = retries.front();
  ASSERT_NE(front, nullptr);
  EXPECT_EQ(front->not_before, 110u);
  EXPECT_EQ(front->attempts, 1u);
  auto record = retries.take_front();
  ASSERT_TRUE(record.has_value());
  EXPECT_TRUE(retries.empty());
  retries.requeue_front(std::move(*record));  // backpressure path
  ASSERT_NE(retries.front(), nullptr);
  EXPECT_EQ(retries.front()->attempts, 1u);  // attempt count intact
}

TEST(RetryQueue, TakeFrontOnAnEmptyQueueIsNulloptNotUB) {
  RetryQueue<int, int> retries({.max_attempts = 2, .delay = 0});
  EXPECT_FALSE(retries.take_front().has_value());
  ASSERT_TRUE(retries.schedule(1, 5, 0));
  EXPECT_TRUE(retries.take_front().has_value());
  EXPECT_FALSE(retries.take_front().has_value());  // drained again
}

TEST(RetryQueue, ForgiveResetsTheBudgetForAKey) {
  RetryQueue<int, int> retries({.max_attempts = 1, .delay = 0});
  EXPECT_TRUE(retries.schedule(3, 0, 0));
  EXPECT_FALSE(retries.schedule(3, 0, 0));
  retries.forgive(3);
  EXPECT_TRUE(retries.schedule(3, 0, 0));
}

// ---------------------------------------------------------------------------
// wire.hpp

TEST(Wire, AssignFrameRoundTripsWithAndWithoutSeed) {
  AssignFrame frame;
  frame.seq = 9;
  frame.slice = {.index = 1, .run_base = 12, .sessions = 12};
  frame.scenario = "philosophers-deadlock";
  frame.jobs = 4;
  for (const auto seed : {std::optional<std::uint64_t>{},
                          std::optional<std::uint64_t>{0xdeadbeefcafe}}) {
    frame.seed = seed;
    const auto decoded = decode(encode(frame));
    ASSERT_TRUE(decoded.ok()) << decoded.error();
    ASSERT_EQ(decoded.value().kind, FrameKind::kAssign);
    const AssignFrame& got = decoded.value().assign;
    EXPECT_EQ(got.seq, frame.seq);
    EXPECT_EQ(got.slice.index, frame.slice.index);
    EXPECT_EQ(got.slice.run_base, frame.slice.run_base);
    EXPECT_EQ(got.slice.sessions, frame.slice.sessions);
    EXPECT_EQ(got.scenario, frame.scenario);
    EXPECT_EQ(got.seed, frame.seed);
    EXPECT_EQ(got.jobs, frame.jobs);
  }
}

TEST(Wire, ShutdownRoundTrips) {
  const auto decoded = decode(encode_shutdown());
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(decoded.value().kind, FrameKind::kShutdown);
}

TEST(Wire, CampaignEndRoundTripsAndIsDistinctFromShutdown) {
  const auto decoded = decode(encode_campaign_end());
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(decoded.value().kind, FrameKind::kCampaignEnd);
  EXPECT_NE(encode_campaign_end(), encode_shutdown());
}

TEST(Wire, ResultFrameCarriesARealCampaignResult) {
  // Run a genuine slice so the frame carries failures, coverage and
  // metrics worth round-tripping, then check the deterministic surface
  // survives encode/decode exactly.
  const core::ShardSlice slice{.index = 0, .run_base = 0, .sessions = 8};
  auto ran = core::Campaign::run_scenario_slice("philosophers-deadlock", slice);
  ASSERT_TRUE(ran.ok()) << ran.error();
  const core::CampaignResult& result = ran.value();
  ASSERT_FALSE(result.distinct_failures.empty());
  ASSERT_FALSE(result.arm_coverage_state.empty());

  auto corpus = shard_corpus("philosophers-deadlock", slice, result);
  ASSERT_TRUE(corpus.ok()) << corpus.error();

  ResultFrame frame;
  frame.seq = 3;
  frame.shard = 0;
  frame.node = "daemon-42";
  frame.result = result;
  frame.corpus_json = corpus.value().to_json();
  frame.wall_ns = 12345;
  const auto decoded = decode(encode(frame));
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  ASSERT_EQ(decoded.value().kind, FrameKind::kResult);
  const ResultFrame& got = decoded.value().result;
  EXPECT_EQ(got.seq, 3u);
  EXPECT_EQ(got.shard, 0u);
  EXPECT_EQ(got.node, "daemon-42");
  EXPECT_TRUE(got.error.empty());
  EXPECT_EQ(got.wall_ns, 12345u);
  EXPECT_EQ(got.corpus_json, frame.corpus_json);

  const core::CampaignResult& r = got.result;
  EXPECT_EQ(r.total_runs, result.total_runs);
  EXPECT_EQ(r.total_detections, result.total_detections);
  ASSERT_EQ(r.arm_stats.size(), result.arm_stats.size());
  EXPECT_EQ(r.arm_stats[0].runs, result.arm_stats[0].runs);
  EXPECT_EQ(r.arm_stats[0].detections, result.arm_stats[0].detections);
  ASSERT_EQ(r.distinct_failures.size(), result.distinct_failures.size());
  for (auto it = r.distinct_failures.begin(),
            ref = result.distinct_failures.begin();
       it != r.distinct_failures.end(); ++it, ++ref) {
    EXPECT_EQ(it->first, ref->first);
    EXPECT_EQ(it->second.signature(), ref->second.signature());
    EXPECT_EQ(it->second.kind, ref->second.kind);
    EXPECT_EQ(it->second.seed, ref->second.seed);
    EXPECT_EQ(it->second.merged.elements, ref->second.merged.elements);
  }
  ASSERT_EQ(r.arm_coverage_state.size(), 1u);
  EXPECT_EQ(r.arm_coverage_state[0], result.arm_coverage_state[0]);
  const support::MetricsSnapshot& m = r.metrics;
  EXPECT_EQ(m.sessions, result.metrics.sessions);
  EXPECT_EQ(m.patterns_generated, result.metrics.patterns_generated);
  EXPECT_EQ(m.dedup_accepted, result.metrics.dedup_accepted);
  EXPECT_EQ(m.dedup_rejected, result.metrics.dedup_rejected);
  EXPECT_EQ(m.ticks, result.metrics.ticks);
  EXPECT_EQ(m.plan_compiles, result.metrics.plan_compiles);
  EXPECT_EQ(m.plan_cache_hits, result.metrics.plan_cache_hits);
  EXPECT_EQ(m.pfa_transitions_covered, result.metrics.pfa_transitions_covered);
}

TEST(Wire, DecodeRejectsGarbageAndWrongVersions) {
  EXPECT_FALSE(decode("").ok());
  EXPECT_FALSE(decode("not json").ok());
  EXPECT_FALSE(decode("{}").ok());
  EXPECT_FALSE(decode(R"({"wire_version": 999, "kind": "shutdown"})").ok());
  // v1 frames (no campaign-end, no result node) are a different
  // protocol, not a degraded peer.
  EXPECT_FALSE(decode(R"({"wire_version": 1, "kind": "shutdown"})").ok());
  EXPECT_FALSE(decode(R"({"wire_version": 2, "kind": "mystery"})").ok());
  // An assign without a scenario is malformed, not defaulted.
  EXPECT_FALSE(decode(R"({"wire_version": 2, "kind": "assign"})").ok());
}

// ---------------------------------------------------------------------------
// transports

TEST(InProcessQueue, DeliversEachFrameToExactlyOneEndAndBackpressures) {
  InProcessQueue queue(2);
  Transport& coordinator = queue.coordinator_endpoint();
  Transport& worker = queue.worker_endpoint();
  EXPECT_FALSE(worker.receive().has_value());
  ASSERT_TRUE(coordinator.send("a"));
  ASSERT_TRUE(coordinator.send("b"));
  EXPECT_FALSE(coordinator.send("c"));  // capacity 2: backpressure
  EXPECT_EQ(worker.receive().value_or(""), "a");
  ASSERT_TRUE(coordinator.send("c"));  // freed a slot
  EXPECT_EQ(worker.receive().value_or(""), "b");
  EXPECT_EQ(worker.receive().value_or(""), "c");
  EXPECT_FALSE(worker.receive().has_value());
  // The reverse direction is its own queue.
  ASSERT_TRUE(worker.send("r"));
  EXPECT_FALSE(worker.receive().has_value());
  EXPECT_EQ(coordinator.receive().value_or(""), "r");
}

TEST(FileQueueTransport, RoundTripsFramesThroughTheSpool) {
  const std::filesystem::path root =
      std::filesystem::path(::testing::TempDir()) / "fleet_spool_roundtrip";
  std::filesystem::remove_all(root);
  FileQueueTransport coordinator(root, FileQueueTransport::Role::kCoordinator,
                                 "coord");
  FileQueueTransport worker(root, FileQueueTransport::Role::kWorker, "w0");
  EXPECT_FALSE(worker.receive().has_value());
  ASSERT_TRUE(coordinator.send("first"));
  ASSERT_TRUE(coordinator.send("second"));
  EXPECT_EQ(worker.receive().value_or(""), "first");  // counter order
  EXPECT_EQ(worker.receive().value_or(""), "second");
  EXPECT_FALSE(worker.receive().has_value());
  ASSERT_TRUE(worker.send("reply"));
  EXPECT_EQ(coordinator.receive().value_or(""), "reply");
  std::filesystem::remove_all(root);
}

TEST(FileQueueTransport, CompetingWorkersClaimEachFrameOnce) {
  const std::filesystem::path root =
      std::filesystem::path(::testing::TempDir()) / "fleet_spool_claims";
  std::filesystem::remove_all(root);
  FileQueueTransport coordinator(root, FileQueueTransport::Role::kCoordinator,
                                 "coord");
  FileQueueTransport w0(root, FileQueueTransport::Role::kWorker, "w0");
  FileQueueTransport w1(root, FileQueueTransport::Role::kWorker, "w1");
  const int frames = 20;
  for (int i = 0; i < frames; ++i) {
    ASSERT_TRUE(coordinator.send("frame-" + std::to_string(i)));
  }
  std::vector<std::string> claimed;
  while (true) {
    auto a = w0.receive();
    auto b = w1.receive();
    if (a) claimed.push_back(*a);
    if (b) claimed.push_back(*b);
    if (!a && !b) break;
  }
  std::sort(claimed.begin(), claimed.end());
  EXPECT_EQ(claimed.size(), static_cast<std::size_t>(frames));
  EXPECT_EQ(std::unique(claimed.begin(), claimed.end()), claimed.end());
  std::filesystem::remove_all(root);
}

TEST(FileQueueTransport, RecoversItsOwnStaleTmpFilesOnConstruction) {
  namespace fs = std::filesystem;
  const fs::path root =
      fs::path(::testing::TempDir()) / "fleet_spool_recovery";
  fs::remove_all(root);
  fs::create_directories(root / "work");
  fs::create_directories(root / "results");
  fs::create_directories(root / "tmp");
  // A previous "w0" process crashed holding a claimed work frame...
  {
    std::ofstream out(root / "tmp" / "claim-w0-00000000000000000000");
    out << "frame-that-must-not-be-lost";
  }
  // ...and a previous "coord" process crashed between writing a frame
  // and its atomic rename-publish.
  {
    std::ofstream out(root / "tmp" / "00000000000000000007-coord");
    out << "half-writ";
  }
  FileQueueTransport worker(root, FileQueueTransport::Role::kWorker, "w0");
  // The stale claim went back to the inbox and delivers normally.
  EXPECT_EQ(worker.receive().value_or(""), "frame-that-must-not-be-lost");
  // The other node's husk was not w0's to touch...
  EXPECT_TRUE(fs::exists(root / "tmp" / "00000000000000000007-coord"));
  FileQueueTransport coordinator(root, FileQueueTransport::Role::kCoordinator,
                                 "coord");
  // ...but the restarted publisher deletes it: that send never returned
  // true, so the frame was never logically sent.
  EXPECT_FALSE(fs::exists(root / "tmp" / "00000000000000000007-coord"));
  EXPECT_FALSE(worker.receive().has_value());
  fs::remove_all(root);
}

TEST(FileQueueTransport, InboxScanSkipsUnstatableEntriesNotTheWholePoll) {
  namespace fs = std::filesystem;
  const fs::path root =
      fs::path(::testing::TempDir()) / "fleet_spool_unstatable";
  fs::remove_all(root);
  FileQueueTransport coordinator(root, FileQueueTransport::Role::kCoordinator,
                                 "coord");
  FileQueueTransport worker(root, FileQueueTransport::Role::kWorker, "w0");
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(coordinator.send("frame-" + std::to_string(i)));
  }
  // A self-referencing symlink in the inbox stats with ELOOP.  The scan
  // must skip the one bad entry, not abort and postpone every pending
  // frame behind it forever.
  fs::create_symlink("0-loop", root / "work" / "0-loop");
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(worker.receive().value_or(""), "frame-" + std::to_string(i));
  }
  EXPECT_FALSE(worker.receive().has_value());
  fs::remove_all(root);
}

// ---------------------------------------------------------------------------
// the fleet invariant

/// Full bit-identity check between a fleet result and the serial
/// reference: arm stats, failure signatures, every deterministic work
/// counter, coverage state, and the merged corpus document.
void expect_fleet_identical(const FleetResult& fleet,
                            const core::CampaignResult& serial,
                            const std::string& scenario,
                            std::size_t budget) {
  const core::CampaignResult& merged = fleet.result;
  EXPECT_EQ(merged.total_runs, serial.total_runs);
  EXPECT_EQ(merged.total_detections, serial.total_detections);
  ASSERT_EQ(merged.arm_stats.size(), serial.arm_stats.size());
  EXPECT_EQ(merged.arm_stats[0].runs, serial.arm_stats[0].runs);
  EXPECT_EQ(merged.arm_stats[0].detections, serial.arm_stats[0].detections);

  ASSERT_EQ(merged.distinct_failures.size(), serial.distinct_failures.size());
  for (auto it = merged.distinct_failures.begin(),
            ref = serial.distinct_failures.begin();
       it != merged.distinct_failures.end(); ++it, ++ref) {
    EXPECT_EQ(it->first, ref->first);
    EXPECT_EQ(it->second.signature(), ref->second.signature());
    EXPECT_EQ(it->second.seed, ref->second.seed);
    EXPECT_EQ(it->second.detected_at, ref->second.detected_at);
    EXPECT_EQ(it->second.merged.elements, ref->second.merged.elements);
  }

  const support::MetricsSnapshot& m = merged.metrics;
  const support::MetricsSnapshot& s = serial.metrics;
  EXPECT_EQ(m.sessions, s.sessions);
  EXPECT_EQ(m.patterns_generated, s.patterns_generated);
  EXPECT_EQ(m.dedup_accepted, s.dedup_accepted);
  EXPECT_EQ(m.dedup_rejected, s.dedup_rejected);
  EXPECT_EQ(m.ticks, s.ticks);
  EXPECT_EQ(m.plan_compiles, s.plan_compiles);
  EXPECT_EQ(m.plan_cache_hits, s.plan_cache_hits);
  EXPECT_EQ(m.pfa_states, s.pfa_states);
  EXPECT_EQ(m.pfa_states_covered, s.pfa_states_covered);
  EXPECT_EQ(m.pfa_transitions, s.pfa_transitions);
  EXPECT_EQ(m.pfa_transitions_covered, s.pfa_transitions_covered);
  EXPECT_EQ(m.pfa_ngrams, s.pfa_ngrams);
  ASSERT_EQ(merged.arm_coverage_state.size(),
            serial.arm_coverage_state.size());
  if (!merged.arm_coverage_state.empty()) {
    EXPECT_EQ(merged.arm_coverage_state[0], serial.arm_coverage_state[0]);
  }

  // The merged corpus must be byte-for-byte the corpus the serial run
  // exports for its whole budget as one slice.
  const core::ShardSlice whole{.index = 0, .run_base = 0, .sessions = budget};
  auto reference = shard_corpus(scenario, whole, serial);
  ASSERT_TRUE(reference.ok()) << reference.error();
  EXPECT_EQ(fleet.corpus.to_json(), reference.value().to_json());
  ASSERT_EQ(fleet.corpus.spans().size(), 1u);  // shards coalesced
  EXPECT_EQ(fleet.corpus.spans()[0].sessions, budget);
}

TEST(Fleet, PlanShardsCoverTheBudgetContiguously) {
  const auto slices = core::Campaign::plan_shards(25, 4);
  ASSERT_EQ(slices.size(), 4u);
  std::size_t next = 0, total = 0;
  for (std::size_t i = 0; i < slices.size(); ++i) {
    EXPECT_EQ(slices[i].index, i);
    EXPECT_EQ(slices[i].run_base, next);
    next += slices[i].sessions;
    total += slices[i].sessions;
  }
  EXPECT_EQ(total, 25u);
  // Degenerate shapes: more shards than budget, and zero shards.
  EXPECT_EQ(core::Campaign::plan_shards(2, 8).size(), 2u);
  EXPECT_EQ(core::Campaign::plan_shards(5, 0).size(), 1u);
}

TEST(Fleet, InProcessTwoShardFleetIsBitIdenticalToSerial) {
  const std::string scenario = "philosophers-deadlock";
  const std::size_t budget = 24;
  core::CampaignOptions serial_options;
  serial_options.budget = budget;
  auto serial = core::Campaign::run_scenario(scenario, serial_options);
  ASSERT_TRUE(serial.ok()) << serial.error();
  ASSERT_GT(serial.value().total_detections, 0u);  // a vacuous pass hides bugs

  CoordinatorOptions options;
  options.shards = 2;
  options.budget = budget;
  auto fleet = run_local_fleet(scenario, options);
  ASSERT_TRUE(fleet.ok()) << fleet.error();
  expect_fleet_identical(fleet.value(), serial.value(), scenario, budget);
  EXPECT_EQ(fleet.value().result.metrics.fleet_shards, 2u);
  EXPECT_EQ(fleet.value().result.metrics.fleet_retries, 0u);
}

TEST(Fleet, ShardCountAndWorkerJobsDoNotChangeTheResult) {
  // 3 shards over an uneven budget, workers running jobs=2 internally:
  // still the serial answer.  This stacks both split axes (shard slices
  // across the fleet, worker threads within a shard).
  const std::string scenario = "lost-update";
  const std::size_t budget = 18;
  core::CampaignOptions serial_options;
  serial_options.budget = budget;
  auto serial = core::Campaign::run_scenario(scenario, serial_options);
  ASSERT_TRUE(serial.ok()) << serial.error();

  CoordinatorOptions options;
  options.shards = 3;
  options.jobs = 2;
  options.budget = budget;
  auto fleet = run_local_fleet(scenario, options);
  ASSERT_TRUE(fleet.ok()) << fleet.error();
  expect_fleet_identical(fleet.value(), serial.value(), scenario, budget);
  EXPECT_EQ(fleet.value().result.metrics.fleet_shards, 3u);
}

TEST(Fleet, FileQueueFleetMatchesSerialToo) {
  const std::string scenario = "philosophers-deadlock";
  const std::size_t budget = 16;
  core::CampaignOptions serial_options;
  serial_options.budget = budget;
  auto serial = core::Campaign::run_scenario(scenario, serial_options);
  ASSERT_TRUE(serial.ok()) << serial.error();

  const std::filesystem::path root =
      std::filesystem::path(::testing::TempDir()) / "fleet_spool_campaign";
  std::filesystem::remove_all(root);

  CoordinatorOptions options;
  options.shards = 2;
  options.budget = budget;
  options.idle_sleep_us = 200;
  options.poll_limit = 1'000'000;  // bound a hang well under the timeout
  WorkerOptions worker_options;
  worker_options.idle_sleep_us = 200;
  worker_options.poll_limit = 1'000'000;

  std::vector<std::thread> workers;
  for (const char* node : {"w0", "w1"}) {
    workers.emplace_back([&root, worker_options, node] {
      FileQueueTransport transport(root, FileQueueTransport::Role::kWorker,
                                   node);
      auto served = Worker(worker_options).serve(transport);
      EXPECT_TRUE(served.ok()) << served.error();
    });
  }
  FileQueueTransport transport(root, FileQueueTransport::Role::kCoordinator,
                               "coord");
  auto fleet = Coordinator(scenario, options).run(transport);
  for (std::thread& thread : workers) thread.join();
  ASSERT_TRUE(fleet.ok()) << fleet.error();
  expect_fleet_identical(fleet.value(), serial.value(), scenario, budget);
  std::filesystem::remove_all(root);
}

TEST(Fleet, CoordinatorRejectsUnknownScenarios) {
  InProcessQueue queue;
  auto result = Coordinator("no-such-scenario").run(queue.coordinator_endpoint());
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().find("unknown scenario"), std::string::npos);
}

TEST(Fleet, CoordinatorRetriesErrorFramesUnderTheBudget) {
  // Hand-drive the worker side: bounce the first assignment with an
  // error frame, then serve the retries honestly with a real worker.
  InProcessQueue queue;
  Transport& worker_end = queue.worker_endpoint();

  CoordinatorOptions options;
  options.shards = 2;
  options.budget = 8;
  options.retry.delay = 0;  // due immediately
  Coordinator coordinator("philosophers-deadlock", options);

  std::thread worker_thread([&worker_end] {
    // Bounce exactly one assignment...
    std::optional<std::string> text;
    while (!(text = worker_end.receive())) std::this_thread::yield();
    auto frame = decode(*text);
    ASSERT_TRUE(frame.ok()) << frame.error();
    ASSERT_EQ(frame.value().kind, FrameKind::kAssign);
    ResultFrame bounce;
    bounce.seq = frame.value().assign.seq;
    bounce.shard = frame.value().assign.slice.index;
    bounce.error = "transient spool hiccup";
    while (!worker_end.send(encode(bounce))) std::this_thread::yield();
    // ...then serve the rest (including the re-issue) for real.
    auto served = Worker().serve(worker_end);
    EXPECT_TRUE(served.ok()) << served.error();
  });

  auto fleet = coordinator.run(queue.coordinator_endpoint());
  worker_thread.join();
  ASSERT_TRUE(fleet.ok()) << fleet.error();
  EXPECT_EQ(fleet.value().result.metrics.fleet_retries, 1u);

  // And the retried fleet still matches the serial run.
  core::CampaignOptions serial_options;
  serial_options.budget = 8;
  auto serial =
      core::Campaign::run_scenario("philosophers-deadlock", serial_options);
  ASSERT_TRUE(serial.ok()) << serial.error();
  expect_fleet_identical(fleet.value(), serial.value(),
                         "philosophers-deadlock", 8);
}

TEST(Fleet, SocketTwoWorkerFleetIsBitIdenticalToSerial) {
  const std::string scenario = "philosophers-deadlock";
  const std::size_t budget = 16;
  core::CampaignOptions serial_options;
  serial_options.budget = budget;
  auto serial = core::Campaign::run_scenario(scenario, serial_options);
  ASSERT_TRUE(serial.ok()) << serial.error();

  // Two TCP worker daemons on kernel-assigned localhost ports; the
  // coordinator dials both and drains with shutdown so they exit.
  auto listener0 = std::make_unique<SocketTransport>(SocketTransport::Listen{0});
  auto listener1 = std::make_unique<SocketTransport>(SocketTransport::Listen{0});
  WorkerOptions worker_options;
  worker_options.idle_sleep_us = 200;
  worker_options.poll_limit = 1'000'000;
  std::vector<std::thread> workers;
  int node = 0;
  for (SocketTransport* transport : {listener0.get(), listener1.get()}) {
    WorkerOptions options = worker_options;
    options.node = "sock-w" + std::to_string(node++);
    workers.emplace_back([transport, options] {
      auto served = Worker(options).serve(*transport);
      EXPECT_TRUE(served.ok()) << served.error();
    });
  }

  CoordinatorOptions options;
  options.shards = 2;
  options.budget = budget;
  options.idle_sleep_us = 200;
  options.poll_limit = 1'000'000;
  options.shard_deadline = 500'000;  // armed but far beyond shard wall time
  SocketTransport transport(SocketTransport::Connect{
      {"127.0.0.1:" + std::to_string(listener0->port()),
       "127.0.0.1:" + std::to_string(listener1->port())}});
  auto fleet = Coordinator(scenario, options).run(transport);
  for (std::thread& thread : workers) thread.join();
  ASSERT_TRUE(fleet.ok()) << fleet.error();
  expect_fleet_identical(fleet.value(), serial.value(), scenario, budget);
  EXPECT_EQ(fleet.value().result.metrics.fleet_retries, 0u);
}

TEST(Fleet, PersistentDaemonServesTwoCampaignsThenHaltsOnShutdown) {
  const std::string scenario = "lost-update";
  const std::size_t budget = 12;
  auto listener = std::make_unique<SocketTransport>(SocketTransport::Listen{0});
  const std::string endpoint =
      "127.0.0.1:" + std::to_string(listener->port());

  WorkerOptions worker_options;
  worker_options.idle_sleep_us = 200;
  worker_options.poll_limit = 5'000'000;
  worker_options.persistent = true;
  worker_options.node = "daemon-0";
  std::thread daemon([&listener, worker_options] {
    auto served = Worker(worker_options).serve(*listener);
    ASSERT_TRUE(served.ok()) << served.error();
    // Two campaigns x two shards, all through one daemon process.
    EXPECT_EQ(served.value(), 4u);
  });

  CoordinatorOptions options;
  options.shards = 2;
  options.budget = budget;
  options.idle_sleep_us = 200;
  options.poll_limit = 1'000'000;
  options.drain = DrainMode::kCampaignEnd;  // leave the daemon running
  std::vector<FleetResult> campaigns;
  for (int campaign = 0; campaign < 2; ++campaign) {
    // Each campaign is its own coordinator process in miniature: fresh
    // connection, full protocol, campaign-end, disconnect.
    SocketTransport transport(SocketTransport::Connect{{endpoint}});
    auto fleet = Coordinator(scenario, options).run(transport);
    ASSERT_TRUE(fleet.ok()) << fleet.error();
    campaigns.push_back(std::move(fleet.value()));
  }
  // Same daemon, same inputs: identical campaigns.
  EXPECT_EQ(campaigns[0].corpus.to_json(), campaigns[1].corpus.to_json());
  EXPECT_EQ(campaigns[0].result.total_detections,
            campaigns[1].result.total_detections);

  // --halt-fleet in miniature: an explicit shutdown broadcast is what
  // ends the daemon, not any campaign boundary.
  SocketTransport halt(SocketTransport::Connect{{endpoint}});
  while (!halt.send(encode_shutdown())) std::this_thread::yield();
  daemon.join();
}

TEST(Fleet, ShardDeadlineReissuesWorkLostWithADeadWorker) {
  // The first assignment is claimed and never answered — a worker died
  // mid-shard.  The deadline must reclaim it through the retry queue
  // and a healthy worker must finish the campaign, still bit-identical.
  InProcessQueue queue;
  Transport& worker_end = queue.worker_endpoint();

  CoordinatorOptions options;
  options.shards = 2;
  options.budget = 8;
  options.retry.delay = 0;
  // Busy-spin polls: long enough that a shard a *live* worker is
  // computing is very unlikely to be reclaimed, short enough that the
  // swallowed shard's reclaim lands in well under a second.
  options.shard_deadline = 2'000'000;
  Coordinator coordinator("philosophers-deadlock", options);

  std::thread worker_thread([&worker_end] {
    std::optional<std::string> text;
    while (!(text = worker_end.receive())) std::this_thread::yield();
    auto frame = decode(*text);
    ASSERT_TRUE(frame.ok()) << frame.error();
    ASSERT_EQ(frame.value().kind, FrameKind::kAssign);
    // Swallow it (the dead worker), then serve honestly.
    auto served = Worker().serve(worker_end);
    EXPECT_TRUE(served.ok()) << served.error();
  });

  auto fleet = coordinator.run(queue.coordinator_endpoint());
  worker_thread.join();
  ASSERT_TRUE(fleet.ok()) << fleet.error();
  // At least the swallowed shard was reclaimed (a slow live shard may
  // legitimately add more); duplicates are absorbed either way.
  EXPECT_GE(fleet.value().result.metrics.fleet_retries, 1u);

  core::CampaignOptions serial_options;
  serial_options.budget = 8;
  auto serial =
      core::Campaign::run_scenario("philosophers-deadlock", serial_options);
  ASSERT_TRUE(serial.ok()) << serial.error();
  expect_fleet_identical(fleet.value(), serial.value(),
                         "philosophers-deadlock", 8);
}

/// Test double for duplicate delivery: every frame the worker sends
/// arrives twice at the coordinator (an at-least-once transport, or a
/// straggler racing a deadline re-issue).
class DuplicatingTransport final : public Transport {
 public:
  explicit DuplicatingTransport(Transport& inner) : inner_(inner) {}
  [[nodiscard]] bool send(const std::string& frame) override {
    if (!inner_.send(frame)) return false;
    (void)inner_.send(frame);  // best-effort duplicate
    return true;
  }
  [[nodiscard]] std::optional<std::string> receive() override {
    return inner_.receive();
  }

 private:
  Transport& inner_;
};

TEST(Fleet, DuplicateResultDeliveryIsAbsorbedFirstWins) {
  InProcessQueue queue;
  DuplicatingTransport duplicating(queue.worker_endpoint());

  CoordinatorOptions options;
  options.shards = 2;
  options.budget = 8;
  Coordinator coordinator("philosophers-deadlock", options);
  std::thread worker_thread([&duplicating] {
    auto served = Worker().serve(duplicating);
    EXPECT_TRUE(served.ok()) << served.error();
  });
  auto fleet = coordinator.run(queue.coordinator_endpoint());
  worker_thread.join();
  ASSERT_TRUE(fleet.ok()) << fleet.error();
  // The duplicates dropped as stale seqs: nothing retried, nothing
  // double-merged.
  EXPECT_EQ(fleet.value().result.metrics.fleet_retries, 0u);

  core::CampaignOptions serial_options;
  serial_options.budget = 8;
  auto serial =
      core::Campaign::run_scenario("philosophers-deadlock", serial_options);
  ASSERT_TRUE(serial.ok()) << serial.error();
  expect_fleet_identical(fleet.value(), serial.value(),
                         "philosophers-deadlock", 8);
}

/// Drains `endpoint` and returns how many shutdown frames it held.
int count_shutdown_frames(Transport& endpoint) {
  int shutdowns = 0;
  while (auto text = endpoint.receive()) {
    auto frame = decode(*text);
    if (frame.ok() && frame.value().kind == FrameKind::kShutdown) {
      ++shutdowns;
    }
  }
  return shutdowns;
}

TEST(Fleet, PollLimitErrorStillBroadcastsTheDrain) {
  // Nobody serves: the run fails on its poll limit — and the workers
  // (who may simply be slow, not dead) must still find shutdown frames
  // waiting, not spin to their own limits.
  InProcessQueue queue;
  CoordinatorOptions options;
  options.shards = 2;
  options.budget = 8;
  options.poll_limit = 10;
  auto result =
      Coordinator("philosophers-deadlock", options).run(
          queue.coordinator_endpoint());
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().find("poll limit"), std::string::npos);
  EXPECT_GE(count_shutdown_frames(queue.worker_endpoint()), 2);
}

TEST(Fleet, DecodeFailureStillBroadcastsTheDrain) {
  InProcessQueue queue;
  Transport& worker_end = queue.worker_endpoint();
  ASSERT_TRUE(worker_end.send("this is not a frame"));
  CoordinatorOptions options;
  options.shards = 2;
  options.budget = 8;
  auto result =
      Coordinator("philosophers-deadlock", options).run(
          queue.coordinator_endpoint());
  ASSERT_FALSE(result.ok());
  EXPECT_GE(count_shutdown_frames(worker_end), 2);
}

TEST(Fleet, MultiArmCampaignsRefuseToShard) {
  core::PtestConfig config;
  std::vector<core::CampaignArm> arms(2);
  arms[0].name = "a";
  arms[1].name = "b";
  core::Campaign campaign(config, arms, {});
  EXPECT_THROW((void)campaign.run_slice({.index = 0, .run_base = 0,
                                         .sessions = 4}),
               std::invalid_argument);
}

TEST(Fleet, MetricsSnapshotDerivesShardImbalance) {
  support::MetricsSnapshot metrics;
  EXPECT_EQ(metrics.fleet_shard_imbalance(), 0.0);
  metrics.fleet_shards = 2;
  metrics.fleet_shard_wall_max_ns = 300;
  metrics.fleet_shard_wall_min_ns = 100;
  EXPECT_DOUBLE_EQ(metrics.fleet_shard_imbalance(), 3.0);
  // A genuinely instantaneous fastest shard is a 0ns minimum, not an
  // unset sentinel: the ratio stays finite (min floored at 1ns) instead
  // of collapsing to the "no fleet ran" 0.
  metrics.fleet_shard_wall_min_ns = 0;
  EXPECT_DOUBLE_EQ(metrics.fleet_shard_imbalance(), 300.0);
}

}  // namespace
}  // namespace ptest::fleet
