// SocketTransport suite: newline framing over real TCP sockets on
// localhost — round trips, partial-frame reassembly, the backpressure
// mapping, and the disconnect rules (complete buffered lines still
// deliver, an unterminated tail never does).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>

#include "ptest/fleet/socket_transport.hpp"

namespace ptest::fleet {
namespace {

/// Polls `transport.receive()` until a frame arrives or ~5s elapse
/// (localhost delivery is microseconds; the slack is for loaded CI).
std::optional<std::string> receive_within(SocketTransport& transport) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    if (auto frame = transport.receive()) return frame;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return std::nullopt;
}

/// A raw blocking client socket speaking to `port`, for injecting
/// byte sequences the transport itself would never produce.
class RawClient {
 public:
  explicit RawClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw std::runtime_error("raw socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
      ::close(fd_);
      throw std::runtime_error("raw connect() failed");
    }
  }
  ~RawClient() { close(); }

  void write(const std::string& bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t wrote =
          ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      ASSERT_GT(wrote, 0);
      sent += static_cast<std::size_t>(wrote);
    }
  }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
};

TEST(SocketTransport, RoundTripsFramesBothWaysInOrder) {
  SocketTransport listener(SocketTransport::Listen{0});
  ASSERT_NE(listener.port(), 0);
  SocketTransport dialer(
      SocketTransport::Connect{{"127.0.0.1:" + std::to_string(
                                    listener.port())}});
  ASSERT_TRUE(dialer.send("first"));
  ASSERT_TRUE(dialer.send("second"));
  EXPECT_EQ(receive_within(listener).value_or(""), "first");
  EXPECT_EQ(receive_within(listener).value_or(""), "second");
  EXPECT_FALSE(listener.receive().has_value());
  // And back: the accepted connection is bidirectional.
  ASSERT_TRUE(listener.send("reply"));
  EXPECT_EQ(receive_within(dialer).value_or(""), "reply");
}

TEST(SocketTransport, ReassemblesFramesLargerThanOneRead) {
  // Much larger than the transport's 64KB read chunk, so the frame is
  // guaranteed to arrive in pieces and cross the reassembly buffer.
  SocketTransport listener(SocketTransport::Listen{0});
  SocketTransport dialer(
      SocketTransport::Connect{{"127.0.0.1:" + std::to_string(
                                    listener.port())}});
  std::string big(512 * 1024, 'x');
  big[0] = '{';
  big[big.size() - 1] = '}';
  ASSERT_TRUE(dialer.send(big));
  EXPECT_EQ(receive_within(listener).value_or(""), big);
}

TEST(SocketTransport, PartialFrameIsBufferedNotDelivered) {
  SocketTransport listener(SocketTransport::Listen{0});
  RawClient client(listener.port());
  client.write("half a frame with no terminator");
  // The bytes are on the wire, but no newline means no frame: polls
  // spanning well past the delivery latency must all come up empty.
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(listener.receive().has_value());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(listener.peers(), 1u);  // buffered, connection alive
  // The terminator completes it.
  client.write(" ... now finished\n");
  EXPECT_EQ(receive_within(listener).value_or(""),
            "half a frame with no terminator ... now finished");
}

TEST(SocketTransport, DisconnectDeliversCompleteLinesAndDropsTheTail) {
  SocketTransport listener(SocketTransport::Listen{0});
  {
    RawClient client(listener.port());
    client.write("alpha\nbeta\ntruncated-tail-without-newline");
    // Give the kernel a moment to surface the bytes + EOF together.
    while (listener.peers() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }  // client closes: EOF after three writes, the last unterminated
  EXPECT_EQ(receive_within(listener).value_or(""), "alpha");
  EXPECT_EQ(receive_within(listener).value_or(""), "beta");
  // The tail was never a frame; it must not surface as one, and the
  // dead connection reaps once drained.
  EXPECT_FALSE(listener.receive().has_value());
  EXPECT_EQ(listener.peers(), 0u);
}

TEST(SocketTransport, SendBackpressuresWithNoPeersAndRecovers) {
  SocketTransport listener(SocketTransport::Listen{0});
  EXPECT_EQ(listener.peers(), 0u);
  EXPECT_FALSE(listener.send("nobody home"));  // no peer: backpressure
  SocketTransport dialer(
      SocketTransport::Connect{{"127.0.0.1:" + std::to_string(
                                    listener.port())}});
  // The listener discovers the new peer on its next operation.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (listener.peers() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(listener.peers(), 1u);
  EXPECT_TRUE(listener.send("now delivered"));
  EXPECT_EQ(receive_within(dialer).value_or(""), "now delivered");
}

TEST(SocketTransport, ConnectFailsCleanlyWhenNothingListens) {
  // Port 1 is privileged and unbound; the dial must give up at the
  // timeout with an exception, not hang or half-construct.
  EXPECT_THROW(SocketTransport(SocketTransport::Connect{
                   .endpoints = {"127.0.0.1:1"}, .connect_timeout_ms = 100}),
               std::runtime_error);
  EXPECT_THROW(SocketTransport(SocketTransport::Connect{
                   .endpoints = {"no-port-here"}, .connect_timeout_ms = 100}),
               std::runtime_error);
}

TEST(SocketTransport, ListenerSurvivesReconnectingPeers) {
  // The daemon property: the listening endpoint outlives any one peer.
  SocketTransport listener(SocketTransport::Listen{0});
  for (int round = 0; round < 3; ++round) {
    SocketTransport dialer(
        SocketTransport::Connect{{"127.0.0.1:" + std::to_string(
                                      listener.port())}});
    const std::string frame = "round-" + std::to_string(round);
    ASSERT_TRUE(dialer.send(frame));
    EXPECT_EQ(receive_within(listener).value_or(""), frame);
  }  // dialer destructs: disconnect
  EXPECT_FALSE(receive_within(listener).has_value());
  EXPECT_EQ(listener.peers(), 0u);
}

TEST(SocketTransport, RotatesSendsAcrossPeersSoBroadcastsCoverEveryone) {
  SocketTransport a(SocketTransport::Listen{0});
  SocketTransport b(SocketTransport::Listen{0});
  SocketTransport dialer(SocketTransport::Connect{
      {"127.0.0.1:" + std::to_string(a.port()),
       "127.0.0.1:" + std::to_string(b.port())}});
  ASSERT_EQ(dialer.peers(), 2u);
  // Two consecutive sends must land on two different peers.
  ASSERT_TRUE(dialer.send("one"));
  ASSERT_TRUE(dialer.send("two"));
  EXPECT_TRUE(receive_within(a).has_value());
  EXPECT_TRUE(receive_within(b).has_value());
}

}  // namespace
}  // namespace ptest::fleet
