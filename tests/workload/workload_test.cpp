#include <gtest/gtest.h>

#include "ptest/workload/fig1.hpp"
#include "ptest/workload/philosophers.hpp"
#include "ptest/workload/quicksort.hpp"
#include "ptest/workload/seeded_bugs.hpp"

namespace ptest::workload {
namespace {

TEST(QuicksortTest, SortsItsDataWhenRunAlone) {
  pcore::PcoreKernel kernel;
  register_quicksort(kernel);
  sim::Soc soc;
  soc.attach(kernel);
  pcore::TaskId task = pcore::kInvalidTask;
  ASSERT_EQ(kernel.task_create(kQuicksortProgramId, /*seed=*/3, 5, task),
            pcore::Status::kOk);
  (void)soc.run(2000);
  // Program exits 0 on a verified sort; slot freed, no panic.
  EXPECT_EQ(kernel.live_task_count(), 0u);
  EXPECT_FALSE(kernel.panicked());
}

TEST(QuicksortTest, DifferentSeedsDifferentData) {
  QuicksortProgram a(1), b(2);
  EXPECT_NE(a.data(), b.data());
  EXPECT_EQ(a.data().size(), kQuicksortElements);
}

TEST(QuicksortTest, SurvivesSuspendResumeMidSort) {
  pcore::PcoreKernel kernel;
  register_quicksort(kernel);
  sim::Soc soc;
  soc.attach(kernel);
  pcore::TaskId task = pcore::kInvalidTask;
  ASSERT_EQ(kernel.task_create(kQuicksortProgramId, 1, 5, task),
            pcore::Status::kOk);
  (void)soc.run(20);
  ASSERT_EQ(kernel.task_suspend(task), pcore::Status::kOk);
  (void)soc.run(100);
  ASSERT_EQ(kernel.task_resume(task), pcore::Status::kOk);
  (void)soc.run(2000);
  EXPECT_EQ(kernel.live_task_count(), 0u);
  EXPECT_FALSE(kernel.panicked());
}

TEST(PhilosophersTest, RunAloneEachFinishesMeals) {
  pcore::PcoreKernel kernel;
  (void)register_philosophers(kernel, /*buggy=*/true, /*meals=*/2);
  sim::Soc soc;
  soc.attach(kernel);
  // Sequential execution (unique priorities, no suspends): no deadlock
  // even for the buggy variant.
  for (std::uint32_t i = 0; i < 3; ++i) {
    pcore::TaskId task = pcore::kInvalidTask;
    ASSERT_EQ(kernel.task_create(kPhilosopherProgramId, i,
                                 static_cast<pcore::Priority>(5 + i), task),
              pcore::Status::kOk);
  }
  (void)soc.run(5000);
  EXPECT_EQ(kernel.live_task_count(), 0u);
  EXPECT_FALSE(kernel.panicked());
}

TEST(PhilosophersTest, BuggyOrderIsCyclicFixedIsNot) {
  pcore::PcoreKernel kernel;
  const auto table = register_philosophers(kernel, true);
  // Construct programs directly to inspect acquisition order.
  PhilosopherProgram buggy(table, 2, /*buggy=*/true);
  PhilosopherProgram fixed(table, 2, /*buggy=*/false);
  // Buggy phil 2: first = fork2, second = fork0 (cyclic).
  // Fixed phil 2: first = fork0, second = fork2 (global order).
  // Verify via the lock steps they emit.
  class NullCtx final : public pcore::TaskContext {
   public:
    std::uint8_t task_id() const override { return 0; }
    sim::Tick now() const override { return 0; }
    bool holds(std::uint32_t) const override { return true; }
    std::int32_t shared(std::size_t) const override { return 0; }
    void set_shared(std::size_t, std::int32_t) override {}
  } ctx;
  const auto first_lock = [&ctx](PhilosopherProgram& p) {
    for (int i = 0; i < 10; ++i) {
      const auto step = p.step(ctx);
      if (step.kind == pcore::StepKind::kLock) return step.arg;
    }
    return ~0u;
  };
  EXPECT_EQ(first_lock(buggy), table.forks[2]);
  EXPECT_EQ(first_lock(fixed),
            std::min(table.forks[0], table.forks[2]));
}

TEST(Fig1Test, SimultaneousResumesLivelock) {
  // Both resumes land together: S2 (higher priority) sets y, spins on x
  // after S1 set x — the paper's K a L f g h b c g h ... order.
  Fig1Options options;
  options.m1_delay = 0;
  options.m2_delay = 0;
  const Fig1Result result = run_fig1(options);
  EXPECT_TRUE(result.livelocked);
  EXPECT_FALSE(result.completed);
  // Both tasks kept spinning (many steps, no exit).
  EXPECT_GT(result.s1_steps, 10u);
  EXPECT_GT(result.s2_steps, 10u);
}

TEST(Fig1Test, WellSeparatedResumesComplete) {
  // M2 resumes S2 long after S1 finished: the L f g K i j a b d e-style
  // completion order.
  Fig1Options options;
  options.m1_delay = 0;
  options.m2_delay = 500;
  const Fig1Result result = run_fig1(options);
  EXPECT_TRUE(result.completed);
  EXPECT_FALSE(result.livelocked);
}

TEST(Fig1Test, SweepFindsBothOutcomes) {
  int livelocks = 0, completions = 0;
  for (sim::Tick delay = 0; delay <= 40; delay += 2) {
    Fig1Options options;
    options.m2_delay = delay;
    const Fig1Result result = run_fig1(options);
    livelocks += result.livelocked;
    completions += result.completed;
  }
  EXPECT_GT(livelocks, 0);
  EXPECT_GT(completions, 0);
}

TEST(SeededBugsTest, LostUpdateManifestsUnderInterleaving) {
  pcore::KernelConfig config;
  config.panic_on_nonzero_exit = true;
  pcore::PcoreKernel kernel(config);
  register_seeded_bug(kernel, SeededBug::kLostUpdate);
  sim::Soc soc;
  soc.attach(kernel);
  // Two equal-priority tasks; the yield window interleaves their RMW.
  for (int i = 0; i < 2; ++i) {
    pcore::TaskId task = pcore::kInvalidTask;
    ASSERT_EQ(kernel.task_create(seeded_bug_program_id(SeededBug::kLostUpdate),
                                 0, 5, task),
              pcore::Status::kOk);
  }
  (void)soc.run(100);
  EXPECT_TRUE(kernel.panicked());  // in-program race assertion fired
}

TEST(SeededBugsTest, LostUpdateSafeWhenAlone) {
  pcore::KernelConfig config;
  config.panic_on_nonzero_exit = true;
  pcore::PcoreKernel kernel(config);
  register_seeded_bug(kernel, SeededBug::kLostUpdate);
  sim::Soc soc;
  soc.attach(kernel);
  pcore::TaskId task = pcore::kInvalidTask;
  ASSERT_EQ(kernel.task_create(seeded_bug_program_id(SeededBug::kLostUpdate),
                               0, 5, task),
            pcore::Status::kOk);
  (void)soc.run(100);
  EXPECT_FALSE(kernel.panicked());
  EXPECT_EQ(kernel.shared_word(2), 1);
}

TEST(SeededBugsTest, DeadlockPairManifestsWithSuspendWindow) {
  pcore::PcoreKernel kernel;
  register_seeded_bug(kernel, SeededBug::kDeadlockPair);
  sim::Soc soc;
  soc.attach(kernel);
  pcore::TaskId a = pcore::kInvalidTask, b = pcore::kInvalidTask;
  ASSERT_EQ(kernel.task_create(
                seeded_bug_program_id(SeededBug::kDeadlockPair), 0, 9, a),
            pcore::Status::kOk);
  // Let A take its first lock, then suspend it and start B.
  (void)soc.run(2);
  ASSERT_EQ(kernel.task_suspend(a), pcore::Status::kOk);
  ASSERT_EQ(kernel.task_create(
                seeded_bug_program_id(SeededBug::kDeadlockPair), 1, 9, b),
            pcore::Status::kOk);
  (void)soc.run(5);
  ASSERT_EQ(kernel.task_resume(a), pcore::Status::kOk);
  (void)soc.run(20);
  // Both blocked on each other's mutex.
  EXPECT_EQ(kernel.tcb(a).state, pcore::TaskState::kBlocked);
  EXPECT_EQ(kernel.tcb(b).state, pcore::TaskState::kBlocked);
}

TEST(SeededBugsTest, NamesAndIdsStable) {
  EXPECT_STREQ(to_string(SeededBug::kLostUpdate), "lost-update");
  EXPECT_EQ(seeded_bug_program_id(SeededBug::kOrderViolation), 11u);
}

}  // namespace
}  // namespace ptest::workload
