#include <gtest/gtest.h>

#include "ptest/bridge/committee.hpp"
#include "ptest/pcore/programs.hpp"

namespace ptest::bridge {
namespace {

TEST(ProtocolTest, MnemonicsRoundTrip) {
  for (std::size_t i = 0; i < kServiceCount; ++i) {
    const auto service = static_cast<Service>(i);
    const auto parsed = service_from_mnemonic(mnemonic(service));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, service);
  }
  EXPECT_FALSE(service_from_mnemonic("XX").has_value());
}

TEST(ProtocolTest, InternServiceAlphabetIsIdempotent) {
  pfa::Alphabet alphabet;
  intern_service_alphabet(alphabet);
  intern_service_alphabet(alphabet);
  EXPECT_EQ(alphabet.size(), kServiceCount);
  EXPECT_EQ(service_from_symbol(alphabet, alphabet.at("TCH")),
            Service::kTaskChanprio);
}

TEST(ProtocolTest, NonServiceSymbolMapsToNothing) {
  pfa::Alphabet alphabet;
  intern_service_alphabet(alphabet);
  const auto other = alphabet.intern("OTHER");
  EXPECT_FALSE(service_from_symbol(alphabet, other).has_value());
}

class ChannelFixture : public ::testing::Test {
 protected:
  sim::Soc soc_;
  Channel channel_{soc_};
};

TEST_F(ChannelFixture, CommandRoundTripThroughSramAndMailbox) {
  Command command;
  command.seq = 7;
  command.service = Service::kTaskSuspend;
  command.task = 3;
  ASSERT_TRUE(channel_.post_command(soc_, command));
  // Mailbox latency: not yet visible.
  EXPECT_FALSE(channel_.take_command(soc_).has_value());
  (void)soc_.run(3);
  const auto received = channel_.take_command(soc_);
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->seq, 7u);
  EXPECT_EQ(received->service, Service::kTaskSuspend);
  EXPECT_EQ(received->task, 3);
}

TEST_F(ChannelFixture, ResponseRoundTrip) {
  Response response;
  response.seq = 9;
  response.status = ResponseStatus::kError;
  response.detail = 4;
  ASSERT_TRUE(channel_.post_response(soc_, response));
  (void)soc_.run(3);
  const auto received = channel_.take_response(soc_);
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->seq, 9u);
  EXPECT_EQ(received->status, ResponseStatus::kError);
}

TEST_F(ChannelFixture, PreservesOrderAcrossBatches) {
  for (std::uint32_t i = 0; i < 4; ++i) {
    Command command;
    command.seq = i;
    ASSERT_TRUE(channel_.post_command(soc_, command));
  }
  (void)soc_.run(3);
  for (std::uint32_t i = 0; i < 4; ++i) {
    const auto received = channel_.take_command(soc_);
    ASSERT_TRUE(received.has_value());
    EXPECT_EQ(received->seq, i);
  }
}

TEST_F(ChannelFixture, DoorbellMailboxDepthLimitsBurst) {
  // The OMAP mailbox FIFO holds 4 words; a 5th burst post must fail even
  // though the ring has room — the committer retries next tick.
  Command command;
  int posted = 0;
  for (int i = 0; i < 6; ++i) {
    command.seq = static_cast<std::uint32_t>(i);
    if (channel_.post_command(soc_, command)) ++posted;
  }
  EXPECT_EQ(posted, 4);
  (void)soc_.run(3);
  // Draining restores capacity.
  int drained = 0;
  while (channel_.take_command(soc_)) ++drained;
  EXPECT_EQ(drained, 4);
  EXPECT_TRUE(channel_.post_command(soc_, command));
}

class CommitteeFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    kernel_.register_program(1, [](std::uint32_t) {
      return std::make_unique<pcore::IdleProgram>();
    });
    soc_.attach(committee_);
    soc_.attach(kernel_);
  }

  /// Posts a command, runs the loop until its response arrives.
  Response transact(Command command) {
    EXPECT_TRUE(channel_.post_command(soc_, command));
    for (int i = 0; i < 64; ++i) {
      (void)soc_.step();
      if (const auto response = channel_.take_response(soc_)) {
        return *response;
      }
    }
    ADD_FAILURE() << "no response within 64 ticks";
    return {};
  }

  sim::Soc soc_;
  pcore::PcoreKernel kernel_;
  Channel channel_{soc_};
  Committee committee_{channel_, kernel_};
};

TEST_F(CommitteeFixture, ExecutesTaskCreateAndReportsSlot) {
  Command command;
  command.seq = 1;
  command.service = Service::kTaskCreate;
  command.priority = 5;
  command.program_id = 1;
  const Response response = transact(command);
  EXPECT_EQ(response.status, ResponseStatus::kOk);
  EXPECT_NE(response.task, pcore::kInvalidTask);
  EXPECT_EQ(kernel_.live_task_count(), 1u);
}

TEST_F(CommitteeFixture, ReportsServiceErrors) {
  Command command;
  command.seq = 2;
  command.service = Service::kTaskResume;
  command.task = 5;  // no such task
  const Response response = transact(command);
  EXPECT_EQ(response.status, ResponseStatus::kError);
  EXPECT_EQ(static_cast<pcore::Status>(response.detail),
            pcore::Status::kErrBadTask);
}

TEST_F(CommitteeFixture, FullLifecycleViaRemoteCommands) {
  Command create;
  create.seq = 1;
  create.service = Service::kTaskCreate;
  create.priority = 7;
  create.program_id = 1;
  const Response created = transact(create);
  const pcore::TaskId task = created.task;

  Command suspend;
  suspend.seq = 2;
  suspend.service = Service::kTaskSuspend;
  suspend.task = task;
  EXPECT_EQ(transact(suspend).status, ResponseStatus::kOk);
  EXPECT_EQ(kernel_.tcb(task).state, pcore::TaskState::kSuspended);

  Command resume;
  resume.seq = 3;
  resume.service = Service::kTaskResume;
  resume.task = task;
  EXPECT_EQ(transact(resume).status, ResponseStatus::kOk);

  Command chanprio;
  chanprio.seq = 4;
  chanprio.service = Service::kTaskChanprio;
  chanprio.task = task;
  chanprio.priority = 12;
  EXPECT_EQ(transact(chanprio).status, ResponseStatus::kOk);
  EXPECT_EQ(kernel_.tcb(task).priority, 12);

  Command del;
  del.seq = 5;
  del.service = Service::kTaskDelete;
  del.task = task;
  EXPECT_EQ(transact(del).status, ResponseStatus::kOk);
  EXPECT_EQ(kernel_.live_task_count(), 0u);
}

TEST_F(CommitteeFixture, PanicReportedInResponse) {
  kernel_.force_panic("test panic");
  Command command;
  command.seq = 1;
  command.service = Service::kTaskCreate;
  command.program_id = 1;
  const Response response = transact(command);
  EXPECT_EQ(response.status, ResponseStatus::kPanic);
}

}  // namespace
}  // namespace ptest::bridge
