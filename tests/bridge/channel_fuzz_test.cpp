// Property fuzzing of the bridge channel: under random post/step/take
// schedules, commands and responses are delivered exactly once, in FIFO
// order, and never before the mailbox latency has elapsed.
#include <gtest/gtest.h>

#include <deque>

#include "ptest/bridge/channel.hpp"
#include "ptest/support/rng.hpp"

namespace ptest::bridge {
namespace {

class ChannelFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChannelFuzz, ExactlyOnceFifoDeliveryUnderRandomSchedules) {
  support::Rng rng(GetParam());
  sim::Soc soc;
  Channel channel(soc);

  std::uint32_t next_cmd_seq = 1, next_rsp_seq = 1;
  std::deque<std::uint32_t> cmd_in_flight, rsp_in_flight;
  std::uint32_t cmd_expected = 1, rsp_expected = 1;
  std::map<std::uint32_t, sim::Tick> cmd_posted_at;

  for (int step = 0; step < 5000; ++step) {
    switch (rng.below(4)) {
      case 0: {  // master posts a command
        Command command;
        command.seq = next_cmd_seq;
        command.task = static_cast<std::uint8_t>(next_cmd_seq % 16);
        if (channel.post_command(soc, command)) {
          cmd_posted_at[next_cmd_seq] = soc.now();
          cmd_in_flight.push_back(next_cmd_seq++);
        }
        break;
      }
      case 1: {  // slave posts a response
        Response response;
        response.seq = next_rsp_seq;
        if (channel.post_response(soc, response)) {
          rsp_in_flight.push_back(next_rsp_seq++);
        }
        break;
      }
      case 2: {  // slave drains commands
        while (const auto command = channel.take_command(soc)) {
          ASSERT_EQ(command->seq, cmd_expected) << "FIFO violated";
          ASSERT_FALSE(cmd_in_flight.empty());
          ASSERT_EQ(cmd_in_flight.front(), command->seq);
          // Latency respected: visible no earlier than post + 2.
          ASSERT_GE(soc.now(), cmd_posted_at[command->seq] + 2);
          cmd_in_flight.pop_front();
          ++cmd_expected;
        }
        break;
      }
      default: {  // master drains responses
        while (const auto response = channel.take_response(soc)) {
          ASSERT_EQ(response->seq, rsp_expected);
          ASSERT_FALSE(rsp_in_flight.empty());
          rsp_in_flight.pop_front();
          ++rsp_expected;
        }
        break;
      }
    }
    if (rng.chance(0.7)) (void)soc.step();
  }
  // Drain the tail.
  for (int i = 0; i < 64; ++i) (void)soc.step();
  while (const auto command = channel.take_command(soc)) {
    ASSERT_EQ(command->seq, cmd_expected++);
    cmd_in_flight.pop_front();
  }
  while (const auto response = channel.take_response(soc)) {
    ASSERT_EQ(response->seq, rsp_expected++);
    rsp_in_flight.pop_front();
  }
  EXPECT_TRUE(cmd_in_flight.empty());
  EXPECT_TRUE(rsp_in_flight.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChannelFuzz,
                         ::testing::Values(7, 11, 13, 17, 19, 23));

}  // namespace
}  // namespace ptest::bridge
