// support::Metrics / MetricsSnapshot — the campaign perf counter set.
#include "ptest/support/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace ptest::support {
namespace {

TEST(Metrics, SnapshotReflectsCounters) {
  Metrics metrics;
  metrics.add_sessions(3);
  metrics.add_plan_cache_hits(2);
  metrics.add_plan_compiles();
  metrics.add_patterns_generated(12);
  metrics.add_dedup_accepted(10);
  metrics.add_dedup_rejected(5);
  metrics.add_ticks(3'000'000);
  metrics.add_scratch_reuse_hits(11);
  metrics.add_sample_alloc_bytes_saved(4096);
  metrics.add_wall_ns(2'000'000'000);  // 2 s
  metrics.add_worker_idle_ns(500'000'000);
  metrics.set_worker_threads(4);

  const MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.sessions, 3u);
  EXPECT_EQ(snap.plan_cache_hits, 2u);
  EXPECT_EQ(snap.plan_compiles, 1u);
  EXPECT_EQ(snap.patterns_generated, 12u);
  EXPECT_EQ(snap.dedup_accepted, 10u);
  EXPECT_EQ(snap.dedup_rejected, 5u);
  EXPECT_EQ(snap.ticks, 3'000'000u);
  EXPECT_EQ(snap.scratch_reuse_hits, 11u);
  EXPECT_EQ(snap.sample_alloc_bytes_saved, 4096u);
  EXPECT_EQ(snap.worker_threads, 4u);
  EXPECT_DOUBLE_EQ(snap.wall_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(snap.sessions_per_second(), 1.5);
  EXPECT_DOUBLE_EQ(snap.interleavings_per_sec(), 1'500'000.0);
  EXPECT_DOUBLE_EQ(snap.worker_idle_seconds(), 0.5);
}

TEST(Metrics, ZeroWallTimeMeansZeroThroughput) {
  const MetricsSnapshot snap;
  EXPECT_DOUBLE_EQ(snap.sessions_per_second(), 0.0);
  EXPECT_DOUBLE_EQ(snap.interleavings_per_sec(), 0.0);
}

TEST(Metrics, ResetClearsEverything) {
  Metrics metrics;
  metrics.add_sessions(7);
  metrics.add_ticks(99);
  metrics.add_scratch_reuse_hits(3);
  metrics.add_sample_alloc_bytes_saved(512);
  metrics.add_wall_ns(123);
  metrics.reset();
  const MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.sessions, 0u);
  EXPECT_EQ(snap.ticks, 0u);
  EXPECT_EQ(snap.scratch_reuse_hits, 0u);
  EXPECT_EQ(snap.sample_alloc_bytes_saved, 0u);
  EXPECT_EQ(snap.wall_ns, 0u);
}

TEST(Metrics, ConcurrentIncrementsAreExact) {
  Metrics metrics;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&metrics] {
      for (int i = 0; i < kPerThread; ++i) {
        metrics.add_sessions();
        metrics.add_patterns_generated(2);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.sessions, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(snap.patterns_generated,
            static_cast<std::uint64_t>(2 * kThreads * kPerThread));
}

TEST(MetricsSnapshot, RenderListsEveryCounter) {
  MetricsSnapshot snap;
  snap.sessions = 42;
  snap.plan_cache_hits = 40;
  const std::string text = snap.render();
  EXPECT_NE(text.find("sessions"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_NE(text.find("plan_cache_hits"), std::string::npos);
  EXPECT_NE(text.find("interleavings_per_sec"), std::string::npos);
  EXPECT_NE(text.find("worker_idle_seconds"), std::string::npos);
}

TEST(MetricsSnapshot, ScratchCountersRenderOnlyWhenNonzero) {
  MetricsSnapshot snap;
  EXPECT_EQ(snap.render().find("scratch_reuse_hits"), std::string::npos);
  snap.scratch_reuse_hits = 9;
  snap.sample_alloc_bytes_saved = 1024;
  const std::string text = snap.render();
  EXPECT_NE(text.find("scratch_reuse_hits"), std::string::npos);
  EXPECT_NE(text.find("sample_alloc_bytes_saved"), std::string::npos);
  // JSON always carries both fields so machine consumers need no probes.
  JsonWriter out(0);
  snap.write_json(out);
  EXPECT_NE(out.str().find("\"scratch_reuse_hits\":9"), std::string::npos);
  EXPECT_NE(out.str().find("\"sample_alloc_bytes_saved\":1024"),
            std::string::npos);
}

TEST(MetricsSnapshot, WriteJsonEmitsOneObject) {
  MetricsSnapshot snap;
  snap.sessions = 8;
  snap.ticks = 16;
  snap.wall_ns = 1'000'000'000;
  JsonWriter out(0);
  snap.write_json(out);
  EXPECT_EQ(out.depth(), 0u);
  EXPECT_NE(out.str().find("\"sessions\":8"), std::string::npos);
  EXPECT_NE(out.str().find("\"sessions_per_second\":8"), std::string::npos);
  EXPECT_NE(out.str().find("\"interleavings_per_sec\":16"),
            std::string::npos);
}

}  // namespace
}  // namespace ptest::support
