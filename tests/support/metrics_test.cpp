// support::Metrics / MetricsSnapshot — the campaign perf counter set.
#include "ptest/support/metrics.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <vector>

namespace ptest::support {
namespace {

TEST(Metrics, SnapshotReflectsCounters) {
  Metrics metrics;
  metrics.add_sessions(3);
  metrics.add_plan_cache_hits(2);
  metrics.add_plan_compiles();
  metrics.add_patterns_generated(12);
  metrics.add_dedup_accepted(10);
  metrics.add_dedup_rejected(5);
  metrics.add_ticks(3'000'000);
  metrics.add_scratch_reuse_hits(11);
  metrics.add_sample_alloc_bytes_saved(4096);
  metrics.add_wall_ns(2'000'000'000);  // 2 s
  metrics.add_worker_idle_ns(500'000'000);
  metrics.set_worker_threads(4);

  const MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.sessions, 3u);
  EXPECT_EQ(snap.plan_cache_hits, 2u);
  EXPECT_EQ(snap.plan_compiles, 1u);
  EXPECT_EQ(snap.patterns_generated, 12u);
  EXPECT_EQ(snap.dedup_accepted, 10u);
  EXPECT_EQ(snap.dedup_rejected, 5u);
  EXPECT_EQ(snap.ticks, 3'000'000u);
  EXPECT_EQ(snap.scratch_reuse_hits, 11u);
  EXPECT_EQ(snap.sample_alloc_bytes_saved, 4096u);
  EXPECT_EQ(snap.worker_threads, 4u);
  EXPECT_DOUBLE_EQ(snap.wall_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(snap.sessions_per_second(), 1.5);
  EXPECT_DOUBLE_EQ(snap.interleavings_per_sec(), 1'500'000.0);
  EXPECT_DOUBLE_EQ(snap.worker_idle_seconds(), 0.5);
}

TEST(Metrics, ZeroWallTimeMeansZeroThroughput) {
  const MetricsSnapshot snap;
  EXPECT_DOUBLE_EQ(snap.sessions_per_second(), 0.0);
  EXPECT_DOUBLE_EQ(snap.interleavings_per_sec(), 0.0);
}

TEST(Metrics, ResetClearsEverything) {
  Metrics metrics;
  metrics.add_sessions(7);
  metrics.add_ticks(99);
  metrics.add_scratch_reuse_hits(3);
  metrics.add_sample_alloc_bytes_saved(512);
  metrics.add_wall_ns(123);
  metrics.reset();
  const MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.sessions, 0u);
  EXPECT_EQ(snap.ticks, 0u);
  EXPECT_EQ(snap.scratch_reuse_hits, 0u);
  EXPECT_EQ(snap.sample_alloc_bytes_saved, 0u);
  EXPECT_EQ(snap.wall_ns, 0u);
}

TEST(Metrics, ConcurrentIncrementsAreExact) {
  Metrics metrics;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&metrics] {
      for (int i = 0; i < kPerThread; ++i) {
        metrics.add_sessions();
        metrics.add_patterns_generated(2);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.sessions, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(snap.patterns_generated,
            static_cast<std::uint64_t>(2 * kThreads * kPerThread));
}

TEST(MetricsSnapshot, RenderListsEveryCounter) {
  MetricsSnapshot snap;
  snap.sessions = 42;
  snap.plan_cache_hits = 40;
  const std::string text = snap.render();
  EXPECT_NE(text.find("sessions"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_NE(text.find("plan_cache_hits"), std::string::npos);
  EXPECT_NE(text.find("interleavings_per_sec"), std::string::npos);
  EXPECT_NE(text.find("worker_idle_seconds"), std::string::npos);
}

TEST(MetricsSnapshot, ScratchCountersRenderOnlyWhenNonzero) {
  MetricsSnapshot snap;
  EXPECT_EQ(snap.render().find("scratch_reuse_hits"), std::string::npos);
  snap.scratch_reuse_hits = 9;
  snap.sample_alloc_bytes_saved = 1024;
  const std::string text = snap.render();
  EXPECT_NE(text.find("scratch_reuse_hits"), std::string::npos);
  EXPECT_NE(text.find("sample_alloc_bytes_saved"), std::string::npos);
  // JSON always carries both fields so machine consumers need no probes.
  JsonWriter out(0);
  snap.write_json(out);
  EXPECT_NE(out.str().find("\"scratch_reuse_hits\":9"), std::string::npos);
  EXPECT_NE(out.str().find("\"sample_alloc_bytes_saved\":1024"),
            std::string::npos);
}

TEST(MetricsSnapshot, WriteJsonEmitsOneObject) {
  MetricsSnapshot snap;
  snap.sessions = 8;
  snap.ticks = 16;
  snap.wall_ns = 1'000'000'000;
  JsonWriter out(0);
  snap.write_json(out);
  EXPECT_EQ(out.depth(), 0u);
  EXPECT_NE(out.str().find("\"sessions\":8"), std::string::npos);
  EXPECT_NE(out.str().find("\"sessions_per_second\":8"), std::string::npos);
  EXPECT_NE(out.str().find("\"interleavings_per_sec\":16"),
            std::string::npos);
}

TEST(MetricsSnapshot, HistogramsRenderOnlyWhenPopulated) {
  MetricsSnapshot snap;
  EXPECT_EQ(snap.render().find("ticks_hist"), std::string::npos);
  snap.ticks_hist.record(100);
  snap.ticks_hist.record(200);
  const std::string text = snap.render();
  EXPECT_NE(text.find("ticks_hist"), std::string::npos);
  EXPECT_NE(text.find("n=2"), std::string::npos);
  EXPECT_NE(text.find("p50="), std::string::npos);
  EXPECT_NE(text.find("p99="), std::string::npos);
  // JSON always carries the histogram objects, sparse-bucketed.
  JsonWriter out(0);
  snap.write_json(out);
  EXPECT_NE(out.str().find("\"ticks_hist\":{\"count\":2"), std::string::npos);
  EXPECT_NE(out.str().find("\"buckets\":[[7,1],[8,1]]"), std::string::npos);
}

// The audit: write_json's key set is pinned, and every key maps to a
// line in render() (through an alias map where the human block uses a
// different unit or a combined label).  Adding a MetricsSnapshot field
// to one surface but not the other fails here, not in a downstream
// dashboard.
TEST(MetricsSnapshot, WriteJsonAndRenderStayInSync) {
  MetricsSnapshot snap;
  snap.sessions = 1;
  snap.plan_cache_hits = 2;
  snap.plan_compiles = 3;
  snap.patterns_generated = 4;
  snap.dedup_accepted = 5;
  snap.dedup_rejected = 6;
  snap.ticks = 7;
  snap.scratch_reuse_hits = 8;
  snap.sample_alloc_bytes_saved = 9;
  snap.pfa_states = 10;
  snap.pfa_states_covered = 10;
  snap.pfa_transitions = 11;
  snap.pfa_transitions_covered = 11;
  snap.pfa_ngrams = 12;
  snap.epochs = 13;
  snap.plan_refinements = 14;
  snap.wall_ns = 15;
  snap.worker_idle_ns = 16;
  snap.worker_threads = 17;
  snap.fleet_shards = 18;
  snap.fleet_retries = 19;
  snap.fleet_corpus_merge_ns = 20;
  snap.fleet_shard_wall_max_ns = 21;
  snap.fleet_shard_wall_min_ns = 22;
  snap.ticks_hist.record(1);
  snap.session_wall_hist.record(2);
  snap.corpus_merge_hist.record(3);
  snap.frame_rtt_hist.record(4);
  snap.transport_send_hist.record(5);

  JsonWriter out(0);
  snap.write_json(out);
  auto parsed = parse_json(out.str());
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  const JsonValue& doc = parsed.value();
  ASSERT_TRUE(doc.is_object());

  const std::vector<std::string> expected_keys = {
      "sessions",
      "plan_cache_hits",
      "plan_compiles",
      "patterns_generated",
      "dedup_accepted",
      "dedup_rejected",
      "ticks",
      "scratch_reuse_hits",
      "sample_alloc_bytes_saved",
      "pfa_states",
      "pfa_states_covered",
      "pfa_transitions",
      "pfa_transitions_covered",
      "pfa_ngrams",
      "epochs",
      "plan_refinements",
      "fleet_shards",
      "fleet_retries",
      "fleet_corpus_merge_ms",
      "fleet_shard_wall_max_ns",
      "fleet_shard_wall_min_ns",
      "fleet_shard_imbalance",
      "ticks_hist",
      "session_wall_hist",
      "corpus_merge_hist",
      "frame_rtt_hist",
      "transport_send_hist",
      "wall_seconds",
      "sessions_per_second",
      "interleavings_per_sec",
      "worker_idle_seconds",
      "worker_threads",
  };
  ASSERT_EQ(doc.object.size(), expected_keys.size());
  for (std::size_t i = 0; i < expected_keys.size(); ++i) {
    EXPECT_EQ(doc.object[i].first, expected_keys[i]) << "json key " << i;
  }

  // JSON key -> render label where they differ (unit conversions and
  // the combined covered/total coverage lines).
  const std::map<std::string, std::string> render_alias = {
      {"pfa_states", "pfa_state_coverage"},
      {"pfa_states_covered", "pfa_state_coverage"},
      {"pfa_transitions", "pfa_transition_coverage"},
      {"pfa_transitions_covered", "pfa_transition_coverage"},
      {"fleet_shard_wall_max_ns", "fleet_shard_wall_max_ms"},
      {"fleet_shard_wall_min_ns", "fleet_shard_wall_min_ms"},
  };
  const std::string text = snap.render();
  for (const auto& [key, value] : doc.object) {
    const auto alias = render_alias.find(key);
    const std::string& label = alias == render_alias.end() ? key
                                                           : alias->second;
    EXPECT_NE(text.find(label), std::string::npos)
        << "render() is missing a line for write_json key '" << key << "'";
  }
}

}  // namespace
}  // namespace ptest::support
