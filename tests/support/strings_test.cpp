#include "ptest/support/strings.hpp"

#include <gtest/gtest.h>

namespace ptest::support {
namespace {

TEST(StringsTest, SplitBasic) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, SplitDropsEmptyByDefault) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
}

TEST(StringsTest, SplitKeepsEmptyWhenAsked) {
  const auto parts = split("a,,b,", ',', /*keep_empty=*/true);
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitEmptyInput) {
  EXPECT_TRUE(split("", ',').empty());
}

TEST(StringsTest, TrimBothEnds) {
  EXPECT_EQ(trim("  hello\t\n"), "hello");
  EXPECT_EQ(trim("hello"), "hello");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"x"}, ", "), "x");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(starts_with("pattern", "pat"));
  EXPECT_FALSE(starts_with("pat", "pattern"));
  EXPECT_TRUE(starts_with("x", ""));
}

TEST(StringsTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(parse_double("0.25"), 0.25);
  EXPECT_DOUBLE_EQ(parse_double("  1.5 "), 1.5);
  EXPECT_DOUBLE_EQ(parse_double("-3"), -3.0);
  EXPECT_THROW((void)parse_double("abc"), std::invalid_argument);
  EXPECT_THROW((void)parse_double("1.5x"), std::invalid_argument);
  EXPECT_THROW((void)parse_double(""), std::invalid_argument);
}

TEST(StringsTest, ParseU64) {
  EXPECT_EQ(parse_u64("42"), 42u);
  EXPECT_EQ(parse_u64(" 0 "), 0u);
  EXPECT_THROW((void)parse_u64("-1"), std::invalid_argument);
  EXPECT_THROW((void)parse_u64("12.5"), std::invalid_argument);
  EXPECT_THROW((void)parse_u64(""), std::invalid_argument);
}

}  // namespace
}  // namespace ptest::support
