// support::JsonWriter — the dependency-free writer behind
// BENCH_results.json and the metrics surface.  Escaping and structure
// are checked directly; the round-trip test re-parses the writer's
// output with a minimal JSON parser defined here, so a formatting bug
// can't hide behind string comparison against the writer's own idioms.
#include "ptest/support/json.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ptest::support {
namespace {

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("hello world_42"), "hello world_42");
}

TEST(JsonEscape, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("C:\\path\\\"x\""), "C:\\\\path\\\\\\\"x\\\"");
}

TEST(JsonEscape, EscapesControlCharacters) {
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape("a\tb"), "a\\tb");
  EXPECT_EQ(json_escape("a\rb"), "a\\rb");
  EXPECT_EQ(json_escape("a\bb"), "a\\bb");
  EXPECT_EQ(json_escape("a\fb"), "a\\fb");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
  EXPECT_EQ(json_escape(std::string(1, '\x1f')), "\\u001f");
}

TEST(JsonEscape, LeavesUtf8BytesAlone) {
  EXPECT_EQ(json_escape("\xc3\xa9"), "\xc3\xa9");  // é passes through
}

TEST(JsonWriter, EmptyObjectAndArray) {
  {
    JsonWriter out;
    out.begin_object().end_object();
    EXPECT_EQ(out.str(), "{}");
    EXPECT_EQ(out.depth(), 0u);
  }
  {
    JsonWriter out;
    out.begin_array().end_array();
    EXPECT_EQ(out.str(), "[]");
  }
}

TEST(JsonWriter, CompactObject) {
  JsonWriter out(/*indent=*/0);
  out.begin_object();
  out.key("a").value(std::int64_t{1});
  out.key("b").value("x");
  out.key("c").value(true);
  out.key("d").null();
  out.end_object();
  EXPECT_EQ(out.str(), R"({"a":1,"b":"x","c":true,"d":null})");
}

TEST(JsonWriter, NestedStructures) {
  JsonWriter out(/*indent=*/0);
  out.begin_object();
  out.key("stats").begin_object();
  out.key("values").begin_array();
  out.value(std::int64_t{1}).value(std::int64_t{2});
  out.begin_object().key("deep").value("yes").end_object();
  out.end_array();
  out.end_object();
  out.end_object();
  EXPECT_EQ(out.str(), R"({"stats":{"values":[1,2,{"deep":"yes"}]}})");
}

TEST(JsonWriter, IndentedOutputIsStable) {
  JsonWriter out(2);
  out.begin_object();
  out.key("a").value(std::int64_t{1});
  out.key("b").begin_array().value(std::int64_t{2}).end_array();
  out.end_object();
  EXPECT_EQ(out.str(), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
}

TEST(JsonWriter, NumbersRoundTripDeterministically) {
  JsonWriter out(0);
  out.begin_array();
  out.value(0.5).value(1e-9).value(123456789.25);
  out.value(std::uint64_t{18446744073709551615ULL});
  out.value(std::int64_t{-42});
  out.end_array();
  EXPECT_EQ(out.str(),
            "[0.5,1.0000000000000001e-09,123456789.25,"
            "18446744073709551615,-42]");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter out(0);
  out.begin_array();
  out.value(std::nan(""));
  out.value(std::numeric_limits<double>::infinity());
  out.end_array();
  EXPECT_EQ(out.str(), "[null,null]");
}

TEST(JsonWriter, MisuseThrows) {
  {
    JsonWriter out;
    out.begin_object();
    EXPECT_THROW(out.value("no key"), std::logic_error);
  }
  {
    JsonWriter out;
    out.begin_array();
    EXPECT_THROW(out.key("arrays have no keys"), std::logic_error);
  }
  {
    JsonWriter out;
    out.begin_object();
    EXPECT_THROW(out.end_array(), std::logic_error);
  }
  {
    JsonWriter out;
    out.begin_object();
    out.key("dangling");
    EXPECT_THROW(out.end_object(), std::logic_error);
  }
}

// --- minimal recursive-descent parser for the round-trip test -------------

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind =
      Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<std::shared_ptr<Value>> array;
  std::map<std::string, std::shared_ptr<Value>> object;
};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::shared_ptr<Value> parse() {
    auto value = parse_value();
    skip_ws();
    EXPECT_EQ(pos_, text_.size()) << "trailing bytes after document";
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  char peek() {
    EXPECT_LT(pos_, text_.size()) << "unexpected end of input";
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  void expect(char c) {
    EXPECT_EQ(peek(), c);
    ++pos_;
  }
  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out += c;
        continue;
      }
      EXPECT_LT(pos_, text_.size());
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          EXPECT_LE(pos_ + 4, text_.size());
          const unsigned code = static_cast<unsigned>(
              std::stoul(std::string(text_.substr(pos_, 4)), nullptr, 16));
          EXPECT_LT(code, 0x80u) << "test parser only handles ASCII \\u";
          out += static_cast<char>(code);
          pos_ += 4;
          break;
        }
        default: ADD_FAILURE() << "bad escape '" << escape << "'";
      }
    }
    expect('"');
    return out;
  }

  std::shared_ptr<Value> parse_value() {
    skip_ws();
    auto value = std::make_shared<Value>();
    const char c = peek();
    if (c == '{') {
      value->kind = Value::Kind::kObject;
      expect('{');
      skip_ws();
      if (peek() == '}') { expect('}'); return value; }
      for (;;) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        value->object[key] = parse_value();
        skip_ws();
        if (peek() == ',') { expect(','); continue; }
        expect('}');
        break;
      }
    } else if (c == '[') {
      value->kind = Value::Kind::kArray;
      expect('[');
      skip_ws();
      if (peek() == ']') { expect(']'); return value; }
      for (;;) {
        value->array.push_back(parse_value());
        skip_ws();
        if (peek() == ',') { expect(','); continue; }
        expect(']');
        break;
      }
    } else if (c == '"') {
      value->kind = Value::Kind::kString;
      value->string = parse_string();
    } else if (consume_literal("true")) {
      value->kind = Value::Kind::kBool;
      value->boolean = true;
    } else if (consume_literal("false")) {
      value->kind = Value::Kind::kBool;
      value->boolean = false;
    } else if (consume_literal("null")) {
      value->kind = Value::Kind::kNull;
    } else {
      value->kind = Value::Kind::kNumber;
      std::size_t consumed = 0;
      value->number = std::stod(std::string(text_.substr(pos_)), &consumed);
      EXPECT_GT(consumed, 0u);
      pos_ += consumed;
    }
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

TEST(JsonRoundTrip, StructureAndValuesSurvive) {
  JsonWriter out;
  out.begin_object();
  out.key("name with \"quotes\"").value("line1\nline2\tend\\");
  out.key("median_ms").value(1.5);
  out.key("tiny").value(4.2e-7);
  out.key("count").value(std::uint64_t{12345678901234567ULL});
  out.key("ok").value(true);
  out.key("nothing").null();
  out.key("nested").begin_object();
  out.key("list").begin_array();
  out.value(std::int64_t{1}).value("two").value(3.0);
  out.begin_object().key("ctrl\x01key").value("v").end_object();
  out.end_array();
  out.end_object();
  out.end_object();
  ASSERT_EQ(out.depth(), 0u);

  Parser parser(out.str());
  const auto root = parser.parse();
  ASSERT_EQ(root->kind, Value::Kind::kObject);
  EXPECT_EQ(root->object.at("name with \"quotes\"")->string,
            "line1\nline2\tend\\");
  EXPECT_DOUBLE_EQ(root->object.at("median_ms")->number, 1.5);
  EXPECT_DOUBLE_EQ(root->object.at("tiny")->number, 4.2e-7);
  EXPECT_DOUBLE_EQ(root->object.at("count")->number, 12345678901234568.0);
  EXPECT_TRUE(root->object.at("ok")->boolean);
  EXPECT_EQ(root->object.at("nothing")->kind, Value::Kind::kNull);
  const auto& nested = root->object.at("nested");
  ASSERT_EQ(nested->kind, Value::Kind::kObject);
  const auto& list = nested->object.at("list");
  ASSERT_EQ(list->array.size(), 4u);
  EXPECT_DOUBLE_EQ(list->array[0]->number, 1.0);
  EXPECT_EQ(list->array[1]->string, "two");
  EXPECT_DOUBLE_EQ(list->array[2]->number, 3.0);
  EXPECT_EQ(list->array[3]->object.at("ctrl\x01key")->string, "v");
}

}  // namespace
}  // namespace ptest::support
