// support::JsonWriter / parse_json — the dependency-free JSON layer
// behind BENCH_results.json, the metrics surface, and the guided-
// campaign corpus.  Escaping and structure are checked directly; the
// round-trip test re-parses the writer's output with the library's own
// parser (promoted out of this file when the corpus needed to load
// JSON), so a formatting bug can't hide behind string comparison
// against the writer's idioms, and a parser bug breaks the round trip
// from the other side.
#include "ptest/support/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

namespace ptest::support {
namespace {

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("hello world_42"), "hello world_42");
}

TEST(JsonEscape, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("C:\\path\\\"x\""), "C:\\\\path\\\\\\\"x\\\"");
}

TEST(JsonEscape, EscapesControlCharacters) {
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape("a\tb"), "a\\tb");
  EXPECT_EQ(json_escape("a\rb"), "a\\rb");
  EXPECT_EQ(json_escape("a\bb"), "a\\bb");
  EXPECT_EQ(json_escape("a\fb"), "a\\fb");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
  EXPECT_EQ(json_escape(std::string(1, '\x1f')), "\\u001f");
}

TEST(JsonEscape, LeavesUtf8BytesAlone) {
  EXPECT_EQ(json_escape("\xc3\xa9"), "\xc3\xa9");  // é passes through
}

TEST(JsonWriter, EmptyObjectAndArray) {
  {
    JsonWriter out;
    out.begin_object().end_object();
    EXPECT_EQ(out.str(), "{}");
    EXPECT_EQ(out.depth(), 0u);
  }
  {
    JsonWriter out;
    out.begin_array().end_array();
    EXPECT_EQ(out.str(), "[]");
  }
}

TEST(JsonWriter, CompactObject) {
  JsonWriter out(/*indent=*/0);
  out.begin_object();
  out.key("a").value(std::int64_t{1});
  out.key("b").value("x");
  out.key("c").value(true);
  out.key("d").null();
  out.end_object();
  EXPECT_EQ(out.str(), R"({"a":1,"b":"x","c":true,"d":null})");
}

TEST(JsonWriter, NestedStructures) {
  JsonWriter out(/*indent=*/0);
  out.begin_object();
  out.key("stats").begin_object();
  out.key("values").begin_array();
  out.value(std::int64_t{1}).value(std::int64_t{2});
  out.begin_object().key("deep").value("yes").end_object();
  out.end_array();
  out.end_object();
  out.end_object();
  EXPECT_EQ(out.str(), R"({"stats":{"values":[1,2,{"deep":"yes"}]}})");
}

TEST(JsonWriter, IndentedOutputIsStable) {
  JsonWriter out(2);
  out.begin_object();
  out.key("a").value(std::int64_t{1});
  out.key("b").begin_array().value(std::int64_t{2}).end_array();
  out.end_object();
  EXPECT_EQ(out.str(), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
}

TEST(JsonWriter, NumbersRoundTripDeterministically) {
  JsonWriter out(0);
  out.begin_array();
  out.value(0.5).value(1e-9).value(123456789.25);
  out.value(std::uint64_t{18446744073709551615ULL});
  out.value(std::int64_t{-42});
  out.end_array();
  EXPECT_EQ(out.str(),
            "[0.5,1.0000000000000001e-09,123456789.25,"
            "18446744073709551615,-42]");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter out(0);
  out.begin_array();
  out.value(std::nan(""));
  out.value(std::numeric_limits<double>::infinity());
  out.end_array();
  EXPECT_EQ(out.str(), "[null,null]");
}

TEST(JsonWriter, MisuseThrows) {
  {
    JsonWriter out;
    out.begin_object();
    EXPECT_THROW(out.value("no key"), std::logic_error);
  }
  {
    JsonWriter out;
    out.begin_array();
    EXPECT_THROW(out.key("arrays have no keys"), std::logic_error);
  }
  {
    JsonWriter out;
    out.begin_object();
    EXPECT_THROW(out.end_array(), std::logic_error);
  }
  {
    JsonWriter out;
    out.begin_object();
    out.key("dangling");
    EXPECT_THROW(out.end_object(), std::logic_error);
  }
}

// --- round trip through the library parser --------------------------------

TEST(JsonRoundTrip, StructureAndValuesSurvive) {
  JsonWriter out;
  out.begin_object();
  out.key("name with \"quotes\"").value("line1\nline2\tend\\");
  out.key("median_ms").value(1.5);
  out.key("tiny").value(4.2e-7);
  out.key("count").value(std::uint64_t{12345678901234567ULL});
  out.key("ok").value(true);
  out.key("nothing").null();
  out.key("nested").begin_object();
  out.key("list").begin_array();
  out.value(std::int64_t{1}).value("two").value(3.0);
  out.begin_object().key("ctrl\x01key").value("v").end_object();
  out.end_array();
  out.end_object();
  out.end_object();
  ASSERT_EQ(out.depth(), 0u);

  const auto parsed = parse_json(out.str());
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  const JsonValue& root = parsed.value();
  ASSERT_TRUE(root.is_object());
  EXPECT_EQ(root.at("name with \"quotes\"").string, "line1\nline2\tend\\");
  EXPECT_DOUBLE_EQ(root.at("median_ms").number, 1.5);
  EXPECT_DOUBLE_EQ(root.at("tiny").number, 4.2e-7);
  EXPECT_DOUBLE_EQ(root.at("count").number, 12345678901234568.0);
  EXPECT_TRUE(root.at("ok").boolean);
  EXPECT_TRUE(root.at("nothing").is_null());
  const JsonValue& nested = root.at("nested");
  ASSERT_TRUE(nested.is_object());
  const JsonValue& list = nested.at("list");
  ASSERT_EQ(list.array.size(), 4u);
  EXPECT_DOUBLE_EQ(list.array[0].number, 1.0);
  EXPECT_EQ(list.array[1].string, "two");
  EXPECT_DOUBLE_EQ(list.array[2].number, 3.0);
  EXPECT_EQ(list.array[3].at("ctrl\x01key").string, "v");
}

TEST(JsonRoundTrip, IndentedAndCompactOutputsParseIdentically) {
  for (const int indent : {0, 2}) {
    JsonWriter out(indent);
    out.begin_object();
    out.key("a").begin_array().value(std::int64_t{1}).value(false).end_array();
    out.key("b").value("x");
    out.end_object();
    const auto parsed = parse_json(out.str());
    ASSERT_TRUE(parsed.ok()) << parsed.error();
    EXPECT_EQ(parsed.value().at("a").array.size(), 2u);
    EXPECT_EQ(parsed.value().at("b").string, "x");
  }
}

// --- parser on hand-written and malformed input ---------------------------

TEST(JsonParse, AcceptsStandardDocuments) {
  const auto parsed = parse_json(
      R"({"k": [1, -2.5e3, "séq", {"deep": null}], "t": true})");
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  const JsonValue& root = parsed.value();
  const JsonValue& k = root.at("k");
  ASSERT_EQ(k.array.size(), 4u);
  EXPECT_DOUBLE_EQ(k.array[1].number, -2500.0);
  EXPECT_EQ(k.array[2].string, "s\xc3\xa9q");  // é decodes to UTF-8
  EXPECT_TRUE(k.array[3].at("deep").is_null());
  EXPECT_TRUE(root.at("t").boolean);
  EXPECT_EQ(root.find("absent"), nullptr);
  EXPECT_THROW((void)root.at("absent"), std::out_of_range);
}

TEST(JsonParse, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "{\"a\" 1}", "[1,]", "[1 2]", "{\"a\":1} trailing",
        "\"unterminated", "nulll", "{\"a\": bogus}", "\"bad \\q escape\""}) {
    SCOPED_TRACE(bad);
    const auto parsed = parse_json(bad);
    EXPECT_FALSE(parsed.ok());
    if (!parsed.ok()) {
      EXPECT_NE(parsed.error().find("JSON parse error"), std::string::npos);
    }
  }
}

TEST(JsonParse, EnforcesTheStrictNumberGrammar) {
  // strtod alone would happily accept every one of these; JSON does not.
  for (const char* bad :
       {"nan", "-nan", "inf", "infinity", "[Infinity]", "{\"a\": nan}",
        "0x1p3", "0x10", "01", "-01", "1.", ".5", "-.5", "1e", "1e+",
        "+1", "--1", "1e999"}) {
    SCOPED_TRACE(bad);
    EXPECT_FALSE(parse_json(bad).ok());
  }
}

TEST(JsonParse, NumbersOfAnyLengthParse) {
  // The token scan is unbounded: a 70-digit integer is valid JSON and
  // must parse (to the nearest double), not fail on some prefix cap.
  const std::string seventy(70, '9');
  const auto parsed = parse_json("[" + seventy + "]");
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_DOUBLE_EQ(parsed.value().array[0].number, 1e70);
  // Long but fractional-heavy forms too.
  const auto frac = parse_json("0." + std::string(80, '1') + "e2");
  ASSERT_TRUE(frac.ok()) << frac.error();
  EXPECT_NEAR(frac.value().number, 11.1111, 1e-3);
}

TEST(JsonParse, BoundsNestingDepth) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(parse_json(deep).ok());
  std::string shallow(20, '[');
  shallow += "1";
  shallow += std::string(20, ']');
  EXPECT_TRUE(parse_json(shallow).ok());
}

TEST(JsonParse, NestingLimitIsExact) {
  // The parser admits values at depth <= 64: a chain of 64 arrays
  // around a number parses, one more level fails — the limit is a
  // boundary, not a fuzzy region.
  const auto nested = [](std::size_t levels) {
    return std::string(levels, '[') + "1" + std::string(levels, ']');
  };
  EXPECT_TRUE(parse_json(nested(64)).ok());
  const auto too_deep = parse_json(nested(65));
  ASSERT_FALSE(too_deep.ok());
  EXPECT_NE(too_deep.error().find("nesting too deep"), std::string::npos);
}

TEST(JsonParse, EveryTruncationOfADocumentIsRejected) {
  // Fleet frames and corpora arrive over a file queue, where a reader
  // can race a non-atomic writer and see a prefix.  No proper prefix of
  // a document whose root closes at the last byte may half-parse.
  const std::string doc =
      R"({"a": [1, -2.5e3, "x\nA", true, null], "b": {"c": false}})";
  ASSERT_TRUE(parse_json(doc).ok());
  for (std::size_t len = 0; len < doc.size(); ++len) {
    SCOPED_TRACE(doc.substr(0, len));
    EXPECT_FALSE(parse_json(doc.substr(0, len)).ok());
  }
}

TEST(JsonParse, RejectsNumbersBeyondDoubleRange) {
  // Syntactically fine, semantically unrepresentable: the parser must
  // refuse rather than hand consumers an infinity.
  const std::string digits(400, '9');
  for (const std::string& big :
       {std::string("1e999"), std::string("-1e999"), std::string("1e308999"),
        std::string("[1, 2, 1e400]"), digits}) {
    SCOPED_TRACE(big);
    const auto parsed = parse_json(big);
    ASSERT_FALSE(parsed.ok());
    EXPECT_NE(parsed.error().find("number out of range"), std::string::npos);
  }
  // The largest finite double still parses.
  EXPECT_TRUE(parse_json("1.7976931348623157e308").ok());
  EXPECT_TRUE(parse_json("-1.7976931348623157e308").ok());
}

}  // namespace
}  // namespace ptest::support
