#include "ptest/support/log.hpp"

#include <gtest/gtest.h>

#include <regex>
#include <vector>

namespace ptest::support {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_level_ = Log::level();
    Log::set_sink([this](LogLevel level, std::string_view message) {
      captured_.emplace_back(level, std::string(message));
    });
  }
  void TearDown() override {
    Log::set_sink(nullptr);
    Log::set_level(saved_level_);
  }

  std::vector<std::pair<LogLevel, std::string>> captured_;
  LogLevel saved_level_ = LogLevel::kWarn;
};

TEST_F(LogTest, FiltersBelowLevel) {
  Log::set_level(LogLevel::kWarn);
  PTEST_INFO() << "hidden";
  PTEST_WARN() << "visible";
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].second, "visible");
}

TEST_F(LogTest, StreamsCompose) {
  Log::set_level(LogLevel::kDebug);
  PTEST_DEBUG() << "x=" << 42 << " y=" << 1.5;
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].second, "x=42 y=1.5");
  EXPECT_EQ(captured_[0].first, LogLevel::kDebug);
}

TEST_F(LogTest, OffSilencesEverything) {
  Log::set_level(LogLevel::kOff);
  PTEST_ERROR() << "nope";
  EXPECT_TRUE(captured_.empty());
}

TEST_F(LogTest, LevelNames) {
  EXPECT_EQ(to_string(LogLevel::kTrace), "TRACE");
  EXPECT_EQ(to_string(LogLevel::kError), "ERROR");
}

// The PTEST_LOG grammar: every level name, case-insensitively; anything
// else (including empty and near-misses) is rejected so a typo'd env
// var cannot silently change the threshold.
TEST(ParseLogLevelTest, AcceptsEveryLevelCaseInsensitively) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("TRACE"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("Debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::kInfo);
}

TEST(ParseLogLevelTest, RejectsEverythingElse) {
  EXPECT_EQ(parse_log_level(""), std::nullopt);
  EXPECT_EQ(parse_log_level("verbose"), std::nullopt);
  EXPECT_EQ(parse_log_level("warning"), std::nullopt);
  EXPECT_EQ(parse_log_level(" info"), std::nullopt);
  EXPECT_EQ(parse_log_level("info "), std::nullopt);
  EXPECT_EQ(parse_log_level("2"), std::nullopt);
}

TEST(LogPrefixTest, IsoTimestampLevelAndThreadId) {
  Log::set_node("");
  const std::string prefix = Log::format_prefix(LogLevel::kWarn);
  // 2026-08-07T12:34:56.789Z WARN tid=<hash>
  const std::regex pattern(
      R"(^\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{3}Z WARN tid=\d+$)");
  EXPECT_TRUE(std::regex_match(prefix, pattern)) << prefix;
}

TEST(LogPrefixTest, IncludesNodeWhenSet) {
  Log::set_node("daemon-7");
  const std::string prefix = Log::format_prefix(LogLevel::kError);
  const std::regex pattern(
      R"(^\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{3}Z ERROR tid=\d+ node=daemon-7$)");
  EXPECT_TRUE(std::regex_match(prefix, pattern)) << prefix;
  EXPECT_EQ(Log::node(), "daemon-7");
  Log::set_node("");
  EXPECT_EQ(Log::node(), "");
}

}  // namespace
}  // namespace ptest::support
