#include "ptest/support/log.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ptest::support {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_level_ = Log::level();
    Log::set_sink([this](LogLevel level, std::string_view message) {
      captured_.emplace_back(level, std::string(message));
    });
  }
  void TearDown() override {
    Log::set_sink(nullptr);
    Log::set_level(saved_level_);
  }

  std::vector<std::pair<LogLevel, std::string>> captured_;
  LogLevel saved_level_ = LogLevel::kWarn;
};

TEST_F(LogTest, FiltersBelowLevel) {
  Log::set_level(LogLevel::kWarn);
  PTEST_INFO() << "hidden";
  PTEST_WARN() << "visible";
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].second, "visible");
}

TEST_F(LogTest, StreamsCompose) {
  Log::set_level(LogLevel::kDebug);
  PTEST_DEBUG() << "x=" << 42 << " y=" << 1.5;
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].second, "x=42 y=1.5");
  EXPECT_EQ(captured_[0].first, LogLevel::kDebug);
}

TEST_F(LogTest, OffSilencesEverything) {
  Log::set_level(LogLevel::kOff);
  PTEST_ERROR() << "nope";
  EXPECT_TRUE(captured_.empty());
}

TEST_F(LogTest, LevelNames) {
  EXPECT_EQ(to_string(LogLevel::kTrace), "TRACE");
  EXPECT_EQ(to_string(LogLevel::kError), "ERROR");
}

}  // namespace
}  // namespace ptest::support
