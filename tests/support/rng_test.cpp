#include "ptest/support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace ptest::support {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 5);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(RngTest, BelowRejectsZeroBound) {
  Rng rng(7);
  EXPECT_THROW((void)rng.below(0), std::invalid_argument);
}

TEST(RngTest, BelowOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(RngTest, BetweenInclusiveBounds) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, BetweenRejectsInvertedRange) {
  Rng rng(7);
  EXPECT_THROW((void)rng.between(3, 2), std::invalid_argument);
}

TEST(RngTest, UniformInHalfOpenUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng rng(19);
  int hits = 0;
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.01);
}

TEST(RngTest, WeightedIndexMatchesWeights) {
  Rng rng(23);
  const std::vector<double> weights{0.6, 0.1, 0.3};
  std::vector<int> counts(3, 0);
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) {
    ++counts[rng.weighted_index(weights)];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(kTrials), 0.6, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kTrials), 0.1, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(kTrials), 0.3, 0.01);
}

TEST(RngTest, WeightedIndexSkipsZeroWeights) {
  Rng rng(29);
  const std::vector<double> weights{0.0, 1.0, 0.0};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rng.weighted_index(weights), 1u);
  }
}

TEST(RngTest, WeightedIndexRejectsAllZero) {
  Rng rng(31);
  const std::vector<double> weights{0.0, 0.0};
  EXPECT_THROW((void)rng.weighted_index(weights), std::invalid_argument);
}

TEST(RngTest, WeightedIndexRejectsNegative) {
  Rng rng(31);
  const std::vector<double> weights{0.5, -0.1};
  EXPECT_THROW((void)rng.weighted_index(weights), std::invalid_argument);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(37);
  std::vector<int> items(100);
  std::iota(items.begin(), items.end(), 0);
  auto shuffled = items;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, items);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(RngTest, UniformBatchMatchesUniformLoopExactly) {
  // The batch fill must consume the identical stream a loop of
  // uniform() calls would — bit-equal values AND the same generator
  // position afterwards — or pre-drawing would perturb replay.
  Rng loop_rng(1234);
  Rng batch_rng(1234);
  std::vector<double> batch(37);
  batch_rng.uniform_batch(batch);
  for (double value : batch) {
    EXPECT_EQ(value, loop_rng.uniform());
  }
  EXPECT_EQ(batch_rng.next(), loop_rng.next());
}

TEST(RngTest, UniformBatchOfZeroIsANoOp) {
  Rng a(9);
  Rng b(9);
  a.uniform_batch({});
  EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, ForkIsIndependentAndDeterministic) {
  Rng a(41);
  Rng b(41);
  Rng fa = a.fork();
  Rng fb = b.fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fa.next(), fb.next());
  // Fork advanced the parent identically.
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

// Property sweep: bounded sampling is roughly uniform across many bounds.
class RngBoundSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBoundSweep, BelowIsRoughlyUniform) {
  const std::uint64_t bound = GetParam();
  Rng rng(bound * 2654435761u + 1);
  std::vector<int> counts(bound, 0);
  const int trials = static_cast<int>(bound) * 2000;
  for (int i = 0; i < trials; ++i) ++counts[rng.below(bound)];
  const double expected = static_cast<double>(trials) / static_cast<double>(bound);
  for (std::uint64_t v = 0; v < bound; ++v) {
    EXPECT_NEAR(counts[v], expected, expected * 0.15)
        << "bound=" << bound << " value=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundSweep,
                         ::testing::Values(2, 3, 5, 7, 10, 16, 31));

}  // namespace
}  // namespace ptest::support
