#include "ptest/support/result.hpp"

#include <gtest/gtest.h>

#include <string>

namespace ptest::support {
namespace {

enum class Err { kBad, kWorse };

TEST(ResultTest, HoldsValue) {
  Result<int, Err> r(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 5);
  EXPECT_THROW((void)r.error(), std::logic_error);
}

TEST(ResultTest, HoldsError) {
  Result<int, Err> r(Err::kWorse);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Err::kWorse);
  EXPECT_THROW((void)r.value(), std::logic_error);
}

TEST(ResultTest, ValueOr) {
  Result<int, Err> good(3);
  Result<int, Err> bad(Err::kBad);
  EXPECT_EQ(good.value_or(9), 3);
  EXPECT_EQ(bad.value_or(9), 9);
}

TEST(ResultTest, MoveOnlyFriendly) {
  Result<std::string, Err> r(std::string("hello"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "hello");
}

}  // namespace
}  // namespace ptest::support
