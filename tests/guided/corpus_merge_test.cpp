// CoverageCorpus::merge algebra: the fold that lets fleet shards (and
// resumed campaigns) combine their corpora in any order.  The contract
// under test: for corpora that agree on scenario, seed and history the
// merge is commutative, associative and idempotent; disagreement errors
// and leaves the target unchanged; and the shard corpora of a split run
// merge into byte-for-byte the corpus of the uninterrupted run.
#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "ptest/core/campaign.hpp"
#include "ptest/fleet/worker.hpp"
#include "ptest/guided/corpus.hpp"

namespace ptest::guided {
namespace {

CoverageCorpus span_corpus(std::uint64_t base, std::uint64_t sessions,
                           std::uint64_t detections) {
  CoverageCorpus corpus;
  corpus.set_scenario("merge-fixture");
  corpus.set_seed(7);
  EXPECT_FALSE(corpus.add_span(base, sessions, detections).has_value());
  return corpus;
}

/// merge() as a value operation, asserting success.
CoverageCorpus merged(CoverageCorpus left, const CoverageCorpus& right) {
  const auto error = left.merge(right);
  EXPECT_FALSE(error.has_value()) << *error;
  return left;
}

TEST(CorpusMerge, IsCommutative) {
  CoverageCorpus a = span_corpus(0, 10, 2);
  a.add_transition(0, 1);
  a.add_transition(1, 2);
  a.add_fingerprint(0xaaa);
  CoverageCorpus b = span_corpus(10, 6, 1);
  b.add_transition(1, 2);
  b.add_transition(2, 0);
  b.add_fingerprint(0xbbb);
  EXPECT_EQ(merged(a, b).to_json(), merged(b, a).to_json());
}

TEST(CorpusMerge, IsAssociative) {
  const CoverageCorpus a = span_corpus(0, 4, 1);
  const CoverageCorpus b = span_corpus(4, 4, 0);
  const CoverageCorpus c = span_corpus(8, 4, 2);
  EXPECT_EQ(merged(merged(a, b), c).to_json(),
            merged(a, merged(b, c)).to_json());
}

TEST(CorpusMerge, SelfMergeIsIdempotent) {
  CoverageCorpus a = span_corpus(3, 9, 1);
  a.add_transition(5, 5);
  const std::string before = a.to_json();
  EXPECT_EQ(merged(a, a).to_json(), before);
  EXPECT_EQ(a.sessions(), 9u);  // the span did not double-count
}

TEST(CorpusMerge, ContiguousSpansCoalesceIntoOne) {
  const CoverageCorpus joined = merged(span_corpus(0, 8, 1),
                                       span_corpus(8, 8, 2));
  ASSERT_EQ(joined.spans().size(), 1u);
  EXPECT_EQ(joined.spans()[0].base, 0u);
  EXPECT_EQ(joined.spans()[0].sessions, 16u);
  EXPECT_EQ(joined.spans()[0].detections, 3u);
  EXPECT_EQ(joined.sessions(), 16u);
  EXPECT_EQ(joined.detections(), 3u);
}

TEST(CorpusMerge, ContainedSpansAreAbsorbed) {
  // [0, 16) already covers [4, 8): the contained report is redundant.
  const CoverageCorpus whole = span_corpus(0, 16, 3);
  CoverageCorpus part;
  part.set_scenario("merge-fixture");
  part.set_seed(7);
  ASSERT_FALSE(part.add_span(4, 4, 1).has_value());
  const CoverageCorpus out = merged(whole, part);
  ASSERT_EQ(out.spans().size(), 1u);
  EXPECT_EQ(out.spans()[0].sessions, 16u);
  EXPECT_EQ(out.detections(), 3u);
  // Merging the other way supersedes the fragment with the whole.
  EXPECT_EQ(merged(part, whole).to_json(), out.to_json());
}

TEST(CorpusMerge, PartialSpanOverlapIsAnErrorAndLeavesTheTargetIntact) {
  CoverageCorpus a = span_corpus(0, 10, 1);
  const std::string before = a.to_json();
  const CoverageCorpus overlapping = span_corpus(5, 10, 1);
  EXPECT_TRUE(a.merge(overlapping).has_value());
  EXPECT_EQ(a.to_json(), before);
}

TEST(CorpusMerge, SameSpanWithDifferentDetectionsIsAnError) {
  CoverageCorpus a = span_corpus(0, 10, 1);
  const CoverageCorpus liar = span_corpus(0, 10, 2);
  EXPECT_TRUE(a.merge(liar).has_value());
}

TEST(CorpusMerge, ScenarioAndSeedConflictsAreErrors) {
  CoverageCorpus a = span_corpus(0, 4, 0);
  CoverageCorpus other_scenario;
  other_scenario.set_scenario("someone-else");
  EXPECT_TRUE(a.merge(other_scenario).has_value());
  CoverageCorpus other_seed;
  other_seed.set_scenario("merge-fixture");
  other_seed.set_seed(8);
  EXPECT_TRUE(a.merge(other_seed).has_value());
  // An unlabeled, unstamped corpus merges fine and a adopts nothing new.
  CoverageCorpus blank;
  blank.add_transition(9, 9);
  EXPECT_FALSE(a.merge(blank).has_value());
  EXPECT_TRUE(a.covers(9, 9));
}

TEST(CorpusMerge, MergingIntoABlankCorpusAdoptsLabelAndSeed) {
  CoverageCorpus blank;
  const CoverageCorpus labeled = span_corpus(0, 4, 1);
  ASSERT_FALSE(blank.merge(labeled).has_value());
  EXPECT_EQ(blank.scenario(), "merge-fixture");
  ASSERT_TRUE(blank.seed().has_value());
  EXPECT_EQ(*blank.seed(), 7u);
}

TEST(CorpusMerge, EpochHistoriesMergeByPrefixRule) {
  EpochRecord first;
  first.sessions = 8;
  first.detections = 1;
  first.transitions = {{0, 1}};
  EpochRecord second;
  second.sessions = 8;
  second.detections = 2;
  second.transitions = {{1, 2}};

  CoverageCorpus shorter;
  shorter.add_epoch(first);
  CoverageCorpus longer;
  longer.add_epoch(first);
  longer.add_epoch(second);
  // Prefix on either side: the longer history wins both ways.
  EXPECT_EQ(merged(shorter, longer).epochs().size(), 2u);
  EXPECT_EQ(merged(longer, shorter).epochs().size(), 2u);
  EXPECT_EQ(merged(shorter, longer).sessions(), 16u);

  // Divergent histories cannot merge.
  EpochRecord divergent = second;
  divergent.detections = 99;
  CoverageCorpus rival;
  rival.add_epoch(first);
  rival.add_epoch(divergent);
  EXPECT_TRUE(longer.merge(rival).has_value());
}

// ---------------------------------------------------------------------------
// The fleet contract, end to end: shard corpora of a split scenario run
// merge into exactly the uninterrupted run's corpus.

void expect_split_run_merges_to_whole(std::size_t jobs) {
  const std::string scenario = "philosophers-deadlock";
  const std::size_t budget = 16;
  core::CampaignOptions options;
  options.budget = budget;
  options.jobs = jobs;

  auto whole = core::Campaign::run_scenario(scenario, options);
  ASSERT_TRUE(whole.ok()) << whole.error();
  const core::ShardSlice whole_slice{.index = 0, .run_base = 0,
                                     .sessions = budget};
  auto reference = fleet::shard_corpus(scenario, whole_slice, whole.value());
  ASSERT_TRUE(reference.ok()) << reference.error();

  const auto slices = core::Campaign::plan_shards(budget, 2);
  ASSERT_EQ(slices.size(), 2u);
  CoverageCorpus combined;
  // Merge in reverse shard order, to also exercise order-independence.
  for (auto it = slices.rbegin(); it != slices.rend(); ++it) {
    auto part = core::Campaign::run_scenario_slice(scenario, *it, options);
    ASSERT_TRUE(part.ok()) << part.error();
    auto corpus = fleet::shard_corpus(scenario, *it, part.value());
    ASSERT_TRUE(corpus.ok()) << corpus.error();
    const auto error = combined.merge(corpus.value());
    ASSERT_FALSE(error.has_value()) << *error;
  }
  EXPECT_EQ(combined.to_json(), reference.value().to_json());
}

TEST(CorpusMerge, SplitRunEqualsUninterruptedRunSerially) {
  expect_split_run_merges_to_whole(1);
}

TEST(CorpusMerge, SplitRunEqualsUninterruptedRunWithWorkerThreads) {
  expect_split_run_merges_to_whole(4);
}

TEST(CorpusMerge, SpansSurviveTheJsonRoundTrip) {
  CoverageCorpus a = span_corpus(0, 8, 1);
  ASSERT_FALSE(a.add_span(12, 4, 0).has_value());  // disjoint: two spans
  const auto reloaded = CoverageCorpus::from_json(a.to_json());
  ASSERT_TRUE(reloaded.ok()) << reloaded.error();
  EXPECT_EQ(reloaded.value().spans(), a.spans());
  EXPECT_EQ(reloaded.value().to_json(), a.to_json());
}

TEST(CorpusMerge, FromJsonRejectsMalformedSpans) {
  const CoverageCorpus a = span_corpus(0, 8, 1);
  const std::string good = a.to_json();
  // Splice structurally valid JSON with bad span payloads in.
  const auto corrupt = [&](const std::string& spans) {
    std::string text = good;
    const auto at = text.find("\"spans\"");
    const auto open = text.find('[', at);
    const auto close = text.find(']', open);
    text.replace(open, close - open + 1, spans);
    return text;
  };
  // Zero-length span, detections > sessions, unsorted pair, overflow.
  EXPECT_FALSE(CoverageCorpus::from_json(corrupt("[[0, 0, 0]]")).ok());
  EXPECT_FALSE(CoverageCorpus::from_json(corrupt("[[0, 2, 3]]")).ok());
  EXPECT_FALSE(
      CoverageCorpus::from_json(corrupt("[[8, 4, 0], [0, 4, 0]]")).ok());
  EXPECT_FALSE(CoverageCorpus::from_json(corrupt("[[0, 2]]")).ok());
}

}  // namespace
}  // namespace ptest::guided
