// guided/ — corpus persistence, refinement determinism, and the epoch
// loop's contracts.
//
// The load-bearing properties: (1) a corpus survives a JSON round trip
// so well that refinement decisions made from the reloaded copy are
// bit-identical — resumable campaigns depend on it; (2) corrupt or
// version-mismatched corpus files fail as clean Result errors, never as
// a half-seeded corpus silently skewing refinement; (3) a guided run is
// a pure function of (seed, options, corpus) — jobs=4 must reproduce
// jobs=1 bit for bit, corpus included.
#include "ptest/guided/campaign.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "ptest/guided/corpus.hpp"
#include "ptest/guided/refiner.hpp"
#include "ptest/scenario/registry.hpp"

namespace ptest::guided {
namespace {

/// An uninformed plan for the queue-order workload: quick sessions, some
/// transitions left uncovered for the refiner to chase.
core::PtestConfig small_config() {
  const scenario::Scenario* entry =
      scenario::ScenarioRegistry::builtin().find("queue-order");
  core::PtestConfig config = entry->config;
  config.distributions.clear();  // uniform
  config.seed = 11;
  return config;
}

const core::WorkloadSetup& small_setup() {
  return scenario::ScenarioRegistry::builtin().find("queue-order")->setup;
}

GuidedOptions small_options() {
  GuidedOptions options;
  options.max_epochs = 3;
  options.sessions_per_epoch = 3;
  options.stop_on_bug = false;  // run all epochs: exercises refinement
  options.plateau_window = 0;
  return options;
}

// --- corpus persistence ---------------------------------------------------

TEST(CoverageCorpus, RoundTripPreservesEverything) {
  CoverageCorpus corpus;
  corpus.set_scenario("queue-order");
  corpus.set_seed(0xfeedfacecafebeefULL);  // full-width: must not round
  EXPECT_TRUE(corpus.add_transition(0, 2));
  EXPECT_TRUE(corpus.add_transition(3, 1));
  EXPECT_FALSE(corpus.add_transition(0, 2));  // duplicate
  EXPECT_TRUE(corpus.add_fingerprint(0xdeadbeefcafef00dULL));
  EXPECT_TRUE(corpus.add_fingerprint(1));
  EpochRecord record;
  record.sessions = 8;
  record.detections = 1;
  record.transitions = {{0, 2}, {3, 1}};
  record.new_fingerprints = 2;
  record.transition_coverage = 0.25;
  corpus.add_epoch(record);

  const auto reloaded = CoverageCorpus::from_json(corpus.to_json());
  ASSERT_TRUE(reloaded.ok()) << reloaded.error();
  const CoverageCorpus& copy = reloaded.value();
  EXPECT_EQ(copy.scenario(), "queue-order");
  ASSERT_TRUE(copy.seed().has_value());
  EXPECT_EQ(*copy.seed(), 0xfeedfacecafebeefULL);
  EXPECT_EQ(copy.transitions(), corpus.transitions());
  EXPECT_EQ(copy.fingerprints(), corpus.fingerprints());
  EXPECT_EQ(copy.sessions(), 8u);
  EXPECT_EQ(copy.detections(), 1u);
  ASSERT_EQ(copy.epochs().size(), 1u);
  EXPECT_DOUBLE_EQ(copy.epochs()[0].transition_coverage, 0.25);
  // The canonical serialization is itself stable.
  EXPECT_EQ(copy.to_json(), corpus.to_json());
}

TEST(CoverageCorpus, RoundTripYieldsIdenticalRefinementDecisions) {
  // Run a short guided campaign to accumulate a real corpus, reload it
  // through JSON, and require the PlanRefiner to produce the identical
  // spec from both copies — the property that makes --corpus resumes
  // bit-deterministic.
  GuidedCampaign campaign(small_config(), small_setup(), small_options());
  (void)campaign.run();
  const CoverageCorpus& original = campaign.corpus();
  ASSERT_FALSE(original.empty());

  const auto reloaded = CoverageCorpus::from_json(original.to_json());
  ASSERT_TRUE(reloaded.ok()) << reloaded.error();

  const core::CompiledTestPlanPtr plan = core::compile(small_config());
  const PlanRefiner refiner(RefinerOptions{});
  const pfa::DistributionSpec a =
      refiner.refine(*plan, original.transitions());
  const pfa::DistributionSpec b =
      refiner.refine(*plan, reloaded.value().transitions());
  for (std::uint32_t state = 0; state < plan->pfa.states().size(); ++state) {
    for (const auto& t : plan->pfa.states()[state].transitions) {
      const auto wa = a.explicit_state_weight(state, t.symbol);
      const auto wb = b.explicit_state_weight(state, t.symbol);
      ASSERT_EQ(wa.has_value(), wb.has_value());
      if (wa) {
        EXPECT_DOUBLE_EQ(*wa, *wb);
      }
    }
  }
}

TEST(CoverageCorpus, SaveAndLoadRoundTripThroughAFile) {
  CoverageCorpus corpus;
  corpus.add_transition(1, 2);
  corpus.add_fingerprint(42);
  const std::string path = ::testing::TempDir() + "corpus_roundtrip.json";
  ASSERT_EQ(corpus.save(path), std::nullopt);
  const auto loaded = CoverageCorpus::load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  EXPECT_EQ(loaded.value().to_json(), corpus.to_json());
  std::remove(path.c_str());
}

TEST(CoverageCorpus, CorruptFilesFailCleanly) {
  // Structural garbage, not-JSON, wrong shapes: every case must come
  // back as an error Result naming the problem — never a partial load.
  for (const char* bad : {
           "not json at all",
           "{\"format_version\": 1}",  // missing arrays
           "{\"format_version\": 1, \"transitions\": 7, \"fingerprints\": [],"
           " \"epochs\": [], \"sessions\": 0, \"detections\": 0}",
           "{\"format_version\": 1, \"transitions\": [[1]],"
           " \"fingerprints\": [], \"epochs\": [], \"sessions\": 0,"
           " \"detections\": 0}",
           "{\"format_version\": 1, \"transitions\": [],"
           " \"fingerprints\": [\"zz\"], \"epochs\": [], \"sessions\": 0,"
           " \"detections\": 0}",
           // totals disagreeing with the epoch records
           "{\"format_version\": 1, \"transitions\": [],"
           " \"fingerprints\": [], \"epochs\": [], \"sessions\": 5,"
           " \"detections\": 0}",
           // counts outside uint64 range (the cast must be guarded,
           // not UB): a hand-edited corpus can hold any number
           "{\"format_version\": 1, \"transitions\": [],"
           " \"fingerprints\": [], \"epochs\": [], \"sessions\": 1e300,"
           " \"detections\": 0}",
           "{\"format_version\": 1, \"transitions\": [],"
           " \"fingerprints\": [], \"epochs\": [], \"sessions\": -3,"
           " \"detections\": 0}",
       }) {
    SCOPED_TRACE(bad);
    const auto result = CoverageCorpus::from_json(bad);
    EXPECT_FALSE(result.ok());
    if (!result.ok()) {
      EXPECT_NE(result.error().find("corpus:"), std::string::npos);
    }
  }
}

TEST(CoverageCorpus, VersionMismatchIsItsOwnError) {
  const auto result = CoverageCorpus::from_json(
      "{\"format_version\": 99, \"transitions\": [], \"fingerprints\": [],"
      " \"epochs\": [], \"sessions\": 0, \"detections\": 0}");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().find("format_version 99"), std::string::npos);
}

TEST(CoverageCorpus, MissingFileFailsCleanly) {
  const auto result = CoverageCorpus::load("/nonexistent/corpus.json");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().find("cannot read"), std::string::npos);
}

// --- refiner --------------------------------------------------------------

TEST(PlanRefiner, BoostsUncoveredEdgesAndPreservesCoveredStates) {
  const core::CompiledTestPlanPtr plan = core::compile(small_config());
  // Mark everything covered except one edge of the start state.
  std::set<std::pair<std::uint32_t, pfa::SymbolId>> covered;
  std::pair<std::uint32_t, pfa::SymbolId> uncovered_edge{0, 0};
  bool first = true;
  for (std::uint32_t state = 0; state < plan->pfa.states().size(); ++state) {
    for (const auto& t : plan->pfa.states()[state].transitions) {
      if (first && state == plan->pfa.start()) {
        uncovered_edge = {state, t.symbol};
        first = false;
        continue;
      }
      covered.insert({state, t.symbol});
    }
  }
  ASSERT_FALSE(first);

  RefinerOptions options;
  options.exploration_share = 0.5;
  const pfa::DistributionSpec spec =
      PlanRefiner(options).refine(*plan, covered);

  // The uncovered edge got the whole exploration share on top of its
  // scaled base probability.
  const auto& state = plan->pfa.states()[uncovered_edge.first];
  for (const auto& t : state.transitions) {
    const auto weight =
        spec.explicit_state_weight(uncovered_edge.first, t.symbol);
    ASSERT_TRUE(weight.has_value());
    const double expected =
        t.symbol == uncovered_edge.second ? 0.5 * t.probability + 0.5
                                          : 0.5 * t.probability;
    EXPECT_NEAR(*weight, std::max(expected, options.floor /
                                                state.transitions.size()),
                1e-12);
  }
  // Fully covered states keep their current distribution verbatim.
  for (std::uint32_t id = 0; id < plan->pfa.states().size(); ++id) {
    if (id == uncovered_edge.first) continue;
    for (const auto& t : plan->pfa.states()[id].transitions) {
      const auto weight = spec.explicit_state_weight(id, t.symbol);
      ASSERT_TRUE(weight.has_value());
      EXPECT_NEAR(*weight,
                  std::max(t.probability,
                           options.floor /
                               plan->pfa.states()[id].transitions.size()),
                  1e-12);
    }
  }
}

TEST(PlanRefiner, RefinedSpecCompilesIntoAValidPfa) {
  const core::CompiledTestPlanPtr plan = core::compile(small_config());
  const pfa::DistributionSpec spec = PlanRefiner(RefinerOptions{})
                                         .refine(*plan, /*covered=*/{});
  const core::CompiledTestPlanPtr refined =
      core::compile_with_spec(plan->config, spec);
  refined->pfa.validate();  // Eq. (1) holds after re-normalization
  EXPECT_EQ(refined->pfa.states().size(), plan->pfa.states().size());
}

TEST(PlanRefiner, RejectsBadOptions) {
  RefinerOptions bad;
  bad.exploration_share = 1.0;
  EXPECT_THROW(PlanRefiner{bad}, std::invalid_argument);
  bad = {};
  bad.estimator_blend = -0.1;
  EXPECT_THROW(PlanRefiner{bad}, std::invalid_argument);
}

// --- plateau rule ---------------------------------------------------------

TEST(Plateau, FlatTailStops) {
  EXPECT_TRUE(coverage_plateaued({0.2, 0.1, 0.0, 0.0, 0.0}, 3, 1e-3));
}

TEST(Plateau, SteadyGainsKeepGoing) {
  EXPECT_FALSE(coverage_plateaued({0.2, 0.15, 0.1, 0.1, 0.05}, 3, 1e-3));
  EXPECT_FALSE(coverage_plateaued({0.0, 0.0}, 3, 1e-3));  // too short
}

TEST(Plateau, ChangepointLocalizesTheShift) {
  // Strong gains, then a long near-zero tail with one blip: the direct
  // last-window rule misses (the blip sits inside the window) but the
  // changepoint scan localizes the shift and sees the flat segment.
  const std::vector<double> gains = {0.3,    0.25,   0.2,  0.0004, 0.0003,
                                     0.0002, 0.0021, 0.0,  0.0};
  EXPECT_TRUE(coverage_plateaued(gains, 3, 1e-3));
}

TEST(Plateau, DisabledWindowNeverStops) {
  EXPECT_FALSE(coverage_plateaued({0.0, 0.0, 0.0, 0.0}, 0, 1e-3));
}

// --- the epoch loop -------------------------------------------------------

TEST(GuidedCampaign, DeterministicAcrossJobs) {
  GuidedResult results[2];
  std::string corpora[2];
  for (int i = 0; i < 2; ++i) {
    GuidedOptions options = small_options();
    options.jobs = i == 0 ? 1 : 4;
    GuidedCampaign campaign(small_config(), small_setup(), options);
    results[i] = campaign.run();
    corpora[i] = campaign.corpus().to_json();
  }
  EXPECT_EQ(corpora[0], corpora[1]);  // the strongest equality we have
  EXPECT_EQ(results[0].campaign.total_runs, results[1].campaign.total_runs);
  EXPECT_EQ(results[0].campaign.total_detections,
            results[1].campaign.total_detections);
  EXPECT_EQ(results[0].stop_reason, results[1].stop_reason);
  EXPECT_EQ(results[0].sessions_to_first_bug,
            results[1].sessions_to_first_bug);
  ASSERT_EQ(results[0].epochs.size(), results[1].epochs.size());
  for (std::size_t e = 0; e < results[0].epochs.size(); ++e) {
    EXPECT_DOUBLE_EQ(results[0].epochs[e].transition_coverage,
                     results[1].epochs[e].transition_coverage);
    EXPECT_EQ(results[0].epochs[e].detections,
              results[1].epochs[e].detections);
  }
  ASSERT_EQ(results[0].campaign.distinct_failures.size(),
            results[1].campaign.distinct_failures.size());
  auto it = results[1].campaign.distinct_failures.begin();
  for (const auto& [signature, report] :
       results[0].campaign.distinct_failures) {
    EXPECT_EQ(signature, it->first);
    ++it;
  }
  // Work counters are jobs-invariant too.
  EXPECT_EQ(results[0].campaign.metrics.sessions,
            results[1].campaign.metrics.sessions);
  EXPECT_EQ(results[0].campaign.metrics.plan_compiles,
            results[1].campaign.metrics.plan_compiles);
  EXPECT_EQ(results[0].campaign.metrics.pfa_transitions_covered,
            results[1].campaign.metrics.pfa_transitions_covered);
}

TEST(GuidedCampaign, ResumingFromASavedCorpusIsDeterministic) {
  // leg 1 cold, leg 2 resumed from leg 1's corpus — and the same again
  // with the corpus passed through its JSON serialization.  Both second
  // legs must agree exactly.
  GuidedOptions options = small_options();
  options.max_epochs = 2;
  GuidedCampaign first(small_config(), small_setup(), options);
  (void)first.run();
  const std::string saved = first.corpus().to_json();

  GuidedCampaign direct(small_config(), small_setup(), options,
                        first.corpus());
  const GuidedResult direct_result = direct.run();

  const auto reloaded = CoverageCorpus::from_json(saved);
  ASSERT_TRUE(reloaded.ok()) << reloaded.error();
  GuidedCampaign resumed(small_config(), small_setup(), options,
                         reloaded.value());
  const GuidedResult resumed_result = resumed.run();

  EXPECT_EQ(direct.corpus().to_json(), resumed.corpus().to_json());
  EXPECT_EQ(direct_result.campaign.total_detections,
            resumed_result.campaign.total_detections);
  EXPECT_EQ(direct_result.sessions_to_first_bug,
            resumed_result.sessions_to_first_bug);
  ASSERT_EQ(direct_result.epochs.size(), resumed_result.epochs.size());
  for (std::size_t e = 0; e < direct_result.epochs.size(); ++e) {
    EXPECT_DOUBLE_EQ(direct_result.epochs[e].transition_coverage,
                     resumed_result.epochs[e].transition_coverage);
  }
  // Resume continues the run-index stream instead of replaying seeds:
  // the resumed legs saw different sessions than the cold leg.
  EXPECT_EQ(direct.corpus().sessions(),
            first.corpus().sessions() + direct_result.campaign.total_runs);
}

TEST(GuidedCampaign, SplitRunIsBitIdenticalToTheUninterruptedRun) {
  // The documented resume contract: 2 epochs + save/load + 2 epochs must
  // land on exactly the corpus a single 4-epoch run produces.  This
  // holds because session seeds continue from corpus.sessions(), epochs
  // count globally from corpus.epochs() (the resumed leg refines before
  // its first batch), and every refinement is recomputed from the base
  // plan + the persisted covered set — nothing in-process-only feeds it
  // while the estimator blend stays at its default 0.
  GuidedOptions uninterrupted_options = small_options();
  uninterrupted_options.max_epochs = 4;
  GuidedCampaign uninterrupted(small_config(), small_setup(),
                               uninterrupted_options);
  const GuidedResult whole = uninterrupted.run();

  GuidedOptions leg_options = small_options();
  leg_options.max_epochs = 2;
  GuidedCampaign leg1(small_config(), small_setup(), leg_options);
  const GuidedResult half1 = leg1.run();
  const auto reloaded = CoverageCorpus::from_json(leg1.corpus().to_json());
  ASSERT_TRUE(reloaded.ok()) << reloaded.error();
  GuidedCampaign leg2(small_config(), small_setup(), leg_options,
                      reloaded.value());
  const GuidedResult half2 = leg2.run();

  EXPECT_EQ(leg2.corpus().to_json(), uninterrupted.corpus().to_json());
  EXPECT_EQ(half1.campaign.total_detections + half2.campaign.total_detections,
            whole.campaign.total_detections);
  ASSERT_EQ(half2.epochs.size(), 2u);
  ASSERT_EQ(whole.epochs.size(), 4u);
  for (std::size_t e = 0; e < 2; ++e) {
    EXPECT_DOUBLE_EQ(half2.epochs[e].transition_coverage,
                     whole.epochs[e + 2].transition_coverage);
    EXPECT_EQ(half2.epochs[e].detections, whole.epochs[e + 2].detections);
    EXPECT_EQ(half2.epochs[e].new_fingerprints,
              whole.epochs[e + 2].new_fingerprints);
  }
  // The resumed leg refines before every one of its batches (global
  // epochs 2 and 3), so across both legs the refinement count matches
  // the uninterrupted run's.
  EXPECT_EQ(half1.refinements + half2.refinements, whole.refinements);
  EXPECT_EQ(half2.refinements, 2u);
}

TEST(GuidedCampaign, StopsOnOracleFire) {
  GuidedOptions options;
  options.max_epochs = 8;
  options.sessions_per_epoch = 4;
  const auto result = GuidedCampaign::run_scenario("queue-order", options);
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_EQ(result.value().stop_reason, StopReason::kBugFound);
  ASSERT_TRUE(result.value().sessions_to_first_bug.has_value());
  EXPECT_GE(*result.value().sessions_to_first_bug, 1u);
  EXPECT_GT(result.value().campaign.metrics.epochs, 0u);
  EXPECT_GT(result.value().coverage.transitions_covered, 0u);
}

TEST(GuidedCampaign, RejectsACorpusBuiltUnderADifferentSeed) {
  // The resume contract only holds under the seed that built the
  // corpus; a mismatch must be a clean error, not a silent splice of
  // two session streams.
  GuidedOptions options = small_options();
  GuidedCampaign first(small_config(), small_setup(), options);
  (void)first.run();
  ASSERT_TRUE(first.corpus().seed().has_value());

  core::PtestConfig other_seed = small_config();
  other_seed.seed = small_config().seed + 1;
  EXPECT_THROW(GuidedCampaign(other_seed, small_setup(), options,
                              first.corpus()),
               std::invalid_argument);

  CoverageCorpus labeled = first.corpus();
  labeled.set_scenario("queue-order");
  const auto result = GuidedCampaign::run_scenario(
      "queue-order", options, std::move(labeled), small_config().seed + 1);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().find("built under seed"), std::string::npos)
      << result.error();

  // Same seed resumes fine.
  const auto resumed = GuidedCampaign::run_scenario(
      "queue-order", options, first.corpus(), small_config().seed);
  EXPECT_TRUE(resumed.ok()) << resumed.error();
}

TEST(GuidedCampaign, RunScenarioRejectsMisuse) {
  EXPECT_FALSE(GuidedCampaign::run_scenario("no-such-scenario").ok());

  CoverageCorpus corpus;
  corpus.set_scenario("aba-stack");
  const auto mismatch =
      GuidedCampaign::run_scenario("queue-order", {}, corpus);
  ASSERT_FALSE(mismatch.ok());
  EXPECT_NE(mismatch.error().find("labeled for scenario"), std::string::npos);
}

TEST(GuidedCampaign, RejectsZeroBudgets) {
  GuidedOptions options;
  options.max_epochs = 0;
  EXPECT_THROW(GuidedCampaign(small_config(), small_setup(), options),
               std::invalid_argument);
  options = {};
  options.sessions_per_epoch = 0;
  EXPECT_THROW(GuidedCampaign(small_config(), small_setup(), options),
               std::invalid_argument);
}

}  // namespace
}  // namespace ptest::guided
