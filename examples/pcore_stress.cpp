// Case study 1 (paper §IV-B): stress-test pCore with 16 concurrent
// quicksort tasks (128 two-byte integers each, 512-byte stacks) under
// continuous create/delete churn, against a pCore build with the latent
// garbage-collector defect.  pTest discovers the crash and dumps the
// reproduction report.
#include <cstdio>

#include "ptest/core/adaptive_test.hpp"
#include "ptest/core/replay.hpp"
#include "ptest/workload/quicksort.hpp"

int main() {
  using namespace ptest;

  core::PtestConfig config;
  config.distributions =
      "TC -> TCH = 0.6; TC -> TS = 0.2; TC -> TD = 0.1; TC -> TY = 0.1;"
      "TCH -> TCH = 0.6; TCH -> TS = 0.2; TCH -> TD = 0.1; TCH -> TY = 0.1;"
      "TS -> TR = 1.0;"
      "TR -> TCH = 0.4; TR -> TS = 0.3; TR -> TY = 0.2; TR -> TD = 0.1";
  config.n = 16;                  // keep 16 active tasks
  config.s = 24;
  config.restart_at_accept = true;  // churn lifecycles (create/remove)
  config.program_id = workload::kQuicksortProgramId;
  config.kernel.fault_plan.gc_corruption = true;  // the latent GC bug
  config.kernel.fault_plan.churn_threshold = 24;
  config.kernel.fault_plan.live_block_threshold = 20;
  config.max_ticks = 500000;

  pfa::Alphabet alphabet;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    config.seed = seed;
    std::printf("stress run, seed %llu ...\n",
                static_cast<unsigned long long>(seed));
    const auto result =
        core::adaptive_test(config, alphabet, workload::register_quicksort);
    std::printf("  %s (%zu commands, %llu gc runs, %llu ticks)\n",
                core::to_string(result.session.outcome),
                result.session.stats.commands_issued,
                static_cast<unsigned long long>(result.session.stats.gc_runs),
                static_cast<unsigned long long>(result.session.stats.ticks));
    if (result.session.outcome == core::Outcome::kBug) {
      std::printf("\n%s\n",
                  result.session.report->render(alphabet).c_str());
      std::printf("replaying for confirmation ...\n");
      const auto replayed = core::replay(*result.session.report, config,
                                         alphabet,
                                         workload::register_quicksort);
      std::printf("replay: %s — %s\n", core::to_string(replayed.outcome),
                  core::verify_reproduces(*result.session.report, replayed)
                      ? "identical failure reproduced"
                      : "signature mismatch (unexpected)");
      return 0;
    }
  }
  std::printf("no crash found in 16 runs (unexpected with the fault armed)\n");
  return 1;
}
