// The paper's Fig. 1 concurrency fault, executed on the simulated
// OMAP5912: two spin-wait slave tasks resumed by two master threads.
// Depending on the relative timing of the two remote Resume commands the
// system either completes (the paper's L f g K i j a b d e order) or
// livelocks (K a L f g h b c g h ...).  This example sweeps the timing
// offset and prints which interleavings manifest the fault.
#include <cstdio>

#include "ptest/workload/fig1.hpp"

int main() {
  using namespace ptest;

  std::printf("m2_delay | outcome    | S1 steps | S2 steps\n");
  std::printf("---------+------------+----------+---------\n");
  int livelocks = 0;
  constexpr int kSweep = 24;
  for (sim::Tick delay = 0; delay <= kSweep; ++delay) {
    workload::Fig1Options options;
    options.m2_delay = delay;
    const workload::Fig1Result result = workload::run_fig1(options);
    std::printf("%8llu | %-10s | %8llu | %8llu\n",
                static_cast<unsigned long long>(delay),
                result.livelocked ? "LIVELOCK"
                : result.completed ? "completed"
                                   : "partial",
                static_cast<unsigned long long>(result.s1_steps),
                static_cast<unsigned long long>(result.s2_steps));
    livelocks += result.livelocked;
  }
  std::printf("\n%d of %d interleavings livelock — the fault the paper's\n"
              "bug detector catches as tasks that never terminate.\n",
              livelocks, kSweep + 1);
  return 0;
}
