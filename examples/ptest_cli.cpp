// ptest_cli — drive pTest from the command line.
//
//   ptest_cli [--workload quicksort|philosophers|philosophers-fixed]
//             [--op sequential|round-robin|random|cyclic|shuffle]
//             [--n N] [--s S] [--seed SEED] [--runs R] [--jobs J]
//             [--spacing TICKS] [--gc-fault] [--pd fig5|uniform|FILE-TEXT]
//             [--metrics]
//
// Default mode runs R adaptive-test sessions and prints one line per run
// plus the first bug report found.  With --jobs J the R sessions instead
// run as a single-arm campaign on J worker threads (0 = one per hardware
// thread) and print a campaign summary; the summary is bit-identical for
// every J, so `--jobs 8` can be diffed against `--jobs 1` to check the
// parallel runner.  --metrics appends the support::Metrics perf counters
// (sessions/sec, plan cache, dedup, worker idle time) after the run; the
// timing lines vary run-to-run, so diff-based determinism checks should
// omit the flag.  Exit code: 0 = all passed, 2 = bug detected.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "ptest/core/adaptive_test.hpp"
#include "ptest/core/campaign.hpp"
#include "ptest/core/report.hpp"
#include "ptest/workload/philosophers.hpp"
#include "ptest/workload/quicksort.hpp"

namespace {

const char* kFig5 =
    "TC -> TCH = 0.6; TC -> TS = 0.2; TC -> TD = 0.1; TC -> TY = 0.1;"
    "TCH -> TCH = 0.6; TCH -> TS = 0.2; TCH -> TD = 0.1; TCH -> TY = 0.1;"
    "TS -> TR = 1.0;"
    "TR -> TCH = 0.4; TR -> TS = 0.3; TR -> TY = 0.2; TR -> TD = 0.1";

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--workload quicksort|philosophers|"
               "philosophers-fixed] [--op OP] [--n N] [--s S]\n"
               "          [--seed SEED] [--runs R] [--jobs J] "
               "[--spacing TICKS] [--gc-fault] [--pd fig5|uniform|TEXT]\n"
               "          [--metrics]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ptest;

  std::string workload_name = "quicksort";
  std::string pd = "fig5";
  core::PtestConfig config;
  config.distributions = kFig5;
  std::uint64_t runs = 1;
  bool campaign_mode = false;
  bool show_metrics = false;
  std::size_t jobs = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(64);
      }
      return argv[++i];
    };
    if (flag == "--workload") {
      workload_name = value();
    } else if (flag == "--op") {
      const auto op = pattern::merge_op_from_string(value());
      if (!op) {
        std::fprintf(stderr, "unknown merge op\n");
        return 64;
      }
      config.op = *op;
    } else if (flag == "--n") {
      config.n = std::strtoull(value(), nullptr, 10);
    } else if (flag == "--s") {
      config.s = std::strtoull(value(), nullptr, 10);
    } else if (flag == "--seed") {
      config.seed = std::strtoull(value(), nullptr, 10);
    } else if (flag == "--runs") {
      runs = std::strtoull(value(), nullptr, 10);
    } else if (flag == "--jobs") {
      campaign_mode = true;
      jobs = std::strtoull(value(), nullptr, 10);
    } else if (flag == "--spacing") {
      config.command_spacing = std::strtoull(value(), nullptr, 10);
    } else if (flag == "--gc-fault") {
      config.kernel.fault_plan.gc_corruption = true;
      config.kernel.fault_plan.churn_threshold = 24;
      config.kernel.fault_plan.live_block_threshold = 20;
      config.restart_at_accept = true;
    } else if (flag == "--pd") {
      pd = value();
    } else if (flag == "--metrics") {
      show_metrics = true;
    } else if (flag == "--help" || flag == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      usage(argv[0]);
      return 64;
    }
  }

  if (pd == "uniform") {
    config.distributions.clear();
  } else if (pd != "fig5") {
    config.distributions = pd;  // raw DistributionSpec::parse text
  }

  core::WorkloadSetup setup;
  if (workload_name == "quicksort") {
    config.program_id = workload::kQuicksortProgramId;
    setup = workload::register_quicksort;
  } else if (workload_name == "philosophers" ||
             workload_name == "philosophers-fixed") {
    config.program_id = workload::kPhilosopherProgramId;
    config.n = std::min<std::size_t>(config.n, 3);
    const bool buggy = workload_name == "philosophers";
    setup = [buggy](pcore::PcoreKernel& kernel) {
      (void)workload::register_philosophers(kernel, buggy, /*meals=*/500);
    };
  } else {
    std::fprintf(stderr, "unknown workload '%s'\n", workload_name.c_str());
    return 64;
  }

  if (campaign_mode) {
    // One arm carrying the configured (op, PD); the campaign machinery
    // shards the budget across the worker pool.  Nothing printed below
    // depends on the jobs value — that is the determinism contract.
    core::CampaignArm arm;
    arm.name = std::string(pattern::to_string(config.op)) + "/" +
               (pd == "fig5" || pd == "uniform" ? pd : "custom");
    arm.op = config.op;
    arm.distributions = config.distributions;
    core::CampaignOptions options;
    options.budget = runs;
    options.jobs = jobs;
    core::Campaign campaign(config, {arm}, setup, options);
    const core::CampaignResult result = campaign.run();

    std::printf("campaign: %zu runs, 1 arm, seed=%llu\n", result.total_runs,
                static_cast<unsigned long long>(config.seed));
    const core::ArmStats& stats = result.arm_stats[0];
    std::printf("arm %-24s runs=%zu detections=%zu (rate %.3f)\n",
                arm.name.c_str(), stats.runs, stats.detections,
                stats.detection_rate());
    std::printf("distinct failure signatures: %zu\n",
                result.distinct_failures.size());
    for (const auto& entry : result.distinct_failures) {
      std::printf("  %s\n", entry.first.c_str());
    }
    if (show_metrics) {
      std::printf("%s", core::render(result.metrics).c_str());
    }
    return result.total_detections == 0 ? 0 : 2;
  }

  // Compile the fixed artifact (alphabet, regex, PFA, distributions)
  // once; each run only re-seeds sampling and the session.
  const auto wall_start = std::chrono::steady_clock::now();
  support::Metrics metrics;
  const core::CompiledTestPlanPtr plan = core::compile(config);
  metrics.add_plan_compiles();
  const std::uint64_t base_seed = config.seed;
  int exit_code = 0;
  for (std::uint64_t run = 0; run < runs; ++run) {
    const std::uint64_t seed = base_seed + run;
    const auto result = core::execute(*plan, seed, setup);
    metrics.add_sessions();
    metrics.add_plan_cache_hits();
    metrics.add_patterns_generated(result.patterns.size());
    std::printf("run %llu seed=%llu: %s (%zu commands, %llu ticks)\n",
                static_cast<unsigned long long>(run + 1),
                static_cast<unsigned long long>(seed),
                core::to_string(result.session.outcome),
                result.session.stats.commands_issued,
                static_cast<unsigned long long>(result.session.stats.ticks));
    if (result.session.report) {
      std::printf("\n%s\n",
                  result.session.report->render(plan->alphabet).c_str());
      exit_code = 2;
      break;
    }
  }
  if (show_metrics) {
    metrics.set_worker_threads(1);
    metrics.add_wall_ns(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - wall_start)
            .count()));
    std::printf("%s", core::render(metrics.snapshot()).c_str());
  }
  return exit_code;
}
