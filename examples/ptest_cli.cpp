// ptest_cli — drive pTest from the command line.
//
//   ptest_cli [--workload quicksort|philosophers|philosophers-fixed]
//             [--op sequential|round-robin|random|cyclic|shuffle]
//             [--n N] [--s S] [--seed SEED] [--runs R]
//             [--spacing TICKS] [--gc-fault] [--pd fig5|uniform|FILE-TEXT]
//
// Runs R adaptive-test sessions and prints one line per run plus the first
// bug report found.  Exit code: 0 = all passed, 2 = bug detected.
#include <cstdio>
#include <cstring>
#include <string>

#include "ptest/core/adaptive_test.hpp"
#include "ptest/workload/philosophers.hpp"
#include "ptest/workload/quicksort.hpp"

namespace {

const char* kFig5 =
    "TC -> TCH = 0.6; TC -> TS = 0.2; TC -> TD = 0.1; TC -> TY = 0.1;"
    "TCH -> TCH = 0.6; TCH -> TS = 0.2; TCH -> TD = 0.1; TCH -> TY = 0.1;"
    "TS -> TR = 1.0;"
    "TR -> TCH = 0.4; TR -> TS = 0.3; TR -> TY = 0.2; TR -> TD = 0.1";

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--workload quicksort|philosophers|"
               "philosophers-fixed] [--op OP] [--n N] [--s S]\n"
               "          [--seed SEED] [--runs R] [--spacing TICKS] "
               "[--gc-fault] [--pd fig5|uniform|TEXT]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ptest;

  std::string workload_name = "quicksort";
  std::string pd = "fig5";
  core::PtestConfig config;
  config.distributions = kFig5;
  std::uint64_t runs = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(64);
      }
      return argv[++i];
    };
    if (flag == "--workload") {
      workload_name = value();
    } else if (flag == "--op") {
      const auto op = pattern::merge_op_from_string(value());
      if (!op) {
        std::fprintf(stderr, "unknown merge op\n");
        return 64;
      }
      config.op = *op;
    } else if (flag == "--n") {
      config.n = std::strtoull(value(), nullptr, 10);
    } else if (flag == "--s") {
      config.s = std::strtoull(value(), nullptr, 10);
    } else if (flag == "--seed") {
      config.seed = std::strtoull(value(), nullptr, 10);
    } else if (flag == "--runs") {
      runs = std::strtoull(value(), nullptr, 10);
    } else if (flag == "--spacing") {
      config.command_spacing = std::strtoull(value(), nullptr, 10);
    } else if (flag == "--gc-fault") {
      config.kernel.fault_plan.gc_corruption = true;
      config.kernel.fault_plan.churn_threshold = 24;
      config.kernel.fault_plan.live_block_threshold = 20;
      config.restart_at_accept = true;
    } else if (flag == "--pd") {
      pd = value();
    } else if (flag == "--help" || flag == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      usage(argv[0]);
      return 64;
    }
  }

  if (pd == "uniform") {
    config.distributions.clear();
  } else if (pd != "fig5") {
    config.distributions = pd;  // raw DistributionSpec::parse text
  }

  core::WorkloadSetup setup;
  if (workload_name == "quicksort") {
    config.program_id = workload::kQuicksortProgramId;
    setup = workload::register_quicksort;
  } else if (workload_name == "philosophers" ||
             workload_name == "philosophers-fixed") {
    config.program_id = workload::kPhilosopherProgramId;
    config.n = std::min<std::size_t>(config.n, 3);
    const bool buggy = workload_name == "philosophers";
    setup = [buggy](pcore::PcoreKernel& kernel) {
      (void)workload::register_philosophers(kernel, buggy, /*meals=*/500);
    };
  } else {
    std::fprintf(stderr, "unknown workload '%s'\n", workload_name.c_str());
    return 64;
  }

  pfa::Alphabet alphabet;
  const std::uint64_t base_seed = config.seed;
  for (std::uint64_t run = 0; run < runs; ++run) {
    config.seed = base_seed + run;
    const auto result = core::adaptive_test(config, alphabet, setup);
    std::printf("run %llu seed=%llu: %s (%zu commands, %llu ticks)\n",
                static_cast<unsigned long long>(run + 1),
                static_cast<unsigned long long>(config.seed),
                core::to_string(result.session.outcome),
                result.session.stats.commands_issued,
                static_cast<unsigned long long>(result.session.stats.ticks));
    if (result.session.report) {
      std::printf("\n%s\n", result.session.report->render(alphabet).c_str());
      return 2;
    }
  }
  return 0;
}
