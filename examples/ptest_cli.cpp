// ptest_cli — drive pTest from the command line.
//
//   ptest_cli [--workload quicksort|philosophers|philosophers-fixed]
//             [--op sequential|round-robin|random|cyclic|shuffle]
//             [--n N] [--s S] [--seed SEED] [--runs R] [--jobs J]
//             [--spacing TICKS] [--gc-fault] [--pd fig5|uniform|FILE-TEXT]
//             [--metrics]
//   ptest_cli --scenario NAME [--benign] [--runs R] [--jobs J]
//             [--seed SEED] [--metrics]
//   ptest_cli --scenario NAME --guided [--epochs N] [--epoch-sessions K]
//             [--corpus FILE] [--jobs J] [--seed SEED] [--metrics]
//   ptest_cli --scenario NAME --fleet N [--runs R] [--jobs J] [--seed SEED]
//             [--export-corpus FILE] [--metrics]
//   ptest_cli --serve DIR
//   ptest_cli --listen PORT
//   ptest_cli --scenario NAME --connect DIR|HOST:PORT[,HOST:PORT...]
//             [--fleet N] [--runs R] ...
//   ptest_cli --halt-fleet --connect HOST:PORT[,HOST:PORT...]
//   ptest_cli --list-scenarios [--markdown]
//
// Default mode runs R adaptive-test sessions and prints one line per run
// plus the first bug report found.  With --jobs J the R sessions instead
// run as a single-arm campaign on J worker threads (0 = one per hardware
// thread) and print a campaign summary; the summary is bit-identical for
// every J, so `--jobs 8` can be diffed against `--jobs 1` to check the
// parallel runner.  --metrics appends the support::Metrics perf counters
// (sessions/sec, plan cache, dedup, worker idle time) after the run; the
// timing lines vary run-to-run, so diff-based determinism checks should
// omit the flag.  Exit code: 0 = all passed, 2 = bug detected.
//
// Scenario mode drives the ScenarioRegistry: --scenario runs the named
// catalog entry's campaign (its own plan, workload, and default budget
// unless --runs overrides) and reports the bug-oracle verdict — exit 0
// when the oracle is satisfied (bug found, or silence for clean
// scenarios), 2 when it is not.  --benign selects the scenario's benign
// counterpart, where satisfaction means the oracle stayed silent.
// --list-scenarios prints the catalog (--markdown emits the README
// table).  An unknown scenario name is a clean usage error (exit 64).
//
// Guided mode (--guided, scenario mode only) replaces the single-plan
// campaign with the coverage-guided epoch loop of src/ptest/guided/:
// run a batch, fold PFA coverage + trace fingerprints into the corpus,
// re-weight the distributions toward uncovered transitions, recompile,
// repeat — stopping on oracle fire, the epoch budget (--epochs), or a
// coverage-gain plateau.  --corpus FILE persists the corpus across
// invocations: an existing file seeds the run (resuming yesterday's
// campaign bit-deterministically), and the accumulated corpus is saved
// back on exit.  A corrupt or version-mismatched corpus file is a clean
// usage error; a missing one just starts cold.  Exit codes mirror
// scenario mode: 0 when the oracle fired (or the scenario is clean), 2
// when the budget ran out first.
//
// Fleet mode shards the scenario campaign across workers.  --fleet N
// alone runs coordinator and N workers as threads of this process (the
// determinism demo: the summary is bit-identical to the single-process
// run).  --serve DIR turns this process into a file-queue worker
// polling DIR's spool; --connect DIR (with --scenario) runs the
// coordinator against that spool, splitting the budget over --fleet N
// shards served by however many --serve processes share the directory.
// --listen PORT turns this process into a *persistent* TCP worker
// daemon (PORT 0 = kernel-assigned; the bound port is printed) that
// survives campaign boundaries: a --connect HOST:PORT[,HOST:PORT...]
// coordinator dials the daemons, runs one campaign, and ends it with a
// campaign-end broadcast that leaves the daemons up for the next
// coordinator.  --halt-fleet (with a socket --connect, no --scenario)
// broadcasts the process-shutdown frame instead, ending the daemons.
// --export-corpus FILE writes the campaign's session-span corpus — the
// merged corpus in fleet mode, the whole-budget equivalent in plain
// scenario mode — which is what the CI fleet gate diffs.  Exit codes
// mirror scenario mode; --serve/--listen exit 0 on a clean shutdown
// frame.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <string>
#include <vector>

#include "ptest/core/adaptive_test.hpp"
#include "ptest/core/campaign.hpp"
#include "ptest/core/report.hpp"
#include "ptest/fleet/coordinator.hpp"
#include "ptest/fleet/socket_transport.hpp"
#include "ptest/fleet/transport.hpp"
#include "ptest/fleet/wire.hpp"
#include "ptest/fleet/worker.hpp"
#include "ptest/guided/campaign.hpp"
#include "ptest/obs/trace.hpp"
#include "ptest/scenario/registry.hpp"
#include "ptest/workload/philosophers.hpp"
#include "ptest/workload/quicksort.hpp"

namespace {

constexpr const char* kFig5 = ptest::core::kFig5Distributions;

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--workload quicksort|philosophers|"
               "philosophers-fixed] [--op OP] [--n N] [--s S]\n"
               "          [--seed SEED] [--runs R] [--jobs J] "
               "[--spacing TICKS] [--gc-fault] [--pd fig5|uniform|TEXT]\n"
               "          [--metrics]\n"
               "       %s --scenario NAME [--benign] [--runs R] [--jobs J]"
               " [--seed SEED] [--metrics]\n"
               "       %s --scenario NAME --guided [--epochs N]"
               " [--epoch-sessions K] [--corpus FILE]\n"
               "          [--jobs J] [--seed SEED] [--metrics]\n"
               "       %s --scenario NAME --fleet N [--runs R] [--jobs J]"
               " [--seed SEED]\n"
               "          [--export-corpus FILE] [--metrics]\n"
               "       %s --serve DIR\n"
               "       %s --listen PORT\n"
               "       %s --scenario NAME --connect DIR|HOST:PORT[,...]"
               " [--fleet N]\n"
               "          [--runs R] [--jobs J] [--seed SEED]"
               " [--export-corpus FILE] [--metrics]\n"
               "       %s --halt-fleet --connect HOST:PORT[,...]\n"
               "       %s --list-scenarios [--markdown]\n"
               "\n"
               "  --trace FILE   write a Chrome trace-event JSON of the run\n"
               "                 (any run mode; fleet coordinators stitch the\n"
               "                 workers' shipped fragments into one timeline)\n"
               "  --status       print a fleet liveness line per second to\n"
               "                 stderr (--fleet/--connect runs only)\n",
               argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0,
               argv0);
}

/// Drains the process TraceRecorder (producers must already be joined —
/// every run mode satisfies this by the time it calls here), stitches
/// any shipped worker fragments onto it, and writes the Chrome trace
/// document.  Returns 0 on success, 64 on an unwritable file.
int write_trace_file(const std::string& path, const char* process_name,
                     const std::vector<ptest::obs::NodeTrace>& node_traces) {
  using namespace ptest;
  const std::string document = obs::stitch_chrome_trace(
      process_name, obs::TraceRecorder::instance().drain(), node_traces);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << document;
  out.flush();
  if (!out.good()) {
    std::fprintf(stderr, "--trace %s: write failed\n", path.c_str());
    return 64;
  }
  std::printf("trace written to %s (%zu worker fragment(s))\n", path.c_str(),
              node_traces.size());
  return 0;
}

void print_fleet_status(const ptest::fleet::FleetStatus& status) {
  std::string nodes;
  for (const auto& [node, results] : status.node_results) {
    nodes += nodes.empty() ? " [" : " ";
    nodes += node + "=" + std::to_string(results);
  }
  if (!nodes.empty()) nodes += "]";
  std::fprintf(stderr,
               "fleet: %.1fs %zu/%zu shards done, %zu outstanding, "
               "%zu pending, %llu retries, %zu sessions%s\n",
               static_cast<double>(status.elapsed_ns) * 1e-9,
               status.shards_done, status.shards_total, status.outstanding,
               status.pending,
               static_cast<unsigned long long>(status.retries_issued),
               status.sessions_done, nodes.c_str());
}

int run_guided_mode(const std::string& name, std::size_t epochs,
                    std::size_t epoch_sessions, const std::string& corpus_path,
                    std::size_t jobs, std::optional<std::uint64_t> seed,
                    bool show_metrics, const std::string& trace_path) {
  using namespace ptest;
  guided::GuidedOptions options;
  if (epochs != 0) options.max_epochs = epochs;
  if (epoch_sessions != 0) options.sessions_per_epoch = epoch_sessions;
  options.jobs = jobs;

  guided::CoverageCorpus corpus;
  if (!corpus_path.empty()) {
    std::ifstream probe(corpus_path);
    if (probe.good()) {
      probe.close();
      auto loaded = guided::CoverageCorpus::load(corpus_path);
      if (!loaded.ok()) {
        std::fprintf(stderr, "%s\n", loaded.error().c_str());
        return 64;
      }
      corpus = std::move(loaded.value());
      std::printf("corpus %s: resuming after %llu sessions, %zu transitions,"
                  " %zu behaviors\n",
                  corpus_path.c_str(),
                  static_cast<unsigned long long>(corpus.sessions()),
                  corpus.transitions().size(), corpus.fingerprints().size());
    }
  }

  guided::CoverageCorpus corpus_out;
  const auto result =
      guided::GuidedCampaign::run_scenario(name, options, std::move(corpus),
                                           seed, &corpus_out);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.error().c_str());
    return 64;
  }
  const guided::GuidedResult& guided_result = result.value();

  std::printf("guided scenario %s: %zu sessions over %zu epochs\n",
              name.c_str(), guided_result.campaign.total_runs,
              guided_result.epochs.size());
  for (const guided::GuidedEpoch& epoch : guided_result.epochs) {
    std::printf("  epoch %zu: %zu sessions, %zu detections, coverage %.3f "
                "(+%.3f), %llu new behaviors\n",
                epoch.index, epoch.sessions, epoch.detections,
                epoch.transition_coverage, epoch.coverage_gain,
                static_cast<unsigned long long>(epoch.new_fingerprints));
  }
  std::printf("stop reason: %s; refinements: %zu\n",
              to_string(guided_result.stop_reason), guided_result.refinements);
  for (const auto& [signature, report] :
       guided_result.campaign.distinct_failures) {
    std::printf("  %s\n", signature.c_str());
  }
  if (guided_result.sessions_to_first_bug) {
    std::printf("sessions to first bug: %zu\n",
                *guided_result.sessions_to_first_bug);
  }

  if (!corpus_path.empty()) {
    if (const auto error = corpus_out.save(corpus_path)) {
      std::fprintf(stderr, "%s\n", error->c_str());
      return 64;
    }
    std::printf("corpus saved to %s (%zu transitions, %zu behaviors)\n",
                corpus_path.c_str(), corpus_out.transitions().size(),
                corpus_out.fingerprints().size());
  }
  if (show_metrics) {
    std::printf("%s", core::render(guided_result.campaign.metrics).c_str());
  }
  if (!trace_path.empty()) {
    if (const int code = write_trace_file(trace_path, "ptest", {})) {
      return code;
    }
  }

  // Verdict: bug scenarios must reach the oracle; clean scenarios only
  // map coverage, so any completed run satisfies them.
  const scenario::Scenario* entry =
      scenario::ScenarioRegistry::builtin().find(name);
  const bool ok = entry == nullptr || !entry->expects_bug() ||
                  guided_result.sessions_to_first_bug.has_value();
  std::printf("oracle: %s\n", ok ? "satisfied" : "NOT satisfied");
  return ok ? 0 : 2;
}

void list_scenarios(bool markdown) {
  using ptest::scenario::ScenarioRegistry;
  if (markdown) {
    std::printf("| Scenario | Category | Difficulty | Expected bug | "
                "Oracle |\n");
    std::printf("|----------|----------|------------|--------------|"
                "--------|\n");
  } else {
    std::printf("%-22s %-10s %-7s %-15s %s\n", "scenario", "category",
                "diff", "expected bug", "summary");
  }
  for (const auto& s : ScenarioRegistry::builtin().all()) {
    const char* kind = s.expects_bug()
                           ? ptest::core::to_string(*s.oracle.expected_kind)
                           : "none";
    if (markdown) {
      std::printf("| `%s` | %s | %s | %s | %s |\n", s.name.c_str(),
                  to_string(s.category), to_string(s.difficulty), kind,
                  s.oracle.description.c_str());
    } else {
      std::printf("%-22s %-10s %-7s %-15s %s\n", s.name.c_str(),
                  to_string(s.category), to_string(s.difficulty), kind,
                  s.summary.c_str());
    }
  }
}

/// Saves `corpus` to `path`; 64 on failure, 0 on success.
int export_corpus(const ptest::guided::CoverageCorpus& corpus,
                  const std::string& path) {
  if (const auto error = corpus.save(path)) {
    std::fprintf(stderr, "%s\n", error->c_str());
    return 64;
  }
  std::printf("corpus exported to %s (%zu transitions, %zu span(s))\n",
              path.c_str(), corpus.transitions().size(),
              corpus.spans().size());
  return 0;
}

int run_scenario_mode(const std::string& name, bool benign,
                      std::uint64_t runs, std::size_t jobs,
                      std::optional<std::uint64_t> seed, bool show_metrics,
                      const std::string& export_path,
                      const std::string& trace_path) {
  using namespace ptest;
  const scenario::Scenario* entry =
      scenario::ScenarioRegistry::builtin().find(name);
  if (entry == nullptr) {
    std::fprintf(stderr, "unknown scenario '%s' (see --list-scenarios)\n",
                 name.c_str());
    return 64;
  }
  core::CampaignOptions options;
  options.budget = static_cast<std::size_t>(runs);  // 0 = scenario default
  options.jobs = jobs;
  const auto result =
      core::Campaign::run_scenario(name, options, benign, seed);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.error().c_str());
    return 64;
  }
  const core::CampaignResult& campaign = result.value();
  std::printf("scenario %s%s: %zu runs, %zu detections, %zu distinct "
              "signatures\n",
              name.c_str(), benign ? " (benign)" : "", campaign.total_runs,
              campaign.total_detections, campaign.distinct_failures.size());
  for (const auto& [signature, report] : campaign.distinct_failures) {
    std::printf("  %s\n", signature.c_str());
  }
  if (!export_path.empty()) {
    // The whole budget as one slice: exactly what a fleet of any shard
    // count merges back to, which is what the CI gate diffs.
    const core::ShardSlice whole{0, 0, campaign.total_runs};
    auto corpus = fleet::shard_corpus(name, whole, campaign, seed);
    if (!corpus.ok()) {
      std::fprintf(stderr, "%s\n", corpus.error().c_str());
      return 64;
    }
    if (const int code = export_corpus(corpus.value(), export_path)) {
      return code;
    }
  }
  // For the buggy plan the oracle must fire (or stay silent on clean
  // scenarios); for the benign counterpart it must stay silent.
  const bool ok = benign ? !entry->oracle.fired(campaign)
                         : entry->oracle.satisfied(campaign);
  std::printf("oracle [%s]: %s\n", entry->oracle.description.c_str(),
              ok ? "satisfied" : "NOT satisfied");
  if (show_metrics) {
    std::printf("%s", core::render(campaign.metrics).c_str());
  }
  if (!trace_path.empty()) {
    if (const int code = write_trace_file(trace_path, "ptest", {})) {
      return code;
    }
  }
  return ok ? 0 : 2;
}

// File-queue / socket polling cadence: 1ms sleeps, bounded at ~10
// minutes of continuous idling before coordinator or worker concludes
// its peer is gone (smoke runs finish in seconds; a wedged fleet must
// still exit).  The shard deadline re-issues an assignment quiet for
// ~1 minute of idle polls — a worker process died mid-shard.
constexpr std::uint64_t kSpoolIdleSleepUs = 1000;
constexpr std::uint64_t kSpoolPollLimit = 600'000;
constexpr std::uint64_t kFleetShardDeadline = 60'000;

/// "--connect host:port,host:port" → the endpoint list (a ':' is what
/// distinguishes socket endpoints from a spool directory).
std::vector<std::string> split_endpoints(const std::string& csv) {
  std::vector<std::string> endpoints;
  std::size_t begin = 0;
  while (begin <= csv.size()) {
    const std::size_t comma = csv.find(',', begin);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > begin) endpoints.push_back(csv.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return endpoints;
}

int run_fleet_mode(const std::string& name, std::size_t shards,
                   const std::string& connect_to, std::uint64_t runs,
                   std::size_t jobs, std::optional<std::uint64_t> seed,
                   bool show_metrics, const std::string& export_path,
                   const std::string& trace_path, bool status) {
  using namespace ptest;
  const scenario::Scenario* entry =
      scenario::ScenarioRegistry::builtin().find(name);
  if (entry == nullptr) {
    std::fprintf(stderr, "unknown scenario '%s' (see --list-scenarios)\n",
                 name.c_str());
    return 64;
  }
  fleet::CoordinatorOptions options;
  options.shards = shards;
  options.jobs = jobs;
  options.budget = static_cast<std::size_t>(runs);  // 0 = scenario default
  options.seed = seed;
  options.trace = !trace_path.empty();
  if (status) {
    options.status_interval_ms = 1000;
    options.on_status = print_fleet_status;
  }
  const auto result =
      [&]() -> support::Result<fleet::FleetResult, std::string> {
    if (connect_to.empty()) return fleet::run_local_fleet(name, options);
    options.idle_sleep_us = kSpoolIdleSleepUs;
    options.poll_limit = kSpoolPollLimit;
    options.shard_deadline = kFleetShardDeadline;
    try {
      if (connect_to.find(':') != std::string::npos) {
        // Socket fleet: the daemons are persistent, so the campaign
        // ends with campaign-end frames, not process shutdown —
        // --halt-fleet is the explicit way to end the daemons.
        options.drain = fleet::DrainMode::kCampaignEnd;
        fleet::SocketTransport transport(
            fleet::SocketTransport::Connect{split_endpoints(connect_to)});
        return fleet::Coordinator(name, options).run(transport);
      }
      fleet::FileQueueTransport transport(
          connect_to, fleet::FileQueueTransport::Role::kCoordinator,
          "coordinator-" + std::to_string(getpid()));
      return fleet::Coordinator(name, options).run(transport);
    } catch (const std::exception& error) {
      return "--connect " + connect_to + ": " + error.what();
    }
  }();
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.error().c_str());
    return 64;
  }
  const core::CampaignResult& campaign = result.value().result;
  std::printf("scenario %s (fleet of %zu): %zu runs, %zu detections, "
              "%zu distinct signatures\n",
              name.c_str(), shards, campaign.total_runs,
              campaign.total_detections, campaign.distinct_failures.size());
  for (const auto& [signature, report] : campaign.distinct_failures) {
    std::printf("  %s\n", signature.c_str());
  }
  if (!export_path.empty()) {
    if (const int code = export_corpus(result.value().corpus, export_path)) {
      return code;
    }
  }
  const bool ok = entry->oracle.satisfied(campaign);
  std::printf("oracle [%s]: %s\n", entry->oracle.description.c_str(),
              ok ? "satisfied" : "NOT satisfied");
  if (show_metrics) {
    std::printf("%s", core::render(campaign.metrics).c_str());
  }
  if (!trace_path.empty()) {
    if (const int code = write_trace_file(trace_path, "coordinator",
                                          result.value().node_traces)) {
      return code;
    }
  }
  return ok ? 0 : 2;
}

int run_serve_mode(const std::string& dir) {
  using namespace ptest;
  fleet::WorkerOptions options;
  options.idle_sleep_us = kSpoolIdleSleepUs;
  options.poll_limit = kSpoolPollLimit;
  options.node = "worker-" + std::to_string(getpid());
  try {
    fleet::FileQueueTransport transport(
        dir, fleet::FileQueueTransport::Role::kWorker, options.node);
    const auto served = fleet::Worker(options).serve(transport);
    if (!served.ok()) {
      std::fprintf(stderr, "%s\n", served.error().c_str());
      return 1;
    }
    std::printf("worker: served %zu shard(s)\n", served.value());
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "--serve %s: %s\n", dir.c_str(), error.what());
    return 64;
  }
}

int run_listen_mode(std::uint16_t port) {
  using namespace ptest;
  fleet::WorkerOptions options;
  options.idle_sleep_us = kSpoolIdleSleepUs;
  // Persistent daemon: survives campaign-end frames and waits for the
  // next coordinator; only a shutdown frame (or days of total silence
  // under the default poll limit) ends it.
  options.persistent = true;
  options.node = "daemon-" + std::to_string(getpid());
  try {
    fleet::SocketTransport transport(fleet::SocketTransport::Listen{port});
    // Scripts parse this line to learn a kernel-assigned (--listen 0)
    // port, so it must flush before the serve loop blocks.
    std::printf("listening on port %u\n",
                static_cast<unsigned>(transport.port()));
    std::fflush(stdout);
    const auto served = fleet::Worker(options).serve(transport);
    if (!served.ok()) {
      std::fprintf(stderr, "%s\n", served.error().c_str());
      return 1;
    }
    std::printf("worker: served %zu shard(s)\n", served.value());
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "--listen %u: %s\n", static_cast<unsigned>(port),
                 error.what());
    return 64;
  }
}

int run_halt_mode(const std::string& endpoints_csv) {
  using namespace ptest;
  try {
    fleet::SocketTransport transport(
        fleet::SocketTransport::Connect{split_endpoints(endpoints_csv)});
    const std::string frame = fleet::encode_shutdown();
    const std::size_t peers = transport.peers();
    for (std::size_t i = 0; i < peers; ++i) {
      std::uint64_t polls = 0;
      while (!transport.send(frame)) {
        if (++polls > kSpoolPollLimit) {
          std::fprintf(stderr, "--halt-fleet: shutdown send jammed\n");
          return 1;
        }
        usleep(kSpoolIdleSleepUs);
      }
    }
    std::printf("halt broadcast to %zu daemon(s)\n", peers);
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "--halt-fleet: %s\n", error.what());
    return 64;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ptest;

  std::string workload_name = "quicksort";
  std::string pd = "fig5";
  core::PtestConfig config;
  config.distributions = kFig5;
  std::uint64_t runs = 1;
  bool runs_given = false;
  bool seed_given = false;
  bool campaign_mode = false;
  bool show_metrics = false;
  std::size_t jobs = 1;
  std::string scenario_name;
  bool benign = false;
  bool list_mode = false;
  bool markdown = false;
  bool guided_mode = false;
  std::size_t epochs = 0;          // 0 = guided default
  std::size_t epoch_sessions = 0;  // 0 = guided default
  std::string corpus_path;
  std::size_t fleet_shards = 0;  // 0 = not a fleet run
  std::string serve_dir;
  std::string connect_to;  // spool DIR or HOST:PORT[,HOST:PORT...]
  bool listen_given = false;
  std::uint16_t listen_port = 0;
  bool halt_fleet = false;
  std::string export_path;
  std::string trace_path;
  bool status = false;
  // First plan-shaping flag seen; scenarios carry their own plan, so
  // these are rejected in scenario mode rather than silently ignored.
  std::string plan_flag;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--workload" || flag == "--op" || flag == "--n" ||
        flag == "--s" || flag == "--spacing" || flag == "--gc-fault" ||
        flag == "--pd") {
      if (plan_flag.empty()) plan_flag = flag;
    }
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(64);
      }
      return argv[++i];
    };
    // For budget flags where 0 is meaningless, 0 doubles internally as
    // "not given" — so an explicit 0 or a non-numeric value must be a
    // usage error, not a silent fall-through to the default.
    const auto positive = [&](const char* text) -> std::size_t {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(text, &end, 10);
      if (*text < '0' || *text > '9' || end == text || *end != '\0' ||
          parsed == 0) {
        std::fprintf(stderr, "%s needs a positive integer, got '%s'\n",
                     flag.c_str(), text);
        std::exit(64);
      }
      return static_cast<std::size_t>(parsed);
    };
    if (flag == "--workload") {
      workload_name = value();
    } else if (flag == "--scenario") {
      scenario_name = value();
    } else if (flag == "--benign") {
      benign = true;
    } else if (flag == "--list-scenarios") {
      list_mode = true;
    } else if (flag == "--markdown") {
      markdown = true;
    } else if (flag == "--guided") {
      guided_mode = true;
    } else if (flag == "--epochs") {
      epochs = positive(value());
    } else if (flag == "--epoch-sessions") {
      epoch_sessions = positive(value());
    } else if (flag == "--corpus") {
      corpus_path = value();
    } else if (flag == "--fleet") {
      fleet_shards = positive(value());
    } else if (flag == "--serve") {
      serve_dir = value();
    } else if (flag == "--listen") {
      // 0 is meaningful here (kernel-assigned port), so this does not
      // go through positive().
      const char* text = value();
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(text, &end, 10);
      if (*text < '0' || *text > '9' || end == text || *end != '\0' ||
          parsed > 65535) {
        std::fprintf(stderr, "--listen needs a port (0-65535), got '%s'\n",
                     text);
        return 64;
      }
      listen_given = true;
      listen_port = static_cast<std::uint16_t>(parsed);
    } else if (flag == "--halt-fleet") {
      halt_fleet = true;
    } else if (flag == "--connect") {
      connect_to = value();
    } else if (flag == "--export-corpus") {
      export_path = value();
    } else if (flag == "--trace") {
      trace_path = value();
    } else if (flag == "--status") {
      status = true;
    } else if (flag == "--op") {
      const auto op = pattern::merge_op_from_string(value());
      if (!op) {
        std::fprintf(stderr, "unknown merge op\n");
        return 64;
      }
      config.op = *op;
    } else if (flag == "--n") {
      config.n = std::strtoull(value(), nullptr, 10);
    } else if (flag == "--s") {
      config.s = std::strtoull(value(), nullptr, 10);
    } else if (flag == "--seed") {
      config.seed = std::strtoull(value(), nullptr, 10);
      seed_given = true;
    } else if (flag == "--runs") {
      runs = std::strtoull(value(), nullptr, 10);
      runs_given = true;
    } else if (flag == "--jobs") {
      campaign_mode = true;
      jobs = std::strtoull(value(), nullptr, 10);
    } else if (flag == "--spacing") {
      config.command_spacing = std::strtoull(value(), nullptr, 10);
    } else if (flag == "--gc-fault") {
      config.kernel.fault_plan.gc_corruption = true;
      config.kernel.fault_plan.churn_threshold = 24;
      config.kernel.fault_plan.live_block_threshold = 20;
      config.restart_at_accept = true;
    } else if (flag == "--pd") {
      pd = value();
    } else if (flag == "--metrics") {
      show_metrics = true;
    } else if (flag == "--help" || flag == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      usage(argv[0]);
      return 64;
    }
  }

  // Mode-flag hygiene, both directions: scenario-only flags are rejected
  // outside their mode just like plan flags are rejected inside it — a
  // silently ignored flag reads as a run that honoured it.
  if (markdown && !list_mode) {
    std::fprintf(stderr, "--markdown requires --list-scenarios\n");
    return 64;
  }
  if (!trace_path.empty() &&
      (list_mode || !serve_dir.empty() || listen_given || halt_fleet)) {
    std::fprintf(stderr, "--trace records a run: it conflicts with "
                         "--serve/--listen/--halt-fleet/--list-scenarios\n");
    return 64;
  }
  if (status && (halt_fleet || (fleet_shards == 0 && connect_to.empty()))) {
    std::fprintf(stderr, "--status reports fleet liveness: it requires a "
                         "--fleet/--connect coordinator run\n");
    return 64;
  }
  if (benign && scenario_name.empty()) {
    std::fprintf(stderr, "--benign requires --scenario\n");
    return 64;
  }
  if ((guided_mode || epochs != 0 || epoch_sessions != 0 ||
       !corpus_path.empty()) &&
      scenario_name.empty()) {
    std::fprintf(stderr, "--guided/--epochs/--epoch-sessions/--corpus "
                         "require --scenario\n");
    return 64;
  }
  if (!guided_mode && (epochs != 0 || epoch_sessions != 0 ||
                       !corpus_path.empty())) {
    std::fprintf(stderr,
                 "--epochs/--epoch-sessions/--corpus require --guided\n");
    return 64;
  }
  if (guided_mode && benign) {
    std::fprintf(stderr, "--guided drives the buggy plan only (the corpus "
                         "would mix plans); drop --benign\n");
    return 64;
  }
  if (guided_mode && runs_given) {
    std::fprintf(stderr, "--runs conflicts with --guided (use --epochs and "
                         "--epoch-sessions)\n");
    return 64;
  }
  if (!serve_dir.empty() &&
      (!scenario_name.empty() || !connect_to.empty() || fleet_shards != 0 ||
       guided_mode || list_mode || !export_path.empty() || benign ||
       runs_given || campaign_mode || !plan_flag.empty() || listen_given ||
       halt_fleet)) {
    std::fprintf(stderr, "--serve takes no other flags: the coordinator "
                         "decides what this worker runs\n");
    return 64;
  }
  if (listen_given &&
      (!scenario_name.empty() || !connect_to.empty() || fleet_shards != 0 ||
       guided_mode || list_mode || !export_path.empty() || benign ||
       runs_given || campaign_mode || !plan_flag.empty() || halt_fleet)) {
    std::fprintf(stderr, "--listen takes no other flags: the coordinator "
                         "decides what this daemon runs\n");
    return 64;
  }
  if (halt_fleet) {
    if (connect_to.find(':') == std::string::npos) {
      std::fprintf(stderr,
                   "--halt-fleet requires --connect HOST:PORT[,...]\n");
      return 64;
    }
    if (!scenario_name.empty() || fleet_shards != 0 || guided_mode ||
        list_mode || !export_path.empty() || benign || runs_given ||
        campaign_mode || !plan_flag.empty()) {
      std::fprintf(stderr, "--halt-fleet takes only --connect: it ends the "
                           "daemons, it runs nothing\n");
      return 64;
    }
  }
  if (!halt_fleet && (fleet_shards != 0 || !connect_to.empty()) &&
      scenario_name.empty()) {
    std::fprintf(stderr, "--fleet/--connect require --scenario\n");
    return 64;
  }
  if ((fleet_shards != 0 || !connect_to.empty()) && (guided_mode || benign)) {
    std::fprintf(stderr, "--fleet/--connect shard the buggy plan only; "
                         "drop --guided/--benign\n");
    return 64;
  }
  if (!export_path.empty() && (scenario_name.empty() || guided_mode ||
                               benign)) {
    std::fprintf(stderr, "--export-corpus requires a buggy-plan --scenario "
                         "run (plain or fleet)\n");
    return 64;
  }
  if (!serve_dir.empty()) {
    return run_serve_mode(serve_dir);
  }
  if (listen_given) {
    return run_listen_mode(listen_port);
  }
  if (halt_fleet) {
    return run_halt_mode(connect_to);
  }
  if (list_mode) {
    list_scenarios(markdown);
    return 0;
  }
  // Every remaining mode is a run; arm the recorder before any plan
  // compiles so the first "compile" span is captured too.
  if (!trace_path.empty()) obs::TraceRecorder::instance().enable();
  if (!scenario_name.empty()) {
    if (!plan_flag.empty()) {
      std::fprintf(stderr,
                   "%s conflicts with --scenario: the scenario carries its "
                   "own plan (use --runs/--jobs/--seed/--benign)\n",
                   plan_flag.c_str());
      return 64;
    }
    if (guided_mode) {
      return run_guided_mode(
          scenario_name, epochs, epoch_sessions, corpus_path, jobs,
          seed_given ? std::optional<std::uint64_t>(config.seed)
                     : std::nullopt,
          show_metrics, trace_path);
    }
    if (fleet_shards != 0 || !connect_to.empty()) {
      return run_fleet_mode(
          scenario_name, fleet_shards == 0 ? 2 : fleet_shards, connect_to,
          runs_given ? runs : 0, jobs,
          seed_given ? std::optional<std::uint64_t>(config.seed)
                     : std::nullopt,
          show_metrics, export_path, trace_path, status);
    }
    return run_scenario_mode(
        scenario_name, benign, runs_given ? runs : 0, jobs,
        seed_given ? std::optional<std::uint64_t>(config.seed) : std::nullopt,
        show_metrics, export_path, trace_path);
  }

  if (pd == "uniform") {
    config.distributions.clear();
  } else if (pd != "fig5") {
    config.distributions = pd;  // raw DistributionSpec::parse text
  }

  core::WorkloadSetup setup;
  if (workload_name == "quicksort") {
    config.program_id = workload::kQuicksortProgramId;
    setup = workload::register_quicksort;
  } else if (workload_name == "philosophers" ||
             workload_name == "philosophers-fixed") {
    config.program_id = workload::kPhilosopherProgramId;
    config.n = std::min<std::size_t>(config.n, 3);
    const bool buggy = workload_name == "philosophers";
    setup = [buggy](pcore::PcoreKernel& kernel) {
      (void)workload::register_philosophers(kernel, buggy, /*meals=*/500);
    };
  } else {
    std::fprintf(stderr, "unknown workload '%s'\n", workload_name.c_str());
    return 64;
  }

  if (campaign_mode) {
    // One arm carrying the configured (op, PD); the campaign machinery
    // shards the budget across the worker pool.  Nothing printed below
    // depends on the jobs value — that is the determinism contract.
    core::CampaignArm arm;
    arm.name = std::string(pattern::to_string(config.op)) + "/" +
               (pd == "fig5" || pd == "uniform" ? pd : "custom");
    arm.op = config.op;
    arm.distributions = config.distributions;
    core::CampaignOptions options;
    options.budget = runs;
    options.jobs = jobs;
    core::Campaign campaign(config, {arm}, setup, options);
    const core::CampaignResult result = campaign.run();

    std::printf("campaign: %zu runs, 1 arm, seed=%llu\n", result.total_runs,
                static_cast<unsigned long long>(config.seed));
    const core::ArmStats& stats = result.arm_stats[0];
    std::printf("arm %-24s runs=%zu detections=%zu (rate %.3f)\n",
                arm.name.c_str(), stats.runs, stats.detections,
                stats.detection_rate());
    std::printf("distinct failure signatures: %zu\n",
                result.distinct_failures.size());
    for (const auto& entry : result.distinct_failures) {
      std::printf("  %s\n", entry.first.c_str());
    }
    if (show_metrics) {
      std::printf("%s", core::render(result.metrics).c_str());
    }
    if (!trace_path.empty()) {
      if (const int code = write_trace_file(trace_path, "ptest", {})) {
        return code;
      }
    }
    return result.total_detections == 0 ? 0 : 2;
  }

  // Compile the fixed artifact (alphabet, regex, PFA, distributions)
  // once; each run only re-seeds sampling and the session.
  const auto wall_start = std::chrono::steady_clock::now();
  support::Metrics metrics;
  const core::CompiledTestPlanPtr plan = core::compile(config);
  metrics.add_plan_compiles();
  const std::uint64_t base_seed = config.seed;
  int exit_code = 0;
  // One loop-lived sampling scratch: run 2 onward samples through warm
  // buffers (pfa::WalkScratch), and --metrics reports the reuse.
  pfa::WalkScratch scratch;
  for (std::uint64_t run = 0; run < runs; ++run) {
    const std::uint64_t seed = base_seed + run;
    const auto result = core::execute(*plan, seed, setup, scratch);
    metrics.add_sessions();
    metrics.add_plan_cache_hits();
    metrics.add_patterns_generated(result.patterns.size());
    metrics.add_scratch_reuse_hits(result.scratch_reuse_hits);
    metrics.add_sample_alloc_bytes_saved(result.sample_alloc_bytes_saved);
    std::printf("run %llu seed=%llu: %s (%zu commands, %llu ticks)\n",
                static_cast<unsigned long long>(run + 1),
                static_cast<unsigned long long>(seed),
                core::to_string(result.session.outcome),
                result.session.stats.commands_issued,
                static_cast<unsigned long long>(result.session.stats.ticks));
    if (result.session.report) {
      std::printf("\n%s\n",
                  result.session.report->render(plan->alphabet).c_str());
      exit_code = 2;
      break;
    }
  }
  if (show_metrics) {
    metrics.set_worker_threads(1);
    metrics.add_wall_ns(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - wall_start)
            .count()));
    std::printf("%s", core::render(metrics.snapshot()).c_str());
  }
  if (!trace_path.empty()) {
    if (const int code = write_trace_file(trace_path, "ptest", {})) {
      return code;
    }
  }
  return exit_code;
}
