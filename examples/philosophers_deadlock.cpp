// Case study 2 (paper §IV-B): a buggy dining-philosophers program — three
// pCore tasks, three mutually exclusive resources — driven with the
// *cyclic* merge operator so the tasks complete "several sets of cyclic
// execution sequences".  pTest detects the deadlock via its wait-for
// graph, dumps the Definition-2 state records, and replays the failure.
#include <cstdio>

#include "ptest/core/adaptive_test.hpp"
#include "ptest/core/replay.hpp"
#include "ptest/workload/philosophers.hpp"

int main() {
  using namespace ptest;

  core::PtestConfig config;
  config.n = 3;   // one pattern per philosopher
  config.s = 10;
  config.op = pattern::MergeOp::kCyclic;  // the deadlock-hunting operator
  config.program_id = workload::kPhilosopherProgramId;
  config.max_ticks = 100000;
  config.command_spacing = 12;

  const core::WorkloadSetup setup = [](pcore::PcoreKernel& kernel) {
    (void)workload::register_philosophers(kernel, /*buggy=*/true,
                                          /*meals=*/500);
  };

  pfa::Alphabet alphabet;
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    config.seed = seed;
    const auto result = core::adaptive_test(config, alphabet, setup);
    if (result.session.outcome == core::Outcome::kBug &&
        result.session.report->kind == core::BugKind::kDeadlock) {
      std::printf("deadlock found on seed %llu after %zu commands\n\n",
                  static_cast<unsigned long long>(seed),
                  result.session.stats.commands_issued);
      std::printf("%s\n", result.session.report->render(alphabet).c_str());

      const auto replayed =
          core::replay(*result.session.report, config, alphabet, setup);
      std::printf("replay: %s — %s\n", core::to_string(replayed.outcome),
                  core::verify_reproduces(*result.session.report, replayed)
                      ? "identical deadlock reproduced"
                      : "signature mismatch (unexpected)");
      return 0;
    }
  }
  std::printf("no deadlock in 64 runs (unexpected for the buggy variant)\n");
  return 1;
}
