# CTest driver: ptest_cli --jobs 1 and --jobs 4 must print identical
# campaign summaries for the same seed (the parallel runner's core
# determinism contract).  Invoked as:
#   cmake -DPTEST_CLI=<path> -P check_jobs_identical.cmake
#
# The suspend-heavy distribution against the buggy philosophers detects
# on a large fraction of runs, so the compared summaries carry real arm
# stats and failure signatures rather than trivially-empty ones.  The PD
# text is built with string(JOIN) because its ';' separators would split
# a plain CMake list, and it is expanded quoted so it stays one argv
# entry.
string(JOIN "; " suspend_heavy
  "TC -> TS = 0.8" "TC -> TCH = 0.1" "TC -> TD = 0.05" "TC -> TY = 0.05"
  "TCH -> TS = 0.8" "TCH -> TCH = 0.1" "TCH -> TD = 0.05" "TCH -> TY = 0.05"
  "TS -> TR = 1.0"
  "TR -> TS = 0.8" "TR -> TCH = 0.1" "TR -> TD = 0.05" "TR -> TY = 0.05")
set(args --workload philosophers --s 10 --spacing 12 --runs 24 --seed 7)

execute_process(
  COMMAND ${PTEST_CLI} ${args} --pd "${suspend_heavy}" --jobs 1
  OUTPUT_VARIABLE serial_out RESULT_VARIABLE serial_rc)
execute_process(
  COMMAND ${PTEST_CLI} ${args} --pd "${suspend_heavy}" --jobs 4
  OUTPUT_VARIABLE parallel_out RESULT_VARIABLE parallel_rc)

if(NOT serial_rc EQUAL parallel_rc)
  message(FATAL_ERROR "exit codes differ: jobs=1 -> ${serial_rc}, "
                      "jobs=4 -> ${parallel_rc}")
endif()
if(serial_out STREQUAL "")
  message(FATAL_ERROR "ptest_cli produced no output")
endif()
if(NOT serial_out STREQUAL parallel_out)
  message(FATAL_ERROR "campaign summaries differ between --jobs 1 and "
                      "--jobs 4:\n--- jobs=1 ---\n${serial_out}\n"
                      "--- jobs=4 ---\n${parallel_out}")
endif()
if(NOT serial_out MATCHES "detections=([1-9])")
  message(FATAL_ERROR "expected a detecting configuration, got:\n"
                      "${serial_out}")
endif()
message(STATUS "jobs=1 and jobs=4 summaries identical (with detections)")
