// Model-coverage analysis (paper §V future work): how thoroughly do the
// generated patterns exercise the pCore PFA?  Prints state/transition
// coverage as a function of the number of patterns, with and without
// duplicate suppression, plus the PFA itself in Graphviz form.
#include <cstdio>

#include "ptest/bridge/protocol.hpp"
#include "ptest/pattern/coverage.hpp"
#include "ptest/pattern/dedup.hpp"
#include "ptest/pattern/generator.hpp"

int main() {
  using namespace ptest;

  pfa::Alphabet alphabet;
  bridge::intern_service_alphabet(alphabet);
  const pfa::Regex regex =
      pfa::Regex::parse("TC((TCH)* | TS TR (TCH)*)* (TD$ | TY$)", alphabet);
  const pfa::DistributionSpec spec = pfa::DistributionSpec::parse(
      "TC -> TCH = 0.6; TC -> TS = 0.2; TC -> TD = 0.1; TC -> TY = 0.1;"
      "TCH -> TCH = 0.6; TCH -> TS = 0.2; TCH -> TD = 0.1; TCH -> TY = 0.1;"
      "TS -> TR = 1.0;"
      "TR -> TCH = 0.4; TR -> TS = 0.3; TR -> TY = 0.2; TR -> TD = 0.1",
      alphabet);
  const pfa::Pfa pfa = pfa::Pfa::from_regex(regex, spec, alphabet);

  std::printf("pCore PFA (paper Fig. 5), Graphviz:\n%s\n",
              pfa.to_dot(alphabet).c_str());

  std::printf("patterns | transition coverage | unique patterns\n");
  std::printf("---------+---------------------+----------------\n");
  for (const std::size_t count : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    pattern::PatternGenerator generator(pfa, {.size = 8}, support::Rng(7));
    pattern::CoverageTracker tracker(pfa);
    pattern::PatternDeduper deduper;
    for (std::size_t i = 0; i < count; ++i) {
      const auto pattern = generator.generate();
      tracker.observe(pattern);
      (void)deduper.insert(pattern);
    }
    const auto report = tracker.report();
    std::printf("%8zu | %8.1f%% (%zu/%zu)  | %zu\n", count,
                report.transition_coverage * 100.0,
                report.transitions_covered, report.transitions_total,
                deduper.unique_count());
  }
  return 0;
}
