// Learning the PFA's probability distributions from traces — the paper's
// "knowledge about probability distributions can be learned through system
// profiling" (§I).
//
// We simulate a production workload driving pCore (here: sampled from a
// hidden "true" usage profile), record its service traces, estimate a
// bigram distribution with the TraceEstimator, and show that the learned
// PFA's statistics converge to the hidden profile.
#include <cstdio>

#include "ptest/bridge/protocol.hpp"
#include "ptest/pfa/estimator.hpp"
#include "ptest/pfa/pfa.hpp"

int main() {
  using namespace ptest;

  pfa::Alphabet alphabet;
  bridge::intern_service_alphabet(alphabet);
  const pfa::Regex regex =
      pfa::Regex::parse("TC((TCH)* | TS TR (TCH)*)* (TD$ | TY$)", alphabet);

  // Hidden profile of the "production" system (unknown to the tester).
  const pfa::DistributionSpec hidden = pfa::DistributionSpec::parse(
      "TC -> TS = 0.5; TC -> TCH = 0.3; TC -> TD = 0.1; TC -> TY = 0.1;"
      "TCH -> TCH = 0.2; TCH -> TS = 0.5; TCH -> TD = 0.2; TCH -> TY = 0.1;"
      "TS -> TR = 1.0;"
      "TR -> TS = 0.5; TR -> TCH = 0.2; TR -> TD = 0.2; TR -> TY = 0.1",
      alphabet);
  const pfa::Pfa production = pfa::Pfa::from_regex(regex, hidden, alphabet);

  std::printf("traces | est. P(TS|TC) (true 0.50) | est. P(TR|TS) (true 1.0)\n");
  std::printf("-------+----------------------------+------------------------\n");
  for (const int trace_count : {10, 100, 1000, 10000}) {
    support::Rng rng(42);
    pfa::TraceEstimator estimator(/*smoothing=*/0.5);
    pfa::WalkOptions options;
    options.size = 64;  // full lifecycles
    for (int i = 0; i < trace_count; ++i) {
      estimator.observe(production.sample(rng, options).symbols);
    }
    const pfa::Pfa learned = pfa::Pfa::from_regex(
        regex, estimator.estimate(alphabet.size()), alphabet);
    // Read the learned transition probabilities off the PFA edges.
    const auto prob = [&](const char* from_ctx, const char* to) {
      for (const auto& state : learned.states()) {
        if (state.contexts.size() == 1 &&
            state.contexts.front() == alphabet.at(from_ctx)) {
          for (const auto& t : state.transitions) {
            if (t.symbol == alphabet.at(to)) return t.probability;
          }
        }
      }
      return 0.0;
    };
    std::printf("%6d | %26.3f | %22.3f\n", trace_count, prob("TC", "TS"),
                prob("TS", "TR"));
  }
  std::printf("\nThe estimated PFA can be fed straight back into "
              "PtestConfig::distributions.\n");
  return 0;
}
