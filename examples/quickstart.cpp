// Quickstart: the pTest pipeline in ~60 lines.
//
// 1. Describe the slave's service lifecycles as a regular expression
//    (paper Eq. (2)) and give transition probabilities (paper Fig. 5).
// 2. Ask pTest to build the PFA, sample n patterns of size s, merge them
//    with the op of your choice, and stress the simulated pCore slave.
// 3. Inspect the outcome: pass, or a bug report with everything needed to
//    reproduce.
#include <cstdio>

#include "ptest/core/adaptive_test.hpp"
#include "ptest/workload/quicksort.hpp"

int main() {
  using namespace ptest;

  core::PtestConfig config;
  config.regex = "TC((TCH)* | TS TR (TCH)*)* (TD$ | TY$)";  // Eq. (2)
  config.distributions =
      "TC -> TCH = 0.6; TC -> TS = 0.2; TC -> TD = 0.1; TC -> TY = 0.1;"
      "TCH -> TCH = 0.6; TCH -> TS = 0.2; TCH -> TD = 0.1; TCH -> TY = 0.1;"
      "TS -> TR = 1.0;"
      "TR -> TCH = 0.4; TR -> TS = 0.3; TR -> TY = 0.2; TR -> TD = 0.1";
  config.n = 4;                              // concurrent tasks under test
  config.s = 8;                              // services per pattern
  config.op = pattern::MergeOp::kRoundRobin; // merge operator
  config.program_id = workload::kQuicksortProgramId;

  pfa::Alphabet alphabet;
  const core::AdaptiveTestResult result =
      core::adaptive_test(config, alphabet, workload::register_quicksort);

  std::printf("generated %zu patterns:\n", result.patterns.size());
  for (std::size_t i = 0; i < result.patterns.size(); ++i) {
    std::printf("  T[%zu] = %s\n", i + 1,
                alphabet.render(result.patterns[i].symbols).c_str());
  }
  std::printf("merged pattern M = %s\n",
              result.merged.render(alphabet).c_str());
  std::printf("outcome: %s after %llu ticks, %zu commands (%zu rejected)\n",
              core::to_string(result.session.outcome),
              static_cast<unsigned long long>(result.session.stats.ticks),
              result.session.stats.commands_issued,
              result.session.stats.commands_failed);
  if (result.session.report) {
    std::printf("%s\n", result.session.report->render(alphabet).c_str());
  }
  return result.session.outcome == core::Outcome::kPassed ? 0 : 1;
}
