// Shared internal SRAM of the simulated OMAP5912 (250 KB on the real part).
//
// Both cores read and write it; the bridge places its command/response
// rings here.  Accesses are bounds-checked; a trivial bump allocator hands
// out non-overlapping regions to subsystems at setup time (the real
// platform assigns these regions in the board support package).
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace ptest::sim {

class SharedSram {
 public:
  static constexpr std::size_t kDefaultSize = 250 * 1024;

  explicit SharedSram(std::size_t size = kDefaultSize) : bytes_(size, 0) {}

  [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }

  /// Reserves `size` bytes aligned to `alignment`; returns the offset.
  /// Throws std::length_error when the SRAM is exhausted.
  [[nodiscard]] std::size_t reserve(std::size_t size,
                                    std::size_t alignment = 8);

  /// Remaining unreserved bytes.
  [[nodiscard]] std::size_t available() const noexcept {
    return bytes_.size() - reserved_;
  }

  template <typename T>
  [[nodiscard]] T read(std::size_t offset) const {
    static_assert(std::is_trivially_copyable_v<T>);
    check(offset, sizeof(T));
    T value;
    std::memcpy(&value, bytes_.data() + offset, sizeof(T));
    return value;
  }

  template <typename T>
  void write(std::size_t offset, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    check(offset, sizeof(T));
    std::memcpy(bytes_.data() + offset, &value, sizeof(T));
  }

 private:
  void check(std::size_t offset, std::size_t size) const {
    if (offset + size > bytes_.size()) {
      throw std::out_of_range("SharedSram: access [" + std::to_string(offset) +
                              ", " + std::to_string(offset + size) +
                              ") beyond size " + std::to_string(bytes_.size()));
    }
  }

  std::vector<std::uint8_t> bytes_;
  std::size_t reserved_ = 0;
};

}  // namespace ptest::sim
