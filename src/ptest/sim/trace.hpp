// Bounded execution trace shared by all simulated components.
//
// The paper's bug detector "dumps the related information to help users
// reproduce the bugs"; the trace log is that information.  It is a ring of
// the most recent events so long stress runs stay in constant memory.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "ptest/sim/clock.hpp"

namespace ptest::sim {

enum class TraceCategory : std::uint8_t {
  kKernel,     // slave kernel service execution / scheduling
  kMailbox,    // inter-core mailbox traffic
  kBridge,     // command/response protocol
  kMaster,     // master thread activity
  kDetector,   // bug-detector observations
  kFault,      // injected-fault activations
};

[[nodiscard]] const char* to_string(TraceCategory category) noexcept;

struct TraceEvent {
  Tick tick = 0;
  TraceCategory category = TraceCategory::kKernel;
  std::string message;
};

class TraceLog {
 public:
  explicit TraceLog(std::size_t capacity = 4096) : capacity_(capacity) {}

  void record(Tick tick, TraceCategory category, std::string message);

  /// Most recent events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> tail(std::size_t count) const;
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  /// Total events ever recorded (including evicted ones).
  [[nodiscard]] std::uint64_t total_recorded() const noexcept {
    return total_;
  }
  void clear();

  /// Renders events as "tick [category] message" lines.
  [[nodiscard]] std::string render(std::size_t count) const;

 private:
  std::size_t capacity_;
  std::deque<TraceEvent> events_;
  std::uint64_t total_ = 0;
};

}  // namespace ptest::sim
