#include "ptest/sim/soc.hpp"

namespace ptest::sim {

Soc::Soc(const SocConfig& config)
    : sram_(config.sram_size),
      mailboxes_(config.mailbox_latency),
      trace_(config.trace_capacity) {}

bool Soc::step() {
  bool keep_running = true;
  for (Device* device : devices_) {
    if (!device->tick(*this)) keep_running = false;
  }
  clock_.advance();
  return keep_running;
}

Tick Soc::run(Tick max_ticks) {
  Tick executed = 0;
  while (executed < max_ticks) {
    ++executed;
    if (!step()) break;
  }
  return executed;
}

}  // namespace ptest::sim
