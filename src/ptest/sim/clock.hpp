// Virtual time for the deterministic dual-core simulation.
//
// One Tick is one simulation step of the SoC (both cores step once per
// tick; the OMAP5912's ARM and DSP run at the same 192 MHz clock, so a
// 1:1 interleave is faithful to the platform's coarse timing).
#pragma once

#include <cstdint>

namespace ptest::sim {

using Tick = std::uint64_t;

class VirtualClock {
 public:
  [[nodiscard]] Tick now() const noexcept { return now_; }
  void advance() noexcept { ++now_; }

 private:
  Tick now_ = 0;
};

}  // namespace ptest::sim
