#include "ptest/sim/shared_memory.hpp"

namespace ptest::sim {

std::size_t SharedSram::reserve(std::size_t size, std::size_t alignment) {
  if (alignment == 0 || (alignment & (alignment - 1)) != 0) {
    throw std::invalid_argument("SharedSram::reserve: bad alignment");
  }
  const std::size_t aligned = (reserved_ + alignment - 1) & ~(alignment - 1);
  if (aligned + size > bytes_.size()) {
    throw std::length_error("SharedSram::reserve: out of shared memory");
  }
  reserved_ = aligned + size;
  return aligned;
}

}  // namespace ptest::sim
