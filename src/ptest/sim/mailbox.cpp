#include "ptest/sim/mailbox.hpp"

namespace ptest::sim {

bool Mailbox::post(Tick now, std::uint32_t word) {
  if (full()) return false;
  fifo_.push_back({now + latency_, word});
  ++posted_;
  return true;
}

bool Mailbox::pending(Tick now) const noexcept {
  return !fifo_.empty() && fifo_.front().visible_at <= now;
}

std::optional<std::uint32_t> Mailbox::take(Tick now) {
  if (!pending(now)) return std::nullopt;
  const std::uint32_t word = fifo_.front().word;
  fifo_.pop_front();
  ++delivered_;
  return word;
}

MailboxBank::MailboxBank(Tick delivery_latency) {
  boxes_.reserve(kCount);
  boxes_.emplace_back(CoreId::kArm, CoreId::kDsp, 4, delivery_latency);
  boxes_.emplace_back(CoreId::kArm, CoreId::kDsp, 4, delivery_latency);
  boxes_.emplace_back(CoreId::kDsp, CoreId::kArm, 4, delivery_latency);
  boxes_.emplace_back(CoreId::kDsp, CoreId::kArm, 4, delivery_latency);
}

Mailbox& MailboxBank::box(std::size_t index) {
  if (index >= boxes_.size()) {
    throw std::out_of_range("MailboxBank: index out of range");
  }
  return boxes_[index];
}

const Mailbox& MailboxBank::box(std::size_t index) const {
  if (index >= boxes_.size()) {
    throw std::out_of_range("MailboxBank: index out of range");
  }
  return boxes_[index];
}

bool MailboxBank::interrupt_pending(CoreId core, Tick now) const {
  for (const Mailbox& box : boxes_) {
    if (box.receiver() == core && box.pending(now)) return true;
  }
  return false;
}

}  // namespace ptest::sim
