#include "ptest/sim/trace.hpp"

#include <sstream>

namespace ptest::sim {

const char* to_string(TraceCategory category) noexcept {
  switch (category) {
    case TraceCategory::kKernel: return "kernel";
    case TraceCategory::kMailbox: return "mailbox";
    case TraceCategory::kBridge: return "bridge";
    case TraceCategory::kMaster: return "master";
    case TraceCategory::kDetector: return "detector";
    case TraceCategory::kFault: return "fault";
  }
  return "?";
}

void TraceLog::record(Tick tick, TraceCategory category, std::string message) {
  if (capacity_ == 0) return;
  if (events_.size() == capacity_) events_.pop_front();
  events_.push_back({tick, category, std::move(message)});
  ++total_;
}

std::vector<TraceEvent> TraceLog::tail(std::size_t count) const {
  const std::size_t take = std::min(count, events_.size());
  return {events_.end() - static_cast<std::ptrdiff_t>(take), events_.end()};
}

void TraceLog::clear() {
  events_.clear();
  total_ = 0;
}

std::string TraceLog::render(std::size_t count) const {
  std::ostringstream out;
  for (const TraceEvent& e : tail(count)) {
    out << e.tick << " [" << to_string(e.category) << "] " << e.message
        << '\n';
  }
  return out.str();
}

}  // namespace ptest::sim
