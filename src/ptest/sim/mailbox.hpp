// The OMAP5912 mailbox block: four unidirectional word mailboxes used for
// inter-processor signalling (two per direction on the real part).
//
// A write enqueues a 32-bit word; the word becomes visible to the receiver
// `delivery_latency` ticks later (modelling the interconnect), at which
// point the receiving core's pending flag (interrupt line) is raised.  The
// FIFO depth matches the hardware's shallow queues; writing to a full
// mailbox fails, which the bridge handles with retry — exactly the polling
// behaviour the paper describes for "processors polling events through
// shared memory and sending events by triggering interrupts".
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <stdexcept>
#include <vector>

#include "ptest/sim/clock.hpp"

namespace ptest::sim {

enum class CoreId : std::uint8_t { kArm = 0, kDsp = 1 };

[[nodiscard]] constexpr const char* to_string(CoreId core) noexcept {
  return core == CoreId::kArm ? "ARM" : "DSP";
}

class Mailbox {
 public:
  Mailbox(CoreId sender, CoreId receiver, std::size_t depth = 4,
          Tick delivery_latency = 2)
      : sender_(sender),
        receiver_(receiver),
        depth_(depth),
        latency_(delivery_latency) {}

  [[nodiscard]] CoreId sender() const noexcept { return sender_; }
  [[nodiscard]] CoreId receiver() const noexcept { return receiver_; }

  /// Posts a word at time `now`; false if the FIFO is full.
  bool post(Tick now, std::uint32_t word);

  /// True if a word is deliverable at time `now` (latency elapsed).
  [[nodiscard]] bool pending(Tick now) const noexcept;

  /// Takes the next deliverable word, or nullopt.
  std::optional<std::uint32_t> take(Tick now);

  [[nodiscard]] std::size_t queued() const noexcept { return fifo_.size(); }
  [[nodiscard]] bool full() const noexcept { return fifo_.size() >= depth_; }

  /// Words posted / delivered since construction (for Table I accounting).
  [[nodiscard]] std::uint64_t posted_count() const noexcept { return posted_; }
  [[nodiscard]] std::uint64_t delivered_count() const noexcept {
    return delivered_;
  }

 private:
  struct Entry {
    Tick visible_at;
    std::uint32_t word;
  };

  CoreId sender_;
  CoreId receiver_;
  std::size_t depth_;
  Tick latency_;
  std::deque<Entry> fifo_;
  std::uint64_t posted_ = 0;
  std::uint64_t delivered_ = 0;
};

/// The four-mailbox bank of the OMAP5912: indices 0,1 are ARM -> DSP and
/// 2,3 are DSP -> ARM.
class MailboxBank {
 public:
  explicit MailboxBank(Tick delivery_latency = 2);

  [[nodiscard]] Mailbox& box(std::size_t index);
  [[nodiscard]] const Mailbox& box(std::size_t index) const;

  /// True if any mailbox addressed to `core` has a deliverable word.
  [[nodiscard]] bool interrupt_pending(CoreId core, Tick now) const;

  static constexpr std::size_t kCount = 4;

 private:
  std::vector<Mailbox> boxes_;
};

}  // namespace ptest::sim
