// The simulated OMAP5912 SoC: two cores (ARM master, DSP slave), the
// mailbox bank, and shared SRAM, driven by one deterministic tick loop.
//
// Substitution note (DESIGN.md §2): pTest observes the platform only
// through mailbox semantics, shared-memory polling and relative core
// progress.  The simulator exposes exactly those; determinism (everything
// sequenced by the tick loop, all randomness from seeded Rng streams) is
// what makes the paper's bug reproduction claim checkable.
#pragma once

#include <memory>
#include <vector>

#include "ptest/sim/clock.hpp"
#include "ptest/sim/mailbox.hpp"
#include "ptest/sim/shared_memory.hpp"
#include "ptest/sim/trace.hpp"

namespace ptest::sim {

class Soc;

/// A device stepped once per tick (a core's software stack, or an observer
/// such as the bug detector).
class Device {
 public:
  virtual ~Device() = default;
  /// One tick of execution.  Return false to request simulation stop
  /// (e.g. the bug detector found a failure, or the committer finished).
  virtual bool tick(Soc& soc) = 0;
};

struct SocConfig {
  std::size_t sram_size = SharedSram::kDefaultSize;
  Tick mailbox_latency = 2;
  std::size_t trace_capacity = 4096;
};

class Soc {
 public:
  explicit Soc(const SocConfig& config = {});

  [[nodiscard]] VirtualClock& clock() noexcept { return clock_; }
  [[nodiscard]] const VirtualClock& clock() const noexcept { return clock_; }
  [[nodiscard]] Tick now() const noexcept { return clock_.now(); }

  [[nodiscard]] SharedSram& sram() noexcept { return sram_; }
  [[nodiscard]] MailboxBank& mailboxes() noexcept { return mailboxes_; }
  [[nodiscard]] TraceLog& trace() noexcept { return trace_; }

  void record(TraceCategory category, std::string message) {
    trace_.record(clock_.now(), category, std::move(message));
  }

  /// Registers a device; devices are stepped in registration order (ARM
  /// master first, then DSP slave, then observers — callers register in
  /// that order).
  void attach(Device& device) { devices_.push_back(&device); }

  /// Runs up to `max_ticks`; returns the tick count actually executed.
  /// Stops early when any device's tick() returns false.
  Tick run(Tick max_ticks);

  /// Steps one tick; false if any device requested stop.
  bool step();

 private:
  VirtualClock clock_;
  SharedSram sram_;
  MailboxBank mailboxes_;
  TraceLog trace_;
  std::vector<Device*> devices_;
};

}  // namespace ptest::sim
