#include "ptest/scenario/registry.hpp"

#include <stdexcept>

namespace ptest::scenario {

void ScenarioRegistry::add(Scenario scenario) {
  if (scenario.name.empty()) {
    throw std::invalid_argument("ScenarioRegistry: empty scenario name");
  }
  if (find(scenario.name) != nullptr) {
    throw std::invalid_argument("ScenarioRegistry: duplicate scenario '" +
                                scenario.name + "'");
  }
  scenarios_.push_back(std::move(scenario));
}

const Scenario* ScenarioRegistry::find(
    std::string_view name) const noexcept {
  for (const Scenario& scenario : scenarios_) {
    if (scenario.name == name) return &scenario;
  }
  return nullptr;
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(scenarios_.size());
  for (const Scenario& scenario : scenarios_) out.push_back(scenario.name);
  return out;
}

const ScenarioRegistry& ScenarioRegistry::builtin() {
  static const ScenarioRegistry registry = detail::build_builtin_catalog();
  return registry;
}

}  // namespace ptest::scenario
