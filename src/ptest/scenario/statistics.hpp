// Statistical validation of PFA sampling, per scenario.
//
// Definition 1 requires each PFA state's outgoing probabilities to sum
// to 1; Pfa::validate checks that algebraically, but nothing checked that
// Pfa::sample's MakeChoice actually *draws* with those probabilities.  In
// the spirit of distribution-free validation (cf. "Conformal changepoint
// localization", PAPERS.md) this module asserts a distributional property
// of the sampler rather than spot values: tally the transitions taken by
// many sampled walks and compare them to the PFA's transition matrix with
// a chi-square goodness-of-fit statistic.
//
// Determinism: walks are drawn from a caller-seeded Rng, so the statistic
// is an exact, reproducible number — tests compare it to a fixed critical
// value, not a flaky tolerance band.  Only the first `plan.config.s`
// symbols of each walk are tallied: beyond that point complete_to_accept
// steers the walk toward acceptance and the draws are intentionally
// biased away from P.
#pragma once

#include <cstdint>

#include "ptest/core/test_plan.hpp"

namespace ptest::scenario {

struct ChiSquareFit {
  /// Sum over included cells of (observed - expected)^2 / expected.
  double statistic = 0.0;
  /// Degrees of freedom: sum over included states of (out-degree - 1).
  std::size_t degrees_of_freedom = 0;
  /// Walks sampled and transitions tallied.
  std::size_t walks = 0;
  std::size_t transitions = 0;
  /// States skipped because an expected cell count fell below the
  /// classical chi-square floor of 5.
  std::size_t states_skipped = 0;
};

/// Samples `walks` pattern walks from the plan's PFA (seeded with `seed`)
/// and fits observed per-state transition frequencies against the PFA's
/// probabilities.  States with a single outgoing edge contribute no
/// degrees of freedom (the draw is forced); states where any expected
/// count is below 5 are skipped entirely (and counted in states_skipped)
/// so sparse cells cannot dominate the statistic.
[[nodiscard]] ChiSquareFit chi_square_fit(const core::CompiledTestPlan& plan,
                                          std::uint64_t seed,
                                          std::size_t walks);

/// Negative control: samples walks from `sampler`'s PFA but computes
/// expected counts from `reference`'s transition probabilities.  Both
/// plans must share the same regex (identical automaton skeleton; checked
/// with std::invalid_argument).  With genuinely different distributions
/// the statistic must explode past the critical value — proving the
/// goodness-of-fit test has the power to catch a miscalibrated sampler.
[[nodiscard]] ChiSquareFit chi_square_cross_fit(
    const core::CompiledTestPlan& sampler,
    const core::CompiledTestPlan& reference, std::uint64_t seed,
    std::size_t walks);

/// Upper critical value of the chi-square distribution with `df` degrees
/// of freedom at right-tail probability `alpha` (Wilson–Hilferty
/// approximation; exact enough for df >= 1 at the alphas tests use).
/// df == 0 returns 0: a fully-forced automaton fits trivially.
[[nodiscard]] double chi_square_critical(std::size_t df, double alpha);

}  // namespace ptest::scenario
