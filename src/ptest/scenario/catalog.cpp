// The built-in scenario catalog.
//
// Four original workloads (quicksort control, dining philosophers,
// the Fig. 1 livelock, the seeded-bug trio) plus the sync_bugs corpus —
// every entry carries the PFA plan that provokes its bug, the oracle
// that classifies it, and (where applicable) a benign counterpart the
// oracle must stay silent on.
//
// Plan conventions:
//   * crash-detected bugs (in-program assertions) run the paper's Eq. (2)
//     lifecycle regex with the Fig. 5 distributions — the faithful "paper
//     PFA configuration" — and arm panic_on_nonzero_exit;
//   * hang-detected bugs (no-termination) run a terminal-free lifecycle
//     regex "TC (TCH | TS TR)*": without TD/TY commands the committer
//     cannot retire a stuck task, so the detector's termination watchdog
//     observes the hang, exactly like the paper's "if processes do not
//     terminate ... synchronization anomalies" criterion;
//   * benign variants are either the corrected program (sync_bugs'
//     `benign` flag) or a non-interleaving plan (sequential merge with
//     suspend-free distributions) — whichever is the sharper control.
#include "ptest/scenario/registry.hpp"
#include "ptest/workload/philosophers.hpp"
#include "ptest/workload/quicksort.hpp"
#include "ptest/workload/seeded_bugs.hpp"
#include "ptest/workload/sync_bugs.hpp"

namespace ptest::scenario {
namespace detail {

namespace {

/// The paper's Fig. 5 probability distributions (core/config.hpp owns
/// the canonical text).
constexpr const char* kFig5Pd = core::kFig5Distributions;

/// Suspend-heavy bigrams over the full lifecycle regex — the profile that
/// provokes hold-and-wait and lost-window interleavings.
constexpr const char* kSuspendHeavyPd =
    "TC -> TS = 0.8; TC -> TCH = 0.1; TC -> TD = 0.05; TC -> TY = 0.05;"
    "TCH -> TS = 0.8; TCH -> TCH = 0.1; TCH -> TD = 0.05; TCH -> TY = 0.05;"
    "TS -> TR = 1.0;"
    "TR -> TS = 0.8; TR -> TCH = 0.1; TR -> TD = 0.05; TR -> TY = 0.05";

/// Suspend-starved bigrams: TS weight epsilon (weights must be positive),
/// so benign plans practically never deschedule a task mid-window.
constexpr const char* kNoSuspendPd =
    "TC -> TCH = 1.0; TC -> TS = 0.001; TC -> TD = 0.5; TC -> TY = 0.5;"
    "TCH -> TCH = 1.0; TCH -> TS = 0.001; TCH -> TD = 0.5; TCH -> TY = 0.5;"
    "TS -> TR = 1.0;"
    "TR -> TCH = 1.0; TR -> TS = 0.001; TR -> TD = 0.5; TR -> TY = 0.5";

/// Terminal-free lifecycle: churn a task with priority changes and
/// suspend/resume pairs but never retire it — hang bugs stay observable.
constexpr const char* kNoTerminalRegex = "TC (TCH | TS TR)*";

/// Suspend-heavy bigrams for the terminal-free regex.
constexpr const char* kNoTerminalSuspendPd =
    "TC -> TS = 0.7; TC -> TCH = 0.3;"
    "TCH -> TS = 0.7; TCH -> TCH = 0.3;"
    "TS -> TR = 1.0;"
    "TR -> TS = 0.7; TR -> TCH = 0.3";

/// Moderate suspends for the terminal-free regex.  The livelock-backoff
/// stall detector needs ONE suspend inside the victim's guarded section
/// while the watcher stays runnable: the suspend-heavy profile suspends
/// the watcher too (its own TS rescues the livelock), so the firing rate
/// peaks at a balanced, not maximal, suspend weight.
constexpr const char* kNoTerminalModerateSuspendPd =
    "TC -> TS = 0.1; TC -> TCH = 0.9;"
    "TCH -> TS = 0.1; TCH -> TCH = 0.9;"
    "TS -> TR = 1.0;"
    "TR -> TS = 0.1; TR -> TCH = 0.9";

/// Common knobs of every crash-detected (assertion) scenario.
core::PtestConfig assertion_config(std::uint32_t program_id) {
  core::PtestConfig config;
  config.program_id = program_id;
  config.distributions = kFig5Pd;
  config.kernel.panic_on_nonzero_exit = true;
  config.max_ticks = 100000;
  config.detector.termination_horizon = 20000;
  return config;
}

/// Common knobs of every hang-detected (no-termination) scenario.
core::PtestConfig hang_config(std::uint32_t program_id) {
  core::PtestConfig config;
  config.program_id = program_id;
  config.regex = kNoTerminalRegex;
  config.distributions = kNoTerminalSuspendPd;
  config.kernel.panic_on_nonzero_exit = true;
  config.max_ticks = 30000;
  config.detector.termination_horizon = 2500;
  return config;
}

core::WorkloadSetup sync_setup(workload::SyncBug bug, bool benign = false) {
  return [bug, benign](pcore::PcoreKernel& kernel) {
    workload::register_sync_bug(kernel, bug, benign);
  };
}

core::WorkloadSetup seeded_setup(workload::SeededBug bug) {
  return [bug](pcore::PcoreKernel& kernel) {
    workload::register_seeded_bug(kernel, bug);
  };
}

Scenario quicksort_clean() {
  Scenario s;
  s.name = "quicksort-clean";
  s.category = Category::kClean;
  s.difficulty = Difficulty::kEasy;
  s.summary = "16-task quicksort control: no seeded bug, campaign must "
              "stay silent";
  s.config = assertion_config(workload::kQuicksortProgramId);
  s.config.n = 4;
  s.config.s = 6;
  s.setup = workload::register_quicksort;
  s.oracle = {std::nullopt, "", "no detections of any kind"};
  s.default_budget = 6;
  return s;
}

Scenario philosophers_deadlock() {
  Scenario s;
  s.name = "philosophers-deadlock";
  s.category = Category::kDeadlock;
  s.difficulty = Difficulty::kMedium;
  s.summary = "case study 2: cyclic fork acquisition deadlocks under "
              "suspend-heavy patterns";
  s.config.program_id = workload::kPhilosopherProgramId;
  s.config.n = 3;
  s.config.s = 10;
  s.config.distributions = kSuspendHeavyPd;
  s.config.max_ticks = 100000;
  s.config.command_spacing = 12;
  s.setup = [](pcore::PcoreKernel& kernel) {
    (void)workload::register_philosophers(kernel, /*buggy=*/true,
                                          /*meals=*/500);
  };
  s.oracle = {core::BugKind::kDeadlock, "wait-for cycle",
              "deadlock: wait-for cycle among the three philosophers"};
  s.benign_config = s.config;
  s.benign_setup = [](pcore::PcoreKernel& kernel) {
    (void)workload::register_philosophers(kernel, /*buggy=*/false,
                                          /*meals=*/500);
  };
  s.default_budget = 16;
  return s;
}

Scenario fig1_livelock() {
  Scenario s;
  s.name = "fig1-livelock";
  s.category = Category::kLivelock;
  s.difficulty = Difficulty::kHard;
  s.summary = "the paper's Fig. 1 spin fault: both tasks raise their flag "
              "and spin on the other's";
  s.config = hang_config(
      workload::sync_bug_program_id(workload::SyncBug::kFig1Livelock));
  s.config.n = 2;
  s.config.s = 8;
  s.config.op = pattern::MergeOp::kShuffle;
  s.config.command_spacing = 4;
  s.setup = sync_setup(workload::SyncBug::kFig1Livelock);
  s.oracle = {core::BugKind::kNoTermination, "",
              "no-termination: both spinners alive past the horizon"};
  s.benign_config = s.config;
  s.benign_config->op = pattern::MergeOp::kSequential;
  s.benign_config->distributions = "";  // uniform; roles never overlap
  s.default_budget = 32;
  return s;
}

Scenario seeded_lost_update() {
  Scenario s;
  s.name = "lost-update";
  s.category = Category::kAtomicity;
  s.difficulty = Difficulty::kEasy;
  s.summary = "unprotected read-modify-write torn by a mid-window "
              "deschedule";
  s.config = assertion_config(
      workload::seeded_bug_program_id(workload::SeededBug::kLostUpdate));
  s.config.n = 2;
  s.config.s = 8;
  s.config.op = pattern::MergeOp::kShuffle;
  s.config.kernel.schedule_noise = 0.2;
  s.setup = seeded_setup(workload::SeededBug::kLostUpdate);
  s.oracle = {core::BugKind::kSlaveCrash, "failed assertion",
              "slave crash: in-program atomicity assertion"};
  s.benign_config = s.config;
  s.benign_config->op = pattern::MergeOp::kSequential;
  s.benign_config->distributions = kNoSuspendPd;
  s.benign_config->kernel.schedule_noise = 0.0;
  s.default_budget = 24;
  return s;
}

Scenario seeded_order_violation() {
  Scenario s;
  s.name = "order-violation";
  s.category = Category::kOrdering;
  s.difficulty = Difficulty::kEasy;
  s.summary = "consumer assumes the producer's flag is already set";
  s.config = assertion_config(
      workload::seeded_bug_program_id(workload::SeededBug::kOrderViolation));
  s.config.n = 2;
  s.config.s = 8;
  s.config.op = pattern::MergeOp::kShuffle;
  s.config.kernel.schedule_noise = 0.2;
  s.setup = seeded_setup(workload::SeededBug::kOrderViolation);
  s.oracle = {core::BugKind::kSlaveCrash, "failed assertion",
              "slave crash: consumer asserted the missing flag"};
  s.benign_config = s.config;
  s.benign_config->op = pattern::MergeOp::kSequential;
  s.benign_config->distributions = kNoSuspendPd;
  s.benign_config->kernel.schedule_noise = 0.0;
  s.default_budget = 24;
  return s;
}

Scenario seeded_deadlock_pair() {
  Scenario s;
  s.name = "deadlock-pair";
  s.category = Category::kDeadlock;
  s.difficulty = Difficulty::kMedium;
  s.summary = "two tasks lock two mutexes in opposite order";
  s.config.program_id =
      workload::seeded_bug_program_id(workload::SeededBug::kDeadlockPair);
  s.config.n = 2;
  s.config.s = 8;
  s.config.op = pattern::MergeOp::kCyclic;
  s.config.distributions = kSuspendHeavyPd;
  s.config.kernel.schedule_noise = 0.2;
  s.config.max_ticks = 100000;
  s.setup = seeded_setup(workload::SeededBug::kDeadlockPair);
  s.oracle = {core::BugKind::kDeadlock, "wait-for cycle",
              "deadlock: opposed-lock wait-for cycle"};
  s.benign_config = s.config;
  s.benign_config->op = pattern::MergeOp::kSequential;
  s.benign_config->distributions = kNoSuspendPd;
  s.benign_config->kernel.schedule_noise = 0.0;
  s.default_budget = 24;
  return s;
}

Scenario lost_wakeup() {
  Scenario s;
  s.name = "lost-wakeup";
  s.category = Category::kLivelock;
  s.difficulty = Difficulty::kHard;
  s.summary = "condvar lost wakeup: signal lands between predicate check "
              "and sleep registration";
  s.config = hang_config(
      workload::sync_bug_program_id(workload::SyncBug::kLostWakeup));
  s.config.n = 2;
  s.config.s = 8;
  s.config.op = pattern::MergeOp::kShuffle;
  s.config.command_spacing = 3;
  s.setup = sync_setup(workload::SyncBug::kLostWakeup);
  s.oracle = {core::BugKind::kNoTermination, "",
              "no-termination: the waiter sleeps forever"};
  s.benign_config = s.config;
  s.benign_setup = sync_setup(workload::SyncBug::kLostWakeup, true);
  s.default_budget = 32;
  return s;
}

Scenario writer_starvation() {
  Scenario s;
  s.name = "writer-starvation";
  s.category = Category::kStarvation;
  s.difficulty = Difficulty::kEasy;
  s.summary = "reader-preference starvation: long read sections keep the "
              "low-priority writer off the CPU";
  s.config.program_id =
      workload::sync_bug_program_id(workload::SyncBug::kWriterStarvation);
  s.config.regex = "TC";  // create-only plan: roles just need to exist
  s.config.n = 4;
  s.config.s = 1;
  s.config.kernel.panic_on_nonzero_exit = true;
  s.config.detector.starvation_horizon = 600;
  s.config.max_ticks = 20000;
  s.setup = sync_setup(workload::SyncBug::kWriterStarvation);
  s.oracle = {core::BugKind::kStarvation, "ready but unscheduled",
              "starvation: writer ready past the horizon"};
  s.benign_config = s.config;
  s.benign_setup = sync_setup(workload::SyncBug::kWriterStarvation, true);
  s.default_budget = 4;
  return s;
}

Scenario aba_stack() {
  Scenario s;
  s.name = "aba-stack";
  s.category = Category::kAtomicity;
  s.difficulty = Difficulty::kHard;
  s.summary = "lock-free stack pop CAS succeeds against a recycled top "
              "and installs a freed node";
  s.config = assertion_config(
      workload::sync_bug_program_id(workload::SyncBug::kAbaStack));
  s.config.n = 2;
  s.config.s = 6;
  s.setup = sync_setup(workload::SyncBug::kAbaStack);
  s.oracle = {core::BugKind::kSlaveCrash,
              "(exit code " + std::to_string(workload::kAbaExitCode) + ")",
              "slave crash: stale next pointer installed by the ABA CAS"};
  s.benign_config = s.config;
  s.benign_config->op = pattern::MergeOp::kSequential;
  s.benign_config->distributions = kNoSuspendPd;
  s.default_budget = 24;
  return s;
}

Scenario double_checked_lock() {
  Scenario s;
  s.name = "double-checked-lock";
  s.category = Category::kAtomicity;
  s.difficulty = Difficulty::kMedium;
  s.summary = "initialized flag published before the payload is complete; "
              "fast-path reader sees torn state";
  s.config = assertion_config(
      workload::sync_bug_program_id(workload::SyncBug::kDoubleCheckedLock));
  s.config.n = 3;
  s.config.s = 6;
  s.setup = sync_setup(workload::SyncBug::kDoubleCheckedLock);
  s.oracle = {core::BugKind::kSlaveCrash,
              "(exit code " + std::to_string(workload::kDclExitCode) + ")",
              "slave crash: lock-free reader used torn payload"};
  s.benign_config = s.config;
  s.benign_setup = sync_setup(workload::SyncBug::kDoubleCheckedLock, true);
  s.default_budget = 16;
  return s;
}

Scenario barrier_reuse() {
  Scenario s;
  s.name = "barrier-reuse";
  s.category = Category::kLivelock;
  s.difficulty = Difficulty::kEasy;
  s.summary = "arrival count reset for reuse before slow waiters observed "
              "it; they spin forever";
  s.config = hang_config(
      workload::sync_bug_program_id(workload::SyncBug::kBarrierReuse));
  s.config.n = 3;
  s.config.s = 6;
  s.config.op = pattern::MergeOp::kShuffle;
  s.setup = sync_setup(workload::SyncBug::kBarrierReuse);
  s.oracle = {core::BugKind::kNoTermination, "",
              "no-termination: waiters stuck past the reset"};
  s.benign_config = s.config;
  s.benign_setup = sync_setup(workload::SyncBug::kBarrierReuse, true);
  s.default_budget = 8;
  return s;
}

Scenario queue_order() {
  Scenario s;
  s.name = "queue-order";
  s.category = Category::kOrdering;
  s.difficulty = Difficulty::kEasy;
  s.summary = "ring-buffer producer publishes the tail before writing the "
              "slot; consumer reads garbage";
  s.config = assertion_config(
      workload::sync_bug_program_id(workload::SyncBug::kQueueOrder));
  s.config.n = 2;
  s.config.s = 6;
  s.setup = sync_setup(workload::SyncBug::kQueueOrder);
  s.oracle = {core::BugKind::kSlaveCrash,
              "(exit code " + std::to_string(workload::kQueueExitCode) + ")",
              "slave crash: consumer read an unwritten slot"};
  s.benign_config = s.config;
  s.benign_setup = sync_setup(workload::SyncBug::kQueueOrder, true);
  s.default_budget = 16;
  return s;
}

Scenario priority_inversion() {
  Scenario s;
  s.name = "priority-inversion";
  s.category = Category::kStarvation;
  s.difficulty = Difficulty::kMedium;
  s.summary = "low-priority mutex holder preempted by a medium-priority "
              "hog while the high-priority waiter blocks";
  s.config.program_id =
      workload::sync_bug_program_id(workload::SyncBug::kPriorityInversion);
  // Create-only plan, slots low -> medium -> high: the committer's
  // rising slot priorities build the inversion topology; spacing gives
  // the holder time to take the mutex before the hog exists.
  s.config.regex = "TC";
  s.config.n = 3;
  s.config.s = 1;
  s.config.kernel.panic_on_nonzero_exit = true;
  s.config.detector.starvation_horizon = 600;
  s.config.max_ticks = 20000;
  s.config.command_spacing = 6;
  s.setup = sync_setup(workload::SyncBug::kPriorityInversion);
  s.oracle = {core::BugKind::kStarvation, "ready but unscheduled",
              "starvation: the mutex holder is ready past the horizon "
              "while the waiter blocks on its lock"};
  s.benign_config = s.config;
  s.benign_setup = sync_setup(workload::SyncBug::kPriorityInversion, true);
  s.default_budget = 4;
  return s;
}

Scenario livelock_backoff() {
  Scenario s;
  s.name = "livelock-backoff";
  s.category = Category::kLivelock;
  s.difficulty = Difficulty::kHard;
  s.summary = "mutual-intent backoff livelock: a suspend freezes one "
              "task's intent flag up; the peer busy-retries forever";
  s.config = hang_config(
      workload::sync_bug_program_id(workload::SyncBug::kLivelockBackoff));
  s.config.n = 2;
  s.config.s = 8;
  s.config.op = pattern::MergeOp::kShuffle;
  s.config.distributions = kNoTerminalModerateSuspendPd;
  s.config.command_spacing = 4;
  s.setup = sync_setup(workload::SyncBug::kLivelockBackoff);
  s.oracle = {core::BugKind::kNoTermination, "",
              "no-termination: busy backoff retries against a starved "
              "intent holder"};
  s.benign_config = s.config;
  s.benign_setup = sync_setup(workload::SyncBug::kLivelockBackoff, true);
  s.default_budget = 24;
  return s;
}

}  // namespace

ScenarioRegistry build_builtin_catalog() {
  ScenarioRegistry registry;
  registry.add(quicksort_clean());
  registry.add(philosophers_deadlock());
  registry.add(fig1_livelock());
  registry.add(seeded_lost_update());
  registry.add(seeded_order_violation());
  registry.add(seeded_deadlock_pair());
  registry.add(lost_wakeup());
  registry.add(writer_starvation());
  registry.add(aba_stack());
  registry.add(double_checked_lock());
  registry.add(barrier_reuse());
  registry.add(queue_order());
  registry.add(priority_inversion());
  registry.add(livelock_backoff());
  return registry;
}

}  // namespace detail
}  // namespace ptest::scenario
