// Golden-replay support: run one session with its full execution trace
// retained and reduce it to a stable 64-bit fingerprint.
//
// The simulation is deterministic end to end (every random stream derives
// from the session seed), so the complete trace — every kernel, mailbox,
// bridge, master, and detector event, in order — is a pure function of
// (plan, seed).  Hashing it gives a regression check far stricter than
// comparing outcomes: any drift in scheduling, protocol timing, GC
// cadence, or report content moves the hash.  tests/scenario/golden/
// commits one (seed, hash) fixture per scenario and asserts the hash is
// bit-identical across compile-once vs compile-per-run plans, campaign
// jobs=1 vs jobs=4, and replays of recorded failures.
//
// The hash is FNV-1a over integers and strings only (no floating point
// formatting), so fixtures are portable across compilers and platforms.
#pragma once

#include <cstdint>
#include <string_view>

#include "ptest/core/adaptive_test.hpp"
#include "ptest/core/report.hpp"
#include "ptest/support/fnv.hpp"

namespace ptest::scenario {

using support::kFnvOffset;
using support::kFnvPrime;

/// Fingerprint framing on top of the support::fnv primitives: strings
/// fold their bytes *and* their length (so adjacent fields can never
/// collide by shifting a boundary), integers fold all eight bytes.
[[nodiscard]] std::uint64_t fnv1a(std::uint64_t hash,
                                  std::string_view bytes) noexcept;
[[nodiscard]] std::uint64_t fnv1a(std::uint64_t hash,
                                  std::uint64_t value) noexcept;

/// One traced session: the AdaptiveTest result plus the trace fingerprint.
struct TracedRun {
  core::AdaptiveTestResult result;
  std::uint64_t trace_hash = kFnvOffset;
};

/// execute(plan, seed, setup) with the session's Soc kept in scope long
/// enough to fingerprint: hashes outcome, session stats, the merged
/// pattern, and every retained trace event.  Samples through the
/// caller's scratch — pass each worker its own (see pfa::WalkScratch).
[[nodiscard]] TracedRun run_traced(const core::CompiledTestPlan& plan,
                                   std::uint64_t seed,
                                   const core::WorkloadSetup& setup,
                                   pfa::WalkScratch& scratch);

/// run_traced() via a call-local scratch (thin wrapper; prefer the
/// scratch overload on hot paths).
[[nodiscard]] TracedRun run_traced(const core::CompiledTestPlan& plan,
                                   std::uint64_t seed,
                                   const core::WorkloadSetup& setup);

/// Replays `report`'s merged pattern under `plan` and fingerprints the
/// replayed session the same way.
[[nodiscard]] TracedRun replay_traced(const core::BugReport& report,
                                      const core::CompiledTestPlan& plan,
                                      const core::WorkloadSetup& setup);

}  // namespace ptest::scenario
