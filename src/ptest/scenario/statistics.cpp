#include "ptest/scenario/statistics.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "ptest/pattern/generator.hpp"

namespace ptest::scenario {

namespace {

/// Acklam's rational approximation of the standard normal quantile
/// function (relative error < 1.15e-9 over (0,1)); dependency-free and
/// deterministic, which is all the critical-value computation needs.
double normal_quantile(double p) {
  if (!(p > 0.0 && p < 1.0)) {
    throw std::invalid_argument("normal_quantile: p must be in (0,1)");
  }
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - p_low) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

}  // namespace

ChiSquareFit chi_square_fit(const core::CompiledTestPlan& plan,
                            std::uint64_t seed, std::size_t walks) {
  return chi_square_cross_fit(plan, plan, seed, walks);
}

ChiSquareFit chi_square_cross_fit(const core::CompiledTestPlan& sampler,
                                  const core::CompiledTestPlan& reference,
                                  std::uint64_t seed, std::size_t walks) {
  const std::vector<pfa::PfaState>& states = sampler.pfa.states();
  const std::vector<pfa::PfaState>& expected_states =
      reference.pfa.states();
  if (states.size() != expected_states.size()) {
    throw std::invalid_argument(
        "chi_square_cross_fit: plans have different automaton skeletons");
  }

  // counts[state][edge index within the state's transition list].
  std::vector<std::vector<std::size_t>> counts(states.size());
  for (std::size_t s = 0; s < states.size(); ++s) {
    if (states[s].transitions.size() !=
        expected_states[s].transitions.size()) {
      throw std::invalid_argument(
          "chi_square_cross_fit: plans have different automaton skeletons");
    }
    for (std::size_t e = 0; e < states[s].transitions.size(); ++e) {
      // Same-regex precondition, checked edge by edge: equal counts with
      // different symbols would silently pair unrelated multinomials.
      if (states[s].transitions[e].symbol !=
          expected_states[s].transitions[e].symbol) {
        throw std::invalid_argument(
            "chi_square_cross_fit: plans have different automaton "
            "skeletons");
      }
    }
    counts[s].assign(states[s].transitions.size(), 0);
  }

  support::Rng rng(seed);
  pattern::PatternGenerator generator(sampler.pfa,
                                      sampler.generator_options, rng);

  ChiSquareFit fit;
  fit.walks = walks;
  pfa::WalkScratch scratch;  // tally loops are exactly the reuse hot path
  for (std::size_t w = 0; w < walks; ++w) {
    const pattern::TestPattern sample = generator.generate(scratch);
    // Beyond config.s symbols the sampler steers toward acceptance and no
    // longer draws with P — only the unsteered prefix is a fair tally.
    const std::size_t fair =
        std::min(sample.symbols.size(), sampler.config.s);
    // The walk's state trace holds one extra entry per lifecycle restart
    // (restart_at_accept jumps to the start state without emitting a
    // symbol), so symbols[i] is NOT in general emitted from states[i].
    // Walk a cursor instead: a dead-end state cannot be any symbol's
    // source, so skip those entries — what follows each is the restarted
    // start state the next draw really came from.
    std::size_t cursor = 0;
    for (std::size_t i = 0; i < fair && cursor < sample.states.size();
         ++i, ++cursor) {
      while (cursor < sample.states.size() &&
             states[sample.states[cursor]].transitions.empty()) {
        ++cursor;
      }
      if (cursor >= sample.states.size()) break;
      const std::uint32_t state = sample.states[cursor];
      const std::vector<pfa::PfaTransition>& transitions =
          states[state].transitions;
      for (std::size_t e = 0; e < transitions.size(); ++e) {
        if (transitions[e].symbol == sample.symbols[i]) {
          ++counts[state][e];
          ++fit.transitions;
          break;
        }
      }
    }
  }

  for (std::size_t s = 0; s < states.size(); ++s) {
    const std::vector<pfa::PfaTransition>& transitions =
        expected_states[s].transitions;
    if (transitions.size() < 2) continue;  // forced draw: no freedom
    std::size_t visits = 0;
    for (const std::size_t count : counts[s]) visits += count;
    if (visits == 0) continue;
    bool sufficient = true;
    for (const pfa::PfaTransition& t : transitions) {
      if (static_cast<double>(visits) * t.probability < 5.0) {
        sufficient = false;
        break;
      }
    }
    if (!sufficient) {
      ++fit.states_skipped;
      continue;
    }
    for (std::size_t e = 0; e < transitions.size(); ++e) {
      const double expected =
          static_cast<double>(visits) * transitions[e].probability;
      const double delta = static_cast<double>(counts[s][e]) - expected;
      fit.statistic += delta * delta / expected;
    }
    fit.degrees_of_freedom += transitions.size() - 1;
  }
  return fit;
}

double chi_square_critical(std::size_t df, double alpha) {
  if (df == 0) return 0.0;
  if (!(alpha > 0.0 && alpha < 1.0)) {
    throw std::invalid_argument("chi_square_critical: alpha must be in (0,1)");
  }
  // Wilson–Hilferty: (X/df)^(1/3) is approximately normal with mean
  // 1 - 2/(9 df) and variance 2/(9 df).
  const double n = static_cast<double>(df);
  const double z = normal_quantile(1.0 - alpha);
  const double term = 1.0 - 2.0 / (9.0 * n) + z * std::sqrt(2.0 / (9.0 * n));
  return n * term * term * term;
}

}  // namespace ptest::scenario
