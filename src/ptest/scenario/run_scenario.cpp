// Campaign::run_scenario — the campaign-layer entry point into the
// scenario registry.  Declared in core/campaign.hpp but defined here so
// the core module's translation units stay below the scenario layer (the
// member needs the registry, which needs core; defining it next to the
// registry keeps the include graph acyclic).
#include "ptest/core/campaign.hpp"
#include "ptest/scenario/registry.hpp"

namespace ptest::core {

namespace {

/// Builds the scenario's single-arm campaign, or an error message.
support::Result<Campaign, std::string> scenario_campaign(
    std::string_view name, CampaignOptions& options, bool benign,
    std::optional<std::uint64_t> seed_override) {
  const scenario::Scenario* entry =
      scenario::ScenarioRegistry::builtin().find(name);
  if (entry == nullptr) {
    return std::string("unknown scenario '") + std::string(name) +
           "' (see --list-scenarios)";
  }
  if (benign && !entry->has_benign()) {
    return std::string("scenario '") + entry->name +
           "' has no benign variant";
  }
  PtestConfig config = benign ? entry->benign_plan() : entry->config;
  if (seed_override) config.seed = *seed_override;
  if (options.budget == 0) options.budget = entry->default_budget;
  const WorkloadSetup& setup =
      benign ? entry->benign_workload() : entry->setup;
  // The arm must carry the *chosen* plan's (op, PD): Campaign::arm_config
  // reapplies the arm's pair on top of the base config, so reusing the
  // buggy arm under a benign run would silently undo the benign plan.
  CampaignArm arm;
  arm.name = entry->name + (benign ? "/benign" : "");
  arm.op = config.op;
  arm.distributions = config.distributions;
  return Campaign(config, {arm}, setup, options);
}

}  // namespace

support::Result<CampaignResult, std::string> Campaign::run_scenario(
    std::string_view name, CampaignOptions options, bool benign,
    std::optional<std::uint64_t> seed_override) {
  auto campaign = scenario_campaign(name, options, benign, seed_override);
  if (!campaign) return campaign.error();
  return campaign.value().run();
}

support::Result<CampaignResult, std::string> Campaign::run_scenario_slice(
    std::string_view name, const ShardSlice& slice, CampaignOptions options,
    bool benign, std::optional<std::uint64_t> seed_override) {
  auto campaign = scenario_campaign(name, options, benign, seed_override);
  if (!campaign) return campaign.error();
  return campaign.value().run_slice(slice);
}

}  // namespace ptest::core
