#include "ptest/scenario/scenario.hpp"

#include <stdexcept>

namespace ptest::scenario {

const char* to_string(Category category) noexcept {
  switch (category) {
    case Category::kClean: return "clean";
    case Category::kAtomicity: return "atomicity";
    case Category::kOrdering: return "ordering";
    case Category::kDeadlock: return "deadlock";
    case Category::kLivelock: return "livelock";
    case Category::kStarvation: return "starvation";
  }
  return "?";
}

const char* to_string(Difficulty difficulty) noexcept {
  switch (difficulty) {
    case Difficulty::kEasy: return "easy";
    case Difficulty::kMedium: return "medium";
    case Difficulty::kHard: return "hard";
  }
  return "?";
}

bool BugOracle::matches(const core::BugReport& report) const {
  if (!expected_kind || report.kind != *expected_kind) return false;
  if (marker.empty()) return true;
  return report.description.find(marker) != std::string::npos ||
         report.kernel.panic_reason.find(marker) != std::string::npos;
}

bool BugOracle::fired(const core::CampaignResult& result) const {
  for (const auto& [signature, report] : result.distinct_failures) {
    if (matches(report)) return true;
  }
  return false;
}

bool BugOracle::satisfied(const core::CampaignResult& result) const {
  if (!expected_kind) return result.total_detections == 0;
  return fired(result);
}

core::PtestConfig Scenario::benign_plan() const {
  if (!benign_config) {
    throw std::logic_error("scenario '" + name + "' has no benign variant");
  }
  return *benign_config;
}

const core::WorkloadSetup& Scenario::benign_workload() const {
  if (!benign_config) {
    throw std::logic_error("scenario '" + name + "' has no benign variant");
  }
  return benign_setup ? benign_setup : setup;
}

}  // namespace ptest::scenario
