#include "ptest/scenario/golden.hpp"

#include <algorithm>

#include "ptest/core/session.hpp"

namespace ptest::scenario {

namespace {

std::uint64_t hash_session(core::TestSession& session,
                           const core::SessionResult& result,
                           const pattern::MergedPattern& merged) {
  std::uint64_t hash = kFnvOffset;
  hash = fnv1a(hash, static_cast<std::uint64_t>(result.outcome));
  hash = fnv1a(hash, static_cast<std::uint64_t>(result.stats.ticks));
  hash = fnv1a(hash, result.stats.commands_issued);
  hash = fnv1a(hash, result.stats.commands_acked);
  hash = fnv1a(hash, result.stats.commands_failed);
  hash = fnv1a(hash, result.stats.kernel_service_calls);
  hash = fnv1a(hash, result.stats.context_switches);
  hash = fnv1a(hash, result.stats.gc_runs);
  for (const pattern::MergedElement& element : merged.elements) {
    hash = fnv1a(hash, element.slot);
    hash = fnv1a(hash, element.symbol);
  }
  if (result.report) {
    hash = fnv1a(hash, result.report->signature());
    hash = fnv1a(hash, static_cast<std::uint64_t>(result.report->detected_at));
  }
  const sim::TraceLog& trace = session.soc().trace();
  hash = fnv1a(hash, trace.total_recorded());
  for (const sim::TraceEvent& event : trace.tail(trace.size())) {
    hash = fnv1a(hash, static_cast<std::uint64_t>(event.tick));
    hash = fnv1a(hash, sim::to_string(event.category));
    hash = fnv1a(hash, event.message);
  }
  return hash;
}

}  // namespace

std::uint64_t fnv1a(std::uint64_t hash, std::string_view bytes) noexcept {
  // Length separator so ("ab","c") never collides with ("a","bc").
  return fnv1a(support::fnv1a_bytes(hash, bytes),
               static_cast<std::uint64_t>(bytes.size()));
}

std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) noexcept {
  return support::fnv1a_word(hash, value, 8);
}

TracedRun run_traced(const core::CompiledTestPlan& plan, std::uint64_t seed,
                     const core::WorkloadSetup& setup,
                     pfa::WalkScratch& scratch) {
  TracedRun traced;
  traced.result = core::generate_and_merge(plan, seed, scratch);
  core::PtestConfig config = plan.config;
  config.seed = seed;
  core::TestSession session(config, plan.alphabet, traced.result.merged,
                            traced.result.patterns, setup);
  traced.result.session = session.run();
  traced.trace_hash =
      hash_session(session, traced.result.session, traced.result.merged);
  return traced;
}

TracedRun run_traced(const core::CompiledTestPlan& plan, std::uint64_t seed,
                     const core::WorkloadSetup& setup) {
  pfa::WalkScratch scratch;
  return run_traced(plan, seed, setup, scratch);
}

TracedRun replay_traced(const core::BugReport& report,
                        const core::CompiledTestPlan& plan,
                        const core::WorkloadSetup& setup) {
  core::PtestConfig config = plan.config;
  config.seed = report.seed;
  // Per-slot projections reconstruct the state recorder's inputs, exactly
  // like core::replay().
  pattern::SlotIndex max_slot = 0;
  for (const pattern::MergedElement& element : report.merged.elements) {
    max_slot = std::max(max_slot, element.slot);
  }
  std::vector<pattern::TestPattern> patterns(
      report.merged.elements.empty() ? 0 : max_slot + 1);
  for (pattern::SlotIndex slot = 0; slot < patterns.size(); ++slot) {
    patterns[slot].symbols = report.merged.project(slot);
  }

  TracedRun traced;
  traced.result.merged = report.merged;
  traced.result.patterns = patterns;
  core::TestSession session(config, plan.alphabet, report.merged, patterns,
                            setup);
  traced.result.session = session.run();
  traced.trace_hash =
      hash_session(session, traced.result.session, traced.result.merged);
  return traced;
}

}  // namespace ptest::scenario
