// Scenarios: first-class, enumerable concurrency workloads.
//
// The paper validates pTest on two case studies; the ROADMAP's north star
// is "as many scenarios as you can imagine".  A Scenario bundles
// everything a campaign, bench, or test needs to exercise one workload
// end to end:
//
//   * a factory for its pcore/workload program (WorkloadSetup),
//   * a default TestPlan — the (RE, PD, n, s, op) tuple plus runtime
//     knobs, carried as the PtestConfig the plan compiles from,
//   * a BugOracle — a machine-checkable predicate over the CampaignResult
//     that classifies the scenario's seeded bug as found / not found,
//   * metadata (name, category, expected bug kind, difficulty) for
//     catalogs and reports,
//   * optionally a *benign* counterpart (corrected program and/or
//     non-interleaving plan) the oracle must stay silent on — the control
//     that keeps oracles honest.
//
// Scenarios are value types; the registry (registry.hpp) owns the
// catalog.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ptest/core/campaign.hpp"

namespace ptest::scenario {

enum class Category : std::uint8_t {
  kClean = 0,    // control: no seeded bug, the oracle expects silence
  kAtomicity,    // torn read-modify-write / torn publication
  kOrdering,     // order violations (producer/consumer, publication)
  kDeadlock,     // wait-for cycles
  kLivelock,     // tasks run forever without progress
  kStarvation,   // ready tasks kept off the CPU
};

enum class Difficulty : std::uint8_t { kEasy = 0, kMedium, kHard };

[[nodiscard]] const char* to_string(Category category) noexcept;
[[nodiscard]] const char* to_string(Difficulty difficulty) noexcept;

/// Machine-checkable bug classifier.  For bug scenarios, `expected_kind`
/// names the BugKind the detector must file and `marker` (optional)
/// a substring the report description or kernel panic reason must
/// contain — e.g. the per-bug assertion exit code.  For clean scenarios
/// `expected_kind` is empty and the oracle is satisfied only by a
/// detection-free campaign.
struct BugOracle {
  std::optional<core::BugKind> expected_kind;
  std::string marker;
  /// One-line description for catalogs ("deadlock: wait-for cycle", ...).
  std::string description;

  /// True when `report` is the seeded bug this oracle classifies.
  [[nodiscard]] bool matches(const core::BugReport& report) const;
  /// True when any distinct failure of `result` matches.
  [[nodiscard]] bool fired(const core::CampaignResult& result) const;
  /// The acceptance predicate: bug scenarios need a matching detection,
  /// clean scenarios need zero detections of any kind.
  [[nodiscard]] bool satisfied(const core::CampaignResult& result) const;
};

struct Scenario {
  std::string name;  // registry key, kebab-case
  Category category = Category::kClean;
  Difficulty difficulty = Difficulty::kEasy;
  /// One-line summary for --list-scenarios and the README catalog.
  std::string summary;

  /// The default (buggy) test plan: Algorithm 1 inputs + runtime knobs.
  core::PtestConfig config;
  /// Registers the workload's programs / mutexes / shared state.
  core::WorkloadSetup setup;
  BugOracle oracle;

  /// Benign counterpart: plan and/or workload under which the oracle must
  /// NOT fire.  benign_config empty = no benign variant; benign_setup
  /// empty = reuse `setup` with the benign plan.
  std::optional<core::PtestConfig> benign_config;
  core::WorkloadSetup benign_setup;

  /// Sessions a single-arm campaign needs for the oracle to fire reliably
  /// at the default seed (used when the caller does not pick a budget).
  std::size_t default_budget = 24;

  [[nodiscard]] bool expects_bug() const noexcept {
    return oracle.expected_kind.has_value();
  }
  [[nodiscard]] bool has_benign() const noexcept {
    return benign_config.has_value();
  }

  /// The benign variant's pieces; throws std::logic_error when
  /// !has_benign().  (Campaign arms are built by Campaign::run_scenario
  /// from whichever plan — buggy or benign — is actually being run.)
  [[nodiscard]] core::PtestConfig benign_plan() const;
  [[nodiscard]] const core::WorkloadSetup& benign_workload() const;
};

}  // namespace ptest::scenario
