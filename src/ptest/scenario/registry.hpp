// ScenarioRegistry — the unified catalog of concurrency workloads.
//
// The registry is the single extension point for new workloads: register
// a Scenario here and every consumer picks it up — Campaign::run_scenario,
// `ptest_cli --scenario/--list-scenarios`, the bench_scenarios
// fault-coverage suite, and the tests/scenario regression suites (oracle,
// golden replay, PFA statistics) all iterate the same catalog.
//
// builtin() holds the in-tree scenarios: the four original workloads
// (fig. 1, dining philosophers, quicksort, the seeded-bug trio) plus the
// sync_bugs corpus (lost wakeup, writer starvation, ABA, double-checked
// locking, barrier reuse, queue order violation).
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "ptest/scenario/scenario.hpp"

namespace ptest::scenario {

class ScenarioRegistry {
 public:
  /// Adds a scenario; throws std::invalid_argument on an empty name or a
  /// duplicate (names are the lookup key and must stay unique).
  void add(Scenario scenario);

  /// Scenario by name, or nullptr.  Pointers stay valid for the
  /// registry's lifetime (scenarios are only ever appended).
  [[nodiscard]] const Scenario* find(std::string_view name) const noexcept;

  [[nodiscard]] const std::vector<Scenario>& all() const noexcept {
    return scenarios_;
  }
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::size_t size() const noexcept {
    return scenarios_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return scenarios_.empty(); }

  /// The built-in catalog, constructed once (thread-safe magic static).
  [[nodiscard]] static const ScenarioRegistry& builtin();

 private:
  std::vector<Scenario> scenarios_;
};

namespace detail {
/// Defined in catalog.cpp: builds the built-in scenarios.  Split out so
/// the catalog's workload wiring lives next to the workload docs rather
/// than the registry mechanics.
[[nodiscard]] ScenarioRegistry build_builtin_catalog();
}  // namespace detail

}  // namespace ptest::scenario
