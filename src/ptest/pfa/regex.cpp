#include "ptest/pfa/regex.hpp"

#include <cctype>

namespace ptest::pfa {

namespace {

enum class TokKind : std::uint8_t {
  kSymbol,
  kLParen,
  kRParen,
  kBar,
  kStar,
  kPlus,
  kQuestion,
  kDollar,
  kEnd,
};

struct Token {
  TokKind kind;
  std::string_view text;
  std::size_t pos;
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) { advance(); }

  [[nodiscard]] const Token& peek() const noexcept { return current_; }

  Token take() {
    Token t = current_;
    advance();
    return t;
  }

 private:
  void advance() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    const std::size_t start = pos_;
    if (pos_ >= input_.size()) {
      current_ = {TokKind::kEnd, {}, start};
      return;
    }
    const char c = input_[pos_];
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t end = pos_;
      while (end < input_.size() &&
             (std::isalnum(static_cast<unsigned char>(input_[end])) ||
              input_[end] == '_')) {
        ++end;
      }
      current_ = {TokKind::kSymbol, input_.substr(pos_, end - pos_), start};
      pos_ = end;
      return;
    }
    ++pos_;
    switch (c) {
      case '(': current_ = {TokKind::kLParen, input_.substr(start, 1), start}; return;
      case ')': current_ = {TokKind::kRParen, input_.substr(start, 1), start}; return;
      case '|': current_ = {TokKind::kBar, input_.substr(start, 1), start}; return;
      case '*': current_ = {TokKind::kStar, input_.substr(start, 1), start}; return;
      case '+': current_ = {TokKind::kPlus, input_.substr(start, 1), start}; return;
      case '?': current_ = {TokKind::kQuestion, input_.substr(start, 1), start}; return;
      case '$': current_ = {TokKind::kDollar, input_.substr(start, 1), start}; return;
      default:
        throw RegexParseError(
            std::string("regex: unexpected character '") + c + "'", start);
    }
  }

  std::string_view input_;
  std::size_t pos_ = 0;
  Token current_{TokKind::kEnd, {}, 0};
};

class Parser {
 public:
  Parser(std::string_view input, Alphabet& alphabet,
         std::vector<RegexNode>& nodes)
      : lexer_(input), alphabet_(alphabet), nodes_(nodes) {}

  std::int32_t parse() {
    const std::int32_t root = parse_alternation();
    if (lexer_.peek().kind != TokKind::kEnd) {
      throw RegexParseError("regex: trailing input", lexer_.peek().pos);
    }
    return root;
  }

 private:
  std::int32_t make(RegexNodeKind kind, SymbolId symbol = 0,
                    std::int32_t left = -1, std::int32_t right = -1) {
    nodes_.push_back({kind, symbol, left, right});
    return static_cast<std::int32_t>(nodes_.size() - 1);
  }

  std::int32_t parse_alternation() {
    std::int32_t left = parse_concatenation();
    while (lexer_.peek().kind == TokKind::kBar) {
      lexer_.take();
      const std::int32_t right = parse_concatenation();
      left = make(RegexNodeKind::kAlternate, 0, left, right);
    }
    return left;
  }

  [[nodiscard]] static bool starts_atom(TokKind kind) noexcept {
    return kind == TokKind::kSymbol || kind == TokKind::kLParen ||
           kind == TokKind::kDollar;
  }

  std::int32_t parse_concatenation() {
    std::int32_t left = -1;
    while (starts_atom(lexer_.peek().kind)) {
      const std::int32_t piece = parse_repetition();
      left = (left < 0) ? piece
                        : make(RegexNodeKind::kConcat, 0, left, piece);
    }
    if (left < 0) left = make(RegexNodeKind::kEpsilon);
    return left;
  }

  std::int32_t parse_repetition() {
    std::int32_t node = parse_atom();
    for (;;) {
      switch (lexer_.peek().kind) {
        case TokKind::kStar:
          lexer_.take();
          node = make(RegexNodeKind::kStar, 0, node);
          break;
        case TokKind::kPlus:
          lexer_.take();
          node = make(RegexNodeKind::kPlus, 0, node);
          break;
        case TokKind::kQuestion:
          lexer_.take();
          node = make(RegexNodeKind::kOptional, 0, node);
          break;
        default:
          return node;
      }
    }
  }

  std::int32_t parse_atom() {
    const Token t = lexer_.take();
    switch (t.kind) {
      case TokKind::kSymbol:
        return make(RegexNodeKind::kSymbol, alphabet_.intern(t.text));
      case TokKind::kDollar:
        return make(RegexNodeKind::kEndAnchor);
      case TokKind::kLParen: {
        const std::int32_t inner = parse_alternation();
        if (lexer_.peek().kind != TokKind::kRParen) {
          throw RegexParseError("regex: expected ')'", lexer_.peek().pos);
        }
        lexer_.take();
        return inner;
      }
      default:
        throw RegexParseError("regex: expected symbol, '(' or '$'", t.pos);
    }
  }

  Lexer lexer_;
  Alphabet& alphabet_;
  std::vector<RegexNode>& nodes_;
};

void render(const std::vector<RegexNode>& nodes, std::int32_t index,
            const Alphabet& alphabet, std::string& out) {
  const RegexNode& node = nodes[static_cast<std::size_t>(index)];
  switch (node.kind) {
    case RegexNodeKind::kEpsilon:
      out += "()";
      break;
    case RegexNodeKind::kSymbol:
      out += alphabet.name(node.symbol);
      break;
    case RegexNodeKind::kEndAnchor:
      out += '$';
      break;
    case RegexNodeKind::kConcat:
      render(nodes, node.left, alphabet, out);
      out += ' ';
      render(nodes, node.right, alphabet, out);
      break;
    case RegexNodeKind::kAlternate:
      out += '(';
      render(nodes, node.left, alphabet, out);
      out += " | ";
      render(nodes, node.right, alphabet, out);
      out += ')';
      break;
    case RegexNodeKind::kStar:
      out += '(';
      render(nodes, node.left, alphabet, out);
      out += ")*";
      break;
    case RegexNodeKind::kPlus:
      out += '(';
      render(nodes, node.left, alphabet, out);
      out += ")+";
      break;
    case RegexNodeKind::kOptional:
      out += '(';
      render(nodes, node.left, alphabet, out);
      out += ")?";
      break;
  }
}

}  // namespace

Regex Regex::parse(std::string_view pattern, Alphabet& alphabet) {
  Regex regex;
  regex.source_ = std::string(pattern);
  Parser parser(pattern, alphabet, regex.nodes_);
  regex.root_ = parser.parse();
  return regex;
}

std::string Regex::to_string(const Alphabet& alphabet) const {
  std::string out;
  if (root_ >= 0) render(nodes_, root_, alphabet, out);
  return out;
}

}  // namespace ptest::pfa
