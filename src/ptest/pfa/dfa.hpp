// Deterministic automaton obtained from the Thompson NFA via subset
// construction.
//
// pTest attaches probabilities to this automaton (Definition 1 needs a
// well-defined P per (state, symbol)).  Two levels of state merging exist:
//
//   * from_nfa()    — subset construction, dead-state pruning, and merging
//                     of *accepting dead-end* states only.  In this form
//                     every non-start state is entered by exactly one
//                     symbol (a property of Thompson subsets), so a
//                     bigram distribution P(next | last service) applies
//                     unambiguously — this matches the paper's Fig. 5
//                     automaton where each node *is* the last service.
//   * minimized()   — full Moore minimization.  Language-equivalent states
//                     merge even when their probabilistic contexts differ,
//                     which yields the compact drawing of Fig. 3 (3 states)
//                     but can conflate bigram contexts; use it for display
//                     and language queries, not for PFA construction,
//                     unless the distribution is context-agnostic.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ptest/pfa/alphabet.hpp"
#include "ptest/pfa/nfa.hpp"

namespace ptest::pfa {

using StateId = std::uint32_t;

struct DfaState {
  /// Outgoing edges, ordered by symbol id (deterministic iteration order).
  std::map<SymbolId, StateId> transitions;
  bool accepting = false;
};

class Dfa {
 public:
  /// Subset construction; prunes states that cannot reach acceptance and
  /// merges accepting dead-end states into one.  Every remaining state can
  /// reach acceptance, and every non-start state has a unique incoming
  /// symbol.
  static Dfa from_nfa(const Nfa& nfa);

  /// Fully minimized copy (Moore partition refinement).
  [[nodiscard]] Dfa minimized() const;

  [[nodiscard]] const std::vector<DfaState>& states() const noexcept {
    return states_;
  }
  [[nodiscard]] StateId start() const noexcept { return start_; }
  [[nodiscard]] std::size_t size() const noexcept { return states_.size(); }

  [[nodiscard]] bool accepts(const std::vector<SymbolId>& word) const;

  /// Runs the automaton over `word`; returns the resulting state or
  /// nullopt if a transition is missing.
  [[nodiscard]] std::optional<StateId> run(
      const std::vector<SymbolId>& word) const;

  /// For each state, the shortest number of symbols to reach an accepting
  /// state (0 for accepting states).  Used by the pattern generator to
  /// finish patterns at a final state (paper: TD$/TY$ terminate a task's
  /// life cycle).
  [[nodiscard]] std::vector<std::uint32_t> distance_to_accept() const;

  /// Graphviz dot rendering (diagnostics; mirrors the paper's Fig. 3/5).
  [[nodiscard]] std::string to_dot(const Alphabet& alphabet) const;

 private:
  std::vector<DfaState> states_;
  StateId start_ = 0;
};

}  // namespace ptest::pfa
