#include "ptest/pfa/estimator.hpp"

#include <stdexcept>

namespace ptest::pfa {

TraceEstimator::TraceEstimator(double smoothing) : smoothing_(smoothing) {
  if (smoothing < 0.0) {
    throw std::invalid_argument("TraceEstimator: smoothing must be >= 0");
  }
}

void TraceEstimator::observe(const std::vector<SymbolId>& trace) {
  ++trace_count_;
  SymbolId context = DistributionSpec::kStartContext;
  for (const SymbolId symbol : trace) {
    ++bigram_counts_[{context, symbol}];
    ++context_totals_[context];
    context = symbol;
  }
}

DistributionSpec TraceEstimator::estimate(std::size_t alphabet_size) const {
  DistributionSpec spec;
  if (smoothing_ > 0.0) {
    // Proper additive smoothing: every seen context emits an explicit
    // weight for EVERY alphabet symbol, normalized by that context's own
    // total.  (The earlier version emitted only observed pairs plus one
    // global floor derived from the busiest context's total, so an
    // unseen successor in a lightly observed context was underweighted
    // relative to Laplace's (count + k) / (total + k|Σ|).)  Contexts
    // never observed emit nothing and resolve to the uniform fallback —
    // a symbol never seen as context yields equal probabilities.
    for (const auto& [context, total] : context_totals_) {
      const double denominator =
          static_cast<double>(total) +
          smoothing_ * static_cast<double>(alphabet_size);
      for (SymbolId next = 0; next < alphabet_size; ++next) {
        const auto it = bigram_counts_.find({context, next});
        const double count =
            it == bigram_counts_.end() ? 0.0
                                       : static_cast<double>(it->second);
        spec.set_bigram_weight(context, next,
                               (count + smoothing_) / denominator);
      }
      // Observed successors beyond the declared alphabet (caller passed a
      // stale size) still keep their smoothed mass rather than vanishing.
      for (auto it = bigram_counts_.lower_bound(
               {context, static_cast<SymbolId>(alphabet_size)});
           it != bigram_counts_.end() && it->first.first == context; ++it) {
        spec.set_bigram_weight(context, it->first.second,
                               (static_cast<double>(it->second) + smoothing_) /
                                   denominator);
      }
    }
    return spec;
  }
  // smoothing == 0: the maximum-likelihood estimate.  Only observed pairs
  // carry weight (a zero weight is not representable — and not wanted:
  // the spec is advice to the PFA constructor, where an edge the regex
  // permits must keep positive mass).  Unseen successors of a seen
  // context therefore resolve to the uniform fallback 1.0, which the
  // per-state normalization scales alongside the ML weights.
  for (const auto& [pair, count] : bigram_counts_) {
    const auto& [context, next] = pair;
    spec.set_bigram_weight(context, next,
                           static_cast<double>(count) /
                               static_cast<double>(
                                   context_totals_.at(context)));
  }
  return spec;
}

}  // namespace ptest::pfa
