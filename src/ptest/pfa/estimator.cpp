#include "ptest/pfa/estimator.hpp"

#include <stdexcept>

namespace ptest::pfa {

TraceEstimator::TraceEstimator(double smoothing) : smoothing_(smoothing) {
  if (smoothing < 0.0) {
    throw std::invalid_argument("TraceEstimator: smoothing must be >= 0");
  }
}

void TraceEstimator::observe(const std::vector<SymbolId>& trace) {
  ++trace_count_;
  SymbolId context = DistributionSpec::kStartContext;
  for (const SymbolId symbol : trace) {
    ++bigram_counts_[{context, symbol}];
    ++context_totals_[context];
    context = symbol;
  }
}

DistributionSpec TraceEstimator::estimate(std::size_t alphabet_size) const {
  DistributionSpec spec;
  for (const auto& [pair, count] : bigram_counts_) {
    const auto& [context, next] = pair;
    const double denominator =
        static_cast<double>(context_totals_.at(context)) +
        smoothing_ * static_cast<double>(alphabet_size);
    const double probability =
        (static_cast<double>(count) + smoothing_) / denominator;
    spec.set_bigram_weight(context, next, probability);
  }
  // Unseen (context, next) pairs fall back to the uniform default weight
  // 1.0; to keep them *small* relative to observed mass, also emit the
  // smoothed floor as a global symbol weight when smoothing is enabled.
  if (smoothing_ > 0.0 && !context_totals_.empty()) {
    std::uint64_t max_total = 0;
    for (const auto& [context, total] : context_totals_) {
      max_total = std::max(max_total, total);
    }
    const double floor =
        smoothing_ / (static_cast<double>(max_total) +
                      smoothing_ * static_cast<double>(alphabet_size));
    for (SymbolId s = 0; s < alphabet_size; ++s) {
      spec.set_symbol_weight(s, floor);
    }
  }
  return spec;
}

}  // namespace ptest::pfa
