// Thompson construction: Regex -> nondeterministic finite automaton
// (ConvertToNFA in the paper's Algorithm 2).
//
// States carry at most one outgoing symbol edge or up to two epsilon edges,
// as in the classic construction.  The NFA is an intermediate representation
// only; pattern generation runs on the determinized automaton (dfa.hpp) with
// probabilities attached (pfa.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ptest/pfa/alphabet.hpp"
#include "ptest/pfa/regex.hpp"

namespace ptest::pfa {

using NfaStateId = std::uint32_t;

struct NfaState {
  /// Symbol edge (at most one in Thompson form).
  std::optional<SymbolId> symbol;
  NfaStateId symbol_target = 0;
  /// Epsilon edges (zero, one or two).
  std::vector<NfaStateId> epsilon;
};

class Nfa {
 public:
  /// Builds the Thompson NFA for `regex`.
  static Nfa from_regex(const Regex& regex);

  [[nodiscard]] const std::vector<NfaState>& states() const noexcept {
    return states_;
  }
  [[nodiscard]] NfaStateId start() const noexcept { return start_; }
  [[nodiscard]] NfaStateId accept() const noexcept { return accept_; }
  [[nodiscard]] std::size_t size() const noexcept { return states_.size(); }

  /// Epsilon closure of `seed`, returned as a sorted unique state set.
  [[nodiscard]] std::vector<NfaStateId> epsilon_closure(
      std::vector<NfaStateId> seed) const;

  /// Direct NFA simulation; used as an oracle in tests against the DFA.
  [[nodiscard]] bool accepts(const std::vector<SymbolId>& word) const;

 private:
  struct Fragment {
    NfaStateId start;
    NfaStateId accept;
  };

  NfaStateId add_state() {
    states_.emplace_back();
    return static_cast<NfaStateId>(states_.size() - 1);
  }

  Fragment build(const std::vector<RegexNode>& nodes, std::int32_t index);

  std::vector<NfaState> states_;
  NfaStateId start_ = 0;
  NfaStateId accept_ = 0;
};

}  // namespace ptest::pfa
