#include "ptest/pfa/distribution.hpp"

#include <stdexcept>

#include "ptest/support/strings.hpp"

namespace ptest::pfa {

void DistributionSpec::check_weight(double weight) {
  if (!(weight > 0.0)) {
    throw std::invalid_argument(
        "DistributionSpec: weights must be strictly positive");
  }
}

void DistributionSpec::set_symbol_weight(SymbolId symbol, double weight) {
  check_weight(weight);
  symbol_weights_[symbol] = weight;
}

void DistributionSpec::set_bigram_weight(SymbolId context, SymbolId next,
                                         double weight) {
  check_weight(weight);
  bigram_weights_[{context, next}] = weight;
}

void DistributionSpec::set_state_weight(std::uint32_t state, SymbolId next,
                                        double weight) {
  check_weight(weight);
  state_weights_[{state, next}] = weight;
}

double DistributionSpec::weight(std::uint32_t state,
                                std::optional<SymbolId> context,
                                SymbolId next) const {
  if (const auto w = explicit_state_weight(state, next)) return *w;
  if (context) {
    if (const auto w = explicit_bigram_weight(*context, next)) return *w;
  }
  return fallback_weight(next);
}

std::optional<double> DistributionSpec::explicit_state_weight(
    std::uint32_t state, SymbolId next) const {
  const auto it = state_weights_.find({state, next});
  if (it == state_weights_.end()) return std::nullopt;
  return it->second;
}

std::optional<double> DistributionSpec::explicit_bigram_weight(
    SymbolId context, SymbolId next) const {
  const auto it = bigram_weights_.find({context, next});
  if (it == bigram_weights_.end()) return std::nullopt;
  return it->second;
}

double DistributionSpec::fallback_weight(SymbolId next) const {
  const auto it = symbol_weights_.find(next);
  return it == symbol_weights_.end() ? 1.0 : it->second;
}

DistributionSpec DistributionSpec::parse(std::string_view text,
                                         Alphabet& alphabet) {
  using support::split;
  using support::trim;
  DistributionSpec spec;
  std::string normalized(text);
  for (char& c : normalized) {
    if (c == ';') c = '\n';
  }
  for (const std::string& raw_line : split(normalized, '\n')) {
    const std::string_view line = trim(raw_line);
    if (line.empty() || line.front() == '#') continue;
    const auto eq = line.find('=');
    if (eq == std::string_view::npos) {
      throw std::invalid_argument("DistributionSpec: missing '=' in line '" +
                                  std::string(line) + "'");
    }
    const double value = support::parse_double(line.substr(eq + 1));
    const std::string_view lhs = trim(line.substr(0, eq));
    const auto arrow = lhs.find("->");
    if (arrow == std::string_view::npos) {
      spec.set_symbol_weight(alphabet.intern(trim(lhs)), value);
      continue;
    }
    const std::string_view ctx = trim(lhs.substr(0, arrow));
    const std::string_view next = trim(lhs.substr(arrow + 2));
    const SymbolId ctx_id =
        (ctx == "^") ? kStartContext : alphabet.intern(ctx);
    spec.set_bigram_weight(ctx_id, alphabet.intern(next), value);
  }
  return spec;
}

}  // namespace ptest::pfa
