// Symbol alphabet (the Σ of Definition 1).
//
// Paper alphabets are multi-character service mnemonics (TC, TCH, ...), so
// symbols are interned strings identified by a dense SymbolId.  An Alphabet
// is a value type; automata built from the same Alphabet share ids.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ptest::pfa {

using SymbolId = std::uint32_t;

class Alphabet {
 public:
  Alphabet() = default;

  /// Interns `name`, returning its id (existing id if already present).
  SymbolId intern(std::string_view name) {
    if (name.empty())
      throw std::invalid_argument("Alphabet: empty symbol name");
    if (const auto it = ids_.find(std::string(name)); it != ids_.end())
      return it->second;
    const auto id = static_cast<SymbolId>(names_.size());
    names_.emplace_back(name);
    ids_.emplace(names_.back(), id);
    return id;
  }

  /// Id of an existing symbol, or nullopt.
  [[nodiscard]] std::optional<SymbolId> find(std::string_view name) const {
    const auto it = ids_.find(std::string(name));
    if (it == ids_.end()) return std::nullopt;
    return it->second;
  }

  /// Id of an existing symbol; throws if absent.
  [[nodiscard]] SymbolId at(std::string_view name) const {
    const auto id = find(name);
    if (!id)
      throw std::out_of_range("Alphabet: unknown symbol '" +
                              std::string(name) + "'");
    return *id;
  }

  [[nodiscard]] const std::string& name(SymbolId id) const {
    return names_.at(id);
  }
  [[nodiscard]] std::size_t size() const noexcept { return names_.size(); }
  [[nodiscard]] bool empty() const noexcept { return names_.empty(); }

  /// Renders a symbol sequence as space-separated mnemonics.
  [[nodiscard]] std::string render(const std::vector<SymbolId>& seq) const {
    std::string out;
    for (std::size_t i = 0; i < seq.size(); ++i) {
      if (i != 0) out += ' ';
      out += name(seq[i]);
    }
    return out;
  }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, SymbolId> ids_;
};

}  // namespace ptest::pfa
