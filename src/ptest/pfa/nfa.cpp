#include "ptest/pfa/nfa.hpp"

#include <algorithm>

namespace ptest::pfa {

Nfa Nfa::from_regex(const Regex& regex) {
  Nfa nfa;
  if (regex.root() < 0) {
    // Empty regex: accept only the empty word.
    const NfaStateId s = nfa.add_state();
    nfa.start_ = s;
    nfa.accept_ = s;
    return nfa;
  }
  const Fragment f = nfa.build(regex.nodes(), regex.root());
  nfa.start_ = f.start;
  nfa.accept_ = f.accept;
  return nfa;
}

Nfa::Fragment Nfa::build(const std::vector<RegexNode>& nodes,
                         std::int32_t index) {
  const RegexNode& node = nodes[static_cast<std::size_t>(index)];
  switch (node.kind) {
    case RegexNodeKind::kEpsilon:
    case RegexNodeKind::kEndAnchor: {
      // '$' is an anchor: it adds no symbol, only a path to acceptance.  In
      // Thompson form that is exactly an epsilon fragment; the paper uses it
      // to mark that TD/TY terminate a pattern.
      const NfaStateId a = add_state();
      const NfaStateId b = add_state();
      states_[a].epsilon.push_back(b);
      return {a, b};
    }
    case RegexNodeKind::kSymbol: {
      const NfaStateId a = add_state();
      const NfaStateId b = add_state();
      states_[a].symbol = node.symbol;
      states_[a].symbol_target = b;
      return {a, b};
    }
    case RegexNodeKind::kConcat: {
      const Fragment l = build(nodes, node.left);
      const Fragment r = build(nodes, node.right);
      states_[l.accept].epsilon.push_back(r.start);
      return {l.start, r.accept};
    }
    case RegexNodeKind::kAlternate: {
      const Fragment l = build(nodes, node.left);
      const Fragment r = build(nodes, node.right);
      const NfaStateId a = add_state();
      const NfaStateId b = add_state();
      states_[a].epsilon.push_back(l.start);
      states_[a].epsilon.push_back(r.start);
      states_[l.accept].epsilon.push_back(b);
      states_[r.accept].epsilon.push_back(b);
      return {a, b};
    }
    case RegexNodeKind::kStar: {
      const Fragment inner = build(nodes, node.left);
      const NfaStateId a = add_state();
      const NfaStateId b = add_state();
      states_[a].epsilon.push_back(inner.start);
      states_[a].epsilon.push_back(b);
      states_[inner.accept].epsilon.push_back(inner.start);
      states_[inner.accept].epsilon.push_back(b);
      return {a, b};
    }
    case RegexNodeKind::kPlus: {
      const Fragment inner = build(nodes, node.left);
      const NfaStateId b = add_state();
      states_[inner.accept].epsilon.push_back(inner.start);
      states_[inner.accept].epsilon.push_back(b);
      return {inner.start, b};
    }
    case RegexNodeKind::kOptional: {
      const Fragment inner = build(nodes, node.left);
      const NfaStateId a = add_state();
      const NfaStateId b = add_state();
      states_[a].epsilon.push_back(inner.start);
      states_[a].epsilon.push_back(b);
      states_[inner.accept].epsilon.push_back(b);
      return {a, b};
    }
  }
  throw std::logic_error("Nfa::build: unreachable regex node kind");
}

std::vector<NfaStateId> Nfa::epsilon_closure(
    std::vector<NfaStateId> seed) const {
  std::vector<bool> seen(states_.size(), false);
  std::vector<NfaStateId> stack = seed;
  for (const NfaStateId s : seed) seen[s] = true;
  while (!stack.empty()) {
    const NfaStateId s = stack.back();
    stack.pop_back();
    for (const NfaStateId next : states_[s].epsilon) {
      if (!seen[next]) {
        seen[next] = true;
        seed.push_back(next);
        stack.push_back(next);
      }
    }
  }
  std::sort(seed.begin(), seed.end());
  seed.erase(std::unique(seed.begin(), seed.end()), seed.end());
  return seed;
}

bool Nfa::accepts(const std::vector<SymbolId>& word) const {
  std::vector<NfaStateId> current = epsilon_closure({start_});
  for (const SymbolId symbol : word) {
    std::vector<NfaStateId> next;
    for (const NfaStateId s : current) {
      if (states_[s].symbol && *states_[s].symbol == symbol) {
        next.push_back(states_[s].symbol_target);
      }
    }
    if (next.empty()) return false;
    current = epsilon_closure(std::move(next));
  }
  return std::binary_search(current.begin(), current.end(), accept_);
}

}  // namespace ptest::pfa
