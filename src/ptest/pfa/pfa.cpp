#include "ptest/pfa/pfa.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace ptest::pfa {

Pfa Pfa::from_regex(const Regex& regex, const DistributionSpec& spec,
                    const Alphabet& alphabet, const PfaBuildOptions& options) {
  (void)alphabet;  // ids are shared; kept in the signature for clarity
  Dfa dfa = Dfa::from_nfa(Nfa::from_regex(regex));
  if (options.minimize) dfa = dfa.minimized();
  return from_dfa(std::move(dfa), spec);
}

Pfa Pfa::from_dfa(Dfa dfa, const DistributionSpec& spec) {
  Pfa pfa;
  pfa.dfa_ = std::move(dfa);
  const auto& dfa_states = pfa.dfa_.states();
  pfa.states_.resize(dfa_states.size());

  // Collect each state's incoming-symbol contexts (used for bigram
  // weights).  The start state additionally carries kStartContext.
  for (StateId i = 0; i < dfa_states.size(); ++i) {
    for (const auto& [symbol, target] : dfa_states[i].transitions) {
      pfa.states_[target].contexts.push_back(symbol);
    }
  }
  for (PfaState& state : pfa.states_) {
    std::sort(state.contexts.begin(), state.contexts.end());
    state.contexts.erase(
        std::unique(state.contexts.begin(), state.contexts.end()),
        state.contexts.end());
  }
  pfa.states_[pfa.dfa_.start()].contexts.insert(
      pfa.states_[pfa.dfa_.start()].contexts.begin(),
      DistributionSpec::kStartContext);

  // Weight resolution: per-state override, then the first context (in
  // sorted order, start-context first) with an explicit bigram entry, then
  // global symbol weight / uniform.
  const auto resolve = [&spec](const PfaState& state, StateId id,
                               SymbolId next) -> double {
    if (const auto w = spec.explicit_state_weight(id, next)) return *w;
    for (const SymbolId context : state.contexts) {
      if (const auto w = spec.explicit_bigram_weight(context, next)) return *w;
    }
    return spec.fallback_weight(next);
  };

  for (StateId i = 0; i < dfa_states.size(); ++i) {
    PfaState& state = pfa.states_[i];
    state.accepting = dfa_states[i].accepting;
    if (dfa_states[i].transitions.empty()) {
      if (!state.accepting) {
        throw std::invalid_argument(
            "Pfa: non-accepting dead-end state (automaton not pruned?)");
      }
      continue;
    }
    double total = 0.0;
    for (const auto& [symbol, target] : dfa_states[i].transitions) {
      const double w = resolve(state, i, symbol);
      state.transitions.push_back({symbol, target, w});
      total += w;
    }
    if (!(total > 0.0)) {
      throw std::invalid_argument("Pfa: state " + std::to_string(i) +
                                  " has zero outgoing probability mass");
    }
    for (PfaTransition& t : state.transitions) t.probability /= total;
  }
  pfa.accept_distance_ = pfa.dfa_.distance_to_accept();
  pfa.validate();
  return pfa;
}

void Pfa::validate(double epsilon) const {
  for (StateId i = 0; i < states_.size(); ++i) {
    const PfaState& state = states_[i];
    if (state.transitions.empty()) {
      if (!state.accepting) {
        throw std::logic_error("Pfa::validate: dead non-accepting state " +
                               std::to_string(i));
      }
      continue;
    }
    double total = 0.0;
    for (const PfaTransition& t : state.transitions) {
      if (!(t.probability > 0.0) || t.probability > 1.0) {
        throw std::logic_error(
            "Pfa::validate: transition probability out of (0,1] at state " +
            std::to_string(i));
      }
      total += t.probability;
    }
    if (std::abs(total - 1.0) > epsilon) {
      throw std::logic_error("Pfa::validate: Eq.(1) violated at state " +
                             std::to_string(i) + ": sum = " +
                             std::to_string(total));
    }
  }
}

Walk Pfa::sample(support::Rng& rng, const WalkOptions& options) const {
  Walk walk;
  StateId current = dfa_.start();
  walk.states.push_back(current);

  std::vector<double> weights;
  const auto step_random = [&](const PfaState& state) {
    weights.clear();
    for (const PfaTransition& t : state.transitions) {
      weights.push_back(t.probability);
    }
    const std::size_t pick = rng.weighted_index(weights);
    const PfaTransition& t = state.transitions[pick];
    walk.symbols.push_back(t.symbol);
    walk.states.push_back(t.target);
    walk.probability *= t.probability;
    current = t.target;
  };

  while (walk.symbols.size() < options.size) {
    const PfaState& state = states_[current];
    if (state.transitions.empty()) {  // dead-end accepting state
      if (!options.restart_at_accept) break;
      // A restart that lands in a dead-end start state (the ε-only
      // language) can never emit a symbol: breaking here instead of
      // restarting avoids an infinite loop growing walk.states forever.
      if (states_[dfa_.start()].transitions.empty()) break;
      current = dfa_.start();  // next lifecycle (case study 1 churn)
      walk.states.push_back(current);
      continue;
    }
    step_random(state);
  }

  if (options.complete_to_accept) {
    // Steer to the nearest accepting state: among edges that strictly
    // decrease the BFS distance-to-accept, choose proportionally to their
    // configured probability.  Accepting states stop immediately.
    while (!states_[current].accepting &&
           walk.symbols.size() < options.max_size) {
      const PfaState& state = states_[current];
      weights.clear();
      double mass = 0.0;
      for (const PfaTransition& t : state.transitions) {
        const bool closer = accept_distance_[t.target] + 1 ==
                            accept_distance_[current];
        weights.push_back(closer ? t.probability : 0.0);
        mass += weights.back();
      }
      if (!(mass > 0.0)) break;  // should not happen after pruning
      const std::size_t pick = rng.weighted_index(weights);
      const PfaTransition& t = state.transitions[pick];
      walk.symbols.push_back(t.symbol);
      walk.states.push_back(t.target);
      walk.probability *= t.probability;
      current = t.target;
    }
  }
  walk.accepted = states_[current].accepting;
  return walk;
}

double Pfa::prefix_probability(const std::vector<SymbolId>& prefix) const {
  StateId current = dfa_.start();
  double p = 1.0;
  for (const SymbolId symbol : prefix) {
    const PfaState& state = states_[current];
    double step = 0.0;
    StateId next = current;
    for (const PfaTransition& t : state.transitions) {
      if (t.symbol == symbol) {
        step = t.probability;
        next = t.target;
        break;
      }
    }
    if (step == 0.0) return 0.0;
    p *= step;
    current = next;
  }
  return p;
}

double Pfa::word_probability(const std::vector<SymbolId>& word) const {
  const auto end_state = dfa_.run(word);
  if (!end_state || !states_[*end_state].accepting) return 0.0;
  return prefix_probability(word);
}

std::string Pfa::to_dot(const Alphabet& alphabet) const {
  std::ostringstream out;
  out << "digraph pfa {\n  rankdir=LR;\n";
  for (StateId i = 0; i < states_.size(); ++i) {
    out << "  q" << i << " [shape="
        << (states_[i].accepting ? "doublecircle" : "circle") << "];\n";
  }
  out << "  start [shape=point];\n  start -> q" << dfa_.start() << ";\n";
  out.precision(3);
  for (StateId i = 0; i < states_.size(); ++i) {
    for (const PfaTransition& t : states_[i].transitions) {
      out << "  q" << i << " -> q" << t.target << " [label=\""
          << alphabet.name(t.symbol) << " (" << t.probability << ")\"];\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace ptest::pfa
