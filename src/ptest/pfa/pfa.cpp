#include "ptest/pfa/pfa.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <deque>
#include <limits>
#include <span>
#include <sstream>
#include <stdexcept>

namespace ptest::pfa {

namespace {

/// Upper bound on uniforms pre-drawn per Rng::uniform_batch refill.
constexpr std::size_t kUniformBatchMax = 64;

/// Value of `target` after the legacy weighted_index scan subtracted
/// weights[0..i] from it — the exact rounding chain the thresholds invert.
double scan_residual(std::span<const double> weights, std::size_t i,
                     double target) {
  for (std::size_t j = 0; j <= i; ++j) target -= weights[j];
  return target;
}

/// Smallest non-negative double x with scan_residual(w, i, x) >= 0.  The
/// residual is nondecreasing in x (IEEE subtraction is monotone under
/// round-to-nearest), so the legacy scan picks index i exactly when the
/// scaled draw lands in [threshold(i-1), threshold(i)) — binary search
/// over the bit pattern recovers the boundary to the last ulp.
double pick_threshold_for(std::span<const double> weights, std::size_t i) {
  std::uint64_t lo = 0;
  std::uint64_t hi =
      std::bit_cast<std::uint64_t>(std::numeric_limits<double>::infinity());
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (scan_residual(weights, i, std::bit_cast<double>(mid)) >= 0.0) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return std::bit_cast<double>(lo);
}

/// upper_bound over one state's threshold segment: first transition whose
/// threshold exceeds the scaled draw, or `fallback` (the legacy scan's
/// "last positive weight" slack rule) when the draw clears them all.
std::uint32_t pick_from_thresholds(const double* thresholds,
                                   std::uint32_t count, double target,
                                   std::uint32_t fallback) {
  const double* end = thresholds + count;
  const double* it = std::upper_bound(thresholds, end, target);
  if (it == end) return fallback;
  return static_cast<std::uint32_t>(it - thresholds);
}

}  // namespace

void WalkScratch::reserve(const WalkOptions& options) {
  walk.symbols.reserve(options.max_size);
  // restart_at_accept appends a state per restart on top of the one per
  // symbol; 2x + 2 covers every restart schedule up to max_size symbols.
  walk.states.reserve(2 * options.max_size + 2);
  uniforms.reserve(kUniformBatchMax);
}

Pfa Pfa::from_regex(const Regex& regex, const DistributionSpec& spec,
                    const Alphabet& alphabet, const PfaBuildOptions& options) {
  (void)alphabet;  // ids are shared; kept in the signature for clarity
  Dfa dfa = Dfa::from_nfa(Nfa::from_regex(regex));
  if (options.minimize) dfa = dfa.minimized();
  return from_dfa(std::move(dfa), spec);
}

Pfa Pfa::from_dfa(Dfa dfa, const DistributionSpec& spec) {
  Pfa pfa;
  pfa.dfa_ = std::move(dfa);
  const auto& dfa_states = pfa.dfa_.states();
  pfa.states_.resize(dfa_states.size());

  // Collect each state's incoming-symbol contexts (used for bigram
  // weights).  The start state additionally carries kStartContext.
  for (StateId i = 0; i < dfa_states.size(); ++i) {
    for (const auto& [symbol, target] : dfa_states[i].transitions) {
      pfa.states_[target].contexts.push_back(symbol);
    }
  }
  for (PfaState& state : pfa.states_) {
    std::sort(state.contexts.begin(), state.contexts.end());
    state.contexts.erase(
        std::unique(state.contexts.begin(), state.contexts.end()),
        state.contexts.end());
  }
  pfa.states_[pfa.dfa_.start()].contexts.insert(
      pfa.states_[pfa.dfa_.start()].contexts.begin(),
      DistributionSpec::kStartContext);

  // Weight resolution: per-state override, then the first context (in
  // sorted order, start-context first) with an explicit bigram entry, then
  // global symbol weight / uniform.
  const auto resolve = [&spec](const PfaState& state, StateId id,
                               SymbolId next) -> double {
    if (const auto w = spec.explicit_state_weight(id, next)) return *w;
    for (const SymbolId context : state.contexts) {
      if (const auto w = spec.explicit_bigram_weight(context, next)) return *w;
    }
    return spec.fallback_weight(next);
  };

  for (StateId i = 0; i < dfa_states.size(); ++i) {
    PfaState& state = pfa.states_[i];
    state.accepting = dfa_states[i].accepting;
    if (dfa_states[i].transitions.empty()) {
      if (!state.accepting) {
        throw std::invalid_argument(
            "Pfa: non-accepting dead-end state (automaton not pruned?)");
      }
      continue;
    }
    double total = 0.0;
    for (const auto& [symbol, target] : dfa_states[i].transitions) {
      const double w = resolve(state, i, symbol);
      state.transitions.push_back({symbol, target, w});
      total += w;
    }
    if (!(total > 0.0)) {
      throw std::invalid_argument("Pfa: state " + std::to_string(i) +
                                  " has zero outgoing probability mass");
    }
    for (PfaTransition& t : state.transitions) t.probability /= total;
  }
  pfa.accept_distance_ = pfa.dfa_.distance_to_accept();
  pfa.validate();
  pfa.build_sampling_tables();
  return pfa;
}

void Pfa::build_sampling_tables() {
  const std::size_t state_count = states_.size();
  std::size_t transition_count = 0;
  for (const PfaState& state : states_) {
    transition_count += state.transitions.size();
  }

  offsets_.assign(state_count + 1, 0);
  flat_symbol_.clear();
  flat_target_.clear();
  flat_prob_.clear();
  pick_threshold_.clear();
  accept_threshold_.clear();
  flat_symbol_.reserve(transition_count);
  flat_target_.reserve(transition_count);
  flat_prob_.reserve(transition_count);
  pick_threshold_.reserve(transition_count);
  accept_threshold_.reserve(transition_count);
  total_mass_.assign(state_count, 0.0);
  accept_mass_.assign(state_count, 0.0);
  accept_fallback_.assign(state_count, kNone);

  std::vector<double> masked;
  for (StateId s = 0; s < state_count; ++s) {
    const std::vector<PfaTransition>& transitions = states_[s].transitions;
    offsets_[s] = static_cast<std::uint32_t>(flat_symbol_.size());

    // The masked weights the complete_to_accept steering used to rebuild
    // every step: probability on strictly-closer edges, zero elsewhere.
    // Static per state, so folded into the precomputed tables here.
    masked.clear();
    double total = 0.0;
    double mass = 0.0;
    for (const PfaTransition& t : transitions) {
      flat_symbol_.push_back(t.symbol);
      flat_target_.push_back(t.target);
      flat_prob_.push_back(t.probability);
      total += t.probability;  // same order as the legacy sequential sum
      const bool closer =
          accept_distance_[t.target] + 1 == accept_distance_[s];
      masked.push_back(closer ? t.probability : 0.0);
      mass += masked.back();
      if (closer) {
        accept_fallback_[s] =
            static_cast<std::uint32_t>(masked.size()) - 1;
      }
    }
    total_mass_[s] = total;
    accept_mass_[s] = mass;

    const std::span<const double> probs(
        flat_prob_.data() + offsets_[s], transitions.size());
    for (std::size_t i = 0; i < transitions.size(); ++i) {
      pick_threshold_.push_back(pick_threshold_for(probs, i));
      accept_threshold_.push_back(pick_threshold_for(masked, i));
    }
  }
  offsets_[state_count] = static_cast<std::uint32_t>(flat_symbol_.size());

  // BFS distance to the nearest dead-end accepting state over reversed
  // edges: while a walk is at distance >= d from every dead end, its next
  // min(d, remaining) steps each consume exactly one uniform, which is
  // what licenses batching the draws without perturbing the stream.
  dead_distance_.assign(state_count, kNone);
  std::vector<std::vector<StateId>> reverse(state_count);
  std::deque<StateId> frontier;
  for (StateId s = 0; s < state_count; ++s) {
    if (states_[s].transitions.empty()) {
      dead_distance_[s] = 0;
      frontier.push_back(s);
    }
    for (const PfaTransition& t : states_[s].transitions) {
      reverse[t.target].push_back(s);
    }
  }
  while (!frontier.empty()) {
    const StateId v = frontier.front();
    frontier.pop_front();
    for (const StateId u : reverse[v]) {
      if (dead_distance_[u] == kNone) {
        dead_distance_[u] = dead_distance_[v] + 1;
        frontier.push_back(u);
      }
    }
  }
}

void Pfa::validate(double epsilon) const {
  for (StateId i = 0; i < states_.size(); ++i) {
    const PfaState& state = states_[i];
    if (state.transitions.empty()) {
      if (!state.accepting) {
        throw std::logic_error("Pfa::validate: dead non-accepting state " +
                               std::to_string(i));
      }
      continue;
    }
    double total = 0.0;
    for (const PfaTransition& t : state.transitions) {
      if (!(t.probability > 0.0) || t.probability > 1.0) {
        throw std::logic_error(
            "Pfa::validate: transition probability out of (0,1] at state " +
            std::to_string(i));
      }
      total += t.probability;
    }
    if (std::abs(total - 1.0) > epsilon) {
      throw std::logic_error("Pfa::validate: Eq.(1) violated at state " +
                             std::to_string(i) + ": sum = " +
                             std::to_string(total));
    }
  }
}

const Walk& Pfa::sample_into(WalkScratch& scratch, support::Rng& rng,
                             const WalkOptions& options) const {
  Walk& walk = scratch.walk;
  walk.symbols.clear();
  walk.states.clear();
  walk.probability = 1.0;
  walk.accepted = false;

  const StateId start = dfa_.start();
  StateId current = start;
  walk.states.push_back(current);

  // Pre-drawn uniforms for the emission loop.  A refill may only cover
  // steps that are certain to draw: the next min(dead_distance_,
  // remaining) steps all start in states with outgoing edges, so exactly
  // that many draws get consumed before any break/restart — the stream
  // position at every exit matches the draw-per-step legacy sampler.
  std::size_t buffered = 0;
  std::size_t next_uniform = 0;
  while (walk.symbols.size() < options.size) {
    const std::uint32_t begin = offsets_[current];
    const std::uint32_t count = offsets_[current + 1] - begin;
    if (count == 0) {  // dead-end accepting state
      if (!options.restart_at_accept) break;
      // A restart that lands in a dead-end start state (the ε-only
      // language) can never emit a symbol: breaking here instead of
      // restarting avoids an infinite loop growing walk.states forever.
      if (offsets_[start + 1] == offsets_[start]) break;
      current = start;  // next lifecycle (case study 1 churn)
      walk.states.push_back(current);
      continue;
    }
    if (next_uniform == buffered) {
      std::size_t certain = options.size - walk.symbols.size();
      if (dead_distance_[current] != kNone) {
        certain = std::min<std::size_t>(certain, dead_distance_[current]);
      }
      certain = std::min(certain, kUniformBatchMax);
      if (scratch.uniforms.size() < certain) {
        scratch.uniforms.resize(kUniformBatchMax);
      }
      rng.uniform_batch(std::span<double>(scratch.uniforms.data(), certain));
      buffered = certain;
      next_uniform = 0;
    }
    const double target =
        scratch.uniforms[next_uniform++] * total_mass_[current];
    // All probabilities are positive, so the scan's slack fallback is
    // simply the state's last transition.
    const std::uint32_t pick = pick_from_thresholds(
        pick_threshold_.data() + begin, count, target, count - 1);
    const std::uint32_t j = begin + pick;
    walk.symbols.push_back(flat_symbol_[j]);
    walk.states.push_back(flat_target_[j]);
    walk.probability *= flat_prob_[j];
    current = flat_target_[j];
  }

  if (options.complete_to_accept) {
    // Steer to the nearest accepting state: among edges that strictly
    // decrease the BFS distance-to-accept, choose proportionally to their
    // configured probability.  Accepting states stop immediately.  The
    // closer-edge mask is static per state, so the masked pick table was
    // built once at construction instead of per step here.
    while (!states_[current].accepting &&
           walk.symbols.size() < options.max_size) {
      const std::uint32_t fallback = accept_fallback_[current];
      if (fallback == kNone) break;  // should not happen after pruning
      const std::uint32_t begin = offsets_[current];
      const std::uint32_t count = offsets_[current + 1] - begin;
      const double target = rng.uniform() * accept_mass_[current];
      const std::uint32_t pick = pick_from_thresholds(
          accept_threshold_.data() + begin, count, target, fallback);
      const std::uint32_t j = begin + pick;
      walk.symbols.push_back(flat_symbol_[j]);
      walk.states.push_back(flat_target_[j]);
      walk.probability *= flat_prob_[j];
      current = flat_target_[j];
    }
  }
  walk.accepted = states_[current].accepting;

  // Reuse accounting against the session high-water mark (see
  // WalkScratch): deterministic for any jobs value / scratch placement.
  const std::size_t symbols = walk.symbols.size();
  const std::size_t states = walk.states.size();
  if (symbols <= scratch.session_symbols_high_ &&
      states <= scratch.session_states_high_) {
    ++scratch.reuse_hits_;
    scratch.alloc_bytes_saved_ +=
        symbols * sizeof(SymbolId) + states * sizeof(StateId);
  } else {
    scratch.session_symbols_high_ =
        std::max(scratch.session_symbols_high_, symbols);
    scratch.session_states_high_ =
        std::max(scratch.session_states_high_, states);
  }
  return walk;
}

Walk Pfa::sample(support::Rng& rng, const WalkOptions& options) const {
  WalkScratch scratch;
  sample_into(scratch, rng, options);
  return std::move(scratch.walk);
}

double Pfa::prefix_probability(const std::vector<SymbolId>& prefix) const {
  StateId current = dfa_.start();
  double p = 1.0;
  for (const SymbolId symbol : prefix) {
    const PfaState& state = states_[current];
    double step = 0.0;
    StateId next = current;
    for (const PfaTransition& t : state.transitions) {
      if (t.symbol == symbol) {
        step = t.probability;
        next = t.target;
        break;
      }
    }
    if (step == 0.0) return 0.0;
    p *= step;
    current = next;
  }
  return p;
}

double Pfa::word_probability(const std::vector<SymbolId>& word) const {
  const auto end_state = dfa_.run(word);
  if (!end_state || !states_[*end_state].accepting) return 0.0;
  return prefix_probability(word);
}

std::string Pfa::to_dot(const Alphabet& alphabet) const {
  std::ostringstream out;
  out << "digraph pfa {\n  rankdir=LR;\n";
  for (StateId i = 0; i < states_.size(); ++i) {
    out << "  q" << i << " [shape="
        << (states_[i].accepting ? "doublecircle" : "circle") << "];\n";
  }
  out << "  start [shape=point];\n  start -> q" << dfa_.start() << ";\n";
  out.precision(3);
  for (StateId i = 0; i < states_.size(); ++i) {
    for (const PfaTransition& t : states_[i].transitions) {
      out << "  q" << i << " -> q" << t.target << " [label=\""
          << alphabet.name(t.symbol) << " (" << t.probability << ")\"];\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace ptest::pfa
