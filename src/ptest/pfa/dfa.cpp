#include "ptest/pfa/dfa.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>

namespace ptest::pfa {

namespace {

constexpr StateId kNone = std::numeric_limits<StateId>::max();

/// Moore partition refinement; returns the block index of every state.
std::vector<std::uint32_t> refine(const std::vector<DfaState>& states) {
  std::vector<std::uint32_t> block(states.size());
  for (std::size_t i = 0; i < states.size(); ++i) {
    block[i] = states[i].accepting ? 1U : 0U;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    // Signature: (current block, sorted (symbol, target block) list).
    std::map<std::pair<std::uint32_t,
                       std::vector<std::pair<SymbolId, std::uint32_t>>>,
             std::uint32_t>
        signature_to_block;
    std::vector<std::uint32_t> next_block(states.size());
    for (std::size_t i = 0; i < states.size(); ++i) {
      std::vector<std::pair<SymbolId, std::uint32_t>> edges;
      edges.reserve(states[i].transitions.size());
      for (const auto& [symbol, target] : states[i].transitions) {
        edges.emplace_back(symbol, block[target]);
      }
      const auto key = std::make_pair(block[i], std::move(edges));
      const auto [it, inserted] = signature_to_block.try_emplace(
          key, static_cast<std::uint32_t>(signature_to_block.size()));
      next_block[i] = it->second;
    }
    if (next_block != block) {
      changed = true;
      block = std::move(next_block);
    }
  }
  return block;
}

/// Rebuilds a DFA from a block assignment, numbering blocks breadth-first
/// from the start block for a canonical, stable state order.
Dfa rebuild(const std::vector<DfaState>& states, StateId start,
            const std::vector<std::uint32_t>& block,
            std::vector<DfaState>& out_states, StateId& out_start) {
  std::uint32_t block_count = 0;
  for (const std::uint32_t b : block) block_count = std::max(block_count, b + 1);

  std::vector<StateId> block_to_state(block_count, kNone);
  out_states.clear();
  const auto state_for_block = [&](std::uint32_t b) -> StateId {
    if (block_to_state[b] == kNone) {
      block_to_state[b] = static_cast<StateId>(out_states.size());
      out_states.emplace_back();
    }
    return block_to_state[b];
  };

  std::vector<StateId> representative(block_count, kNone);
  for (StateId i = 0; i < states.size(); ++i) {
    if (representative[block[i]] == kNone) representative[block[i]] = i;
  }

  out_start = state_for_block(block[start]);
  std::deque<std::uint32_t> queue{block[start]};
  std::vector<bool> emitted(block_count, false);
  emitted[block[start]] = true;
  while (!queue.empty()) {
    const std::uint32_t b = queue.front();
    queue.pop_front();
    const StateId from = state_for_block(b);
    const DfaState& rep = states[representative[b]];
    out_states[from].accepting = rep.accepting;
    for (const auto& [symbol, target] : rep.transitions) {
      const std::uint32_t tb = block[target];
      const StateId to = state_for_block(tb);
      out_states[from].transitions.emplace(symbol, to);
      if (!emitted[tb]) {
        emitted[tb] = true;
        queue.push_back(tb);
      }
    }
  }
  return {};
}

}  // namespace

Dfa Dfa::from_nfa(const Nfa& nfa) {
  // --- Subset construction -------------------------------------------------
  std::vector<DfaState> subset_states;
  std::map<std::vector<NfaStateId>, StateId> set_to_id;
  std::deque<std::vector<NfaStateId>> worklist;

  const auto intern_set = [&](std::vector<NfaStateId> set) -> StateId {
    const auto it = set_to_id.find(set);
    if (it != set_to_id.end()) return it->second;
    const auto id = static_cast<StateId>(subset_states.size());
    DfaState state;
    state.accepting =
        std::binary_search(set.begin(), set.end(), nfa.accept());
    subset_states.push_back(std::move(state));
    set_to_id.emplace(set, id);
    worklist.push_back(std::move(set));
    return id;
  };

  const StateId start = intern_set(nfa.epsilon_closure({nfa.start()}));
  while (!worklist.empty()) {
    std::vector<NfaStateId> set = std::move(worklist.front());
    worklist.pop_front();
    const StateId from = set_to_id.at(set);
    std::map<SymbolId, std::vector<NfaStateId>> moves;
    for (const NfaStateId s : set) {
      const NfaState& st = nfa.states()[s];
      if (st.symbol) moves[*st.symbol].push_back(st.symbol_target);
    }
    for (auto& [symbol, targets] : moves) {
      const StateId to = intern_set(nfa.epsilon_closure(std::move(targets)));
      subset_states[from].transitions.emplace(symbol, to);
    }
  }

  // --- Prune dead states (cannot reach acceptance) -------------------------
  std::vector<bool> live(subset_states.size(), false);
  {
    std::vector<std::vector<StateId>> reverse(subset_states.size());
    std::deque<StateId> queue;
    for (StateId i = 0; i < subset_states.size(); ++i) {
      for (const auto& [symbol, target] : subset_states[i].transitions) {
        reverse[target].push_back(i);
      }
      if (subset_states[i].accepting) {
        live[i] = true;
        queue.push_back(i);
      }
    }
    while (!queue.empty()) {
      const StateId s = queue.front();
      queue.pop_front();
      for (const StateId p : reverse[s]) {
        if (!live[p]) {
          live[p] = true;
          queue.push_back(p);
        }
      }
    }
  }
  if (!live[start]) {
    throw std::invalid_argument(
        "Dfa::from_nfa: the expression accepts no pattern at all");
  }

  // --- Merge: drop dead states; unify accepting dead-ends -------------------
  // Blocks: each live state its own block, except accepting states with no
  // outgoing live edge, which share one block.  (Merging them is
  // probability-preserving: they have no outgoing transitions to weight.)
  std::vector<std::uint32_t> block(subset_states.size(), 0);
  std::uint32_t next_block = 0;
  std::uint32_t sink_block = std::numeric_limits<std::uint32_t>::max();
  for (StateId i = 0; i < subset_states.size(); ++i) {
    if (!live[i]) continue;
    bool has_live_edge = false;
    for (const auto& [symbol, target] : subset_states[i].transitions) {
      if (live[target]) has_live_edge = true;
    }
    if (subset_states[i].accepting && !has_live_edge) {
      if (sink_block == std::numeric_limits<std::uint32_t>::max()) {
        sink_block = next_block++;
      }
      block[i] = sink_block;
    } else {
      block[i] = next_block++;
    }
  }
  // Strip edges into dead states before rebuilding.
  std::vector<DfaState> live_states = subset_states;
  for (StateId i = 0; i < live_states.size(); ++i) {
    if (!live[i]) {
      live_states[i] = DfaState{};
      continue;
    }
    std::map<SymbolId, StateId> kept;
    for (const auto& [symbol, target] : live_states[i].transitions) {
      if (live[target]) kept.emplace(symbol, target);
    }
    live_states[i].transitions = std::move(kept);
  }
  // Dead states must not collide with live blocks during rebuild; give them
  // throwaway unique blocks beyond the live range.  They are unreachable
  // from the start block, so rebuild never emits them.
  for (StateId i = 0; i < subset_states.size(); ++i) {
    if (!live[i]) block[i] = next_block++;
  }

  Dfa dfa;
  rebuild(live_states, start, block, dfa.states_, dfa.start_);
  return dfa;
}

Dfa Dfa::minimized() const {
  const std::vector<std::uint32_t> block = refine(states_);
  Dfa dfa;
  rebuild(states_, start_, block, dfa.states_, dfa.start_);
  return dfa;
}

bool Dfa::accepts(const std::vector<SymbolId>& word) const {
  const auto state = run(word);
  return state && states_[*state].accepting;
}

std::optional<StateId> Dfa::run(const std::vector<SymbolId>& word) const {
  StateId current = start_;
  for (const SymbolId symbol : word) {
    const auto it = states_[current].transitions.find(symbol);
    if (it == states_[current].transitions.end()) return std::nullopt;
    current = it->second;
  }
  return current;
}

std::vector<std::uint32_t> Dfa::distance_to_accept() const {
  constexpr auto kInf = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> dist(states_.size(), kInf);
  std::vector<std::vector<StateId>> reverse(states_.size());
  std::deque<StateId> queue;
  for (StateId i = 0; i < states_.size(); ++i) {
    for (const auto& [symbol, target] : states_[i].transitions) {
      reverse[target].push_back(i);
    }
    if (states_[i].accepting) {
      dist[i] = 0;
      queue.push_back(i);
    }
  }
  while (!queue.empty()) {
    const StateId s = queue.front();
    queue.pop_front();
    for (const StateId p : reverse[s]) {
      if (dist[p] == kInf) {
        dist[p] = dist[s] + 1;
        queue.push_back(p);
      }
    }
  }
  return dist;
}

std::string Dfa::to_dot(const Alphabet& alphabet) const {
  std::ostringstream out;
  out << "digraph dfa {\n  rankdir=LR;\n";
  for (StateId i = 0; i < states_.size(); ++i) {
    out << "  q" << i << " [shape="
        << (states_[i].accepting ? "doublecircle" : "circle") << "];\n";
  }
  out << "  start [shape=point];\n  start -> q" << start_ << ";\n";
  for (StateId i = 0; i < states_.size(); ++i) {
    for (const auto& [symbol, target] : states_[i].transitions) {
      out << "  q" << i << " -> q" << target << " [label=\""
          << alphabet.name(symbol) << "\"];\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace ptest::pfa
