// Regular-expression front end for pTest's pattern generator.
//
// Grammar (whitespace separates adjacent multi-character symbols):
//
//   alternation   := concatenation ('|' concatenation)*
//   concatenation := repetition*              (empty -> epsilon)
//   repetition    := atom ('*' | '+' | '?')*
//   atom          := SYMBOL | '(' alternation ')' | '$'
//
// SYMBOL is a maximal run of [A-Za-z0-9_] (so the paper's Eq. (2)
// "TC((TCH)* | TS TR (TCH)*)* (TD$ | TY$)" parses with TS TR as two
// symbols).  '$' is the paper's end-of-pattern anchor; it contributes an
// epsilon edge into an accepting position and is only legal at the end of a
// branch.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ptest/pfa/alphabet.hpp"

namespace ptest::pfa {

enum class RegexNodeKind : std::uint8_t {
  kEpsilon,      // matches the empty string
  kSymbol,       // one alphabet symbol
  kEndAnchor,    // '$'
  kConcat,       // left then right
  kAlternate,    // left or right
  kStar,         // zero or more
  kPlus,         // one or more
  kOptional,     // zero or one
};

/// Regex abstract syntax tree stored as an index-linked node pool.
struct RegexNode {
  RegexNodeKind kind = RegexNodeKind::kEpsilon;
  SymbolId symbol = 0;   // valid when kind == kSymbol
  std::int32_t left = -1;
  std::int32_t right = -1;
};

/// Parse error with position information.
class RegexParseError : public std::invalid_argument {
 public:
  RegexParseError(std::string message, std::size_t position)
      : std::invalid_argument(std::move(message)), position_(position) {}
  [[nodiscard]] std::size_t position() const noexcept { return position_; }

 private:
  std::size_t position_;
};

class Regex {
 public:
  /// Parses `pattern`, interning symbols into `alphabet` (which may already
  /// hold symbols from other expressions over the same service set).
  static Regex parse(std::string_view pattern, Alphabet& alphabet);

  [[nodiscard]] const std::vector<RegexNode>& nodes() const noexcept {
    return nodes_;
  }
  [[nodiscard]] std::int32_t root() const noexcept { return root_; }
  [[nodiscard]] const std::string& source() const noexcept { return source_; }

  /// Canonical re-rendering of the AST (for diagnostics and round-trip
  /// tests); emits explicit parentheses.
  [[nodiscard]] std::string to_string(const Alphabet& alphabet) const;

 private:
  std::vector<RegexNode> nodes_;
  std::int32_t root_ = -1;
  std::string source_;
};

}  // namespace ptest::pfa
