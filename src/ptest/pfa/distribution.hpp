// Probability distributions (the PD input of Algorithm 2).
//
// The paper forwards "knowledge about the probability distributions" to the
// pattern generator; users obtain it "through system profiling or by
// providing an analytic model" (§I).  A DistributionSpec expresses that
// knowledge at three levels of detail, applied in this precedence order when
// normalizing a PFA state's outgoing edges:
//
//   1. per-state override      — exact weights for a specific automaton state
//                                (for users who inspected the built DFA);
//   2. bigram context weights  — P(next service | previous service), which is
//                                how the paper's Fig. 5 numbers are stated
//                                (every state of the pCore PFA is identified
//                                by the last service executed);
//   3. global symbol weights   — a stationary preference per service;
//   4. uniform                 — the default when nothing else applies.
//
// Weights are relative; the PFA constructor normalizes the outgoing edges of
// each state so that Eq. (1) of Definition 1 holds.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ptest/pfa/alphabet.hpp"

namespace ptest::pfa {

class DistributionSpec {
 public:
  /// Sentinel context meaning "no service executed yet" (the automaton's
  /// initial state).
  static constexpr SymbolId kStartContext = ~SymbolId{0};

  /// Sets the global weight of `symbol` (level 3).  Weight must be > 0.
  void set_symbol_weight(SymbolId symbol, double weight);

  /// Sets the weight of emitting `next` when the last emitted symbol was
  /// `context` (level 2).  Use kStartContext for the initial state.
  void set_bigram_weight(SymbolId context, SymbolId next, double weight);

  /// Sets exact weights for the outgoing edges of automaton state `state`
  /// (level 1).  Missing symbols fall back to the lower levels.
  void set_state_weight(std::uint32_t state, SymbolId next, double weight);

  /// Resolution used by the PFA constructor: weight of emitting `next` from
  /// automaton state `state` whose incoming-symbol context is `context`
  /// (nullopt when ambiguous or unknown).
  [[nodiscard]] double weight(std::uint32_t state,
                              std::optional<SymbolId> context,
                              SymbolId next) const;

  /// Explicit lookups for each level; nullopt when not set.  The PFA
  /// constructor uses these to resolve states with several incoming-symbol
  /// contexts (possible after full minimization).
  [[nodiscard]] std::optional<double> explicit_state_weight(
      std::uint32_t state, SymbolId next) const;
  [[nodiscard]] std::optional<double> explicit_bigram_weight(
      SymbolId context, SymbolId next) const;
  /// Global symbol weight or the uniform default 1.0.
  [[nodiscard]] double fallback_weight(SymbolId next) const;

  /// True if no information has been supplied (pure uniform).
  [[nodiscard]] bool empty() const noexcept {
    return symbol_weights_.empty() && bigram_weights_.empty() &&
           state_weights_.empty();
  }

  /// Convenience: parses lines of the form
  ///   "SYM = 0.4"            (global weight)
  ///   "CTX -> SYM = 0.25"    (bigram weight; CTX may be "^" for start)
  /// separated by newlines or ';'.  Unknown symbols are interned.
  static DistributionSpec parse(std::string_view text, Alphabet& alphabet);

 private:
  static void check_weight(double weight);

  std::map<SymbolId, double> symbol_weights_;
  std::map<std::pair<SymbolId, SymbolId>, double> bigram_weights_;
  std::map<std::pair<std::uint32_t, SymbolId>, double> state_weights_;
};

}  // namespace ptest::pfa
