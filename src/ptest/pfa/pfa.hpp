// Probabilistic finite-state automaton — Definition 1 of the paper.
//
// A PFA here is the minimized DFA of the user's regular expression with a
// transition probability function P : δ -> R+ attached, normalized so that
// for every state with outgoing edges the probabilities sum to 1 (Eq. (1)).
// States that are accepting and have no outgoing edges (e.g. TD/TY in the
// pCore automaton, Fig. 5) are exempt from Eq. (1): a walk terminates there.
//
// Sampling a walk implements the paper's Algorithm 2: from the initial
// state, repeatedly MakeChoice among the outgoing edges until `s` symbols
// have been emitted (or a dead-end accepting state is reached).  The
// optional `complete_to_accept` mode then steers the walk to an accepting
// state so every emitted pattern is a word of the language — this is what
// lets the committer always retire the tasks it created.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ptest/pfa/alphabet.hpp"
#include "ptest/pfa/dfa.hpp"
#include "ptest/pfa/distribution.hpp"
#include "ptest/pfa/regex.hpp"
#include "ptest/support/rng.hpp"

namespace ptest::pfa {

struct PfaTransition {
  SymbolId symbol = 0;
  StateId target = 0;
  double probability = 0.0;
};

struct PfaState {
  std::vector<PfaTransition> transitions;  // sorted by symbol id
  bool accepting = false;
  /// Incoming-symbol contexts, sorted.  With the default (non-minimized)
  /// skeleton every non-start state has exactly one; full minimization may
  /// merge states and yield several (see PfaBuildOptions::minimize).
  std::vector<SymbolId> contexts;
};

/// Result of sampling one walk.
struct Walk {
  std::vector<SymbolId> symbols;
  std::vector<StateId> states;  // states.size() == symbols.size() + 1
  /// True when the walk ended in an accepting state.
  bool accepted = false;
  /// Product of the chosen transition probabilities.
  double probability = 1.0;
};

struct WalkOptions {
  /// Target number of emitted symbols (the paper's `s`).
  std::size_t size = 8;
  /// After `size` symbols, keep walking toward the nearest accepting state
  /// so the emitted pattern is a complete word of the language.
  bool complete_to_accept = true;
  /// When the walk reaches an absorbing accepting state (e.g. TD/TY in the
  /// pCore automaton) before `size` symbols, restart from the initial state
  /// and keep emitting.  This models the paper's stress scenario where
  /// tasks are continually created and removed (case study 1); the emitted
  /// pattern is then a concatenation of complete lifecycles.
  bool restart_at_accept = false;
  /// Hard cap on emitted symbols (guards complete_to_accept on automata
  /// with long accept distances).
  std::size_t max_size = 1024;
};

struct PfaBuildOptions {
  /// Fully minimize the automaton skeleton before attaching probabilities.
  /// Default off: the subset-construction skeleton keeps states with
  /// different probabilistic contexts distinct (the paper's Fig. 5 draws
  /// one node per last-executed service).  Turning it on reproduces the
  /// compact Fig. 3 drawing but may merge bigram contexts; when merged
  /// contexts carry conflicting explicit bigram weights, the smallest
  /// symbol id wins deterministically.
  bool minimize = false;
};

class Pfa {
 public:
  /// ConstructPFA of Algorithm 2: attaches `spec` to the DFA of `regex`.
  /// Throws std::invalid_argument if the spec yields a zero-mass state.
  static Pfa from_regex(const Regex& regex, const DistributionSpec& spec,
                        const Alphabet& alphabet,
                        const PfaBuildOptions& options = {});

  /// As above but starting from an already-built DFA.
  static Pfa from_dfa(Dfa dfa, const DistributionSpec& spec);

  [[nodiscard]] const std::vector<PfaState>& states() const noexcept {
    return states_;
  }
  [[nodiscard]] StateId start() const noexcept { return dfa_.start(); }
  [[nodiscard]] const Dfa& dfa() const noexcept { return dfa_; }

  /// Verifies Eq. (1): every state with outgoing edges has probabilities
  /// summing to 1 within `epsilon`; throws std::logic_error otherwise.
  void validate(double epsilon = 1e-9) const;

  /// Samples one walk (MakeChoice loop of Algorithm 2).
  [[nodiscard]] Walk sample(support::Rng& rng, const WalkOptions& options) const;

  /// Probability of the automaton emitting exactly `word` (product of the
  /// deterministic transition probabilities; 0 if `word` leaves the
  /// language's prefix set or ends in a non-accepting state).
  [[nodiscard]] double word_probability(const std::vector<SymbolId>& word) const;

  /// Probability that a random walk begins with `prefix` (no acceptance
  /// requirement).
  [[nodiscard]] double prefix_probability(
      const std::vector<SymbolId>& prefix) const;

  /// True if `word` is in the underlying regular language.
  [[nodiscard]] bool accepts(const std::vector<SymbolId>& word) const {
    return dfa_.accepts(word);
  }

  /// Graphviz rendering with probability-labelled edges (cf. Fig. 3/5).
  [[nodiscard]] std::string to_dot(const Alphabet& alphabet) const;

 private:
  Dfa dfa_;
  std::vector<PfaState> states_;
  std::vector<std::uint32_t> accept_distance_;
};

}  // namespace ptest::pfa
