// Probabilistic finite-state automaton — Definition 1 of the paper.
//
// A PFA here is the minimized DFA of the user's regular expression with a
// transition probability function P : δ -> R+ attached, normalized so that
// for every state with outgoing edges the probabilities sum to 1 (Eq. (1)).
// States that are accepting and have no outgoing edges (e.g. TD/TY in the
// pCore automaton, Fig. 5) are exempt from Eq. (1): a walk terminates there.
//
// Sampling a walk implements the paper's Algorithm 2: from the initial
// state, repeatedly MakeChoice among the outgoing edges until `s` symbols
// have been emitted (or a dead-end accepting state is reached).  The
// optional `complete_to_accept` mode then steers the walk to an accepting
// state so every emitted pattern is a word of the language — this is what
// lets the committer always retire the tasks it created.
//
// Hot path layout: construction flattens the per-state transition lists
// into structure-of-arrays tables (symbol / target / probability plus a
// per-state offset table) and precomputes, per state, a cumulative pick
// table for the full distribution and a distance-filtered one for the
// complete_to_accept steering.  The pick tables store *thresholds*: the
// exact rounding boundaries of the legacy Rng::weighted_index subtraction
// scan (recovered by binary search over the double bit pattern at build
// time), so a single rng.uniform() + std::upper_bound reproduces the
// legacy pick bit for bit — every golden fingerprint stays byte-stable.
// sample_into(WalkScratch&, ...) is the primary entry point: it reuses the
// caller's buffers so steady-state sampling does zero heap allocations.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ptest/pfa/alphabet.hpp"
#include "ptest/pfa/dfa.hpp"
#include "ptest/pfa/distribution.hpp"
#include "ptest/pfa/regex.hpp"
#include "ptest/support/rng.hpp"

namespace ptest::pfa {

struct PfaTransition {
  SymbolId symbol = 0;
  StateId target = 0;
  double probability = 0.0;
};

struct PfaState {
  std::vector<PfaTransition> transitions;  // sorted by symbol id
  bool accepting = false;
  /// Incoming-symbol contexts, sorted.  With the default (non-minimized)
  /// skeleton every non-start state has exactly one; full minimization may
  /// merge states and yield several (see PfaBuildOptions::minimize).
  std::vector<SymbolId> contexts;
};

/// Result of sampling one walk.
struct Walk {
  std::vector<SymbolId> symbols;
  std::vector<StateId> states;  // states.size() == symbols.size() + 1
  /// True when the walk ended in an accepting state.
  bool accepted = false;
  /// Product of the chosen transition probabilities.
  double probability = 1.0;
};

struct WalkOptions;

/// Reusable sampling buffers, held by one worker and threaded through
/// Pfa::sample_into so steady-state sessions allocate nothing per walk.
/// Not thread-safe: each worker (WorkerPool participant, fleet shard)
/// owns its own scratch exclusively.
///
/// The scratch also keeps the jobs-invariant reuse accounting behind the
/// support::Metrics `scratch_reuse_hits` / `sample_alloc_bytes_saved`
/// counters.  A call counts as a reuse hit when the emitted walk fits
/// within the session high-water mark (the capacity a session-fresh
/// scratch would already hold) — a pure function of the walk sequence,
/// so the counters are identical for every jobs value even though which
/// physical scratch served a session is not deterministic.
struct WalkScratch {
  Walk walk;
  /// Block of pre-drawn uniforms (Rng::uniform_batch); sized lazily.
  std::vector<double> uniforms;

  /// Resets the session high-water mark.  Called at the top of every
  /// session (core::generate_and_merge) so the reuse counters below stay
  /// independent of which worker's scratch the session landed on.
  void begin_session() noexcept {
    session_symbols_high_ = 0;
    session_states_high_ = 0;
  }

  /// Pre-sizes the buffers for walks under `options` so even the first
  /// samples allocate nothing (2x covers restart_at_accept state chains).
  void reserve(const WalkOptions& options);

  /// sample_into calls whose walk fit in session-high-water capacity.
  [[nodiscard]] std::uint64_t reuse_hits() const noexcept {
    return reuse_hits_;
  }
  /// Bytes of Walk-buffer allocation those hits avoided versus the
  /// allocate-per-call Pfa::sample wrapper.
  [[nodiscard]] std::uint64_t alloc_bytes_saved() const noexcept {
    return alloc_bytes_saved_;
  }

 private:
  friend class Pfa;
  std::size_t session_symbols_high_ = 0;
  std::size_t session_states_high_ = 0;
  std::uint64_t reuse_hits_ = 0;
  std::uint64_t alloc_bytes_saved_ = 0;
};

struct WalkOptions {
  /// Target number of emitted symbols (the paper's `s`).
  std::size_t size = 8;
  /// After `size` symbols, keep walking toward the nearest accepting state
  /// so the emitted pattern is a complete word of the language.
  bool complete_to_accept = true;
  /// When the walk reaches an absorbing accepting state (e.g. TD/TY in the
  /// pCore automaton) before `size` symbols, restart from the initial state
  /// and keep emitting.  This models the paper's stress scenario where
  /// tasks are continually created and removed (case study 1); the emitted
  /// pattern is then a concatenation of complete lifecycles.
  bool restart_at_accept = false;
  /// Hard cap on emitted symbols (guards complete_to_accept on automata
  /// with long accept distances).
  std::size_t max_size = 1024;
};

struct PfaBuildOptions {
  /// Fully minimize the automaton skeleton before attaching probabilities.
  /// Default off: the subset-construction skeleton keeps states with
  /// different probabilistic contexts distinct (the paper's Fig. 5 draws
  /// one node per last-executed service).  Turning it on reproduces the
  /// compact Fig. 3 drawing but may merge bigram contexts; when merged
  /// contexts carry conflicting explicit bigram weights, the smallest
  /// symbol id wins deterministically.
  bool minimize = false;
};

class Pfa {
 public:
  /// ConstructPFA of Algorithm 2: attaches `spec` to the DFA of `regex`.
  /// Throws std::invalid_argument if the spec yields a zero-mass state.
  static Pfa from_regex(const Regex& regex, const DistributionSpec& spec,
                        const Alphabet& alphabet,
                        const PfaBuildOptions& options = {});

  /// As above but starting from an already-built DFA.
  static Pfa from_dfa(Dfa dfa, const DistributionSpec& spec);

  [[nodiscard]] const std::vector<PfaState>& states() const noexcept {
    return states_;
  }
  [[nodiscard]] StateId start() const noexcept { return dfa_.start(); }
  [[nodiscard]] const Dfa& dfa() const noexcept { return dfa_; }

  /// Verifies Eq. (1): every state with outgoing edges has probabilities
  /// summing to 1 within `epsilon`; throws std::logic_error otherwise.
  void validate(double epsilon = 1e-9) const;

  /// Samples one walk (MakeChoice loop of Algorithm 2) into the caller's
  /// scratch, reusing its buffers — zero heap allocations once the
  /// scratch has warmed up.  The returned reference aliases scratch.walk
  /// and is valid until the next sample_into on the same scratch.  Draw
  /// sequence and picks are bit-identical to sample() below.
  const Walk& sample_into(WalkScratch& scratch, support::Rng& rng,
                          const WalkOptions& options) const;

  /// Samples one walk (MakeChoice loop of Algorithm 2).  Thin wrapper
  /// over sample_into that allocates a fresh Walk per call — prefer
  /// sample_into with a per-worker WalkScratch on hot paths.
  [[nodiscard]] Walk sample(support::Rng& rng, const WalkOptions& options) const;

  /// Probability of the automaton emitting exactly `word` (product of the
  /// deterministic transition probabilities; 0 if `word` leaves the
  /// language's prefix set or ends in a non-accepting state).
  [[nodiscard]] double word_probability(const std::vector<SymbolId>& word) const;

  /// Probability that a random walk begins with `prefix` (no acceptance
  /// requirement).
  [[nodiscard]] double prefix_probability(
      const std::vector<SymbolId>& prefix) const;

  /// True if `word` is in the underlying regular language.
  [[nodiscard]] bool accepts(const std::vector<SymbolId>& word) const {
    return dfa_.accepts(word);
  }

  /// Graphviz rendering with probability-labelled edges (cf. Fig. 3/5).
  [[nodiscard]] std::string to_dot(const Alphabet& alphabet) const;

  /// Flattened structure-of-arrays view of the transition table; state
  /// `s`'s transitions occupy the half-open index range
  /// [offsets()[s], offsets()[s+1]) of the parallel arrays, in the same
  /// (symbol-sorted) order as states()[s].transitions.
  [[nodiscard]] const std::vector<std::uint32_t>& offsets() const noexcept {
    return offsets_;
  }
  [[nodiscard]] const std::vector<SymbolId>& flat_symbols() const noexcept {
    return flat_symbol_;
  }
  [[nodiscard]] const std::vector<StateId>& flat_targets() const noexcept {
    return flat_target_;
  }
  [[nodiscard]] const std::vector<double>& flat_probabilities()
      const noexcept {
    return flat_prob_;
  }

 private:
  /// No closer-to-accept edge leaves the state (accept_fallback_) or no
  /// dead-end accepting state is reachable (dead_distance_).
  static constexpr std::uint32_t kNone = ~std::uint32_t{0};

  /// Builds the SoA arrays and pick-threshold tables from states_;
  /// called once at the end of from_dfa.
  void build_sampling_tables();

  Dfa dfa_;
  std::vector<PfaState> states_;
  std::vector<std::uint32_t> accept_distance_;

  // --- sampling tables (see build_sampling_tables) -------------------------
  std::vector<std::uint32_t> offsets_;   // states+1 entries
  std::vector<SymbolId> flat_symbol_;    // per transition
  std::vector<StateId> flat_target_;     // per transition
  std::vector<double> flat_prob_;        // per transition
  /// Pick thresholds per transition: the walk takes transition j when the
  /// scaled draw falls in [threshold[j-1], threshold[j]) — boundaries are
  /// the exact rounding frontier of the legacy subtraction scan.
  std::vector<double> pick_threshold_;    // full distribution
  std::vector<double> accept_threshold_;  // distance-filtered (masked)
  /// Sequential floating-point weight sums the legacy scan scaled by.
  std::vector<double> total_mass_;   // per state, full distribution
  std::vector<double> accept_mass_;  // per state, closer-edge mass
  /// Slack fallback (last positive-weight transition, state-relative) for
  /// the masked table; kNone when the state has no closer-to-accept edge.
  std::vector<std::uint32_t> accept_fallback_;
  /// BFS distance to the nearest dead-end accepting state (kNone when no
  /// dead end is reachable).  Bounds how many uniforms may be pre-drawn:
  /// the next min(dead_distance_, remaining) steps each consume exactly
  /// one draw, so batching that many keeps the stream bit-identical.
  std::vector<std::uint32_t> dead_distance_;
};

}  // namespace ptest::pfa
