// Profiling-based estimation of transition probabilities.
//
// The paper assumes most users do not know the probability distributions and
// suggests the knowledge "can be learned through system profiling" (§I).
// The estimator consumes observed service traces (sequences of symbols, e.g.
// recorded from a production workload driving the slave system) and produces
// a DistributionSpec of bigram weights with additive (Laplace) smoothing, so
// unseen-but-legal transitions keep nonzero probability.
#pragma once

#include <vector>

#include "ptest/pfa/alphabet.hpp"
#include "ptest/pfa/distribution.hpp"

namespace ptest::pfa {

class TraceEstimator {
 public:
  /// `smoothing` is the additive pseudo-count per (context, next) pair.
  explicit TraceEstimator(double smoothing = 1.0);

  /// Accumulates one observed trace.
  void observe(const std::vector<SymbolId>& trace);

  /// Number of observed traces.
  [[nodiscard]] std::size_t trace_count() const noexcept {
    return trace_count_;
  }

  /// Builds the bigram spec.  `alphabet_size` bounds the smoothing support;
  /// pass the alphabet's size.  With smoothing > 0 every seen context gets
  /// explicit weights over the whole alphabet — (count + k) / (total +
  /// k * alphabet_size), normalized by that context's own total; a symbol
  /// never seen as context emits nothing and resolves to the uniform
  /// fallback.  With smoothing == 0 only observed pairs carry their ML
  /// probability (unseen successors keep the uniform fallback weight).
  [[nodiscard]] DistributionSpec estimate(std::size_t alphabet_size) const;

 private:
  double smoothing_;
  std::size_t trace_count_ = 0;
  std::map<std::pair<SymbolId, SymbolId>, std::uint64_t> bigram_counts_;
  std::map<SymbolId, std::uint64_t> context_totals_;
};

}  // namespace ptest::pfa
