#include "ptest/bridge/channel.hpp"

namespace ptest::bridge {

template <typename T>
Channel::Ring<T> Channel::reserve_ring(sim::SharedSram& sram) {
  Ring<T> ring;
  ring.head_offset = sram.reserve(sizeof(std::uint32_t), 4);
  ring.tail_offset = sram.reserve(sizeof(std::uint32_t), 4);
  ring.entries_offset = sram.reserve(sizeof(T) * kRingEntries, 8);
  sram.write<std::uint32_t>(ring.head_offset, 0);
  sram.write<std::uint32_t>(ring.tail_offset, 0);
  return ring;
}

Channel::Channel(sim::Soc& soc)
    : command_ring_(reserve_ring<Command>(soc.sram())),
      response_ring_(reserve_ring<Response>(soc.sram())) {}

bool Channel::post_command(sim::Soc& soc, const Command& command) {
  if (command_ring_.full(soc.sram())) return false;
  sim::Mailbox& doorbell = soc.mailboxes().box(kCommandMailbox);
  if (doorbell.full()) return false;
  command_ring_.push(soc.sram(), command);
  const bool posted = doorbell.post(soc.now(), 1);
  // The full() check above makes post() infallible here.
  (void)posted;
  ++commands_posted_;
  soc.record(sim::TraceCategory::kBridge,
             "cmd seq=" + std::to_string(command.seq) + " " +
                 mnemonic(command.service) + " task=" +
                 std::to_string(command.task));
  return true;
}

std::optional<Command> Channel::take_command(sim::Soc& soc) {
  sim::Mailbox& doorbell = soc.mailboxes().box(kCommandMailbox);
  while (auto word = doorbell.take(soc.now())) command_credits_ += *word;
  if (command_credits_ == 0 || command_ring_.empty(soc.sram())) {
    return std::nullopt;
  }
  --command_credits_;
  return command_ring_.pop(soc.sram());
}

bool Channel::post_response(sim::Soc& soc, const Response& response) {
  if (response_ring_.full(soc.sram())) return false;
  sim::Mailbox& doorbell = soc.mailboxes().box(kResponseMailbox);
  if (doorbell.full()) return false;
  response_ring_.push(soc.sram(), response);
  (void)doorbell.post(soc.now(), 1);
  ++responses_posted_;
  return true;
}

std::optional<Response> Channel::take_response(sim::Soc& soc) {
  sim::Mailbox& doorbell = soc.mailboxes().box(kResponseMailbox);
  while (auto word = doorbell.take(soc.now())) response_credits_ += *word;
  if (response_credits_ == 0 || response_ring_.empty(soc.sram())) {
    return std::nullopt;
  }
  --response_credits_;
  return response_ring_.pop(soc.sram());
}

}  // namespace ptest::bridge
