// pCore Bridge message protocol (the middleware of reference [16] that
// "provides the basic communication mechanisms" between the ARM master and
// the DSP slave).
//
// Commands and responses are fixed-size POD records moved through rings in
// shared SRAM; mailbox words act as doorbells.  A command names one of the
// six Table I services plus a task slot / priority / program payload.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "ptest/pfa/alphabet.hpp"

namespace ptest::bridge {

enum class Service : std::uint8_t {
  kTaskCreate = 0,   // TC
  kTaskDelete,       // TD
  kTaskSuspend,      // TS
  kTaskResume,       // TR
  kTaskChanprio,     // TCH
  kTaskYield,        // TY
};

inline constexpr std::size_t kServiceCount = 6;

/// Table I mnemonic for a service ("TC", "TD", ...).
[[nodiscard]] const char* mnemonic(Service service) noexcept;

/// Parses a Table I mnemonic; nullopt for unknown names.
[[nodiscard]] std::optional<Service> service_from_mnemonic(
    std::string_view name) noexcept;

/// Interns all six mnemonics into `alphabet` (idempotent); pattern
/// generation and the bridge then share symbol ids.
void intern_service_alphabet(pfa::Alphabet& alphabet);

/// Maps a pattern symbol to a service using `alphabet` names.
[[nodiscard]] std::optional<Service> service_from_symbol(
    const pfa::Alphabet& alphabet, pfa::SymbolId symbol) noexcept;

struct Command {
  std::uint32_t seq = 0;       // master-assigned sequence number
  Service service = Service::kTaskCreate;
  std::uint8_t task = 0xff;    // pCore task slot (not used by TC)
  std::uint8_t priority = 0;   // TC / TCH payload
  std::uint8_t pad = 0;
  std::uint32_t program_id = 0;  // TC payload
  std::uint32_t arg = 0;         // TC payload (program argument)
};
static_assert(sizeof(Command) == 16, "Command must be a 16-byte POD");

enum class ResponseStatus : std::uint8_t {
  kOk = 0,
  kError,       // service returned a pCore error; detail carries it
  kPanic,       // slave kernel panicked while executing
};

struct Response {
  std::uint32_t seq = 0;
  ResponseStatus status = ResponseStatus::kOk;
  std::uint8_t detail = 0;  // pcore::Status as uint8
  std::uint8_t task = 0xff; // assigned slot for TC
  std::uint8_t pad = 0;
  std::uint32_t value = 0;
};
static_assert(sizeof(Response) == 12, "Response must be a 12-byte POD");

}  // namespace ptest::bridge
