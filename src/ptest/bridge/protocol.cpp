#include "ptest/bridge/protocol.hpp"

#include <array>

namespace ptest::bridge {

namespace {
constexpr std::array<const char*, kServiceCount> kMnemonics = {
    "TC", "TD", "TS", "TR", "TCH", "TY"};
}

const char* mnemonic(Service service) noexcept {
  return kMnemonics[static_cast<std::size_t>(service)];
}

std::optional<Service> service_from_mnemonic(std::string_view name) noexcept {
  for (std::size_t i = 0; i < kMnemonics.size(); ++i) {
    if (name == kMnemonics[i]) return static_cast<Service>(i);
  }
  return std::nullopt;
}

void intern_service_alphabet(pfa::Alphabet& alphabet) {
  for (const char* name : kMnemonics) alphabet.intern(name);
}

std::optional<Service> service_from_symbol(const pfa::Alphabet& alphabet,
                                           pfa::SymbolId symbol) noexcept {
  if (symbol >= alphabet.size()) return std::nullopt;
  return service_from_mnemonic(alphabet.name(symbol));
}

}  // namespace ptest::bridge
