// The committee: the slave-side agent of pTest (Fig. 2 of the paper).
//
// A sim::Device stepped just before the kernel each tick: it drains remote
// commands from the bridge channel, invokes the corresponding pCore
// services, and posts responses.  Processing is rate-limited per tick to
// model the DSP cycles the dispatcher costs on the real platform.
#pragma once

#include <deque>

#include "ptest/bridge/channel.hpp"
#include "ptest/pcore/kernel.hpp"

namespace ptest::bridge {

class Committee : public sim::Device {
 public:
  Committee(Channel& channel, pcore::PcoreKernel& kernel,
            std::size_t commands_per_tick = 2)
      : channel_(&channel),
        kernel_(&kernel),
        commands_per_tick_(commands_per_tick) {}

  bool tick(sim::Soc& soc) override;

  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

 private:
  Response execute(const Command& command);

  Channel* channel_;
  pcore::PcoreKernel* kernel_;
  std::size_t commands_per_tick_;
  /// Responses that could not be posted yet (response ring full).
  std::deque<Response> backlog_;
  std::uint64_t executed_ = 0;
};

}  // namespace ptest::bridge
