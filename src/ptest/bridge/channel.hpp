// Bidirectional command/response channel over shared SRAM + mailboxes.
//
// Layout (reserved from the SoC's SharedSram at construction):
//   command ring : head, tail (uint32 each) + kRingEntries * Command
//   response ring: head, tail (uint32 each) + kRingEntries * Response
//
// The master posts commands and rings mailbox 0 (ARM -> DSP); the slave
// polls its doorbell, drains the ring, executes, pushes responses and
// rings mailbox 2 (DSP -> ARM).  Doorbells carry the number of new
// entries; a full ring or mailbox makes post() fail and the caller retries
// next tick — the polling behaviour the paper describes.
#pragma once

#include <optional>

#include "ptest/bridge/protocol.hpp"
#include "ptest/sim/soc.hpp"

namespace ptest::bridge {

class Channel {
 public:
  static constexpr std::size_t kRingEntries = 16;
  static constexpr std::size_t kCommandMailbox = 0;   // ARM -> DSP
  static constexpr std::size_t kResponseMailbox = 2;  // DSP -> ARM

  /// Reserves the rings in `soc`'s shared SRAM.
  explicit Channel(sim::Soc& soc);

  // --- master side ----------------------------------------------------------
  /// Posts a command; false when the ring or doorbell mailbox is full.
  bool post_command(sim::Soc& soc, const Command& command);
  /// Takes the next response if one is deliverable.
  std::optional<Response> take_response(sim::Soc& soc);

  // --- slave side -----------------------------------------------------------
  /// Takes the next command if the doorbell has fired and one is pending.
  std::optional<Command> take_command(sim::Soc& soc);
  /// Posts a response; false when the ring or doorbell mailbox is full.
  bool post_response(sim::Soc& soc, const Response& response);

  // --- accounting -----------------------------------------------------------
  [[nodiscard]] std::uint64_t commands_posted() const noexcept {
    return commands_posted_;
  }
  [[nodiscard]] std::uint64_t responses_posted() const noexcept {
    return responses_posted_;
  }

 private:
  template <typename T>
  struct Ring {
    std::size_t head_offset;   // uint32 in SRAM
    std::size_t tail_offset;   // uint32 in SRAM
    std::size_t entries_offset;

    [[nodiscard]] std::uint32_t head(const sim::SharedSram& sram) const {
      return sram.read<std::uint32_t>(head_offset);
    }
    [[nodiscard]] std::uint32_t tail(const sim::SharedSram& sram) const {
      return sram.read<std::uint32_t>(tail_offset);
    }
    [[nodiscard]] bool full(const sim::SharedSram& sram) const {
      return tail(sram) - head(sram) >= kRingEntries;
    }
    [[nodiscard]] bool empty(const sim::SharedSram& sram) const {
      return tail(sram) == head(sram);
    }
    void push(sim::SharedSram& sram, const T& value) const {
      const std::uint32_t t = tail(sram);
      sram.write(entries_offset + (t % kRingEntries) * sizeof(T), value);
      sram.write(tail_offset, t + 1);
    }
    [[nodiscard]] T pop(sim::SharedSram& sram) const {
      const std::uint32_t h = head(sram);
      T value = sram.read<T>(entries_offset + (h % kRingEntries) * sizeof(T));
      sram.write(head_offset, h + 1);
      return value;
    }
  };

  template <typename T>
  Ring<T> reserve_ring(sim::SharedSram& sram);

  Ring<Command> command_ring_;
  Ring<Response> response_ring_;
  /// Doorbell credits: words taken from the mailbox grant ring pops.
  std::uint32_t command_credits_ = 0;
  std::uint32_t response_credits_ = 0;
  std::uint64_t commands_posted_ = 0;
  std::uint64_t responses_posted_ = 0;
};

}  // namespace ptest::bridge
