#include "ptest/bridge/committee.hpp"

namespace ptest::bridge {

Response Committee::execute(const Command& command) {
  Response response;
  response.seq = command.seq;
  response.task = command.task;

  pcore::Status status = pcore::Status::kOk;
  switch (command.service) {
    case Service::kTaskCreate: {
      pcore::TaskId assigned = pcore::kInvalidTask;
      status = kernel_->task_create(command.program_id, command.arg,
                                    command.priority, assigned);
      response.task = assigned;
      break;
    }
    case Service::kTaskDelete:
      status = kernel_->task_delete(command.task);
      break;
    case Service::kTaskSuspend:
      status = kernel_->task_suspend(command.task);
      break;
    case Service::kTaskResume:
      status = kernel_->task_resume(command.task);
      break;
    case Service::kTaskChanprio:
      status = kernel_->task_chanprio(command.task, command.priority);
      break;
    case Service::kTaskYield:
      status = kernel_->task_yield(command.task);
      break;
  }
  response.detail = static_cast<std::uint8_t>(status);
  if (kernel_->panicked()) {
    response.status = ResponseStatus::kPanic;
  } else if (status != pcore::Status::kOk) {
    response.status = ResponseStatus::kError;
  }
  ++executed_;
  return response;
}

bool Committee::tick(sim::Soc& soc) {
  // Flush backlog first (ordering!) before executing new commands.
  while (!backlog_.empty()) {
    if (!channel_->post_response(soc, backlog_.front())) return true;
    backlog_.pop_front();
  }
  for (std::size_t i = 0; i < commands_per_tick_; ++i) {
    const auto command = channel_->take_command(soc);
    if (!command) break;
    const Response response = execute(*command);
    if (!channel_->post_response(soc, response)) {
      backlog_.push_back(response);
    }
    // A panic stops command processing; the master will observe the panic
    // response (and the bug detector the kernel flag).
    if (kernel_->panicked()) break;
  }
  return true;
}

}  // namespace ptest::bridge
