// CoThread: the C++20 coroutine runtime behind MasterThread.
//
// A master-thread body is a coroutine returning CoThread.  `co_await
// proceed()` suspends for one scheduler step reporting kContinue, `co_await
// wait()` reports kWaiting, and plain `co_return` reports kDone (repeated
// if the scheduler ever steps a finished thread again).  `co_await
// remote_cmd(command)` posts the command over the bridge channel and
// suspends until the slave's Response arrives: the adapter's step() retries
// a backpressured post and polls take_response *without resuming the
// frame*, reporting kWaiting each tick, then resumes the body with the
// Response in hand — replacing the hand-rolled kWaiting polling loops of
// the explicit-state MasterThread implementations.
//
// The MasterContext passed to step() is only valid during that resume;
// bodies access it through the MasterEnv handle (`co_await env()`), which
// re-reads the per-step context pointer on every call.
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "ptest/master/thread.hpp"

namespace ptest::master {

class MasterEnv;

namespace co_ops {
struct Proceed {};
struct Wait {};
struct Env {};
struct RemoteCmd {
  bridge::Command command;
};
}  // namespace co_ops

/// Suspend for one step reporting kContinue (did work, keep the quantum).
[[nodiscard]] inline co_ops::Proceed proceed() { return {}; }
/// Suspend for one step reporting kWaiting (scheduler rotates away).
[[nodiscard]] inline co_ops::Wait wait() { return {}; }
/// Non-suspending: yields the MasterEnv handle for soc/channel access.
[[nodiscard]] inline co_ops::Env env() { return {}; }
/// Post `command` to the slave and suspend until its Response arrives.
[[nodiscard]] inline co_ops::RemoteCmd remote_cmd(
    const bridge::Command& command) {
  return {command};
}

class CoThread {
 public:
  struct promise_type {
    enum class Op : std::uint8_t { kNone, kRemoteCmd };

    /// The step reported by the most recent suspension (or co_return).
    ThreadStep pending = ThreadStep::kContinue;
    /// Valid only while CoThread::step is driving the frame.
    MasterContext* context = nullptr;
    std::exception_ptr error;
    /// remote_cmd in flight: the command, whether the post landed, and
    /// the response once taken.
    Op op = Op::kNone;
    bridge::Command command{};
    bool posted = false;
    std::optional<bridge::Response> response;

    CoThread get_return_object() noexcept;
    std::suspend_always initial_suspend() const noexcept { return {}; }
    std::suspend_always final_suspend() const noexcept { return {}; }
    void return_void() noexcept { pending = ThreadStep::kDone; }
    void unhandled_exception() noexcept {
      error = std::current_exception();
      pending = ThreadStep::kDone;
    }

    /// One-step suspension: the ThreadStep was stored by await_transform.
    struct StepAwaiter {
      [[nodiscard]] bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<>) const noexcept {}
      void await_resume() const noexcept {}
    };
    /// Non-suspending access to the environment handle.
    struct EnvAwaiter {
      promise_type* promise;
      [[nodiscard]] bool await_ready() const noexcept { return true; }
      void await_suspend(std::coroutine_handle<>) const noexcept {}
      [[nodiscard]] MasterEnv await_resume() const noexcept;
    };
    /// Suspension until the slave answers; attempts the post eagerly so
    /// the posting step itself reports kContinue (matching the old
    /// machines, which returned kContinue from the step that posted).
    struct RemoteCmdAwaiter {
      promise_type* promise;
      [[nodiscard]] bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<>) const noexcept {
        assert(promise->context != nullptr);
        promise->op = Op::kRemoteCmd;
        promise->posted = false;
        promise->response.reset();
        MasterContext& ctx = *promise->context;
        if (ctx.channel().post_command(ctx.soc(), promise->command)) {
          promise->posted = true;
          promise->pending = ThreadStep::kContinue;
        } else {
          promise->pending = ThreadStep::kWaiting;
        }
      }
      [[nodiscard]] bridge::Response await_resume() const noexcept {
        return *promise->response;
      }
    };

    StepAwaiter await_transform(co_ops::Proceed) noexcept {
      pending = ThreadStep::kContinue;
      return {};
    }
    StepAwaiter await_transform(co_ops::Wait) noexcept {
      pending = ThreadStep::kWaiting;
      return {};
    }
    EnvAwaiter await_transform(co_ops::Env) noexcept { return {this}; }
    RemoteCmdAwaiter await_transform(co_ops::RemoteCmd op_) noexcept {
      command = op_.command;
      return {this};
    }
    /// Anything else awaited in a thread body is a bug.
    template <typename T>
    void await_transform(T&&) = delete;
  };

  using Handle = std::coroutine_handle<promise_type>;

  CoThread() = default;
  explicit CoThread(Handle handle) noexcept : handle_(handle) {}
  CoThread(CoThread&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  CoThread& operator=(CoThread&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  CoThread(const CoThread&) = delete;
  CoThread& operator=(const CoThread&) = delete;
  ~CoThread() { destroy(); }

  [[nodiscard]] bool valid() const noexcept { return handle_ != nullptr; }
  [[nodiscard]] bool done() const noexcept {
    return handle_ && handle_.done();
  }

  /// Drives the frame for one scheduler step.  A pending remote_cmd is
  /// advanced without resuming (retry post / poll response); otherwise the
  /// frame is resumed for exactly one step.
  ThreadStep step(MasterContext& ctx);

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  Handle handle_;
};

inline CoThread CoThread::promise_type::get_return_object() noexcept {
  return CoThread(CoThread::Handle::from_promise(*this));
}

/// Environment handle a body obtains with `co_await env()`; indirects
/// through the per-step context pointer, so it never dangles across
/// suspensions.  Only usable while the frame is being resumed.
class MasterEnv {
 public:
  explicit MasterEnv(CoThread::promise_type* promise) noexcept
      : promise_(promise) {}

  [[nodiscard]] sim::Soc& soc() { return ctx().soc(); }
  [[nodiscard]] bridge::Channel& channel() { return ctx().channel(); }
  [[nodiscard]] sim::Tick now() const { return ctx().now(); }

 private:
  [[nodiscard]] MasterContext& ctx() const {
    assert(promise_->context != nullptr &&
           "MasterEnv used outside a resume (across a co_await?)");
    return *promise_->context;
  }

  CoThread::promise_type* promise_;
};

inline MasterEnv CoThread::promise_type::EnvAwaiter::await_resume()
    const noexcept {
  return MasterEnv(promise);
}

/// Adapts a coroutine body to the MasterThread interface.
class CoMasterThread final : public MasterThread {
 public:
  CoMasterThread(std::string name, CoThread thread)
      : name_(std::move(name)), thread_(std::move(thread)) {}
  [[nodiscard]] std::string name() const override { return name_; }
  ThreadStep step(MasterContext& ctx) override { return thread_.step(ctx); }

 private:
  std::string name_;
  CoThread thread_;
};

[[nodiscard]] inline std::unique_ptr<MasterThread> make_co_thread(
    std::string name, CoThread thread) {
  return std::make_unique<CoMasterThread>(std::move(name),
                                          std::move(thread));
}

}  // namespace ptest::master
