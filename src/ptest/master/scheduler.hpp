// Round-robin time-sharing scheduler for master threads; a sim::Device
// representing the ARM core's software stack.
#pragma once

#include <memory>
#include <vector>

#include "ptest/master/thread.hpp"
#include "ptest/sim/soc.hpp"

namespace ptest::master {

class MasterScheduler : public sim::Device {
 public:
  explicit MasterScheduler(bridge::Channel& channel,
                           sim::Tick quantum = 4)
      : channel_(&channel), quantum_(quantum) {}

  /// Adds a thread; returns its index.  Threads added after the
  /// simulation started join the tail of the run queue.
  std::size_t add(std::unique_ptr<MasterThread> thread);

  bool tick(sim::Soc& soc) override;

  /// True once every thread reported kDone.
  [[nodiscard]] bool all_done() const noexcept;
  [[nodiscard]] std::size_t thread_count() const noexcept {
    return threads_.size();
  }
  [[nodiscard]] const MasterThread& thread(std::size_t index) const {
    return *threads_.at(index).thread;
  }

 private:
  struct Entry {
    std::unique_ptr<MasterThread> thread;
    bool done = false;
  };

  void rotate();

  bridge::Channel* channel_;
  sim::Tick quantum_;
  std::vector<Entry> threads_;
  std::size_t current_ = 0;
  sim::Tick used_ = 0;
};

}  // namespace ptest::master
