// The committer: pTest's master-side agent (Fig. 2).  "According to the
// test pattern, the committer issues the corresponding commands to enable
// the remote testing for a slave system." (§III-B)
//
// A MasterThread that walks a MergedPattern element by element:
//   * per-slot ordering is strict — a slot's next service is issued only
//     after its previous command was acknowledged, preserving the merged
//     interleaving's intent;
//   * TC allocates the pCore task and binds the slot; TD/TY retire it;
//   * every issue/ack is reported to a CommitterObserver so pTest's state
//     recorder (Definition 2) and bug detector see the execution history;
//   * an optional per-command issue delay and noise hook support the
//     ConTest-style baseline.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "ptest/fleet/ledger.hpp"
#include "ptest/master/thread.hpp"
#include "ptest/pattern/pattern.hpp"
#include "ptest/pcore/task.hpp"

namespace ptest::master {

struct IssueRecord {
  std::uint32_t seq = 0;
  pattern::SlotIndex slot = 0;
  pfa::SymbolId symbol = 0;
  bridge::Service service = bridge::Service::kTaskCreate;
  sim::Tick issued_at = 0;
};

struct AckRecord {
  IssueRecord issue;
  bridge::ResponseStatus status = bridge::ResponseStatus::kOk;
  std::uint8_t detail = 0;              // pcore::Status
  pcore::TaskId task = pcore::kInvalidTask;
  sim::Tick acked_at = 0;
};

class CommitterObserver {
 public:
  virtual ~CommitterObserver() = default;
  virtual void on_issue(const IssueRecord& record) = 0;
  virtual void on_ack(const AckRecord& record) = 0;
  virtual void on_pattern_complete(sim::Tick tick) = 0;
};

struct CommitterOptions {
  /// Program each created task runs: id into the kernel registry plus a
  /// per-slot argument provider.
  std::uint32_t program_id = 0;
  std::function<std::uint32_t(pattern::SlotIndex)> program_arg =
      [](pattern::SlotIndex) { return 0u; };
  /// Unique per-slot base priority ("each task is typically forked with a
  /// unique priority", §IV-A).
  std::function<pcore::Priority(pattern::SlotIndex)> priority =
      [](pattern::SlotIndex slot) {
        return static_cast<pcore::Priority>(10 + slot);
      };
  /// TCH payload: the k-th priority change for a slot.
  std::function<pcore::Priority(pattern::SlotIndex, std::uint32_t)>
      chanprio = [](pattern::SlotIndex slot, std::uint32_t k) {
        return static_cast<pcore::Priority>(10 + ((slot + k) % 16));
      };
  /// Extra ticks to wait before each issue (noise injection hook; 0 = none).
  std::function<sim::Tick(const pattern::MergedElement&)> issue_delay =
      [](const pattern::MergedElement&) { return sim::Tick{0}; };
  /// Retry budget and delay for terminal commands (TD/TY) rejected with
  /// a bad-state error — a task can be transiently blocked on a mutex
  /// when its retirement command lands; the tool must still clean it
  /// up.  max_attempts counts retries per slot, delay is in ticks.
  /// The policy type is shared with fleet::CoordinatorOptions, so tests
  /// that tighten retry behaviour tune the same knob across the stack.
  fleet::RetryPolicy retry;
};

class Committer : public MasterThread {
 public:
  Committer(pattern::MergedPattern pattern, const pfa::Alphabet& alphabet,
            CommitterOptions options, CommitterObserver* observer = nullptr);

  [[nodiscard]] std::string name() const override { return "committer"; }
  ThreadStep step(MasterContext& ctx) override;

  [[nodiscard]] bool finished() const noexcept { return finished_; }
  [[nodiscard]] std::size_t issued() const noexcept { return issued_count_; }
  [[nodiscard]] std::size_t acked() const noexcept { return acked_count_; }
  [[nodiscard]] std::size_t failed() const noexcept { return failed_count_; }
  /// Outstanding commands with their issue ticks (bug-detector timeout
  /// source).
  [[nodiscard]] const std::map<std::uint32_t, IssueRecord>& outstanding()
      const noexcept {
    return ledger_.outstanding();
  }
  /// pCore task bound to a slot, if any.
  [[nodiscard]] std::optional<pcore::TaskId> task_for_slot(
      pattern::SlotIndex slot) const;

 private:
  enum class PostOutcome { kPosted, kSkipped, kBackpressure };

  void drain_responses(MasterContext& ctx);
  ThreadStep issue_next(MasterContext& ctx);
  PostOutcome post_element(MasterContext& ctx,
                           const pattern::MergedElement& element);

  pattern::MergedPattern pattern_;
  const pfa::Alphabet* alphabet_;
  CommitterOptions options_;
  CommitterObserver* observer_;

  std::size_t cursor_ = 0;
  /// Issue/ack/retry bookkeeping (fleet/ledger.hpp); the retry budget
  /// is charged per slot, time is the simulation tick.
  fleet::OutstandingTable<IssueRecord> ledger_;
  fleet::RetryQueue<pattern::MergedElement, pattern::SlotIndex> retries_;
  std::map<pattern::SlotIndex, pcore::TaskId> slot_tasks_;
  std::map<pattern::SlotIndex, bool> slot_busy_;
  std::map<pattern::SlotIndex, std::uint32_t> chanprio_counts_;
  sim::Tick delay_until_ = 0;
  std::size_t issued_count_ = 0;
  std::size_t acked_count_ = 0;
  std::size_t failed_count_ = 0;
  bool finished_ = false;
};

}  // namespace ptest::master
