// Master-side threads (Linux processes on the ARM core in the paper).
//
// The master system uses a time-sharing scheduling policy (§II-A); the
// MasterScheduler models it with round-robin quanta over MasterThread
// objects.  Threads interact with the slave only through the bridge
// channel (remote_cmd) — exactly the paper's master-slave contract.
#pragma once

#include <cstdint>
#include <string>

#include "ptest/bridge/channel.hpp"
#include "ptest/support/rng.hpp"

namespace ptest::master {

enum class ThreadStep : std::uint8_t {
  kContinue,  // did work; keep my quantum running
  kWaiting,   // blocked on a response; scheduler rotates away
  kDone,      // finished; never scheduled again
};

class MasterContext {
 public:
  MasterContext(sim::Soc& soc, bridge::Channel& channel)
      : soc_(&soc), channel_(&channel) {}

  [[nodiscard]] sim::Soc& soc() noexcept { return *soc_; }
  [[nodiscard]] bridge::Channel& channel() noexcept { return *channel_; }
  [[nodiscard]] sim::Tick now() const noexcept { return soc_->now(); }

 private:
  sim::Soc* soc_;
  bridge::Channel* channel_;
};

class MasterThread {
 public:
  virtual ~MasterThread() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// One step within the thread's quantum.
  virtual ThreadStep step(MasterContext& ctx) = 0;
};

}  // namespace ptest::master
