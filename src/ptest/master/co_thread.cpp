#include "ptest/master/co_thread.hpp"

namespace ptest::master {

ThreadStep CoThread::step(MasterContext& ctx) {
  assert(handle_ != nullptr && "stepping a moved-from CoThread");
  promise_type& promise = handle_.promise();
  if (handle_.done()) return promise.pending;  // repeats kDone
  promise.context = &ctx;
  if (promise.op == promise_type::Op::kRemoteCmd) {
    if (!promise.posted) {
      // Backpressured post: retry this tick without resuming the frame.
      if (ctx.channel().post_command(ctx.soc(), promise.command)) {
        promise.posted = true;
        promise.pending = ThreadStep::kContinue;
      } else {
        promise.pending = ThreadStep::kWaiting;
      }
      promise.context = nullptr;
      return promise.pending;
    }
    std::optional<bridge::Response> response =
        ctx.channel().take_response(ctx.soc());
    if (!response) {
      promise.context = nullptr;
      return ThreadStep::kWaiting;
    }
    // Response in hand: deliver it through await_resume and run the body
    // until its next suspension.
    promise.response = *response;
    promise.op = promise_type::Op::kNone;
  }
  handle_.resume();
  promise.context = nullptr;
  if (promise.error) {
    std::rethrow_exception(std::exchange(promise.error, nullptr));
  }
  return promise.pending;
}

}  // namespace ptest::master
