#include "ptest/master/scheduler.hpp"

namespace ptest::master {

std::size_t MasterScheduler::add(std::unique_ptr<MasterThread> thread) {
  threads_.push_back({std::move(thread), false});
  return threads_.size() - 1;
}

bool MasterScheduler::all_done() const noexcept {
  for (const Entry& entry : threads_) {
    if (!entry.done) return false;
  }
  return true;
}

void MasterScheduler::rotate() {
  if (threads_.empty()) return;
  used_ = 0;
  for (std::size_t i = 1; i <= threads_.size(); ++i) {
    const std::size_t candidate = (current_ + i) % threads_.size();
    if (!threads_[candidate].done) {
      current_ = candidate;
      return;
    }
  }
}

bool MasterScheduler::tick(sim::Soc& soc) {
  if (threads_.empty() || all_done()) return true;
  if (threads_[current_].done) rotate();
  Entry& entry = threads_[current_];
  MasterContext ctx(soc, *channel_);
  const ThreadStep result = entry.thread->step(ctx);
  ++used_;
  switch (result) {
    case ThreadStep::kContinue:
      if (used_ >= quantum_) rotate();
      break;
    case ThreadStep::kWaiting:
      rotate();
      break;
    case ThreadStep::kDone:
      entry.done = true;
      soc.record(sim::TraceCategory::kMaster,
                 "thread '" + entry.thread->name() + "' done");
      rotate();
      break;
  }
  return true;
}

}  // namespace ptest::master
