#include "ptest/master/committer.hpp"

#include "ptest/pcore/kernel.hpp"

namespace ptest::master {

Committer::Committer(pattern::MergedPattern pattern,
                     const pfa::Alphabet& alphabet, CommitterOptions options,
                     CommitterObserver* observer)
    : pattern_(std::move(pattern)),
      alphabet_(&alphabet),
      options_(std::move(options)),
      observer_(observer),
      retries_(options_.retry) {}

std::optional<pcore::TaskId> Committer::task_for_slot(
    pattern::SlotIndex slot) const {
  const auto it = slot_tasks_.find(slot);
  if (it == slot_tasks_.end()) return std::nullopt;
  return it->second;
}

void Committer::drain_responses(MasterContext& ctx) {
  while (const auto response = ctx.channel().take_response(ctx.soc())) {
    const auto issue = ledger_.acknowledge(response->seq);
    if (!issue) continue;  // stale/duplicate ack
    AckRecord ack;
    ack.issue = *issue;
    ack.status = response->status;
    ack.detail = response->detail;
    ack.task = response->task;
    ack.acked_at = ctx.now();
    slot_busy_[ack.issue.slot] = false;
    if (ack.issue.service == bridge::Service::kTaskCreate &&
        response->status == bridge::ResponseStatus::kOk) {
      slot_tasks_[ack.issue.slot] = response->task;
    }
    if ((ack.issue.service == bridge::Service::kTaskDelete ||
         ack.issue.service == bridge::Service::kTaskYield) &&
        response->status == bridge::ResponseStatus::kOk) {
      slot_tasks_.erase(ack.issue.slot);
      retries_.forgive(ack.issue.slot);
    }
    if (response->status != bridge::ResponseStatus::kOk) ++failed_count_;
    ++acked_count_;
    if (observer_ != nullptr) observer_->on_ack(ack);

    // Terminal commands (TD/TY) rejected because the task was transiently
    // blocked get retried: the tool still owns cleanup of its tasks.
    const bool terminal =
        ack.issue.service == bridge::Service::kTaskDelete ||
        ack.issue.service == bridge::Service::kTaskYield;
    if (terminal && ack.status == bridge::ResponseStatus::kError &&
        static_cast<pcore::Status>(ack.detail) ==
            pcore::Status::kErrBadState) {
      (void)retries_.schedule(ack.issue.slot,
                              {ack.issue.slot, ack.issue.symbol}, ctx.now());
    }
  }
}

Committer::PostOutcome Committer::post_element(
    MasterContext& ctx, const pattern::MergedElement& element) {
  const auto service = bridge::service_from_symbol(*alphabet_, element.symbol);
  if (!service) return PostOutcome::kSkipped;

  bridge::Command command;
  command.seq = ledger_.next_seq();
  command.service = *service;
  switch (*service) {
    case bridge::Service::kTaskCreate:
      command.priority = options_.priority(element.slot);
      command.program_id = options_.program_id;
      command.arg = options_.program_arg(element.slot);
      break;
    case bridge::Service::kTaskChanprio: {
      const auto task = task_for_slot(element.slot);
      if (!task) return PostOutcome::kSkipped;
      command.task = *task;
      command.priority =
          options_.chanprio(element.slot, chanprio_counts_[element.slot]++);
      break;
    }
    default: {
      const auto task = task_for_slot(element.slot);
      if (!task) return PostOutcome::kSkipped;
      command.task = *task;
      break;
    }
  }

  if (!ctx.channel().post_command(ctx.soc(), command)) {
    return PostOutcome::kBackpressure;  // ring/doorbell full; retry later
  }
  ++issued_count_;
  slot_busy_[element.slot] = true;
  IssueRecord record{command.seq, element.slot, element.symbol, *service,
                     ctx.now()};
  ledger_.record_issue(record);
  if (observer_ != nullptr) observer_->on_issue(record);

  const sim::Tick delay = options_.issue_delay(element);
  if (delay > 0) delay_until_ = ctx.now() + delay;
  return PostOutcome::kPosted;
}

ThreadStep Committer::issue_next(MasterContext& ctx) {
  const pattern::MergedElement& element = pattern_.elements[cursor_];
  // Strict per-slot ordering: wait for the slot's previous ack.
  if (slot_busy_[element.slot]) return ThreadStep::kWaiting;
  switch (post_element(ctx, element)) {
    case PostOutcome::kPosted:
    case PostOutcome::kSkipped:
      ++cursor_;
      return ThreadStep::kContinue;
    case PostOutcome::kBackpressure:
      return ThreadStep::kWaiting;
  }
  return ThreadStep::kWaiting;
}

ThreadStep Committer::step(MasterContext& ctx) {
  drain_responses(ctx);
  if (finished_) return ThreadStep::kDone;
  if (ctx.now() < delay_until_) return ThreadStep::kWaiting;

  // Pending terminal retries take precedence: they gate completion.
  if (const auto* front = retries_.front()) {
    if (front->not_before <= ctx.now() &&
        !slot_busy_[front->payload.slot]) {
      auto retry = retries_.take_front();
      if (task_for_slot(retry->payload.slot)) {
        if (post_element(ctx, retry->payload) == PostOutcome::kBackpressure) {
          retries_.requeue_front(std::move(*retry));
          return ThreadStep::kWaiting;
        }
      } else {
        // Task already gone (exited on its own); nothing to retire.
        retries_.forgive(retry->payload.slot);
      }
      return ThreadStep::kContinue;
    }
  }

  if (cursor_ >= pattern_.elements.size()) {
    if (!ledger_.empty() || !retries_.empty()) {
      return ThreadStep::kWaiting;
    }
    finished_ = true;
    if (observer_ != nullptr) observer_->on_pattern_complete(ctx.now());
    return ThreadStep::kDone;
  }
  return issue_next(ctx);
}

}  // namespace ptest::master
