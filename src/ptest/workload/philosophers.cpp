#include "ptest/workload/philosophers.hpp"

#include <algorithm>

namespace ptest::workload {

PhilosopherProgram::PhilosopherProgram(const PhilosopherTable& table,
                                       std::uint32_t index, bool buggy,
                                       std::uint32_t meals,
                                       std::uint32_t window)
    : meals_(meals), window_(window == 0 ? 1 : window) {
  const std::size_t i = index % kPhilosopherCount;
  const pcore::MutexId left = table.forks[i];
  const pcore::MutexId right = table.forks[(i + 1) % kPhilosopherCount];
  if (buggy) {
    // Cyclic order: everyone grabs the left fork first.
    first_ = left;
    second_ = right;
  } else {
    // Global order: lower mutex id first — no cycle possible.
    first_ = std::min(left, right);
    second_ = std::max(left, right);
  }
  task_ = body();
}

pcore::CoTask PhilosopherProgram::body() {
  do {
    co_await pcore::compute(2);  // think
    co_await pcore::lock(first_);
    // Work while holding the first fork — the deadlock window.
    for (std::uint32_t done = 0; done < window_; ++done) {
      co_await pcore::compute(1);
    }
    co_await pcore::lock(second_);
    co_await pcore::compute(2);  // eat
    co_await pcore::unlock(second_);
    co_await pcore::unlock(first_);
  } while (++eaten_ < meals_);
  co_return 0;
}

pcore::StepResult PhilosopherProgram::step(pcore::TaskContext& ctx) {
  return task_.step(ctx);
}

PhilosopherTable register_philosophers(pcore::PcoreKernel& kernel, bool buggy,
                                       std::uint32_t meals,
                                       std::uint32_t window) {
  PhilosopherTable table;
  for (auto& fork : table.forks) fork = kernel.mutex_create();
  kernel.register_program(
      kPhilosopherProgramId,
      [table, buggy, meals, window](std::uint32_t arg) {
        return std::make_unique<PhilosopherProgram>(table, arg, buggy, meals,
                                                    window);
      });
  return table;
}

}  // namespace ptest::workload
