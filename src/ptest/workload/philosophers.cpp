#include "ptest/workload/philosophers.hpp"

#include <algorithm>

namespace ptest::workload {

PhilosopherProgram::PhilosopherProgram(const PhilosopherTable& table,
                                       std::uint32_t index, bool buggy,
                                       std::uint32_t meals,
                                       std::uint32_t window)
    : meals_(meals), window_(window == 0 ? 1 : window) {
  const std::size_t i = index % kPhilosopherCount;
  const pcore::MutexId left = table.forks[i];
  const pcore::MutexId right = table.forks[(i + 1) % kPhilosopherCount];
  if (buggy) {
    // Cyclic order: everyone grabs the left fork first.
    first_ = left;
    second_ = right;
  } else {
    // Global order: lower mutex id first — no cycle possible.
    first_ = std::min(left, right);
    second_ = std::max(left, right);
  }
}

pcore::StepResult PhilosopherProgram::step(pcore::TaskContext&) {
  switch (phase_) {
    case 0:  // think
      phase_ = 1;
      return pcore::StepResult::compute(2);
    case 1:  // pick up first fork (blocks until held)
      phase_ = 2;
      return pcore::StepResult::lock(first_);
    case 2:  // work while holding the first fork — the deadlock window
      if (++window_done_ < window_) return pcore::StepResult::compute(1);
      window_done_ = 0;
      phase_ = 3;
      return pcore::StepResult::compute(1);
    case 3:  // pick up second fork
      phase_ = 4;
      return pcore::StepResult::lock(second_);
    case 4:  // eat
      phase_ = 5;
      return pcore::StepResult::compute(2);
    case 5:
      phase_ = 6;
      return pcore::StepResult::unlock(second_);
    case 6:
      ++eaten_;
      phase_ = (eaten_ < meals_) ? 0 : 7;
      return pcore::StepResult::unlock(first_);
    default:
      return pcore::StepResult::exit(0);
  }
}

PhilosopherTable register_philosophers(pcore::PcoreKernel& kernel, bool buggy,
                                       std::uint32_t meals,
                                       std::uint32_t window) {
  PhilosopherTable table;
  for (auto& fork : table.forks) fork = kernel.mutex_create();
  kernel.register_program(
      kPhilosopherProgramId,
      [table, buggy, meals, window](std::uint32_t arg) {
        return std::make_unique<PhilosopherProgram>(table, arg, buggy, meals,
                                                    window);
      });
  return table;
}

}  // namespace ptest::workload
