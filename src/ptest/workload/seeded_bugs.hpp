// Seeded-bug corpus for the fault-coverage experiments (paper §V future
// work: "The fault coverage of pTest also does not be verified").
//
// Each seeded bug is a small concurrent program whose defect manifests
// only under a specific schedule feature; the bench correlates pTest's
// pattern/merge configuration with how many of these ground-truth bugs it
// exposes:
//
//   kLostUpdate     — unprotected read-modify-write of a shared counter;
//                     manifests when the task is descheduled inside the
//                     window (detected in-program, surfaced via
//                     panic_on_nonzero_exit as a slave crash).
//   kOrderViolation — consumer assumes the producer's flag is already set;
//                     manifests when the consumer's check runs first.
//   kDeadlockPair   — two tasks locking two mutexes in opposite order;
//                     manifests when both hold their first lock.
#pragma once

#include <cstdint>

#include "ptest/pcore/kernel.hpp"

namespace ptest::workload {

enum class SeededBug : std::uint8_t {
  kLostUpdate = 0,
  kOrderViolation,
  kDeadlockPair,
};

inline constexpr std::size_t kSeededBugCount = 3;
[[nodiscard]] const char* to_string(SeededBug bug) noexcept;

/// Program id the bug's program is registered under.
[[nodiscard]] std::uint32_t seeded_bug_program_id(SeededBug bug) noexcept;

/// Registers the program(s) for `bug` and prepares kernel state (mutexes,
/// shared words).  Tasks created with arg = k differentiate roles
/// (producer/consumer, left/right locker).
void register_seeded_bug(pcore::PcoreKernel& kernel, SeededBug bug);

}  // namespace ptest::workload
