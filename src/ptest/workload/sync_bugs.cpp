#include "ptest/workload/sync_bugs.hpp"

#include "ptest/pcore/co_task.hpp"

namespace ptest::workload {

namespace {

// Shared-word layouts.  Scoped per bug: a kernel hosts ONE sync bug per
// session (scenario sessions register exactly one), so different bugs
// reuse the same words freely.  All stay clear of fig1's 0/1 and
// seeded_bugs' 2/3, which sync-bug kernels may legitimately coexist
// with.
constexpr std::size_t kDataWord = 4;     // lost wakeup: predicate
constexpr std::size_t kWaitingWord = 5;  // lost wakeup: waiter registered
constexpr std::size_t kWakeWord = 6;     // lost wakeup: wakeup delivered

constexpr std::size_t kTopWord = 4;       // ABA: stack top (node id + 1)
constexpr std::size_t kNextBase = 4;      // ABA: next(node) at kNextBase+node
constexpr std::size_t kFreedWord = 8;     // ABA: id+1 of the freed node

constexpr std::size_t kInitFlagWord = 4;  // DCL: "initialized" flag
constexpr std::size_t kPayloadAWord = 5;  // DCL: payload, first half
constexpr std::size_t kPayloadBWord = 6;  // DCL: payload, second half
constexpr std::int32_t kPayloadValue = 42;

constexpr std::size_t kReadersWord = 4;  // rw: a reader has started

constexpr std::size_t kCountWord = 4;  // barrier: arrival count
constexpr std::size_t kGenWord = 5;    // barrier: generation (benign)

constexpr std::size_t kHeadWord = 4;   // queue: consumer cursor
constexpr std::size_t kTailWord = 5;   // queue: producer cursor
constexpr std::size_t kSlotBase = 6;   // queue: ring slots
constexpr std::int32_t kQueueItems = 3;
constexpr std::int32_t kItemValueBase = 100;

constexpr std::size_t kFig1XWord = 0;  // same flags as workload/fig1.hpp
constexpr std::size_t kFig1YWord = 1;

constexpr std::size_t kIntentBase = 4;     // backoff: intent flag per role
constexpr std::size_t kHeartbeatBase = 6;  // backoff: progress counter per role

// Priority inversion: work-unit budgets of the medium-priority hog.  The
// buggy hog's interference exceeds any sane starvation horizon; the
// benign bound is what priority inheritance would guarantee — the
// holder resumes long before the horizon.
constexpr std::uint32_t kBuggyHogUnits = 4000;
constexpr std::uint32_t kBenignHogUnits = 60;

/// Consecutive frozen-heartbeat looks before a backoff peer counts as
/// dead.  Each look yields one tick, so a preempted (ready) peer would
/// have advanced — only suspension freezes the beat this long.  Small on
/// purpose: the verdict must usually land before the pattern's TR
/// resumes the victim, or the bug would need implausibly late resumes to
/// manifest.
constexpr int kStallChecks = 3;

/// Lost wakeup, signaler side: publish the data, then wake the waiter
/// only if it has already registered.
pcore::CoTask lost_wakeup_signaler_body() {
  pcore::TaskEnv env = co_await pcore::env();
  co_await pcore::compute();  // produce the data
  co_await pcore::compute();
  env.set_shared(kDataWord, 1);
  co_await pcore::compute();
  if (env.shared(kWaitingWord) == 1) env.set_shared(kWakeWord, 1);
  co_return 0;
}

/// Lost wakeup, waiter side: check the predicate, then register in a
/// *later* step (the lost-wakeup window), then sleep until woken.  The
/// buggy waiter trusts the wakeup alone; the benign one re-checks the
/// predicate each time it wakes up to spin.
pcore::CoTask lost_wakeup_waiter_body(bool benign) {
  pcore::TaskEnv env = co_await pcore::env();
  // Check the predicate once, outside any wait protocol.
  if (env.shared(kDataWord) == 1) co_return 0;
  co_await pcore::yield();
  // The window: predicate checked, wakeup not yet requested.
  for (int i = 0; i < 3; ++i) co_await pcore::yield();
  env.set_shared(kWaitingWord, 1);
  co_await pcore::compute();
  for (;;) {  // asleep: wait for the wakeup
    if (env.shared(kWakeWord) == 1) co_return 0;
    // The fix: waking to re-check the predicate tolerates a lost
    // signal.  The buggy variant sleeps on the wakeup flag alone.
    if (benign && env.shared(kDataWord) == 1) co_return 0;
    co_await pcore::yield();
  }
}

/// Reader/writer starvation, writer side: a short update, but created
/// with the lowest slot priority.  Wait for the read load to exist (the
/// writer is created first), then try to run the update — under reader
/// preference the scheduler never dispatches it again until the readers
/// drain.
pcore::CoTask rw_writer_body() {
  pcore::TaskEnv env = co_await pcore::env();
  while (env.shared(kReadersWord) == 0) co_await pcore::yield();
  for (int i = 0; i < 3; ++i) co_await pcore::compute();
  co_return 0;
}

/// Reader side: long (buggy) or short (benign) read sections at higher
/// priorities, so the strict priority scheduler keeps the ready writer
/// off the CPU.  Re-raises the readers flag every step, as real readers
/// re-enter their read sections.
pcore::CoTask rw_reader_body(std::uint32_t section) {
  pcore::TaskEnv env = co_await pcore::env();
  for (std::uint32_t i = 0; i < section; ++i) {
    env.set_shared(kReadersWord, 1);
    co_await pcore::compute();
  }
  env.set_shared(kReadersWord, 1);
  co_return 0;
}

/// ABA victim popper: read top, read next, get descheduled (window),
/// then "CAS".
pcore::CoTask aba_victim_body() {
  pcore::TaskEnv env = co_await pcore::env();
  // Read (top, next); the hazard window opens here.
  const std::int32_t top = env.shared(kTopWord);
  if (top == 0) co_return 0;
  const std::int32_t next =
      env.shared(kNextBase + static_cast<std::size_t>(top));
  co_await pcore::yield();
  // Descheduled between read and CAS.
  for (int i = 0; i < 2; ++i) co_await pcore::yield();
  co_await pcore::compute();
  if (env.shared(kTopWord) != top) {
    co_return 0;  // CAS failed; retry elided
  }
  env.set_shared(kTopWord, next);  // CAS "succeeded"
  if (next != 0 && env.shared(kFreedWord) == next) {
    co_return kAbaExitCode;  // freed node live
  }
  co_return 0;
}

/// ABA interferer: pop A, pop B (freeing it), push A back — the classic
/// recycling that makes the victim's CAS succeed against a stale next
/// pointer.  Stack is A(1) -> B(2) -> C(3), node ids stored +1 so 0
/// reads as null.
pcore::CoTask aba_interferer_body() {
  pcore::TaskEnv env = co_await pcore::env();
  if (env.shared(kTopWord) != 1) {
    co_return 0;  // stack not pristine; bail
  }
  co_await pcore::compute();
  env.set_shared(kTopWord, env.shared(kNextBase + 1));  // pop A
  co_await pcore::compute();
  env.set_shared(kTopWord, env.shared(kNextBase + 2));  // pop B, free it
  env.set_shared(kFreedWord, 2);
  co_await pcore::compute();
  env.set_shared(kNextBase + 1, env.shared(kTopWord));  // push A back
  env.set_shared(kTopWord, 1);
  co_return 0;
}

/// Double-checked locking.  Every task runs the same code: fast-path
/// check of the flag without the lock, slow path under the lock.  The
/// buggy initializer publishes the flag before the second payload word
/// (the reordering the idiom is famous for); a fast-path reader then
/// uses torn payload.
pcore::CoTask dcl_body(pcore::MutexId lock, bool benign) {
  pcore::TaskEnv env = co_await pcore::env();
  if (env.shared(kInitFlagWord) == 1) {  // first (lock-free) check
    co_await pcore::compute();
  } else {
    co_await pcore::lock(lock);
    if (env.shared(kInitFlagWord) == 1) {  // second check, now locked
      co_await pcore::compute();
    } else {
      env.set_shared(kPayloadAWord, kPayloadValue);
      if (benign) {  // benign order: finish the payload, then publish
        co_await pcore::compute();
        env.set_shared(kPayloadBWord, kPayloadValue);
        env.set_shared(kInitFlagWord, 1);
        co_await pcore::compute();
      } else {
        // The bug: the flag becomes visible before payload B exists.
        env.set_shared(kInitFlagWord, 1);
        co_await pcore::compute();
        co_await pcore::yield();  // the torn window
        env.set_shared(kPayloadBWord, kPayloadValue);
        co_await pcore::compute();
      }
    }
    co_await pcore::unlock(lock);
  }
  // Use the singleton.
  if (env.shared(kPayloadAWord) != kPayloadValue ||
      env.shared(kPayloadBWord) != kPayloadValue) {
    co_return kDclExitCode;
  }
  co_return 0;
}

/// Barrier reuse.  `parties` tasks arrive at a counting barrier; the
/// last arriver immediately resets the count for the next use.  A waiter
/// that has not yet observed count == parties spins forever.  The benign
/// variant releases waiters through a generation word instead of the
/// (reset) count.
pcore::CoTask barrier_body(std::int32_t parties, bool benign) {
  pcore::TaskEnv env = co_await pcore::env();
  const std::int32_t gen = env.shared(kGenWord);  // arrive
  const std::int32_t count = env.shared(kCountWord) + 1;
  env.set_shared(kCountWord, count);
  co_await pcore::compute();
  if (count == parties) {  // last arriver: reset (and bump the generation)
    env.set_shared(kCountWord, 0);
    env.set_shared(kGenWord, gen + 1);
    co_return 0;
  }
  for (;;) {  // waiter
    if (benign) {  // generation release survives the count reset
      if (env.shared(kGenWord) != gen) co_return 0;
    } else if (env.shared(kCountWord) >= parties) {
      co_return 0;
    }
    co_await pcore::yield();
  }
}

/// Ring-buffer producer: the buggy variant publishes the advanced tail
/// before writing the slot.
pcore::CoTask queue_producer_body(bool benign) {
  pcore::TaskEnv env = co_await pcore::env();
  for (std::int32_t item = 0; item < kQueueItems; ++item) {
    const std::size_t slot = kSlotBase + static_cast<std::size_t>(item);
    if (benign) {  // write, then publish
      env.set_shared(slot, kItemValueBase + item);
    } else {  // the bug: publish, then write
      env.set_shared(kTailWord, item + 1);
    }
    co_await pcore::yield();  // the publication window
    if (benign) {
      env.set_shared(kTailWord, item + 1);
    } else {
      env.set_shared(slot, kItemValueBase + item);
    }
    co_await pcore::compute();
  }
  co_return 0;
}

/// Ring-buffer consumer: reads every slot the tail claims is ready and
/// asserts its value.
pcore::CoTask queue_consumer_body() {
  pcore::TaskEnv env = co_await pcore::env();
  for (;;) {
    const std::int32_t head = env.shared(kHeadWord);
    if (head >= kQueueItems) co_return 0;
    if (head < env.shared(kTailWord)) {
      const std::int32_t value =
          env.shared(kSlotBase + static_cast<std::size_t>(head));
      if (value != kItemValueBase + head) {
        co_return kQueueExitCode;  // read before write
      }
      env.set_shared(kHeadWord, head + 1);
      co_await pcore::compute();
      continue;
    }
    co_await pcore::yield();  // queue empty; spin politely
  }
}

/// The Fig. 1 spin fault, committer-driveable.
/// S1: x = 1; while (y == 1) yield; x = 0; end.  (S2 swaps x and y.)
/// The work between raising the flag and entering the spin loop is the
/// fault's alignment window: two tasks created within it both see the
/// other's flag raised and spin forever, reproducing the paper's
/// K a L f g h b c g h ... order through pattern-driven task creation.
pcore::CoTask fig1_pattern_body(std::size_t mine, std::size_t other,
                                int window) {
  pcore::TaskEnv env = co_await pcore::env();
  env.set_shared(mine, 1);  // a / f: raise my flag
  co_await pcore::compute();
  // Work before the loop — the alignment window.  window + 1 computes,
  // preserving the old machine's post-decrement off-by-one.
  for (int i = 0; i < window + 1; ++i) co_await pcore::compute();
  // b / g: spin while the other flag is raised.
  while (env.shared(other) == 1) co_await pcore::yield();
  co_await pcore::compute();
  env.set_shared(mine, 0);  // d / i: lower my flag and end
  co_return 0;
}

/// Priority inversion, low-priority holder: takes the mutex and runs a
/// short critical section.
pcore::CoTask pinv_holder_body(pcore::MutexId lock) {
  co_await pcore::lock(lock);
  for (int i = 0; i < 6; ++i) co_await pcore::compute();  // critical section
  co_await pcore::unlock(lock);
  co_return 0;
}

/// Medium-priority hog: computes `units` work — the buggy budget exceeds
/// the starvation horizon, so the preempted holder sits
/// Ready-but-unscheduled while the high-priority waiter stays blocked on
/// the mutex it holds.
pcore::CoTask pinv_hog_body(std::uint32_t units) {
  for (std::uint32_t i = 0; i < units; ++i) co_await pcore::compute();
  co_return 0;
}

/// High-priority waiter: blocks on the mutex, then releases and exits.
pcore::CoTask pinv_waiter_body(pcore::MutexId lock) {
  co_await pcore::lock(lock);
  co_await pcore::unlock(lock);
  co_return 0;
}

/// Livelock via mutual-intent backoff with a stall detector.  Protocol
/// per task: raise the intent flag; if the peer's flag is up, *wait
/// politely* (yield) while the peer's heartbeat counter advances — a
/// merely preempted peer uses exactly those yielded ticks to finish its
/// guarded section, so contention resolves.  Only when the heartbeat
/// stalls for `kStallChecks` consecutive looks (the peer was SUSPENDED
/// mid-section — yields cannot run it) does the task declare the peer
/// dead, retreat, and retry.  The bug is the retry's backoff: busy-wait
/// computes.  Once a higher-priority task enters that loop, the
/// suspended-then-resumed flag owner is ready but never scheduled again
/// — its heartbeat stays frozen, the retrier spins forever, and the
/// detector's termination watchdog reports the hang.  The benign
/// variant backs off by yielding (the polite fix): the resumed owner
/// gets the CPU back, finishes, and both tasks terminate under every
/// schedule.  Provoking the bug therefore requires a suspend landing
/// inside the owner's guarded section — precisely the schedule feature
/// PFA suspend/resume patterns control.
pcore::CoTask livelock_backoff_body(std::size_t id, bool benign) {
  const std::size_t mine = kIntentBase + id;
  const std::size_t theirs = kIntentBase + (1 - id);
  const std::size_t my_beat = kHeartbeatBase + id;
  const std::size_t their_beat = kHeartbeatBase + (1 - id);
  pcore::TaskEnv env = co_await pcore::env();
  // Warm-up: pure pacing before the protocol.
  for (int i = 0; i < 4; ++i) co_await pcore::yield();
  co_await pcore::compute();
  bool dead_latched = false;
  std::int32_t last_beat = -1;
  int stalled = 0;
  bool entered = false;
  while (!entered) {
    env.set_shared(mine, 1);  // raise intent
    co_await pcore::compute();
    entered = true;
    // Contention: watch the peer's heartbeat while it holds.
    while (env.shared(theirs) == 1) {
      if (!dead_latched) {
        const std::int32_t beat = env.shared(their_beat);
        if (beat != last_beat) {  // alive — keep waiting politely
          last_beat = beat;
          stalled = 0;
          co_await pcore::yield();
          continue;
        }
        if (++stalled <= kStallChecks) {
          co_await pcore::yield();
          continue;
        }
        // Heartbeat frozen too long: declare the peer dead.  The bug
        // is the latch — the buggy variant never re-evaluates the
        // verdict, so its retry loop stays busy from here on and the
        // resumed owner never gets a tick to prove it is alive.
        if (!benign) dead_latched = true;
        stalled = 0;
      }
      env.set_shared(mine, 0);  // retreat
      co_await pcore::compute();
      for (int b = 0; b < 2; ++b) {  // back off, then retry
        if (benign) {
          // The polite fix: yield the CPU to the (resumed, lower
          // priority) flag owner so its heartbeat can move.
          co_await pcore::yield();
        } else {
          // The bug: busy-wait backoff hogs the CPU the owner needs.
          co_await pcore::compute();
        }
      }
      co_await pcore::compute();
      entered = false;
      break;
    }
  }
  co_await pcore::compute();
  // Guarded section: every step moves the heartbeat.
  for (int i = 0; i < 16; ++i) {
    env.set_shared(my_beat, env.shared(my_beat) + 1);
    co_await pcore::compute();
  }
  env.set_shared(mine, 0);
  co_await pcore::compute();
  co_return 0;
}

}  // namespace

const char* to_string(SyncBug bug) noexcept {
  switch (bug) {
    case SyncBug::kLostWakeup: return "lost-wakeup";
    case SyncBug::kWriterStarvation: return "writer-starvation";
    case SyncBug::kAbaStack: return "aba-stack";
    case SyncBug::kDoubleCheckedLock: return "double-checked-lock";
    case SyncBug::kBarrierReuse: return "barrier-reuse";
    case SyncBug::kQueueOrder: return "queue-order";
    case SyncBug::kFig1Livelock: return "fig1-livelock";
    case SyncBug::kPriorityInversion: return "priority-inversion";
    case SyncBug::kLivelockBackoff: return "livelock-backoff";
  }
  return "?";
}

std::uint32_t sync_bug_program_id(SyncBug bug) noexcept {
  return 20 + static_cast<std::uint32_t>(bug);
}

void register_sync_bug(pcore::PcoreKernel& kernel, SyncBug bug, bool benign) {
  const std::uint32_t id = sync_bug_program_id(bug);
  switch (bug) {
    case SyncBug::kLostWakeup:
      kernel.register_program(id, [benign](std::uint32_t arg) {
        return pcore::make_co_program(
            "lost-wakeup", arg == 0 ? lost_wakeup_signaler_body()
                                    : lost_wakeup_waiter_body(benign));
      });
      break;
    case SyncBug::kWriterStarvation:
      kernel.register_program(id, [benign](std::uint32_t arg) {
        return arg == 0
                   ? pcore::make_co_program("rw-writer", rw_writer_body())
                   : pcore::make_co_program(
                         "rw-reader", rw_reader_body(benign ? 40u : 500u));
      });
      break;
    case SyncBug::kAbaStack:
      // Stack A(1) -> B(2) -> C(3); ids stored +1 so 0 is null.
      kernel.set_shared_word(kTopWord, 1);
      kernel.set_shared_word(kNextBase + 1, 2);
      kernel.set_shared_word(kNextBase + 2, 3);
      kernel.set_shared_word(kNextBase + 3, 0);
      kernel.register_program(id, [](std::uint32_t arg) {
        return pcore::make_co_program(
            "aba-stack", arg == 0 ? aba_victim_body() : aba_interferer_body());
      });
      break;
    case SyncBug::kDoubleCheckedLock: {
      const pcore::MutexId lock = kernel.mutex_create();
      kernel.register_program(id, [lock, benign](std::uint32_t) {
        return pcore::make_co_program("dcl-init", dcl_body(lock, benign));
      });
      break;
    }
    case SyncBug::kBarrierReuse:
      kernel.register_program(id, [benign](std::uint32_t) {
        return pcore::make_co_program("barrier", barrier_body(3, benign));
      });
      break;
    case SyncBug::kQueueOrder:
      kernel.register_program(id, [benign](std::uint32_t arg) {
        return pcore::make_co_program(
            "queue-order",
            arg == 0 ? queue_producer_body(benign) : queue_consumer_body());
      });
      break;
    case SyncBug::kPriorityInversion: {
      const pcore::MutexId lock = kernel.mutex_create();
      kernel.register_program(id, [lock, benign](std::uint32_t arg) {
        const std::uint32_t units = benign ? kBenignHogUnits : kBuggyHogUnits;
        if (arg == 0) {
          return pcore::make_co_program("pinv-holder", pinv_holder_body(lock));
        }
        if (arg == 1) {
          return pcore::make_co_program("pinv-hog", pinv_hog_body(units));
        }
        return pcore::make_co_program("pinv-waiter", pinv_waiter_body(lock));
      });
      break;
    }
    case SyncBug::kLivelockBackoff:
      kernel.register_program(id, [benign](std::uint32_t arg) {
        return pcore::make_co_program("livelock-backoff",
                                      livelock_backoff_body(arg % 2, benign));
      });
      break;
    case SyncBug::kFig1Livelock:
      kernel.register_program(id, [](std::uint32_t arg) {
        return pcore::make_co_program(
            "fig1-pattern",
            arg % 2 == 0 ? fig1_pattern_body(kFig1XWord, kFig1YWord, 8)
                         : fig1_pattern_body(kFig1YWord, kFig1XWord, 8));
      });
      break;
  }
}

}  // namespace ptest::workload
