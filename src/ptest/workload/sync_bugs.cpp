#include "ptest/workload/sync_bugs.hpp"

#include <memory>

namespace ptest::workload {

namespace {

// Shared-word layouts.  Scoped per bug: a kernel hosts ONE sync bug per
// session (scenario sessions register exactly one), so different bugs
// reuse the same words freely.  All stay clear of fig1's 0/1 and
// seeded_bugs' 2/3, which sync-bug kernels may legitimately coexist
// with.
constexpr std::size_t kDataWord = 4;     // lost wakeup: predicate
constexpr std::size_t kWaitingWord = 5;  // lost wakeup: waiter registered
constexpr std::size_t kWakeWord = 6;     // lost wakeup: wakeup delivered

constexpr std::size_t kTopWord = 4;       // ABA: stack top (node id + 1)
constexpr std::size_t kNextBase = 4;      // ABA: next(node) at kNextBase+node
constexpr std::size_t kFreedWord = 8;     // ABA: id+1 of the freed node

constexpr std::size_t kInitFlagWord = 4;  // DCL: "initialized" flag
constexpr std::size_t kPayloadAWord = 5;  // DCL: payload, first half
constexpr std::size_t kPayloadBWord = 6;  // DCL: payload, second half
constexpr std::int32_t kPayloadValue = 42;

constexpr std::size_t kReadersWord = 4;  // rw: a reader has started

constexpr std::size_t kCountWord = 4;  // barrier: arrival count
constexpr std::size_t kGenWord = 5;    // barrier: generation (benign)

constexpr std::size_t kHeadWord = 4;   // queue: consumer cursor
constexpr std::size_t kTailWord = 5;   // queue: producer cursor
constexpr std::size_t kSlotBase = 6;   // queue: ring slots
constexpr std::int32_t kQueueItems = 3;
constexpr std::int32_t kItemValueBase = 100;

constexpr std::size_t kFig1XWord = 0;  // same flags as workload/fig1.hpp
constexpr std::size_t kFig1YWord = 1;

constexpr std::size_t kIntentBase = 4;     // backoff: intent flag per role
constexpr std::size_t kHeartbeatBase = 6;  // backoff: progress counter per role

// Priority inversion: work-unit budgets of the medium-priority hog.  The
// buggy hog's interference exceeds any sane starvation horizon; the
// benign bound is what priority inheritance would guarantee — the
// holder resumes long before the horizon.
constexpr std::uint32_t kBuggyHogUnits = 4000;
constexpr std::uint32_t kBenignHogUnits = 60;

/// Lost wakeup.  arg 0 = signaler: publish the data, then wake the waiter
/// only if it has already registered.  arg != 0 = waiter: check the
/// predicate, then register in a *later* step (the lost-wakeup window),
/// then sleep until woken.  The buggy waiter trusts the wakeup alone; the
/// benign one re-checks the predicate each time it wakes up to spin.
class LostWakeupProgram final : public pcore::TaskProgram {
 public:
  LostWakeupProgram(bool signaler, bool benign)
      : signaler_(signaler), benign_(benign) {}
  [[nodiscard]] std::string name() const override { return "lost-wakeup"; }

  pcore::StepResult step(pcore::TaskContext& ctx) override {
    if (signaler_) {
      switch (phase_++) {
        case 0:
        case 1:
          return pcore::StepResult::compute();  // produce the data
        case 2:
          ctx.set_shared(kDataWord, 1);
          return pcore::StepResult::compute();
        default:
          if (ctx.shared(kWaitingWord) == 1) ctx.set_shared(kWakeWord, 1);
          return pcore::StepResult::exit(0);
      }
    }
    switch (phase_) {
      case 0:  // check the predicate once, outside any wait protocol
        if (ctx.shared(kDataWord) == 1) return pcore::StepResult::exit(0);
        phase_ = 1;
        return pcore::StepResult::yield();
      case 1:  // the window: predicate checked, wakeup not yet requested
        if (window_++ < 3) return pcore::StepResult::yield();
        ctx.set_shared(kWaitingWord, 1);
        phase_ = 2;
        return pcore::StepResult::compute();
      default:  // asleep: wait for the wakeup
        if (ctx.shared(kWakeWord) == 1) return pcore::StepResult::exit(0);
        // The fix: waking to re-check the predicate tolerates a lost
        // signal.  The buggy variant sleeps on the wakeup flag alone.
        if (benign_ && ctx.shared(kDataWord) == 1) {
          return pcore::StepResult::exit(0);
        }
        return pcore::StepResult::yield();
    }
  }

 private:
  bool signaler_;
  bool benign_;
  int phase_ = 0;
  int window_ = 0;
};

/// Reader/writer starvation.  arg 0 = writer: a short update, but created
/// with the lowest slot priority.  arg != 0 = readers: long (buggy) or
/// short (benign) read sections at higher priorities, so the strict
/// priority scheduler keeps the ready writer off the CPU.
class RwStarvationProgram final : public pcore::TaskProgram {
 public:
  RwStarvationProgram(bool writer, std::uint32_t section)
      : writer_(writer), remaining_(writer ? 3 : section) {}
  [[nodiscard]] std::string name() const override {
    return writer_ ? "rw-writer" : "rw-reader";
  }

  pcore::StepResult step(pcore::TaskContext& ctx) override {
    if (writer_) {
      // Wait for the read load to exist (the writer is created first),
      // then try to run the update — under reader preference the
      // scheduler never dispatches it again until the readers drain.
      if (ctx.shared(kReadersWord) == 0) return pcore::StepResult::yield();
      if (remaining_-- > 0) return pcore::StepResult::compute();
      return pcore::StepResult::exit(0);
    }
    ctx.set_shared(kReadersWord, 1);
    if (remaining_-- > 0) return pcore::StepResult::compute();
    return pcore::StepResult::exit(0);
  }

 private:
  bool writer_;
  std::uint32_t remaining_;
};

/// ABA on a lock-free stack of three nodes A(1) -> B(2) -> C(3), node ids
/// stored +1 so 0 reads as null.  arg 0 = victim popper: read top, read
/// next, get descheduled (window), then "CAS".  arg != 0 = interferer:
/// pop A, pop B (freeing it), push A back — the classic recycling that
/// makes the victim's CAS succeed against a stale next pointer.
class AbaStackProgram final : public pcore::TaskProgram {
 public:
  explicit AbaStackProgram(bool victim) : victim_(victim) {}
  [[nodiscard]] std::string name() const override { return "aba-stack"; }

  pcore::StepResult step(pcore::TaskContext& ctx) override {
    if (victim_) {
      switch (phase_) {
        case 0:  // read (top, next); the hazard window opens here
          top_ = ctx.shared(kTopWord);
          if (top_ == 0) return pcore::StepResult::exit(0);
          next_ = ctx.shared(kNextBase + static_cast<std::size_t>(top_));
          phase_ = 1;
          return pcore::StepResult::yield();
        case 1:  // descheduled between read and CAS
          if (window_++ < 2) return pcore::StepResult::yield();
          phase_ = 2;
          return pcore::StepResult::compute();
        default:
          if (ctx.shared(kTopWord) != top_) {
            return pcore::StepResult::exit(0);  // CAS failed; retry elided
          }
          ctx.set_shared(kTopWord, next_);  // CAS "succeeded"
          if (next_ != 0 && ctx.shared(kFreedWord) == next_) {
            return pcore::StepResult::exit(kAbaExitCode);  // freed node live
          }
          return pcore::StepResult::exit(0);
      }
    }
    switch (phase_++) {
      case 0:
        if (ctx.shared(kTopWord) != 1) {
          return pcore::StepResult::exit(0);  // stack not pristine; bail
        }
        return pcore::StepResult::compute();
      case 1:  // pop A
        ctx.set_shared(kTopWord, ctx.shared(kNextBase + 1));
        return pcore::StepResult::compute();
      case 2:  // pop B and free it
        ctx.set_shared(kTopWord, ctx.shared(kNextBase + 2));
        ctx.set_shared(kFreedWord, 2);
        return pcore::StepResult::compute();
      default:  // push A back: next(A) = top, top = A
        ctx.set_shared(kNextBase + 1, ctx.shared(kTopWord));
        ctx.set_shared(kTopWord, 1);
        return pcore::StepResult::exit(0);
    }
  }

 private:
  bool victim_;
  int phase_ = 0;
  int window_ = 0;
  std::int32_t top_ = 0;
  std::int32_t next_ = 0;
};

/// Double-checked locking.  Every task runs the same code: fast-path check
/// of the flag without the lock, slow path under the lock.  The buggy
/// initializer publishes the flag before the second payload word (the
/// reordering the idiom is famous for); a fast-path reader then uses torn
/// payload.
class DclProgram final : public pcore::TaskProgram {
 public:
  DclProgram(pcore::MutexId lock, bool benign)
      : lock_(lock), benign_(benign) {}
  [[nodiscard]] std::string name() const override { return "dcl-init"; }

  pcore::StepResult step(pcore::TaskContext& ctx) override {
    switch (phase_) {
      case 0:  // first (lock-free) check
        if (ctx.shared(kInitFlagWord) == 1) {
          phase_ = 6;
          return pcore::StepResult::compute();
        }
        phase_ = 1;
        return pcore::StepResult::lock(lock_);
      case 1:  // second check, now holding the lock
        if (ctx.shared(kInitFlagWord) == 1) {
          phase_ = 5;
          return pcore::StepResult::compute();
        }
        ctx.set_shared(kPayloadAWord, kPayloadValue);
        if (benign_) {
          phase_ = 2;
        } else {
          // The bug: the flag becomes visible before payload B exists.
          ctx.set_shared(kInitFlagWord, 1);
          phase_ = 3;
        }
        return pcore::StepResult::compute();
      case 2:  // benign order: finish the payload, then publish
        ctx.set_shared(kPayloadBWord, kPayloadValue);
        ctx.set_shared(kInitFlagWord, 1);
        phase_ = 5;
        return pcore::StepResult::compute();
      case 3:  // buggy order: the torn window, then the late write
        phase_ = 4;
        return pcore::StepResult::yield();
      case 4:
        ctx.set_shared(kPayloadBWord, kPayloadValue);
        phase_ = 5;
        return pcore::StepResult::compute();
      case 5:
        phase_ = 6;
        return pcore::StepResult::unlock(lock_);
      default:  // use the singleton
        if (ctx.shared(kPayloadAWord) != kPayloadValue ||
            ctx.shared(kPayloadBWord) != kPayloadValue) {
          return pcore::StepResult::exit(kDclExitCode);
        }
        return pcore::StepResult::exit(0);
    }
  }

 private:
  pcore::MutexId lock_;
  bool benign_;
  int phase_ = 0;
};

/// Barrier reuse.  `parties` tasks arrive at a counting barrier; the last
/// arriver immediately resets the count for the next use.  A waiter that
/// has not yet observed count == parties spins forever.  The benign
/// variant releases waiters through a generation word instead of the
/// (reset) count.
class BarrierReuseProgram final : public pcore::TaskProgram {
 public:
  BarrierReuseProgram(std::int32_t parties, bool benign)
      : parties_(parties), benign_(benign) {}
  [[nodiscard]] std::string name() const override { return "barrier"; }

  pcore::StepResult step(pcore::TaskContext& ctx) override {
    switch (phase_) {
      case 0: {  // arrive
        gen_ = ctx.shared(kGenWord);
        const std::int32_t count = ctx.shared(kCountWord) + 1;
        ctx.set_shared(kCountWord, count);
        phase_ = count == parties_ ? 1 : 2;
        return pcore::StepResult::compute();
      }
      case 1:  // last arriver: reset for reuse (and bump the generation)
        ctx.set_shared(kCountWord, 0);
        ctx.set_shared(kGenWord, gen_ + 1);
        return pcore::StepResult::exit(0);
      default:  // waiter
        if (benign_) {  // generation release survives the count reset
          if (ctx.shared(kGenWord) != gen_) return pcore::StepResult::exit(0);
        } else if (ctx.shared(kCountWord) >= parties_) {
          return pcore::StepResult::exit(0);
        }
        return pcore::StepResult::yield();
    }
  }

 private:
  std::int32_t parties_;
  bool benign_;
  std::int32_t gen_ = 0;
  int phase_ = 0;
};

/// Order-violation producer/consumer on a ring buffer.  arg 0 = producer:
/// the buggy variant publishes the advanced tail before writing the slot;
/// arg != 0 = consumer: reads every slot the tail claims is ready and
/// asserts its value.
class QueueOrderProgram final : public pcore::TaskProgram {
 public:
  QueueOrderProgram(bool producer, bool benign)
      : producer_(producer), benign_(benign) {}
  [[nodiscard]] std::string name() const override { return "queue-order"; }

  pcore::StepResult step(pcore::TaskContext& ctx) override {
    if (producer_) {
      if (item_ >= kQueueItems) return pcore::StepResult::exit(0);
      const std::size_t slot = kSlotBase + static_cast<std::size_t>(item_);
      switch (phase_) {
        case 0:
          if (benign_) {  // write, then publish
            ctx.set_shared(slot, kItemValueBase + item_);
          } else {  // the bug: publish, then write
            ctx.set_shared(kTailWord, item_ + 1);
          }
          phase_ = 1;
          return pcore::StepResult::yield();  // the publication window
        default:
          if (benign_) {
            ctx.set_shared(kTailWord, item_ + 1);
          } else {
            ctx.set_shared(slot, kItemValueBase + item_);
          }
          ++item_;
          phase_ = 0;
          return pcore::StepResult::compute();
      }
    }
    const std::int32_t head = ctx.shared(kHeadWord);
    if (head >= kQueueItems) return pcore::StepResult::exit(0);
    if (head < ctx.shared(kTailWord)) {
      const std::int32_t value =
          ctx.shared(kSlotBase + static_cast<std::size_t>(head));
      if (value != kItemValueBase + head) {
        return pcore::StepResult::exit(kQueueExitCode);  // read before write
      }
      ctx.set_shared(kHeadWord, head + 1);
      return pcore::StepResult::compute();
    }
    return pcore::StepResult::yield();  // queue empty; spin politely
  }

 private:
  bool producer_;
  bool benign_;
  std::int32_t item_ = 0;
  int phase_ = 0;
};

/// The Fig. 1 spin fault, committer-driveable: arg parity picks the role.
/// S1: x = 1; while (y == 1) yield; x = 0; end.  (S2 swaps x and y.)
/// The work between raising the flag and entering the spin loop is the
/// fault's alignment window: two tasks created within it both see the
/// other's flag raised and spin forever, reproducing the paper's
/// K a L f g h b c g h ... order through pattern-driven task creation.
class Fig1SpinProgram final : public pcore::TaskProgram {
 public:
  Fig1SpinProgram(std::size_t mine, std::size_t other, int window)
      : mine_(mine), other_(other), window_left_(window) {}
  [[nodiscard]] std::string name() const override { return "fig1-pattern"; }

  pcore::StepResult step(pcore::TaskContext& ctx) override {
    switch (phase_) {
      case 0:  // a / f: raise my flag
        ctx.set_shared(mine_, 1);
        phase_ = 1;
        return pcore::StepResult::compute();
      case 1:  // work before the loop — the alignment window
        if (window_left_-- > 0) return pcore::StepResult::compute();
        phase_ = 2;
        return pcore::StepResult::compute();
      case 2:  // b / g: spin while the other flag is raised
        if (ctx.shared(other_) == 1) return pcore::StepResult::yield();
        phase_ = 3;
        return pcore::StepResult::compute();
      default:  // d / i: lower my flag and end
        ctx.set_shared(mine_, 0);
        return pcore::StepResult::exit(0);
    }
  }

 private:
  std::size_t mine_;
  std::size_t other_;
  int window_left_;
  int phase_ = 0;
};

/// Priority inversion (arg picks the role; slot priorities rise with the
/// slot index, so the creation order low -> medium -> high matches the
/// classic topology).  arg 0 = low-priority holder: takes the mutex and
/// runs a short critical section.  arg 1 = medium-priority hog: computes
/// `units` work — the buggy budget exceeds the starvation horizon, so
/// the preempted holder sits Ready-but-unscheduled while the
/// high-priority waiter stays blocked on the mutex it holds.  arg >= 2 =
/// high-priority waiter: blocks on the mutex, then releases and exits.
class PriorityInversionProgram final : public pcore::TaskProgram {
 public:
  enum class Role : std::uint8_t { kHolder, kHog, kWaiter };

  PriorityInversionProgram(Role role, pcore::MutexId lock,
                           std::uint32_t hog_units)
      : role_(role), lock_(lock), hog_left_(hog_units) {}
  [[nodiscard]] std::string name() const override {
    switch (role_) {
      case Role::kHolder: return "pinv-holder";
      case Role::kHog: return "pinv-hog";
      case Role::kWaiter: return "pinv-waiter";
    }
    return "pinv";
  }

  pcore::StepResult step(pcore::TaskContext&) override {
    switch (role_) {
      case Role::kHolder:
        switch (phase_++) {
          case 0: return pcore::StepResult::lock(lock_);
          case 1:
          case 2:
          case 3:
          case 4:
          case 5:
          case 6: return pcore::StepResult::compute();  // critical section
          case 7: return pcore::StepResult::unlock(lock_);
          default: return pcore::StepResult::exit(0);
        }
      case Role::kHog:
        if (hog_left_-- > 0) return pcore::StepResult::compute();
        return pcore::StepResult::exit(0);
      case Role::kWaiter:
        switch (phase_++) {
          case 0: return pcore::StepResult::lock(lock_);
          case 1: return pcore::StepResult::unlock(lock_);
          default: return pcore::StepResult::exit(0);
        }
    }
    return pcore::StepResult::exit(0);
  }

 private:
  Role role_;
  pcore::MutexId lock_;
  std::uint32_t hog_left_;
  int phase_ = 0;
};

/// Livelock via mutual-intent backoff with a stall detector.  Protocol
/// per task: raise the intent flag; if the peer's flag is up, *wait
/// politely* (yield) while the peer's heartbeat counter advances — a
/// merely preempted peer uses exactly those yielded ticks to finish its
/// guarded section, so contention resolves.  Only when the heartbeat
/// stalls for `kStallChecks` consecutive looks (the peer was SUSPENDED
/// mid-section — yields cannot run it) does the task declare the peer
/// dead, retreat, and retry.  The bug is the retry's backoff: busy-wait
/// computes.  Once a higher-priority task enters that loop, the
/// suspended-then-resumed flag owner is ready but never scheduled again
/// — its heartbeat stays frozen, the retrier spins forever, and the
/// detector's termination watchdog reports the hang.  The benign
/// variant backs off by yielding (the polite fix): the resumed owner
/// gets the CPU back, finishes, and both tasks terminate under every
/// schedule.  Provoking the bug therefore requires a suspend landing
/// inside the owner's guarded section — precisely the schedule feature
/// PFA suspend/resume patterns control.
class LivelockBackoffProgram final : public pcore::TaskProgram {
 public:
  LivelockBackoffProgram(std::size_t id, bool benign)
      : mine_(kIntentBase + id), theirs_(kIntentBase + (1 - id)),
        my_beat_(kHeartbeatBase + id), their_beat_(kHeartbeatBase + (1 - id)),
        benign_(benign) {}
  [[nodiscard]] std::string name() const override {
    return "livelock-backoff";
  }

  pcore::StepResult step(pcore::TaskContext& ctx) override {
    switch (phase_) {
      case 0:  // warm-up: pure pacing before the protocol
        if (warmup_left_-- > 0) return pcore::StepResult::yield();
        phase_ = 1;
        return pcore::StepResult::compute();
      case 1:  // raise intent
        ctx.set_shared(mine_, 1);
        phase_ = 2;
        return pcore::StepResult::compute();
      case 2:  // contention: watch the peer's heartbeat while it holds
        if (ctx.shared(theirs_) == 1) {
          if (!dead_latched_) {
            const std::int32_t beat = ctx.shared(their_beat_);
            if (beat != last_beat_) {  // alive — keep waiting politely
              last_beat_ = beat;
              stalled_ = 0;
              return pcore::StepResult::yield();
            }
            if (++stalled_ <= kStallChecks) return pcore::StepResult::yield();
            // Heartbeat frozen too long: declare the peer dead.  The bug
            // is the latch — the buggy variant never re-evaluates the
            // verdict, so its retry loop stays busy from here on and the
            // resumed owner never gets a tick to prove it is alive.
            if (!benign_) dead_latched_ = true;
            stalled_ = 0;
          }
          ctx.set_shared(mine_, 0);  // retreat
          backoff_left_ = 2;
          phase_ = 3;
          return pcore::StepResult::compute();
        }
        phase_ = 4;
        return pcore::StepResult::compute();
      case 3:  // back off, then retry
        if (backoff_left_-- > 0) {
          // The bug: busy-wait backoff hogs the CPU the (resumed, lower
          // priority) flag owner needs to move its heartbeat; the fix
          // yields it.
          return benign_ ? pcore::StepResult::yield()
                         : pcore::StepResult::compute();
        }
        phase_ = 1;
        return pcore::StepResult::compute();
      case 4:  // guarded section: every step moves the heartbeat
        if (critical_left_-- > 0) {
          ctx.set_shared(my_beat_, ctx.shared(my_beat_) + 1);
          return pcore::StepResult::compute();
        }
        ctx.set_shared(mine_, 0);
        phase_ = 5;
        return pcore::StepResult::compute();
      default:
        return pcore::StepResult::exit(0);
    }
  }

 private:
  /// Consecutive frozen-heartbeat looks before the peer counts as dead.
  /// Each look yields one tick, so a preempted (ready) peer would have
  /// advanced — only suspension freezes the beat this long.  Small on
  /// purpose: the verdict must usually land before the pattern's TR
  /// resumes the victim, or the bug would need implausibly late
  /// resumes to manifest.
  static constexpr int kStallChecks = 3;

  std::size_t mine_;
  std::size_t theirs_;
  std::size_t my_beat_;
  std::size_t their_beat_;
  bool benign_;
  bool dead_latched_ = false;
  int warmup_left_ = 4;
  int critical_left_ = 16;
  int backoff_left_ = 0;
  std::int32_t last_beat_ = -1;
  int stalled_ = 0;
  int phase_ = 0;
};

}  // namespace

const char* to_string(SyncBug bug) noexcept {
  switch (bug) {
    case SyncBug::kLostWakeup: return "lost-wakeup";
    case SyncBug::kWriterStarvation: return "writer-starvation";
    case SyncBug::kAbaStack: return "aba-stack";
    case SyncBug::kDoubleCheckedLock: return "double-checked-lock";
    case SyncBug::kBarrierReuse: return "barrier-reuse";
    case SyncBug::kQueueOrder: return "queue-order";
    case SyncBug::kFig1Livelock: return "fig1-livelock";
    case SyncBug::kPriorityInversion: return "priority-inversion";
    case SyncBug::kLivelockBackoff: return "livelock-backoff";
  }
  return "?";
}

std::uint32_t sync_bug_program_id(SyncBug bug) noexcept {
  return 20 + static_cast<std::uint32_t>(bug);
}

void register_sync_bug(pcore::PcoreKernel& kernel, SyncBug bug, bool benign) {
  const std::uint32_t id = sync_bug_program_id(bug);
  switch (bug) {
    case SyncBug::kLostWakeup:
      kernel.register_program(id, [benign](std::uint32_t arg) {
        return std::make_unique<LostWakeupProgram>(arg == 0, benign);
      });
      break;
    case SyncBug::kWriterStarvation:
      kernel.register_program(id, [benign](std::uint32_t arg) {
        return std::make_unique<RwStarvationProgram>(arg == 0,
                                                     benign ? 40u : 500u);
      });
      break;
    case SyncBug::kAbaStack:
      // Stack A(1) -> B(2) -> C(3); ids stored +1 so 0 is null.
      kernel.set_shared_word(kTopWord, 1);
      kernel.set_shared_word(kNextBase + 1, 2);
      kernel.set_shared_word(kNextBase + 2, 3);
      kernel.set_shared_word(kNextBase + 3, 0);
      kernel.register_program(id, [](std::uint32_t arg) {
        return std::make_unique<AbaStackProgram>(arg == 0);
      });
      break;
    case SyncBug::kDoubleCheckedLock: {
      const pcore::MutexId lock = kernel.mutex_create();
      kernel.register_program(id, [lock, benign](std::uint32_t) {
        return std::make_unique<DclProgram>(lock, benign);
      });
      break;
    }
    case SyncBug::kBarrierReuse:
      kernel.register_program(id, [benign](std::uint32_t) {
        return std::make_unique<BarrierReuseProgram>(3, benign);
      });
      break;
    case SyncBug::kQueueOrder:
      kernel.register_program(id, [benign](std::uint32_t arg) {
        return std::make_unique<QueueOrderProgram>(arg == 0, benign);
      });
      break;
    case SyncBug::kPriorityInversion: {
      const pcore::MutexId lock = kernel.mutex_create();
      kernel.register_program(id, [lock, benign](std::uint32_t arg) {
        using Role = PriorityInversionProgram::Role;
        const Role role = arg == 0   ? Role::kHolder
                          : arg == 1 ? Role::kHog
                                     : Role::kWaiter;
        return std::make_unique<PriorityInversionProgram>(
            role, lock, benign ? kBenignHogUnits : kBuggyHogUnits);
      });
      break;
    }
    case SyncBug::kLivelockBackoff:
      kernel.register_program(id, [benign](std::uint32_t arg) {
        return std::make_unique<LivelockBackoffProgram>(arg % 2, benign);
      });
      break;
    case SyncBug::kFig1Livelock:
      kernel.register_program(id, [](std::uint32_t arg) {
        return arg % 2 == 0
                   ? std::make_unique<Fig1SpinProgram>(kFig1XWord, kFig1YWord,
                                                       8)
                   : std::make_unique<Fig1SpinProgram>(kFig1YWord, kFig1XWord,
                                                       8);
      });
      break;
  }
}

}  // namespace ptest::workload
