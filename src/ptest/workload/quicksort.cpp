#include "ptest/workload/quicksort.hpp"

#include <algorithm>

#include "ptest/support/rng.hpp"

namespace ptest::workload {

QuicksortProgram::QuicksortProgram(std::uint32_t seed_arg,
                                   std::size_t elements) {
  support::Rng rng(0x9c0f5eed ^ (static_cast<std::uint64_t>(seed_arg) << 20));
  data_.reserve(elements);
  for (std::size_t i = 0; i < elements; ++i) {
    data_.push_back(static_cast<std::int16_t>(
        rng.between(-32768, 32767)));
  }
  if (!data_.empty()) {
    stack_.emplace_back(0, static_cast<std::int32_t>(data_.size()) - 1);
  }
  task_ = body();
}

pcore::CoTask QuicksortProgram::body() {
  while (!stack_.empty()) {
    const auto [lo, hi] = stack_.back();
    stack_.pop_back();
    if (lo >= hi) {
      co_await pcore::compute();
      continue;
    }
    // One Lomuto partition per step (bounded work unit).
    const std::int16_t pivot = data_[static_cast<std::size_t>(hi)];
    std::int32_t i = lo - 1;
    for (std::int32_t j = lo; j < hi; ++j) {
      if (data_[static_cast<std::size_t>(j)] <= pivot) {
        ++i;
        std::swap(data_[static_cast<std::size_t>(i)],
                  data_[static_cast<std::size_t>(j)]);
      }
    }
    std::swap(data_[static_cast<std::size_t>(i + 1)],
              data_[static_cast<std::size_t>(hi)]);
    if (lo < i) stack_.emplace_back(lo, i);
    if (i + 2 < hi) stack_.emplace_back(i + 2, hi);
    co_await pcore::compute(static_cast<std::uint32_t>(hi - lo + 1));
  }
  finished_ = true;
  const bool sorted = std::is_sorted(data_.begin(), data_.end());
  co_return sorted ? 0u : 1u;
}

pcore::StepResult QuicksortProgram::step(pcore::TaskContext& ctx) {
  return task_.step(ctx);
}

void register_quicksort(pcore::PcoreKernel& kernel) {
  kernel.register_program(kQuicksortProgramId, [](std::uint32_t arg) {
    return std::make_unique<QuicksortProgram>(arg);
  });
}

}  // namespace ptest::workload
