// Case study 1 workload: "All of 16 active tasks performed the same
// quick-sort algorithm to individually sort 128 integer elements.  The
// size of integer data is 2 bytes and the stack size of each task is 512
// bytes." (§IV-B)
//
// QuicksortProgram sorts 128 deterministic pseudo-random int16 values with
// an explicit-stack quicksort, one partition awaited per kernel step
// (bounded work, matching the one-step-per-tick execution model).  On
// completion it verifies the array and exits 0, or exits 1 on a sorting
// error — with kernel.panic_on_nonzero_exit armed, a miscompare surfaces
// as a slave crash the bug detector catches.
#pragma once

#include <cstdint>
#include <vector>

#include "ptest/pcore/co_task.hpp"
#include "ptest/pcore/kernel.hpp"

namespace ptest::workload {

inline constexpr std::uint32_t kQuicksortProgramId = 1;
inline constexpr std::size_t kQuicksortElements = 128;

class QuicksortProgram final : public pcore::TaskProgram {
 public:
  /// `seed_arg` varies the input data per task.
  explicit QuicksortProgram(std::uint32_t seed_arg,
                            std::size_t elements = kQuicksortElements);
  // The coroutine frame captures `this`; pinning the object keeps it valid.
  QuicksortProgram(QuicksortProgram&&) = delete;
  QuicksortProgram& operator=(QuicksortProgram&&) = delete;

  [[nodiscard]] std::string name() const override { return "quicksort"; }
  pcore::StepResult step(pcore::TaskContext& ctx) override;

  [[nodiscard]] const std::vector<std::int16_t>& data() const noexcept {
    return data_;
  }
  [[nodiscard]] bool finished() const noexcept { return finished_; }

 private:
  pcore::CoTask body();

  std::vector<std::int16_t> data_;
  std::vector<std::pair<std::int32_t, std::int32_t>> stack_;
  bool finished_ = false;
  pcore::CoTask task_;
};

/// Registers QuicksortProgram under kQuicksortProgramId.
void register_quicksort(pcore::PcoreKernel& kernel);

}  // namespace ptest::workload
