#include "ptest/workload/seeded_bugs.hpp"

#include "ptest/pcore/co_task.hpp"

namespace ptest::workload {

namespace {

constexpr std::size_t kCounterWord = 2;
constexpr std::size_t kFlagWord = 3;

/// Unprotected read-modify-write with a deschedulable window.
pcore::CoTask lost_update_body() {
  pcore::TaskEnv env = co_await pcore::env();
  const std::int32_t snapshot = env.shared(kCounterWord);  // read
  co_await pcore::compute();
  co_await pcore::yield();  // the race window: yield invites interleaving
  // Write back; torn if someone else updated meanwhile.
  if (env.shared(kCounterWord) != snapshot) {
    co_return 1;  // atomicity violated
  }
  env.set_shared(kCounterWord, snapshot + 1);
  co_return 0;
}

/// Producer: sets the flag after some work.
pcore::CoTask order_producer_body() {
  pcore::TaskEnv env = co_await pcore::env();
  for (int i = 0; i < 3; ++i) co_await pcore::compute();
  env.set_shared(kFlagWord, 1);
  co_return 0;
}

/// Consumer: gives the producer a beat, then asserts the flag — the
/// defect is the *assumption*, which specific schedules break.
pcore::CoTask order_consumer_body() {
  pcore::TaskEnv env = co_await pcore::env();
  co_await pcore::compute();
  co_return env.shared(kFlagWord) == 1 ? 0u : 1u;
}

/// Locks `first` then `second` with a hold-and-wait window several
/// compute steps wide — the paper's case-study tasks compute while
/// holding a resource, which is what gives suspend commands something to
/// land in.  Instantiated once as (A, B) and once as (B, A).
pcore::CoTask opposed_lock_body(pcore::MutexId first, pcore::MutexId second) {
  co_await pcore::lock(first);
  for (int i = 0; i < 6; ++i) co_await pcore::compute();
  co_await pcore::lock(second);
  co_await pcore::unlock(second);
  co_await pcore::unlock(first);
  co_return 0;
}

}  // namespace

const char* to_string(SeededBug bug) noexcept {
  switch (bug) {
    case SeededBug::kLostUpdate: return "lost-update";
    case SeededBug::kOrderViolation: return "order-violation";
    case SeededBug::kDeadlockPair: return "deadlock-pair";
  }
  return "?";
}

std::uint32_t seeded_bug_program_id(SeededBug bug) noexcept {
  return 10 + static_cast<std::uint32_t>(bug);
}

void register_seeded_bug(pcore::PcoreKernel& kernel, SeededBug bug) {
  switch (bug) {
    case SeededBug::kLostUpdate:
      kernel.register_program(seeded_bug_program_id(bug), [](std::uint32_t) {
        return pcore::make_co_program("lost-update", lost_update_body());
      });
      break;
    case SeededBug::kOrderViolation:
      kernel.register_program(
          seeded_bug_program_id(bug), [](std::uint32_t arg) {
            return arg == 0
                       ? pcore::make_co_program("order", order_producer_body())
                       : pcore::make_co_program("order", order_consumer_body());
          });
      break;
    case SeededBug::kDeadlockPair: {
      const pcore::MutexId a = kernel.mutex_create();
      const pcore::MutexId b = kernel.mutex_create();
      kernel.register_program(
          seeded_bug_program_id(bug), [a, b](std::uint32_t arg) {
            return arg == 0
                       ? pcore::make_co_program("opposed-lock",
                                                opposed_lock_body(a, b))
                       : pcore::make_co_program("opposed-lock",
                                                opposed_lock_body(b, a));
          });
      break;
    }
  }
}

}  // namespace ptest::workload
