#include "ptest/workload/seeded_bugs.hpp"

#include <memory>

namespace ptest::workload {

namespace {

constexpr std::size_t kCounterWord = 2;
constexpr std::size_t kFlagWord = 3;

/// Unprotected read-modify-write with a deschedulable window.
class LostUpdateProgram final : public pcore::TaskProgram {
 public:
  [[nodiscard]] std::string name() const override { return "lost-update"; }

  pcore::StepResult step(pcore::TaskContext& ctx) override {
    switch (phase_) {
      case 0:  // read
        snapshot_ = ctx.shared(kCounterWord);
        phase_ = 1;
        return pcore::StepResult::compute();
      case 1:  // the race window: yield invites interleaving
        phase_ = 2;
        return pcore::StepResult::yield();
      case 2:  // write back; torn if someone else updated meanwhile
        if (ctx.shared(kCounterWord) != snapshot_) {
          return pcore::StepResult::exit(1);  // atomicity violated
        }
        ctx.set_shared(kCounterWord, snapshot_ + 1);
        return pcore::StepResult::exit(0);
      default:
        return pcore::StepResult::exit(0);
    }
  }

 private:
  std::int32_t snapshot_ = 0;
  int phase_ = 0;
};

/// arg 0 = producer (sets flag after some work), arg != 0 = consumer
/// (asserts the flag).
class OrderViolationProgram final : public pcore::TaskProgram {
 public:
  explicit OrderViolationProgram(bool producer) : producer_(producer) {}
  [[nodiscard]] std::string name() const override { return "order"; }

  pcore::StepResult step(pcore::TaskContext& ctx) override {
    if (producer_) {
      if (phase_++ < 3) return pcore::StepResult::compute();
      ctx.set_shared(kFlagWord, 1);
      return pcore::StepResult::exit(0);
    }
    // Consumer: give the producer a beat, then assert the flag — the
    // defect is the *assumption*, which specific schedules break.
    if (phase_++ < 1) return pcore::StepResult::compute();
    return pcore::StepResult::exit(ctx.shared(kFlagWord) == 1 ? 0 : 1);
  }

 private:
  bool producer_;
  int phase_ = 0;
};

/// arg 0 locks (A then B); arg != 0 locks (B then A).  The hold-and-wait
/// window is several compute steps wide — the paper's case-study tasks
/// compute while holding a resource, which is what gives suspend commands
/// something to land in.
class OpposedLockProgram final : public pcore::TaskProgram {
 public:
  OpposedLockProgram(pcore::MutexId a, pcore::MutexId b) : first_(a), second_(b) {}
  [[nodiscard]] std::string name() const override { return "opposed-lock"; }

  pcore::StepResult step(pcore::TaskContext&) override {
    switch (phase_++) {
      case 0: return pcore::StepResult::lock(first_);
      case 1:
      case 2:
      case 3:
      case 4:
      case 5:
      case 6: return pcore::StepResult::compute();  // hold-and-wait window
      case 7: return pcore::StepResult::lock(second_);
      case 8: return pcore::StepResult::unlock(second_);
      case 9: return pcore::StepResult::unlock(first_);
      default: return pcore::StepResult::exit(0);
    }
  }

 private:
  pcore::MutexId first_;
  pcore::MutexId second_;
  int phase_ = 0;
};

}  // namespace

const char* to_string(SeededBug bug) noexcept {
  switch (bug) {
    case SeededBug::kLostUpdate: return "lost-update";
    case SeededBug::kOrderViolation: return "order-violation";
    case SeededBug::kDeadlockPair: return "deadlock-pair";
  }
  return "?";
}

std::uint32_t seeded_bug_program_id(SeededBug bug) noexcept {
  return 10 + static_cast<std::uint32_t>(bug);
}

void register_seeded_bug(pcore::PcoreKernel& kernel, SeededBug bug) {
  switch (bug) {
    case SeededBug::kLostUpdate:
      kernel.register_program(seeded_bug_program_id(bug), [](std::uint32_t) {
        return std::make_unique<LostUpdateProgram>();
      });
      break;
    case SeededBug::kOrderViolation:
      kernel.register_program(seeded_bug_program_id(bug),
                              [](std::uint32_t arg) {
                                return std::make_unique<OrderViolationProgram>(
                                    arg == 0);
                              });
      break;
    case SeededBug::kDeadlockPair: {
      const pcore::MutexId a = kernel.mutex_create();
      const pcore::MutexId b = kernel.mutex_create();
      kernel.register_program(
          seeded_bug_program_id(bug), [a, b](std::uint32_t arg) {
            return arg == 0 ? std::make_unique<OpposedLockProgram>(a, b)
                            : std::make_unique<OpposedLockProgram>(b, a);
          });
      break;
    }
  }
}

}  // namespace ptest::workload
