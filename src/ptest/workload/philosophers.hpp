// Case study 2 workload: "a buggy version of the dining philosophers
// problem that could lead to deadlock.  The algorithm consisted of three
// concurrent tasks in pCore and three shared resources that were mutually
// exclusive.  A task needed two shared resources to resume its execution."
// (§IV-B)
//
// The buggy variant acquires first = own fork, second = right neighbour's
// fork for every philosopher — a cyclic acquisition order that deadlocks
// whenever all three hold their first fork simultaneously (which the
// cyclic merge op provokes by suspending each task between its two lock
// steps).  The fixed variant acquires in global mutex-id order and can
// never deadlock; it is the control in the benches.
#pragma once

#include <array>
#include <cstdint>

#include "ptest/pcore/co_task.hpp"
#include "ptest/pcore/kernel.hpp"

namespace ptest::workload {

inline constexpr std::uint32_t kPhilosopherProgramId = 2;
inline constexpr std::size_t kPhilosopherCount = 3;

struct PhilosopherTable {
  std::array<pcore::MutexId, kPhilosopherCount> forks{};
};

class PhilosopherProgram final : public pcore::TaskProgram {
 public:
  /// `index` selects the fork pair; `buggy` selects the acquisition order;
  /// `meals` is the number of eat cycles before exiting; `window` is the
  /// hold-and-wait width in kernel steps — the work a philosopher does
  /// between picking up its first and second fork (the real programs in
  /// the paper's case study compute while holding a resource, which is
  /// exactly what gives the suspend commands something to land in).
  PhilosopherProgram(const PhilosopherTable& table, std::uint32_t index,
                     bool buggy, std::uint32_t meals = 2,
                     std::uint32_t window = 20);
  // The coroutine frame captures `this`; pinning the object keeps it valid.
  PhilosopherProgram(PhilosopherProgram&&) = delete;
  PhilosopherProgram& operator=(PhilosopherProgram&&) = delete;

  [[nodiscard]] std::string name() const override { return "philosopher"; }
  pcore::StepResult step(pcore::TaskContext& ctx) override;

 private:
  pcore::CoTask body();

  pcore::MutexId first_;
  pcore::MutexId second_;
  std::uint32_t meals_;
  std::uint32_t window_;
  std::uint32_t eaten_ = 0;
  pcore::CoTask task_;
};

/// Creates the three fork mutexes and registers PhilosopherProgram under
/// kPhilosopherProgramId with `buggy` acquisition order; arg = philosopher
/// index (taken modulo 3).
PhilosopherTable register_philosophers(pcore::PcoreKernel& kernel, bool buggy,
                                       std::uint32_t meals = 2,
                                       std::uint32_t window = 20);

}  // namespace ptest::workload
