// The paper's Fig. 1 concurrency fault, reproduced end to end.
//
//   Process S1 (slave)        Process S2 (slave)
//   a: x = 1                  f: y = 1
//   b: while (y == 1)         g: while (x == 1)
//   c:     yield();           h:     yield();
//   d: x <- 0                 i: y <- 0
//   e: end                    j: end
//
//   Process M1 (master): remote_cmd(Resume, S1)
//   Process M2 (master): remote_cmd(Resume, S2)
//
// x and y live in shared memory (the kernel's shared words).  The order
// L f g K i j a b d e completes; the order K a L f g h b c g h ... makes
// both tasks spin forever (states d,e,i,j unreachable) — a livelock the
// bug detector reports as no-termination.
//
// Fig1Harness builds the two suspended slave tasks plus the two master
// resume threads with configurable issue delays, runs the SoC, and
// reports whether the fault manifested — the delay sweep is the
// bench_fig1_interleavings experiment.
#pragma once

#include <memory>

#include "ptest/bridge/committee.hpp"
#include "ptest/master/scheduler.hpp"
#include "ptest/pcore/kernel.hpp"

namespace ptest::workload {

inline constexpr std::uint32_t kFig1S1ProgramId = 3;
inline constexpr std::uint32_t kFig1S2ProgramId = 4;
inline constexpr std::size_t kFig1XIndex = 0;  // shared word for x
inline constexpr std::size_t kFig1YIndex = 1;  // shared word for y

/// Registers both spin programs.
void register_fig1(pcore::PcoreKernel& kernel);

struct Fig1Result {
  bool livelocked = false;   // neither task terminated (fault manifested)
  bool completed = false;    // both terminated
  sim::Tick ticks = 0;
  std::uint64_t s1_steps = 0;
  std::uint64_t s2_steps = 0;
};

struct Fig1Options {
  /// Master-side delays (ticks) before M1/M2 issue their Resume.
  sim::Tick m1_delay = 0;
  sim::Tick m2_delay = 0;
  /// Priorities: the paper fixes prio(S1) < prio(S2).
  pcore::Priority s1_priority = 5;
  pcore::Priority s2_priority = 9;
  /// Livelock horizon: if either task is still alive after this many
  /// ticks, the run counts as livelocked.
  sim::Tick horizon = 2000;
  /// Master time-sharing quantum; 1 interleaves M1/M2 most finely (the
  /// paper's time-sharing Linux threads).
  sim::Tick master_quantum = 1;
};

/// Runs the Fig. 1 scenario deterministically.
[[nodiscard]] Fig1Result run_fig1(const Fig1Options& options);

}  // namespace ptest::workload
