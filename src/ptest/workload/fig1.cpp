#include "ptest/workload/fig1.hpp"

#include "ptest/master/co_thread.hpp"
#include "ptest/pcore/co_task.hpp"

namespace ptest::workload {

namespace {

/// S1: x=1; while (y==1) yield; x=0; end.   (S2 swaps x and y.)
pcore::CoTask spin_body(std::size_t mine, std::size_t other) {
  pcore::TaskEnv env = co_await pcore::env();
  env.set_shared(mine, 1);  // a / f: set my flag
  co_await pcore::compute();
  while (env.shared(other) == 1) {  // b / g: spin while the other is up
    co_await pcore::yield();        // c / h
  }
  co_await pcore::compute();
  env.set_shared(mine, 0);  // d / i: lower my flag
  co_await pcore::compute();
  co_return 0;  // e / j
}

/// M1 / M2: wait `delay`, then remote_cmd(Resume, task), then end.
master::CoThread resume_body(pcore::TaskId task, sim::Tick delay) {
  master::MasterEnv env = co_await master::env();
  while (env.now() < delay) co_await master::wait();
  bridge::Command command;
  command.seq = static_cast<std::uint32_t>(task) + 1;
  command.service = bridge::Service::kTaskResume;
  command.task = task;
  while (!env.channel().post_command(env.soc(), command)) {
    co_await master::wait();
  }
  co_await master::proceed();
  // Drain the ack so the response ring never backs up.
  (void)env.channel().take_response(env.soc());
  co_return;
}

}  // namespace

void register_fig1(pcore::PcoreKernel& kernel) {
  kernel.register_program(kFig1S1ProgramId, [](std::uint32_t) {
    return pcore::make_co_program("fig1-spin",
                                  spin_body(kFig1XIndex, kFig1YIndex));
  });
  kernel.register_program(kFig1S2ProgramId, [](std::uint32_t) {
    return pcore::make_co_program("fig1-spin",
                                  spin_body(kFig1YIndex, kFig1XIndex));
  });
}

Fig1Result run_fig1(const Fig1Options& options) {
  sim::Soc soc;
  pcore::PcoreKernel kernel;
  register_fig1(kernel);

  // Create S1 and S2 suspended (the paper's processes wait for Resume).
  pcore::TaskId s1 = pcore::kInvalidTask;
  pcore::TaskId s2 = pcore::kInvalidTask;
  if (kernel.task_create(kFig1S1ProgramId, 0, options.s1_priority, s1) !=
          pcore::Status::kOk ||
      kernel.task_create(kFig1S2ProgramId, 0, options.s2_priority, s2) !=
          pcore::Status::kOk) {
    throw std::runtime_error("fig1: task creation failed");
  }
  (void)kernel.task_suspend(s1);
  (void)kernel.task_suspend(s2);

  bridge::Channel channel(soc);
  bridge::Committee committee(channel, kernel);
  master::MasterScheduler master(channel, options.master_quantum);
  master.add(
      master::make_co_thread("fig1-resume", resume_body(s1, options.m1_delay)));
  master.add(
      master::make_co_thread("fig1-resume", resume_body(s2, options.m2_delay)));

  soc.attach(master);
  soc.attach(committee);
  soc.attach(kernel);

  Fig1Result result;
  result.ticks = soc.run(options.horizon);
  const auto alive = [&](pcore::TaskId t) {
    const auto state = kernel.tcb(t).state;
    return state != pcore::TaskState::kFree &&
           state != pcore::TaskState::kTerminated;
  };
  result.s1_steps = kernel.tcb(s1).steps;
  result.s2_steps = kernel.tcb(s2).steps;
  result.completed = !alive(s1) && !alive(s2);
  result.livelocked = alive(s1) && alive(s2);
  return result;
}

}  // namespace ptest::workload
