#include "ptest/workload/fig1.hpp"

namespace ptest::workload {

namespace {

/// S1: x=1; while (y==1) yield; x=0; end.   (S2 swaps x and y.)
class SpinProgram final : public pcore::TaskProgram {
 public:
  SpinProgram(std::size_t mine, std::size_t other)
      : mine_(mine), other_(other) {}

  [[nodiscard]] std::string name() const override { return "fig1-spin"; }

  pcore::StepResult step(pcore::TaskContext& ctx) override {
    switch (phase_) {
      case 0:  // a / f: set my flag
        ctx.set_shared(mine_, 1);
        phase_ = 1;
        return pcore::StepResult::compute();
      case 1:  // b / g: spin while the other flag is raised
        if (ctx.shared(other_) == 1) {
          return pcore::StepResult::yield();  // c / h
        }
        phase_ = 2;
        return pcore::StepResult::compute();
      case 2:  // d / i: lower my flag
        ctx.set_shared(mine_, 0);
        phase_ = 3;
        return pcore::StepResult::compute();
      default:  // e / j
        return pcore::StepResult::exit(0);
    }
  }

 private:
  std::size_t mine_;
  std::size_t other_;
  int phase_ = 0;
};

/// M1 / M2: wait `delay`, then remote_cmd(Resume, task), then end.
class ResumeThread final : public master::MasterThread {
 public:
  ResumeThread(pcore::TaskId task, sim::Tick delay)
      : task_(task), delay_(delay) {}

  [[nodiscard]] std::string name() const override { return "fig1-resume"; }

  master::ThreadStep step(master::MasterContext& ctx) override {
    if (ctx.now() < delay_) return master::ThreadStep::kWaiting;
    if (!sent_) {
      bridge::Command command;
      command.seq = static_cast<std::uint32_t>(task_) + 1;
      command.service = bridge::Service::kTaskResume;
      command.task = task_;
      if (!ctx.channel().post_command(ctx.soc(), command)) {
        return master::ThreadStep::kWaiting;
      }
      sent_ = true;
      return master::ThreadStep::kContinue;
    }
    // Drain the ack so the response ring never backs up.
    (void)ctx.channel().take_response(ctx.soc());
    return master::ThreadStep::kDone;
  }

 private:
  pcore::TaskId task_;
  sim::Tick delay_;
  bool sent_ = false;
};

}  // namespace

void register_fig1(pcore::PcoreKernel& kernel) {
  kernel.register_program(kFig1S1ProgramId, [](std::uint32_t) {
    return std::make_unique<SpinProgram>(kFig1XIndex, kFig1YIndex);
  });
  kernel.register_program(kFig1S2ProgramId, [](std::uint32_t) {
    return std::make_unique<SpinProgram>(kFig1YIndex, kFig1XIndex);
  });
}

Fig1Result run_fig1(const Fig1Options& options) {
  sim::Soc soc;
  pcore::PcoreKernel kernel;
  register_fig1(kernel);

  // Create S1 and S2 suspended (the paper's processes wait for Resume).
  pcore::TaskId s1 = pcore::kInvalidTask;
  pcore::TaskId s2 = pcore::kInvalidTask;
  if (kernel.task_create(kFig1S1ProgramId, 0, options.s1_priority, s1) !=
          pcore::Status::kOk ||
      kernel.task_create(kFig1S2ProgramId, 0, options.s2_priority, s2) !=
          pcore::Status::kOk) {
    throw std::runtime_error("fig1: task creation failed");
  }
  (void)kernel.task_suspend(s1);
  (void)kernel.task_suspend(s2);

  bridge::Channel channel(soc);
  bridge::Committee committee(channel, kernel);
  master::MasterScheduler master(channel, options.master_quantum);
  master.add(std::make_unique<ResumeThread>(s1, options.m1_delay));
  master.add(std::make_unique<ResumeThread>(s2, options.m2_delay));

  soc.attach(master);
  soc.attach(committee);
  soc.attach(kernel);

  Fig1Result result;
  result.ticks = soc.run(options.horizon);
  const auto alive = [&](pcore::TaskId t) {
    const auto state = kernel.tcb(t).state;
    return state != pcore::TaskState::kFree &&
           state != pcore::TaskState::kTerminated;
  };
  result.s1_steps = kernel.tcb(s1).steps;
  result.s2_steps = kernel.tcb(s2).steps;
  result.completed = !alive(s1) && !alive(s2);
  result.livelocked = alive(s1) && alive(s2);
  return result;
}

}  // namespace ptest::workload
