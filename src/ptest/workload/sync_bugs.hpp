// Synchronization-bug corpus for the scenario registry — six concurrency
// bug classes beyond the seeded_bugs trio, each a small deterministic
// pCore program whose defect manifests only under a specific schedule
// feature, plus a pattern-path port of the paper's Fig. 1 livelock.
//
//   kLostWakeup       — condition-variable lost wakeup: the waiter checks
//                       the predicate, then registers for the wakeup in a
//                       separate step; a signal landing inside that window
//                       is lost and the waiter sleeps forever (detected as
//                       no-termination).  The benign variant re-checks the
//                       predicate in its wait loop (the classic fix).
//   kWriterStarvation — reader-preference starvation: high-priority
//                       readers with long read sections keep a low-priority
//                       writer off the CPU past the starvation horizon.
//                       The benign variant's readers hold short sections.
//   kAbaStack         — ABA on a lock-free stack: a popper reads (top,
//                       next), is descheduled, an interferer pops A and B
//                       and pushes A back; the popper's compare-and-swap
//                       succeeds against the recycled top and installs a
//                       pointer to the freed node (in-program assertion).
//   kDoubleCheckedLock— double-checked-locking atomicity violation: the
//                       initializer publishes the "initialized" flag
//                       before the payload is fully written; a lock-free
//                       fast-path reader observes the flag and reads torn
//                       payload.  The benign variant publishes last.
//   kBarrierReuse     — barrier-reuse race: the last arriver resets the
//                       arrival counter for reuse before slow waiters have
//                       observed the full count; they spin forever
//                       (no-termination).  The benign variant releases
//                       waiters through a generation counter.
//   kQueueOrder       — order-violation producer/consumer on a ring
//                       buffer: the producer publishes the new tail index
//                       before writing the slot; the consumer reads an
//                       unwritten slot (in-program assertion).  The benign
//                       variant writes the slot first.
//   kFig1Livelock     — the paper's Fig. 1 spin fault re-expressed as a
//                       committer-driven program (arg parity picks S1/S2),
//                       so campaigns can provoke the livelock through
//                       suspend/resume patterns (no-termination).
//   kPriorityInversion— unbounded priority inversion: a low-priority task
//                       takes a mutex, a high-priority waiter blocks on
//                       it, and a medium-priority hog keeps the holder
//                       off the CPU past the starvation horizon — the
//                       classic Mars-Pathfinder topology.  The benign
//                       variant bounds the hog's interference (the
//                       effect priority inheritance guarantees), so the
//                       holder finishes and the waiter proceeds.
//   kLivelockBackoff  — livelock via mutual-intent backoff: each task
//                       raises an intent flag, and on seeing the other's
//                       flag retreats and retries after a *busy-wait*
//                       backoff.  Normally the first task finishes its
//                       guarded section before the second is created; a
//                       suspend landing inside the flag-up window leaves
//                       the flag raised while the higher-priority peer
//                       arrives — which then retreats and busy-retries
//                       forever, starving the holder (no-termination).
//                       The benign variant backs off by *yielding* and
//                       never latches the peer-is-dead verdict, so the
//                       holder always gets the CPU back and a frozen
//                       heartbeat is re-checked once it moves again.
//
// In-program assertions exit with a per-bug code (see k*ExitCode) and
// surface as a slave crash via KernelConfig::panic_on_nonzero_exit; hang
// bugs are caught by the bug detector's termination / starvation
// watchdogs.
#pragma once

#include <cstdint>

#include "ptest/pcore/kernel.hpp"

namespace ptest::workload {

enum class SyncBug : std::uint8_t {
  kLostWakeup = 0,
  kWriterStarvation,
  kAbaStack,
  kDoubleCheckedLock,
  kBarrierReuse,
  kQueueOrder,
  kFig1Livelock,
  kPriorityInversion,
  kLivelockBackoff,
};

inline constexpr std::size_t kSyncBugCount = 9;
[[nodiscard]] const char* to_string(SyncBug bug) noexcept;

/// Distinct assertion exit codes, one per crash-detected bug; they land in
/// the kernel panic reason as "(exit code N)", which bug oracles match.
inline constexpr std::uint32_t kAbaExitCode = 23;
inline constexpr std::uint32_t kDclExitCode = 24;
inline constexpr std::uint32_t kQueueExitCode = 25;

/// Program id the bug's program is registered under (disjoint from the
/// quicksort / philosophers / fig1 / seeded_bugs ids).
[[nodiscard]] std::uint32_t sync_bug_program_id(SyncBug bug) noexcept;

/// Registers the program(s) for `bug` and prepares kernel state (mutexes,
/// shared words).  Tasks created with arg = slot differentiate roles
/// (signaler/waiter, writer/reader, victim/interferer, producer/consumer).
/// `benign` registers the corrected variant of the same workload under the
/// same program id — the control the scenario oracles must stay silent on.
void register_sync_bug(pcore::PcoreKernel& kernel, SyncBug bug,
                       bool benign = false);

}  // namespace ptest::workload
