// Bug reports: what the bug detector "dumps ... to help users reproduce
// the bugs" (§II-B).
//
// A report carries everything replay needs: the failure classification and
// evidence (kernel snapshot, wait-for cycle, CP records, trace tail) plus
// the session's seed and merged pattern, which — because the whole
// simulation is deterministic — replays to the identical failure.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ptest/pattern/pattern.hpp"
#include "ptest/pcore/kernel.hpp"
#include "ptest/support/metrics.hpp"

namespace ptest::core {

enum class BugKind : std::uint8_t {
  kSlaveCrash = 0,   // kernel panic (e.g. the GC corruption of case 1)
  kDeadlock,         // wait-for cycle among blocked tasks (case 2)
  kUnresponsive,     // remote command unacknowledged past the timeout
  kNoTermination,    // tasks alive/spinning past the termination horizon
  kStarvation,       // ready task unscheduled past the starvation horizon
};

[[nodiscard]] const char* to_string(BugKind kind) noexcept;

struct BugReport {
  BugKind kind = BugKind::kSlaveCrash;
  sim::Tick detected_at = 0;
  std::string description;
  /// Tasks involved (wait-for cycle for deadlock, starved task, ...).
  std::vector<pcore::TaskId> culprits;
  /// Slave state at detection time.
  pcore::KernelSnapshot kernel;
  /// CP records (Definition 2), rendered.
  std::string state_records;
  /// Tail of the simulation trace.
  std::string trace_tail;
  /// Replay bundle: seed and the exact merged pattern that was driven.
  std::uint64_t seed = 0;
  pattern::MergedPattern merged;

  /// Human-readable multi-line rendering.
  [[nodiscard]] std::string render(const pfa::Alphabet& alphabet) const;

  /// Stable failure signature for replay verification: kind + sorted
  /// culprits + (for crashes) the panic reason.
  [[nodiscard]] std::string signature() const;
};

/// Renders campaign perf counters (CampaignResult::metrics) on the same
/// human-readable report surface as BugReport::render — what
/// `ptest_cli --metrics` prints after a run.  For machine-readable
/// output, MetricsSnapshot::write_json emits the same counters through
/// support::JsonWriter.
[[nodiscard]] std::string render(const support::MetricsSnapshot& metrics);

}  // namespace ptest::core
