#include "ptest/core/test_plan.hpp"

#include "ptest/bridge/protocol.hpp"
#include "ptest/obs/trace.hpp"
#include "ptest/support/strings.hpp"

namespace ptest::core {

CompiledTestPlanPtr compile(const PtestConfig& config,
                            const pfa::Alphabet& alphabet) {
  return compile_with_spec(config, std::nullopt, alphabet);
}

CompiledTestPlanPtr compile_with_spec(
    const PtestConfig& config, std::optional<pfa::DistributionSpec> spec,
    const pfa::Alphabet& alphabet) {
  // Every compile funnels through here (campaign precompile, guided
  // recompile, one-shot wrappers), so this one span covers them all.
  PTEST_OBS_SPAN("compile");
  auto plan = std::make_shared<CompiledTestPlan>();
  plan->config = config;
  plan->alphabet = alphabet;
  bridge::intern_service_alphabet(plan->alphabet);
  plan->regex = pfa::Regex::parse(config.regex, plan->alphabet);
  if (spec) {
    plan->spec = *std::move(spec);
  } else if (!config.distributions.empty()) {
    plan->spec =
        pfa::DistributionSpec::parse(config.distributions, plan->alphabet);
  }
  plan->pfa = pfa::Pfa::from_regex(plan->regex, plan->spec, plan->alphabet);

  plan->generator_options.size = config.s;
  plan->generator_options.complete_to_accept = config.complete_to_accept;
  plan->generator_options.restart_at_accept = config.restart_at_accept;

  plan->merger_options.op = config.op;
  for (const std::string& name : support::split(config.cyclic_break, ',')) {
    if (const auto symbol = plan->alphabet.find(support::trim(name))) {
      plan->merger_options.cyclic_break_symbols.push_back(*symbol);
    }
  }
  return plan;
}

}  // namespace ptest::core
