#include "ptest/core/state_record.hpp"

#include <sstream>

namespace ptest::core {

const char* to_string(MasterState state) noexcept {
  switch (state) {
    case MasterState::kIdle: return "idle";
    case MasterState::kIssuing: return "issuing";
    case MasterState::kAcked: return "acked";
    case MasterState::kFailed: return "failed";
    case MasterState::kDone: return "done";
  }
  return "?";
}

const char* to_string(SlaveState state) noexcept {
  switch (state) {
    case SlaveState::kNone: return "none";
    case SlaveState::kReady: return "ready";
    case SlaveState::kSuspended: return "suspended";
    case SlaveState::kBlocked: return "blocked";
    case SlaveState::kTerminated: return "terminated";
  }
  return "?";
}

std::vector<pfa::SymbolId> CpRecord::delta() const {
  if (sn >= tp.size()) return {};
  return {tp.begin() + static_cast<std::ptrdiff_t>(sn), tp.end()};
}

std::string CpRecord::render(const pfa::Alphabet& alphabet) const {
  std::ostringstream out;
  out << '(' << to_string(qm) << ", " << to_string(qs) << ", ";
  for (std::size_t i = 0; i < tp.size(); ++i) {
    if (i != 0) out << "->";
    out << alphabet.name(tp[i]);
  }
  out << ", " << sn << ", ";
  const auto rest = delta();
  if (rest.empty()) {
    out << "-";
  } else {
    for (std::size_t i = 0; i < rest.size(); ++i) {
      if (i != 0) out << "->";
      out << alphabet.name(rest[i]);
    }
  }
  out << ')';
  return out.str();
}

void StateRecorder::assign(pattern::SlotIndex slot,
                           std::vector<pfa::SymbolId> tp) {
  CpRecord record;
  record.tp = std::move(tp);
  records_[slot] = std::move(record);
}

void StateRecorder::on_issue(const master::IssueRecord& record) {
  CpRecord& cp = records_[record.slot];
  cp.qm = MasterState::kIssuing;
  if (cp.sn < cp.tp.size()) ++cp.sn;
}

void StateRecorder::on_ack(const master::AckRecord& record) {
  CpRecord& cp = records_[record.issue.slot];
  if (record.status != bridge::ResponseStatus::kOk) {
    cp.qm = MasterState::kFailed;
    return;
  }
  cp.qm = (cp.sn >= cp.tp.size()) ? MasterState::kDone : MasterState::kAcked;
  switch (record.issue.service) {
    case bridge::Service::kTaskCreate:
    case bridge::Service::kTaskResume:
      cp.qs = SlaveState::kReady;
      break;
    case bridge::Service::kTaskSuspend:
      cp.qs = SlaveState::kSuspended;
      break;
    case bridge::Service::kTaskDelete:
    case bridge::Service::kTaskYield:
      cp.qs = SlaveState::kTerminated;
      break;
    case bridge::Service::kTaskChanprio:
      break;  // state unchanged
  }
}

void StateRecorder::on_pattern_complete(sim::Tick) {
  for (auto& [slot, cp] : records_) {
    if (cp.qm == MasterState::kAcked && cp.sn >= cp.tp.size()) {
      cp.qm = MasterState::kDone;
    }
  }
}

std::string StateRecorder::render() const {
  std::ostringstream out;
  for (const auto& [slot, cp] : records_) {
    out << "CP" << slot << "= " << cp.render(*alphabet_) << '\n';
  }
  return out.str();
}

}  // namespace ptest::core
