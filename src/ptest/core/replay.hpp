// Deterministic replay of a bug report.
//
// "When pTest detects that the slave system crashes or faults, it
// terminates the current job and helps users reproduce the bugs" (§I).
// Because every source of nondeterminism is seeded, re-driving the
// recorded merged pattern through a fresh session yields the identical
// failure; replay() does that and verify_reproduces() checks the failure
// signatures match.
#pragma once

#include "ptest/core/session.hpp"
#include "ptest/core/test_plan.hpp"

namespace ptest::core {

/// Re-runs the exact merged pattern from `report` under `config` (the
/// original run's config; its seed is overridden by the report's).
[[nodiscard]] SessionResult replay(const BugReport& report,
                                   const PtestConfig& config,
                                   const pfa::Alphabet& alphabet,
                                   const WorkloadSetup& setup);

/// As above, but against a precompiled plan (the plan's config and
/// interned alphabet stand in for the originals) — lets campaign callers
/// replay distinct failures without rebuilding the pipeline.
[[nodiscard]] SessionResult replay(const BugReport& report,
                                   const CompiledTestPlan& plan,
                                   const WorkloadSetup& setup);

/// True when the replay reproduced the same failure (same kind, culprits
/// and — for crashes — panic reason).
[[nodiscard]] bool verify_reproduces(const BugReport& original,
                                     const SessionResult& replayed);

}  // namespace ptest::core
