#include "ptest/core/config.hpp"

// Configuration is a value type; behaviour lives in session.cpp.  This
// translation unit exists so the module has a home for future config
// parsing/validation logic and to anchor the header in the build.
namespace ptest::core {}
