// State recording of concurrent processes — Definition 2 and Fig. 4.
//
// CP = (qm, qs, TP, SN, δS):
//   qm — state of the master process (the committer's protocol state for
//        this slot just before it issued the last remote command),
//   qs — state of the corresponding slave process,
//   TP — the test pattern assigned to the slave process,
//   SN — sequence number of the pattern's current state,
//   δS — the remaining subsequence to execute next.
//
// The StateRecorder observes the committer and maintains one CpRecord per
// slot; the bug detector embeds the records in its reports, which is what
// lets a user see exactly where in each pattern the failure occurred.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ptest/master/committer.hpp"
#include "ptest/pattern/pattern.hpp"

namespace ptest::core {

/// Master-process protocol states (the m* of Fig. 4).
enum class MasterState : std::uint8_t {
  kIdle = 0,    // nothing issued yet
  kIssuing,     // command sent, ack pending
  kAcked,       // last command acknowledged
  kFailed,      // last command rejected / slave panicked
  kDone,        // pattern for this slot fully executed
};

[[nodiscard]] const char* to_string(MasterState state) noexcept;

/// Slave-process states (the s* of Fig. 4): pcore task states plus
/// "not created yet".
enum class SlaveState : std::uint8_t {
  kNone = 0,
  kReady,
  kSuspended,
  kBlocked,
  kTerminated,
};

[[nodiscard]] const char* to_string(SlaveState state) noexcept;

struct CpRecord {
  MasterState qm = MasterState::kIdle;
  SlaveState qs = SlaveState::kNone;
  std::vector<pfa::SymbolId> tp;  // TP
  std::size_t sn = 0;             // SN, 1-based; 0 = before first state
  /// δS is derived: tp[sn..].
  [[nodiscard]] std::vector<pfa::SymbolId> delta() const;

  /// Fig. 4 rendering: "(m, s, p1->p2->p3, SN, pk->...)".
  [[nodiscard]] std::string render(const pfa::Alphabet& alphabet) const;
};

class StateRecorder final : public master::CommitterObserver {
 public:
  explicit StateRecorder(const pfa::Alphabet& alphabet)
      : alphabet_(&alphabet) {}

  /// Registers the pattern assigned to `slot` (before the run).
  void assign(pattern::SlotIndex slot, std::vector<pfa::SymbolId> tp);

  void on_issue(const master::IssueRecord& record) override;
  void on_ack(const master::AckRecord& record) override;
  void on_pattern_complete(sim::Tick tick) override;

  [[nodiscard]] const std::map<pattern::SlotIndex, CpRecord>& records()
      const noexcept {
    return records_;
  }
  [[nodiscard]] const CpRecord& record(pattern::SlotIndex slot) const {
    return records_.at(slot);
  }

  /// All records rendered one per line ("CPk= (...)"), as in Fig. 4.
  [[nodiscard]] std::string render() const;

 private:
  const pfa::Alphabet* alphabet_;
  std::map<pattern::SlotIndex, CpRecord> records_;
};

}  // namespace ptest::core
