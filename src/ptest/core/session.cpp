#include "ptest/core/session.hpp"

namespace ptest::core {

const char* to_string(Outcome outcome) noexcept {
  switch (outcome) {
    case Outcome::kPassed: return "passed";
    case Outcome::kBug: return "bug";
    case Outcome::kTickLimit: return "tick-limit";
  }
  return "?";
}

TestSession::TestSession(const PtestConfig& config,
                         const pfa::Alphabet& alphabet,
                         pattern::MergedPattern merged,
                         const std::vector<pattern::TestPattern>& patterns,
                         const WorkloadSetup& setup)
    : config_(config), alphabet_(&alphabet), merged_(std::move(merged)) {
  soc_ = std::make_unique<sim::Soc>();
  kernel_ = std::make_unique<pcore::PcoreKernel>(config.kernel);
  if (setup) setup(*kernel_);
  channel_ = std::make_unique<bridge::Channel>(*soc_);
  committee_ = std::make_unique<bridge::Committee>(*channel_, *kernel_);
  master_ = std::make_unique<master::MasterScheduler>(*channel_);
  recorder_ = std::make_unique<StateRecorder>(alphabet);
  for (pattern::SlotIndex slot = 0; slot < patterns.size(); ++slot) {
    recorder_->assign(slot, patterns[slot].symbols);
  }

  master::CommitterOptions committer_options;
  committer_options.program_id = config.program_id;
  // arg = slot index by convention: philosopher index, quicksort seed,
  // seeded-bug role all key off it.
  committer_options.program_arg = [](pattern::SlotIndex slot) {
    return static_cast<std::uint32_t>(slot);
  };
  if (config.noise_max_delay > 0 || config.command_spacing > 0) {
    auto noise_rng =
        std::make_shared<support::Rng>(config.seed ^ 0x6e6f697365ULL);
    const sim::Tick max_delay = config.noise_max_delay;
    const sim::Tick spacing = config.command_spacing;
    committer_options.issue_delay =
        [noise_rng, max_delay, spacing](const pattern::MergedElement&) {
          const sim::Tick jitter =
              max_delay > 0
                  ? static_cast<sim::Tick>(noise_rng->below(max_delay + 1))
                  : 0;
          return spacing + jitter;
        };
  }
  auto committer = std::make_unique<master::Committer>(
      merged_, alphabet, std::move(committer_options), recorder_.get());
  committer_ = committer.get();
  master_->add(std::move(committer));

  detector_ = std::make_unique<BugDetector>(config.detector, *kernel_,
                                            *committer_, *recorder_);

  // Device order = intra-tick order: master issues, committee dispatches,
  // kernel executes, detector observes the post-state.
  soc_->attach(*master_);
  soc_->attach(*committee_);
  soc_->attach(*kernel_);
  soc_->attach(*detector_);
}

SessionResult TestSession::run() {
  SessionResult result;
  result.stats.ticks = soc_->run(config_.max_ticks);

  if (detector_->bug_found()) {
    result.outcome = Outcome::kBug;
    result.report = *detector_->report();
    result.report->seed = config_.seed;
    result.report->merged = merged_;
  } else if (detector_->passed()) {
    result.outcome = Outcome::kPassed;
  } else {
    result.outcome = Outcome::kTickLimit;
  }

  result.stats.commands_issued = committer_->issued();
  result.stats.commands_acked = committer_->acked();
  result.stats.commands_failed = committer_->failed();
  const auto snapshot = kernel_->snapshot();
  result.stats.kernel_service_calls = snapshot.service_calls;
  result.stats.context_switches = snapshot.context_switches;
  result.stats.gc_runs = snapshot.heap.gc_runs;
  return result;
}

}  // namespace ptest::core
