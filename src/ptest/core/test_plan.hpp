// Compile-once / execute-many split of Algorithm 1.
//
// The paper treats the PFA as a fixed artifact that many test sessions
// sample from, but the original adaptive_test() rebuilt the whole
// regex -> NFA -> DFA -> PFA pipeline (and re-parsed the distribution
// text) on every call — so a campaign's throughput was dominated by
// redundant compilation instead of session execution.
//
// A CompiledTestPlan freezes everything about an AdaptiveTest that does
// NOT depend on the per-run seed: the interned alphabet, the parsed
// regular expression, the parsed DistributionSpec, the built PFA, and
// the generator/merger options (cyclic break mnemonics resolved to
// symbol ids once).  Plans are held as std::shared_ptr<const ...>:
// after compile() returns, nothing ever mutates the plan, so any number
// of WorkerPool threads may execute() against the same plan
// concurrently without synchronization.
//
// Determinism: execute(plan, seed, setup) seeds every random stream
// from `seed` exactly the way the old adaptive_test(config, ...) seeded
// them from config.seed, so compile-once campaigns remain bit-identical
// to compile-per-run ones (and to any jobs=N schedule).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "ptest/core/config.hpp"
#include "ptest/pattern/generator.hpp"
#include "ptest/pfa/pfa.hpp"

namespace ptest::core {

struct CompiledTestPlan {
  /// The config the plan was compiled from.  config.seed is only the
  /// default: execute() takes the per-run seed explicitly.
  PtestConfig config;
  /// Interned symbols — the six service mnemonics plus whatever the
  /// regex / distribution text introduced.  Shared read-only.
  pfa::Alphabet alphabet;
  pfa::Regex regex;
  pfa::DistributionSpec spec;
  pfa::Pfa pfa;
  /// Sampling options derived from config (s, complete/restart flags).
  pattern::GeneratorOptions generator_options;
  /// Merge options with config.cyclic_break resolved to symbol ids.
  pattern::MergerOptions merger_options;
};

using CompiledTestPlanPtr = std::shared_ptr<const CompiledTestPlan>;

/// Builds the fixed artifact once: interns the service alphabet on top
/// of `alphabet` (which may already hold symbols from other expressions
/// over the same service set), parses config.regex and
/// config.distributions, constructs the PFA, and resolves the
/// generator/merger options.  Throws what the underlying parsers /
/// constructors throw (RegexParseError, std::invalid_argument).
[[nodiscard]] CompiledTestPlanPtr compile(const PtestConfig& config,
                                          const pfa::Alphabet& alphabet = {});

/// compile() with `spec` (when engaged) replacing the parse of
/// config.distributions — everything else identical.  This is how the
/// guided campaign recompiles a refined plan each epoch: the refiner
/// produces a DistributionSpec programmatically (per-state weights have
/// no parse syntax), and the compile/execute split then treats the
/// refined plan exactly like any other.
[[nodiscard]] CompiledTestPlanPtr compile_with_spec(
    const PtestConfig& config, std::optional<pfa::DistributionSpec> spec,
    const pfa::Alphabet& alphabet = {});

}  // namespace ptest::core
