#include "ptest/core/report.hpp"

#include <algorithm>
#include <sstream>

namespace ptest::core {

const char* to_string(BugKind kind) noexcept {
  switch (kind) {
    case BugKind::kSlaveCrash: return "slave-crash";
    case BugKind::kDeadlock: return "deadlock";
    case BugKind::kUnresponsive: return "unresponsive";
    case BugKind::kNoTermination: return "no-termination";
    case BugKind::kStarvation: return "starvation";
  }
  return "?";
}

std::string BugReport::render(const pfa::Alphabet& alphabet) const {
  std::ostringstream out;
  out << "=== pTest bug report ===\n"
      << "kind       : " << to_string(kind) << '\n'
      << "detected at: tick " << detected_at << '\n'
      << "description: " << description << '\n';
  if (!culprits.empty()) {
    out << "culprit tasks:";
    for (const auto t : culprits) out << ' ' << static_cast<int>(t);
    out << '\n';
  }
  out << "slave kernel: " << (kernel.panicked ? "PANICKED" : "alive")
      << ", live tasks " << kernel.live_tasks << ", service calls "
      << kernel.service_calls << '\n';
  if (kernel.panicked) out << "panic reason: " << kernel.panic_reason << '\n';
  for (const auto& task : kernel.tasks) {
    out << "  task " << static_cast<int>(task.id) << " [" << task.program
        << "] " << pcore::to_string(task.state) << " prio "
        << static_cast<int>(task.priority);
    if (task.waiting_on) {
      out << " waiting-on mutex " << static_cast<int>(*task.waiting_on);
    }
    if (!task.holds.empty()) {
      out << " holds";
      for (const auto m : task.holds) out << " m" << static_cast<int>(m);
    }
    out << '\n';
  }
  out << "state records (Definition 2):\n" << state_records;
  out << "merged pattern: " << merged.render(alphabet) << '\n';
  out << "seed: " << seed << '\n';
  if (!trace_tail.empty()) out << "trace tail:\n" << trace_tail;
  return out.str();
}

std::string BugReport::signature() const {
  std::ostringstream out;
  out << to_string(kind);
  std::vector<pcore::TaskId> sorted = culprits;
  std::sort(sorted.begin(), sorted.end());
  for (const auto t : sorted) out << ':' << static_cast<int>(t);
  if (kind == BugKind::kSlaveCrash) out << '|' << kernel.panic_reason;
  return out.str();
}

std::string render(const support::MetricsSnapshot& metrics) {
  return metrics.render();
}

}  // namespace ptest::core
