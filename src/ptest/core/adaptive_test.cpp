#include "ptest/core/adaptive_test.hpp"

#include "ptest/pattern/dedup.hpp"

namespace ptest::core {

// Sampling + merge phases of Algorithm 1 against a compiled plan.  All
// randomness derives from `seed` via the same fork order the one-shot
// API used, so wrappers and plan-based callers see identical streams.
AdaptiveTestResult generate_and_merge(const CompiledTestPlan& plan,
                                      std::uint64_t seed) {
  support::Rng session_rng(seed);
  support::Rng generator_rng = session_rng.fork();
  support::Rng merger_rng = session_rng.fork();

  const PtestConfig& config = plan.config;
  pattern::PatternGenerator generator(plan.pfa, plan.generator_options,
                                      generator_rng);

  AdaptiveTestResult result;
  if (config.dedup_patterns) {
    pattern::PatternDeduper deduper;
    // Keep sampling until n unique patterns (bounded retry).
    std::size_t attempts = 0;
    const std::size_t max_attempts = config.n * 64 + 64;
    while (result.patterns.size() < config.n && attempts < max_attempts) {
      ++attempts;
      pattern::TestPattern candidate = generator.generate();
      if (deduper.insert(candidate)) {
        result.patterns.push_back(std::move(candidate));
      }
    }
    result.duplicates_rejected = deduper.rejected_count();
    // Language too small for n distinct patterns: accept replicas to keep
    // the configured concurrency.
    while (result.patterns.size() < config.n) {
      result.patterns.push_back(generator.generate());
    }
  } else {
    result.patterns = generator.generate(config.n);
  }

  pattern::PatternMerger merger(plan.merger_options, merger_rng);
  result.merged = merger.merge(result.patterns);
  return result;
}

AdaptiveTestResult execute(const CompiledTestPlan& plan, std::uint64_t seed,
                           const WorkloadSetup& setup) {
  AdaptiveTestResult result = generate_and_merge(plan, seed);
  PtestConfig config = plan.config;
  config.seed = seed;
  TestSession session(config, plan.alphabet, result.merged, result.patterns,
                      setup);
  result.session = session.run();
  return result;
}

AdaptiveTestResult generate_and_merge(const PtestConfig& config,
                                      pfa::Alphabet& alphabet) {
  const CompiledTestPlanPtr plan = compile(config, alphabet);
  alphabet = plan->alphabet;  // hand interned symbols back to the caller
  return generate_and_merge(*plan, config.seed);
}

AdaptiveTestResult adaptive_test(const PtestConfig& config,
                                 pfa::Alphabet& alphabet,
                                 const WorkloadSetup& setup) {
  const CompiledTestPlanPtr plan = compile(config, alphabet);
  alphabet = plan->alphabet;  // hand interned symbols back to the caller
  return execute(*plan, config.seed, setup);
}

}  // namespace ptest::core
