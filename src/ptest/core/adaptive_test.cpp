#include "ptest/core/adaptive_test.hpp"

#include "ptest/obs/trace.hpp"
#include "ptest/pattern/dedup.hpp"

namespace ptest::core {

// Sampling + merge phases of Algorithm 1 against a compiled plan.  All
// randomness derives from `seed` via the same fork order the one-shot
// API used, so wrappers and plan-based callers see identical streams.
AdaptiveTestResult generate_and_merge(const CompiledTestPlan& plan,
                                      std::uint64_t seed,
                                      pfa::WalkScratch& scratch) {
  support::Rng session_rng(seed);
  support::Rng generator_rng = session_rng.fork();
  support::Rng merger_rng = session_rng.fork();

  const PtestConfig& config = plan.config;
  pattern::PatternGenerator generator(plan.pfa, plan.generator_options,
                                      generator_rng);

  // Session-scoped reuse accounting: the high-water mark restarts so the
  // counters are a pure function of (plan, seed), not of which worker's
  // scratch this session happened to land on.
  scratch.begin_session();
  const std::uint64_t reuse_before = scratch.reuse_hits();
  const std::uint64_t bytes_before = scratch.alloc_bytes_saved();

  AdaptiveTestResult result;
  if (config.dedup_patterns) {
    // One span per session's dedup'd sampling loop, not per candidate:
    // per-pattern events would dominate the ring at production rates.
    PTEST_OBS_SPAN("dedup");
    pattern::PatternDeduper deduper;
    // Keep sampling until n unique patterns (bounded retry).
    std::size_t attempts = 0;
    const std::size_t max_attempts = config.n * 64 + 64;
    while (result.patterns.size() < config.n && attempts < max_attempts) {
      ++attempts;
      pattern::TestPattern candidate = generator.generate(scratch);
      if (deduper.insert(candidate)) {
        result.patterns.push_back(std::move(candidate));
      }
    }
    result.duplicates_rejected = deduper.rejected_count();
    // Language too small for n distinct patterns: accept replicas to keep
    // the configured concurrency.
    while (result.patterns.size() < config.n) {
      result.patterns.push_back(generator.generate(scratch));
    }
  } else {
    result.patterns = generator.generate(config.n, scratch);
  }

  pattern::PatternMerger merger(plan.merger_options, merger_rng);
  result.merged = merger.merge(result.patterns);
  result.scratch_reuse_hits = scratch.reuse_hits() - reuse_before;
  result.sample_alloc_bytes_saved = scratch.alloc_bytes_saved() - bytes_before;
  return result;
}

AdaptiveTestResult execute(const CompiledTestPlan& plan, std::uint64_t seed,
                           const WorkloadSetup& setup,
                           pfa::WalkScratch& scratch) {
  AdaptiveTestResult result = generate_and_merge(plan, seed, scratch);
  PtestConfig config = plan.config;
  config.seed = seed;
  TestSession session(config, plan.alphabet, result.merged, result.patterns,
                      setup);
  result.session = session.run();
  return result;
}

AdaptiveTestResult execute(const CompiledTestPlan& plan, std::uint64_t seed,
                           const WorkloadSetup& setup) {
  pfa::WalkScratch scratch;
  return execute(plan, seed, setup, scratch);
}

AdaptiveTestResult generate_and_merge(const CompiledTestPlan& plan,
                                      std::uint64_t seed) {
  pfa::WalkScratch scratch;
  return generate_and_merge(plan, seed, scratch);
}

AdaptiveTestResult generate_and_merge(const PtestConfig& config,
                                      pfa::Alphabet& alphabet) {
  const CompiledTestPlanPtr plan = compile(config, alphabet);
  alphabet = plan->alphabet;  // hand interned symbols back to the caller
  return generate_and_merge(*plan, config.seed);
}

AdaptiveTestResult adaptive_test(const PtestConfig& config,
                                 pfa::Alphabet& alphabet,
                                 const WorkloadSetup& setup) {
  const CompiledTestPlanPtr plan = compile(config, alphabet);
  alphabet = plan->alphabet;  // hand interned symbols back to the caller
  return execute(*plan, config.seed, setup);
}

}  // namespace ptest::core
