#include "ptest/core/adaptive_test.hpp"

#include "ptest/bridge/protocol.hpp"
#include "ptest/pattern/dedup.hpp"
#include "ptest/support/strings.hpp"

namespace ptest::core {

namespace {

AdaptiveTestResult run_pipeline(const PtestConfig& config,
                                pfa::Alphabet& alphabet) {
  bridge::intern_service_alphabet(alphabet);
  const pfa::Regex regex = pfa::Regex::parse(config.regex, alphabet);
  const pfa::DistributionSpec spec =
      config.distributions.empty()
          ? pfa::DistributionSpec{}
          : pfa::DistributionSpec::parse(config.distributions, alphabet);
  const pfa::Pfa pfa = pfa::Pfa::from_regex(regex, spec, alphabet);

  support::Rng session_rng(config.seed);
  support::Rng generator_rng = session_rng.fork();
  support::Rng merger_rng = session_rng.fork();

  pattern::GeneratorOptions generator_options;
  generator_options.size = config.s;
  generator_options.complete_to_accept = config.complete_to_accept;
  generator_options.restart_at_accept = config.restart_at_accept;
  pattern::PatternGenerator generator(pfa, generator_options, generator_rng);

  AdaptiveTestResult result;
  if (config.dedup_patterns) {
    pattern::PatternDeduper deduper;
    // Keep sampling until n unique patterns (bounded retry).
    std::size_t attempts = 0;
    const std::size_t max_attempts = config.n * 64 + 64;
    while (result.patterns.size() < config.n && attempts < max_attempts) {
      ++attempts;
      pattern::TestPattern candidate = generator.generate();
      if (deduper.insert(candidate)) {
        result.patterns.push_back(std::move(candidate));
      }
    }
    result.duplicates_rejected = deduper.rejected_count();
    // Language too small for n distinct patterns: accept replicas to keep
    // the configured concurrency.
    while (result.patterns.size() < config.n) {
      result.patterns.push_back(generator.generate());
    }
  } else {
    result.patterns = generator.generate(config.n);
  }

  pattern::MergerOptions merger_options;
  merger_options.op = config.op;
  for (const std::string& name :
       support::split(config.cyclic_break, ',')) {
    if (const auto symbol = alphabet.find(support::trim(name))) {
      merger_options.cyclic_break_symbols.push_back(*symbol);
    }
  }
  pattern::PatternMerger merger(merger_options, merger_rng);
  result.merged = merger.merge(result.patterns);
  return result;
}

}  // namespace

AdaptiveTestResult generate_and_merge(const PtestConfig& config,
                                      pfa::Alphabet& alphabet) {
  return run_pipeline(config, alphabet);
}

AdaptiveTestResult adaptive_test(const PtestConfig& config,
                                 pfa::Alphabet& alphabet,
                                 const WorkloadSetup& setup) {
  AdaptiveTestResult result = run_pipeline(config, alphabet);
  TestSession session(config, alphabet, result.merged, result.patterns,
                      setup);
  result.session = session.run();
  return result;
}

}  // namespace ptest::core
