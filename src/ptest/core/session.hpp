// A test session wires the whole master-slave stack together:
//
//   Soc (clock, SRAM, mailboxes)
//    ├─ MasterScheduler (ARM)  ── Committer thread ──┐
//    ├─ Committee (DSP bridge dispatcher)            │ bridge::Channel
//    ├─ PcoreKernel (DSP)      <─────────────────────┘
//    └─ BugDetector (observer, stepped last)
//
// and drives a merged pattern to completion, a bug, or the tick limit.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "ptest/bridge/committee.hpp"
#include "ptest/core/bug_detector.hpp"
#include "ptest/core/config.hpp"
#include "ptest/core/state_record.hpp"
#include "ptest/master/scheduler.hpp"
#include "ptest/pattern/pattern.hpp"

namespace ptest::core {

enum class Outcome : std::uint8_t {
  kPassed = 0,   // pattern completed, all tasks terminated
  kBug,          // the detector filed a report
  kTickLimit,    // neither within max_ticks (treated as suspicious)
};

[[nodiscard]] const char* to_string(Outcome outcome) noexcept;

struct SessionStats {
  sim::Tick ticks = 0;
  std::size_t commands_issued = 0;
  std::size_t commands_acked = 0;
  std::size_t commands_failed = 0;
  std::uint64_t kernel_service_calls = 0;
  std::uint64_t context_switches = 0;
  std::uint64_t gc_runs = 0;
};

struct SessionResult {
  Outcome outcome = Outcome::kPassed;
  std::optional<BugReport> report;
  SessionStats stats;
};

/// Hook that prepares the kernel before the run: registers program
/// factories (config.program_id must resolve) and creates any mutexes /
/// shared state the workload needs.
using WorkloadSetup = std::function<void(pcore::PcoreKernel&)>;

class TestSession {
 public:
  /// `merged` is the pattern the committer will drive; `patterns` are the
  /// per-slot patterns (for CP records).  The session forks all randomness
  /// from config.seed.
  TestSession(const PtestConfig& config, const pfa::Alphabet& alphabet,
              pattern::MergedPattern merged,
              const std::vector<pattern::TestPattern>& patterns,
              const WorkloadSetup& setup);

  /// Runs to completion/bug/limit.
  SessionResult run();

  [[nodiscard]] sim::Soc& soc() noexcept { return *soc_; }
  [[nodiscard]] pcore::PcoreKernel& kernel() noexcept { return *kernel_; }
  [[nodiscard]] const StateRecorder& recorder() const noexcept {
    return *recorder_;
  }
  [[nodiscard]] const master::Committer& committer() const noexcept {
    return *committer_;
  }

 private:
  PtestConfig config_;
  const pfa::Alphabet* alphabet_;
  pattern::MergedPattern merged_;
  std::unique_ptr<sim::Soc> soc_;
  std::unique_ptr<pcore::PcoreKernel> kernel_;
  std::unique_ptr<bridge::Channel> channel_;
  std::unique_ptr<bridge::Committee> committee_;
  std::unique_ptr<master::MasterScheduler> master_;
  master::Committer* committer_ = nullptr;  // owned by master_
  std::unique_ptr<StateRecorder> recorder_;
  std::unique_ptr<BugDetector> detector_;
};

}  // namespace ptest::core
