// Adaptive testing campaigns.
//
// The paper calls pTest *adaptive* because the PFA's probability
// distributions steer generation toward productive patterns, and §V asks
// "to identify the influence of probability distributions on the
// generation of test patterns for different testing scenarios".  A
// Campaign closes that loop operationally: it runs many AdaptiveTest
// sessions, tracks which (merge op, distribution) arms expose bugs, and
// allocates the remaining run budget with an epsilon-greedy policy — the
// natural "adaptive" extension of Algorithm 1 to a test *campaign*.
//
// Every arm shares the same workload and base config; arms differ only in
// the op and the PD text.  Results are per-arm detection counts plus the
// distinct failure signatures found (replayable reports are kept for each
// new signature).
//
// Execution is organised in fixed-size policy rounds: arm picks for a
// round are made up front — detection counts stay frozen at the round
// boundary while run counts advance per pick (so warm-up keeps filling
// within a round) — then the round's sessions — pure functions of
// (arm, run index, seed) — run concurrently on a support::WorkerPool
// and merge back in run order.
// Because neither the schedule nor the merge depends on thread count or
// completion order, `jobs = N` is bit-identical to the serial run.
//
// run() compiles each arm's CompiledTestPlan (regex -> PFA pipeline +
// parsed distributions) exactly once up front and shares the immutable
// plans across all worker threads, so per-session work is reduced to
// sampling, merging and driving the simulated platform.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "ptest/core/adaptive_test.hpp"
#include "ptest/pattern/coverage.hpp"
#include "ptest/support/metrics.hpp"
#include "ptest/support/result.hpp"

namespace ptest::core {

struct CampaignArm {
  std::string name;
  pattern::MergeOp op = pattern::MergeOp::kRoundRobin;
  /// Distribution text (DistributionSpec::parse syntax); empty = uniform.
  std::string distributions;
};

struct ArmStats {
  std::size_t runs = 0;
  std::size_t detections = 0;
  [[nodiscard]] double detection_rate() const noexcept {
    return runs == 0 ? 0.0 : static_cast<double>(detections) /
                                 static_cast<double>(runs);
  }
};

/// A contiguous slice of a campaign's run-index space — the unit of work
/// a fleet coordinator assigns to one worker.  Because every session's
/// seed derives from (base seed, global run index) alone, executing the
/// slices of plan_shards() on separate processes and merging the results
/// in shard order reproduces the serial run bit for bit.
struct ShardSlice {
  std::size_t index = 0;     // shard id (merge order)
  std::size_t run_base = 0;  // first global run index of the slice
  std::size_t sessions = 0;  // sessions in the slice
};

struct CampaignOptions {
  /// Total sessions to run across all arms.
  std::size_t budget = 64;
  /// Exploration probability of the epsilon-greedy policy.
  double epsilon = 0.2;
  /// Warm-up: every arm runs this many sessions before exploitation starts.
  std::size_t warmup_per_arm = 2;
  /// Count only this bug kind as a detection (nullopt = any bug).
  std::optional<BugKind> target;
  /// Worker threads executing sessions.  1 = run on the calling thread;
  /// 0 = one per hardware thread.  The result is bit-identical for every
  /// value because the policy schedule does not depend on it.  The
  /// effective thread count is capped at min(jobs, sync_interval): a
  /// policy round never holds more than sync_interval sessions, so extra
  /// threads would only idle — raise sync_interval together with jobs to
  /// scale further.
  std::size_t jobs = 1;
  /// Compile every arm's CompiledTestPlan once up front in run() and
  /// share it read-only across the worker threads (the compile/execute
  /// split of test_plan.hpp).  Off = rebuild the regex/PFA pipeline per
  /// session, as the pre-split code did; results are bit-identical
  /// either way (bench_plan_cache measures the difference).
  bool precompile = true;
  /// Policy feedback granularity: arm picks for a round of this many
  /// sessions see detection counts frozen at the round boundary (run
  /// counts still advance per pick), which is what lets a round execute
  /// in parallel.  0 = default (8).  Changing
  /// it changes the schedule (unlike `jobs`), so it is part of the
  /// campaign's deterministic identity alongside the seed.
  std::size_t sync_interval = 0;
  /// Track structural PFA coverage of every generated pattern and report
  /// it in CampaignResult::arm_coverage + the pfa_* metrics counters.
  /// Requires `precompile` (the tracker replays against the arm's
  /// compiled PFA); silently off on the compile-per-run legacy path.
  /// Coverage is folded during the in-order merge phase, so it is
  /// jobs-invariant like every other work counter.
  bool track_coverage = true;
};

struct CampaignResult {
  std::vector<ArmStats> arm_stats;  // parallel to arms
  /// Distinct failure signatures -> first report that produced them.
  std::map<std::string, BugReport> distinct_failures;
  std::size_t total_runs = 0;
  std::size_t total_detections = 0;
  /// Index of the arm with the best detection rate.
  std::size_t best_arm = 0;
  /// Structural coverage of each arm's compiled PFA (parallel to arms;
  /// empty when CampaignOptions::track_coverage is off or precompile is
  /// off).  The aggregate also lands in `metrics` (pfa_* counters).
  std::vector<pattern::CoverageReport> arm_coverage;
  /// The covered sets behind arm_coverage (parallel to it) — the
  /// mergeable form: the fleet coordinator unions shard states and
  /// rederives the reports/pfa_* counters from the merged sets, so they
  /// match a single-process run exactly instead of double-counting.
  std::vector<pattern::CoverageState> arm_coverage_state;
  /// Hot-path perf counters for this run.  The work counters (sessions,
  /// plan_cache_hits, plan_compiles, patterns_generated, dedup_*) are
  /// deterministic given seed/config — identical for every jobs value;
  /// the timing counters (wall_ns, worker_idle_ns) measure the host.
  support::MetricsSnapshot metrics;
};

class Campaign {
 public:
  Campaign(PtestConfig base_config, std::vector<CampaignArm> arms,
           WorkloadSetup setup, CampaignOptions options = {});

  /// Runs the whole budget; deterministic given base_config.seed — the
  /// same seed yields the same CampaignResult for any options.jobs.
  /// Sessions within a policy round execute on a WorkerPool when
  /// options.jobs != 1; each session's seed derives from
  /// (base seed, run index) alone, and round results merge in run order.
  [[nodiscard]] CampaignResult run();

  [[nodiscard]] const std::vector<CampaignArm>& arms() const noexcept {
    return arms_;
  }

  /// Runs a scenario from the built-in ScenarioRegistry as a single-arm
  /// campaign: the scenario's (plan, workload) with `options` on top.
  /// options.budget == 0 means "the scenario's default budget";
  /// `benign` selects the scenario's benign counterpart; `seed_override`
  /// replaces the plan's seed.  A malformed name (or a benign request on
  /// a scenario without a benign variant) returns an error message — it
  /// never throws, so CLI callers can report cleanly.  Defined in
  /// scenario/run_scenario.cpp, next to the registry it consults.
  [[nodiscard]] static support::Result<CampaignResult, std::string>
  run_scenario(std::string_view name, CampaignOptions options = {},
               bool benign = false,
               std::optional<std::uint64_t> seed_override = {});

  /// Splits `budget` sessions into `shards` contiguous run-index slices
  /// (floor + remainder spread over the leading shards).  Shards beyond
  /// the budget would be empty and are dropped; shards == 0 plans one.
  [[nodiscard]] static std::vector<ShardSlice> plan_shards(
      std::size_t budget, std::size_t shards);

  /// Runs one slice of the run-index space through the same round
  /// machinery as run() — this is what a fleet worker executes.  Only
  /// single-arm campaigns shard bit-identically (the epsilon-greedy
  /// policy feeds detections back sequentially, so a multi-arm schedule
  /// depends on earlier slices); multi-arm campaigns throw.
  [[nodiscard]] CampaignResult run_slice(const ShardSlice& slice);

  /// run_scenario's fleet-worker counterpart: builds the scenario's
  /// single-arm campaign and executes just `slice` of it.  Defined in
  /// scenario/run_scenario.cpp, next to the registry it consults.
  [[nodiscard]] static support::Result<CampaignResult, std::string>
  run_scenario_slice(std::string_view name, const ShardSlice& slice,
                     CampaignOptions options = {}, bool benign = false,
                     std::optional<std::uint64_t> seed_override = {});

 private:
  /// Outcome of one session, reduced to what the policy, result, and
  /// metrics need.
  struct RunOutcome {
    bool hit = false;
    std::optional<BugReport> report;  // engaged only when hit
    /// Counts folded into CampaignResult::metrics during the in-order
    /// merge phase (keeping the totals deterministic for any jobs).
    std::size_t patterns = 0;
    std::size_t duplicates_rejected = 0;
    std::uint64_t ticks = 0;   // kernel ticks the session simulated
    std::uint64_t scratch_reuse_hits = 0;        // see pfa::WalkScratch
    std::uint64_t sample_alloc_bytes_saved = 0;  // "
    std::uint64_t wall_ns = 0;  // session wall time (timing class)
    bool plan_cached = false;  // session ran off a precompiled plan
  };

  std::size_t pick_arm(support::Rng& rng,
                       const std::vector<ArmStats>& stats) const;
  /// base_config_ with arm `arm_index`'s (op, distributions) applied.
  [[nodiscard]] PtestConfig arm_config(std::size_t arm_index) const;
  /// Runs one session.  `tracker` (nullable) receives the session's
  /// sampled patterns via observe() on the executing worker thread —
  /// each worker gets its own tracker, so no pattern is retained or
  /// copied back to the merge phase.  `scratch` is the executing
  /// worker's private sampling scratch (same ownership rule), so
  /// steady-state sessions sample with zero walk allocations.
  RunOutcome execute_run(std::size_t run_index, std::size_t arm_index,
                         pattern::CoverageTracker* tracker,
                         pfa::WalkScratch& scratch) const;
  /// Shared body of run() and run_slice(): executes `budget` sessions
  /// whose global run indices start at `run_base`.
  [[nodiscard]] CampaignResult run_impl(std::size_t run_base,
                                        std::size_t budget);

  PtestConfig base_config_;
  std::vector<CampaignArm> arms_;
  WorkloadSetup setup_;
  CampaignOptions options_;
  /// One immutable plan per arm, compiled at the top of run() when
  /// options_.precompile; shared read-only by every worker thread.
  std::vector<CompiledTestPlanPtr> plans_;
};

}  // namespace ptest::core
