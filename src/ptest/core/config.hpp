// pTest configuration: the paper's (RE, n, s, op) tuple of Algorithm 1
// plus the probability distributions PD and the runtime knobs of the
// simulated platform.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "ptest/pattern/merger.hpp"
#include "ptest/pcore/kernel.hpp"

namespace ptest::core {

struct DetectorConfig {
  /// A pending remote command unacknowledged for this many ticks means the
  /// slave is unresponsive (crash signature distinct from panic).
  sim::Tick command_timeout = 4096;
  /// After the committer finished, live tasks must terminate within this
  /// horizon or the detector reports a synchronization anomaly ("if
  /// processes do not terminate ... the system may contain synchronization
  /// anomalies", §II-A).
  sim::Tick termination_horizon = 4096;
  /// A ready task unscheduled for this many ticks counts as starved.
  /// 0 disables starvation detection (strict-priority kernels starve
  /// low-priority tasks by design under load).
  sim::Tick starvation_horizon = 0;
  /// Trace lines included in a bug report.
  std::size_t report_trace_lines = 32;
};

/// The paper's Fig. 5 probability distributions (service bigrams), in
/// DistributionSpec::parse syntax — the canonical copy consumers
/// (scenario catalog, ptest_cli --pd fig5) share so the "paper PFA
/// configuration" can never desynchronize between them.
inline constexpr const char* kFig5Distributions =
    "TC -> TCH = 0.6; TC -> TS = 0.2; TC -> TD = 0.1; TC -> TY = 0.1;"
    "TCH -> TCH = 0.6; TCH -> TS = 0.2; TCH -> TD = 0.1; TCH -> TY = 0.1;"
    "TS -> TR = 1.0;"
    "TR -> TCH = 0.4; TR -> TS = 0.3; TR -> TY = 0.2; TR -> TD = 0.1";

struct PtestConfig {
  // --- Algorithm 1 inputs ---------------------------------------------------
  /// RE: the service-lifecycle regular expression.  Default: paper Eq. (2).
  std::string regex = "TC((TCH)* | TS TR (TCH)*)* (TD$ | TY$)";
  /// PD: probability distributions, in DistributionSpec::parse syntax.
  /// Empty = uniform.
  std::string distributions;
  /// n: number of test patterns (= concurrent tasks under test).
  std::size_t n = 4;
  /// s: size of each test pattern.
  std::size_t s = 8;
  /// op: pattern-merger operator.
  pattern::MergeOp op = pattern::MergeOp::kRoundRobin;

  // --- generation options ----------------------------------------------------
  bool complete_to_accept = true;
  bool restart_at_accept = false;
  /// Drop replicated patterns (paper §V future work).
  bool dedup_patterns = false;
  /// kCyclic chunk break symbols (comma-separated mnemonics).  TS,TR makes
  /// both suspends and resumes full rotations (see MergerOptions).
  std::string cyclic_break = "TC,TS,TR";

  // --- runtime ---------------------------------------------------------------
  std::uint64_t seed = 0x70746573'74303921ULL;
  sim::Tick max_ticks = 200000;
  pcore::KernelConfig kernel{};
  DetectorConfig detector{};
  /// Program the created tasks run (id in the session's registry).
  std::uint32_t program_id = 0;
  /// ConTest-style master-side jitter: maximum random delay (ticks)
  /// inserted before each command issue (0 = off); see baseline/noise.hpp.
  sim::Tick noise_max_delay = 0;
  /// Fixed pacing between consecutive command issues.  Spacing lets each
  /// command's effect settle on the slave before the next lands — without
  /// it, cleanup commands (TD/TY) can race ahead of the very anomaly a
  /// merge operator engineered (e.g. dissolve a wait-for cycle one tick
  /// before it closes).  0 = issue as fast as acks return.
  sim::Tick command_spacing = 0;
};

}  // namespace ptest::core
