// The bug detector (Fig. 2): "tracks the progress of test activities until
// it detects the potential system failures and then it terminates the test
// activity that results in these failures" (§II-B).
//
// Implemented as a sim::Device stepped after the master and slave stacks
// each tick.  In the paper it runs as a separate process on the master;
// here the deterministic tick loop gives it the same observational power
// (kernel snapshot via the debug port, committer protocol state, CP
// records) without racing the system under test.
//
// Detections:
//   * slave crash      — kernel panic flag (case study 1's GC failure);
//   * deadlock         — cycle in the wait-for graph built from mutex
//                        owners/waiters (case study 2);
//   * unresponsive     — a remote command unacknowledged past the timeout;
//   * no-termination   — tasks still alive past the horizon after the
//                        committer finished (covers Fig. 1's spin livelock,
//                        where tasks keep running but never terminate);
//   * starvation       — optionally, a ready task unscheduled too long.
#pragma once

#include <functional>
#include <optional>

#include "ptest/core/config.hpp"
#include "ptest/core/report.hpp"
#include "ptest/core/state_record.hpp"
#include "ptest/master/committer.hpp"
#include "ptest/pcore/kernel.hpp"

namespace ptest::core {

class BugDetector : public sim::Device {
 public:
  BugDetector(const DetectorConfig& config, pcore::PcoreKernel& kernel,
              const master::Committer& committer,
              const StateRecorder& recorder)
      : config_(config),
        kernel_(&kernel),
        committer_(&committer),
        recorder_(&recorder) {}

  bool tick(sim::Soc& soc) override;

  [[nodiscard]] bool bug_found() const noexcept {
    return report_.has_value();
  }
  [[nodiscard]] const std::optional<BugReport>& report() const noexcept {
    return report_;
  }

  /// True once the committer finished and every task exited cleanly.
  [[nodiscard]] bool passed() const noexcept { return passed_; }

  /// Finds a wait-for cycle among blocked tasks; exposed for unit tests.
  [[nodiscard]] static std::vector<pcore::TaskId> find_deadlock_cycle(
      const pcore::PcoreKernel& kernel);

 private:
  void file_report(sim::Soc& soc, BugKind kind, std::string description,
                   std::vector<pcore::TaskId> culprits);

  DetectorConfig config_;
  pcore::PcoreKernel* kernel_;
  const master::Committer* committer_;
  const StateRecorder* recorder_;
  std::optional<BugReport> report_;
  bool passed_ = false;
  std::optional<sim::Tick> committer_finished_at_;
};

}  // namespace ptest::core
