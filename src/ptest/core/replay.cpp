#include "ptest/core/replay.hpp"

namespace ptest::core {

SessionResult replay(const BugReport& report, const PtestConfig& config,
                     const pfa::Alphabet& alphabet,
                     const WorkloadSetup& setup) {
  PtestConfig replay_config = config;
  replay_config.seed = report.seed;
  // Reconstruct per-slot patterns from the merged pattern so the state
  // recorder reports the same Definition-2 tuples.
  pattern::SlotIndex max_slot = 0;
  for (const auto& element : report.merged.elements) {
    max_slot = std::max(max_slot, element.slot);
  }
  std::vector<pattern::TestPattern> patterns(
      report.merged.elements.empty() ? 0 : max_slot + 1);
  for (pattern::SlotIndex slot = 0; slot < patterns.size(); ++slot) {
    patterns[slot].symbols = report.merged.project(slot);
  }
  TestSession session(replay_config, alphabet, report.merged, patterns,
                      setup);
  return session.run();
}

SessionResult replay(const BugReport& report, const CompiledTestPlan& plan,
                     const WorkloadSetup& setup) {
  return replay(report, plan.config, plan.alphabet, setup);
}

bool verify_reproduces(const BugReport& original,
                       const SessionResult& replayed) {
  if (replayed.outcome != Outcome::kBug || !replayed.report) return false;
  return replayed.report->signature() == original.signature();
}

}  // namespace ptest::core
