#include "ptest/core/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <stdexcept>

#include "ptest/obs/trace.hpp"
#include "ptest/support/rng.hpp"
#include "ptest/support/worker_pool.hpp"

namespace ptest::core {

namespace {

/// Sessions per policy round when CampaignOptions::sync_interval is 0.
/// Small enough that the epsilon-greedy policy still adapts quickly,
/// large enough to keep a handful of workers busy between barriers.
constexpr std::size_t kDefaultSyncInterval = 8;

}  // namespace

Campaign::Campaign(PtestConfig base_config, std::vector<CampaignArm> arms,
                   WorkloadSetup setup, CampaignOptions options)
    : base_config_(std::move(base_config)),
      arms_(std::move(arms)),
      setup_(std::move(setup)),
      options_(options) {
  if (arms_.empty()) {
    throw std::invalid_argument("Campaign: at least one arm required");
  }
}

std::size_t Campaign::pick_arm(support::Rng& rng,
                               const std::vector<ArmStats>& stats) const {
  // Warm-up first-fit until every arm has its minimum runs.
  for (std::size_t i = 0; i < arms_.size(); ++i) {
    if (stats[i].runs < options_.warmup_per_arm) return i;
  }
  // Epsilon-greedy: explore uniformly, otherwise exploit the best rate
  // (ties to the lower index for determinism).
  if (rng.chance(options_.epsilon)) {
    return static_cast<std::size_t>(rng.below(arms_.size()));
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < arms_.size(); ++i) {
    if (stats[i].detection_rate() > stats[best].detection_rate()) {
      best = i;
    }
  }
  return best;
}

PtestConfig Campaign::arm_config(std::size_t arm_index) const {
  PtestConfig config = base_config_;
  config.op = arms_[arm_index].op;
  config.distributions = arms_[arm_index].distributions;
  return config;
}

Campaign::RunOutcome Campaign::execute_run(
    std::size_t run_index, std::size_t arm_index,
    pattern::CoverageTracker* tracker, pfa::WalkScratch& scratch) const {
  // Distinct decorrelated seeds per run, a pure function of
  // (base seed, run index) so execution order never matters.
  const std::uint64_t seed =
      support::derive_seed(base_config_.seed, run_index);

  PTEST_OBS_SPAN("session");
  const auto session_start = std::chrono::steady_clock::now();
  AdaptiveTestResult outcome;
  RunOutcome result;
  if (arm_index < plans_.size() && plans_[arm_index]) {
    outcome = execute(*plans_[arm_index], seed, setup_, scratch);
    result.plan_cached = true;
  } else {
    // Legacy compile-per-run path (options_.precompile == false): kept
    // so bench_plan_cache can measure what the plan cache buys and the
    // determinism tests can check both paths agree.
    PtestConfig config = arm_config(arm_index);
    config.seed = seed;
    pfa::Alphabet alphabet;
    outcome = adaptive_test(config, alphabet, setup_);
  }

  result.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - session_start)
          .count());
  result.patterns = outcome.patterns.size();
  result.duplicates_rejected = outcome.duplicates_rejected;
  result.ticks = outcome.session.stats.ticks;
  result.scratch_reuse_hits = outcome.scratch_reuse_hits;
  result.sample_alloc_bytes_saved = outcome.sample_alloc_bytes_saved;
  if (tracker != nullptr && result.plan_cached) {
    // Coverage folds right here on the executing worker thread, into
    // that worker's private tracker — the merge phase never sees the
    // patterns, so nothing is retained or copied across the barrier.
    for (const pattern::TestPattern& sampled : outcome.patterns) {
      tracker->observe(sampled);
    }
  }
  result.hit =
      outcome.session.outcome == Outcome::kBug && outcome.session.report &&
      (!options_.target || outcome.session.report->kind == *options_.target);
  if (result.hit) result.report = outcome.session.report;
  return result;
}

std::vector<ShardSlice> Campaign::plan_shards(std::size_t budget,
                                              std::size_t shards) {
  if (shards == 0) shards = 1;
  shards = std::min(shards, std::max<std::size_t>(budget, 1));
  std::vector<ShardSlice> slices;
  slices.reserve(shards);
  const std::size_t base = budget / shards;
  const std::size_t extra = budget % shards;
  std::size_t run_base = 0;
  for (std::size_t i = 0; i < shards; ++i) {
    ShardSlice slice;
    slice.index = i;
    slice.run_base = run_base;
    slice.sessions = base + (i < extra ? 1 : 0);
    run_base += slice.sessions;
    slices.push_back(slice);
  }
  return slices;
}

CampaignResult Campaign::run() { return run_impl(0, options_.budget); }

CampaignResult Campaign::run_slice(const ShardSlice& slice) {
  if (arms_.size() != 1) {
    throw std::invalid_argument(
        "Campaign::run_slice: only single-arm campaigns shard "
        "bit-identically (the policy feeds detections back sequentially)");
  }
  return run_impl(slice.run_base, slice.sessions);
}

CampaignResult Campaign::run_impl(std::size_t run_base, std::size_t budget) {
  const auto wall_start = std::chrono::steady_clock::now();
  support::Metrics metrics;

  // Compile every arm's fixed artifact once, before any session runs:
  // the plans are immutable from here on, so the worker threads share
  // them without synchronization.
  plans_.assign(arms_.size(), nullptr);
  if (options_.precompile) {
    for (std::size_t i = 0; i < arms_.size(); ++i) {
      plans_[i] = compile(arm_config(i));
      metrics.add_plan_compiles();
    }
  }

  CampaignResult result;
  result.arm_stats.resize(arms_.size());
  support::Rng policy_rng(base_config_.seed ^ 0xada9717eULL);

  const std::size_t interval = options_.sync_interval == 0
                                   ? kDefaultSyncInterval
                                   : options_.sync_interval;
  const std::size_t jobs = support::resolve_jobs(options_.jobs);
  // The pool's caller thread participates in parallel_for, so jobs
  // workers would give jobs+1-way parallelism; spawn one fewer.  A
  // round never holds more than `interval` sessions, which also bounds
  // the useful parallelism — extra threads would just idle, so raise
  // sync_interval together with jobs to scale past the default.
  const std::size_t useful_jobs = std::min(jobs, interval);
  std::unique_ptr<support::WorkerPool> pool;
  if (useful_jobs > 1) {
    pool = std::make_unique<support::WorkerPool>(useful_jobs - 1);
  }
  const std::size_t participants = pool ? pool->thread_count() + 1 : 1;

  // One coverage tracker per (pool participant, arm): each session
  // observes into the executing worker's private tracker, off the
  // merging thread.  The per-worker sets are pure unions, so folding
  // them once after the last round is equivalent to folding at every
  // round barrier — and either way the fold is order-insensitive, which
  // keeps coverage jobs-invariant even though the participant executing
  // a given slot is not deterministic.
  std::vector<std::vector<pattern::CoverageTracker>> trackers;
  const bool track_coverage = options_.track_coverage && options_.precompile;
  if (track_coverage) {
    trackers.resize(participants);
    for (std::vector<pattern::CoverageTracker>& slot : trackers) {
      slot.reserve(arms_.size());
      for (const CompiledTestPlanPtr& plan : plans_) {
        slot.emplace_back(plan->pfa);
      }
    }
  }

  // One sampling scratch per pool participant, alive for the whole
  // campaign: after the first session warms a worker's buffers up,
  // sampling allocates nothing.  The reuse *counters* don't depend on
  // which worker a session lands on — WalkScratch accounts them against
  // a per-session high-water mark (see begin_session) — so the totals
  // stay jobs-invariant even though the physical reuse is scheduled.
  std::vector<pfa::WalkScratch> scratches(participants);

  // Per-session distributions, filled in the in-order merge phase below.
  // ticks_hist is work class (insertion is commutative and the values
  // are a pure function of seed/run index, so the buckets are identical
  // for any jobs value or shard split); session_wall_hist times the
  // host.
  obs::Histogram ticks_hist;
  obs::Histogram session_wall_hist;

  std::vector<std::size_t> round_arms;
  std::vector<RunOutcome> round_outcomes;
  for (std::size_t round_start = 0; round_start < budget;
       round_start += round_arms.size()) {
    const std::size_t round_size = std::min(interval, budget - round_start);

    // Phase 1 — schedule: pick every arm of the round against the stats
    // frozen at the round boundary.  Run counts advance per pick (so the
    // warm-up keeps filling — first-fit, arm 0 up to the minimum before
    // arm 1 starts); detections only merge in phase 3.
    round_arms.assign(round_size, 0);
    for (std::size_t i = 0; i < round_size; ++i) {
      const std::size_t arm = pick_arm(policy_rng, result.arm_stats);
      round_arms[i] = arm;
      ++result.arm_stats[arm].runs;
    }

    // Phase 2 — execute: each slot is a pure function of its global run
    // index and arm, so the round shards freely across the pool.
    // Coverage observation happens here too, into the executing
    // participant's tracker.
    round_outcomes.assign(round_size, RunOutcome{});
    auto execute_slot = [&](std::size_t participant, std::size_t i) {
      pattern::CoverageTracker* tracker =
          track_coverage ? &trackers[participant][round_arms[i]] : nullptr;
      round_outcomes[i] = execute_run(run_base + round_start + i,
                                      round_arms[i], tracker,
                                      scratches[participant]);
    };
    if (pool) {
      pool->parallel_for(round_size, execute_slot);
    } else {
      for (std::size_t i = 0; i < round_size; ++i) execute_slot(0, i);
    }

    // Phase 3 — merge, in run order, so first-report-per-signature and
    // every counter land identically for any jobs value.
    for (std::size_t i = 0; i < round_size; ++i) {
      ++result.total_runs;
      const RunOutcome& outcome = round_outcomes[i];
      metrics.add_sessions();
      metrics.add_patterns_generated(outcome.patterns);
      metrics.add_ticks(outcome.ticks);
      ticks_hist.record(outcome.ticks);
      session_wall_hist.record(outcome.wall_ns);
      metrics.add_scratch_reuse_hits(outcome.scratch_reuse_hits);
      metrics.add_sample_alloc_bytes_saved(outcome.sample_alloc_bytes_saved);
      if (outcome.plan_cached) {
        metrics.add_plan_cache_hits();
      } else {
        metrics.add_plan_compiles();  // compile-per-run legacy path
      }
      if (base_config_.dedup_patterns) {
        metrics.add_dedup_accepted(outcome.patterns);
        metrics.add_dedup_rejected(outcome.duplicates_rejected);
      }
      if (!outcome.hit) continue;
      ++result.arm_stats[round_arms[i]].detections;
      ++result.total_detections;
      result.distinct_failures.emplace(outcome.report->signature(),
                                       *outcome.report);
    }
  }

  result.best_arm = 0;
  for (std::size_t i = 1; i < arms_.size(); ++i) {
    if (result.arm_stats[i].detection_rate() >
        result.arm_stats[result.best_arm].detection_rate()) {
      result.best_arm = i;
    }
  }

  metrics.set_worker_threads(pool ? pool->thread_count() + 1 : 1);
  if (pool) metrics.add_worker_idle_ns(pool->idle_nanos());
  metrics.add_wall_ns(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - wall_start)
          .count()));
  result.metrics = metrics.snapshot();
  result.metrics.ticks_hist = ticks_hist;
  result.metrics.session_wall_hist = session_wall_hist;
  if (track_coverage) {
    // Fold the helpers' trackers into participant 0's — plain set
    // unions, so the fold order is irrelevant.
    for (std::size_t p = 1; p < trackers.size(); ++p) {
      for (std::size_t arm = 0; arm < arms_.size(); ++arm) {
        trackers[0][arm].absorb(trackers[p][arm].state());
      }
    }
    result.arm_coverage.reserve(arms_.size());
    result.arm_coverage_state.reserve(arms_.size());
    for (std::size_t arm = 0; arm < arms_.size(); ++arm) {
      pattern::CoverageState state = trackers[0][arm].state();
      const pattern::CoverageReport report = state.report();
      result.arm_coverage.push_back(report);
      result.arm_coverage_state.push_back(std::move(state));
      result.metrics.pfa_states += report.states_total;
      result.metrics.pfa_states_covered += report.states_covered;
      result.metrics.pfa_transitions += report.transitions_total;
      result.metrics.pfa_transitions_covered += report.transitions_covered;
      result.metrics.pfa_ngrams += report.ngrams_observed;
    }
  }
  return result;
}

}  // namespace ptest::core
