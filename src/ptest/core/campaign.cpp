#include "ptest/core/campaign.hpp"

#include <stdexcept>

namespace ptest::core {

Campaign::Campaign(PtestConfig base_config, std::vector<CampaignArm> arms,
                   WorkloadSetup setup, CampaignOptions options)
    : base_config_(std::move(base_config)),
      arms_(std::move(arms)),
      setup_(std::move(setup)),
      options_(options) {
  if (arms_.empty()) {
    throw std::invalid_argument("Campaign: at least one arm required");
  }
}

std::size_t Campaign::pick_arm(support::Rng& rng,
                               const CampaignResult& result) const {
  // Warm-up round-robin until every arm has its minimum runs.
  for (std::size_t i = 0; i < arms_.size(); ++i) {
    if (result.arm_stats[i].runs < options_.warmup_per_arm) return i;
  }
  // Epsilon-greedy: explore uniformly, otherwise exploit the best rate
  // (ties to the lower index for determinism).
  if (rng.chance(options_.epsilon)) {
    return static_cast<std::size_t>(rng.below(arms_.size()));
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < arms_.size(); ++i) {
    if (result.arm_stats[i].detection_rate() >
        result.arm_stats[best].detection_rate()) {
      best = i;
    }
  }
  return best;
}

CampaignResult Campaign::run() {
  CampaignResult result;
  result.arm_stats.resize(arms_.size());
  support::Rng policy_rng(base_config_.seed ^ 0xada9717eULL);

  for (std::size_t run = 0; run < options_.budget; ++run) {
    const std::size_t arm_index = pick_arm(policy_rng, result);
    const CampaignArm& arm = arms_[arm_index];

    PtestConfig config = base_config_;
    config.op = arm.op;
    config.distributions = arm.distributions;
    // Distinct seeds per run, derived deterministically.
    config.seed = base_config_.seed + 0x9e3779b9ULL * (run + 1);

    pfa::Alphabet alphabet;
    const AdaptiveTestResult outcome =
        adaptive_test(config, alphabet, setup_);

    ArmStats& stats = result.arm_stats[arm_index];
    ++stats.runs;
    ++result.total_runs;

    const bool hit =
        outcome.session.outcome == Outcome::kBug &&
        outcome.session.report &&
        (!options_.target || outcome.session.report->kind == *options_.target);
    if (hit) {
      ++stats.detections;
      ++result.total_detections;
      const std::string signature = outcome.session.report->signature();
      result.distinct_failures.emplace(signature, *outcome.session.report);
    }
  }

  result.best_arm = 0;
  for (std::size_t i = 1; i < arms_.size(); ++i) {
    if (result.arm_stats[i].detection_rate() >
        result.arm_stats[result.best_arm].detection_rate()) {
      result.best_arm = i;
    }
  }
  return result;
}

}  // namespace ptest::core
