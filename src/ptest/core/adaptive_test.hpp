// AdaptiveTest — Algorithm 1 of the paper.
//
//   procedure AdaptiveTest(RE, n, s, op):
//     for i = 1..n:  T[i] <- PatternGenerator(RE, PD, s)
//     M <- PatternMerger(T, n, op)
//     fork BugDetector;  Committer(M)
//
// The implementation is split into two stages (see test_plan.hpp):
//
//   compile(config, alphabet)  -> CompiledTestPlan   (once per config)
//   execute(plan, seed, setup) -> AdaptiveTestResult (once per run)
//
// so that campaigns build the PFA artifact once per arm and only the
// seed-dependent sampling / merging / session work runs per session.
// adaptive_test() and generate_and_merge() below keep the original
// one-shot signatures as thin compile-then-execute wrappers.
#pragma once

#include "ptest/core/session.hpp"
#include "ptest/core/test_plan.hpp"
#include "ptest/pattern/generator.hpp"

namespace ptest::core {

struct AdaptiveTestResult {
  SessionResult session;
  std::vector<pattern::TestPattern> patterns;
  pattern::MergedPattern merged;
  /// Patterns rejected as replicas (only when config.dedup_patterns).
  std::size_t duplicates_rejected = 0;
};

/// Runs one adaptive test against a precompiled plan: samples n patterns,
/// merges them with the plan's op, and runs a TestSession with `setup`.
/// Every random stream derives from `seed`; the plan is shared read-only,
/// so concurrent execute() calls on the same plan are safe.
[[nodiscard]] AdaptiveTestResult execute(const CompiledTestPlan& plan,
                                         std::uint64_t seed,
                                         const WorkloadSetup& setup);

/// The generation+merge phases only (no session) against a precompiled
/// plan — used by benches that study the pattern pipeline in isolation.
[[nodiscard]] AdaptiveTestResult generate_and_merge(
    const CompiledTestPlan& plan, std::uint64_t seed);

/// One-shot wrapper: compile(config, alphabet) + execute(plan,
/// config.seed, setup).  Interned symbols are copied back into
/// `alphabet` so callers can render the result.
[[nodiscard]] AdaptiveTestResult adaptive_test(const PtestConfig& config,
                                               pfa::Alphabet& alphabet,
                                               const WorkloadSetup& setup);

/// One-shot wrapper for the generation+merge phases only (no session).
[[nodiscard]] AdaptiveTestResult generate_and_merge(const PtestConfig& config,
                                                    pfa::Alphabet& alphabet);

}  // namespace ptest::core
