// AdaptiveTest — Algorithm 1 of the paper.
//
//   procedure AdaptiveTest(RE, n, s, op):
//     for i = 1..n:  T[i] <- PatternGenerator(RE, PD, s)
//     M <- PatternMerger(T, n, op)
//     fork BugDetector;  Committer(M)
//
// adaptive_test() performs exactly these phases on the simulated platform
// and returns the session result plus the artifacts (patterns, merged
// pattern) so callers can inspect, deduplicate or replay.
#pragma once

#include "ptest/core/session.hpp"
#include "ptest/pattern/generator.hpp"

namespace ptest::core {

struct AdaptiveTestResult {
  SessionResult session;
  std::vector<pattern::TestPattern> patterns;
  pattern::MergedPattern merged;
  /// Patterns rejected as replicas (only when config.dedup_patterns).
  std::size_t duplicates_rejected = 0;
};

/// Builds the PFA from config.regex/config.distributions over `alphabet`
/// (service mnemonics are interned first), samples n patterns, merges them
/// with config.op, and runs a TestSession with `setup`.
[[nodiscard]] AdaptiveTestResult adaptive_test(const PtestConfig& config,
                                               pfa::Alphabet& alphabet,
                                               const WorkloadSetup& setup);

/// The generation+merge phases only (no session) — used by benches that
/// study the pattern pipeline in isolation.
[[nodiscard]] AdaptiveTestResult generate_and_merge(const PtestConfig& config,
                                                    pfa::Alphabet& alphabet);

}  // namespace ptest::core
