// AdaptiveTest — Algorithm 1 of the paper.
//
//   procedure AdaptiveTest(RE, n, s, op):
//     for i = 1..n:  T[i] <- PatternGenerator(RE, PD, s)
//     M <- PatternMerger(T, n, op)
//     fork BugDetector;  Committer(M)
//
// The implementation is split into two stages (see test_plan.hpp):
//
//   compile(config, alphabet)  -> CompiledTestPlan   (once per config)
//   execute(plan, seed, setup) -> AdaptiveTestResult (once per run)
//
// so that campaigns build the PFA artifact once per arm and only the
// seed-dependent sampling / merging / session work runs per session.
// adaptive_test() and generate_and_merge() below keep the original
// one-shot signatures as thin compile-then-execute wrappers.
#pragma once

#include "ptest/core/session.hpp"
#include "ptest/core/test_plan.hpp"
#include "ptest/pattern/generator.hpp"

namespace ptest::core {

struct AdaptiveTestResult {
  SessionResult session;
  std::vector<pattern::TestPattern> patterns;
  pattern::MergedPattern merged;
  /// Patterns rejected as replicas (only when config.dedup_patterns).
  std::size_t duplicates_rejected = 0;
  /// This session's scratch-reuse accounting (see pfa::WalkScratch):
  /// sample_into calls served within the session high-water capacity and
  /// the Walk-buffer bytes those hits avoided allocating.  Deterministic
  /// given (plan, seed), so campaigns fold them like any work counter.
  std::uint64_t scratch_reuse_hits = 0;
  std::uint64_t sample_alloc_bytes_saved = 0;
};

/// Runs one adaptive test against a precompiled plan: samples n patterns
/// through the caller's scratch, merges them with the plan's op, and runs
/// a TestSession with `setup`.  Every random stream derives from `seed`;
/// the plan is shared read-only, so concurrent execute() calls on the
/// same plan are safe as long as each caller passes its own scratch.
[[nodiscard]] AdaptiveTestResult execute(const CompiledTestPlan& plan,
                                         std::uint64_t seed,
                                         const WorkloadSetup& setup,
                                         pfa::WalkScratch& scratch);

/// The generation+merge phases only (no session) against a precompiled
/// plan — the sampling hot path a campaign pays per session.  Holds the
/// steady-state zero-allocation property: after the scratch warmed up,
/// pattern sampling allocates only the patterns' own storage.
[[nodiscard]] AdaptiveTestResult generate_and_merge(
    const CompiledTestPlan& plan, std::uint64_t seed,
    pfa::WalkScratch& scratch);

/// execute() via a call-local scratch (thin wrapper; prefer the scratch
/// overload on hot paths so buffers survive across sessions).
[[nodiscard]] AdaptiveTestResult execute(const CompiledTestPlan& plan,
                                         std::uint64_t seed,
                                         const WorkloadSetup& setup);

/// generate_and_merge() via a call-local scratch (thin wrapper; prefer
/// the scratch overload on hot paths).
[[nodiscard]] AdaptiveTestResult generate_and_merge(
    const CompiledTestPlan& plan, std::uint64_t seed);

/// One-shot wrapper: compile(config, alphabet) + execute(plan,
/// config.seed, setup).  Interned symbols are copied back into
/// `alphabet` so callers can render the result.
[[nodiscard]] AdaptiveTestResult adaptive_test(const PtestConfig& config,
                                               pfa::Alphabet& alphabet,
                                               const WorkloadSetup& setup);

/// One-shot wrapper for the generation+merge phases only (no session).
[[nodiscard]] AdaptiveTestResult generate_and_merge(const PtestConfig& config,
                                                    pfa::Alphabet& alphabet);

}  // namespace ptest::core
