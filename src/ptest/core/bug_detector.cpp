#include "ptest/core/bug_detector.hpp"

#include <sstream>

namespace ptest::core {

std::vector<pcore::TaskId> BugDetector::find_deadlock_cycle(
    const pcore::PcoreKernel& kernel) {
  // wait_for[t] = owner of the mutex t is blocked on (if blocked).
  std::array<pcore::TaskId, pcore::kMaxTasks> wait_for;
  wait_for.fill(pcore::kInvalidTask);
  for (pcore::TaskId t = 0; t < pcore::kMaxTasks; ++t) {
    const pcore::Tcb& tcb = kernel.tcb(t);
    if (tcb.state != pcore::TaskState::kBlocked || !tcb.waiting_on) continue;
    const pcore::KMutex& mutex = kernel.mutex(*tcb.waiting_on);
    if (mutex.owner) wait_for[t] = *mutex.owner;
  }
  // Floyd-style walk from every blocked task; cycles are tiny (<= 16).
  for (pcore::TaskId start = 0; start < pcore::kMaxTasks; ++start) {
    if (wait_for[start] == pcore::kInvalidTask) continue;
    std::vector<pcore::TaskId> path;
    std::array<bool, pcore::kMaxTasks> on_path{};
    pcore::TaskId cursor = start;
    while (cursor != pcore::kInvalidTask && !on_path[cursor]) {
      on_path[cursor] = true;
      path.push_back(cursor);
      cursor = wait_for[cursor];
    }
    if (cursor == pcore::kInvalidTask) continue;
    // `cursor` starts the cycle; trim the leading tail.
    const auto cycle_start =
        std::find(path.begin(), path.end(), cursor);
    return {cycle_start, path.end()};
  }
  return {};
}

void BugDetector::file_report(sim::Soc& soc, BugKind kind,
                              std::string description,
                              std::vector<pcore::TaskId> culprits) {
  BugReport report;
  report.kind = kind;
  report.detected_at = soc.now();
  report.description = std::move(description);
  report.culprits = std::move(culprits);
  report.kernel = kernel_->snapshot();
  report.state_records = recorder_->render();
  report.trace_tail = soc.trace().render(config_.report_trace_lines);
  report_ = std::move(report);
  soc.record(sim::TraceCategory::kDetector,
             std::string("bug detected: ") + to_string(report_->kind));
}

bool BugDetector::tick(sim::Soc& soc) {
  if (report_ || passed_) return false;

  // 1. Slave crash.
  if (kernel_->panicked()) {
    file_report(soc, BugKind::kSlaveCrash,
                "slave kernel panicked: " + kernel_->panic_reason(), {});
    return false;
  }

  // 2. Deadlock.
  if (auto cycle = find_deadlock_cycle(*kernel_); !cycle.empty()) {
    std::ostringstream desc;
    desc << "wait-for cycle:";
    for (const auto t : cycle) desc << " task" << static_cast<int>(t);
    file_report(soc, BugKind::kDeadlock, desc.str(), std::move(cycle));
    return false;
  }

  // 3. Unresponsive slave (command timeout).
  for (const auto& [seq, issue] : committer_->outstanding()) {
    if (soc.now() - issue.issued_at > config_.command_timeout) {
      file_report(soc, BugKind::kUnresponsive,
                  "command seq=" + std::to_string(seq) + " (" +
                      bridge::mnemonic(issue.service) +
                      ") unacknowledged for " +
                      std::to_string(soc.now() - issue.issued_at) + " ticks",
                  {});
      return false;
    }
  }

  // 4. Post-pattern termination watchdog / pass detection.
  if (committer_->finished()) {
    if (!committer_finished_at_) committer_finished_at_ = soc.now();
    const std::size_t live = kernel_->live_task_count();
    if (live == 0) {
      passed_ = true;
      return false;
    }
    if (soc.now() - *committer_finished_at_ > config_.termination_horizon) {
      std::vector<pcore::TaskId> culprits;
      for (const auto& task : kernel_->snapshot().tasks) {
        culprits.push_back(task.id);
      }
      file_report(soc, BugKind::kNoTermination,
                  std::to_string(live) +
                      " task(s) did not terminate within the horizon",
                  std::move(culprits));
      return false;
    }
  }

  // 5. Starvation (optional).
  if (config_.starvation_horizon != 0) {
    for (const auto& task : kernel_->snapshot().tasks) {
      if (task.state != pcore::TaskState::kReady) continue;
      if (soc.now() - task.last_progress > config_.starvation_horizon) {
        file_report(soc, BugKind::kStarvation,
                    "task " + std::to_string(task.id) +
                        " ready but unscheduled for " +
                        std::to_string(soc.now() - task.last_progress) +
                        " ticks",
                    {task.id});
        return false;
      }
    }
  }
  return true;
}

}  // namespace ptest::core
