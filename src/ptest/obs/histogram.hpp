#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>

// Mergeable power-of-two log-bucket histograms.
//
// This header is deliberately dependency-free (pure std) so that
// support/metrics.hpp can embed histograms by value without creating a
// support -> obs link dependency; everything here is header-only.

namespace ptest::obs {

// Fixed-layout latency/work histogram.  64 buckets:
//
//   bucket 0      : value == 0
//   bucket i >= 1 : value in [2^(i-1), 2^i - 1]
//   bucket 63     : open-ended (everything >= 2^62)
//
// The layout is deterministic and identical everywhere, so `merge()` is
// a bucket-wise sum — commutative and associative with the
// default-constructed histogram as identity, exactly the algebra
// `CoverageCorpus::merge()` obeys.  That is what lets shard histograms
// ride the fleet wire and fold back bit-identical to a serial run when
// the recorded values themselves are deterministic (e.g. per-session
// kernel ticks).  Percentiles are derived, not stored: p(q) walks the
// cumulative counts to rank ceil(q * count) and reports that bucket's
// upper bound, so a merged histogram reports the same percentile as a
// histogram built from the concatenated samples.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  static constexpr std::size_t bucket_index(std::uint64_t value) {
    if (value == 0) return 0;
    const std::size_t width = static_cast<std::size_t>(std::bit_width(value));
    return width < kBuckets ? width : kBuckets - 1;
  }

  // Inclusive upper bound of a bucket, used as the percentile estimate.
  static constexpr std::uint64_t bucket_upper_bound(std::size_t index) {
    if (index == 0) return 0;
    if (index >= kBuckets - 1) return std::numeric_limits<std::uint64_t>::max();
    return (std::uint64_t{1} << index) - 1;
  }

  // Inclusive lower bound of a bucket (0, then 2^(i-1)).
  static constexpr std::uint64_t bucket_lower_bound(std::size_t index) {
    if (index == 0) return 0;
    return std::uint64_t{1} << (index - 1);
  }

  constexpr void record(std::uint64_t value) {
    ++buckets_[bucket_index(value)];
    ++count_;
  }

  // Bulk insertion into one bucket — how the wire decoder reconstructs
  // a shipped histogram from its sparse [index, count] pairs.
  constexpr void add_bucket(std::size_t index, std::uint64_t n) {
    buckets_[index < kBuckets ? index : kBuckets - 1] += n;
    count_ += n;
  }

  constexpr void merge(const Histogram& other) {
    for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
    count_ += other.count_;
  }

  constexpr std::uint64_t count() const { return count_; }
  constexpr bool empty() const { return count_ == 0; }
  constexpr std::uint64_t bucket(std::size_t index) const {
    return buckets_[index];
  }

  // Upper bound of the bucket containing rank ceil(q * count); 0 for an
  // empty histogram.  q is clamped to [0, 1].
  constexpr std::uint64_t percentile(double q) const {
    if (count_ == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(count_));
    if (static_cast<double>(rank) < q * static_cast<double>(count_)) ++rank;
    if (rank == 0) rank = 1;
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      cumulative += buckets_[i];
      if (cumulative >= rank) return bucket_upper_bound(i);
    }
    return bucket_upper_bound(kBuckets - 1);
  }

  constexpr std::uint64_t p50() const { return percentile(0.50); }
  constexpr std::uint64_t p95() const { return percentile(0.95); }
  constexpr std::uint64_t p99() const { return percentile(0.99); }

  constexpr void reset() {
    buckets_ = {};
    count_ = 0;
  }

  friend constexpr bool operator==(const Histogram& a, const Histogram& b) {
    return a.count_ == b.count_ && a.buckets_ == b.buckets_;
  }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
};

}  // namespace ptest::obs
