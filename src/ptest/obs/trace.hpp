#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

// Structured tracing: a per-thread ring-buffer span/instant recorder and
// Chrome trace-event JSON export.
//
// Recording model
//   - One global `TraceRecorder`, disabled by default.  `enabled()` is a
//     single relaxed atomic load, so instrumented hot paths cost one
//     branch when tracing is off.
//   - Each recording thread lazily registers a fixed-capacity ring the
//     first time it records after an `enable()`; registration is the
//     only locked operation, the record itself is a plain slot store.
//     A full ring overwrites its oldest entry and the overflow is
//     reported as `TraceDump::dropped` — the trace keeps the *tail*.
//   - `drain()` (and `enable()`/`disable()`) must only be called while
//     no other thread is recording: campaign worker pools are joined
//     before their results are read, fleet workers drain after
//     `run_scenario_slice` returns, and the CLI drains after the run
//     completes, so every current call site satisfies this contract.
//
// Export model
//   Timestamps are steady-clock nanoseconds, which are process-local, so
//   cross-host stitching rebases: a worker ships its events relative to
//   its slice start (`trace_fragment_json`), and the coordinator places
//   each fragment at the coordinator-clock instant the corresponding
//   assign frame was issued (`NodeTrace::offset_ns`), giving one
//   timeline that is aligned to within a frame round-trip.

namespace ptest::obs {

struct TraceEvent {
  const char* name = "";  // must point at static-lifetime storage
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;  // 0 for instants
  std::uint32_t tid = 0;     // recorder-assigned thread lane
  bool instant = false;
};

// Everything `drain()` hands back: events sorted by start timestamp plus
// the number of events lost to ring wrap-around since the last drain.
struct TraceDump {
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;
};

class TraceRecorder {
 public:
  static constexpr std::size_t kDefaultRingCapacity = std::size_t{1} << 16;

  static TraceRecorder& instance();

  // Steady-clock nanoseconds (the recorder's timebase).
  static std::uint64_t now_ns();

  // Starts a fresh recording generation: previous rings are retired (kept
  // alive so a racing recorder never dereferences freed memory, but their
  // events are gone) and threads re-register on their next record.
  void enable(std::size_t ring_capacity = kDefaultRingCapacity);
  void disable();  // stops recording; already-recorded events stay drainable

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Hot path: no locks, no allocation (after the thread's first record).
  void record_span(const char* name, std::uint64_t start_ns,
                   std::uint64_t dur_ns);
  void record_instant(const char* name);

  // Collects and clears every ring.  Producers must be quiescent (see
  // file comment).  Thread lane ids are preserved across drains.
  TraceDump drain();

 private:
  struct Ring {
    Ring(std::size_t capacity, std::uint32_t tid_in)
        : slots(capacity), tid(tid_in) {}
    std::vector<TraceEvent> slots;
    std::uint64_t head = 0;  // total events ever recorded into this ring
    std::uint32_t tid;
  };

  TraceRecorder() = default;
  void record(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns,
              bool instant);
  Ring* local_ring();

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> generation_{0};
  std::mutex registry_mutex_;
  std::vector<std::shared_ptr<Ring>> rings_;
  std::vector<std::shared_ptr<Ring>> retired_;
  std::size_t capacity_ = kDefaultRingCapacity;
  std::uint32_t next_tid_ = 1;
};

// RAII span: captures the start timestamp only when tracing is enabled at
// construction, records on destruction.  `name` must be static-lifetime.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name)
      : name_(name), armed_(TraceRecorder::instance().enabled()) {
    if (armed_) start_ns_ = TraceRecorder::now_ns();
  }
  ~TraceSpan() {
    if (!armed_) return;
    TraceRecorder& recorder = TraceRecorder::instance();
    if (!recorder.enabled()) return;
    recorder.record_span(name_, start_ns_, TraceRecorder::now_ns() - start_ns_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  bool armed_;
  std::uint64_t start_ns_ = 0;
};

#define PTEST_OBS_CONCAT_IMPL(a, b) a##b
#define PTEST_OBS_CONCAT(a, b) PTEST_OBS_CONCAT_IMPL(a, b)
#define PTEST_OBS_SPAN(name) \
  ::ptest::obs::TraceSpan PTEST_OBS_CONCAT(ptest_obs_span_, __COUNTER__)(name)

// One worker node's shipped trace: `fragment` is the JSON object produced
// by trace_fragment_json on that node, `offset_ns` is where its t=0 sits
// on the stitching process's steady clock (the assign-issue instant).
struct NodeTrace {
  std::string node;
  std::string fragment;
  std::uint64_t offset_ns = 0;
};

// Serializes a dump as `{"events": [...], "dropped": N}` with timestamps
// rebased to `base_ns` (events that started earlier clamp to 0).  The
// rebasing keeps every number well inside double precision so the
// fragment survives the JSON parser on the coordinator side.
[[nodiscard]] std::string trace_fragment_json(const TraceDump& dump,
                                              std::uint64_t base_ns);

// Builds one Chrome trace-event document (chrome://tracing / Perfetto):
// the local dump becomes pid 0 named `local_process_name`, each distinct
// node in `node_traces` gets its own pid/process lane, timestamps are
// microseconds from the earliest local event.  Malformed fragments are
// skipped and counted in otherData.malformed_fragments; dropped-event
// totals (local + shipped) land in otherData.dropped_events.
[[nodiscard]] std::string stitch_chrome_trace(
    std::string_view local_process_name, const TraceDump& local,
    const std::vector<NodeTrace>& node_traces);

}  // namespace ptest::obs
