#include "ptest/obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "ptest/support/json.hpp"

namespace ptest::obs {
namespace {

// One microsecond-resolution Chrome event.  `ts_ns` is already rebased
// to the document origin.
void write_chrome_event(support::JsonWriter& out, const char* name,
                        bool instant, std::uint64_t ts_ns,
                        std::uint64_t dur_ns, std::uint64_t pid,
                        std::uint64_t tid) {
  out.begin_object();
  out.key("name").value(name);
  out.key("cat").value("ptest");
  out.key("ph").value(instant ? "i" : "X");
  out.key("ts").value(static_cast<double>(ts_ns) / 1000.0);
  if (instant) {
    out.key("s").value("t");
  } else {
    out.key("dur").value(static_cast<double>(dur_ns) / 1000.0);
  }
  out.key("pid").value(pid);
  out.key("tid").value(tid);
  out.end_object();
}

void write_process_name(support::JsonWriter& out, std::uint64_t pid,
                        std::string_view name) {
  out.begin_object();
  out.key("name").value("process_name");
  out.key("ph").value("M");
  out.key("pid").value(pid);
  out.key("tid").value(std::uint64_t{0});
  out.key("args").begin_object();
  out.key("name").value(name);
  out.end_object();
  out.end_object();
}

std::uint64_t as_u64(const support::JsonValue& value) {
  return value.number < 0 ? 0 : static_cast<std::uint64_t>(value.number);
}

}  // namespace

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder recorder;
  return recorder;
}

std::uint64_t TraceRecorder::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void TraceRecorder::enable(std::size_t ring_capacity) {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  // Retire (not destroy) old rings: a thread that raced past the enabled
  // check may still store into its old ring, which must stay valid.
  for (auto& ring : rings_) retired_.push_back(std::move(ring));
  rings_.clear();
  capacity_ = ring_capacity == 0 ? 1 : ring_capacity;
  generation_.fetch_add(1, std::memory_order_release);
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

TraceRecorder::Ring* TraceRecorder::local_ring() {
  struct Handle {
    Ring* ring = nullptr;
    std::uint64_t generation = 0;
  };
  static thread_local Handle handle;
  const std::uint64_t generation =
      generation_.load(std::memory_order_acquire);
  if (handle.ring == nullptr || handle.generation != generation) {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    auto ring = std::make_shared<Ring>(capacity_, next_tid_++);
    handle.ring = ring.get();
    handle.generation = generation_.load(std::memory_order_relaxed);
    rings_.push_back(std::move(ring));
  }
  return handle.ring;
}

void TraceRecorder::record(const char* name, std::uint64_t start_ns,
                           std::uint64_t dur_ns, bool instant) {
  Ring* ring = local_ring();
  TraceEvent& slot = ring->slots[ring->head % ring->slots.size()];
  slot.name = name;
  slot.ts_ns = start_ns;
  slot.dur_ns = dur_ns;
  slot.tid = ring->tid;
  slot.instant = instant;
  ++ring->head;
}

void TraceRecorder::record_span(const char* name, std::uint64_t start_ns,
                                std::uint64_t dur_ns) {
  if (!enabled()) return;
  record(name, start_ns, dur_ns, false);
}

void TraceRecorder::record_instant(const char* name) {
  if (!enabled()) return;
  record(name, now_ns(), 0, true);
}

TraceDump TraceRecorder::drain() {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  TraceDump dump;
  for (const auto& ring : rings_) {
    const std::uint64_t capacity = ring->slots.size();
    const std::uint64_t kept = ring->head < capacity ? ring->head : capacity;
    const std::uint64_t first = ring->head - kept;
    for (std::uint64_t i = 0; i < kept; ++i) {
      dump.events.push_back(ring->slots[(first + i) % capacity]);
    }
    if (ring->head > capacity) dump.dropped += ring->head - capacity;
    ring->head = 0;
  }
  std::stable_sort(dump.events.begin(), dump.events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return dump;
}

std::string trace_fragment_json(const TraceDump& dump,
                                std::uint64_t base_ns) {
  support::JsonWriter out(0);
  out.begin_object();
  out.key("events").begin_array();
  for (const TraceEvent& event : dump.events) {
    out.begin_object();
    out.key("name").value(event.name);
    out.key("ph").value(event.instant ? "i" : "X");
    out.key("ts").value(event.ts_ns > base_ns ? event.ts_ns - base_ns
                                              : std::uint64_t{0});
    out.key("dur").value(event.dur_ns);
    out.key("tid").value(static_cast<std::uint64_t>(event.tid));
    out.end_object();
  }
  out.end_array();
  out.key("dropped").value(dump.dropped);
  out.end_object();
  return out.str();
}

std::string stitch_chrome_trace(std::string_view local_process_name,
                                const TraceDump& local,
                                const std::vector<NodeTrace>& node_traces) {
  // Document origin: the earliest local event (fleet issue instants are
  // local events and precede every shipped fragment's offset).
  std::uint64_t base_ns = std::numeric_limits<std::uint64_t>::max();
  for (const TraceEvent& event : local.events) {
    base_ns = std::min(base_ns, event.ts_ns);
  }
  for (const NodeTrace& node : node_traces) {
    base_ns = std::min(base_ns, node.offset_ns);
  }
  if (base_ns == std::numeric_limits<std::uint64_t>::max()) base_ns = 0;

  std::uint64_t dropped = local.dropped;
  std::uint64_t malformed = 0;

  support::JsonWriter out(0);
  out.begin_object();
  out.key("traceEvents").begin_array();

  write_process_name(out, 0, local_process_name);
  for (const TraceEvent& event : local.events) {
    write_chrome_event(out, event.name, event.instant, event.ts_ns - base_ns,
                       event.dur_ns, 0, event.tid);
  }

  // One pid per distinct node name, in order of first appearance; a
  // persistent daemon that served several shards contributes several
  // fragments to the same lane.
  std::vector<std::string> node_pids;
  for (const NodeTrace& node : node_traces) {
    std::uint64_t pid = 0;
    for (std::size_t i = 0; i < node_pids.size(); ++i) {
      if (node_pids[i] == node.node) pid = i + 1;
    }
    if (pid == 0) {
      node_pids.push_back(node.node);
      pid = node_pids.size();
      write_process_name(out, pid, node.node);
    }

    auto parsed = support::parse_json(node.fragment);
    if (!parsed.ok()) {
      ++malformed;
      continue;
    }
    const support::JsonValue& doc = parsed.value();
    const support::JsonValue* events = doc.find("events");
    const support::JsonValue* frame_dropped = doc.find("dropped");
    if (events == nullptr || !events->is_array()) {
      ++malformed;
      continue;
    }
    if (frame_dropped != nullptr && frame_dropped->is_number()) {
      dropped += as_u64(*frame_dropped);
    }
    const std::uint64_t shift =
        node.offset_ns > base_ns ? node.offset_ns - base_ns : 0;
    for (const support::JsonValue& entry : events->array) {
      const support::JsonValue* name = entry.find("name");
      const support::JsonValue* ph = entry.find("ph");
      const support::JsonValue* ts = entry.find("ts");
      const support::JsonValue* dur = entry.find("dur");
      const support::JsonValue* tid = entry.find("tid");
      if (name == nullptr || !name->is_string() || ph == nullptr ||
          !ph->is_string() || ts == nullptr || !ts->is_number() ||
          dur == nullptr || !dur->is_number() || tid == nullptr ||
          !tid->is_number()) {
        ++malformed;
        continue;
      }
      write_chrome_event(out, name->string.c_str(), ph->string == "i",
                         shift + as_u64(*ts), as_u64(*dur), pid,
                         as_u64(*tid));
    }
  }

  out.end_array();
  out.key("displayTimeUnit").value("ms");
  out.key("otherData").begin_object();
  out.key("dropped_events").value(dropped);
  out.key("malformed_fragments").value(malformed);
  out.end_object();
  out.end_object();
  return out.str();
}

}  // namespace ptest::obs
