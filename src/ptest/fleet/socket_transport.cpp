#include "ptest/fleet/socket_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

#include "ptest/obs/trace.hpp"

namespace ptest::fleet {

namespace {

/// Reassembly cap: a peer that streams this much without a newline is
/// not speaking the protocol (frames are one JSON line each), so the
/// connection is dropped rather than the buffer grown without bound.
constexpr std::size_t kMaxFrameBytes = std::size_t{256} << 20;

/// Bytes pulled off the socket per recv() call.
constexpr std::size_t kReadChunk = 64 * 1024;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_nodelay(int fd) {
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

/// One blocking connect attempt against every address `host:service`
/// resolves to; -1 with `error` filled when none answered.
int dial_once(const std::string& host, const std::string& service,
              std::string& error) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &results);
  if (rc != 0) {
    error = ::gai_strerror(rc);
    return -1;
  }
  int fd = -1;
  for (const addrinfo* it = results; it != nullptr; it = it->ai_next) {
    fd = ::socket(it->ai_family, it->ai_socktype, it->ai_protocol);
    if (fd < 0) {
      error = std::strerror(errno);
      continue;
    }
    if (::connect(fd, it->ai_addr, it->ai_addrlen) == 0) break;
    error = std::strerror(errno);
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(results);
  return fd;
}

}  // namespace

SocketTransport::SocketTransport(const Listen& listen) {
  const auto fail = [this](const char* what) {
    const std::string detail = std::strerror(errno);
    if (listen_fd_ >= 0) ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(std::string("fleet: socket: ") + what + ": " +
                             detail);
  };
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) fail("socket()");
  int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(listen.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    fail("bind()");
  }
  if (::listen(listen_fd_, 16) != 0) fail("listen()");
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    fail("getsockname()");
  }
  port_ = ntohs(bound.sin_port);
  set_nonblocking(listen_fd_);
}

SocketTransport::SocketTransport(const Connect& connect) {
  const auto cleanup = [this] {
    for (Connection& connection : connections_) {
      if (connection.fd >= 0) ::close(connection.fd);
    }
    connections_.clear();
  };
  using clock = std::chrono::steady_clock;
  const auto deadline =
      clock::now() + std::chrono::milliseconds(connect.connect_timeout_ms);
  for (const std::string& endpoint : connect.endpoints) {
    const auto colon = endpoint.rfind(':');
    if (colon == std::string::npos || colon + 1 >= endpoint.size()) {
      cleanup();
      throw std::runtime_error("fleet: socket: bad endpoint '" + endpoint +
                               "' (want host:port)");
    }
    std::string host = endpoint.substr(0, colon);
    if (host.empty()) host = "127.0.0.1";
    const std::string service = endpoint.substr(colon + 1);
    std::string error = "unreachable";
    int fd = -1;
    // Retry until the deadline: a coordinator launched alongside its
    // daemons must ride out the window before their listen() lands.
    while ((fd = dial_once(host, service, error)) < 0) {
      if (clock::now() >= deadline) {
        cleanup();
        throw std::runtime_error("fleet: socket: connect " + endpoint + ": " +
                                 error);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    set_nonblocking(fd);
    set_nodelay(fd);
    Connection connection;
    connection.fd = fd;
    connections_.push_back(std::move(connection));
  }
}

SocketTransport::~SocketTransport() {
  for (Connection& connection : connections_) {
    if (connection.fd >= 0) ::close(connection.fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void SocketTransport::accept_pending() {
  if (listen_fd_ < 0) return;
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (nothing pending) or a transient accept error
    }
    set_nonblocking(fd);
    set_nodelay(fd);
    Connection connection;
    connection.fd = fd;
    connections_.push_back(std::move(connection));
  }
}

void SocketTransport::flush(Connection& connection) {
  while (connection.fd >= 0 && !connection.out.empty()) {
    const ssize_t wrote =
        ::send(connection.fd, connection.out.data(), connection.out.size(),
               MSG_NOSIGNAL);
    if (wrote > 0) {
      connection.out.erase(0, static_cast<std::size_t>(wrote));
      continue;
    }
    if (wrote < 0 && errno == EINTR) continue;
    if (wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    // Peer reset/vanished mid-frame: the connection is dead.  Whatever
    // of this frame the peer did receive ends without a terminator, so
    // the peer's reassembly discards it — frames are delivered whole or
    // not at all, and the sender's deadline machinery re-issues work.
    ::close(connection.fd);
    connection.fd = -1;
    connection.out.clear();
    return;
  }
}

void SocketTransport::read_into(Connection& connection) {
  char chunk[kReadChunk];
  while (connection.fd >= 0) {
    const ssize_t got = ::recv(connection.fd, chunk, sizeof chunk, 0);
    if (got > 0) {
      connection.in.append(chunk, static_cast<std::size_t>(got));
      if (connection.in.size() > kMaxFrameBytes &&
          connection.in.find('\n') == std::string::npos) {
        ::close(connection.fd);
        connection.fd = -1;
        connection.in.clear();
        connection.out.clear();
      }
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    // EOF or reset.  Frames the peer finished (terminator seen) still
    // deliver; the partial tail was never a frame, so it is discarded —
    // a truncated buffer must not surface as a complete frame.
    ::close(connection.fd);
    connection.fd = -1;
    connection.out.clear();
    const auto last_newline = connection.in.rfind('\n');
    if (last_newline == std::string::npos) {
      connection.in.clear();
    } else {
      connection.in.resize(last_newline + 1);
    }
    return;
  }
}

std::optional<std::string> SocketTransport::take_line(Connection& connection) {
  const auto newline = connection.in.find('\n');
  if (newline == std::string::npos) return std::nullopt;
  std::string frame = connection.in.substr(0, newline);
  connection.in.erase(0, newline + 1);
  return frame;
}

void SocketTransport::reap_dead() {
  std::erase_if(connections_, [](const Connection& connection) {
    return connection.fd < 0 && connection.in.empty();
  });
}

std::size_t SocketTransport::peers() {
  accept_pending();
  std::size_t live = 0;
  for (const Connection& connection : connections_) {
    if (connection.fd >= 0) ++live;
  }
  return live;
}

bool SocketTransport::send(const std::string& frame) {
  const std::uint64_t send_start = obs::TraceRecorder::now_ns();
  accept_pending();
  for (Connection& connection : connections_) flush(connection);
  reap_dead();
  const std::size_t count = connections_.size();
  if (count == 0) {  // no peer: backpressure, retry later
    obs::TraceRecorder::instance().record_instant("transport:backpressure");
    return false;
  }
  // Strict rotation: consecutive sends spread over the peers, so a
  // broadcast of peers() frames reaches every (unjammed) connection and
  // assignments spread over worker daemons without a scheduler.
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t index = (send_cursor_ + i) % count;
    Connection& connection = connections_[index];
    // A connection still flushing its previous frame is "full kernel
    // buffer" — skip it; if every connection is, that is backpressure.
    if (connection.fd < 0 || !connection.out.empty()) continue;
    connection.out.reserve(frame.size() + 1);
    connection.out = frame;
    connection.out += '\n';
    flush(connection);
    send_cursor_ = (index + 1) % count;
    obs::TraceRecorder::instance().record_span(
        "transport:send", send_start,
        obs::TraceRecorder::now_ns() - send_start);
    return true;
  }
  obs::TraceRecorder::instance().record_instant("transport:backpressure");
  return false;
}

std::optional<std::string> SocketTransport::receive() {
  accept_pending();
  for (Connection& connection : connections_) flush(connection);
  // Pass 0 drains frames already reassembled; pass 1 reads fresh bytes
  // first.  Rotation keeps one chatty peer from starving the rest.
  for (int pass = 0; pass < 2; ++pass) {
    const std::size_t count = connections_.size();
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t index = (receive_cursor_ + i) % count;
      Connection& connection = connections_[index];
      if (pass == 1) read_into(connection);
      if (auto frame = take_line(connection)) {
        receive_cursor_ = (index + 1) % count;
        reap_dead();
        obs::TraceRecorder::instance().record_instant("transport:recv");
        return frame;
      }
    }
  }
  reap_dead();
  return std::nullopt;
}

}  // namespace ptest::fleet
