#include "ptest/fleet/worker.hpp"

#include <chrono>
#include <thread>

#include "ptest/fleet/wire.hpp"
#include "ptest/scenario/registry.hpp"

namespace ptest::fleet {

namespace {

void idle_wait(std::uint64_t idle_sleep_us) {
  if (idle_sleep_us == 0) {
    std::this_thread::yield();
  } else {
    std::this_thread::sleep_for(std::chrono::microseconds(idle_sleep_us));
  }
}

}  // namespace

support::Result<guided::CoverageCorpus, std::string> shard_corpus(
    const std::string& scenario, const core::ShardSlice& slice,
    const core::CampaignResult& result,
    std::optional<std::uint64_t> seed_override) {
  const scenario::Scenario* entry =
      scenario::ScenarioRegistry::builtin().find(scenario);
  if (entry == nullptr) {
    return "fleet: unknown scenario '" + scenario + "'";
  }
  if (result.arm_stats.size() != 1) {
    return std::string("fleet: shard corpora require single-arm results");
  }
  guided::CoverageCorpus corpus;
  corpus.set_scenario(scenario);
  corpus.set_seed(seed_override ? *seed_override : entry->config.seed);
  if (!result.arm_coverage_state.empty()) {
    for (const auto& [state, symbol] : result.arm_coverage_state[0].transitions) {
      corpus.add_transition(state, symbol);
    }
  }
  if (auto error = corpus.add_span(slice.run_base, slice.sessions,
                                   result.total_detections)) {
    return "fleet: " + *error;
  }
  return corpus;
}

support::Result<std::size_t, std::string> Worker::serve(Transport& transport) {
  std::size_t executed = 0;
  std::uint64_t idle_polls = 0;
  while (true) {
    const auto text = transport.receive();
    if (!text) {
      if (++idle_polls > options_.poll_limit) {
        return std::string(
            "fleet: worker idle past poll limit (coordinator gone?)");
      }
      idle_wait(options_.idle_sleep_us);
      continue;
    }
    idle_polls = 0;
    auto frame = decode(*text);
    if (!frame.ok()) return frame.error();
    if (frame.value().kind == FrameKind::kShutdown) return executed;
    if (frame.value().kind != FrameKind::kAssign) {
      return std::string("fleet: worker received a non-assign frame");
    }
    const AssignFrame& assign = frame.value().assign;

    ResultFrame reply;
    reply.seq = assign.seq;
    reply.shard = assign.slice.index;
    const auto wall_start = std::chrono::steady_clock::now();
    core::CampaignOptions campaign_options;
    campaign_options.jobs = assign.jobs;
    auto result = core::Campaign::run_scenario_slice(
        assign.scenario, assign.slice, campaign_options, false, assign.seed);
    if (!result.ok()) {
      reply.error = result.error();
    } else {
      reply.result = std::move(result.value());
      auto corpus = shard_corpus(assign.scenario, assign.slice, reply.result,
                                 assign.seed);
      if (!corpus.ok()) {
        reply.error = corpus.error();
        reply.result = {};
      } else {
        reply.corpus_json = corpus.value().to_json();
      }
    }
    reply.wall_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - wall_start)
            .count());

    const std::string encoded = encode(reply);
    std::uint64_t send_polls = 0;
    while (!transport.send(encoded)) {
      if (++send_polls > options_.poll_limit) {
        return std::string("fleet: result send backpressured past poll limit");
      }
      idle_wait(options_.idle_sleep_us);
    }
    ++executed;
  }
}

}  // namespace ptest::fleet
