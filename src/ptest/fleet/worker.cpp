#include "ptest/fleet/worker.hpp"

#include <chrono>
#include <thread>

#include "ptest/fleet/wire.hpp"
#include "ptest/obs/trace.hpp"
#include "ptest/scenario/registry.hpp"

namespace ptest::fleet {

namespace {

/// Send attempts a persistent daemon spends on one result before
/// dropping it (the coordinator is gone; its deadline re-issues the
/// slice to a live worker).
constexpr std::uint64_t kDaemonSendBudget = 10'000;

void idle_wait(std::uint64_t idle_sleep_us) {
  if (idle_sleep_us == 0) {
    std::this_thread::yield();
  } else {
    std::this_thread::sleep_for(std::chrono::microseconds(idle_sleep_us));
  }
}

}  // namespace

support::Result<guided::CoverageCorpus, std::string> shard_corpus(
    const std::string& scenario, const core::ShardSlice& slice,
    const core::CampaignResult& result,
    std::optional<std::uint64_t> seed_override) {
  const scenario::Scenario* entry =
      scenario::ScenarioRegistry::builtin().find(scenario);
  if (entry == nullptr) {
    return "fleet: unknown scenario '" + scenario + "'";
  }
  if (result.arm_stats.size() != 1) {
    return std::string("fleet: shard corpora require single-arm results");
  }
  guided::CoverageCorpus corpus;
  corpus.set_scenario(scenario);
  corpus.set_seed(seed_override ? *seed_override : entry->config.seed);
  if (!result.arm_coverage_state.empty()) {
    for (const auto& [state, symbol] : result.arm_coverage_state[0].transitions) {
      corpus.add_transition(state, symbol);
    }
  }
  if (auto error = corpus.add_span(slice.run_base, slice.sessions,
                                   result.total_detections)) {
    return "fleet: " + *error;
  }
  return corpus;
}

support::Result<std::size_t, std::string> Worker::serve(Transport& transport) {
  std::size_t executed = 0;
  std::uint64_t idle_polls = 0;
  while (true) {
    const auto text = transport.receive();
    if (!text) {
      if (++idle_polls > options_.poll_limit) {
        return std::string(
            "fleet: worker idle past poll limit (coordinator gone?)");
      }
      idle_wait(options_.idle_sleep_us);
      continue;
    }
    idle_polls = 0;
    auto frame = decode(*text);
    if (!frame.ok()) {
      // A daemon must not die because one campaign's coordinator spoke
      // garbage; a one-shot worker reports the error and exits.
      if (options_.persistent) continue;
      return frame.error();
    }
    if (frame.value().kind == FrameKind::kShutdown) return executed;
    if (frame.value().kind == FrameKind::kCampaignEnd) {
      // End of one campaign.  A persistent daemon stays up for the next
      // coordinator; anyone else treats it exactly like a shutdown.
      if (options_.persistent) continue;
      return executed;
    }
    if (frame.value().kind != FrameKind::kAssign) {
      if (options_.persistent) continue;
      return std::string("fleet: worker received a non-assign frame");
    }
    const AssignFrame& assign = frame.value().assign;

    ResultFrame reply;
    reply.seq = assign.seq;
    reply.shard = assign.slice.index;
    reply.node = options_.node;
    // Trace the slice when asked: enable before the run so the compile
    // and session spans land in the ring, drain after, and rebase the
    // shipped events to the slice start so the coordinator can anchor
    // the fragment at its own issue instant.
    const bool tracing = assign.trace && options_.ship_trace;
    std::uint64_t trace_base_ns = 0;
    if (tracing) {
      auto& recorder = obs::TraceRecorder::instance();
      if (!recorder.enabled()) recorder.enable();
      trace_base_ns = obs::TraceRecorder::now_ns();
    }
    const auto wall_start = std::chrono::steady_clock::now();
    core::CampaignOptions campaign_options;
    campaign_options.jobs = assign.jobs;
    auto result = core::Campaign::run_scenario_slice(
        assign.scenario, assign.slice, campaign_options, false, assign.seed);
    if (!result.ok()) {
      reply.error = result.error();
    } else {
      reply.result = std::move(result.value());
      auto corpus = shard_corpus(assign.scenario, assign.slice, reply.result,
                                 assign.seed);
      if (!corpus.ok()) {
        reply.error = corpus.error();
        reply.result = {};
      } else {
        reply.corpus_json = corpus.value().to_json();
      }
    }
    reply.wall_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - wall_start)
            .count());
    if (tracing) {
      // run_scenario_slice joins its session pool before returning, so
      // every producer thread is quiescent — drain()'s contract holds.
      reply.trace_json = obs::trace_fragment_json(
          obs::TraceRecorder::instance().drain(), trace_base_ns);
    }

    const std::string encoded = encode(reply);
    std::uint64_t send_polls = 0;
    bool sent = true;
    // A daemon whose coordinator vanished must not wait out the (huge)
    // daemon poll limit holding one result: the coordinator's shard
    // deadline re-issues the slice anyway, so give up much sooner.
    const std::uint64_t send_budget =
        options_.persistent ? std::min<std::uint64_t>(options_.poll_limit,
                                                      kDaemonSendBudget)
                            : options_.poll_limit;
    while (!transport.send(encoded)) {
      if (++send_polls > send_budget) {
        if (!options_.persistent) {
          return std::string(
              "fleet: result send backpressured past poll limit");
        }
        sent = false;  // drop the result, keep serving
        break;
      }
      idle_wait(options_.idle_sleep_us);
    }
    if (sent) ++executed;
  }
}

}  // namespace ptest::fleet
