// Fleet wire frames — the coordinator/worker protocol, extracted from
// the bridge's lesson rather than its bytes.
//
// bridge/protocol.hpp frames commands for the simulated master/slave
// channel as packed structs because both ends share one address space
// and one build.  A fleet worker is a separate *process* (possibly a
// different build on a shared filesystem), so its framing must be
// self-describing and versioned instead: each frame is one JSON
// document written with support::JsonWriter and reloaded with
// support::parse_json — the same strict round-trip pair the guided
// corpus trusts.  Transports carry frames as opaque strings; nothing
// here knows whether the string crossed a mutex or a filesystem.
//
// Four frames make up the protocol:
//   * AssignFrame     coordinator -> worker: run this shard slice of a
//                     scenario campaign;
//   * ResultFrame     worker -> coordinator: the slice's CampaignResult
//                     (reduced to its deterministic surface: arm stats,
//                     distinct failures with their replay bundles,
//                     coverage state, work counters) plus the shard's
//                     corpus as an embedded JSON document;
//   * CampaignEnd     coordinator -> worker: this campaign is over.  A
//                     persistent worker daemon stays up and waits for
//                     the next campaign; a one-shot worker exits;
//   * ShutdownFrame   coordinator -> worker: drain and exit the
//                     process, ending daemons too.
//
// ResultFrame does not carry the full pcore::KernelSnapshot of each
// failure — only the fields BugReport::signature() and replay consume
// (kind, culprits, panic reason, seed, merged pattern).  The fleet
// bit-identity contract is over signatures, counters, coverage and
// corpora; a decoded report replays to the identical failure, which
// regenerates the snapshot.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "ptest/core/campaign.hpp"
#include "ptest/support/result.hpp"

namespace ptest::fleet {

/// Protocol version; decode rejects frames from other versions.
/// v2 added the campaign-end frame and the reporting worker's node id
/// on result frames.  v3 added the trace request flag on assigns, the
/// shipped trace fragment on results, and the fleet counters +
/// histogram distributions in the metrics block (read_metrics is
/// strict, so the new fields force the bump).
inline constexpr std::uint64_t kWireVersion = 3;

enum class FrameKind : std::uint8_t {
  kAssign,
  kResult,
  kCampaignEnd,
  kShutdown,
};

struct AssignFrame {
  std::uint32_t seq = 0;
  core::ShardSlice slice;
  std::string scenario;
  /// Seed override for the scenario's plan; unset = the plan's own seed.
  std::optional<std::uint64_t> seed;
  /// Worker-local parallelism for the slice (CampaignOptions::jobs).
  std::size_t jobs = 1;
  /// Ask the worker to record a trace of this slice and ship the tail
  /// back on the result frame (obs::TraceRecorder).
  bool trace = false;
};

struct ResultFrame {
  std::uint32_t seq = 0;
  std::size_t shard = 0;
  /// Reporting worker's node id (may be empty).  The coordinator counts
  /// distinct nodes so its end-of-campaign drain broadcast reaches the
  /// workers that actually exist, not the shard count.
  std::string node;
  /// Non-empty = the slice failed (message); `result` is then empty and
  /// the coordinator re-issues the assignment under its retry budget.
  std::string error;
  core::CampaignResult result;
  /// The shard's CoverageCorpus as its own JSON document (the corpus
  /// format owns its schema; embedding the string keeps one parser).
  std::string corpus_json;
  /// Shard wall time (fleet_shard_imbalance metric).
  std::uint64_t wall_ns = 0;
  /// The worker's trace tail for this slice as its own JSON document
  /// (obs::trace_fragment_json: events rebased to the slice start, plus
  /// the ring-wrap drop count).  Empty when the assign didn't ask for a
  /// trace; embedded as a string for the same one-parser reason as
  /// corpus_json.
  std::string trace_json;
};

[[nodiscard]] std::string encode(const AssignFrame& frame);
[[nodiscard]] std::string encode(const ResultFrame& frame);
[[nodiscard]] std::string encode_campaign_end();
[[nodiscard]] std::string encode_shutdown();

/// One decoded frame; `kind` selects which member is meaningful.
struct DecodedFrame {
  FrameKind kind = FrameKind::kShutdown;
  AssignFrame assign;
  ResultFrame result;
};

[[nodiscard]] support::Result<DecodedFrame, std::string> decode(
    std::string_view text);

}  // namespace ptest::fleet
