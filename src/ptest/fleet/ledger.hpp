// Issue/ack/retry bookkeeping, extracted from master::Committer.
//
// The committer grew the exact machinery a distributed coordinator
// needs — monotone sequence numbers, an outstanding table keyed by seq,
// a retry queue with per-key attempt budgets and a not-before delay,
// and backpressure-aware requeueing — but had it fused into the
// simulated master thread.  This header is that machinery alone, with
// no transport, clock, or payload assumptions: the Committer drives it
// with sim::Tick and MergedPattern elements against the channel bridge,
// the fleet::Coordinator with poll counters and shard assignments
// against a Transport.  Both share RetryPolicy, so a test that tightens
// retry budgets tunes one knob for the whole stack.
//
// Time is whatever monotone counter the caller supplies ("now" in the
// retry calls): simulation ticks for the committer, poll iterations for
// the coordinator.  The ledger never reads a clock.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <utility>

namespace ptest::fleet {

/// Retry knobs shared by master::CommitterOptions and
/// fleet::CoordinatorOptions.  The defaults are the committer's
/// historical hard-coded values.
struct RetryPolicy {
  /// Attempts allowed per retry key before the ledger gives up.
  std::uint32_t max_attempts = 16;
  /// Units of the caller's clock to wait before a retry becomes due.
  std::uint64_t delay = 32;
};

/// Sequence allocation + the in-flight table: every issued payload is
/// remembered under a fresh seq until its ack arrives.  Acks for
/// unknown seqs (stale, duplicate, reordered) resolve to nullopt so the
/// caller can drop them without bookkeeping damage.
template <typename Payload>
class OutstandingTable {
 public:
  /// The seq the next record_issue() will assign — callers that stamp
  /// the seq into the payload (wire frames, bridge commands) read it
  /// before committing to the send.
  [[nodiscard]] std::uint32_t next_seq() const noexcept { return next_seq_; }

  /// Files `payload` under next_seq() and advances the counter.  Only
  /// call after the send actually went out: a backpressured send must
  /// not burn a sequence number, or the peer sees gaps.
  std::uint32_t record_issue(Payload payload) {
    const std::uint32_t seq = next_seq_++;
    outstanding_.emplace(seq, std::move(payload));
    return seq;
  }

  /// Resolves an ack: removes and returns the issued payload, or
  /// nullopt when `seq` is not outstanding.
  std::optional<Payload> acknowledge(std::uint32_t seq) {
    const auto it = outstanding_.find(seq);
    if (it == outstanding_.end()) return std::nullopt;
    Payload payload = std::move(it->second);
    outstanding_.erase(it);
    return payload;
  }

  [[nodiscard]] const std::map<std::uint32_t, Payload>& outstanding()
      const noexcept {
    return outstanding_;
  }
  [[nodiscard]] bool empty() const noexcept { return outstanding_.empty(); }

 private:
  std::uint32_t next_seq_ = 1;
  std::map<std::uint32_t, Payload> outstanding_;
};

/// FIFO retry queue with a per-key attempt budget and a not-before
/// delay.  `Key` names what the budget is charged to (the committer
/// charges the pattern slot, the coordinator the shard index); the
/// queue itself stays FIFO so retries cannot starve behind each other.
template <typename Payload, typename Key>
class RetryQueue {
 public:
  struct Record {
    Payload payload;
    std::uint32_t attempts = 0;
    std::uint64_t not_before = 0;
  };

  explicit RetryQueue(RetryPolicy policy = {}) : policy_(policy) {}

  [[nodiscard]] const RetryPolicy& policy() const noexcept { return policy_; }

  /// Charges one attempt to `key`; within budget the payload is queued
  /// due at now + policy.delay and true is returned.  Over budget
  /// nothing is queued — the caller abandons that key's work.
  bool schedule(const Key& key, Payload payload, std::uint64_t now) {
    const std::uint32_t attempts = ++attempts_[key];
    if (attempts > policy_.max_attempts) return false;
    queue_.push_back({std::move(payload), attempts, now + policy_.delay});
    return true;
  }

  /// Oldest queued retry, or nullptr.  The caller checks due-ness
  /// (record->not_before <= now) plus any of its own gates before
  /// take_front().
  [[nodiscard]] const Record* front() const noexcept {
    return queue_.empty() ? nullptr : &queue_.front();
  }

  /// Pops the oldest queued retry; nullopt when the queue is empty
  /// (front() raced with nothing — an empty pop must not be UB).
  [[nodiscard]] std::optional<Record> take_front() {
    if (queue_.empty()) return std::nullopt;
    Record record = std::move(queue_.front());
    queue_.pop_front();
    return record;
  }

  /// Puts a taken record back at the head — the backpressure path:
  /// the retry was due but the send did not go through, so it stays
  /// next in line with its attempt count intact.
  void requeue_front(Record record) {
    queue_.push_front(std::move(record));
  }

  /// Forgets `key`'s attempt history (its work completed or became
  /// moot), so later failures on the same key start a fresh budget.
  void forgive(const Key& key) { attempts_.erase(key); }

  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }

 private:
  RetryPolicy policy_;
  std::deque<Record> queue_;
  std::map<Key, std::uint32_t> attempts_;
};

}  // namespace ptest::fleet
