// fleet::Coordinator — the campaign scheduler refactored into a
// transport-agnostic service.
//
// The committer already solved the coordinator's core problem — issue
// work units in order, track what is outstanding, retry what bounces,
// respect backpressure — for the simulated bridge.  This class drives
// the same extracted machinery (fleet/ledger.hpp, shared RetryPolicy)
// over a fleet::Transport instead: shard slices of a single-arm
// scenario campaign go out as AssignFrames, ResultFrames come back,
// failed shards are re-issued under the retry budget, and the shard
// results merge — in shard-index order, which is global run order — into
// one CampaignResult plus one CoverageCorpus that are bit-identical to
// the single-process run of the same budget and seed.
//
// The ledger's clock here is the poll-iteration counter (the committer
// uses simulation ticks); RetryPolicy::delay therefore means "poll
// iterations before a bounced shard is re-issued".
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ptest/core/campaign.hpp"
#include "ptest/fleet/ledger.hpp"
#include "ptest/fleet/transport.hpp"
#include "ptest/guided/corpus.hpp"
#include "ptest/obs/trace.hpp"
#include "ptest/support/result.hpp"

namespace ptest::fleet {

/// One liveness/throughput sample of a running fleet campaign, handed
/// to CoordinatorOptions::on_status at status_interval_ms cadence from
/// the coordinator's poll loop (the `ptest_cli --status` report).
struct FleetStatus {
  std::uint64_t elapsed_ns = 0;
  std::size_t shards_total = 0;
  std::size_t shards_done = 0;
  std::size_t outstanding = 0;  ///< issued, no result yet
  std::size_t pending = 0;      ///< never issued
  std::uint64_t retries_issued = 0;
  std::size_t sessions_done = 0;  ///< sessions in merged-in results
  /// Accepted results per reporting worker node, node-name order.
  std::vector<std::pair<std::string, std::size_t>> node_results;
};

/// What the coordinator broadcasts to drain the fleet when a campaign
/// finishes (on every exit path, success or error): kShutdown ends the
/// worker processes, kCampaignEnd leaves persistent daemons running for
/// the next campaign.
enum class DrainMode : std::uint8_t { kShutdown, kCampaignEnd };

struct CoordinatorOptions {
  /// Shard slices to split the budget into.
  std::size_t shards = 2;
  /// Worker-local parallelism per shard (CampaignOptions::jobs).
  std::size_t jobs = 1;
  /// Campaign budget; 0 = the scenario's default_budget.
  std::size_t budget = 0;
  /// Seed override for the scenario's plan.
  std::optional<std::uint64_t> seed;
  /// Re-issue budget/delay for failed shards; the same policy type the
  /// committer uses (master::CommitterOptions::retry), with the delay
  /// measured in coordinator poll iterations.
  RetryPolicy retry;
  /// Poll iterations before the coordinator gives up on missing
  /// results (a worker died without reporting).  The in-process fleet
  /// completes in thousands of iterations; file-queue fleets poll at
  /// idle_sleep_us intervals, so the default is minutes of real time.
  std::uint64_t poll_limit = 200'000'000;
  /// Microseconds to sleep when a poll iteration moved no frame
  /// (0 = busy-spin with yield; file-queue callers should set this to
  /// avoid hammering the filesystem).
  std::uint64_t idle_sleep_us = 0;
  /// Heartbeat deadline per outstanding shard, in poll iterations
  /// (0 = none).  An assignment with no result after this many polls is
  /// presumed lost with its worker (died mid-shard, vanished peer) and
  /// flows back through the RetryQueue under the shard's retry budget;
  /// a straggler's late result then drops as a stale seq, so a
  /// duplicate delivery cannot double-merge (first result wins).
  std::uint64_t shard_deadline = 0;
  /// Workers this fleet is known to have (0 = unknown).  The drain
  /// broadcast covers max(transport peers, this, distinct reporting
  /// workers, shards-as-a-floor) so every worker that exists gets a
  /// frame, not just one per shard.
  std::size_t expected_workers = 0;
  /// What the end-of-campaign drain broadcast says: shut the workers
  /// down (default) or just end the campaign, leaving daemons up.
  DrainMode drain = DrainMode::kShutdown;
  /// Ask workers to trace their slices and ship the trace tail back on
  /// the result frame; the fragments come back in
  /// FleetResult::node_traces for obs::stitch_chrome_trace.
  bool trace = false;
  /// Status report cadence in milliseconds (0 = no reports); each tick
  /// invokes on_status from the poll loop.
  std::uint64_t status_interval_ms = 0;
  std::function<void(const FleetStatus&)> on_status;
};

/// What a fleet campaign yields: the merged campaign result and the
/// merged session-span corpus.  Both satisfy the fleet invariant — for
/// any shard count, bit-identical to the single-process run.
struct FleetResult {
  core::CampaignResult result;
  guided::CoverageCorpus corpus;
  /// Trace fragments the workers shipped (CoordinatorOptions::trace),
  /// each anchored at its assign-issue instant on the coordinator's
  /// clock — exactly what obs::stitch_chrome_trace consumes.
  std::vector<obs::NodeTrace> node_traces;
};

class Coordinator {
 public:
  Coordinator(std::string scenario, CoordinatorOptions options = {});

  /// Drives the full protocol over `transport`: plan shards, issue,
  /// collect/retry/reclaim, merge, broadcast the drain frames.  Returns
  /// the merged result or an error (unknown scenario, shard failed past
  /// the retry budget, malformed frame, poll limit).  The fleet is
  /// drained on *every* exit path — an error return still broadcasts,
  /// so workers never outlive a failed campaign by spinning to their
  /// own poll limits.
  [[nodiscard]] support::Result<FleetResult, std::string> run(
      Transport& transport);

 private:
  [[nodiscard]] support::Result<FleetResult, std::string> run_protocol(
      Transport& transport, std::size_t& workers_seen);

  std::string scenario_;
  CoordinatorOptions options_;
};

/// Runs `scenario` as an in-process fleet: a Coordinator on the calling
/// thread and `workers` Worker threads (0 = one per shard) over an
/// InProcessQueue.  The `--fleet N` CLI mode and the determinism tests
/// go through this.
[[nodiscard]] support::Result<FleetResult, std::string> run_local_fleet(
    const std::string& scenario, CoordinatorOptions options = {},
    std::size_t workers = 0);

}  // namespace ptest::fleet
