#include "ptest/fleet/wire.hpp"

#include <cstdio>
#include <utility>

#include "ptest/support/json.hpp"

namespace ptest::fleet {

namespace {

std::string hex64(std::uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

/// Strict hex-to-u64; nullopt on anything but exactly 1..16 hex digits.
std::optional<std::uint64_t> parse_hex64(std::string_view text) {
  if (text.empty() || text.size() > 16) return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      value |= static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      return std::nullopt;
    }
  }
  return value;
}

/// Non-negative integral number; nullopt on anything else (frames are
/// machine-written, so any deviation marks corruption).
std::optional<std::uint64_t> as_count(const support::JsonValue* value) {
  if (value == nullptr || !value->is_number()) return std::nullopt;
  const double number = value->number;
  if (!(number >= 0.0) || number >= 18446744073709551616.0) {
    return std::nullopt;
  }
  if (number != static_cast<double>(static_cast<std::uint64_t>(number))) {
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(number);
}

std::optional<std::string> as_string(const support::JsonValue* value) {
  if (value == nullptr || !value->is_string()) return std::nullopt;
  return value->string;
}

void write_transition_array(
    support::JsonWriter& out,
    const std::set<std::pair<std::uint32_t, pfa::SymbolId>>& transitions) {
  out.begin_array();
  for (const auto& [state, symbol] : transitions) {
    out.begin_array();
    out.value(static_cast<std::uint64_t>(state));
    out.value(static_cast<std::uint64_t>(symbol));
    out.end_array();
  }
  out.end_array();
}

// Histograms cross the wire as sparse [bucket_index, count] pairs — the
// layout is fixed (obs::Histogram::kBuckets), so the pairs reconstruct
// the exact bucket array and the merge algebra survives the round trip.
void write_wire_histogram(support::JsonWriter& out,
                          const obs::Histogram& hist) {
  out.begin_array();
  for (std::size_t i = 0; i < obs::Histogram::kBuckets; ++i) {
    if (hist.bucket(i) == 0) continue;
    out.begin_array();
    out.value(static_cast<std::uint64_t>(i));
    out.value(hist.bucket(i));
    out.end_array();
  }
  out.end_array();
}

void write_metrics(support::JsonWriter& out,
                   const support::MetricsSnapshot& metrics) {
  out.begin_object();
  out.key("sessions").value(metrics.sessions);
  out.key("plan_cache_hits").value(metrics.plan_cache_hits);
  out.key("plan_compiles").value(metrics.plan_compiles);
  out.key("patterns_generated").value(metrics.patterns_generated);
  out.key("dedup_accepted").value(metrics.dedup_accepted);
  out.key("dedup_rejected").value(metrics.dedup_rejected);
  out.key("ticks").value(metrics.ticks);
  out.key("scratch_reuse_hits").value(metrics.scratch_reuse_hits);
  out.key("sample_alloc_bytes_saved").value(metrics.sample_alloc_bytes_saved);
  out.key("wall_ns").value(metrics.wall_ns);
  out.key("worker_idle_ns").value(metrics.worker_idle_ns);
  out.key("worker_threads").value(metrics.worker_threads);
  out.key("fleet_shards").value(metrics.fleet_shards);
  out.key("fleet_retries").value(metrics.fleet_retries);
  out.key("fleet_corpus_merge_ns").value(metrics.fleet_corpus_merge_ns);
  out.key("fleet_shard_wall_max_ns").value(metrics.fleet_shard_wall_max_ns);
  out.key("fleet_shard_wall_min_ns").value(metrics.fleet_shard_wall_min_ns);
  out.key("hist").begin_object();
  out.key("ticks");
  write_wire_histogram(out, metrics.ticks_hist);
  out.key("session_wall_ns");
  write_wire_histogram(out, metrics.session_wall_hist);
  out.key("corpus_merge_ns");
  write_wire_histogram(out, metrics.corpus_merge_hist);
  out.key("frame_rtt_ns");
  write_wire_histogram(out, metrics.frame_rtt_hist);
  out.key("transport_send_ns");
  write_wire_histogram(out, metrics.transport_send_hist);
  out.end_object();
  out.end_object();
}

void write_failure(support::JsonWriter& out, const core::BugReport& report) {
  out.begin_object();
  out.key("kind").value(static_cast<std::uint64_t>(report.kind));
  out.key("detected_at").value(report.detected_at);
  out.key("description").value(report.description);
  out.key("culprits").begin_array();
  for (const pcore::TaskId task : report.culprits) {
    out.value(static_cast<std::uint64_t>(task));
  }
  out.end_array();
  out.key("panicked").value(report.kernel.panicked);
  out.key("panic_reason").value(report.kernel.panic_reason);
  out.key("state_records").value(report.state_records);
  out.key("trace_tail").value(report.trace_tail);
  out.key("seed").value(hex64(report.seed));
  out.key("merged").begin_array();
  for (const pattern::MergedElement& element : report.merged.elements) {
    out.begin_array();
    out.value(static_cast<std::uint64_t>(element.slot));
    out.value(static_cast<std::uint64_t>(element.symbol));
    out.end_array();
  }
  out.end_array();
  out.end_object();
}

void write_coverage_state(support::JsonWriter& out,
                          const pattern::CoverageState& state) {
  out.begin_object();
  out.key("states_total").value(static_cast<std::uint64_t>(state.states_total));
  out.key("transitions_total")
      .value(static_cast<std::uint64_t>(state.transitions_total));
  out.key("states").begin_array();
  for (const std::uint32_t s : state.states) {
    out.value(static_cast<std::uint64_t>(s));
  }
  out.end_array();
  out.key("transitions");
  write_transition_array(out, state.transitions);
  out.key("ngrams").begin_array();
  for (const std::vector<pfa::SymbolId>& ngram : state.ngrams) {
    out.begin_array();
    for (const pfa::SymbolId symbol : ngram) {
      out.value(static_cast<std::uint64_t>(symbol));
    }
    out.end_array();
  }
  out.end_array();
  out.end_object();
}

// --- decode helpers --------------------------------------------------------

bool read_transition(const support::JsonValue& entry,
                     std::pair<std::uint32_t, pfa::SymbolId>& out) {
  if (!entry.is_array() || entry.array.size() != 2) return false;
  const auto state = as_count(&entry.array[0]);
  const auto symbol = as_count(&entry.array[1]);
  if (!state || !symbol || *state > ~std::uint32_t{0} ||
      *symbol > ~std::uint32_t{0}) {
    return false;
  }
  out = {static_cast<std::uint32_t>(*state),
         static_cast<pfa::SymbolId>(*symbol)};
  return true;
}

bool read_histogram(const support::JsonValue* node, obs::Histogram& hist) {
  if (node == nullptr || !node->is_array()) return false;
  for (const support::JsonValue& entry : node->array) {
    if (!entry.is_array() || entry.array.size() != 2) return false;
    const auto index = as_count(&entry.array[0]);
    const auto count = as_count(&entry.array[1]);
    if (!index || *index >= obs::Histogram::kBuckets || !count) return false;
    hist.add_bucket(static_cast<std::size_t>(*index), *count);
  }
  return true;
}

std::optional<std::string> read_metrics(const support::JsonValue* node,
                                        support::MetricsSnapshot& metrics) {
  if (node == nullptr || !node->is_object()) {
    return std::string("wire: missing metrics object");
  }
  const auto read = [node](const char* name, std::uint64_t& field) {
    const auto value = as_count(node->find(name));
    if (!value) return false;
    field = *value;
    return true;
  };
  if (!read("sessions", metrics.sessions) ||
      !read("plan_cache_hits", metrics.plan_cache_hits) ||
      !read("plan_compiles", metrics.plan_compiles) ||
      !read("patterns_generated", metrics.patterns_generated) ||
      !read("dedup_accepted", metrics.dedup_accepted) ||
      !read("dedup_rejected", metrics.dedup_rejected) ||
      !read("ticks", metrics.ticks) ||
      !read("scratch_reuse_hits", metrics.scratch_reuse_hits) ||
      !read("sample_alloc_bytes_saved", metrics.sample_alloc_bytes_saved) ||
      !read("wall_ns", metrics.wall_ns) ||
      !read("worker_idle_ns", metrics.worker_idle_ns) ||
      !read("worker_threads", metrics.worker_threads) ||
      !read("fleet_shards", metrics.fleet_shards) ||
      !read("fleet_retries", metrics.fleet_retries) ||
      !read("fleet_corpus_merge_ns", metrics.fleet_corpus_merge_ns) ||
      !read("fleet_shard_wall_max_ns", metrics.fleet_shard_wall_max_ns) ||
      !read("fleet_shard_wall_min_ns", metrics.fleet_shard_wall_min_ns)) {
    return std::string("wire: malformed metrics object");
  }
  const support::JsonValue* hist = node->find("hist");
  if (hist == nullptr || !hist->is_object() ||
      !read_histogram(hist->find("ticks"), metrics.ticks_hist) ||
      !read_histogram(hist->find("session_wall_ns"),
                      metrics.session_wall_hist) ||
      !read_histogram(hist->find("corpus_merge_ns"),
                      metrics.corpus_merge_hist) ||
      !read_histogram(hist->find("frame_rtt_ns"), metrics.frame_rtt_hist) ||
      !read_histogram(hist->find("transport_send_ns"),
                      metrics.transport_send_hist)) {
    return std::string("wire: malformed metrics histograms");
  }
  return std::nullopt;
}

std::optional<std::string> read_failure(const support::JsonValue& node,
                                        core::BugReport& report) {
  if (!node.is_object()) return std::string("wire: failure must be an object");
  const auto kind = as_count(node.find("kind"));
  const auto detected_at = as_count(node.find("detected_at"));
  const auto description = as_string(node.find("description"));
  const auto panic_reason = as_string(node.find("panic_reason"));
  const auto state_records = as_string(node.find("state_records"));
  const auto trace_tail = as_string(node.find("trace_tail"));
  const auto seed_text = as_string(node.find("seed"));
  const support::JsonValue* panicked = node.find("panicked");
  const support::JsonValue* culprits = node.find("culprits");
  const support::JsonValue* merged = node.find("merged");
  if (!kind || *kind > static_cast<std::uint64_t>(core::BugKind::kStarvation) ||
      !detected_at || !description || !panic_reason || !state_records ||
      !trace_tail || !seed_text || panicked == nullptr ||
      panicked->kind != support::JsonValue::Kind::kBool ||
      culprits == nullptr || !culprits->is_array() || merged == nullptr ||
      !merged->is_array()) {
    return std::string("wire: malformed failure record");
  }
  const auto seed = parse_hex64(*seed_text);
  if (!seed) return std::string("wire: bad failure seed");
  report.kind = static_cast<core::BugKind>(*kind);
  report.detected_at = *detected_at;
  report.description = *description;
  report.kernel.panicked = panicked->boolean;
  report.kernel.panic_reason = *panic_reason;
  report.state_records = *state_records;
  report.trace_tail = *trace_tail;
  report.seed = *seed;
  for (const support::JsonValue& entry : culprits->array) {
    const auto task = as_count(&entry);
    if (!task || *task > 0xff) {
      return std::string("wire: bad failure culprit");
    }
    report.culprits.push_back(static_cast<pcore::TaskId>(*task));
  }
  for (const support::JsonValue& entry : merged->array) {
    std::pair<std::uint32_t, pfa::SymbolId> element;
    if (!read_transition(entry, element)) {
      return std::string("wire: bad merged element");
    }
    report.merged.elements.push_back({element.first, element.second});
  }
  return std::nullopt;
}

std::optional<std::string> read_coverage_state(
    const support::JsonValue& node, pattern::CoverageState& state) {
  if (!node.is_object()) {
    return std::string("wire: coverage state must be an object");
  }
  const auto states_total = as_count(node.find("states_total"));
  const auto transitions_total = as_count(node.find("transitions_total"));
  const support::JsonValue* states = node.find("states");
  const support::JsonValue* transitions = node.find("transitions");
  const support::JsonValue* ngrams = node.find("ngrams");
  if (!states_total || !transitions_total || states == nullptr ||
      !states->is_array() || transitions == nullptr ||
      !transitions->is_array() || ngrams == nullptr || !ngrams->is_array()) {
    return std::string("wire: malformed coverage state");
  }
  state.states_total = static_cast<std::size_t>(*states_total);
  state.transitions_total = static_cast<std::size_t>(*transitions_total);
  for (const support::JsonValue& entry : states->array) {
    const auto value = as_count(&entry);
    if (!value || *value > ~std::uint32_t{0}) {
      return std::string("wire: bad coverage state id");
    }
    state.states.insert(static_cast<std::uint32_t>(*value));
  }
  for (const support::JsonValue& entry : transitions->array) {
    std::pair<std::uint32_t, pfa::SymbolId> transition;
    if (!read_transition(entry, transition)) {
      return std::string("wire: bad coverage transition");
    }
    state.transitions.insert(transition);
  }
  for (const support::JsonValue& entry : ngrams->array) {
    if (!entry.is_array()) return std::string("wire: bad coverage ngram");
    std::vector<pfa::SymbolId> ngram;
    ngram.reserve(entry.array.size());
    for (const support::JsonValue& item : entry.array) {
      const auto value = as_count(&item);
      if (!value || *value > ~std::uint32_t{0}) {
        return std::string("wire: bad coverage ngram symbol");
      }
      ngram.push_back(static_cast<pfa::SymbolId>(*value));
    }
    state.ngrams.insert(std::move(ngram));
  }
  return std::nullopt;
}

std::optional<std::string> read_campaign_result(
    const support::JsonValue* node, core::CampaignResult& result) {
  if (node == nullptr || !node->is_object()) {
    return std::string("wire: missing result object");
  }
  const support::JsonValue* arm_stats = node->find("arm_stats");
  const auto total_runs = as_count(node->find("total_runs"));
  const auto total_detections = as_count(node->find("total_detections"));
  const auto best_arm = as_count(node->find("best_arm"));
  const support::JsonValue* failures = node->find("failures");
  const support::JsonValue* coverage = node->find("coverage");
  if (arm_stats == nullptr || !arm_stats->is_array() || !total_runs ||
      !total_detections || !best_arm || failures == nullptr ||
      !failures->is_array() || coverage == nullptr || !coverage->is_array()) {
    return std::string("wire: malformed result object");
  }
  for (const support::JsonValue& entry : arm_stats->array) {
    if (!entry.is_array() || entry.array.size() != 2) {
      return std::string("wire: arm stats must be [runs, detections]");
    }
    const auto runs = as_count(&entry.array[0]);
    const auto detections = as_count(&entry.array[1]);
    if (!runs || !detections) {
      return std::string("wire: arm stats must be [runs, detections]");
    }
    result.arm_stats.push_back({static_cast<std::size_t>(*runs),
                                static_cast<std::size_t>(*detections)});
  }
  result.total_runs = static_cast<std::size_t>(*total_runs);
  result.total_detections = static_cast<std::size_t>(*total_detections);
  result.best_arm = static_cast<std::size_t>(*best_arm);
  for (const support::JsonValue& entry : failures->array) {
    core::BugReport report;
    if (auto error = read_failure(entry, report)) return error;
    result.distinct_failures.emplace(report.signature(), std::move(report));
  }
  for (const support::JsonValue& entry : coverage->array) {
    pattern::CoverageState state;
    if (auto error = read_coverage_state(entry, state)) return error;
    result.arm_coverage.push_back(state.report());
    result.arm_coverage_state.push_back(std::move(state));
  }
  if (auto error = read_metrics(node->find("metrics"), result.metrics)) {
    return error;
  }
  // The pfa_* aggregates rederive from the shipped coverage states, the
  // same way run_impl derives them — kept off the wire so they cannot
  // drift from the sets.
  for (const pattern::CoverageReport& report : result.arm_coverage) {
    result.metrics.pfa_states += report.states_total;
    result.metrics.pfa_states_covered += report.states_covered;
    result.metrics.pfa_transitions += report.transitions_total;
    result.metrics.pfa_transitions_covered += report.transitions_covered;
    result.metrics.pfa_ngrams += report.ngrams_observed;
  }
  return std::nullopt;
}

}  // namespace

std::string encode(const AssignFrame& frame) {
  support::JsonWriter out(0);
  out.begin_object();
  out.key("wire_version").value(kWireVersion);
  out.key("kind").value("assign");
  out.key("seq").value(static_cast<std::uint64_t>(frame.seq));
  out.key("shard").value(static_cast<std::uint64_t>(frame.slice.index));
  out.key("run_base").value(static_cast<std::uint64_t>(frame.slice.run_base));
  out.key("sessions").value(static_cast<std::uint64_t>(frame.slice.sessions));
  out.key("scenario").value(frame.scenario);
  if (frame.seed) out.key("seed").value(hex64(*frame.seed));
  out.key("jobs").value(static_cast<std::uint64_t>(frame.jobs));
  if (frame.trace) out.key("trace").value(true);
  out.end_object();
  return out.str();
}

std::string encode(const ResultFrame& frame) {
  support::JsonWriter out(0);
  out.begin_object();
  out.key("wire_version").value(kWireVersion);
  out.key("kind").value("result");
  out.key("seq").value(static_cast<std::uint64_t>(frame.seq));
  out.key("shard").value(static_cast<std::uint64_t>(frame.shard));
  out.key("node").value(frame.node);
  out.key("error").value(frame.error);
  if (frame.error.empty()) {
    out.key("result").begin_object();
    out.key("arm_stats").begin_array();
    for (const core::ArmStats& stats : frame.result.arm_stats) {
      out.begin_array();
      out.value(static_cast<std::uint64_t>(stats.runs));
      out.value(static_cast<std::uint64_t>(stats.detections));
      out.end_array();
    }
    out.end_array();
    out.key("total_runs")
        .value(static_cast<std::uint64_t>(frame.result.total_runs));
    out.key("total_detections")
        .value(static_cast<std::uint64_t>(frame.result.total_detections));
    out.key("best_arm").value(static_cast<std::uint64_t>(frame.result.best_arm));
    out.key("failures").begin_array();
    for (const auto& [signature, report] : frame.result.distinct_failures) {
      (void)signature;  // rederived on decode from the report fields
      write_failure(out, report);
    }
    out.end_array();
    out.key("coverage").begin_array();
    for (const pattern::CoverageState& state :
         frame.result.arm_coverage_state) {
      write_coverage_state(out, state);
    }
    out.end_array();
    out.key("metrics");
    write_metrics(out, frame.result.metrics);
    out.end_object();
    out.key("corpus").value(frame.corpus_json);
  }
  out.key("wall_ns").value(frame.wall_ns);
  if (!frame.trace_json.empty()) out.key("trace").value(frame.trace_json);
  out.end_object();
  return out.str();
}

std::string encode_campaign_end() {
  support::JsonWriter out(0);
  out.begin_object();
  out.key("wire_version").value(kWireVersion);
  out.key("kind").value("campaign-end");
  out.end_object();
  return out.str();
}

std::string encode_shutdown() {
  support::JsonWriter out(0);
  out.begin_object();
  out.key("wire_version").value(kWireVersion);
  out.key("kind").value("shutdown");
  out.end_object();
  return out.str();
}

support::Result<DecodedFrame, std::string> decode(std::string_view text) {
  auto parsed = support::parse_json(text);
  if (!parsed.ok()) return "wire: " + parsed.error();
  const support::JsonValue& root = parsed.value();
  if (!root.is_object()) return std::string("wire: frame is not an object");
  const auto version = as_count(root.find("wire_version"));
  if (!version) return std::string("wire: missing wire_version");
  if (*version != kWireVersion) {
    return "wire: wire_version " + std::to_string(*version) +
           " unsupported (this build speaks version " +
           std::to_string(kWireVersion) + ")";
  }
  const auto kind = as_string(root.find("kind"));
  if (!kind) return std::string("wire: missing frame kind");

  DecodedFrame frame;
  if (*kind == "shutdown") {
    frame.kind = FrameKind::kShutdown;
    return frame;
  }
  if (*kind == "campaign-end") {
    frame.kind = FrameKind::kCampaignEnd;
    return frame;
  }
  if (*kind == "assign") {
    frame.kind = FrameKind::kAssign;
    const auto seq = as_count(root.find("seq"));
    const auto shard = as_count(root.find("shard"));
    const auto run_base = as_count(root.find("run_base"));
    const auto sessions = as_count(root.find("sessions"));
    const auto scenario = as_string(root.find("scenario"));
    const auto jobs = as_count(root.find("jobs"));
    if (!seq || *seq > ~std::uint32_t{0} || !shard || !run_base || !sessions ||
        !scenario || scenario->empty() || !jobs || *jobs == 0) {
      return std::string("wire: malformed assign frame");
    }
    frame.assign.seq = static_cast<std::uint32_t>(*seq);
    frame.assign.slice.index = static_cast<std::size_t>(*shard);
    frame.assign.slice.run_base = static_cast<std::size_t>(*run_base);
    frame.assign.slice.sessions = static_cast<std::size_t>(*sessions);
    frame.assign.scenario = *scenario;
    frame.assign.jobs = static_cast<std::size_t>(*jobs);
    if (const support::JsonValue* seed = root.find("seed")) {
      const auto seed_text = as_string(seed);
      const auto value = seed_text ? parse_hex64(*seed_text) : std::nullopt;
      if (!value) return std::string("wire: bad assign seed");
      frame.assign.seed = *value;
    }
    if (const support::JsonValue* trace = root.find("trace")) {
      if (trace->kind != support::JsonValue::Kind::kBool) {
        return std::string("wire: bad assign trace flag");
      }
      frame.assign.trace = trace->boolean;
    }
    return frame;
  }
  if (*kind == "result") {
    frame.kind = FrameKind::kResult;
    const auto seq = as_count(root.find("seq"));
    const auto shard = as_count(root.find("shard"));
    const auto node = as_string(root.find("node"));
    const auto error = as_string(root.find("error"));
    const auto wall_ns = as_count(root.find("wall_ns"));
    if (!seq || *seq > ~std::uint32_t{0} || !shard || !node || !error ||
        !wall_ns) {
      return std::string("wire: malformed result frame");
    }
    frame.result.seq = static_cast<std::uint32_t>(*seq);
    frame.result.shard = static_cast<std::size_t>(*shard);
    frame.result.node = *node;
    frame.result.error = *error;
    frame.result.wall_ns = *wall_ns;
    if (frame.result.error.empty()) {
      if (auto failure =
              read_campaign_result(root.find("result"), frame.result.result)) {
        return *failure;
      }
      const auto corpus = as_string(root.find("corpus"));
      if (!corpus) return std::string("wire: missing corpus document");
      frame.result.corpus_json = *corpus;
    }
    if (const support::JsonValue* trace = root.find("trace")) {
      const auto text = as_string(trace);
      if (!text) return std::string("wire: bad result trace document");
      frame.result.trace_json = *text;
    }
    return frame;
  }
  return "wire: unknown frame kind '" + *kind + "'";
}

}  // namespace ptest::fleet
