// fleet::SocketTransport — the fleet's wire frames over TCP.
//
// The third Transport implementation, and the first that leaves the
// host: worker daemons listen on a port (`ptest_cli --listen PORT`),
// the coordinator dials each of them (`--connect host:port,...`), and
// the same single-line JSON frames the file queue spools travel as
// newline-delimited lines on the stream.  Frames never contain a raw
// newline (support::JsonWriter escapes control characters inside
// strings), so '\n' is an unambiguous frame terminator and a reader
// that has not yet seen one simply has no pending frame.
//
// The sockets are non-blocking and the Transport contract maps onto
// them directly:
//   * send() == false    every reachable connection has bytes still
//                        waiting on a full kernel buffer, or no peer is
//                        connected at all — backpressure, retry later;
//   * receive() == nullopt  no connection has a complete line buffered
//                        — partial frames accumulate in a per-connection
//                        reassembly buffer until their terminator
//                        arrives.
//
// Peer disconnect is routine, not exotic: a read of EOF (or a reset)
// reaps the connection and discards its partial reassembly buffer —
// a frame the peer never finished was never delivered, and the
// coordinator's shard deadline re-issues whatever work died with the
// peer.  A listening endpoint keeps accepting new connections forever,
// which is what lets a worker daemon outlive the coordinators that
// come and go between campaigns.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ptest/fleet/transport.hpp"

namespace ptest::fleet {

class SocketTransport final : public Transport {
 public:
  /// Listening (worker-daemon) endpoint: bind + listen on `port`
  /// (0 = kernel-assigned; read the result from port()).
  struct Listen {
    std::uint16_t port = 0;
  };
  /// Dialing (coordinator) endpoint: one outbound connection per
  /// "host:port" (an empty host means 127.0.0.1).  Each connect is
  /// retried until `connect_timeout_ms` elapses, so a coordinator
  /// racing its daemons' startup does not fail spuriously.
  struct Connect {
    std::vector<std::string> endpoints;
    std::uint64_t connect_timeout_ms = 10'000;
  };

  /// Throws std::runtime_error when the socket cannot be created,
  /// bound, or (for Connect) any endpoint stays unreachable past the
  /// timeout.
  explicit SocketTransport(const Listen& listen);
  explicit SocketTransport(const Connect& connect);
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  [[nodiscard]] bool send(const std::string& frame) override;
  [[nodiscard]] std::optional<std::string> receive() override;
  /// Live connections right now (listening endpoints count accepted
  /// peers; dialing endpoints count connections that have not died).
  [[nodiscard]] std::size_t peers() override;

  /// The port this endpoint is bound to (meaningful for Listen; with
  /// Listen{0} this is where the kernel's pick surfaces).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

 private:
  struct Connection {
    int fd = -1;
    std::string in;   ///< partial-frame reassembly buffer
    std::string out;  ///< unflushed tail of the last accepted frame
  };

  void accept_pending();
  void flush(Connection& connection);
  void read_into(Connection& connection);
  void reap_dead();
  [[nodiscard]] std::optional<std::string> take_line(Connection& connection);

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::vector<Connection> connections_;
  /// Rotation cursors so neither sends nor receives pin one connection.
  std::size_t send_cursor_ = 0;
  std::size_t receive_cursor_ = 0;
};

}  // namespace ptest::fleet
