#include "ptest/fleet/coordinator.hpp"

#include <chrono>
#include <deque>
#include <map>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "ptest/fleet/wire.hpp"
#include "ptest/fleet/worker.hpp"
#include "ptest/obs/trace.hpp"
#include "ptest/scenario/registry.hpp"

namespace ptest::fleet {

namespace {

/// Send attempts per drain frame before giving up on that worker.  The
/// drain is best effort by design — it also runs after transport
/// failures, where waiting out the full poll limit per frame would turn
/// an error return into a near-hang.
constexpr std::uint64_t kDrainSendBudget = 10'000;

void idle_wait(std::uint64_t idle_sleep_us) {
  if (idle_sleep_us == 0) {
    std::this_thread::yield();
  } else {
    std::this_thread::sleep_for(std::chrono::microseconds(idle_sleep_us));
  }
}

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

/// Merges the shard results in shard-index order — which is global
/// run-index order, so every first-wins and in-order rule of the serial
/// merge phase is reproduced exactly.  An empty input merges to an
/// empty (zero-run) result, not UB.
core::CampaignResult merge_shards(const std::vector<ResultFrame>& shards) {
  core::CampaignResult merged;
  merged.arm_stats.resize(1);
  merged.best_arm = 0;
  if (shards.empty()) return merged;
  pattern::CoverageState coverage;
  bool any_coverage = false;
  for (const ResultFrame& frame : shards) {
    const core::CampaignResult& shard = frame.result;
    merged.arm_stats[0].runs += shard.arm_stats[0].runs;
    merged.arm_stats[0].detections += shard.arm_stats[0].detections;
    merged.total_runs += shard.total_runs;
    merged.total_detections += shard.total_detections;
    // Earlier shards hold earlier run indices, so emplace (first wins)
    // keeps exactly the report the serial run would have kept.
    for (const auto& [signature, report] : shard.distinct_failures) {
      merged.distinct_failures.emplace(signature, report);
    }
    if (!shard.arm_coverage_state.empty()) {
      any_coverage = true;
      coverage.merge(shard.arm_coverage_state[0]);
    }
    support::MetricsSnapshot& m = merged.metrics;
    const support::MetricsSnapshot& s = shard.metrics;
    m.sessions += s.sessions;
    m.plan_cache_hits += s.plan_cache_hits;
    m.patterns_generated += s.patterns_generated;
    m.dedup_accepted += s.dedup_accepted;
    m.dedup_rejected += s.dedup_rejected;
    m.ticks += s.ticks;
    m.scratch_reuse_hits += s.scratch_reuse_hits;
    m.sample_alloc_bytes_saved += s.sample_alloc_bytes_saved;
    m.worker_idle_ns += s.worker_idle_ns;
    m.worker_threads = std::max(m.worker_threads, s.worker_threads);
    // Histograms fold bucket-wise; shard-index order is global run
    // order, and the merge is commutative anyway, so the merged
    // ticks_hist is bit-identical to the serial run's.
    m.ticks_hist.merge(s.ticks_hist);
    m.session_wall_hist.merge(s.session_wall_hist);
    m.corpus_merge_hist.merge(s.corpus_merge_hist);
    m.frame_rtt_hist.merge(s.frame_rtt_hist);
    m.transport_send_hist.merge(s.transport_send_hist);
  }
  // Every shard compiled the one shared plan; the serial run compiles
  // it once.  Summing would break the counter identity, so the merged
  // value is the (identical) per-shard value, not the sum.
  merged.metrics.plan_compiles = shards.front().result.metrics.plan_compiles;
  if (any_coverage) {
    const pattern::CoverageReport report = coverage.report();
    merged.arm_coverage.push_back(report);
    merged.arm_coverage_state.push_back(std::move(coverage));
    merged.metrics.pfa_states = report.states_total;
    merged.metrics.pfa_states_covered = report.states_covered;
    merged.metrics.pfa_transitions = report.transitions_total;
    merged.metrics.pfa_transitions_covered = report.transitions_covered;
    merged.metrics.pfa_ngrams = report.ngrams_observed;
  }
  return merged;
}

}  // namespace

Coordinator::Coordinator(std::string scenario, CoordinatorOptions options)
    : scenario_(std::move(scenario)), options_(options) {}

support::Result<FleetResult, std::string> Coordinator::run(
    Transport& transport) {
  std::size_t workers_seen = 0;
  auto outcome = run_protocol(transport, workers_seen);

  // Drain the fleet on every exit path — success, decode failure,
  // exhausted retry budget, poll limit — so workers never outlive a
  // failed campaign by spinning to their own poll limits.  The frame
  // count covers the workers that actually exist: the transport's live
  // peer count when it knows one (sockets), otherwise the distinct
  // workers that reported results, with the shard count kept as a floor
  // for workers that never got (or never finished) a slice.
  const std::size_t known_peers = transport.peers();
  const std::size_t broadcast =
      known_peers != 0
          ? known_peers
          : std::max({options_.shards, options_.expected_workers, workers_seen,
                      std::size_t{1}});
  const std::string drain_frame = options_.drain == DrainMode::kCampaignEnd
                                      ? encode_campaign_end()
                                      : encode_shutdown();
  for (std::size_t i = 0; i < broadcast; ++i) {
    std::uint64_t send_polls = 0;
    while (!transport.send(drain_frame)) {
      if (++send_polls > kDrainSendBudget) break;  // best effort
      idle_wait(options_.idle_sleep_us);
    }
  }
  return outcome;
}

support::Result<FleetResult, std::string> Coordinator::run_protocol(
    Transport& transport, std::size_t& workers_seen) {
  const auto wall_start = std::chrono::steady_clock::now();
  const scenario::Scenario* entry =
      scenario::ScenarioRegistry::builtin().find(scenario_);
  if (entry == nullptr) {
    return "fleet: unknown scenario '" + scenario_ + "'";
  }
  const std::size_t budget =
      options_.budget == 0 ? entry->default_budget : options_.budget;
  const auto slices = core::Campaign::plan_shards(budget, options_.shards);

  // The committer's issue/ack/retry discipline, verbatim: seq numbers
  // are only burned by sends that went out, stale acks drop at the
  // ledger, bounced work re-queues with its attempt count intact.
  OutstandingTable<AssignFrame> ledger;
  RetryQueue<AssignFrame, std::size_t> retries(options_.retry);
  std::deque<AssignFrame> pending;
  for (const core::ShardSlice& slice : slices) {
    AssignFrame frame;
    frame.slice = slice;
    frame.scenario = scenario_;
    frame.seed = options_.seed;
    frame.jobs = options_.jobs == 0 ? 1 : options_.jobs;
    frame.trace = options_.trace;
    pending.push_back(std::move(frame));
  }

  std::vector<std::optional<ResultFrame>> shard_results(slices.size());
  std::set<std::string> reporting_nodes;
  // Poll iteration each outstanding seq was issued at, for the shard
  // deadline: the ledger stays clock-free, the coordinator owns time.
  std::map<std::uint32_t, std::uint64_t> issued_at;
  // Steady-clock ns each outstanding seq was sent at.  Serves double
  // duty: the frame-RTT sample on ack, and the anchor that places the
  // shard's shipped trace fragment on the coordinator's timeline.
  std::map<std::uint32_t, std::uint64_t> issued_clock;
  std::vector<obs::NodeTrace> node_traces;
  // Timing-class histograms owned by the coordinator (the shards
  // contribute theirs through merge_shards).
  obs::Histogram frame_rtt_hist;
  obs::Histogram transport_send_hist;
  obs::Histogram corpus_merge_hist;
  // --status bookkeeping.
  std::size_t sessions_done = 0;
  std::map<std::string, std::size_t> node_result_counts;
  const std::uint64_t status_interval_ns =
      options_.status_interval_ms * 1'000'000;
  std::uint64_t next_status_ns = status_interval_ns;
  std::size_t completed = 0;
  std::uint64_t retries_issued = 0;
  std::uint64_t now = 0;
  while (completed < slices.size()) {
    if (++now > options_.poll_limit) {
      return std::string("fleet: poll limit exceeded awaiting shard results");
    }
    bool progressed = false;

    while (const auto text = transport.receive()) {
      progressed = true;
      auto decoded = decode(*text);
      if (!decoded.ok()) return decoded.error();
      if (decoded.value().kind != FrameKind::kResult) {
        return std::string("fleet: coordinator received a non-result frame");
      }
      ResultFrame& frame = decoded.value().result;
      if (!frame.node.empty()) {
        reporting_nodes.insert(frame.node);
        workers_seen = reporting_nodes.size();
      }
      const auto issue = ledger.acknowledge(frame.seq);
      if (!issue) continue;  // stale/duplicate result (or one a deadline
                             // already reclaimed): first delivery won
      obs::TraceRecorder::instance().record_instant("fleet:ack");
      std::uint64_t issue_clock_ns = 0;
      if (const auto clock_it = issued_clock.find(frame.seq);
          clock_it != issued_clock.end()) {
        issue_clock_ns = clock_it->second;
        frame_rtt_hist.record(obs::TraceRecorder::now_ns() - issue_clock_ns);
        issued_clock.erase(clock_it);
      }
      issued_at.erase(frame.seq);
      if (!frame.error.empty()) {
        if (!retries.schedule(issue->slice.index, *issue, now)) {
          return "fleet: shard " + std::to_string(issue->slice.index) +
                 " failed past the retry budget: " + frame.error;
        }
        continue;
      }
      if (frame.shard >= shard_results.size()) {
        return std::string("fleet: result names an unplanned shard");
      }
      if (frame.result.arm_stats.size() != 1) {
        return std::string("fleet: shard results must be single-arm");
      }
      if (shard_results[frame.shard]) continue;  // duplicate: first wins
      sessions_done += frame.result.total_runs;
      ++node_result_counts[frame.node.empty() ? "worker" : frame.node];
      if (!frame.trace_json.empty()) {
        // Anchor the fragment at the instant its assign went out on the
        // coordinator's clock — events inside are rebased to the slice
        // start, so issue time is the right zero (off by at most the
        // assign's transit time).
        node_traces.push_back({frame.node.empty() ? "worker" : frame.node,
                               std::move(frame.trace_json), issue_clock_ns});
        frame.trace_json.clear();
      }
      shard_results[frame.shard] = std::move(frame);
      ++completed;
    }

    // Shard deadline: an assignment quiet past the heartbeat window is
    // presumed lost with its worker and re-queued under the same retry
    // budget an error frame charges.  The reclaimed seq leaves the
    // ledger, so a straggler's eventual result drops as stale.
    if (options_.shard_deadline != 0) {
      for (auto it = issued_at.begin(); it != issued_at.end();) {
        if (now >= it->second + options_.shard_deadline) {
          auto lost = ledger.acknowledge(it->first);
          issued_clock.erase(it->first);
          it = issued_at.erase(it);
          if (lost) {
            obs::TraceRecorder::instance().record_instant("fleet:reclaim");
            const std::size_t shard = lost->slice.index;
            if (!retries.schedule(shard, std::move(*lost), now)) {
              return "fleet: shard " + std::to_string(shard) +
                     " unresponsive past the retry budget (worker dead?)";
            }
            progressed = true;
          }
        } else {
          ++it;
        }
      }
    }

    // Due retries outrank fresh issues, like the committer's step().
    if (const auto* front = retries.front()) {
      if (front->not_before <= now) {
        if (auto record = retries.take_front()) {
          record->payload.seq = ledger.next_seq();
          const std::uint64_t send_start = obs::TraceRecorder::now_ns();
          if (transport.send(encode(record->payload))) {
            transport_send_hist.record(obs::TraceRecorder::now_ns() -
                                       send_start);
            obs::TraceRecorder::instance().record_instant("fleet:retry");
            issued_at[record->payload.seq] = now;
            issued_clock[record->payload.seq] = send_start;
            ledger.record_issue(std::move(record->payload));
            ++retries_issued;
            progressed = true;
          } else {
            retries.requeue_front(std::move(*record));
          }
        }
      }
    } else if (!pending.empty()) {
      AssignFrame frame = std::move(pending.front());
      frame.seq = ledger.next_seq();
      const std::uint64_t send_start = obs::TraceRecorder::now_ns();
      if (transport.send(encode(frame))) {
        transport_send_hist.record(obs::TraceRecorder::now_ns() - send_start);
        obs::TraceRecorder::instance().record_instant("fleet:issue");
        pending.pop_front();
        issued_at[frame.seq] = now;
        issued_clock[frame.seq] = send_start;
        ledger.record_issue(std::move(frame));
        progressed = true;
      } else {
        pending.front() = std::move(frame);  // keep the stamped copy idle
      }
    }

    if (options_.on_status && status_interval_ns != 0) {
      const std::uint64_t elapsed = elapsed_ns(wall_start);
      if (elapsed >= next_status_ns) {
        FleetStatus status;
        status.elapsed_ns = elapsed;
        status.shards_total = slices.size();
        status.shards_done = completed;
        status.outstanding = issued_at.size();
        status.pending = pending.size();
        status.retries_issued = retries_issued;
        status.sessions_done = sessions_done;
        status.node_results.assign(node_result_counts.begin(),
                                   node_result_counts.end());
        options_.on_status(status);
        // Skip missed ticks rather than bursting reports to catch up.
        next_status_ns =
            (elapsed / status_interval_ns + 1) * status_interval_ns;
      }
    }

    if (!progressed) idle_wait(options_.idle_sleep_us);
  }

  // Merge in shard order; the corpus merge is timed for the
  // fleet_corpus_merge_ms metric.
  std::vector<ResultFrame> ordered;
  ordered.reserve(slices.size());
  for (auto& slot : shard_results) ordered.push_back(std::move(*slot));

  FleetResult fleet;
  fleet.result = merge_shards(ordered);
  const auto merge_start = std::chrono::steady_clock::now();
  for (const ResultFrame& frame : ordered) {
    const std::uint64_t shard_merge_start = obs::TraceRecorder::now_ns();
    obs::TraceSpan merge_span("corpus-merge");
    auto corpus = guided::CoverageCorpus::from_json(frame.corpus_json);
    if (!corpus.ok()) {
      return "fleet: shard " + std::to_string(frame.shard) +
             " corpus rejected: " + corpus.error();
    }
    if (auto error = fleet.corpus.merge(corpus.value())) {
      return "fleet: shard " + std::to_string(frame.shard) +
             " corpus merge failed: " + *error;
    }
    corpus_merge_hist.record(obs::TraceRecorder::now_ns() - shard_merge_start);
  }
  const std::uint64_t merge_ns = elapsed_ns(merge_start);

  support::MetricsSnapshot& metrics = fleet.result.metrics;
  metrics.fleet_shards = ordered.size();
  metrics.fleet_retries = retries_issued;
  metrics.fleet_corpus_merge_ns = merge_ns;
  // Min tracked with a first-shard flag, not a 0 sentinel: a shard
  // whose wall time rounds to 0ns is a genuine minimum, not "unset".
  bool first_wall = true;
  for (const ResultFrame& frame : ordered) {
    metrics.fleet_shard_wall_max_ns =
        std::max(metrics.fleet_shard_wall_max_ns, frame.wall_ns);
    metrics.fleet_shard_wall_min_ns =
        first_wall ? frame.wall_ns
                   : std::min(metrics.fleet_shard_wall_min_ns, frame.wall_ns);
    first_wall = false;
  }
  metrics.frame_rtt_hist.merge(frame_rtt_hist);
  metrics.transport_send_hist.merge(transport_send_hist);
  metrics.corpus_merge_hist.merge(corpus_merge_hist);
  fleet.node_traces = std::move(node_traces);
  metrics.wall_ns = elapsed_ns(wall_start);
  return fleet;
}

support::Result<FleetResult, std::string> run_local_fleet(
    const std::string& scenario, CoordinatorOptions options,
    std::size_t workers) {
  if (workers == 0 || workers > options.shards) workers = options.shards;
  options.expected_workers = workers;
  InProcessQueue queue;
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads.emplace_back([&queue, &options, i] {
      WorkerOptions worker_options;
      worker_options.poll_limit = options.poll_limit;
      worker_options.idle_sleep_us = options.idle_sleep_us;
      worker_options.node = "local-w" + std::to_string(i);
      // In-process workers share the coordinator's TraceRecorder; if
      // they enabled/drained it per slice they would race each other and
      // steal the coordinator's events.  The CLI drains the shared
      // recorder once at the end instead, which yields the one-process
      // timeline that is actually true here.
      worker_options.ship_trace = false;
      // Worker errors surface as error ResultFrames or the
      // coordinator's poll limit; the thread itself just exits.
      (void)Worker(worker_options).serve(queue.worker_endpoint());
    });
  }
  Coordinator coordinator(scenario, options);
  auto result = coordinator.run(queue.coordinator_endpoint());
  for (std::thread& thread : threads) thread.join();
  return result;
}

}  // namespace ptest::fleet
