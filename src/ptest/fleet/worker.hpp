// fleet::Worker — the executing half of the coordinator/worker split.
//
// A worker owns no policy: it polls its transport for AssignFrames,
// runs each assigned shard slice through the exact code path the serial
// runner uses (core::Campaign::run_scenario_slice), reports a
// ResultFrame per slice — campaign result, session-span corpus, wall
// time — and exits on a shutdown frame.  A slice that fails (unknown
// scenario, multi-arm plan) is reported as an error frame so the
// coordinator can retry or abort; the worker itself keeps serving.
//
// A *persistent* worker (WorkerOptions::persistent, the `--listen`
// daemon mode) additionally survives campaign boundaries: a
// campaign-end frame resets its idle clock and it keeps serving the
// next coordinator; only an explicit shutdown frame ends it.
#pragma once

#include <cstdint>
#include <string>

#include "ptest/core/campaign.hpp"
#include "ptest/fleet/transport.hpp"
#include "ptest/guided/corpus.hpp"
#include "ptest/support/result.hpp"

namespace ptest::fleet {

struct WorkerOptions {
  /// Poll iterations with no inbound frame before serve() gives up
  /// (the coordinator died without broadcasting shutdown).
  std::uint64_t poll_limit = 200'000'000;
  /// Microseconds to sleep on an idle poll (0 = yield; file-queue
  /// callers should set this).
  std::uint64_t idle_sleep_us = 0;
  /// Daemon mode: survive campaign-end frames (keep serving the next
  /// coordinator) and treat send failures / decode errors on one
  /// campaign as that campaign's problem, not a reason to die — the
  /// coordinator's shard deadline re-issues anything lost.
  bool persistent = false;
  /// Stamped into every ResultFrame so the coordinator can count the
  /// distinct workers it must drain.  Also namespaces the file-queue
  /// transport's spool files; must be unique per live process.
  std::string node;
  /// Honour AssignFrame::trace by enabling this process's TraceRecorder
  /// around the slice and shipping the drained tail on the ResultFrame.
  /// run_local_fleet turns this off: in-process workers share the
  /// coordinator's recorder, and draining it per slice would race the
  /// other workers and steal the coordinator's own events.
  bool ship_trace = true;
};

class Worker {
 public:
  explicit Worker(WorkerOptions options = {}) : options_(options) {}

  /// Serves assignments until a shutdown frame arrives (persistent
  /// workers also ride through campaign-end frames); returns the number
  /// of slices executed, or an error (malformed frame, transport jammed
  /// past retry, idle past poll_limit — the latter two only fatal when
  /// not persistent).
  [[nodiscard]] support::Result<std::size_t, std::string> serve(
      Transport& transport);

 private:
  WorkerOptions options_;
};

/// The session-span corpus one shard reports (and the serial reference
/// the CI fleet gate diffs against): scenario label, resolved plan
/// seed, the covered transitions of `result`'s single arm, and one span
/// [slice.run_base, slice.run_base + slice.sessions) carrying the
/// detections.  Merging every shard's corpus in any order yields
/// byte-for-byte the corpus this returns for the whole-budget slice of
/// the single-process run.  Errors on unknown scenarios and multi-arm
/// results.
[[nodiscard]] support::Result<guided::CoverageCorpus, std::string>
shard_corpus(const std::string& scenario, const core::ShardSlice& slice,
             const core::CampaignResult& result,
             std::optional<std::uint64_t> seed_override = {});

}  // namespace ptest::fleet
