#include "ptest/fleet/transport.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <system_error>
#include <vector>

namespace ptest::fleet {

namespace fs = std::filesystem;

// --- InProcessQueue --------------------------------------------------------

InProcessQueue::InProcessQueue(std::size_t capacity) {
  to_worker_.capacity = capacity == 0 ? 1 : capacity;
  to_coordinator_.capacity = capacity == 0 ? 1 : capacity;
}

bool InProcessQueue::Queue::push(const std::string& frame) {
  const std::lock_guard<std::mutex> lock(mutex);
  if (frames.size() >= capacity) return false;
  frames.push_back(frame);
  return true;
}

std::optional<std::string> InProcessQueue::Queue::pop() {
  const std::lock_guard<std::mutex> lock(mutex);
  if (frames.empty()) return std::nullopt;
  std::string frame = std::move(frames.front());
  frames.pop_front();
  return frame;
}

// --- FileQueueTransport ----------------------------------------------------

FileQueueTransport::FileQueueTransport(fs::path root, Role role,
                                       std::string node)
    : root_(std::move(root)), role_(role), node_(std::move(node)) {
  fs::create_directories(root_ / "work");
  fs::create_directories(root_ / "results");
  fs::create_directories(root_ / "tmp");
}

fs::path FileQueueTransport::inbox() const {
  return root_ / (role_ == Role::kCoordinator ? "results" : "work");
}

fs::path FileQueueTransport::outbox() const {
  return root_ / (role_ == Role::kCoordinator ? "work" : "results");
}

bool FileQueueTransport::send(const std::string& frame) {
  char name[96];
  std::snprintf(name, sizeof name, "%020llu-%s",
                static_cast<unsigned long long>(counter_), node_.c_str());
  const fs::path tmp = root_ / "tmp" / name;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.good()) return false;
    out << frame;
    out.flush();
    if (!out.good()) return false;
  }
  // Publish: the rename is atomic, so the peer never reads a half
  // frame.  Failure (full disk, dead mount) reads as backpressure and
  // the ledger machinery retries.
  std::error_code ec;
  fs::rename(tmp, outbox() / name, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  ++counter_;
  return true;
}

std::optional<std::string> FileQueueTransport::receive() {
  std::error_code ec;
  std::vector<fs::path> pending;
  for (fs::directory_iterator it(inbox(), ec), end; !ec && it != end;
       it.increment(ec)) {
    if (it->is_regular_file(ec)) pending.push_back(it->path());
  }
  std::sort(pending.begin(), pending.end());
  for (const fs::path& path : pending) {
    // Claim by renaming into tmp/ under this node's name: exactly one
    // of the competing claimants wins the rename, everyone else moves
    // on to the next pending frame.
    char name[96];
    std::snprintf(name, sizeof name, "claim-%s-%020llu", node_.c_str(),
                  static_cast<unsigned long long>(counter_));
    const fs::path claim = root_ / "tmp" / name;
    fs::rename(path, claim, ec);
    if (ec) continue;
    ++counter_;
    std::ifstream in(claim, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    fs::remove(claim, ec);
    if (!in.good() && buffer.str().empty()) continue;
    return buffer.str();
  }
  return std::nullopt;
}

}  // namespace ptest::fleet
