#include "ptest/fleet/transport.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <system_error>
#include <vector>

#include "ptest/obs/trace.hpp"

namespace ptest::fleet {

namespace fs = std::filesystem;

// --- InProcessQueue --------------------------------------------------------

InProcessQueue::InProcessQueue(std::size_t capacity) {
  to_worker_.capacity = capacity == 0 ? 1 : capacity;
  to_coordinator_.capacity = capacity == 0 ? 1 : capacity;
}

bool InProcessQueue::Queue::push(const std::string& frame) {
  const std::lock_guard<std::mutex> lock(mutex);
  if (frames.size() >= capacity) return false;
  frames.push_back(frame);
  return true;
}

std::optional<std::string> InProcessQueue::Queue::pop() {
  const std::lock_guard<std::mutex> lock(mutex);
  if (frames.empty()) return std::nullopt;
  std::string frame = std::move(frames.front());
  frames.pop_front();
  return frame;
}

// --- FileQueueTransport ----------------------------------------------------

FileQueueTransport::FileQueueTransport(fs::path root, Role role,
                                       std::string node)
    : root_(std::move(root)), role_(role), node_(std::move(node)) {
  fs::create_directories(root_ / "work");
  fs::create_directories(root_ / "results");
  fs::create_directories(root_ / "tmp");
  recover_stale_tmp();
}

void FileQueueTransport::recover_stale_tmp() {
  // Sweep tmp/ for files a previous process running as this node left
  // behind when it crashed.  Only this node's files are touched: other
  // nodes' tmp entries may be live (half-written publishes, in-flight
  // claims) and each node recovers its own on restart.
  const std::string claim_prefix = "claim-" + node_ + "-";
  const std::string publish_suffix = "-" + node_;
  std::error_code ec;
  for (fs::directory_iterator it(root_ / "tmp", ec), end; !ec && it != end;
       it.increment(ec)) {
    std::error_code entry_ec;
    if (!it->is_regular_file(entry_ec) || entry_ec) continue;
    const std::string name = it->path().filename().string();
    if (name.compare(0, claim_prefix.size(), claim_prefix) == 0) {
      // Claimed but never processed (or never observed to be): restore
      // the frame to the inbox so it delivers again.  If it actually
      // was processed, the receiver's stale-seq / first-wins handling
      // absorbs the duplicate — redelivery is safe, silent loss is not.
      // (Restored claims keep their claim name, which sorts after the
      // counter-prefixed fresh frames; delivery order degrades, never
      // delivery itself.)
      fs::rename(it->path(), inbox() / name, entry_ec);
    } else if (name.size() > publish_suffix.size() &&
               name.compare(name.size() - publish_suffix.size(),
                            publish_suffix.size(), publish_suffix) == 0) {
      // Crash between write and rename-publish: send() never returned
      // true for this frame, so it was never logically sent.  Delete
      // the husk rather than publishing possibly-truncated bytes.
      fs::remove(it->path(), entry_ec);
    }
  }
}

fs::path FileQueueTransport::inbox() const {
  return root_ / (role_ == Role::kCoordinator ? "results" : "work");
}

fs::path FileQueueTransport::outbox() const {
  return root_ / (role_ == Role::kCoordinator ? "work" : "results");
}

bool FileQueueTransport::send(const std::string& frame) {
  const std::uint64_t send_start = obs::TraceRecorder::now_ns();
  char name[96];
  std::snprintf(name, sizeof name, "%020llu-%s",
                static_cast<unsigned long long>(counter_), node_.c_str());
  const fs::path tmp = root_ / "tmp" / name;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.good()) {
      obs::TraceRecorder::instance().record_instant("transport:backpressure");
      return false;
    }
    out << frame;
    out.flush();
    if (!out.good()) {
      obs::TraceRecorder::instance().record_instant("transport:backpressure");
      return false;
    }
  }
  // Publish: the rename is atomic, so the peer never reads a half
  // frame.  Failure (full disk, dead mount) reads as backpressure and
  // the ledger machinery retries.
  std::error_code ec;
  fs::rename(tmp, outbox() / name, ec);
  if (ec) {
    fs::remove(tmp, ec);
    obs::TraceRecorder::instance().record_instant("transport:backpressure");
    return false;
  }
  ++counter_;
  obs::TraceRecorder::instance().record_span(
      "transport:send", send_start,
      obs::TraceRecorder::now_ns() - send_start);
  return true;
}

std::optional<std::string> FileQueueTransport::receive() {
  std::error_code ec;
  std::vector<fs::path> pending;
  for (fs::directory_iterator it(inbox(), ec), end; !ec && it != end;
       it.increment(ec)) {
    // A per-entry error (the entry vanished under a competing claimant,
    // an unstatable name) skips that entry, never the rest of the scan
    // — aborting here would silently postpone every remaining pending
    // frame for this poll.
    std::error_code entry_ec;
    if (it->is_regular_file(entry_ec) && !entry_ec) {
      pending.push_back(it->path());
    }
  }
  std::sort(pending.begin(), pending.end());
  for (const fs::path& path : pending) {
    // Claim by renaming into tmp/ under this node's name: exactly one
    // of the competing claimants wins the rename, everyone else moves
    // on to the next pending frame.
    char name[96];
    std::snprintf(name, sizeof name, "claim-%s-%020llu", node_.c_str(),
                  static_cast<unsigned long long>(counter_));
    const fs::path claim = root_ / "tmp" / name;
    fs::rename(path, claim, ec);
    if (ec) continue;
    ++counter_;
    // Validate the read before the claim file is removed: a failed open
    // or short read must put the frame back, not delete the only copy.
    std::error_code io_ec;
    const std::uintmax_t expected = fs::file_size(claim, io_ec);
    bool good = !io_ec;
    std::string frame;
    if (good) {
      std::ifstream in(claim, std::ios::binary);
      good = in.is_open();
      if (good) {
        std::ostringstream buffer;
        buffer << in.rdbuf();
        frame = buffer.str();
        // A truncated stream is not a complete frame; the byte count
        // must match what the atomic rename published.
        good = !in.bad() && frame.size() == expected;
      }
    }
    if (!good) {
      // Unclaim: restore the frame under its published name so a later
      // poll (or another claimant) delivers it.  If even the restore
      // fails, the claim file stays in tmp/ and the constructor-time
      // recovery sweep returns it to the inbox on restart.
      fs::rename(claim, path, io_ec);
      continue;
    }
    fs::remove(claim, io_ec);
    obs::TraceRecorder::instance().record_instant("transport:recv");
    return frame;
  }
  return std::nullopt;
}

}  // namespace ptest::fleet
