// Fleet transports — how frames move, kept apart from what they mean.
//
// Coordinator and Worker speak only to this interface: send() one
// encoded frame toward the peer (false = backpressure, retry later),
// receive() the next frame addressed to this endpoint (nullopt = none
// pending; polling, never blocking).  The committer/coordinator retry
// machinery (fleet/ledger.hpp) was designed around exactly this
// contract, so the same backpressure handling drives a bounded
// in-process queue and a spool directory on disk.
//
// Two implementations:
//   * InProcessQueue — a bounded two-direction mutex queue; the local
//     `--fleet N` mode and the unit tests run coordinator and workers
//     as threads of one process.  Multiple workers may share the worker
//     endpoint; each frame is claimed by exactly one receiver.
//   * FileQueueTransport — a spool directory shared over a filesystem
//     for separate processes (`--serve DIR` / `--connect DIR`).
//     Publishing writes to tmp/ and renames into the destination
//     directory; claiming renames out of it.  POSIX rename(2) is atomic
//     and fails for every claimant but one, so competing workers get
//     exactly-once delivery without locks.
#pragma once

#include <cstdint>
#include <deque>
#include <filesystem>
#include <mutex>
#include <optional>
#include <string>

namespace ptest::fleet {

class Transport {
 public:
  virtual ~Transport() = default;
  /// Queues one frame toward the peer; false = backpressure (the caller
  /// retries later, without burning a sequence number).
  [[nodiscard]] virtual bool send(const std::string& frame) = 0;
  /// Next frame addressed to this endpoint, or nullopt when none is
  /// pending.  Never blocks.
  [[nodiscard]] virtual std::optional<std::string> receive() = 0;
  /// Live peers this endpoint can currently reach, or 0 when the
  /// transport cannot know (queues and spools have no connection
  /// concept).  The coordinator sizes its end-of-campaign drain
  /// broadcast from this when it is available.
  [[nodiscard]] virtual std::size_t peers() { return 0; }
};

/// Bounded bidirectional in-memory queue pair.  coordinator_endpoint()
/// sends into the worker-bound queue and receives from the
/// coordinator-bound one; worker_endpoint() the reverse.  Both
/// endpoints are safe to share across threads.
class InProcessQueue {
 public:
  /// `capacity` bounds each direction; a full queue backpressures
  /// send() exactly like a full command ring backpressures the
  /// committer.
  explicit InProcessQueue(std::size_t capacity = 64);

  [[nodiscard]] Transport& coordinator_endpoint() noexcept {
    return coordinator_;
  }
  [[nodiscard]] Transport& worker_endpoint() noexcept { return worker_; }

 private:
  struct Queue {
    std::mutex mutex;
    std::deque<std::string> frames;
    std::size_t capacity = 64;

    bool push(const std::string& frame);
    std::optional<std::string> pop();
  };

  class Endpoint final : public Transport {
   public:
    Endpoint(Queue& out, Queue& in) : out_(&out), in_(&in) {}
    [[nodiscard]] bool send(const std::string& frame) override {
      return out_->push(frame);
    }
    [[nodiscard]] std::optional<std::string> receive() override {
      return in_->pop();
    }

   private:
    Queue* out_;
    Queue* in_;
  };

  Queue to_worker_;
  Queue to_coordinator_;
  Endpoint coordinator_{to_worker_, to_coordinator_};
  Endpoint worker_{to_coordinator_, to_worker_};
};

/// Spool-directory transport.  Layout under the root:
///   work/     frames bound for workers (assignments, shutdowns)
///   results/  frames bound for the coordinator
///   tmp/      half-written files before their rename-publish
/// Frames are single files named <counter>-<node> so directory order
/// approximates send order and names never collide across nodes.
class FileQueueTransport final : public Transport {
 public:
  enum class Role : std::uint8_t { kCoordinator, kWorker };

  /// Creates the spool layout under `root` if missing, then recovers
  /// this node's stale tmp/ entries from a previous crashed process:
  /// half-published sends (crash between write and rename; the old
  /// send() never returned true, so the frame was never logically sent)
  /// are deleted, and claimed-but-unprocessed frames are restored to
  /// the inbox so they deliver again.  `node` must be unique per live
  /// process (it namespaces published file names and claim targets, and
  /// scopes the crash recovery).  Throws
  /// std::filesystem::filesystem_error when the root cannot be created.
  FileQueueTransport(std::filesystem::path root, Role role, std::string node);

  [[nodiscard]] bool send(const std::string& frame) override;
  [[nodiscard]] std::optional<std::string> receive() override;

 private:
  [[nodiscard]] std::filesystem::path inbox() const;
  [[nodiscard]] std::filesystem::path outbox() const;
  void recover_stale_tmp();

  std::filesystem::path root_;
  Role role_;
  std::string node_;
  std::uint64_t counter_ = 0;
};

}  // namespace ptest::fleet
