// Minimal Result<T, E> used where a failure is an expected outcome rather
// than a programming error (kernel service return codes, bridge timeouts).
// Exceptions remain reserved for contract violations and malformed input
// (e.g. regex parse errors), per the C++ Core Guidelines (E.2/E.14).
//
// std::expected is a C++23 facility; the toolchain for this project is
// C++20, so this header provides the small subset the library needs.
#pragma once

#include <stdexcept>
#include <utility>
#include <variant>

namespace ptest::support {

template <typename T, typename E>
class [[nodiscard]] Result {
 public:
  Result(T value) : storage_(std::in_place_index<0>, std::move(value)) {}
  Result(E error) : storage_(std::in_place_index<1>, std::move(error)) {}

  [[nodiscard]] bool ok() const noexcept { return storage_.index() == 0; }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] T& value() {
    if (!ok()) throw std::logic_error("Result::value on error");
    return std::get<0>(storage_);
  }
  [[nodiscard]] const T& value() const {
    if (!ok()) throw std::logic_error("Result::value on error");
    return std::get<0>(storage_);
  }
  [[nodiscard]] E& error() {
    if (ok()) throw std::logic_error("Result::error on value");
    return std::get<1>(storage_);
  }
  [[nodiscard]] const E& error() const {
    if (ok()) throw std::logic_error("Result::error on value");
    return std::get<1>(storage_);
  }

  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? std::get<0>(storage_) : std::move(fallback);
  }

 private:
  std::variant<T, E> storage_;
};

}  // namespace ptest::support
