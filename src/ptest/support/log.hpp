// Lightweight leveled logger.
//
// The library is silent by default (Level::kWarn).  Tests raise the level to
// capture diagnostics; examples lower it to show the tool's progress the way
// the paper's bug detector "dumps the related information".
#pragma once

#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace ptest::support {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

[[nodiscard]] std::string_view to_string(LogLevel level) noexcept;

/// Parses "trace" | "debug" | "info" | "warn" | "error" | "off"
/// (case-insensitive); nullopt for anything else.  This is the grammar
/// of the PTEST_LOG environment variable.
[[nodiscard]] std::optional<LogLevel> parse_log_level(
    std::string_view text) noexcept;

/// Process-wide logger configuration.  The simulation substrate is
/// single-threaded (see DESIGN.md §5.1), but the parallel campaign runner
/// executes whole sessions concurrently, so level reads are atomic and
/// sink replacement is mutex-guarded.  The sink itself is invoked
/// *outside* that mutex (so a sink may log without deadlocking) and can
/// therefore run concurrently from several sessions — custom sinks must
/// be internally thread-safe, like the default stderr sink.  Tests
/// should still set the sink once at startup: swapping it mid-campaign is
/// safe but interleaves messages from different sessions.
class Log {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  /// Current threshold.  The first query applies PTEST_LOG from the
  /// environment (once per process); an explicit set_level() afterwards
  /// always wins.
  static LogLevel level() noexcept;
  static void set_level(LogLevel level) noexcept;

  /// Node name the default sink includes in its prefix (fleet workers
  /// set their node id); empty = omitted from the prefix.
  static void set_node(std::string_view node);
  [[nodiscard]] static std::string node();

  /// The "<ISO-8601 UTC> <LEVEL> tid=<id>[ node=<name>]" prefix the
  /// default stderr sink prints; exposed so tests can pin the format.
  [[nodiscard]] static std::string format_prefix(LogLevel level);

  /// Replaces the output sink (default writes to stderr).  Pass nullptr to
  /// restore the default.
  static void set_sink(Sink sink);

  static void write(LogLevel level, std::string_view message);
  [[nodiscard]] static bool enabled(LogLevel level) noexcept {
    return level >= Log::level();
  }
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { Log::write(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace ptest::support

#define PTEST_LOG(level_)                                 \
  if (!::ptest::support::Log::enabled(level_)) {          \
  } else                                                  \
    ::ptest::support::detail::LogLine(level_)

#define PTEST_TRACE() PTEST_LOG(::ptest::support::LogLevel::kTrace)
#define PTEST_DEBUG() PTEST_LOG(::ptest::support::LogLevel::kDebug)
#define PTEST_INFO() PTEST_LOG(::ptest::support::LogLevel::kInfo)
#define PTEST_WARN() PTEST_LOG(::ptest::support::LogLevel::kWarn)
#define PTEST_ERROR() PTEST_LOG(::ptest::support::LogLevel::kError)
