// Small string helpers shared by the regex parser, config loader and report
// formatter.  Kept dependency-free.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ptest::support {

/// Splits `text` on `sep`, dropping empty fields when `keep_empty` is false.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char sep,
                                             bool keep_empty = false);

/// Removes ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view text) noexcept;

/// Joins `parts` with `sep`.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// True if `text` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view text,
                               std::string_view prefix) noexcept;

/// Parses a double, throwing std::invalid_argument with context on failure.
[[nodiscard]] double parse_double(std::string_view text);

/// Parses a non-negative integer, throwing std::invalid_argument on failure.
[[nodiscard]] std::uint64_t parse_u64(std::string_view text);

}  // namespace ptest::support
