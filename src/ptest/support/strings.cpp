#include "ptest/support/strings.hpp"

#include <cctype>
#include <charconv>
#include <stdexcept>

namespace ptest::support {

std::vector<std::string> split(std::string_view text, char sep,
                               bool keep_empty) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find(sep, start);
    const std::string_view field =
        text.substr(start, end == std::string_view::npos ? std::string_view::npos
                                                         : end - start);
    if (keep_empty || !field.empty()) out.emplace_back(field);
    if (end == std::string_view::npos) break;
    start = end + 1;
  }
  return out;
}

std::string_view trim(std::string_view text) noexcept {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.substr(0, prefix.size()) == prefix;
}

double parse_double(std::string_view text) {
  const std::string_view trimmed = trim(text);
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(trimmed.data(), trimmed.data() + trimmed.size(), value);
  if (ec != std::errc{} || ptr != trimmed.data() + trimmed.size()) {
    throw std::invalid_argument("parse_double: invalid number: '" +
                                std::string(text) + "'");
  }
  return value;
}

std::uint64_t parse_u64(std::string_view text) {
  const std::string_view trimmed = trim(text);
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(trimmed.data(), trimmed.data() + trimmed.size(), value);
  if (ec != std::errc{} || ptr != trimmed.data() + trimmed.size()) {
    throw std::invalid_argument("parse_u64: invalid integer: '" +
                                std::string(text) + "'");
  }
  return value;
}

}  // namespace ptest::support
