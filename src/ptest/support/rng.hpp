// Deterministic pseudo-random number generation for reproducible testing.
//
// Every nondeterministic choice in the library (PFA sampling, pattern
// merging, scheduler tie-breaking, noise injection) draws from an Rng seeded
// from the test session's master seed.  Replaying a bug report therefore
// reproduces the identical command stream and interleaving, which is the
// property the paper's bug detector relies on ("helps users reproduce the
// bugs", §II-B).
//
// The generator is xoshiro256** seeded through SplitMix64; it is small,
// fast, and has no global state.  std::mt19937 is deliberately avoided so
// that streams are stable across standard-library implementations.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace ptest::support {

/// SplitMix64 step; used to expand a single 64-bit seed into generator state.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Mixes a base seed and a stream index into a decorrelated child seed.
/// Campaign run k seeds its session with derive_seed(base, k): a pure
/// function of the pair, so parallel execution order cannot perturb any
/// session's stream, and nearby indices land in unrelated states.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base,
                                        std::uint64_t index) noexcept;

/// xoshiro256** deterministic PRNG.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Next raw 64-bit value.
  [[nodiscard]] std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound); `bound` must be nonzero.
  /// Uses Lemire's unbiased bounded sampling.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  [[nodiscard]] std::int64_t between(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Fills `out` with out.size() uniform doubles in [0, 1), consuming
  /// exactly the stream a loop of uniform() calls would — callers may
  /// batch draws they are certain to use without perturbing replay.
  void uniform_batch(std::span<double> out) noexcept;

  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  [[nodiscard]] bool chance(double p) noexcept;

  /// Samples an index in [0, weights.size()) proportionally to `weights`.
  /// All weights must be >= 0 and at least one must be > 0.
  [[nodiscard]] std::size_t weighted_index(std::span<const double> weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[static_cast<std::size_t>(below(i))]);
    }
  }

  /// Derives an independent child generator.  Forked streams let subsystems
  /// (generator, merger, noise injector) consume randomness without
  /// perturbing each other's sequences, keeping replay stable even when one
  /// subsystem changes how much it draws.
  [[nodiscard]] Rng fork() noexcept;

  /// UniformRandomBitGenerator interface (for std::sample etc.).
  [[nodiscard]] static constexpr std::uint64_t min() noexcept { return 0; }
  [[nodiscard]] static constexpr std::uint64_t max() noexcept {
    return ~0ULL;
  }
  std::uint64_t operator()() noexcept { return next(); }

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace ptest::support
