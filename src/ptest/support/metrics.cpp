#include "ptest/support/metrics.hpp"

#include <cstdio>

namespace ptest::support {
namespace {

// Shared histogram rendering: one "name  n=.. p50=.. p95=.. p99=.." line
// in the human block, one {"count", "p50", "p95", "p99", "buckets"}
// object in the JSON (buckets sparse, as [index, count] pairs).
void render_histogram_line(std::string& out, const char* name,
                           const obs::Histogram& hist) {
  if (hist.empty()) return;
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "  %-22s n=%llu p50=%llu p95=%llu p99=%llu\n", name,
                static_cast<unsigned long long>(hist.count()),
                static_cast<unsigned long long>(hist.p50()),
                static_cast<unsigned long long>(hist.p95()),
                static_cast<unsigned long long>(hist.p99()));
  out += buffer;
}

void write_histogram_json(JsonWriter& out, const obs::Histogram& hist) {
  out.begin_object();
  out.key("count").value(hist.count());
  out.key("p50").value(hist.p50());
  out.key("p95").value(hist.p95());
  out.key("p99").value(hist.p99());
  out.key("buckets").begin_array();
  for (std::size_t i = 0; i < obs::Histogram::kBuckets; ++i) {
    if (hist.bucket(i) == 0) continue;
    out.begin_array();
    out.value(static_cast<std::uint64_t>(i));
    out.value(hist.bucket(i));
    out.end_array();
  }
  out.end_array();
  out.end_object();
}

}  // namespace

std::string MetricsSnapshot::render() const {
  char buffer[256];
  std::string out;
  const auto line = [&out, &buffer](const char* name, std::uint64_t value) {
    std::snprintf(buffer, sizeof(buffer), "  %-22s %llu\n", name,
                  static_cast<unsigned long long>(value));
    out += buffer;
  };
  out += "metrics:\n";
  line("sessions", sessions);
  line("plan_cache_hits", plan_cache_hits);
  line("plan_compiles", plan_compiles);
  line("patterns_generated", patterns_generated);
  line("dedup_accepted", dedup_accepted);
  line("dedup_rejected", dedup_rejected);
  line("ticks", ticks);
  // Scratch-reuse counters only appear once a hot path reused a warm
  // scratch, so legacy (cold-scratch) output stays unchanged.
  if (scratch_reuse_hits != 0 || sample_alloc_bytes_saved != 0) {
    line("scratch_reuse_hits", scratch_reuse_hits);
    line("sample_alloc_bytes_saved", sample_alloc_bytes_saved);
  }
  // Coverage / guided counters only appear when something tracked them,
  // so legacy output (and diffs against it) stay unchanged.
  if (pfa_states != 0 || pfa_transitions != 0) {
    std::snprintf(buffer, sizeof(buffer), "  %-22s %llu/%llu (%.1f%%)\n",
                  "pfa_state_coverage",
                  static_cast<unsigned long long>(pfa_states_covered),
                  static_cast<unsigned long long>(pfa_states),
                  100.0 * state_coverage());
    out += buffer;
    std::snprintf(buffer, sizeof(buffer), "  %-22s %llu/%llu (%.1f%%)\n",
                  "pfa_transition_coverage",
                  static_cast<unsigned long long>(pfa_transitions_covered),
                  static_cast<unsigned long long>(pfa_transitions),
                  100.0 * transition_coverage());
    out += buffer;
    line("pfa_ngrams", pfa_ngrams);
  }
  if (epochs != 0) {
    line("epochs", epochs);
    line("plan_refinements", plan_refinements);
  }
  if (fleet_shards != 0) {
    line("fleet_shards", fleet_shards);
    line("fleet_retries", fleet_retries);
    std::snprintf(buffer, sizeof(buffer), "  %-22s %.3f\n",
                  "fleet_corpus_merge_ms",
                  static_cast<double>(fleet_corpus_merge_ns) * 1e-6);
    out += buffer;
    std::snprintf(buffer, sizeof(buffer), "  %-22s %.3f\n",
                  "fleet_shard_wall_max_ms",
                  static_cast<double>(fleet_shard_wall_max_ns) * 1e-6);
    out += buffer;
    std::snprintf(buffer, sizeof(buffer), "  %-22s %.3f\n",
                  "fleet_shard_wall_min_ms",
                  static_cast<double>(fleet_shard_wall_min_ns) * 1e-6);
    out += buffer;
    std::snprintf(buffer, sizeof(buffer), "  %-22s %.2f\n",
                  "fleet_shard_imbalance", fleet_shard_imbalance());
    out += buffer;
  }
  // Histograms appear once something recorded into them, mirroring the
  // conditional blocks above.
  render_histogram_line(out, "ticks_hist", ticks_hist);
  render_histogram_line(out, "session_wall_hist", session_wall_hist);
  render_histogram_line(out, "corpus_merge_hist", corpus_merge_hist);
  render_histogram_line(out, "frame_rtt_hist", frame_rtt_hist);
  render_histogram_line(out, "transport_send_hist", transport_send_hist);
  std::snprintf(buffer, sizeof(buffer), "  %-22s %.3f\n", "wall_seconds",
                wall_seconds());
  out += buffer;
  std::snprintf(buffer, sizeof(buffer), "  %-22s %.1f\n",
                "sessions_per_second", sessions_per_second());
  out += buffer;
  std::snprintf(buffer, sizeof(buffer), "  %-22s %.1f\n",
                "interleavings_per_sec", interleavings_per_sec());
  out += buffer;
  std::snprintf(buffer, sizeof(buffer), "  %-22s %.3f\n",
                "worker_idle_seconds", worker_idle_seconds());
  out += buffer;
  line("worker_threads", worker_threads);
  return out;
}

void MetricsSnapshot::write_json(JsonWriter& out) const {
  out.begin_object();
  out.key("sessions").value(sessions);
  out.key("plan_cache_hits").value(plan_cache_hits);
  out.key("plan_compiles").value(plan_compiles);
  out.key("patterns_generated").value(patterns_generated);
  out.key("dedup_accepted").value(dedup_accepted);
  out.key("dedup_rejected").value(dedup_rejected);
  out.key("ticks").value(ticks);
  out.key("scratch_reuse_hits").value(scratch_reuse_hits);
  out.key("sample_alloc_bytes_saved").value(sample_alloc_bytes_saved);
  out.key("pfa_states").value(pfa_states);
  out.key("pfa_states_covered").value(pfa_states_covered);
  out.key("pfa_transitions").value(pfa_transitions);
  out.key("pfa_transitions_covered").value(pfa_transitions_covered);
  out.key("pfa_ngrams").value(pfa_ngrams);
  out.key("epochs").value(epochs);
  out.key("plan_refinements").value(plan_refinements);
  out.key("fleet_shards").value(fleet_shards);
  out.key("fleet_retries").value(fleet_retries);
  out.key("fleet_corpus_merge_ms")
      .value(static_cast<double>(fleet_corpus_merge_ns) * 1e-6);
  out.key("fleet_shard_wall_max_ns").value(fleet_shard_wall_max_ns);
  out.key("fleet_shard_wall_min_ns").value(fleet_shard_wall_min_ns);
  out.key("fleet_shard_imbalance").value(fleet_shard_imbalance());
  out.key("ticks_hist");
  write_histogram_json(out, ticks_hist);
  out.key("session_wall_hist");
  write_histogram_json(out, session_wall_hist);
  out.key("corpus_merge_hist");
  write_histogram_json(out, corpus_merge_hist);
  out.key("frame_rtt_hist");
  write_histogram_json(out, frame_rtt_hist);
  out.key("transport_send_hist");
  write_histogram_json(out, transport_send_hist);
  out.key("wall_seconds").value(wall_seconds());
  out.key("sessions_per_second").value(sessions_per_second());
  out.key("interleavings_per_sec").value(interleavings_per_sec());
  out.key("worker_idle_seconds").value(worker_idle_seconds());
  out.key("worker_threads").value(worker_threads);
  out.end_object();
}

MetricsSnapshot Metrics::snapshot() const noexcept {
  MetricsSnapshot snap;
  snap.sessions = sessions_.load(std::memory_order_relaxed);
  snap.plan_cache_hits = plan_cache_hits_.load(std::memory_order_relaxed);
  snap.plan_compiles = plan_compiles_.load(std::memory_order_relaxed);
  snap.patterns_generated =
      patterns_generated_.load(std::memory_order_relaxed);
  snap.dedup_accepted = dedup_accepted_.load(std::memory_order_relaxed);
  snap.dedup_rejected = dedup_rejected_.load(std::memory_order_relaxed);
  snap.ticks = ticks_.load(std::memory_order_relaxed);
  snap.scratch_reuse_hits =
      scratch_reuse_hits_.load(std::memory_order_relaxed);
  snap.sample_alloc_bytes_saved =
      sample_alloc_bytes_saved_.load(std::memory_order_relaxed);
  snap.wall_ns = wall_ns_.load(std::memory_order_relaxed);
  snap.worker_idle_ns = worker_idle_ns_.load(std::memory_order_relaxed);
  snap.worker_threads = worker_threads_.load(std::memory_order_relaxed);
  return snap;
}

void Metrics::reset() noexcept {
  sessions_.store(0, std::memory_order_relaxed);
  plan_cache_hits_.store(0, std::memory_order_relaxed);
  plan_compiles_.store(0, std::memory_order_relaxed);
  patterns_generated_.store(0, std::memory_order_relaxed);
  dedup_accepted_.store(0, std::memory_order_relaxed);
  dedup_rejected_.store(0, std::memory_order_relaxed);
  ticks_.store(0, std::memory_order_relaxed);
  scratch_reuse_hits_.store(0, std::memory_order_relaxed);
  sample_alloc_bytes_saved_.store(0, std::memory_order_relaxed);
  wall_ns_.store(0, std::memory_order_relaxed);
  worker_idle_ns_.store(0, std::memory_order_relaxed);
  worker_threads_.store(0, std::memory_order_relaxed);
}

}  // namespace ptest::support
