// Lightweight perf counters for the campaign hot path.
//
// A Campaign runs thousands of sessions across a WorkerPool; until now
// the only observable output was the detection table, so claims like
// "the plan cache is ~2x" or "jobs=4 keeps the workers busy" could not
// be checked from a run's artifacts.  Metrics is the counter set the
// hot path updates (cheap relaxed atomics, safe from any thread) and
// MetricsSnapshot the plain-value copy that results, reports, and the
// benchmark JSON carry.
//
// The counters are split in two classes with different determinism:
//   - work counters (sessions, plan_cache_hits, plan_compiles,
//     patterns_generated, dedup_*) are a pure function of the campaign
//     seed/config — bit-identical for every `jobs` value;
//   - timing counters (wall_ns, worker_idle_ns) measure the host and
//     vary run to run.  Consumers that diff runs (determinism tests,
//     `ptest_cli --jobs N` vs serial) must compare only the former.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

// Header-only and dependency-free by design (see obs/histogram.hpp), so
// embedding histograms here does not invert the support <- obs layering
// at link time.
#include "ptest/obs/histogram.hpp"
#include "ptest/support/json.hpp"

namespace ptest::support {

/// Plain-value copy of a Metrics counter set at one point in time.
struct MetricsSnapshot {
  // Work counters (deterministic given seed/config).
  std::uint64_t sessions = 0;            ///< sessions executed
  std::uint64_t plan_cache_hits = 0;     ///< sessions served by a precompiled plan
  std::uint64_t plan_compiles = 0;       ///< full regex->PFA compile pipelines run
  std::uint64_t patterns_generated = 0;  ///< test patterns sampled (kept)
  std::uint64_t dedup_accepted = 0;      ///< patterns accepted as new by dedup
  std::uint64_t dedup_rejected = 0;      ///< patterns rejected as replicas
  std::uint64_t ticks = 0;               ///< kernel ticks simulated (interleaving steps)
  /// Sampling scratch-reuse counters (work class — WalkScratch accounts
  /// reuse against per-session high-water marks, so the totals are a
  /// pure function of seed/config, identical for every `jobs` value and
  /// shard split even though the physical buffer reuse is scheduled).
  std::uint64_t scratch_reuse_hits = 0;       ///< sample_into calls served from warm buffers
  std::uint64_t sample_alloc_bytes_saved = 0; ///< walk-buffer bytes those hits avoided

  // PFA model-coverage counters (work class: deterministic given
  // seed/config).  Filled by campaigns that track structural coverage of
  // the compiled test model (CampaignOptions::track_coverage); all zero
  // when tracking is off.  Totals sum over the campaign's arms, so a
  // single-arm campaign reads directly as its plan's coverage.
  std::uint64_t pfa_states = 0;              ///< automaton states (total)
  std::uint64_t pfa_states_covered = 0;      ///< states some pattern visited
  std::uint64_t pfa_transitions = 0;         ///< transitions (total)
  std::uint64_t pfa_transitions_covered = 0; ///< transitions exercised
  std::uint64_t pfa_ngrams = 0;              ///< distinct symbol n-grams seen

  // Guided-campaign counters (work class).  Zero outside guided mode.
  std::uint64_t epochs = 0;            ///< refinement epochs executed
  std::uint64_t plan_refinements = 0;  ///< re-weighted plans recompiled

  // Timing counters (host-dependent, vary run to run).
  std::uint64_t wall_ns = 0;             ///< wall time of the measured region
  std::uint64_t worker_idle_ns = 0;      ///< summed time workers parked idle
  std::uint64_t worker_threads = 0;      ///< effective parallelism (incl. caller)

  // Fleet counters, filled by fleet::Coordinator when a campaign ran as
  // coordinator + worker shards; all zero in single-process runs.
  // fleet_shards/fleet_retries are work-class given a healthy
  // transport; the *_ns counters time the host.
  std::uint64_t fleet_shards = 0;        ///< shard slices merged
  std::uint64_t fleet_retries = 0;       ///< assignments re-issued
  std::uint64_t fleet_corpus_merge_ns = 0;  ///< corpus merge latency (summed)
  std::uint64_t fleet_shard_wall_max_ns = 0;  ///< slowest shard's wall time
  std::uint64_t fleet_shard_wall_min_ns = 0;  ///< fastest shard's wall time

  // Latency/work distributions (obs::Histogram: 64 power-of-two log
  // buckets, bucket-wise merge).  ticks_hist is work class — per-session
  // kernel ticks are a pure function of seed/config, so its buckets are
  // bit-identical across jobs values and shard splits and it is safe for
  // determinism gates.  The *_hist latency distributions are timing
  // class: carried and merged everywhere, never bit-compared.
  obs::Histogram ticks_hist;           ///< per-session kernel ticks
  obs::Histogram session_wall_hist;    ///< per-session wall time (ns)
  obs::Histogram corpus_merge_hist;    ///< per-shard corpus merge (ns)
  obs::Histogram frame_rtt_hist;       ///< assign->result round trip (ns)
  obs::Histogram transport_send_hist;  ///< successful transport sends (ns)

  [[nodiscard]] double sessions_per_second() const noexcept {
    return wall_ns == 0 ? 0.0
                        : static_cast<double>(sessions) * 1e9 /
                              static_cast<double>(wall_ns);
  }
  /// Simulated kernel ticks per wall second — the throughput lever the
  /// coroutine pcore port targets (each tick is one interleaving step).
  [[nodiscard]] double interleavings_per_sec() const noexcept {
    return wall_ns == 0 ? 0.0
                        : static_cast<double>(ticks) * 1e9 /
                              static_cast<double>(wall_ns);
  }
  [[nodiscard]] double wall_seconds() const noexcept {
    return static_cast<double>(wall_ns) * 1e-9;
  }
  [[nodiscard]] double worker_idle_seconds() const noexcept {
    return static_cast<double>(worker_idle_ns) * 1e-9;
  }
  [[nodiscard]] double state_coverage() const noexcept {
    return pfa_states == 0 ? 0.0
                           : static_cast<double>(pfa_states_covered) /
                                 static_cast<double>(pfa_states);
  }
  [[nodiscard]] double transition_coverage() const noexcept {
    return pfa_transitions == 0
               ? 0.0
               : static_cast<double>(pfa_transitions_covered) /
                     static_cast<double>(pfa_transitions);
  }
  /// Slowest shard / fastest shard wall-time ratio (1.0 = perfectly
  /// balanced; 0 when the campaign did not run as a fleet).  "Ran as a
  /// fleet" is keyed on fleet_shards, not on a zero min: a shard whose
  /// wall time rounds to 0ns is a genuine fastest shard (floored at 1ns
  /// so the ratio stays finite), not an unset sentinel.
  [[nodiscard]] double fleet_shard_imbalance() const noexcept {
    if (fleet_shards == 0) return 0.0;
    const std::uint64_t floor_min =
        fleet_shard_wall_min_ns == 0 ? 1 : fleet_shard_wall_min_ns;
    return static_cast<double>(fleet_shard_wall_max_ns) /
           static_cast<double>(floor_min);
  }

  /// Human-readable block, one "  name: value" line per counter.
  [[nodiscard]] std::string render() const;

  /// Emits the counters as one JSON object value (caller supplies the
  /// surrounding key()/array slot).
  void write_json(JsonWriter& out) const;
};

/// Thread-safe counter set; relaxed atomics — totals are exact, but no
/// cross-counter consistency is promised while writers are running.
class Metrics {
 public:
  void add_sessions(std::uint64_t n = 1) noexcept { add(sessions_, n); }
  void add_plan_cache_hits(std::uint64_t n = 1) noexcept {
    add(plan_cache_hits_, n);
  }
  void add_plan_compiles(std::uint64_t n = 1) noexcept {
    add(plan_compiles_, n);
  }
  void add_patterns_generated(std::uint64_t n) noexcept {
    add(patterns_generated_, n);
  }
  void add_dedup_accepted(std::uint64_t n) noexcept { add(dedup_accepted_, n); }
  void add_dedup_rejected(std::uint64_t n) noexcept { add(dedup_rejected_, n); }
  void add_ticks(std::uint64_t n) noexcept { add(ticks_, n); }
  void add_scratch_reuse_hits(std::uint64_t n) noexcept {
    add(scratch_reuse_hits_, n);
  }
  void add_sample_alloc_bytes_saved(std::uint64_t n) noexcept {
    add(sample_alloc_bytes_saved_, n);
  }
  void add_wall_ns(std::uint64_t n) noexcept { add(wall_ns_, n); }
  void add_worker_idle_ns(std::uint64_t n) noexcept {
    add(worker_idle_ns_, n);
  }
  void set_worker_threads(std::uint64_t n) noexcept {
    worker_threads_.store(n, std::memory_order_relaxed);
  }

  [[nodiscard]] MetricsSnapshot snapshot() const noexcept;
  void reset() noexcept;

 private:
  using Counter = std::atomic<std::uint64_t>;
  static void add(Counter& counter, std::uint64_t n) noexcept {
    counter.fetch_add(n, std::memory_order_relaxed);
  }

  Counter sessions_{0};
  Counter plan_cache_hits_{0};
  Counter plan_compiles_{0};
  Counter patterns_generated_{0};
  Counter dedup_accepted_{0};
  Counter dedup_rejected_{0};
  Counter ticks_{0};
  Counter scratch_reuse_hits_{0};
  Counter sample_alloc_bytes_saved_{0};
  Counter wall_ns_{0};
  Counter worker_idle_ns_{0};
  Counter worker_threads_{0};
};

}  // namespace ptest::support
