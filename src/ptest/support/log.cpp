#include "ptest/support/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace ptest::support {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_sink_mutex;        // guards g_sink and serialises writes
Log::Sink g_sink;               // empty -> default stderr sink
}  // namespace

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

LogLevel Log::level() noexcept {
  return g_level.load(std::memory_order_relaxed);
}
void Log::set_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}
void Log::set_sink(Sink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink = std::move(sink);
}

void Log::write(LogLevel level, std::string_view message) {
  if (level < Log::level()) return;
  // Copy the sink under the lock but invoke it outside: holding the
  // mutex through user code would deadlock a sink that itself logs.
  // Consequence: a sink may run concurrently from several sessions and
  // must be internally thread-safe (fprintf below is).
  Sink sink;
  {
    std::lock_guard<std::mutex> lock(g_sink_mutex);
    sink = g_sink;
  }
  if (sink) {
    sink(level, message);
    return;
  }
  std::fprintf(stderr, "[ptest %.*s] %.*s\n",
               static_cast<int>(to_string(level).size()),
               to_string(level).data(), static_cast<int>(message.size()),
               message.data());
}

}  // namespace ptest::support
