#include "ptest/support/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>
#include <thread>

namespace ptest::support {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_sink_mutex;        // guards g_sink/g_node and serialises writes
Log::Sink g_sink;               // empty -> default stderr sink
std::string g_node;             // empty -> omitted from the prefix

char ascii_lower(char c) noexcept {
  return c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
}
}  // namespace

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

std::optional<LogLevel> parse_log_level(std::string_view text) noexcept {
  std::string lowered;
  lowered.reserve(text.size());
  for (char c : text) lowered.push_back(ascii_lower(c));
  if (lowered == "trace") return LogLevel::kTrace;
  if (lowered == "debug") return LogLevel::kDebug;
  if (lowered == "info") return LogLevel::kInfo;
  if (lowered == "warn") return LogLevel::kWarn;
  if (lowered == "error") return LogLevel::kError;
  if (lowered == "off") return LogLevel::kOff;
  return std::nullopt;
}

LogLevel Log::level() noexcept {
  // PTEST_LOG is applied exactly once, on the first threshold query; a
  // later explicit set_level() always wins.  Unparseable values are
  // ignored (the logger must not fail the process over an env typo).
  static const bool env_applied = [] {
    if (const char* env = std::getenv("PTEST_LOG")) {
      if (auto parsed = parse_log_level(env)) {
        g_level.store(*parsed, std::memory_order_relaxed);
      }
    }
    return true;
  }();
  (void)env_applied;
  return g_level.load(std::memory_order_relaxed);
}
void Log::set_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}
void Log::set_sink(Sink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink = std::move(sink);
}

void Log::set_node(std::string_view node) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_node.assign(node.data(), node.size());
}

std::string Log::node() {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  return g_node;
}

std::string Log::format_prefix(LogLevel level) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm utc{};
  gmtime_r(&seconds, &utc);

  const std::size_t tid =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  const std::string node = Log::node();

  char buffer[160];
  int written = std::snprintf(
      buffer, sizeof(buffer),
      "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ %.*s tid=%zu", utc.tm_year + 1900,
      utc.tm_mon + 1, utc.tm_mday, utc.tm_hour, utc.tm_min, utc.tm_sec,
      static_cast<int>(millis), static_cast<int>(to_string(level).size()),
      to_string(level).data(), tid);
  std::string prefix(buffer, written > 0 ? static_cast<std::size_t>(written)
                                         : std::size_t{0});
  if (!node.empty()) {
    prefix += " node=";
    prefix += node;
  }
  return prefix;
}

void Log::write(LogLevel level, std::string_view message) {
  if (level < Log::level()) return;
  // Copy the sink under the lock but invoke it outside: holding the
  // mutex through user code would deadlock a sink that itself logs.
  // Consequence: a sink may run concurrently from several sessions and
  // must be internally thread-safe (fprintf below is).
  Sink sink;
  {
    std::lock_guard<std::mutex> lock(g_sink_mutex);
    sink = g_sink;
  }
  if (sink) {
    sink(level, message);
    return;
  }
  const std::string prefix = format_prefix(level);
  std::fprintf(stderr, "[ptest %s] %.*s\n", prefix.c_str(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace ptest::support
