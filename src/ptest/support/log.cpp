#include "ptest/support/log.hpp"

#include <cstdio>

namespace ptest::support {

namespace {
LogLevel g_level = LogLevel::kWarn;
Log::Sink g_sink;  // empty -> default stderr sink
}  // namespace

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

LogLevel Log::level() noexcept { return g_level; }
void Log::set_level(LogLevel level) noexcept { g_level = level; }
void Log::set_sink(Sink sink) { g_sink = std::move(sink); }

void Log::write(LogLevel level, std::string_view message) {
  if (level < g_level) return;
  if (g_sink) {
    g_sink(level, message);
    return;
  }
  std::fprintf(stderr, "[ptest %.*s] %.*s\n",
               static_cast<int>(to_string(level).size()),
               to_string(level).data(), static_cast<int>(message.size()),
               message.data());
}

}  // namespace ptest::support
