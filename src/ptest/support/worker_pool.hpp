// A small fixed-size worker pool for sharding deterministic work.
//
// The simulation substrate itself stays single-threaded (DESIGN §5.1);
// parallelism in pTest lives strictly *between* sessions, which share no
// mutable state.  WorkerPool is the only concurrency primitive the
// library needs for that: submit closures, or shard an index space with
// parallel_for.  Index-space sharding is dynamic (an atomic cursor, no
// pre-chunking) so uneven session durations — a deadlock hit ends a
// session early, a tick-limit run is the slow tail — still balance.
//
// Determinism contract: parallel_for(count, fn) invokes fn exactly once
// for every index in [0, count), in unspecified order and thread
// placement.  Callers that need reproducible results must make fn(i)
// a pure function of i writing to slot i — the parallel campaign runner
// does exactly that and merges slots in index order afterwards.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ptest::support {

/// Resolves a jobs request to a concrete worker count: nonzero passes
/// through, 0 means one worker per hardware thread (falling back to 1
/// when the runtime cannot tell) — the same convention WorkerPool's own
/// constructor uses.  Shared by every campaign runner so the rule can
/// never drift between them.
[[nodiscard]] std::size_t resolve_jobs(std::size_t jobs);

class WorkerPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (itself falling back to 1 when the runtime cannot tell).
  explicit WorkerPool(std::size_t threads = 0);

  /// Drains outstanding work, then joins all workers.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Enqueues one task; returns immediately.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle.
  void wait_idle();

  /// Runs fn(i) once for every i in [0, count), spread across the pool,
  /// and blocks until all indices completed.  The calling thread also
  /// works, so a pool of T threads applies T+1-way parallelism.  If any
  /// invocation throws, the first exception (in completion order) is
  /// rethrown after the index space is drained.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  /// As above, but fn(participant, i) also learns which participant runs
  /// the index: the caller is participant 0, the pool's helper threads
  /// are 1..thread_count().  This is how callers keep per-thread scratch
  /// state (e.g. the campaign's per-worker coverage trackers) without
  /// locks: participant p owns scratch slot p exclusively for the whole
  /// call.  Index-to-participant assignment is dynamic and NOT
  /// deterministic — only state whose merge is order-insensitive may
  /// live in the scratch slots.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Cumulative nanoseconds workers spent parked waiting for work (the
  /// support::Metrics `worker_idle_ns` counter).  Monotone over the
  /// pool's lifetime; sample it before/after a region to attribute idle
  /// time to that region.  Time spent blocked in the final shutdown
  /// wait (destructor) is not counted.
  [[nodiscard]] std::uint64_t idle_nanos() const noexcept {
    return idle_ns_.load(std::memory_order_relaxed);
  }

  /// Tasks executed by pool workers so far (parallel_for helper drains
  /// count as one task each; the caller thread's share is not included).
  [[nodiscard]] std::uint64_t tasks_executed() const noexcept {
    return tasks_executed_.load(std::memory_order_relaxed);
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_cv_;   // workers wait for tasks
  std::condition_variable idle_cv_;   // wait_idle waits for quiescence
  std::size_t active_ = 0;
  bool stop_ = false;
  std::atomic<std::uint64_t> idle_ns_{0};
  std::atomic<std::uint64_t> tasks_executed_{0};
};

}  // namespace ptest::support
