// FNV-1a primitives — the one canonical copy of the offset basis, the
// prime, and the byte fold.  Consumers layer their own framing on top
// (pattern::pattern_hash folds raw symbol words; scenario's golden
// fingerprints add length separators), but the underlying constants and
// fold must never drift apart.
#pragma once

#include <cstdint>
#include <string_view>

namespace ptest::support {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

[[nodiscard]] constexpr std::uint64_t fnv1a_byte(std::uint64_t hash,
                                                 std::uint8_t byte) noexcept {
  hash ^= byte;
  hash *= kFnvPrime;
  return hash;
}

/// Folds `value`'s low `bytes` bytes, little-endian.
[[nodiscard]] constexpr std::uint64_t fnv1a_word(std::uint64_t hash,
                                                 std::uint64_t value,
                                                 int bytes) noexcept {
  for (int byte = 0; byte < bytes; ++byte) {
    hash = fnv1a_byte(hash, static_cast<std::uint8_t>(value >> (byte * 8)));
  }
  return hash;
}

[[nodiscard]] constexpr std::uint64_t fnv1a_bytes(
    std::uint64_t hash, std::string_view bytes) noexcept {
  for (const char c : bytes) {
    hash = fnv1a_byte(hash, static_cast<std::uint8_t>(c));
  }
  return hash;
}

}  // namespace ptest::support
