#include "ptest/support/json.hpp"

#include <cmath>
#include <cstdio>

namespace ptest::support {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;  // UTF-8 bytes pass through untouched
        }
    }
  }
  return out;
}

void JsonWriter::newline_indent() {
  if (indent_ <= 0) return;
  out_ += '\n';
  out_.append(stack_.size() * static_cast<std::size_t>(indent_), ' ');
}

void JsonWriter::prepare_for_value() {
  if (stack_.empty()) {
    if (!out_.empty()) {
      throw std::logic_error("JsonWriter: multiple top-level values");
    }
    return;
  }
  if (stack_.back() == Scope::kObject) {
    if (!key_pending_) {
      throw std::logic_error("JsonWriter: value inside object without key()");
    }
    key_pending_ = false;
    return;  // key() already handled comma + indent
  }
  if (!first_in_scope_.back()) out_ += ',';
  first_in_scope_.back() = false;
  newline_indent();
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (stack_.empty() || stack_.back() != Scope::kObject) {
    throw std::logic_error("JsonWriter: key() outside an object");
  }
  if (key_pending_) {
    throw std::logic_error("JsonWriter: key() while a key is pending");
  }
  if (!first_in_scope_.back()) out_ += ',';
  first_in_scope_.back() = false;
  newline_indent();
  out_ += '"';
  out_ += json_escape(name);
  out_ += indent_ > 0 ? "\": " : "\":";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  prepare_for_value();
  out_ += '{';
  stack_.push_back(Scope::kObject);
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Scope::kObject || key_pending_) {
    throw std::logic_error("JsonWriter: mismatched end_object()");
  }
  const bool empty = first_in_scope_.back();
  stack_.pop_back();
  first_in_scope_.pop_back();
  if (!empty) newline_indent();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  prepare_for_value();
  out_ += '[';
  stack_.push_back(Scope::kArray);
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Scope::kArray) {
    throw std::logic_error("JsonWriter: mismatched end_array()");
  }
  const bool empty = first_in_scope_.back();
  stack_.pop_back();
  first_in_scope_.pop_back();
  if (!empty) newline_indent();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  prepare_for_value();
  out_ += '"';
  out_ += json_escape(text);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  prepare_for_value();
  out_ += flag ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  if (!std::isfinite(number)) return null();
  prepare_for_value();
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", number);
  out_ += buffer;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  prepare_for_value();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  prepare_for_value();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::null() {
  prepare_for_value();
  out_ += "null";
  return *this;
}

}  // namespace ptest::support
