#include "ptest/support/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ptest::support {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;  // UTF-8 bytes pass through untouched
        }
    }
  }
  return out;
}

void JsonWriter::newline_indent() {
  if (indent_ <= 0) return;
  out_ += '\n';
  out_.append(stack_.size() * static_cast<std::size_t>(indent_), ' ');
}

void JsonWriter::prepare_for_value() {
  if (stack_.empty()) {
    if (!out_.empty()) {
      throw std::logic_error("JsonWriter: multiple top-level values");
    }
    return;
  }
  if (stack_.back() == Scope::kObject) {
    if (!key_pending_) {
      throw std::logic_error("JsonWriter: value inside object without key()");
    }
    key_pending_ = false;
    return;  // key() already handled comma + indent
  }
  if (!first_in_scope_.back()) out_ += ',';
  first_in_scope_.back() = false;
  newline_indent();
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (stack_.empty() || stack_.back() != Scope::kObject) {
    throw std::logic_error("JsonWriter: key() outside an object");
  }
  if (key_pending_) {
    throw std::logic_error("JsonWriter: key() while a key is pending");
  }
  if (!first_in_scope_.back()) out_ += ',';
  first_in_scope_.back() = false;
  newline_indent();
  out_ += '"';
  out_ += json_escape(name);
  out_ += indent_ > 0 ? "\": " : "\":";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  prepare_for_value();
  out_ += '{';
  stack_.push_back(Scope::kObject);
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Scope::kObject || key_pending_) {
    throw std::logic_error("JsonWriter: mismatched end_object()");
  }
  const bool empty = first_in_scope_.back();
  stack_.pop_back();
  first_in_scope_.pop_back();
  if (!empty) newline_indent();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  prepare_for_value();
  out_ += '[';
  stack_.push_back(Scope::kArray);
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Scope::kArray) {
    throw std::logic_error("JsonWriter: mismatched end_array()");
  }
  const bool empty = first_in_scope_.back();
  stack_.pop_back();
  first_in_scope_.pop_back();
  if (!empty) newline_indent();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  prepare_for_value();
  out_ += '"';
  out_ += json_escape(text);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  prepare_for_value();
  out_ += flag ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  if (!std::isfinite(number)) return null();
  prepare_for_value();
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", number);
  out_ += buffer;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  prepare_for_value();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  prepare_for_value();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::null() {
  prepare_for_value();
  out_ += "null";
  return *this;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* value = find(key);
  if (value == nullptr) {
    throw std::out_of_range("JsonValue: missing key '" + std::string(key) +
                            "'");
  }
  return *value;
}

namespace {

/// Recursive-descent parser over a string_view; fail() stores the first
/// error and every production backs out on it, so parse() returns either
/// a complete document or the earliest diagnostic.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue, std::string> parse() {
    JsonValue value = parse_value(0);
    skip_ws();
    if (error_.empty() && pos_ != text_.size()) {
      fail("trailing bytes after document");
    }
    if (!error_.empty()) return error_;
    return value;
  }

 private:
  /// Deep enough for every in-tree document; a bound at all keeps a
  /// malicious corpus file from overflowing the stack.
  static constexpr int kMaxDepth = 64;

  void fail(std::string reason) {
    if (error_.empty()) {
      error_ = "JSON parse error at byte " + std::to_string(pos_) + ": " +
               std::move(reason);
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const noexcept {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "'");
      return false;
    }
    ++pos_;
    return true;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  std::string parse_string() {
    std::string out;
    if (!expect('"')) return out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      const char c = text_[pos_++];
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return out;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + static_cast<std::size_t>(i)];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
              return out;
            }
          }
          pos_ += 4;
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else if (code >= 0xD800 && code < 0xE000) {
            fail("surrogate \\u escape unsupported");
            return out;
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail(std::string("bad escape '\\") + escape + "'");
          return out;
      }
    }
    expect('"');
    return out;
  }

  JsonValue parse_value(int depth) {
    JsonValue value;
    if (depth > kMaxDepth) {
      fail("nesting too deep");
      return value;
    }
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return value;
    }
    const char c = peek();
    if (c == '{') {
      value.kind = JsonValue::Kind::kObject;
      ++pos_;
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return value;
      }
      for (;;) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        if (!expect(':')) return value;
        value.object.emplace_back(std::move(key), parse_value(depth + 1));
        if (!error_.empty()) return value;
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return value;
      }
    }
    if (c == '[') {
      value.kind = JsonValue::Kind::kArray;
      ++pos_;
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return value;
      }
      for (;;) {
        value.array.push_back(parse_value(depth + 1));
        if (!error_.empty()) return value;
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return value;
      }
    }
    if (c == '"') {
      value.kind = JsonValue::Kind::kString;
      value.string = parse_string();
      return value;
    }
    if (consume_literal("true")) {
      value.kind = JsonValue::Kind::kBool;
      value.boolean = true;
      return value;
    }
    if (consume_literal("false")) {
      value.kind = JsonValue::Kind::kBool;
      value.boolean = false;
      return value;
    }
    if (consume_literal("null")) {
      value.kind = JsonValue::Kind::kNull;
      return value;
    }
    // Number: scan the strict JSON grammar first, then strtod over
    // exactly that token.  strtod alone would also accept nan, inf,
    // infinity, and hex floats, none of which are JSON.
    value.kind = JsonValue::Kind::kNumber;
    std::size_t end = pos_;
    const auto digit = [&](std::size_t i) {
      return i < text_.size() && text_[i] >= '0' && text_[i] <= '9';
    };
    if (end < text_.size() && text_[end] == '-') ++end;
    const std::size_t int_begin = end;
    while (digit(end)) ++end;
    if (end == int_begin) {
      fail("expected a value");
      return value;
    }
    if (text_[int_begin] == '0' && end - int_begin > 1) {
      fail("leading zero in number");
      return value;
    }
    if (end < text_.size() && text_[end] == '.') {
      const std::size_t frac_begin = ++end;
      while (digit(end)) ++end;
      if (end == frac_begin) {
        fail("expected digits after decimal point");
        return value;
      }
    }
    if (end < text_.size() && (text_[end] == 'e' || text_[end] == 'E')) {
      ++end;
      if (end < text_.size() && (text_[end] == '+' || text_[end] == '-')) {
        ++end;
      }
      const std::size_t exp_begin = end;
      while (digit(end)) ++end;
      if (end == exp_begin) {
        fail("expected digits in exponent");
        return value;
      }
    }
    const std::string token(text_.substr(pos_, end - pos_));
    value.number = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(value.number)) {
      // Syntactically valid but beyond double range (e.g. 1e999).
      // JsonWriter never emits non-finite numbers, so rejecting here
      // keeps every parsed number finite for consumers.
      fail("number out of range");
      return value;
    }
    pos_ = end;
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

Result<JsonValue, std::string> parse_json(std::string_view text) {
  return JsonParser(text).parse();
}

}  // namespace ptest::support
