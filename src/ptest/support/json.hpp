// Dependency-free streaming JSON writer and recursive-descent reader.
//
// The benchmark harness, the metrics surface, the CI regression gate,
// and the guided-campaign corpus all exchange machine-readable results
// (BENCH_results.json, coverage corpora); pulling in a JSON library for
// that would violate the "no external deps beyond gtest" rule, so this
// is a ~150-line writer with the three properties those consumers need:
// correct string escaping (quotes, backslashes, control characters as
// \u00XX), automatic comma/indent management for nested objects and
// arrays, and deterministic number formatting (shortest round-trip via
// %.17g, non-finite values serialized as null so the output always
// parses) — plus the matching parser (JsonValue / parse_json).  The
// parser started life as the round-trip checker in
// tests/support/json_test.cpp and was promoted here when the
// guided-campaign corpus needed to *load* what JsonWriter saved; the
// test now exercises this copy, so writer and reader can never drift.
//
// Usage:
//   JsonWriter out;
//   out.begin_object();
//   out.key("name").value("bench_all");
//   out.key("stats").begin_object();
//   out.key("median_ms").value(1.25);
//   out.end_object();
//   out.end_object();
//   std::string text = out.str();
//
// Misuse (value without a pending key inside an object, end_* mismatch)
// throws std::logic_error — a benchmark writer bug should fail loudly,
// not emit a file the CI gate silently fails to parse.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "ptest/support/result.hpp"

namespace ptest::support {

/// Escapes `text` for inclusion inside a JSON string literal (no
/// surrounding quotes).  Exposed for tests and ad-hoc formatting.
[[nodiscard]] std::string json_escape(std::string_view text);

class JsonWriter {
 public:
  /// `indent` spaces per nesting level; 0 = compact single-line output.
  explicit JsonWriter(int indent = 2) : indent_(indent) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Must be called (exactly once) before each value inside an object.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(bool flag);
  JsonWriter& value(double number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(int number) { return value(static_cast<std::int64_t>(number)); }
  JsonWriter& value(unsigned number) {
    return value(static_cast<std::uint64_t>(number));
  }
  JsonWriter& null();

  /// The document so far.  Complete (all scopes closed) iff depth() == 0.
  [[nodiscard]] const std::string& str() const noexcept { return out_; }
  [[nodiscard]] std::size_t depth() const noexcept { return stack_.size(); }

 private:
  enum class Scope : std::uint8_t { kObject, kArray };

  /// Comma/newline/indent bookkeeping shared by every value and begin_*.
  void prepare_for_value();
  void newline_indent();
  void raw(std::string_view text) { out_.append(text); }

  std::string out_;
  std::vector<Scope> stack_;
  std::vector<bool> first_in_scope_;
  bool key_pending_ = false;
  int indent_;
};

/// Parsed JSON document node.  Numbers are held as double (sufficient for
/// every consumer: corpus hashes are serialized as strings precisely
/// because 64-bit integers do not survive a double round-trip); object
/// members keep document order in a flat vector — consumers look keys up
/// through find()/at(), and duplicate keys resolve to the first entry.
struct JsonValue {
  enum class Kind : std::uint8_t {
    kNull = 0,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] bool is_null() const noexcept { return kind == Kind::kNull; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind == Kind::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind == Kind::kArray; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind == Kind::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind == Kind::kString;
  }

  /// Object member by key, or nullptr (also nullptr on non-objects).
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;
  /// Checked member lookup; throws std::out_of_range when absent.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;
};

/// Parses one complete JSON document (trailing bytes beyond whitespace are
/// an error).  Errors carry a byte offset and a short reason — corpus
/// loading surfaces them verbatim, so they must stand on their own.
/// Accepts exactly what JsonWriter emits plus standard JSON (the \uXXXX
/// escapes JsonWriter produces are ASCII; other \u codes below 0x800 are
/// decoded to UTF-8, surrogates are rejected).
[[nodiscard]] Result<JsonValue, std::string> parse_json(std::string_view text);

}  // namespace ptest::support
