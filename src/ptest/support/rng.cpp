#include "ptest/support/rng.hpp"

#include <bit>

namespace ptest::support {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) noexcept {
  // Spread the index with splitmix64's first mix multiplier (odd, so the
  // map is a bijection) before xoring into the base; the +1 keeps
  // derive_seed(b, 0) != b even for adversarial bases.
  std::uint64_t state = base ^ (0xbf58476d1ce4e5b9ULL * (index + 1));
  return splitmix64(state);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = std::rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::below: bound must be > 0");
  // Lemire's method: multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::between: lo > hi");
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

void Rng::uniform_batch(std::span<double> out) noexcept {
  // Keep the mapping in lockstep with uniform(): one next() per element,
  // same bit treatment, so batched and per-call draws are interchangeable.
  for (double& value : out) {
    value = static_cast<double>(next() >> 11) * 0x1.0p-53;
  }
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0)
      throw std::invalid_argument("Rng::weighted_index: negative weight");
    total += w;
  }
  if (total <= 0.0)
    throw std::invalid_argument("Rng::weighted_index: all weights zero");
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  // Floating-point slack: fall back to the last positive weight.
  for (std::size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return weights.size() - 1;
}

Rng Rng::fork() noexcept { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace ptest::support
