#include "ptest/support/worker_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>

namespace ptest::support {

std::size_t resolve_jobs(std::size_t jobs) {
  if (jobs != 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

WorkerPool::WorkerPool(std::size_t threads) {
  threads = resolve_jobs(threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void WorkerPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void WorkerPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void WorkerPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      // Idle accounting: the span parked in the wait below is the
      // worker's idle time.  The clock starts after the lock is held so
      // mutex contention with a non-empty queue doesn't count as idle;
      // waits that end in shutdown are discarded — the pool is being
      // torn down, nobody is starved of that worker.
      std::unique_lock<std::mutex> lock(mutex_);
      const auto wait_start = std::chrono::steady_clock::now();
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      idle_ns_.fetch_add(
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - wait_start)
                  .count()),
          std::memory_order_relaxed);
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void WorkerPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for(count,
               [&fn](std::size_t /*participant*/, std::size_t i) { fn(i); });
}

void WorkerPool::parallel_for(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return;

  // Shared dynamic cursor; each participant claims the next unclaimed
  // index until the space is exhausted.  The functor lives here too:
  // a queued helper task can still run after parallel_for returned
  // (when the caller drained every index itself), so the closure must
  // own everything it might touch.
  struct Shared {
    explicit Shared(std::function<void(std::size_t, std::size_t)> f,
                    std::size_t n)
        : fn(std::move(f)), total(n) {}
    std::function<void(std::size_t, std::size_t)> fn;
    std::size_t total;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::exception_ptr error;
    std::mutex error_mutex;
    std::mutex done_mutex;
    std::condition_variable done_cv;
  };
  auto shared = std::make_shared<Shared>(fn, count);
  const std::size_t total = count;

  auto drain = [shared](std::size_t participant) {
    for (;;) {
      const std::size_t i = shared->next.fetch_add(1);
      if (i >= shared->total) return;
      try {
        shared->fn(participant, i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(shared->error_mutex);
        if (!shared->error) shared->error = std::current_exception();
      }
      const std::size_t finished = shared->done.fetch_add(1) + 1;
      if (finished == shared->total) {
        std::lock_guard<std::mutex> lock(shared->done_mutex);
        shared->done_cv.notify_all();
      }
    }
  };

  const std::size_t helpers =
      count > 1 ? std::min(workers_.size(), count - 1) : 0;
  for (std::size_t i = 0; i < helpers; ++i) {
    submit([drain, participant = i + 1] { drain(participant); });
  }

  // The caller participates too (as participant 0), then blocks until
  // stragglers finish.
  drain(0);
  {
    std::unique_lock<std::mutex> lock(shared->done_mutex);
    shared->done_cv.wait(lock,
                         [&] { return shared->done.load() == total; });
  }
  if (shared->error) std::rethrow_exception(shared->error);
}

}  // namespace ptest::support
