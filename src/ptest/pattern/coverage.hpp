// PFA coverage metrics.
//
// The paper's future work notes "the fault coverage of pTest also does not
// be verified" (§V).  As a proxy that is measurable without ground-truth
// faults, this module tracks structural coverage of the test model: which
// PFA states, transitions and symbol n-grams the generated patterns have
// exercised.  bench_fault_coverage correlates these with seeded-bug
// detection rates.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "ptest/pattern/pattern.hpp"
#include "ptest/pfa/pfa.hpp"

namespace ptest::pattern {

struct CoverageReport {
  std::size_t states_total = 0;
  std::size_t states_covered = 0;
  std::size_t transitions_total = 0;
  std::size_t transitions_covered = 0;
  std::size_t ngrams_observed = 0;  // distinct symbol n-grams seen
  double state_coverage = 0.0;       // covered / total
  double transition_coverage = 0.0;

  [[nodiscard]] std::string to_string() const;
};

/// The full covered sets of one tracker, detached from its PFA — the
/// mergeable/serializable form a campaign shard ships to the fleet
/// coordinator (wire.cpp) and the per-worker trackers fold through at
/// the round barrier.  All three sets are plain unions under merge(),
/// which makes merging commutative, associative and idempotent; the
/// totals are copied from the source PFA so report() works without it.
struct CoverageState {
  std::size_t states_total = 0;
  std::size_t transitions_total = 0;
  std::set<std::uint32_t> states;
  std::set<std::pair<std::uint32_t, pfa::SymbolId>> transitions;
  std::set<std::vector<pfa::SymbolId>> ngrams;

  /// Set-union fold.  Totals must describe the same automaton; merging
  /// states observed against different skeletons is a caller bug, so
  /// mismatching totals resolve to the larger value rather than lying
  /// silently.
  void merge(const CoverageState& other);

  /// Same derivation CoverageTracker::report() uses, off the snapshot.
  [[nodiscard]] CoverageReport report() const;

  [[nodiscard]] bool operator==(const CoverageState&) const = default;
};

class CoverageTracker {
 public:
  /// `ngram` is the window length for n-gram accounting (>= 1).
  explicit CoverageTracker(const pfa::Pfa& pfa, std::size_t ngram = 3);

  /// Replays `pattern` through the PFA skeleton and marks what it visits.
  /// Symbols that leave the language prefix set stop the replay (patterns
  /// from the generator never do).
  void observe(const TestPattern& pattern);

  /// Marks one (state, symbol) transition — and its endpoint states — as
  /// covered without replaying a pattern.  Pairs that name no edge of
  /// this tracker's PFA are ignored (a persisted corpus may predate a
  /// plan change).  This is how guided campaigns re-seed a fresh
  /// tracker from an accumulated CoverageCorpus: the corpus stores
  /// covered pairs, a new epoch's tracker starts from them.
  void mark_transition(std::uint32_t state, pfa::SymbolId symbol);

  [[nodiscard]] CoverageReport report() const;

  /// Snapshot of everything seen so far, detached from the PFA.
  [[nodiscard]] CoverageState state() const;

  /// Folds another tracker's (or a deserialized shard's) covered sets
  /// into this one.  No replay, no PFA validation: the state must come
  /// from a tracker over the same automaton — campaign merge phases and
  /// the fleet coordinator guarantee that by construction.
  void absorb(const CoverageState& other);

  /// Transitions never exercised, as (state, symbol) pairs.
  [[nodiscard]] std::vector<std::pair<std::uint32_t, pfa::SymbolId>>
  uncovered_transitions() const;

  /// Transitions exercised so far (corpus-fold surface; sorted).
  [[nodiscard]] const std::set<std::pair<std::uint32_t, pfa::SymbolId>>&
  transitions_seen() const noexcept {
    return transitions_seen_;
  }

 private:
  const pfa::Pfa* pfa_;
  std::size_t ngram_;
  std::set<std::uint32_t> states_seen_;
  std::set<std::pair<std::uint32_t, pfa::SymbolId>> transitions_seen_;
  std::set<std::vector<pfa::SymbolId>> ngrams_seen_;
};

}  // namespace ptest::pattern
