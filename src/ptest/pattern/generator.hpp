// PatternGenerator — Algorithm 2 of the paper.
//
// Wraps a Pfa and samples TestPatterns: PatternGenerator(RE, PD, s) in the
// paper becomes construction from (regex, distribution spec) and
// generate() calls.  The generator owns a forked Rng stream so pattern
// sampling is independent of other random consumers in a session.
#pragma once

#include <vector>

#include "ptest/pattern/pattern.hpp"
#include "ptest/pfa/pfa.hpp"
#include "ptest/support/rng.hpp"

namespace ptest::pattern {

struct GeneratorOptions {
  /// The paper's `s`: target pattern size in services.
  std::size_t size = 8;
  /// Finish each pattern at an accepting state (legal lifecycle).
  bool complete_to_accept = true;
  /// Restart lifecycles until `size` is reached (stress churn mode).
  bool restart_at_accept = false;
  std::size_t max_size = 1024;
};

class PatternGenerator {
 public:
  PatternGenerator(const pfa::Pfa& pfa, GeneratorOptions options,
                   support::Rng rng)
      : pfa_(&pfa), options_(options), rng_(rng) {}

  /// Samples one pattern through the caller's scratch (the primary hot
  /// path: the walk buffers are reused, only the returned pattern's own
  /// storage is allocated).
  [[nodiscard]] TestPattern generate(pfa::WalkScratch& scratch);

  /// Samples `count` patterns through the caller's scratch (the paper's
  /// n-iteration loop in Algorithm 1, lines 1-3).
  [[nodiscard]] std::vector<TestPattern> generate(std::size_t count,
                                                  pfa::WalkScratch& scratch);

  /// Samples one pattern.  Thin wrapper allocating a throwaway scratch
  /// per call — prefer generate(scratch) on hot paths.
  [[nodiscard]] TestPattern generate();

  /// Samples `count` patterns via a call-local scratch (thin wrapper;
  /// prefer the scratch overload on hot paths).
  [[nodiscard]] std::vector<TestPattern> generate(std::size_t count);

  [[nodiscard]] const pfa::Pfa& pfa() const noexcept { return *pfa_; }
  [[nodiscard]] const GeneratorOptions& options() const noexcept {
    return options_;
  }

 private:
  const pfa::Pfa* pfa_;
  GeneratorOptions options_;
  support::Rng rng_;
};

}  // namespace ptest::pattern
