#include "ptest/pattern/dedup.hpp"

namespace ptest::pattern {

std::uint64_t pattern_hash(
    const std::vector<pfa::SymbolId>& symbols) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const pfa::SymbolId symbol : symbols) {
    for (int shift = 0; shift < 32; shift += 8) {
      hash ^= (symbol >> shift) & 0xffU;
      hash *= 0x100000001b3ULL;
    }
  }
  return hash;
}

bool PatternDeduper::insert(const TestPattern& pattern) {
  const auto [it, inserted] = hashes_.insert(pattern_hash(pattern.symbols));
  if (!inserted) ++rejected_;
  return inserted;
}

bool PatternDeduper::seen(const TestPattern& pattern) const {
  return hashes_.contains(pattern_hash(pattern.symbols));
}

void PatternDeduper::clear() {
  hashes_.clear();
  rejected_ = 0;
}

std::vector<TestPattern> PatternDeduper::filter(
    std::vector<TestPattern> patterns) {
  std::vector<TestPattern> unique;
  unique.reserve(patterns.size());
  for (TestPattern& pattern : patterns) {
    if (insert(pattern)) unique.push_back(std::move(pattern));
  }
  return unique;
}

}  // namespace ptest::pattern
