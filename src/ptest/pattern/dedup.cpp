#include "ptest/pattern/dedup.hpp"

#include <algorithm>

#include "ptest/support/fnv.hpp"

namespace ptest::pattern {

std::uint64_t pattern_hash(
    const std::vector<pfa::SymbolId>& symbols) noexcept {
  std::uint64_t hash = support::kFnvOffset;
  for (const pfa::SymbolId symbol : symbols) {
    hash = support::fnv1a_word(hash, symbol, 4);
  }
  return hash;
}

bool PatternDeduper::insert(const TestPattern& pattern) {
  std::vector<std::vector<pfa::SymbolId>>& bucket =
      buckets_[hash_(pattern.symbols)];
  if (std::find(bucket.begin(), bucket.end(), pattern.symbols) !=
      bucket.end()) {
    ++rejected_;
    return false;
  }
  bucket.push_back(pattern.symbols);
  ++unique_;
  return true;
}

bool PatternDeduper::seen(const TestPattern& pattern) const {
  const auto it = buckets_.find(hash_(pattern.symbols));
  if (it == buckets_.end()) return false;
  return std::find(it->second.begin(), it->second.end(), pattern.symbols) !=
         it->second.end();
}

void PatternDeduper::clear() {
  buckets_.clear();
  unique_ = 0;
  rejected_ = 0;
}

std::vector<TestPattern> PatternDeduper::filter(
    std::vector<TestPattern> patterns) {
  std::vector<TestPattern> unique;
  unique.reserve(patterns.size());
  for (TestPattern& pattern : patterns) {
    if (insert(pattern)) unique.push_back(std::move(pattern));
  }
  return unique;
}

}  // namespace ptest::pattern
