// PatternMerger — the `op`-driven interleaver of Algorithm 1.
//
// "The pattern merger extracts subsequences from each test pattern ... and
// then systematically merges all subsequences into one final test pattern.
// It is similar to a process scheduler." (§II-B).  The `op` parameter
// "indicates the pattern merger to produce the specific test pattern that
// can help the bug detector find out the specific bug such as slave system
// crashes or concurrency faults" (§III-B).
//
// Merge operators:
//   kSequential — concatenate patterns (no interleaving; the functional-
//                 testing strawman).
//   kRoundRobin — one service from each live pattern per round (fair
//                 scheduler model).
//   kRandom     — repeatedly pick a random live pattern (ConTest-flavoured
//                 schedule noise at the command level).
//   kCyclic     — rotate chunks that end right after a suspend (TS) /
//                 blocking-relevant service; this is the operator case
//                 study 2 uses to "force these tasks to complete several
//                 sets of cyclic execution sequences" and expose deadlock.
//   kShuffle    — random linear extension: a uniformly random interleaving
//                 that preserves each pattern's order.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "ptest/pattern/pattern.hpp"
#include "ptest/pfa/alphabet.hpp"
#include "ptest/support/rng.hpp"

namespace ptest::pattern {

enum class MergeOp : std::uint8_t {
  kSequential = 0,
  kRoundRobin,
  kRandom,
  kCyclic,
  kShuffle,
};

[[nodiscard]] const char* to_string(MergeOp op) noexcept;
[[nodiscard]] std::optional<MergeOp> merge_op_from_string(
    std::string_view name) noexcept;

struct MergerOptions {
  MergeOp op = MergeOp::kRoundRobin;
  /// For kCyclic: symbols that end a chunk — the scheduling boundaries the
  /// rotation aligns on.  Typically {TS, TR}: breaking after *suspend*
  /// parks every task in ring order, and breaking after *resume* makes the
  /// resumes a full rotation of their own, so every task is back in play
  /// before any task's cleanup (TD/TY) runs — the "several sets of cyclic
  /// execution sequences" of case study 2.  Empty = chunks bounded only by
  /// max_chunk (degenerates toward round robin).
  std::vector<pfa::SymbolId> cyclic_break_symbols;
  /// For kCyclic: upper bound on a chunk when no break symbol appears.
  /// 0 = unbounded — a chunk runs until a break symbol or the pattern's
  /// end (with no break symbols that degenerates to kSequential).
  std::size_t max_chunk = 8;
};

class PatternMerger {
 public:
  PatternMerger(MergerOptions options, support::Rng rng)
      : options_(options), rng_(rng) {}

  /// Merges `patterns` into one interleaved pattern; slot i corresponds to
  /// patterns[i].
  [[nodiscard]] MergedPattern merge(const std::vector<TestPattern>& patterns);

  [[nodiscard]] const MergerOptions& options() const noexcept {
    return options_;
  }

  /// Enumerates *all* interleavings of the patterns' orders, up to `limit`
  /// results (CHESS-style systematic exploration uses this; the count
  /// grows multinomially, so the limit matters).
  [[nodiscard]] static std::vector<MergedPattern> enumerate_interleavings(
      const std::vector<TestPattern>& patterns, std::size_t limit);

 private:
  MergedPattern merge_sequential(const std::vector<TestPattern>& patterns);
  MergedPattern merge_round_robin(const std::vector<TestPattern>& patterns);
  MergedPattern merge_random(const std::vector<TestPattern>& patterns);
  MergedPattern merge_cyclic(const std::vector<TestPattern>& patterns);
  MergedPattern merge_shuffle(const std::vector<TestPattern>& patterns);

  MergerOptions options_;
  support::Rng rng_;
};

}  // namespace ptest::pattern
