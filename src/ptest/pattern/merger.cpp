#include "ptest/pattern/merger.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <numeric>

namespace ptest::pattern {

const char* to_string(MergeOp op) noexcept {
  switch (op) {
    case MergeOp::kSequential: return "sequential";
    case MergeOp::kRoundRobin: return "round-robin";
    case MergeOp::kRandom: return "random";
    case MergeOp::kCyclic: return "cyclic";
    case MergeOp::kShuffle: return "shuffle";
  }
  return "?";
}

std::optional<MergeOp> merge_op_from_string(std::string_view name) noexcept {
  if (name == "sequential") return MergeOp::kSequential;
  if (name == "round-robin") return MergeOp::kRoundRobin;
  if (name == "random") return MergeOp::kRandom;
  if (name == "cyclic") return MergeOp::kCyclic;
  if (name == "shuffle") return MergeOp::kShuffle;
  return std::nullopt;
}

MergedPattern PatternMerger::merge(const std::vector<TestPattern>& patterns) {
  switch (options_.op) {
    case MergeOp::kSequential: return merge_sequential(patterns);
    case MergeOp::kRoundRobin: return merge_round_robin(patterns);
    case MergeOp::kRandom: return merge_random(patterns);
    case MergeOp::kCyclic: return merge_cyclic(patterns);
    case MergeOp::kShuffle: return merge_shuffle(patterns);
  }
  return {};
}

MergedPattern PatternMerger::merge_sequential(
    const std::vector<TestPattern>& patterns) {
  MergedPattern merged;
  for (SlotIndex slot = 0; slot < patterns.size(); ++slot) {
    for (const pfa::SymbolId symbol : patterns[slot].symbols) {
      merged.elements.push_back({slot, symbol});
    }
  }
  return merged;
}

MergedPattern PatternMerger::merge_round_robin(
    const std::vector<TestPattern>& patterns) {
  MergedPattern merged;
  std::vector<std::size_t> cursor(patterns.size(), 0);
  bool emitted = true;
  while (emitted) {
    emitted = false;
    for (SlotIndex slot = 0; slot < patterns.size(); ++slot) {
      if (cursor[slot] < patterns[slot].symbols.size()) {
        merged.elements.push_back(
            {slot, patterns[slot].symbols[cursor[slot]++]});
        emitted = true;
      }
    }
  }
  return merged;
}

MergedPattern PatternMerger::merge_random(
    const std::vector<TestPattern>& patterns) {
  MergedPattern merged;
  std::vector<std::size_t> cursor(patterns.size(), 0);
  std::vector<SlotIndex> live;
  for (SlotIndex slot = 0; slot < patterns.size(); ++slot) {
    if (!patterns[slot].symbols.empty()) live.push_back(slot);
  }
  while (!live.empty()) {
    const std::size_t pick = static_cast<std::size_t>(rng_.below(live.size()));
    const SlotIndex slot = live[pick];
    merged.elements.push_back({slot, patterns[slot].symbols[cursor[slot]++]});
    if (cursor[slot] == patterns[slot].symbols.size()) {
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
  return merged;
}

MergedPattern PatternMerger::merge_cyclic(
    const std::vector<TestPattern>& patterns) {
  // Rotate across slots, each turn emitting a chunk that runs up to and
  // including the break symbol (TS by convention).  Round k thus suspends
  // every task in ring order before any of them is resumed in round k+1 —
  // the cyclic execution sequences of case study 2.
  MergedPattern merged;
  std::vector<std::size_t> cursor(patterns.size(), 0);
  // max_chunk == 0 means "unbounded": chunks end only at a break symbol
  // (or pattern end).  The pre-fix code treated 0 as "take nothing" and
  // silently emitted an empty merge, dropping every symbol.
  const std::size_t chunk_limit =
      options_.max_chunk == 0 ? std::numeric_limits<std::size_t>::max()
                              : options_.max_chunk;
  bool emitted = true;
  while (emitted) {
    emitted = false;
    for (SlotIndex slot = 0; slot < patterns.size(); ++slot) {
      std::size_t taken = 0;
      while (cursor[slot] < patterns[slot].symbols.size() &&
             taken < chunk_limit) {
        const pfa::SymbolId symbol = patterns[slot].symbols[cursor[slot]++];
        merged.elements.push_back({slot, symbol});
        ++taken;
        emitted = true;
        if (std::find(options_.cyclic_break_symbols.begin(),
                      options_.cyclic_break_symbols.end(), symbol) !=
            options_.cyclic_break_symbols.end()) {
          break;
        }
      }
    }
  }
  return merged;
}

MergedPattern PatternMerger::merge_shuffle(
    const std::vector<TestPattern>& patterns) {
  // Uniform random linear extension: put each pattern's slot id once per
  // symbol into a deck, shuffle the deck, then deal symbols in per-slot
  // order.
  std::vector<SlotIndex> deck;
  for (SlotIndex slot = 0; slot < patterns.size(); ++slot) {
    deck.insert(deck.end(), patterns[slot].symbols.size(), slot);
  }
  rng_.shuffle(deck);
  MergedPattern merged;
  std::vector<std::size_t> cursor(patterns.size(), 0);
  for (const SlotIndex slot : deck) {
    merged.elements.push_back({slot, patterns[slot].symbols[cursor[slot]++]});
  }
  return merged;
}

std::vector<MergedPattern> PatternMerger::enumerate_interleavings(
    const std::vector<TestPattern>& patterns, std::size_t limit) {
  std::vector<MergedPattern> results;
  std::vector<std::size_t> cursor(patterns.size(), 0);
  MergedPattern current;
  const std::function<void()> recurse = [&] {
    if (results.size() >= limit) return;
    bool any = false;
    for (SlotIndex slot = 0; slot < patterns.size(); ++slot) {
      if (cursor[slot] >= patterns[slot].symbols.size()) continue;
      any = true;
      current.elements.push_back({slot, patterns[slot].symbols[cursor[slot]]});
      ++cursor[slot];
      recurse();
      --cursor[slot];
      current.elements.pop_back();
      if (results.size() >= limit) return;
    }
    if (!any) results.push_back(current);
  };
  recurse();
  return results;
}

}  // namespace ptest::pattern
