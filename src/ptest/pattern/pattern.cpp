#include "ptest/pattern/pattern.hpp"

namespace ptest::pattern {

std::vector<pfa::SymbolId> MergedPattern::project(SlotIndex slot) const {
  std::vector<pfa::SymbolId> out;
  for (const MergedElement& e : elements) {
    if (e.slot == slot) out.push_back(e.symbol);
  }
  return out;
}

std::string MergedPattern::render(const pfa::Alphabet& alphabet) const {
  std::string out;
  for (std::size_t i = 0; i < elements.size(); ++i) {
    if (i != 0) out += ' ';
    out += std::to_string(elements[i].slot);
    out += ':';
    out += alphabet.name(elements[i].symbol);
  }
  return out;
}

}  // namespace ptest::pattern
