#include "ptest/pattern/coverage.hpp"

#include <algorithm>
#include <sstream>

namespace ptest::pattern {

std::string CoverageReport::to_string() const {
  std::ostringstream out;
  out << "states " << states_covered << "/" << states_total
      << ", transitions " << transitions_covered << "/" << transitions_total
      << ", distinct n-grams " << ngrams_observed;
  return out.str();
}

void CoverageState::merge(const CoverageState& other) {
  states_total = std::max(states_total, other.states_total);
  transitions_total = std::max(transitions_total, other.transitions_total);
  states.insert(other.states.begin(), other.states.end());
  transitions.insert(other.transitions.begin(), other.transitions.end());
  ngrams.insert(other.ngrams.begin(), other.ngrams.end());
}

CoverageReport CoverageState::report() const {
  CoverageReport report;
  report.states_total = states_total;
  report.states_covered = states.size();
  report.transitions_total = transitions_total;
  report.transitions_covered = transitions.size();
  report.ngrams_observed = ngrams.size();
  report.state_coverage =
      report.states_total == 0
          ? 0.0
          : static_cast<double>(report.states_covered) /
                static_cast<double>(report.states_total);
  report.transition_coverage =
      report.transitions_total == 0
          ? 0.0
          : static_cast<double>(report.transitions_covered) /
                static_cast<double>(report.transitions_total);
  return report;
}

CoverageTracker::CoverageTracker(const pfa::Pfa& pfa, std::size_t ngram)
    : pfa_(&pfa), ngram_(ngram == 0 ? 1 : ngram) {}

void CoverageTracker::observe(const TestPattern& pattern) {
  std::uint32_t state = pfa_->start();
  states_seen_.insert(state);
  for (std::size_t i = 0; i < pattern.symbols.size(); ++i) {
    const pfa::SymbolId symbol = pattern.symbols[i];
    const auto& transitions = pfa_->states()[state].transitions;
    const pfa::PfaTransition* match = nullptr;
    for (const auto& t : transitions) {
      if (t.symbol == symbol) {
        match = &t;
        break;
      }
    }
    if (match == nullptr) {
      // Restart-at-accept patterns hop back to the start between
      // lifecycles; try from the start state before giving up.
      const auto& start_transitions = pfa_->states()[pfa_->start()].transitions;
      for (const auto& t : start_transitions) {
        if (t.symbol == symbol) {
          transitions_seen_.insert({pfa_->start(), symbol});
          match = &t;
          break;
        }
      }
      if (match == nullptr) return;  // pattern leaves the language
    } else {
      transitions_seen_.insert({state, symbol});
    }
    state = match->target;
    states_seen_.insert(state);
    if (i + 1 >= ngram_) {
      ngrams_seen_.insert(std::vector<pfa::SymbolId>(
          pattern.symbols.begin() + static_cast<std::ptrdiff_t>(i + 1 - ngram_),
          pattern.symbols.begin() + static_cast<std::ptrdiff_t>(i + 1)));
    }
  }
}

CoverageReport CoverageTracker::report() const {
  CoverageReport report;
  report.states_total = pfa_->states().size();
  report.states_covered = states_seen_.size();
  for (const auto& state : pfa_->states()) {
    report.transitions_total += state.transitions.size();
  }
  report.transitions_covered = transitions_seen_.size();
  report.ngrams_observed = ngrams_seen_.size();
  report.state_coverage =
      report.states_total == 0
          ? 0.0
          : static_cast<double>(report.states_covered) /
                static_cast<double>(report.states_total);
  report.transition_coverage =
      report.transitions_total == 0
          ? 0.0
          : static_cast<double>(report.transitions_covered) /
                static_cast<double>(report.transitions_total);
  return report;
}

void CoverageTracker::mark_transition(std::uint32_t state,
                                      pfa::SymbolId symbol) {
  if (state >= pfa_->states().size()) return;
  for (const auto& t : pfa_->states()[state].transitions) {
    if (t.symbol != symbol) continue;
    transitions_seen_.insert({state, symbol});
    states_seen_.insert(state);
    states_seen_.insert(t.target);
    return;
  }
}

CoverageState CoverageTracker::state() const {
  CoverageState snapshot;
  snapshot.states_total = pfa_->states().size();
  for (const auto& state : pfa_->states()) {
    snapshot.transitions_total += state.transitions.size();
  }
  snapshot.states = states_seen_;
  snapshot.transitions = transitions_seen_;
  snapshot.ngrams = ngrams_seen_;
  return snapshot;
}

void CoverageTracker::absorb(const CoverageState& other) {
  states_seen_.insert(other.states.begin(), other.states.end());
  transitions_seen_.insert(other.transitions.begin(),
                           other.transitions.end());
  ngrams_seen_.insert(other.ngrams.begin(), other.ngrams.end());
}

std::vector<std::pair<std::uint32_t, pfa::SymbolId>>
CoverageTracker::uncovered_transitions() const {
  std::vector<std::pair<std::uint32_t, pfa::SymbolId>> out;
  for (std::uint32_t state = 0; state < pfa_->states().size(); ++state) {
    for (const auto& t : pfa_->states()[state].transitions) {
      if (!transitions_seen_.contains({state, t.symbol})) {
        out.emplace_back(state, t.symbol);
      }
    }
  }
  return out;
}

}  // namespace ptest::pattern
