// Duplicate-pattern suppression.
//
// The paper's future work: "pTest currently does not consider the problems
// of that the replicated test patterns can reduce the effectiveness of
// pTest" (§V).  This module implements that extension: a content hash over
// the symbol sequence filters replicas so the committer spends its command
// budget on distinct behaviours.  bench_ablation_dedup measures the
// effect.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "ptest/pattern/pattern.hpp"

namespace ptest::pattern {

/// FNV-1a over the symbol sequence.
[[nodiscard]] std::uint64_t pattern_hash(
    const std::vector<pfa::SymbolId>& symbols) noexcept;

class PatternDeduper {
 public:
  /// True if `pattern` is new (and records it); false for a replica.
  bool insert(const TestPattern& pattern);

  [[nodiscard]] bool seen(const TestPattern& pattern) const;
  [[nodiscard]] std::size_t unique_count() const noexcept {
    return hashes_.size();
  }
  [[nodiscard]] std::uint64_t rejected_count() const noexcept {
    return rejected_;
  }
  void clear();

  /// Filters a batch, keeping first occurrences in order.
  [[nodiscard]] std::vector<TestPattern> filter(
      std::vector<TestPattern> patterns);

 private:
  std::unordered_set<std::uint64_t> hashes_;
  std::uint64_t rejected_ = 0;
};

}  // namespace ptest::pattern
