// Duplicate-pattern suppression.
//
// The paper's future work: "pTest currently does not consider the problems
// of that the replicated test patterns can reduce the effectiveness of
// pTest" (§V).  This module implements that extension: a content hash over
// the symbol sequence buckets candidates, and an exact symbol-sequence
// comparison within the bucket decides replica vs. new — so a 64-bit hash
// collision can never silently reject a genuinely new pattern.
// bench_ablation_dedup measures the effect.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ptest/pattern/pattern.hpp"

namespace ptest::pattern {

/// FNV-1a over the symbol sequence.
[[nodiscard]] std::uint64_t pattern_hash(
    const std::vector<pfa::SymbolId>& symbols) noexcept;

class PatternDeduper {
 public:
  /// Hash used to bucket sequences.  Injectable so tests can force
  /// collisions; equality is always decided by comparing the sequences.
  using HashFn = std::uint64_t (*)(const std::vector<pfa::SymbolId>&);

  explicit PatternDeduper(HashFn hash = &pattern_hash) noexcept
      : hash_(hash) {}

  /// True if `pattern` is new (and records it); false for a replica.
  bool insert(const TestPattern& pattern);

  [[nodiscard]] bool seen(const TestPattern& pattern) const;
  [[nodiscard]] std::size_t unique_count() const noexcept { return unique_; }
  [[nodiscard]] std::uint64_t rejected_count() const noexcept {
    return rejected_;
  }
  void clear();

  /// Filters a batch, keeping first occurrences in order.
  [[nodiscard]] std::vector<TestPattern> filter(
      std::vector<TestPattern> patterns);

 private:
  HashFn hash_;
  /// hash -> all distinct sequences sharing it (almost always one).
  std::unordered_map<std::uint64_t, std::vector<std::vector<pfa::SymbolId>>>
      buckets_;
  std::size_t unique_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace ptest::pattern
