// Test-pattern value types.
//
// A TestPattern is one task's service sequence sampled from the PFA
// (Algorithm 2); a MergedPattern is the interleaving of n of them produced
// by the pattern merger (Algorithm 1) — each element names the slot
// (which concurrent task) and the service symbol to issue next.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ptest/pfa/alphabet.hpp"

namespace ptest::pattern {

/// Index of a concurrent task under test (0 .. n-1), not a pCore slot id;
/// the committer maps slots to live pCore tasks at runtime.
using SlotIndex = std::uint32_t;

struct TestPattern {
  std::vector<pfa::SymbolId> symbols;
  /// PFA state trace (diagnostics; states.size() >= symbols.size()).
  std::vector<std::uint32_t> states;
  /// Probability of the sampled walk.
  double probability = 1.0;

  [[nodiscard]] bool empty() const noexcept { return symbols.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return symbols.size(); }
};

struct MergedElement {
  SlotIndex slot = 0;
  pfa::SymbolId symbol = 0;

  friend bool operator==(const MergedElement&,
                         const MergedElement&) = default;
};

struct MergedPattern {
  std::vector<MergedElement> elements;

  [[nodiscard]] std::size_t size() const noexcept { return elements.size(); }
  [[nodiscard]] bool empty() const noexcept { return elements.empty(); }

  /// Per-slot projection (recovers the original pattern order).
  [[nodiscard]] std::vector<pfa::SymbolId> project(SlotIndex slot) const;

  /// "slot:SYM slot:SYM ..." rendering for reports.
  [[nodiscard]] std::string render(const pfa::Alphabet& alphabet) const;
};

}  // namespace ptest::pattern
