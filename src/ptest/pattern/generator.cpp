#include "ptest/pattern/generator.hpp"

namespace ptest::pattern {

TestPattern PatternGenerator::generate(pfa::WalkScratch& scratch) {
  pfa::WalkOptions walk_options;
  walk_options.size = options_.size;
  walk_options.complete_to_accept = options_.complete_to_accept;
  walk_options.restart_at_accept = options_.restart_at_accept;
  walk_options.max_size = options_.max_size;
  const pfa::Walk& walk = pfa_->sample_into(scratch, rng_, walk_options);
  TestPattern pattern;
  pattern.symbols = walk.symbols;
  pattern.states = walk.states;
  pattern.probability = walk.probability;
  return pattern;
}

std::vector<TestPattern> PatternGenerator::generate(
    std::size_t count, pfa::WalkScratch& scratch) {
  std::vector<TestPattern> patterns;
  patterns.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    patterns.push_back(generate(scratch));
  }
  return patterns;
}

TestPattern PatternGenerator::generate() {
  pfa::WalkScratch scratch;
  return generate(scratch);
}

std::vector<TestPattern> PatternGenerator::generate(std::size_t count) {
  pfa::WalkScratch scratch;
  return generate(count, scratch);
}

}  // namespace ptest::pattern
