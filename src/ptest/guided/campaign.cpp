#include "ptest/guided/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "ptest/obs/trace.hpp"
#include "ptest/pfa/estimator.hpp"
#include "ptest/scenario/golden.hpp"
#include "ptest/scenario/registry.hpp"
#include "ptest/support/rng.hpp"
#include "ptest/support/worker_pool.hpp"

namespace ptest::guided {

namespace {

double mean(const std::vector<double>& values, std::size_t begin,
            std::size_t end) {
  double total = 0.0;
  for (std::size_t i = begin; i < end; ++i) total += values[i];
  return end == begin ? 0.0 : total / static_cast<double>(end - begin);
}

}  // namespace

const char* to_string(StopReason reason) noexcept {
  switch (reason) {
    case StopReason::kBugFound: return "bug-found";
    case StopReason::kEpochBudget: return "epoch-budget";
    case StopReason::kCoveragePlateau: return "coverage-plateau";
  }
  return "?";
}

bool coverage_plateaued(const std::vector<double>& gains, std::size_t window,
                        double epsilon) {
  if (window == 0 || gains.size() < window) return false;
  const std::size_t n = gains.size();
  // Direct rule: the most recent `window` gains are all below epsilon —
  // catches monotone decay with no sharp change anywhere.
  bool flat_tail = true;
  for (std::size_t i = n - window; i < n; ++i) {
    flat_tail &= gains[i] < epsilon;
  }
  if (flat_tail) return true;
  // Offline changepoint localization over the whole series (the spirit
  // of Hore & Ramdas's conformal changepoint localization, reduced to
  // its CUSUM core): pick the split tau maximizing the scaled mean-shift
  // statistic, and declare a plateau when the located post-change
  // segment is at least `window` long with mean gain below epsilon.
  std::size_t best_tau = 0;
  double best_stat = -1.0;
  for (std::size_t tau = 1; tau < n; ++tau) {
    const double stat =
        std::sqrt(static_cast<double>(tau) * static_cast<double>(n - tau) /
                  static_cast<double>(n)) *
        std::abs(mean(gains, 0, tau) - mean(gains, tau, n));
    if (stat > best_stat) {
      best_stat = stat;
      best_tau = tau;
    }
  }
  return best_tau != 0 && n - best_tau >= window &&
         mean(gains, best_tau, n) < epsilon;
}

GuidedCampaign::GuidedCampaign(core::PtestConfig config,
                               core::WorkloadSetup setup,
                               GuidedOptions options, CoverageCorpus corpus)
    : config_(std::move(config)),
      setup_(std::move(setup)),
      options_(std::move(options)),
      corpus_(std::move(corpus)) {
  if (options_.max_epochs == 0) {
    throw std::invalid_argument("GuidedCampaign: max_epochs must be >= 1");
  }
  if (options_.sessions_per_epoch == 0) {
    throw std::invalid_argument(
        "GuidedCampaign: sessions_per_epoch must be >= 1");
  }
  if (!corpus_.matches_seed(config_.seed)) {
    throw std::invalid_argument(
        "GuidedCampaign: corpus was built under a different seed — the "
        "resume contract only holds for the seed that built it");
  }
  corpus_.set_seed(config_.seed);
}

GuidedResult GuidedCampaign::run() {
  const auto wall_start = std::chrono::steady_clock::now();
  support::Metrics metrics;

  // The base plan; refined epochs recompile with a re-weighted spec but
  // share the regex/alphabet, so the automaton skeleton — and with it
  // every (state, symbol) pair in the corpus — stays stable.  The base
  // plan stays alive for the whole run: the cumulative tracker replays
  // against ITS automaton while `plan` advances to refined recompiles.
  const core::CompiledTestPlanPtr base_plan = core::compile(config_);
  core::CompiledTestPlanPtr plan = base_plan;
  metrics.add_plan_compiles();

  // Cumulative structural coverage, seeded from the corpus: transitions
  // covered by an earlier invocation start covered, so refinement (and
  // the plateau series) continue rather than restart.
  pattern::CoverageTracker tracker(base_plan->pfa, options_.ngram);
  for (const auto& [state, symbol] : corpus_.transitions()) {
    tracker.mark_transition(state, symbol);
  }

  const PlanRefiner refiner(options_.refiner);
  pfa::TraceEstimator estimator(options_.estimator_smoothing);

  GuidedResult result;
  result.campaign.arm_stats.resize(1);

  const std::size_t jobs = support::resolve_jobs(options_.jobs);
  const std::size_t useful_jobs =
      std::min(jobs, options_.sessions_per_epoch);
  std::unique_ptr<support::WorkerPool> pool;
  if (useful_jobs > 1) {
    pool = std::make_unique<support::WorkerPool>(useful_jobs - 1);
  }
  // One sampling scratch per pool participant (participant 0 is the
  // caller), campaign-lived so epoch batches sample allocation-free once
  // warm.  Reuse counters stay jobs-invariant — WalkScratch accounts per
  // session, against its own high-water mark (see begin_session).
  const std::size_t participants = pool ? pool->thread_count() + 1 : 1;
  std::vector<pfa::WalkScratch> scratches(participants);

  // The coverage-gain series feeding the plateau detector.  A resumed
  // campaign reconstructs the persisted trajectory's gains so the
  // detector sees the whole history, not a truncated restart.
  std::vector<double> gains;
  double prev_coverage = 0.0;
  for (const EpochRecord& record : corpus_.epochs()) {
    gains.push_back(record.transition_coverage - prev_coverage);
    prev_coverage = record.transition_coverage;
  }
  prev_coverage = tracker.report().transition_coverage;

  // Session seeds are a pure function of the global run index, which
  // continues from the corpus so a resumed campaign never replays the
  // seeds it already spent.
  std::uint64_t run_base = corpus_.sessions();

  // Epochs count globally across the corpus: a resumed campaign's first
  // local epoch is global epoch `prior_epochs`, so it refines right away
  // instead of replaying the base plan the uninterrupted run already
  // moved past.
  const std::size_t prior_epochs = corpus_.epochs().size();

  // Refinement chains — each epoch refines the PREVIOUS refined plan, so
  // the exploration bonus compounds on stubborn uncovered edges.  The
  // corpus records which transitions each epoch first covered, which is
  // exactly enough to replay that chain here: refine before global epoch
  // g re-applies against the covered set as of epoch g-1.  This is what
  // keeps a resumed campaign bit-identical to the uninterrupted one
  // (modulo estimator blend, which is in-process only).
  if (prior_epochs > 0) {
    std::set<CoverageCorpus::Transition> covered_so_far;
    for (std::size_t g = 0; g < prior_epochs; ++g) {
      if (g > 0) {
        pfa::DistributionSpec refined =
            refiner.refine(*plan, covered_so_far, nullptr);
        plan = core::compile_with_spec(config_, std::move(refined));
        metrics.add_plan_compiles();
      }
      for (const auto& transition : corpus_.epochs()[g].transitions) {
        covered_so_far.insert(transition);
      }
    }
  }

  // Per-session tick distribution, recorded in the in-order merge loop
  // (work class: the same buckets for any jobs value).
  obs::Histogram ticks_hist;

  std::vector<scenario::TracedRun> batch(options_.sessions_per_epoch);
  bool stopped = false;
  for (std::size_t epoch = 0; epoch < options_.max_epochs && !stopped;
       ++epoch) {
    obs::TraceSpan epoch_span("epoch");
    if (epoch + prior_epochs > 0) {
      // Refine toward what is still uncovered, optionally blended with
      // the bigram law learned from this run's own patterns, and push
      // the refined spec through the ordinary compile/execute split.
      const pfa::DistributionSpec* learned_ptr = nullptr;
      pfa::DistributionSpec learned;
      if (options_.refiner.estimator_blend > 0.0 &&
          estimator.trace_count() > 0) {
        learned = estimator.estimate(base_plan->alphabet.size());
        learned_ptr = &learned;
      }
      // The recompile below gets its own "compile" span inside
      // compile_with_spec; this span isolates the refinement policy.
      pfa::DistributionSpec refined = [&] {
        PTEST_OBS_SPAN("refine");
        return refiner.refine(*plan, tracker.transitions_seen(), learned_ptr);
      }();
      plan = core::compile_with_spec(config_, std::move(refined));
      metrics.add_plan_compiles();
      ++result.refinements;
    }

    // Execute the epoch batch exactly like a Campaign round: each slot
    // is a pure function of its global run index, results merge in run
    // order, so `jobs` is invisible in the outcome.
    const std::size_t batch_size = options_.sessions_per_epoch;
    const core::CompiledTestPlan& epoch_plan = *plan;
    auto execute_slot = [&](std::size_t participant, std::size_t i) {
      PTEST_OBS_SPAN("session");
      batch[i] = scenario::run_traced(
          epoch_plan, support::derive_seed(config_.seed, run_base + i),
          setup_, scratches[participant]);
    };
    if (pool) {
      pool->parallel_for(batch_size, execute_slot);
    } else {
      for (std::size_t i = 0; i < batch_size; ++i) execute_slot(0, i);
    }
    run_base += batch_size;

    GuidedEpoch epoch_stats;
    epoch_stats.index = epoch;
    epoch_stats.sessions = batch_size;
    bool bug_this_epoch = false;
    for (std::size_t i = 0; i < batch_size; ++i) {
      const scenario::TracedRun& traced = batch[i];
      const core::AdaptiveTestResult& outcome = traced.result;
      ++result.campaign.total_runs;
      ++result.campaign.arm_stats[0].runs;
      metrics.add_sessions();
      metrics.add_plan_cache_hits();
      metrics.add_patterns_generated(outcome.patterns.size());
      metrics.add_ticks(outcome.session.stats.ticks);
      ticks_hist.record(outcome.session.stats.ticks);
      metrics.add_scratch_reuse_hits(outcome.scratch_reuse_hits);
      metrics.add_sample_alloc_bytes_saved(outcome.sample_alloc_bytes_saved);
      if (config_.dedup_patterns) {
        metrics.add_dedup_accepted(outcome.patterns.size());
        metrics.add_dedup_rejected(outcome.duplicates_rejected);
      }
      for (const pattern::TestPattern& sampled : outcome.patterns) {
        tracker.observe(sampled);
        estimator.observe(sampled.symbols);
      }
      epoch_stats.new_fingerprints +=
          corpus_.add_fingerprint(traced.trace_hash) ? 1 : 0;

      const bool bug = outcome.session.outcome == core::Outcome::kBug &&
                       outcome.session.report.has_value();
      if (!bug) continue;
      const core::BugReport& report = *outcome.session.report;
      const bool counted =
          !options_.counts_as_bug || options_.counts_as_bug(report);
      if (!counted) continue;
      ++result.campaign.arm_stats[0].detections;
      ++result.campaign.total_detections;
      ++epoch_stats.detections;
      result.campaign.distinct_failures.emplace(report.signature(), report);
      if (!result.sessions_to_first_bug) {
        result.sessions_to_first_bug = result.campaign.total_runs;
      }
      bug_this_epoch = true;
    }

    // Fold this epoch's coverage into the corpus and extend the
    // trajectory.
    EpochRecord record;
    for (const auto& [state, symbol] : tracker.transitions_seen()) {
      if (corpus_.add_transition(state, symbol)) {
        record.transitions.emplace_back(state, symbol);
      }
    }
    epoch_stats.new_transitions = record.new_transitions();
    const pattern::CoverageReport report = tracker.report();
    epoch_stats.transition_coverage = report.transition_coverage;
    epoch_stats.coverage_gain = report.transition_coverage - prev_coverage;
    prev_coverage = report.transition_coverage;
    gains.push_back(epoch_stats.coverage_gain);
    result.epochs.push_back(epoch_stats);

    record.sessions = epoch_stats.sessions;
    record.detections = epoch_stats.detections;
    record.new_fingerprints = epoch_stats.new_fingerprints;
    record.transition_coverage = epoch_stats.transition_coverage;
    corpus_.add_epoch(record);

    // Stop rules, most decisive first: oracle fire, coverage plateau,
    // epoch budget (the loop condition).
    if (options_.stop_on_bug && bug_this_epoch) {
      result.stop_reason = StopReason::kBugFound;
      stopped = true;
    } else if (coverage_plateaued(gains, options_.plateau_window,
                                  options_.plateau_epsilon)) {
      result.stop_reason = StopReason::kCoveragePlateau;
      stopped = true;
    } else {
      result.stop_reason = StopReason::kEpochBudget;
    }
  }

  result.coverage = tracker.report();
  result.campaign.best_arm = 0;
  result.campaign.arm_coverage.push_back(result.coverage);

  metrics.set_worker_threads(pool ? pool->thread_count() + 1 : 1);
  if (pool) metrics.add_worker_idle_ns(pool->idle_nanos());
  metrics.add_wall_ns(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - wall_start)
          .count()));
  result.campaign.metrics = metrics.snapshot();
  result.campaign.metrics.ticks_hist = ticks_hist;
  result.campaign.metrics.epochs = result.epochs.size();
  result.campaign.metrics.plan_refinements = result.refinements;
  result.campaign.metrics.pfa_states = result.coverage.states_total;
  result.campaign.metrics.pfa_states_covered = result.coverage.states_covered;
  result.campaign.metrics.pfa_transitions = result.coverage.transitions_total;
  result.campaign.metrics.pfa_transitions_covered =
      result.coverage.transitions_covered;
  result.campaign.metrics.pfa_ngrams = result.coverage.ngrams_observed;
  return result;
}

support::Result<GuidedResult, std::string> GuidedCampaign::run_scenario(
    std::string_view name, GuidedOptions options, CoverageCorpus corpus,
    std::optional<std::uint64_t> seed_override, CoverageCorpus* corpus_out) {
  const scenario::Scenario* entry =
      scenario::ScenarioRegistry::builtin().find(name);
  if (entry == nullptr) {
    return std::string("unknown scenario '") + std::string(name) +
           "' (see --list-scenarios)";
  }
  if (!corpus.matches_scenario(name)) {
    return "corpus is labeled for scenario '" + corpus.scenario() +
           "', not '" + std::string(name) + "'";
  }
  corpus.set_scenario(std::string(name));
  core::PtestConfig config = entry->config;
  if (seed_override) config.seed = *seed_override;
  if (!corpus.matches_seed(config.seed)) {
    return "corpus was built under seed " + std::to_string(*corpus.seed()) +
           ", not " + std::to_string(config.seed) +
           " (resume with the original seed, or start a fresh corpus)";
  }
  if (!options.counts_as_bug) {
    options.counts_as_bug = [oracle = entry->oracle](
                                const core::BugReport& report) {
      return oracle.matches(report);
    };
  }
  GuidedCampaign campaign(std::move(config), entry->setup,
                          std::move(options), std::move(corpus));
  GuidedResult result = campaign.run();
  if (corpus_out != nullptr) *corpus_out = campaign.corpus();
  return result;
}

}  // namespace ptest::guided
